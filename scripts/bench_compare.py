#!/usr/bin/env python3
"""Perf-regression gate over google-benchmark JSON reports.

Compares the benchmarks of a freshly measured report (``current``) against a
committed baseline (``baseline``, a ``BENCH_*.json`` produced with the
``--json`` flag of ``bench/micro_kernels``) and fails when any gated row got
slower than the threshold allows.

CI machines are not the machine that recorded the baseline, so absolute
times differ by a roughly uniform factor.  ``--calibrate`` estimates that
factor as the median cpu-time ratio over the *ungated control* rows shared
by both reports (rows not matched by ``--patterns``) and gates on the
calibrated ratio instead, which catches rows that regressed relative to the
controls while tolerating overall machine-speed differences.  (A slowdown
that hits the controls in exactly the same proportion is invisible to the
calibrated gate — that is the price of hardware independence; the committed
baseline is refreshed whenever a PR intentionally shifts the recorded
rows.)

Cross-machine ratios stay leaky (a 1-CPU baseline vs a multi-core runner
shifts parallel rows relative to serial controls), so the hard gate is
``--pairs``: invariants between two rows of the *current* report — e.g. the
plan-based SpMV must stay faster than the naive row loop measured seconds
earlier on the same machine — which no hardware difference can fake.

Short ``--benchmark_min_time`` runs are load-spike-sensitive (a background
burst landing on one side of a pair fakes a regression), so reports run
with ``--benchmark_repetitions=N`` get best-of-N treatment: repeated
iteration rows sharing a name collapse to their *minimum* cpu time before
any gating, and a spike must hit every repetition of a row to survive.
The CI invocation uses 3 repetitions for exactly this reason.

The comparison table is written to stdout and, when the environment provides
one (or ``--summary`` names a file), appended to the GitHub job summary.

Exit status: 0 when every gated row passes, 1 otherwise, 2 on usage errors.
"""

import argparse
import json
import os
import re
import statistics
import sys


TIME_UNIT_NS = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}


def load_rows(path):
    """name -> cpu_time (normalised to ns) for the iteration rows.

    Reports measured with ``--benchmark_repetitions=N`` carry N iteration
    rows per name; they collapse to the per-name *minimum* (best-of-N), the
    noise-robust statistic for gating under background load.
    """
    try:
        with open(path, "r", encoding="utf-8") as f:
            report = json.load(f)
    except (OSError, ValueError) as e:
        print(f"bench_compare: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(2)
    rows = {}
    for b in report.get("benchmarks", []):
        if b.get("run_type", "iteration") != "iteration":
            continue  # skip aggregate (mean/median/stddev) rows
        name = b.get("name")
        cpu = b.get("cpu_time")
        scale = TIME_UNIT_NS.get(b.get("time_unit", "ns"), 1.0)
        if name and isinstance(cpu, (int, float)) and cpu > 0:
            ns = float(cpu) * scale
            rows[name] = min(rows[name], ns) if name in rows else ns
    return rows


def fmt_time(ns):
    for unit, scale in (("s", 1e9), ("ms", 1e6), ("us", 1e3)):
        if ns >= scale:
            return f"{ns / scale:.2f} {unit}"
    return f"{ns:.0f} ns"


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline", help="committed BENCH_*.json")
    parser.add_argument("current", help="freshly measured report")
    parser.add_argument(
        "--patterns", nargs="+",
        default=["BM_McmcBuild", "BM_Spmv", "BM_BatchedGridBuild"],
        help="regexes selecting the gated benchmark names (prefix match)")
    parser.add_argument(
        "--threshold", type=float, default=0.30,
        help="maximum tolerated slowdown, e.g. 0.30 = +30%% (default)")
    parser.add_argument(
        "--calibrate", action="store_true",
        help="divide ratios by the median ratio over the ungated rows")
    parser.add_argument(
        "--pairs", nargs="*", default=[], metavar="FAST:SLOW:MAXRATIO",
        help="same-run invariants on the current report: fail unless "
             "cpu_time(FAST) <= MAXRATIO * cpu_time(SLOW).  Both rows come "
             "from one machine and one run, so these gate machine-"
             "independently where baseline ratios cannot.")
    parser.add_argument(
        "--top", type=int, default=0, metavar="N",
        help="also print the N largest regressions and the N largest "
             "improvements over all shared rows (gated or not) — the "
             "at-a-glance movement report for humans reading the job log")
    parser.add_argument(
        "--summary", default=os.environ.get("GITHUB_STEP_SUMMARY"),
        help="markdown file to append the comparison table to")
    args = parser.parse_args()

    base = load_rows(args.baseline)
    cur = load_rows(args.current)
    shared = sorted(set(base) & set(cur))
    if not shared:
        print("bench_compare: no common benchmark rows", file=sys.stderr)
        sys.exit(2)

    gated = [n for n in shared
             if any(re.match(p, n) for p in args.patterns)]
    missing = [p for p in args.patterns
               if not any(re.match(p, n) for n in shared)]
    if missing:
        print(f"bench_compare: no shared rows match {missing}",
              file=sys.stderr)
        sys.exit(2)

    calibration = 1.0
    if args.calibrate:
        # Estimate the machine-speed factor from the *ungated* control rows:
        # calibrating on the gated rows themselves would let a uniform
        # regression of the gated kernels cancel itself out.
        controls = [n for n in shared if n not in gated]
        if not controls:
            print("bench_compare: --calibrate needs ungated control rows "
                  "shared by both reports (the CI filter includes "
                  "BM_AliasSample/BM_InverseCdfSample for this)",
                  file=sys.stderr)
            sys.exit(2)
        calibration = statistics.median(cur[n] / base[n] for n in controls)

    limit = 1.0 + args.threshold
    lines = [
        "| benchmark | baseline | current | ratio |"
        + (" calibrated |" if args.calibrate else "") + " status |",
        "|---|---|---|---|" + ("---|" if args.calibrate else "") + "---|",
    ]
    failures = []
    for name in shared:
        ratio = cur[name] / base[name]
        adjusted = ratio / calibration
        is_gated = name in gated
        ok = adjusted <= limit
        if is_gated and not ok:
            failures.append(name)
        status = ("FAIL" if not ok else "ok") if is_gated else "info"
        row = (f"| {name} | {fmt_time(base[name])} | {fmt_time(cur[name])} "
               f"| {ratio:.2f}x |")
        if args.calibrate:
            row += f" {adjusted:.2f}x |"
        row += f" {status} |"
        lines.append(row)

    pair_lines = []
    if args.pairs:
        pair_lines = ["", "Same-run pair invariants (machine-independent):",
                      "", "| fast | slow | ratio | limit | status |",
                      "|---|---|---|---|---|"]
        for spec in args.pairs:
            try:
                fast, slow, max_ratio = spec.split(":")
                max_ratio = float(max_ratio)
            except ValueError:
                print(f"bench_compare: bad --pairs spec {spec!r} "
                      "(want FAST:SLOW:MAXRATIO)", file=sys.stderr)
                sys.exit(2)
            absent = [n for n in (fast, slow) if n not in cur]
            if absent:
                print(f"bench_compare: --pairs {spec!r} names benchmark "
                      f"row(s) absent from the current report: "
                      + ", ".join(repr(n) for n in absent)
                      + " — check the benchmark_filter regex covers them "
                      "and the rows were not renamed", file=sys.stderr)
                sys.exit(2)
            ratio = cur[fast] / cur[slow]
            ok = ratio <= max_ratio
            if not ok:
                failures.append(f"{fast} vs {slow}")
            pair_lines.append(f"| {fast} | {slow} | {ratio:.2f}x "
                              f"| {max_ratio:.2f}x | "
                              f"{'ok' if ok else 'FAIL'} |")

    top_lines = []
    if args.top > 0:
        # Movement report over every shared row, sorted by calibrated ratio:
        # purely informational — the gates above are the contract.
        ranked = sorted(shared, key=lambda n: cur[n] / base[n] / calibration)
        slowest = [n for n in reversed(ranked)
                   if cur[n] / base[n] / calibration > 1.0][:args.top]
        fastest = [n for n in ranked
                   if cur[n] / base[n] / calibration < 1.0][:args.top]

        def movement(names):
            return [f"| {n} | {fmt_time(base[n])} | {fmt_time(cur[n])} "
                    f"| {cur[n] / base[n] / calibration:.2f}x |"
                    for n in names]

        top_lines = ["", f"Top {args.top} movements"
                     + (" (calibrated)" if args.calibrate else "") + ":"]
        if slowest:
            top_lines += ["", "| largest regressions | baseline | current "
                          "| ratio |", "|---|---|---|---|"]
            top_lines += movement(slowest)
        if fastest:
            top_lines += ["", "| largest improvements | baseline | current "
                          "| ratio |", "|---|---|---|---|"]
            top_lines += movement(fastest)
        if not slowest and not fastest:
            top_lines += ["", "no row moved off a 1.00x ratio"]

    header = (f"### bench_compare: {len(gated)} gated rows, "
              f"threshold +{args.threshold:.0%}"
              + (f", calibration {calibration:.2f}x" if args.calibrate
                 else ""))
    table = header + "\n\n" + "\n".join(lines + top_lines + pair_lines) + "\n"
    print(table)
    if args.summary:
        try:
            with open(args.summary, "a", encoding="utf-8") as f:
                f.write(table + "\n")
        except OSError as e:
            print(f"bench_compare: cannot write summary: {e}",
                  file=sys.stderr)

    if failures:
        print(f"bench_compare: slowdown beyond +{args.threshold:.0%} in: "
              + ", ".join(failures), file=sys.stderr)
        sys.exit(1)
    print("bench_compare: all gated rows within threshold")


if __name__ == "__main__":
    main()
