#pragma once
// Training-dataset construction (§4.2).
//
// For every training matrix, every point of the 4x4x4 (alpha, eps, delta)
// grid is executed `replicates` times with GMRES and BiCGStab; the sample
// mean and standard deviation of y(A, x_M) form one labelled datum per
// solver.  SPD matrices additionally run CG at alpha = 0.1, and a few
// near-zero-alpha samples expose the surrogate to divergence scenarios.

#include <functional>

#include "gen/matrix_set.hpp"
#include "pipeline/metric.hpp"
#include "surrogate/dataset.hpp"

namespace mcmi {

struct DatasetBuildOptions {
  std::vector<McmcParams> grid;    ///< defaults to paper_parameter_grid()
  index_t replicates = 5;          ///< paper: 10
  real_t cg_alpha = 0.1;           ///< CG runs for SPD matrices (§4.2)
  index_t divergence_samples = 2;  ///< near-zero-alpha probes per solver
  SolveOptions solve;              ///< shared solver settings
  McmcOptions mcmc;                ///< shared sampler settings
  u64 seed = 1318;                 ///< dataset size of the paper, as a nod
  /// Progress callback (matrix name, samples done for it).
  std::function<void(const std::string&, index_t)> on_matrix;

  DatasetBuildOptions();
};

/// Build the labelled dataset over `matrices`.
SurrogateDataset build_dataset(const std::vector<NamedMatrix>& matrices,
                               const DatasetBuildOptions& options = {});

/// Add grid-search measurements of one extra matrix into an existing
/// dataset (used when folding BO-round measurements back in, and to build
/// the ground-truth table on the unseen test matrix).  Returns the matrix id.
index_t append_matrix_measurements(SurrogateDataset& dataset,
                                   const NamedMatrix& matrix,
                                   const std::vector<McmcParams>& grid,
                                   const std::vector<KrylovMethod>& methods,
                                   const DatasetBuildOptions& options);

}  // namespace mcmi
