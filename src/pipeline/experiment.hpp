#pragma once
// The full §4.4 tuning experiment, powering Figures 1–3.
//
// Workflow:
//   1. build the labelled training dataset on the training matrices (§4.2);
//   2. train the Pre-BO surrogate (80/20 split);
//   3. grid-search ground truth on the unseen test matrix
//      (64 x_M, R replicates each — the paper's 640 observations);
//   4. one BO round: the Pre-BO model recommends a 32-candidate batch for
//      each strategy (balanced xi=0.05, exploration xi=1.0); each candidate
//      is measured with R replicates;
//   5. fold the new measurements into the dataset and retrain with the same
//      hyper-parameters -> the BO-enhanced model;
//   6. calibration curves (Fig 1), CI-inclusion maps (Fig 2) and the
//      search-strategy comparison (Fig 3) are exposed for the bench
//      binaries to print.

#include <string>
#include <vector>

#include "bo/recommender.hpp"
#include "pipeline/dataset_builder.hpp"
#include "stats/calibration.hpp"
#include "surrogate/trainer.hpp"

namespace mcmi {

struct ExperimentOptions {
  SurrogateConfig surrogate;      ///< architecture (default: CPU-sized)
  TrainOptions pretrain;          ///< Pre-BO training
  TrainOptions retrain;           ///< BO-enhanced retraining
  DatasetBuildOptions data;       ///< grid/replicates for dataset building
  index_t training_max_dim = 1100;  ///< matrices larger than this are skipped
  std::string test_matrix = "unsteady_adv_diff_order2_0001";
  KrylovMethod test_method = KrylovMethod::kGMRES;
  index_t bo_batch = 32;          ///< recommendations per strategy
  real_t xi_balanced = 0.05;
  real_t xi_explore = 1.0;
  index_t test_replicates = 5;    ///< paper: 10
  McmcSearchSpace search_space;
  u64 seed = 2025;
  bool verbose = true;

  ExperimentOptions();
};

/// One evaluated parameter point with its replicate observations.
struct GridObservation {
  McmcParams params;
  std::vector<real_t> ys;  ///< replicate measurements of y(A, x_M)
};

/// Per-strategy outcome for Figure 3.
struct StrategyResult {
  std::string name;
  std::vector<GridObservation> evaluated;
  /// Sample median per evaluated point.
  [[nodiscard]] std::vector<real_t> medians() const;
  /// Index of the point with the minimum sample median.
  [[nodiscard]] index_t best_index() const;
};

/// Figure 2 cell: grid point with empirical stats and per-model predictions.
struct InclusionCell {
  McmcParams params;
  real_t empirical_mean = 0.0;
  real_t empirical_std = 0.0;
  real_t predicted_pre = 0.0;
  real_t predicted_post = 0.0;
  bool included_pre = false;   ///< Pre-BO mean inside the 99% empirical CI
  bool included_post = false;  ///< BO-enhanced mean inside it
};

struct ExperimentResults {
  // Dataset statistics.
  index_t training_samples = 0;
  index_t validation_samples = 0;
  real_t pre_bo_validation_loss = 0.0;
  real_t bo_enhanced_validation_loss = 0.0;

  // Ground truth on the test matrix.
  std::vector<GridObservation> test_grid;
  index_t baseline_steps = 0;  ///< unpreconditioned step count

  // Figure 1: calibration samples (one per observation) per model.
  std::vector<CalibrationSample> calibration_pre;
  std::vector<CalibrationSample> calibration_post;

  // Figure 2: CI inclusion per grid point.
  std::vector<InclusionCell> inclusion;

  // Figure 3: strategies.
  StrategyResult grid_strategy;
  StrategyResult balanced_strategy;
  StrategyResult explore_strategy;
};

class TuningExperiment {
 public:
  explicit TuningExperiment(ExperimentOptions options = {});

  /// Execute the full workflow.  Idempotent: reruns recompute everything.
  void run();

  [[nodiscard]] const ExperimentResults& results() const { return results_; }
  [[nodiscard]] const ExperimentOptions& options() const { return options_; }

 private:
  std::vector<CalibrationSample> calibrate(SurrogateModel& model) const;
  void fill_inclusion(SurrogateModel& pre, SurrogateModel& post);
  StrategyResult run_bo_strategy(SurrogateModel& model, const std::string& name,
                                 real_t xi, real_t y_min,
                                 PerformanceMeasurer& measurer,
                                 std::vector<LabeledSample>& new_samples,
                                 index_t test_matrix_id);

  ExperimentOptions options_;
  ExperimentResults results_;
  NamedMatrix test_;
  gnn::Graph test_graph_;
  std::vector<real_t> test_features_;
};

}  // namespace mcmi
