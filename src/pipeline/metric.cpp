#include "pipeline/metric.hpp"

#include "core/error.hpp"
#include "core/rng.hpp"

namespace mcmi {

PerformanceMeasurer::PerformanceMeasurer(const CsrMatrix& a,
                                         SolveOptions solve_options,
                                         McmcOptions mcmc_options,
                                         real_t y_cap)
    : a_(a), solve_options_(solve_options), mcmc_options_(mcmc_options),
      y_cap_(y_cap) {
  MCMI_CHECK(a.rows() == a.cols(), "metric needs a square system");
  // Fixed right-hand side b = (1, ..., 1): deterministic across replicates,
  // so all randomness comes from the preconditioner sampler.
  rhs_.assign(static_cast<std::size_t>(a.rows()), 1.0);
}

index_t PerformanceMeasurer::baseline_steps(KrylovMethod method) {
  const int m = static_cast<int>(method);
  if (baseline_[m] < 0) {
    IdentityPreconditioner identity;
    std::vector<real_t> x;
    const SolveResult res =
        solve(method, a_, rhs_, identity, x, solve_options_);
    baseline_[m] =
        res.converged ? res.iterations : solve_options_.max_iterations;
  }
  return baseline_[m];
}

MetricResult PerformanceMeasurer::measure(const McmcParams& params,
                                          KrylovMethod method,
                                          index_t replicate) {
  MetricResult result;
  result.steps_without = baseline_steps(method);

  McmcOptions options = mcmc_options_;
  options.seed = mix64(mcmc_options_.seed + 0x9e3779b9 * static_cast<u64>(replicate + 1));
  McmcInverter inverter(a_, params, options);
  inverter.set_kernel_cache(&kernel_cache_);
  const CsrMatrix p = inverter.compute();
  result.build = inverter.info();
  const SparseApproximateInverse precond(p, "mcmcmi");

  std::vector<real_t> x;
  const SolveResult res = solve(method, a_, rhs_, precond, x, solve_options_);
  result.preconditioned_converged = res.converged;
  result.baseline_converged = true;  // baseline counted even when saturated
  result.steps_with =
      res.converged ? res.iterations : solve_options_.max_iterations;
  result.y = std::min(y_cap_, static_cast<real_t>(result.steps_with) /
                                  static_cast<real_t>(result.steps_without));
  return result;
}

std::vector<real_t> PerformanceMeasurer::measure_replicates(
    const McmcParams& params, KrylovMethod method, index_t replicates) {
  MCMI_CHECK(replicates >= 1, "need at least one replicate");
  std::vector<real_t> ys;
  ys.reserve(static_cast<std::size_t>(replicates));
  for (index_t r = 0; r < replicates; ++r) {
    ys.push_back(measure(params, method, r).y);
  }
  return ys;
}

}  // namespace mcmi
