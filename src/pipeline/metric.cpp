#include "pipeline/metric.hpp"

#include "core/error.hpp"
#include "core/rng.hpp"
#include "stats/summary.hpp"

namespace mcmi {

PerformanceMeasurer::PerformanceMeasurer(const CsrMatrix& a,
                                         SolveOptions solve_options,
                                         McmcOptions mcmc_options,
                                         real_t y_cap)
    : a_(a), solve_options_(solve_options), mcmc_options_(mcmc_options),
      y_cap_(y_cap) {
  MCMI_CHECK(a.rows() == a.cols(), "metric needs a square system");
  // Fixed right-hand side b = (1, ..., 1): deterministic across replicates,
  // so all randomness comes from the preconditioner sampler.
  rhs_.assign(static_cast<std::size_t>(a.rows()), 1.0);
}

index_t PerformanceMeasurer::baseline_steps(KrylovMethod method) {
  const int m = static_cast<int>(method);
  if (baseline_[m] < 0) {
    IdentityPreconditioner identity;
    std::vector<real_t> x;
    const SolveResult res =
        solve(method, a_, rhs_, identity, x, solve_options_);
    baseline_[m] =
        res.converged ? res.iterations : solve_options_.max_iterations;
  }
  return baseline_[m];
}

McmcOptions PerformanceMeasurer::replicate_options(index_t replicate) const {
  McmcOptions options = mcmc_options_;
  options.seed = mix64(mcmc_options_.seed +
                       0x9e3779b9 * static_cast<u64>(replicate + 1));
  return options;
}

void PerformanceMeasurer::score_solve(const SparseApproximateInverse& precond,
                                      KrylovMethod method,
                                      MetricResult& result) {
  std::vector<real_t> x;
  const SolveResult res = solve(method, a_, rhs_, precond, x, solve_options_);
  result.preconditioned_converged = res.converged;
  result.baseline_converged = true;  // baseline counted even when saturated
  result.steps_with =
      res.converged ? res.iterations : solve_options_.max_iterations;
  result.y = std::min(y_cap_, static_cast<real_t>(result.steps_with) /
                                  static_cast<real_t>(result.steps_without));
}

MetricResult PerformanceMeasurer::measure(const McmcParams& params,
                                          KrylovMethod method,
                                          index_t replicate) {
  MetricResult result;
  result.steps_without = baseline_steps(method);

  McmcInverter inverter(a_, params, replicate_options(replicate));
  inverter.set_kernel_cache(&kernel_cache_);
  CsrMatrix p = inverter.compute();
  result.build = inverter.info();
  const SparseApproximateInverse precond(std::move(p), "mcmcmi");
  score_solve(precond, method, result);
  return result;
}

std::vector<MetricResult> PerformanceMeasurer::measure_grid(
    real_t alpha, const std::vector<GridTrial>& trials, KrylovMethod method,
    index_t replicate) {
  const index_t base = baseline_steps(method);

  BatchedGridResult built = batched_grid_build(
      a_, alpha, trials, replicate_options(replicate), &kernel_cache_);

  std::vector<MetricResult> results(trials.size());
  for (std::size_t t = 0; t < trials.size(); ++t) {
    MetricResult& result = results[t];
    result.steps_without = base;
    result.build = built.info[t];
    const SparseApproximateInverse precond(
        std::move(built.preconditioners[t]), "mcmcmi");
    score_solve(precond, method, result);
  }
  return results;
}

std::vector<std::vector<real_t>> PerformanceMeasurer::measure_grid_replicates(
    real_t alpha, const std::vector<GridTrial>& trials, KrylovMethod method,
    index_t replicates) {
  MCMI_CHECK(replicates >= 1, "need at least one replicate");
  std::vector<std::vector<real_t>> ys(trials.size());
  for (auto& column : ys) column.reserve(static_cast<std::size_t>(replicates));
  for (index_t r = 0; r < replicates; ++r) {
    const std::vector<MetricResult> round =
        measure_grid(alpha, trials, method, r);
    for (std::size_t t = 0; t < trials.size(); ++t) {
      ys[t].push_back(round[t].y);
    }
  }
  return ys;
}

std::vector<real_t> PerformanceMeasurer::measure_grouped_medians(
    const std::vector<McmcParams>& grid, KrylovMethod method,
    index_t replicates) {
  std::vector<real_t> medians(grid.size(), 0.0);
  for (const AlphaGroup& group : group_grid_by_alpha(grid)) {
    const std::vector<std::vector<real_t>> ys =
        measure_grid_replicates(group.alpha, group.trials, method, replicates);
    for (std::size_t t = 0; t < group.trials.size(); ++t) {
      medians[static_cast<std::size_t>(group.indices[t])] = median(ys[t]);
    }
  }
  return medians;
}

std::vector<real_t> PerformanceMeasurer::measure_replicates(
    const McmcParams& params, KrylovMethod method, index_t replicates) {
  MCMI_CHECK(replicates >= 1, "need at least one replicate");
  std::vector<real_t> ys;
  ys.reserve(static_cast<std::size_t>(replicates));
  for (index_t r = 0; r < replicates; ++r) {
    ys.push_back(measure(params, method, r).y);
  }
  return ys;
}

}  // namespace mcmi
