#include "pipeline/metric.hpp"

#include "core/error.hpp"
#include "core/rng.hpp"
#include "stats/summary.hpp"

namespace mcmi {

PerformanceMeasurer::PerformanceMeasurer(const CsrMatrix& a,
                                         SolveOptions solve_options,
                                         McmcOptions mcmc_options,
                                         real_t y_cap)
    : a_(a), solve_options_(solve_options), mcmc_options_(mcmc_options),
      y_cap_(y_cap) {
  MCMI_CHECK(a.rows() == a.cols(), "metric needs a square system");
  // Fixed right-hand side b = (1, ..., 1): deterministic across replicates,
  // so all randomness comes from the preconditioner sampler.
  rhs_.assign(static_cast<std::size_t>(a.rows()), 1.0);
}

index_t PerformanceMeasurer::baseline_steps(KrylovMethod method) {
  const int m = static_cast<int>(method);
  if (baseline_[m] < 0) {
    IdentityPreconditioner identity;
    std::vector<real_t> x;
    const SolveResult res =
        solve(method, a_, rhs_, identity, x, solve_options_);
    baseline_[m] =
        res.converged() ? res.iterations : solve_options_.max_iterations;
  }
  return baseline_[m];
}

McmcOptions PerformanceMeasurer::replicate_options(index_t replicate) const {
  McmcOptions options = mcmc_options_;
  options.seed = mix64(mcmc_options_.seed +
                       0x9e3779b9 * static_cast<u64>(replicate + 1));
  return options;
}

void PerformanceMeasurer::score_solve(const SparseApproximateInverse& precond,
                                      KrylovMethod method,
                                      MetricResult& result) {
  std::vector<real_t> x;
  const SolveResult res = solve(method, a_, rhs_, precond, x, solve_options_);
  result.preconditioned_converged = res.converged();
  result.baseline_converged = true;  // baseline counted even when saturated
  result.steps_with =
      res.converged() ? res.iterations : solve_options_.max_iterations;
  result.y = std::min(y_cap_, static_cast<real_t>(result.steps_with) /
                                  static_cast<real_t>(result.steps_without));
}

MetricResult PerformanceMeasurer::measure(const McmcParams& params,
                                          KrylovMethod method,
                                          index_t replicate) {
  MetricResult result;
  result.steps_without = baseline_steps(method);

  McmcInverter inverter(a_, params, replicate_options(replicate));
  inverter.set_kernel_cache(&kernel_cache_);
  CsrMatrix p = inverter.compute();
  result.build = inverter.info();
  const SparseApproximateInverse precond(std::move(p), "mcmcmi");
  score_solve(precond, method, result);
  return result;
}

std::vector<MetricResult> PerformanceMeasurer::measure_grid(
    real_t alpha, const std::vector<GridTrial>& trials, KrylovMethod method,
    index_t replicate) {
  const index_t base = baseline_steps(method);

  BatchedGridResult built = batched_grid_build(
      a_, alpha, trials, replicate_options(replicate), &kernel_cache_);

  std::vector<MetricResult> results(trials.size());
  for (std::size_t t = 0; t < trials.size(); ++t) {
    MetricResult& result = results[t];
    result.steps_without = base;
    result.build = built.info[t];
    const SparseApproximateInverse precond(
        std::move(built.preconditioners[t]), "mcmcmi");
    score_solve(precond, method, result);
  }
  return results;
}

std::vector<u64> PerformanceMeasurer::replicate_seeds(
    index_t replicates) const {
  std::vector<u64> seeds;
  seeds.reserve(static_cast<std::size_t>(replicates));
  for (index_t r = 0; r < replicates; ++r) {
    seeds.push_back(replicate_options(r).seed);
  }
  return seeds;
}

std::vector<std::vector<real_t>> PerformanceMeasurer::measure_grid_replicates(
    real_t alpha, const std::vector<GridTrial>& trials, KrylovMethod method,
    index_t replicates) {
  return measure_grid_replicates_methods(alpha, trials, {method},
                                         replicates)[0];
}

std::vector<std::vector<std::vector<real_t>>>
PerformanceMeasurer::measure_grid_replicates_methods(
    real_t alpha, const std::vector<GridTrial>& trials,
    const std::vector<KrylovMethod>& methods, index_t replicates) {
  MCMI_CHECK(replicates >= 1, "need at least one replicate");
  MCMI_CHECK(!methods.empty(), "need at least one Krylov method");
  std::vector<index_t> bases;
  bases.reserve(methods.size());
  for (KrylovMethod method : methods) bases.push_back(baseline_steps(method));

  // One interleaved walk ensemble serves every (trial, replicate) — and
  // every method, because P does not depend on the solver: each replicate's
  // build is bit-identical to measure()'s, so the solves — and the y's —
  // match per-(method, replicate) loops exactly.
  ReplicatedGridResult built = replicate_batched_grid_build(
      a_, alpha, trials, replicate_seeds(replicates), mcmc_options_,
      &kernel_cache_);

  std::vector<std::vector<std::vector<real_t>>> ys(
      methods.size(), std::vector<std::vector<real_t>>(trials.size()));
  for (auto& per_method : ys) {
    for (auto& column : per_method) {
      column.reserve(static_cast<std::size_t>(replicates));
    }
  }
  for (index_t r = 0; r < replicates; ++r) {
    BatchedGridResult& round = built.replicates[static_cast<std::size_t>(r)];
    for (std::size_t t = 0; t < trials.size(); ++t) {
      const SparseApproximateInverse precond(
          std::move(round.preconditioners[t]), "mcmcmi");
      for (std::size_t m = 0; m < methods.size(); ++m) {
        MetricResult result;
        result.steps_without = bases[m];
        result.build = round.info[t];
        score_solve(precond, methods[m], result);
        ys[m][t].push_back(result.y);
      }
    }
  }
  return ys;
}

std::vector<real_t> PerformanceMeasurer::measure_grouped_medians(
    const std::vector<McmcParams>& grid, KrylovMethod method,
    index_t replicates) {
  MCMI_CHECK(replicates >= 1, "need at least one replicate");
  if (grid.empty()) return {};
  const index_t base = baseline_steps(method);
  const std::vector<AlphaGroup> groups = group_grid_by_alpha(grid);

  // The multi-alpha builder shares one ensemble's successor draws across
  // every alpha when the kernels allow it (alias path, bitwise-identical
  // tables) and falls back to one replicate-batched ensemble per alpha
  // otherwise; the per-(point, replicate) preconditioners — and so the
  // medians — are bit-identical either way.
  MultiAlphaGridResult built = multi_alpha_grid_build(
      a_, groups, replicate_seeds(replicates), mcmc_options_, &kernel_cache_);

  std::vector<real_t> medians(grid.size(), 0.0);
  for (std::size_t g = 0; g < groups.size(); ++g) {
    std::vector<std::vector<real_t>> ys(groups[g].trials.size());
    for (index_t r = 0; r < replicates; ++r) {
      BatchedGridResult& round =
          built.groups[g].replicates[static_cast<std::size_t>(r)];
      for (std::size_t t = 0; t < groups[g].trials.size(); ++t) {
        MetricResult result;
        result.steps_without = base;
        result.build = round.info[t];
        const SparseApproximateInverse precond(
            std::move(round.preconditioners[t]), "mcmcmi");
        score_solve(precond, method, result);
        ys[t].push_back(result.y);
      }
    }
    for (std::size_t t = 0; t < groups[g].trials.size(); ++t) {
      medians[static_cast<std::size_t>(groups[g].indices[t])] = median(ys[t]);
    }
  }
  return medians;
}

std::vector<real_t> PerformanceMeasurer::measure_replicates(
    const McmcParams& params, KrylovMethod method, index_t replicates) {
  MCMI_CHECK(replicates >= 1, "need at least one replicate");
  std::vector<real_t> ys;
  ys.reserve(static_cast<std::size_t>(replicates));
  for (index_t r = 0; r < replicates; ++r) {
    ys.push_back(measure(params, method, r).y);
  }
  return ys;
}

}  // namespace mcmi
