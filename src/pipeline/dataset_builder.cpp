#include "pipeline/dataset_builder.hpp"

#include "features/matrix_features.hpp"
#include "stats/summary.hpp"

namespace mcmi {

DatasetBuildOptions::DatasetBuildOptions() {
  grid = paper_parameter_grid();
  solve.max_iterations = 4000;
  // Long restart: the study matrices have n <= ~1e3, so this is effectively
  // full GMRES and the step counts are not polluted by restart stagnation.
  solve.restart = 250;
  solve.tolerance = 1e-8;
}

namespace {

/// Measure one labelled sample: replicated y for (params, method).
LabeledSample make_sample(PerformanceMeasurer& measurer, index_t matrix_id,
                          const McmcParams& params, KrylovMethod method,
                          index_t replicates) {
  const std::vector<real_t> ys =
      measurer.measure_replicates(params, method, replicates);
  LabeledSample s;
  s.matrix_id = matrix_id;
  s.xm = encode_xm(params, method);
  s.y_mean = mean(ys);
  s.y_std = sample_std(ys);
  return s;
}

}  // namespace

index_t append_matrix_measurements(SurrogateDataset& dataset,
                                   const NamedMatrix& matrix,
                                   const std::vector<McmcParams>& grid,
                                   const std::vector<KrylovMethod>& methods,
                                   const DatasetBuildOptions& options) {
  // Reuse the matrix entry if it is already registered.
  index_t matrix_id = -1;
  for (std::size_t i = 0; i < dataset.matrix_names.size(); ++i) {
    if (dataset.matrix_names[i] == matrix.name) {
      matrix_id = static_cast<index_t>(i);
      break;
    }
  }
  if (matrix_id < 0) {
    matrix_id = dataset.add_matrix(
        matrix.name, gnn::Graph::from_csr(matrix.matrix),
        extract_features(matrix.matrix).to_vector());
  }

  McmcOptions mcmc = options.mcmc;
  mcmc.seed = mix64(options.seed ^ static_cast<u64>(matrix_id + 1));
  PerformanceMeasurer measurer(matrix.matrix, options.solve, mcmc);
  index_t done = 0;
  for (const McmcParams& params : grid) {
    for (KrylovMethod method : methods) {
      dataset.samples.push_back(make_sample(measurer, matrix_id, params,
                                            method, options.replicates));
      ++done;
    }
  }
  if (options.on_matrix) options.on_matrix(matrix.name, done);
  return matrix_id;
}

SurrogateDataset build_dataset(const std::vector<NamedMatrix>& matrices,
                               const DatasetBuildOptions& options) {
  SurrogateDataset dataset;
  for (const NamedMatrix& m : matrices) {
    std::vector<KrylovMethod> methods = {KrylovMethod::kGMRES,
                                         KrylovMethod::kBiCGStab};
    append_matrix_measurements(dataset, m, options.grid, methods, options);

    const index_t matrix_id =
        static_cast<index_t>(dataset.matrix_names.size()) - 1;
    McmcOptions mcmc = options.mcmc;
    mcmc.seed = mix64(options.seed ^ static_cast<u64>(matrix_id + 1));
    PerformanceMeasurer measurer(m.matrix, options.solve, mcmc);

    // SPD matrices additionally run CG at the small alpha of §4.2.
    if (m.spd) {
      for (real_t eps : paper_eps_values()) {
        for (real_t delta : paper_eps_values()) {
          dataset.samples.push_back(
              make_sample(measurer, matrix_id, {options.cg_alpha, eps, delta},
                          KrylovMethod::kCG, options.replicates));
        }
      }
    }

    // Near-zero-alpha probes: divergence scenarios for the surrogate.
    for (index_t d = 0; d < options.divergence_samples; ++d) {
      const real_t tiny_alpha = 0.01 + 0.01 * static_cast<real_t>(d);
      for (KrylovMethod method :
           {KrylovMethod::kGMRES, KrylovMethod::kBiCGStab}) {
        dataset.samples.push_back(
            make_sample(measurer, matrix_id, {tiny_alpha, 0.5, 0.5}, method,
                        options.replicates));
      }
    }
  }
  return dataset;
}

}  // namespace mcmi
