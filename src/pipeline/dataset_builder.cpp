#include "pipeline/dataset_builder.hpp"

#include "features/matrix_features.hpp"
#include "stats/summary.hpp"

namespace mcmi {

DatasetBuildOptions::DatasetBuildOptions() {
  grid = paper_parameter_grid();
  solve.max_iterations = 4000;
  // Long restart: the study matrices have n <= ~1e3, so this is effectively
  // full GMRES and the step counts are not polluted by restart stagnation.
  solve.restart = 250;
  solve.tolerance = 1e-8;
}

namespace {

/// Label from replicated measurements: the sample mean/std of y.
LabeledSample make_label(index_t matrix_id, const McmcParams& params,
                         KrylovMethod method, const std::vector<real_t>& ys) {
  LabeledSample s;
  s.matrix_id = matrix_id;
  s.xm = encode_xm(params, method);
  s.y_mean = mean(ys);
  s.y_std = sample_std(ys);
  return s;
}

/// Measure one labelled sample: replicated y for (params, method).
LabeledSample make_sample(PerformanceMeasurer& measurer, index_t matrix_id,
                          const McmcParams& params, KrylovMethod method,
                          index_t replicates) {
  return make_label(matrix_id, params, method,
                    measurer.measure_replicates(params, method, replicates));
}

/// Grid-search labels over `grid` x `methods`: trials sharing an alpha run
/// as ONE interleaved walk ensemble through
/// measure_grid_replicates_methods — every replicate advances in lockstep
/// through the same kernel pass, and the method-independent preconditioners
/// are built once and solved once per method — and the labels land in the
/// dataset in the same grid-major, method-minor order (and with the same
/// values — replicate-batched builds are bit-identical to standalone ones)
/// as the per-(trial, method) loop this replaces.
void append_grid_samples(SurrogateDataset& dataset,
                         PerformanceMeasurer& measurer, index_t matrix_id,
                         const std::vector<McmcParams>& grid,
                         const std::vector<KrylovMethod>& methods,
                         index_t replicates) {
  const std::vector<AlphaGroup> groups = group_grid_by_alpha(grid);
  // labels[grid index][method index], scattered back into source order.
  std::vector<std::vector<LabeledSample>> labels(
      grid.size(), std::vector<LabeledSample>(methods.size()));
  for (const AlphaGroup& group : groups) {
    const std::vector<std::vector<std::vector<real_t>>> ys =
        measurer.measure_grid_replicates_methods(group.alpha, group.trials,
                                                 methods, replicates);
    for (std::size_t m = 0; m < methods.size(); ++m) {
      for (std::size_t t = 0; t < group.trials.size(); ++t) {
        const auto gi = static_cast<std::size_t>(group.indices[t]);
        labels[gi][m] = make_label(matrix_id, grid[gi], methods[m], ys[m][t]);
      }
    }
  }
  for (std::size_t gi = 0; gi < grid.size(); ++gi) {
    for (std::size_t m = 0; m < methods.size(); ++m) {
      dataset.samples.push_back(labels[gi][m]);
    }
  }
}

}  // namespace

index_t append_matrix_measurements(SurrogateDataset& dataset,
                                   const NamedMatrix& matrix,
                                   const std::vector<McmcParams>& grid,
                                   const std::vector<KrylovMethod>& methods,
                                   const DatasetBuildOptions& options) {
  // Reuse the matrix entry if it is already registered.
  index_t matrix_id = -1;
  for (std::size_t i = 0; i < dataset.matrix_names.size(); ++i) {
    if (dataset.matrix_names[i] == matrix.name) {
      matrix_id = static_cast<index_t>(i);
      break;
    }
  }
  if (matrix_id < 0) {
    matrix_id = dataset.add_matrix(
        matrix.name, gnn::Graph::from_csr(matrix.matrix),
        extract_features(matrix.matrix).to_vector());
  }

  McmcOptions mcmc = options.mcmc;
  mcmc.seed = mix64(options.seed ^ static_cast<u64>(matrix_id + 1));
  PerformanceMeasurer measurer(matrix.matrix, options.solve, mcmc);
  append_grid_samples(dataset, measurer, matrix_id, grid, methods,
                      options.replicates);
  if (options.on_matrix) {
    options.on_matrix(matrix.name,
                      static_cast<index_t>(grid.size() * methods.size()));
  }
  return matrix_id;
}

SurrogateDataset build_dataset(const std::vector<NamedMatrix>& matrices,
                               const DatasetBuildOptions& options) {
  SurrogateDataset dataset;
  for (const NamedMatrix& m : matrices) {
    std::vector<KrylovMethod> methods = {KrylovMethod::kGMRES,
                                         KrylovMethod::kBiCGStab};
    append_matrix_measurements(dataset, m, options.grid, methods, options);

    const index_t matrix_id =
        static_cast<index_t>(dataset.matrix_names.size()) - 1;
    McmcOptions mcmc = options.mcmc;
    mcmc.seed = mix64(options.seed ^ static_cast<u64>(matrix_id + 1));
    PerformanceMeasurer measurer(m.matrix, options.solve, mcmc);

    // SPD matrices additionally run CG at the small alpha of §4.2: one
    // (eps, delta) grid at a single alpha — exactly one replicate-batched
    // ensemble.
    if (m.spd) {
      std::vector<McmcParams> cg_grid;
      for (real_t eps : paper_eps_values()) {
        for (real_t delta : paper_eps_values()) {
          cg_grid.push_back({options.cg_alpha, eps, delta});
        }
      }
      append_grid_samples(dataset, measurer, matrix_id, cg_grid,
                          {KrylovMethod::kCG}, options.replicates);
    }

    // Near-zero-alpha probes: divergence scenarios for the surrogate
    // (single trials per alpha — nothing to batch).
    for (index_t d = 0; d < options.divergence_samples; ++d) {
      const real_t tiny_alpha = 0.01 + 0.01 * static_cast<real_t>(d);
      for (KrylovMethod method :
           {KrylovMethod::kGMRES, KrylovMethod::kBiCGStab}) {
        dataset.samples.push_back(
            make_sample(measurer, matrix_id, {tiny_alpha, 0.5, 0.5}, method,
                        options.replicates));
      }
    }
  }
  return dataset;
}

}  // namespace mcmi
