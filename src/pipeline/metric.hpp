#pragma once
// The MCMC preconditioning performance metric (eq. 4):
//
//   y(A, x_M) = (# Krylov steps with preconditioner)
//             / (# Krylov steps without preconditioner)
//
// Lower is better; y >= 1 means the preconditioner did not help (including
// the divergence scenarios deliberately present in the training data).

#include <vector>

#include "krylov/solver.hpp"
#include "mcmc/batched_build.hpp"
#include "mcmc/inverter.hpp"
#include "mcmc/params.hpp"
#include "sparse/csr.hpp"

namespace mcmi {

struct MetricResult {
  real_t y = 0.0;                ///< the eq. (4) ratio
  index_t steps_with = 0;
  index_t steps_without = 0;
  bool preconditioned_converged = false;
  bool baseline_converged = false;
  McmcBuildInfo build;           ///< sampler diagnostics
};

/// Measures y(A, x_M) with replicate-seeded MCMC preconditioners.
/// The unpreconditioned baseline is deterministic and cached per solver, and
/// the walk kernel (with its alias tables) is cached per alpha — the grid /
/// HPO loops probe many (eps, delta) trials per alpha, so only the sampling
/// itself is redone per trial.
class PerformanceMeasurer {
 public:
  /// `solve_options` applies to both baseline and preconditioned runs;
  /// non-convergent runs count max_iterations steps.  The ratio is capped
  /// at `y_cap` so divergence scenarios stay a bounded failure signal for
  /// the surrogate instead of dominating its loss.
  PerformanceMeasurer(const CsrMatrix& a, SolveOptions solve_options = {},
                      McmcOptions mcmc_options = {}, real_t y_cap = 4.0);

  /// One replicate.  The MCMC seed is keyed by (base seed, replicate).
  MetricResult measure(const McmcParams& params, KrylovMethod method,
                       index_t replicate);

  /// y over `replicates` runs (vector of length `replicates`).
  std::vector<real_t> measure_replicates(const McmcParams& params,
                                         KrylovMethod method,
                                         index_t replicates);

  /// Batched grid probe: one walk ensemble at this alpha serves every
  /// (eps, delta) trial (mcmc/batched_build.hpp), then one solve per trial.
  /// Element r of the result equals measure({alpha, eps_t, delta_t}, method,
  /// replicate) exactly — same seeds, bit-identical preconditioner.
  std::vector<MetricResult> measure_grid(real_t alpha,
                                         const std::vector<GridTrial>& trials,
                                         KrylovMethod method,
                                         index_t replicate);

  /// Replicated batched probe: ys[t][r] = y of trial t, replicate r
  /// (identical to measure_replicates per trial, at ONE interleaved walk
  /// ensemble for the whole (trial, replicate) grid — replicate lanes
  /// advance in lockstep, see replicate_batched_grid_build — instead of one
  /// ensemble per replicate).
  std::vector<std::vector<real_t>> measure_grid_replicates(
      real_t alpha, const std::vector<GridTrial>& trials, KrylovMethod method,
      index_t replicates);

  /// Multi-method replicated probe: ys[m][t][r] = y of methods[m], trial t,
  /// replicate r.  The preconditioner is method-independent, so ONE
  /// replicate-batched ensemble serves every method — each (trial,
  /// replicate) P is built once and solved once per method, with y's
  /// identical to per-method measure_grid_replicates calls.
  std::vector<std::vector<std::vector<real_t>>> measure_grid_replicates_methods(
      real_t alpha, const std::vector<GridTrial>& trials,
      const std::vector<KrylovMethod>& methods, index_t replicates);

  /// Median replicated y per point of an arbitrary parameter list, grouped
  /// by alpha internally and routed through multi_alpha_grid_build: one
  /// ensemble's successor draws serve every alpha when the kernels allow
  /// sharing, one replicate-batched ensemble per alpha otherwise.  Results
  /// are in source order and independent of which path ran.
  std::vector<real_t> measure_grouped_medians(
      const std::vector<McmcParams>& grid, KrylovMethod method,
      index_t replicates);

  /// Baseline (unpreconditioned) step count for a solver.
  index_t baseline_steps(KrylovMethod method);

  [[nodiscard]] const CsrMatrix& matrix() const { return a_; }
  [[nodiscard]] const SolveOptions& solve_options() const {
    return solve_options_;
  }

 private:
  /// Sampler options for one replicate: the seed keyed by (base seed,
  /// replicate) — the single definition both measure paths share, so the
  /// batched probe cannot drift from the per-trial one.
  [[nodiscard]] McmcOptions replicate_options(index_t replicate) const;
  /// The chain-stream seeds of replicates 0..replicates-1, in order — the
  /// lane seeds handed to the replicate-batched builders.
  [[nodiscard]] std::vector<u64> replicate_seeds(index_t replicates) const;
  /// Solve with `precond`, fill the step counts and the capped eq. (4)
  /// ratio of `result` (steps_without must be set).
  void score_solve(const SparseApproximateInverse& precond,
                   KrylovMethod method, MetricResult& result);

  const CsrMatrix& a_;
  SolveOptions solve_options_;
  McmcOptions mcmc_options_;
  real_t y_cap_;
  std::vector<real_t> rhs_;
  index_t baseline_[3] = {-1, -1, -1};  // lazily computed per method
  WalkKernelCache kernel_cache_;        // walk kernels keyed by alpha
};

}  // namespace mcmi
