#include "pipeline/experiment.hpp"

#include <algorithm>
#include <cstdio>
#include <limits>

#include "core/env.hpp"
#include "features/matrix_features.hpp"
#include "stats/summary.hpp"

namespace mcmi {

ExperimentOptions::ExperimentOptions() {
  surrogate = default_config();
  pretrain.epochs = env_int("MCMI_EPOCHS", 40);
  pretrain.batch_size = 128;
  retrain = pretrain;
  data.replicates = env_int("MCMI_REPLICATES", full_scale() ? 10 : 4);
  test_replicates = data.replicates;
  if (full_scale()) {
    surrogate = paper_config();
    pretrain.epochs = env_int("MCMI_EPOCHS", 150);
    retrain = pretrain;
  }
}

std::vector<real_t> StrategyResult::medians() const {
  std::vector<real_t> out;
  out.reserve(evaluated.size());
  for (const GridObservation& g : evaluated) out.push_back(median(g.ys));
  return out;
}

index_t StrategyResult::best_index() const {
  MCMI_CHECK(!evaluated.empty(), "empty strategy result");
  const std::vector<real_t> med = medians();
  return static_cast<index_t>(
      std::min_element(med.begin(), med.end()) - med.begin());
}

TuningExperiment::TuningExperiment(ExperimentOptions options)
    : options_(std::move(options)) {}

std::vector<CalibrationSample> TuningExperiment::calibrate(
    SurrogateModel& model) const {
  std::vector<CalibrationSample> samples;
  model.cache_matrix(test_graph_, test_features_);
  for (const GridObservation& g : results_.test_grid) {
    const Prediction p = model.predict_cached(
        encode_xm(g.params, options_.test_method));
    for (real_t y : g.ys) {
      samples.push_back({y, p.mu, p.sigma});
    }
  }
  return samples;
}

void TuningExperiment::fill_inclusion(SurrogateModel& pre,
                                      SurrogateModel& post) {
  results_.inclusion.clear();
  pre.cache_matrix(test_graph_, test_features_);
  std::vector<Prediction> pre_predictions;
  for (const GridObservation& g : results_.test_grid) {
    pre_predictions.push_back(
        pre.predict_cached(encode_xm(g.params, options_.test_method)));
  }
  post.cache_matrix(test_graph_, test_features_);
  for (std::size_t i = 0; i < results_.test_grid.size(); ++i) {
    const GridObservation& g = results_.test_grid[i];
    const Prediction pp =
        post.predict_cached(encode_xm(g.params, options_.test_method));
    InclusionCell cell;
    cell.params = g.params;
    cell.empirical_mean = mean(g.ys);
    cell.empirical_std = sample_std(g.ys);
    cell.predicted_pre = pre_predictions[i].mu;
    cell.predicted_post = pp.mu;
    cell.included_pre =
        prediction_within_empirical_ci(cell.predicted_pre, g.ys, 0.99);
    cell.included_post =
        prediction_within_empirical_ci(cell.predicted_post, g.ys, 0.99);
    results_.inclusion.push_back(cell);
  }
}

StrategyResult TuningExperiment::run_bo_strategy(
    SurrogateModel& model, const std::string& name, real_t xi, real_t y_min,
    PerformanceMeasurer& measurer, std::vector<LabeledSample>& new_samples,
    index_t test_matrix_id) {
  model.cache_matrix(test_graph_, test_features_);
  RecommendOptions rec_options;
  rec_options.batch_size = options_.bo_batch;
  rec_options.xi = xi;
  rec_options.y_min = y_min;
  rec_options.seed = mix64(options_.seed ^ static_cast<u64>(xi * 1e4));
  const std::vector<Recommendation> recs = recommend_batch(
      model, options_.test_method, options_.search_space, rec_options);

  StrategyResult result;
  result.name = name;
  // Candidates sharing an alpha evaluate through one interleaved walk
  // ensemble serving every replicate at once; results scatter back into
  // recommendation order (the values are identical to the per-candidate
  // loop this replaces).
  result.evaluated.resize(recs.size());
  for (const AlphaGroup& group : group_recommendations_by_alpha(recs)) {
    const std::vector<std::vector<real_t>> ys =
        measurer.measure_grid_replicates(group.alpha, group.trials,
                                         options_.test_method,
                                         options_.test_replicates);
    for (std::size_t t = 0; t < group.trials.size(); ++t) {
      const auto r = static_cast<std::size_t>(group.indices[t]);
      result.evaluated[r].params = recs[r].params;
      result.evaluated[r].ys = ys[t];
    }
  }
  for (const GridObservation& obs : result.evaluated) {
    LabeledSample sample;
    sample.matrix_id = test_matrix_id;
    sample.xm = encode_xm(obs.params, options_.test_method);
    sample.y_mean = mean(obs.ys);
    sample.y_std = sample_std(obs.ys);
    new_samples.push_back(sample);
  }
  return result;
}

void TuningExperiment::run() {
  auto log = [&](const char* fmt, auto... args) {
    if (options_.verbose) {
      std::printf(fmt, args...);
      std::fflush(stdout);
    }
  };

  // ---- 1. Training dataset -------------------------------------------------
  const std::vector<NamedMatrix> training =
      training_matrix_set(options_.training_max_dim);
  log("[experiment] building dataset on %zu matrices (replicates=%lld)\n",
      training.size(), static_cast<long long>(options_.data.replicates));
  SurrogateDataset dataset = build_dataset(training, options_.data);
  log("[experiment] dataset: %lld labelled samples\n",
      static_cast<long long>(dataset.size()));

  // ---- 2. Pre-BO model -----------------------------------------------------
  SurrogateModel pre_bo(options_.surrogate);
  pre_bo.fit_standardizers(dataset);
  std::vector<LabeledSample> train, validation;
  dataset.split(0.2, options_.seed, train, validation);
  results_.training_samples = static_cast<index_t>(train.size());
  results_.validation_samples = static_cast<index_t>(validation.size());
  TrainReport pre_report =
      train_surrogate(pre_bo, dataset, train, validation, options_.pretrain);
  results_.pre_bo_validation_loss = pre_report.final_validation_loss;
  log("[experiment] Pre-BO trained: %lld epochs, val loss %.5f\n",
      static_cast<long long>(pre_report.epochs_run),
      pre_report.final_validation_loss);

  // ---- 3. Ground truth on the unseen test matrix ---------------------------
  test_ = make_matrix(options_.test_matrix, full_scale());
  test_graph_ = gnn::Graph::from_csr(test_.matrix);
  test_features_ = extract_features(test_.matrix).to_vector();

  McmcOptions test_mcmc = options_.data.mcmc;
  test_mcmc.seed = mix64(options_.seed ^ 0xF00D);
  PerformanceMeasurer measurer(test_.matrix, options_.data.solve, test_mcmc);
  results_.baseline_steps = measurer.baseline_steps(options_.test_method);
  log("[experiment] test matrix %s: baseline %lld steps (%s)\n",
      options_.test_matrix.c_str(),
      static_cast<long long>(results_.baseline_steps),
      method_name(options_.test_method).c_str());

  // Ground-truth grid: one interleaved walk ensemble per alpha serves all
  // 16 (eps, delta) trials x every variance-estimation replicate of that
  // alpha in a single kernel pass.
  results_.test_grid.assign(options_.data.grid.size(), GridObservation{});
  for (const AlphaGroup& group : group_grid_by_alpha(options_.data.grid)) {
    const std::vector<std::vector<real_t>> ys =
        measurer.measure_grid_replicates(group.alpha, group.trials,
                                         options_.test_method,
                                         options_.test_replicates);
    for (std::size_t t = 0; t < group.trials.size(); ++t) {
      const auto gi = static_cast<std::size_t>(group.indices[t]);
      results_.test_grid[gi].params = options_.data.grid[gi];
      results_.test_grid[gi].ys = ys[t];
    }
  }
  results_.grid_strategy.name = "grid-search(64)";
  results_.grid_strategy.evaluated = results_.test_grid;

  // ---- 4. Pre-BO calibration ------------------------------------------------
  results_.calibration_pre = calibrate(pre_bo);

  // ---- 5. BO round ----------------------------------------------------------
  // Incumbent: best mean observed in the initial coarse grid records (D_0 of
  // Algorithm 1).
  real_t y_min = std::numeric_limits<real_t>::infinity();
  for (const LabeledSample& s : dataset.samples) {
    y_min = std::min(y_min, s.y_mean);
  }
  log("[experiment] incumbent y_min = %.4f\n", y_min);

  const index_t test_matrix_id = dataset.add_matrix(
      test_.name, test_graph_, test_features_);
  std::vector<LabeledSample> new_samples;
  results_.balanced_strategy = run_bo_strategy(
      pre_bo, "bo-balanced(32, xi=0.05)", options_.xi_balanced, y_min,
      measurer, new_samples, test_matrix_id);
  results_.explore_strategy = run_bo_strategy(
      pre_bo, "bo-explore(32, xi=1.00)", options_.xi_explore, y_min, measurer,
      new_samples, test_matrix_id);
  log("[experiment] BO round measured %zu new samples\n", new_samples.size());

  // ---- 6. BO-enhanced retraining --------------------------------------------
  for (const LabeledSample& s : new_samples) dataset.samples.push_back(s);
  SurrogateModel bo_enhanced(options_.surrogate);
  bo_enhanced.fit_standardizers(dataset);
  std::vector<LabeledSample> train2, validation2;
  dataset.split(0.2, mix64(options_.seed + 1), train2, validation2);
  TrainReport post_report = train_surrogate(bo_enhanced, dataset, train2,
                                            validation2, options_.retrain);
  results_.bo_enhanced_validation_loss = post_report.final_validation_loss;
  log("[experiment] BO-enhanced trained: %lld epochs, val loss %.5f\n",
      static_cast<long long>(post_report.epochs_run),
      post_report.final_validation_loss);

  // ---- 7. Post calibration + inclusion ---------------------------------------
  results_.calibration_post = calibrate(bo_enhanced);
  fill_inclusion(pre_bo, bo_enhanced);
}

}  // namespace mcmi
