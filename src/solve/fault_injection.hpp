#pragma once
// Deterministic fault-injection harness for the solve orchestrator.
//
// Compiled in always, dormant unless an injector is handed to the
// orchestrator (tests and the degraded-path benchmark do) — production
// requests pay one null-pointer check per stage.  Faults are scripted
// per stage as bounded counters, so a test decides exactly which build or
// solve attempt fails, how, and how many times; there is no randomness and
// no global state.
//
// Four fault families cover every fallback edge:
//   * build failures   — the stage's preconditioner build reports a scripted
//                        BuildStatus (optionally marked transient, which the
//                        orchestrator may retry within the stage);
//   * build delays     — the build stalls a fixed wall-clock time first,
//                        deterministically burning stage/deadline budget;
//   * poisoned solves  — the stage's preconditioner emits NaN output after
//                        its first apply, driving the solvers' kNonFinite
//                        detection;
//   * forced breakdowns — the preconditioner emits exact zeros after its
//                        first apply, driving an exact Krylov breakdown
//                        (rho / rhv = 0).

#include <memory>

#include "core/status.hpp"
#include "core/types.hpp"
#include "precond/preconditioner.hpp"
#include "solve/stage.hpp"

namespace mcmi {

class FaultInjector {
 public:
  // --- test-facing scripting ---

  /// The next `count` builds of `stage` fail with `status`; `transient`
  /// marks them retryable within the stage's attempt budget.
  void fail_builds(SolveStage stage, index_t count, bool transient = false,
                   BuildStatus status = BuildStatus::kInjectedFault);

  /// The next `count` builds of `stage` stall `seconds` of wall clock
  /// before any work (the orchestrator never sleeps past its deadline).
  void delay_builds(SolveStage stage, real_t seconds, index_t count = 1);

  /// The next `count` solves of `stage` run with a preconditioner that
  /// emits NaN after its first apply.
  void poison_solves(SolveStage stage, index_t count = 1);

  /// The next `count` solves of `stage` run with a preconditioner that
  /// emits exact zeros after its first apply.
  void break_solves(SolveStage stage, index_t count = 1);

  // --- orchestrator-facing ---

  struct BuildFault {
    bool fail = false;
    bool transient = false;
    BuildStatus status = BuildStatus::kBuilt;
    real_t delay_seconds = 0.0;
  };

  /// Consume the scripted fault (if any) for the next build of `stage`.
  BuildFault next_build(SolveStage stage);

  /// Wrap `p` with the scripted solve-side fault (if any) for `stage`;
  /// `*injected` reports whether a fault was consumed.
  std::unique_ptr<Preconditioner> wrap(SolveStage stage,
                                       std::unique_ptr<Preconditioner> p,
                                       bool* injected);

  /// Builds observed for `stage` so far (diagnostic, includes failed ones).
  [[nodiscard]] index_t builds_seen(SolveStage stage) const;

 private:
  struct StageScript {
    index_t fail_remaining = 0;
    bool fail_transient = false;
    BuildStatus fail_status = BuildStatus::kInjectedFault;
    index_t delay_remaining = 0;
    real_t delay_seconds = 0.0;
    index_t poison_remaining = 0;
    index_t break_remaining = 0;
    index_t builds = 0;
  };
  StageScript scripts_[kSolveStageCount];

  StageScript& script(SolveStage stage) {
    return scripts_[static_cast<int>(stage)];
  }
};

}  // namespace mcmi
