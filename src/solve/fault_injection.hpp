#pragma once
// Deterministic fault-injection harness for the solve orchestrator.
//
// Compiled in always, dormant unless an injector is handed to the
// orchestrator (tests and the degraded-path benchmark do) — production
// requests pay one null-pointer check per stage.  Faults are scripted
// per stage as bounded counters, so a test decides exactly which build or
// solve attempt fails, how, and how many times; there is no randomness and
// no global state.
//
// Four fault families cover every fallback edge:
//   * build failures   — the stage's preconditioner build reports a scripted
//                        BuildStatus (optionally marked transient, which the
//                        orchestrator may retry within the stage);
//   * build delays     — the build stalls a fixed wall-clock time first,
//                        deterministically burning stage/deadline budget;
//   * poisoned solves  — the stage's preconditioner emits NaN output after
//                        its first apply, driving the solvers' kNonFinite
//                        detection;
//   * forced breakdowns — the preconditioner emits exact zeros after its
//                        first apply, driving an exact Krylov breakdown
//                        (rho / rhv = 0).
//
// Beyond the orchestrator, the injector also scripts *service-level*
// faults for the serving layer (src/serve/): background builds that hang
// until cancelled (exercising the watchdog), builder-slot failures with a
// chosen cause (exercising the build circuit breaker), and a standing
// store byte-pressure that forces ArtifactStore evictions.  The service
// shares one injector across its worker/builder/watchdog threads, so all
// script state is guarded by an internal mutex.

#include <cstddef>
#include <memory>
#include <mutex>

#include "core/status.hpp"
#include "core/types.hpp"
#include "precond/preconditioner.hpp"
#include "solve/stage.hpp"

namespace mcmi {

class FaultInjector {
 public:
  // --- test-facing scripting ---

  /// The next `count` builds of `stage` fail with `status`; `transient`
  /// marks them retryable within the stage's attempt budget.
  void fail_builds(SolveStage stage, index_t count, bool transient = false,
                   BuildStatus status = BuildStatus::kInjectedFault);

  /// The next `count` builds of `stage` stall `seconds` of wall clock
  /// before any work (the orchestrator never sleeps past its deadline).
  void delay_builds(SolveStage stage, real_t seconds, index_t count = 1);

  /// The next `count` solves of `stage` run with a preconditioner that
  /// emits NaN after its first apply.
  void poison_solves(SolveStage stage, index_t count = 1);

  /// The next `count` solves of `stage` run with a preconditioner that
  /// emits exact zeros after its first apply.
  void break_solves(SolveStage stage, index_t count = 1);

  // --- service-level scripting (src/serve/solve_service) ---

  /// The next `count` background service builds hang: the builder sleeps
  /// until its CancelToken is *cancelled* — the deadline alone does not
  /// wake it, modelling a non-polling runaway build that only the
  /// watchdog (or shutdown) can reap.
  void hang_service_builds(index_t count = 1);

  /// The next `count` background service builds fail with `status` without
  /// doing any work (a builder-slot fault).  Whether the failure is
  /// transient or permanent follows from the status's cause taxonomy
  /// (is_transient_build_failure), exactly as a real failure would.
  void fail_service_builds(index_t count,
                           BuildStatus status = BuildStatus::kInjectedFault);

  /// Standing byte pressure on the ArtifactStore: the store adds this to
  /// its accounted bytes whenever it checks its budget, so a spike forces
  /// LRU evictions without allocating anything.  0 clears the spike.
  void set_store_pressure_bytes(std::size_t bytes);
  [[nodiscard]] std::size_t store_pressure_bytes() const;

  struct ServiceBuildFault {
    bool hang = false;
    bool fail = false;
    BuildStatus status = BuildStatus::kBuilt;
  };
  /// Consume the scripted fault (if any) for the next service build.
  ServiceBuildFault next_service_build();
  /// Service builds observed so far (diagnostic, includes faulted ones).
  [[nodiscard]] index_t service_builds_seen() const;

  // --- orchestrator-facing ---

  struct BuildFault {
    bool fail = false;
    bool transient = false;
    BuildStatus status = BuildStatus::kBuilt;
    real_t delay_seconds = 0.0;
  };

  /// Consume the scripted fault (if any) for the next build of `stage`.
  BuildFault next_build(SolveStage stage);

  /// Wrap `p` with the scripted solve-side fault (if any) for `stage`;
  /// `*injected` reports whether a fault was consumed.
  std::unique_ptr<Preconditioner> wrap(SolveStage stage,
                                       std::unique_ptr<Preconditioner> p,
                                       bool* injected);

  /// Builds observed for `stage` so far (diagnostic, includes failed ones).
  [[nodiscard]] index_t builds_seen(SolveStage stage) const;

 private:
  struct StageScript {
    index_t fail_remaining = 0;
    bool fail_transient = false;
    BuildStatus fail_status = BuildStatus::kInjectedFault;
    index_t delay_remaining = 0;
    real_t delay_seconds = 0.0;
    index_t poison_remaining = 0;
    index_t break_remaining = 0;
    index_t builds = 0;
  };
  struct ServiceScript {
    index_t hang_remaining = 0;
    index_t fail_remaining = 0;
    BuildStatus fail_status = BuildStatus::kInjectedFault;
    std::size_t pressure_bytes = 0;
    index_t builds = 0;
  };

  mutable std::mutex mutex_;  ///< guards every script (shared across threads)
  StageScript scripts_[kSolveStageCount];
  ServiceScript service_;

  StageScript& script(SolveStage stage) {
    return scripts_[static_cast<int>(stage)];
  }
};

}  // namespace mcmi
