#pragma once
// Deadline-aware solve orchestrator: the request lifecycle of the
// solver-as-a-service layer (ROADMAP item 1).
//
// A SolveRequest carries everything but the matrix: rhs semantics
// (tolerance, Krylov method, iteration cap), a wall-clock deadline, the
// tuned MCMC parameters for the strongest stage, and a fallback ladder.
// The orchestrator walks the ladder — tuned MCMC preconditioner → ILU(0) →
// Jacobi → unpreconditioned by default — building each stage's
// preconditioner under a per-stage time budget, solving with cooperative
// cancellation threaded into the Krylov inner loops, and retrying
// transient failures with bounded backoff (GMRES escalates its restart
// length on breakdown/stagnation retries).  A stage that fails for a
// deterministic reason (divergent MCMC kernel, zero ILU pivot, breakdown)
// degrades to the next rung; only the request deadline or an explicit
// cancel() ends the ladder early.  Every attempt is recorded in the
// report's status history, so a caller can see exactly which stage served
// the answer and why the stronger ones did not.
//
// Fault injection (solve/fault_injection.hpp) hooks both the build and the
// solve side of every stage; handing the orchestrator an injector is the
// only switch, so tests and the degraded-path benchmark exercise the same
// code path production requests run.

#include <array>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "core/cancellation.hpp"
#include "core/status.hpp"
#include "krylov/solver.hpp"
#include "mcmc/inverter.hpp"
#include "mcmc/params.hpp"
#include "mcmc/walk_kernel.hpp"
#include "solve/fault_injection.hpp"
#include "solve/stage.hpp"
#include "sparse/csr.hpp"

namespace mcmi {

/// One rung of the fallback ladder with its local budgets.
struct StagePolicy {
  SolveStage stage = SolveStage::kJacobi;
  /// Wall-clock budget in seconds for this stage's build + solve attempts;
  /// <= 0 bounds the stage by the request deadline only.
  real_t time_budget = 0.0;
  /// Build + solve attempts before falling through to the next rung.
  index_t max_attempts = 1;
  /// Sleep before retry k (doubled each retry, never past the deadline).
  real_t backoff = 0.0;
};

/// The default ladder: tuned MCMC → ILU0 → Jacobi → unpreconditioned.
std::vector<StagePolicy> default_ladder();

/// Everything a solve request carries besides the matrix and the rhs.
struct SolveRequest {
  real_t tolerance = 1e-8;
  index_t max_iterations = 5000;
  index_t restart = 50;            ///< GMRES restart length (initial)
  KrylovMethod method = KrylovMethod::kGMRES;
  /// Wall-clock deadline for the whole request; infinity = unbounded.
  real_t deadline_seconds = std::numeric_limits<real_t>::infinity();
  index_t stagnation_window = 250; ///< see SolveOptions::stagnation_window
  McmcParams mcmc_params{};        ///< tuned parameters for the MCMC stage
  McmcOptions mcmc_options{};      ///< sampler knobs for the MCMC stage
  std::vector<StagePolicy> ladder = default_ladder();
  /// Double the GMRES restart length (capped at n) when a retry follows a
  /// breakdown or stagnation — the classical restart-escalation recovery.
  bool escalate_restart = true;
  /// Externally supplied stage artifacts (the serving layer's warm path):
  /// when supplied[stage] is set, that stage skips its build entirely — the
  /// artifact is used as-is, the attempt records build_status = kBuilt with
  /// zero build time, and fault injection does not apply to it (the
  /// injector scripts *builds*; a supplied artifact was built elsewhere).
  std::array<std::shared_ptr<const Preconditioner>, kSolveStageCount>
      supplied{};
  /// Set the supplied artifact for `stage` (see `supplied`).
  void supply(SolveStage stage, std::shared_ptr<const Preconditioner> p) {
    supplied[static_cast<std::size_t>(stage)] = std::move(p);
  }
  [[nodiscard]] const std::shared_ptr<const Preconditioner>& supplied_for(
      SolveStage stage) const {
    return supplied[static_cast<std::size_t>(stage)];
  }
  /// Optional parent cancel token (not owned; must outlive solve()).  The
  /// request-level token chains to it, so a serving layer can cancel a
  /// queued or in-flight request from another thread — and a deadline set
  /// on it at *submit* time makes queue wait count against the request.
  const CancelToken* external_cancel = nullptr;
};

/// One build + solve attempt of one ladder stage, in execution order.
struct StageAttempt {
  SolveStage stage = SolveStage::kIdentity;
  index_t attempt = 0;             ///< 0-based attempt index within the stage
  BuildStatus build_status = BuildStatus::kBuilt;
  bool solve_ran = false;          ///< false when the build already failed
  SolveStatus solve_status = SolveStatus::kMaxIterations;
  index_t iterations = 0;
  real_t residual = 0.0;
  index_t restart = 0;             ///< GMRES restart length used (0 otherwise)
  real_t build_seconds = 0.0;
  real_t solve_seconds = 0.0;
};

/// The request outcome plus the full status history of the ladder walk.
struct SolveReport {
  SolveStatus status = SolveStatus::kMaxIterations;
  SolveStage served_by = SolveStage::kIdentity;  ///< stage of the answer
  bool degraded = false;           ///< answered below the ladder's first rung
  index_t iterations = 0;
  real_t residual = 0.0;
  real_t total_seconds = 0.0;
  std::vector<StageAttempt> attempts;

  [[nodiscard]] bool converged() const {
    return status == SolveStatus::kConverged;
  }
  /// One-line human-readable history, e.g.
  /// "converged via jacobi | mcmc#0 build=injected_fault; jacobi#0
  ///  converged in 12 its".
  [[nodiscard]] std::string summary() const;
};

class SolveOrchestrator {
 public:
  /// `faults` (optional, not owned) must outlive the orchestrator.
  explicit SolveOrchestrator(const CsrMatrix& a,
                             FaultInjector* faults = nullptr);

  /// Run the request ladder.  `x` receives the answer (or the last
  /// attempt's iterate when nothing converged — check report.status).
  SolveReport solve(const std::vector<real_t>& b, std::vector<real_t>& x,
                    const SolveRequest& request = {});

  /// Cooperatively cancel the in-flight solve() from another thread; the
  /// next request starts with a clean slate.
  void cancel() { request_token_.request_cancel(); }

  /// Use an external (A, alpha) walk-kernel cache instead of the built-in
  /// per-orchestrator one.  Not owned; must outlive the orchestrator.  The
  /// serving layer passes the per-fingerprint cache of the ArtifactStore
  /// entry here so short-lived orchestrators still reuse kernels.
  void set_kernel_cache(WalkKernelCache* cache) {
    external_kernel_cache_ = cache;
  }

 private:
  std::shared_ptr<const Preconditioner> build_stage(
      const SolveRequest& request, const StagePolicy& policy,
      const CancelToken& token, StageAttempt& rec, bool& transient_fault,
      bool& injected_solve_fault);

  const CsrMatrix& a_;
  FaultInjector* faults_;
  WalkKernelCache kernel_cache_;  ///< reuses (A, alpha) kernels across requests
  WalkKernelCache* external_kernel_cache_ = nullptr;  ///< overrides the above
  CancelToken request_token_;
};

}  // namespace mcmi
