#pragma once
// The preconditioner ladder stages of the solve orchestrator.
//
// Shared by the orchestrator (which walks the ladder) and the
// fault-injection harness (which scripts faults per stage), so it lives in
// its own header below both.

namespace mcmi {

/// One rung of the staged fallback ladder, strongest first.
enum class SolveStage {
  kMcmc,      ///< tuned MCMC sparse approximate inverse (the paper's P)
  kIlu0,      ///< ILU(0) classical baseline
  kJacobi,    ///< diagonal scaling
  kIdentity,  ///< unpreconditioned last resort
};

inline constexpr int kSolveStageCount = 4;

inline const char* stage_name(SolveStage s) {
  switch (s) {
    case SolveStage::kMcmc: return "mcmc";
    case SolveStage::kIlu0: return "ilu0";
    case SolveStage::kJacobi: return "jacobi";
    case SolveStage::kIdentity: return "identity";
  }
  return "unknown";
}

}  // namespace mcmi
