#include "solve/orchestrator.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <sstream>
#include <thread>

#include "core/error.hpp"
#include "core/timer.hpp"
#include "precond/ilu0.hpp"
#include "precond/jacobi.hpp"

namespace mcmi {

namespace {

/// Sleep at most `seconds`, never past the token's nearest deadline (plus a
/// small grace so the deadline is observably passed when we wake).
void bounded_sleep(real_t seconds, const CancelToken& token) {
  if (seconds <= 0) return;
  const real_t remaining = token.remaining_seconds();
  if (std::isfinite(remaining)) {
    seconds = std::min(seconds, std::max<real_t>(remaining, 0) + 1e-3);
  }
  std::this_thread::sleep_for(std::chrono::duration<real_t>(seconds));
}

}  // namespace

std::vector<StagePolicy> default_ladder() {
  return {
      {SolveStage::kMcmc, 0.0, 1, 0.0},
      {SolveStage::kIlu0, 0.0, 1, 0.0},
      {SolveStage::kJacobi, 0.0, 1, 0.0},
      {SolveStage::kIdentity, 0.0, 1, 0.0},
  };
}

std::string SolveReport::summary() const {
  std::ostringstream out;
  out << to_string(status) << " via " << stage_name(served_by);
  if (degraded) out << " (degraded)";
  out << " |";
  for (const StageAttempt& a : attempts) {
    out << " " << stage_name(a.stage) << "#" << a.attempt;
    if (a.build_status != BuildStatus::kBuilt) {
      out << " build=" << to_string(a.build_status) << ";";
      continue;
    }
    if (!a.solve_ran) {
      out << " built;";
      continue;
    }
    out << " " << to_string(a.solve_status) << " in " << a.iterations
        << " its;";
  }
  return out.str();
}

SolveOrchestrator::SolveOrchestrator(const CsrMatrix& a, FaultInjector* faults)
    : a_(a), faults_(faults) {}

std::shared_ptr<const Preconditioner> SolveOrchestrator::build_stage(
    const SolveRequest& request, const StagePolicy& policy,
    const CancelToken& token, StageAttempt& rec, bool& transient_fault,
    bool& injected_solve_fault) {
  transient_fault = false;
  injected_solve_fault = false;
  WallTimer timer;

  // A supplied artifact (the serving layer's warm path) bypasses the build
  // entirely, including fault injection: the injector scripts *builds*, and
  // this artifact was built elsewhere.
  if (const auto& supplied = request.supplied_for(policy.stage)) {
    rec.build_status = BuildStatus::kBuilt;
    rec.build_seconds = timer.seconds();
    return supplied;
  }

  if (faults_ != nullptr) {
    const FaultInjector::BuildFault fault = faults_->next_build(policy.stage);
    bounded_sleep(fault.delay_seconds, token);
    if (fault.fail) {
      rec.build_status = fault.status;
      transient_fault = fault.transient;
      rec.build_seconds = timer.seconds();
      return nullptr;
    }
  }

  if (token.should_stop()) {
    rec.build_status = build_stop_reason(token);
    rec.build_seconds = timer.seconds();
    return nullptr;
  }

  std::unique_ptr<Preconditioner> p;
  switch (policy.stage) {
    case SolveStage::kMcmc: {
      McmcOptions mo = request.mcmc_options;
      mo.cancel = &token;
      McmcInverter inverter(a_, request.mcmc_params, mo);
      inverter.set_kernel_cache(external_kernel_cache_ != nullptr
                                    ? external_kernel_cache_
                                    : &kernel_cache_);
      CsrMatrix pm = inverter.compute();
      const McmcBuildInfo& info = inverter.info();
      if (info.status != BuildStatus::kBuilt) {
        rec.build_status = info.status;
      } else if (!info.neumann_convergent) {
        // A divergent walk kernel yields garbage weights — retiring the
        // stage deterministically beats serving a poisoned P.
        rec.build_status = BuildStatus::kDivergentKernel;
      } else {
        p = std::make_unique<SparseApproximateInverse>(std::move(pm), "mcmc");
      }
      break;
    }
    case SolveStage::kIlu0:
      try {
        p = std::make_unique<Ilu0Preconditioner>(a_);
      } catch (const Error&) {
        rec.build_status = BuildStatus::kZeroPivot;
      }
      break;
    case SolveStage::kJacobi:
      try {
        p = std::make_unique<JacobiPreconditioner>(a_);
      } catch (const Error&) {
        rec.build_status = BuildStatus::kZeroPivot;
      }
      break;
    case SolveStage::kIdentity:
      p = std::make_unique<IdentityPreconditioner>();
      break;
  }

  if (p != nullptr && faults_ != nullptr) {
    p = faults_->wrap(policy.stage, std::move(p), &injected_solve_fault);
  }
  rec.build_seconds = timer.seconds();
  return std::shared_ptr<const Preconditioner>(std::move(p));
}

SolveReport SolveOrchestrator::solve(const std::vector<real_t>& b,
                                     std::vector<real_t>& x,
                                     const SolveRequest& request) {
  WallTimer timer;
  SolveReport report;
  request_token_.reset();
  request_token_.chain_to(request.external_cancel);
  if (std::isfinite(request.deadline_seconds)) {
    request_token_.set_deadline(request.deadline_seconds);
  } else {
    request_token_.clear_deadline();
  }

  for (std::size_t si = 0; si < request.ladder.size(); ++si) {
    const StagePolicy& policy = request.ladder[si];
    if (request_token_.should_stop()) {
      report.status = stop_reason(request_token_);
      break;
    }

    CancelToken stage_token;
    stage_token.chain_to(&request_token_);
    if (policy.time_budget > 0) stage_token.set_deadline(policy.time_budget);

    index_t restart = request.restart;
    const index_t max_attempts = std::max<index_t>(policy.max_attempts, 1);
    for (index_t attempt = 0; attempt < max_attempts; ++attempt) {
      report.attempts.push_back({});
      StageAttempt& rec = report.attempts.back();
      rec.stage = policy.stage;
      rec.attempt = attempt;

      bool transient_fault = false;
      bool injected_solve_fault = false;
      std::shared_ptr<const Preconditioner> p = build_stage(
          request, policy, stage_token, rec, transient_fault,
          injected_solve_fault);

      if (p == nullptr) {
        if (is_budget_stop(rec.build_status)) break;  // stage budget spent
        if (transient_fault && attempt + 1 < max_attempts) {
          bounded_sleep(policy.backoff * std::pow(2.0, attempt),
                        stage_token);
          continue;  // retry the build within the stage
        }
        break;  // deterministic build failure: fall through the ladder
      }

      SolveOptions opts;
      opts.tolerance = request.tolerance;
      opts.max_iterations = request.max_iterations;
      opts.restart = restart;
      opts.stagnation_window = request.stagnation_window;
      opts.cancel = &stage_token;

      WallTimer solve_timer;
      SolveResult res = mcmi::solve(request.method, a_, b, *p, x, opts);
      rec.solve_ran = true;
      rec.solve_status = res.status;
      rec.iterations = res.iterations;
      rec.residual = res.residual;
      rec.restart = request.method == KrylovMethod::kGMRES ? restart : 0;
      rec.solve_seconds = solve_timer.seconds();

      if (res.status == SolveStatus::kConverged) {
        report.status = SolveStatus::kConverged;
        report.served_by = policy.stage;
        report.degraded = si > 0;
        report.iterations = res.iterations;
        report.residual = res.residual;
        report.total_seconds = timer.seconds();
        return report;
      }

      report.status = res.status;
      report.served_by = policy.stage;
      report.iterations = res.iterations;
      report.residual = res.residual;

      if (is_budget_stop(res.status)) break;  // stage budget spent

      // Retryable within the stage: an injected solve-side fault (the
      // injector consumed its script, so the retry runs clean), or a
      // breakdown/stagnation that a longer GMRES restart may clear.
      bool retry = injected_solve_fault;
      if (request.escalate_restart &&
          request.method == KrylovMethod::kGMRES &&
          (res.status == SolveStatus::kBreakdown ||
           res.status == SolveStatus::kStagnation)) {
        restart = std::min<index_t>(restart * 2, a_.rows());
        retry = true;
      }
      if (!retry || attempt + 1 >= max_attempts) break;
      bounded_sleep(policy.backoff * std::pow(2.0, attempt), stage_token);
    }

    // If the whole request (not just the stage budget) is spent, stop.
    if (request_token_.should_stop()) {
      report.status = stop_reason(request_token_);
      break;
    }
    if (si + 1 < request.ladder.size()) report.degraded = true;
  }

  report.total_seconds = timer.seconds();
  return report;
}

}  // namespace mcmi
