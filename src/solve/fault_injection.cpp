#include "solve/fault_injection.hpp"

#include <atomic>
#include <limits>
#include <utility>

namespace mcmi {

namespace {

/// Decorator that passes the first `clean_applies` applications through to
/// the wrapped preconditioner and then emits a constant `fill` value —
/// quiet_NaN for poisoned intermediate vectors, 0.0 for forced breakdowns.
/// Only apply() is overridden: the base class's fused apply_dot /
/// apply_dot_norm2 defaults route through it, so every solver entry point
/// sees the fault.  The counter is atomic so the decorator stays safe if a
/// solver ever applies from a parallel region.
class DegradingPreconditioner final : public Preconditioner {
 public:
  DegradingPreconditioner(std::unique_ptr<Preconditioner> inner, real_t fill,
                          index_t clean_applies)
      : inner_(std::move(inner)), fill_(fill), clean_(clean_applies) {}

  using Preconditioner::apply;
  void apply(const std::vector<real_t>& x,
             std::vector<real_t>& y) const override {
    if (applies_.fetch_add(1, std::memory_order_relaxed) < clean_) {
      inner_->apply(x, y);
      return;
    }
    y.assign(x.size(), fill_);
  }

  [[nodiscard]] std::string name() const override {
    return inner_->name() + "+fault";
  }

 private:
  std::unique_ptr<Preconditioner> inner_;
  real_t fill_;
  index_t clean_;
  mutable std::atomic<index_t> applies_{0};
};

}  // namespace

void FaultInjector::fail_builds(SolveStage stage, index_t count,
                                bool transient, BuildStatus status) {
  std::lock_guard<std::mutex> lock(mutex_);
  StageScript& s = script(stage);
  s.fail_remaining = count;
  s.fail_transient = transient;
  s.fail_status = status;
}

void FaultInjector::delay_builds(SolveStage stage, real_t seconds,
                                 index_t count) {
  std::lock_guard<std::mutex> lock(mutex_);
  StageScript& s = script(stage);
  s.delay_remaining = count;
  s.delay_seconds = seconds;
}

void FaultInjector::poison_solves(SolveStage stage, index_t count) {
  std::lock_guard<std::mutex> lock(mutex_);
  script(stage).poison_remaining = count;
}

void FaultInjector::break_solves(SolveStage stage, index_t count) {
  std::lock_guard<std::mutex> lock(mutex_);
  script(stage).break_remaining = count;
}

void FaultInjector::hang_service_builds(index_t count) {
  std::lock_guard<std::mutex> lock(mutex_);
  service_.hang_remaining = count;
}

void FaultInjector::fail_service_builds(index_t count, BuildStatus status) {
  std::lock_guard<std::mutex> lock(mutex_);
  service_.fail_remaining = count;
  service_.fail_status = status;
}

void FaultInjector::set_store_pressure_bytes(std::size_t bytes) {
  std::lock_guard<std::mutex> lock(mutex_);
  service_.pressure_bytes = bytes;
}

std::size_t FaultInjector::store_pressure_bytes() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return service_.pressure_bytes;
}

FaultInjector::ServiceBuildFault FaultInjector::next_service_build() {
  std::lock_guard<std::mutex> lock(mutex_);
  ++service_.builds;
  ServiceBuildFault fault;
  // A scripted hang wins over a scripted failure: the hang models the
  // build never reaching its own failure path.
  if (service_.hang_remaining > 0) {
    --service_.hang_remaining;
    fault.hang = true;
    return fault;
  }
  if (service_.fail_remaining > 0) {
    --service_.fail_remaining;
    fault.fail = true;
    fault.status = service_.fail_status;
  }
  return fault;
}

index_t FaultInjector::service_builds_seen() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return service_.builds;
}

FaultInjector::BuildFault FaultInjector::next_build(SolveStage stage) {
  std::lock_guard<std::mutex> lock(mutex_);
  StageScript& s = script(stage);
  ++s.builds;
  BuildFault fault;
  if (s.delay_remaining > 0) {
    --s.delay_remaining;
    fault.delay_seconds = s.delay_seconds;
  }
  if (s.fail_remaining > 0) {
    --s.fail_remaining;
    fault.fail = true;
    fault.transient = s.fail_transient;
    fault.status = s.fail_status;
  }
  return fault;
}

std::unique_ptr<Preconditioner> FaultInjector::wrap(
    SolveStage stage, std::unique_ptr<Preconditioner> p, bool* injected) {
  std::lock_guard<std::mutex> lock(mutex_);
  StageScript& s = script(stage);
  *injected = false;
  if (s.poison_remaining > 0) {
    --s.poison_remaining;
    *injected = true;
    // First apply clean (the solve starts plausibly), then NaN vectors.
    return std::make_unique<DegradingPreconditioner>(
        std::move(p), std::numeric_limits<real_t>::quiet_NaN(), 1);
  }
  if (s.break_remaining > 0) {
    --s.break_remaining;
    *injected = true;
    // Zero output collapses the Krylov inner products to an exact breakdown.
    // Two clean applies let the solver get past its initial-residual setup
    // (where a zero P r would read as a spurious "already converged") so the
    // zeros land inside the iteration and surface as kBreakdown.
    return std::make_unique<DegradingPreconditioner>(std::move(p), 0.0, 2);
  }
  return p;
}

index_t FaultInjector::builds_seen(SolveStage stage) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return scripts_[static_cast<int>(stage)].builds;
}

}  // namespace mcmi
