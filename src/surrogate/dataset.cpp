#include "surrogate/dataset.hpp"

#include <algorithm>

#include "core/error.hpp"
#include "core/rng.hpp"

namespace mcmi {

std::vector<real_t> encode_xm(const McmcParams& params, KrylovMethod method) {
  std::vector<real_t> xm(static_cast<std::size_t>(kXmWidth), 0.0);
  xm[0] = params.alpha;
  xm[1] = params.eps;
  xm[2] = params.delta;
  switch (method) {
    case KrylovMethod::kCG: xm[3] = 1.0; break;
    case KrylovMethod::kGMRES: xm[4] = 1.0; break;
    case KrylovMethod::kBiCGStab: xm[5] = 1.0; break;
  }
  return xm;
}

index_t SurrogateDataset::add_matrix(std::string name, gnn::Graph graph,
                                     std::vector<real_t> xa) {
  matrix_names.push_back(std::move(name));
  graphs.push_back(std::move(graph));
  features.push_back(std::move(xa));
  return static_cast<index_t>(graphs.size()) - 1;
}

void SurrogateDataset::split(real_t validation_fraction, u64 seed,
                             std::vector<LabeledSample>& train,
                             std::vector<LabeledSample>& validation) const {
  MCMI_CHECK(validation_fraction >= 0.0 && validation_fraction < 1.0,
             "validation fraction must be in [0,1)");
  std::vector<index_t> order(samples.size());
  for (std::size_t i = 0; i < order.size(); ++i) {
    order[i] = static_cast<index_t>(i);
  }
  // Fisher-Yates with a deterministic stream.
  Xoshiro256 rng = make_stream(seed, 0x51);
  for (std::size_t i = order.size(); i > 1; --i) {
    const std::size_t j = static_cast<std::size_t>(uniform_index(rng, i));
    std::swap(order[i - 1], order[j]);
  }
  const std::size_t n_val = static_cast<std::size_t>(
      validation_fraction * static_cast<real_t>(samples.size()));
  train.clear();
  validation.clear();
  for (std::size_t i = 0; i < order.size(); ++i) {
    if (i < n_val) validation.push_back(samples[order[i]]);
    else train.push_back(samples[order[i]]);
  }
}

}  // namespace mcmi
