#pragma once
// The graph neural surrogate model f_theta (§3.1).
//
// Three branches processed separately before fusion:
//   G   --(l_g message-passing layers + mean pooling)-->  h_g
//   x_A --(l_A FC layers)-->                              h_A
//   x_M --(l_M FC layers)-->                              h_M
// concat(h_g, h_A, h_M) --(l_c FC layers with dropout)--> h_combined
//
// Two linear heads give the prediction (eq. 1):
//   mu_hat    = ReLU(W_mu h + b_mu)
//   sigma_hat = softplus(W_sigma h + b_sigma)
//
// The paper's selected architecture (§4.4) is one EdgeConv layer with mean
// aggregation (hidden 256), one 64-wide FC layer for x_A, three 16-wide FC
// layers for x_M and two 128-wide combined layers; `paper_config()` returns
// exactly that, `default_config()` a CPU-friendly scaled-down twin.

#include <string>
#include <vector>

#include "gnn/stack.hpp"
#include "nn/activations.hpp"
#include "nn/linear.hpp"
#include "nn/mlp.hpp"
#include "surrogate/dataset.hpp"
#include "surrogate/standardizer.hpp"

namespace mcmi {

struct SurrogateConfig {
  gnn::GnnConfig gnn;            ///< graph branch
  index_t xa_hidden = 32;        ///< FC width for x_A
  index_t xa_layers = 1;
  index_t xm_hidden = 16;        ///< FC width for x_M
  index_t xm_layers = 3;
  index_t combined_hidden = 64;  ///< FC width after fusion
  index_t combined_layers = 2;
  real_t dropout = 0.1;          ///< dropout in the combined stack
  u64 seed = 42;
};

/// The architecture selected by the paper's HPO (§4.4).
SurrogateConfig paper_config();
/// Scaled-down configuration for CPU-sized experiments.
SurrogateConfig default_config();

/// Predicted mean and standard deviation of y(A, x_M).
struct Prediction {
  real_t mu = 0.0;
  real_t sigma = 0.0;
};

/// Training objective.  The paper trains with the eq. (2) MSE on
/// (mu - ybar, sigma - s) and notes a Gaussian negative log-likelihood
/// "could also be considered" but is numerically delicate for tiny s;
/// kGaussianNll implements it with a variance floor.
enum class SurrogateLoss { kMse, kGaussianNll };

/// Prediction together with gradients w.r.t. the raw continuous x_M
/// components (alpha, eps, delta) — what the EI maximiser consumes.
struct PredictionWithGrad {
  Prediction value;
  std::vector<real_t> dmu_dxm;     ///< size kXmWidth (raw space)
  std::vector<real_t> dsigma_dxm;  ///< size kXmWidth (raw space)
};

class SurrogateModel {
 public:
  explicit SurrogateModel(const SurrogateConfig& config);

  /// Fit the x_A / x_M standardisers (must precede training/prediction).
  void fit_standardizers(const SurrogateDataset& dataset);

  /// Predict for one (graph, x_A, x_M) triple (eval mode, no dropout).
  Prediction predict(const gnn::Graph& graph, const std::vector<real_t>& xa,
                     const std::vector<real_t>& xm);

  /// Cache h_g and h_A for a fixed matrix so that repeated x_M queries (the
  /// BO inner loop) cost only the small FC stacks.
  void cache_matrix(const gnn::Graph& graph, const std::vector<real_t>& xa);

  /// Predict using the cached matrix embedding.
  Prediction predict_cached(const std::vector<real_t>& xm);

  /// Predict + exact input gradients via backprop (cached matrix).
  PredictionWithGrad predict_cached_with_grad(const std::vector<real_t>& xm);

  /// One training minibatch on a single graph: forward + backward of the
  /// selected objective (eq. (2) MSE by default).  Returns the batch loss.
  /// Gradients accumulate into the parameters (caller runs the optimiser
  /// step).
  real_t train_batch(const gnn::Graph& graph, const std::vector<real_t>& xa,
                     const std::vector<const LabeledSample*>& batch,
                     SurrogateLoss loss = SurrogateLoss::kMse);

  /// All trainable parameters.
  std::vector<nn::Parameter*> parameters();

  [[nodiscard]] const SurrogateConfig& config() const { return config_; }
  [[nodiscard]] const Standardizer& xm_standardizer() const {
    return xm_std_;
  }

  /// Binary serialisation of weights + standardisers.
  void save(const std::string& path) const;
  void load(const std::string& path);

 private:
  SurrogateConfig config_;
  gnn::GnnStack gnn_;
  nn::Mlp xa_mlp_;
  nn::Mlp xm_mlp_;
  nn::Mlp combined_;
  nn::Linear head_mu_;
  nn::Linear head_sigma_;
  Standardizer xa_std_;
  Standardizer xm_std_;

  // Cached matrix embedding for the BO inner loop.
  nn::Tensor cached_hg_;
  nn::Tensor cached_ha_;
  bool has_cache_ = false;

  // Caches of the last forward pass (training path).
  nn::Tensor last_pre_mu_;
  nn::Tensor last_pre_sigma_;
};

}  // namespace mcmi
