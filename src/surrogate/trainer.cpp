#include "surrogate/trainer.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>

#include "core/rng.hpp"
#include "nn/adam.hpp"

namespace mcmi {

namespace {

/// Group sample pointers by matrix id and cut each group into minibatches.
std::vector<std::vector<const LabeledSample*>> make_batches(
    const std::vector<LabeledSample>& samples, index_t batch_size,
    Xoshiro256& rng) {
  std::map<index_t, std::vector<const LabeledSample*>> by_matrix;
  for (const LabeledSample& s : samples) by_matrix[s.matrix_id].push_back(&s);

  std::vector<std::vector<const LabeledSample*>> batches;
  for (auto& [id, group] : by_matrix) {
    // Shuffle within the group so batch composition varies across epochs.
    for (std::size_t i = group.size(); i > 1; --i) {
      std::swap(group[i - 1], group[uniform_index(rng, i)]);
    }
    for (std::size_t begin = 0; begin < group.size();
         begin += static_cast<std::size_t>(batch_size)) {
      const std::size_t end =
          std::min(group.size(), begin + static_cast<std::size_t>(batch_size));
      batches.emplace_back(group.begin() + begin, group.begin() + end);
    }
  }
  // Shuffle batch order.
  for (std::size_t i = batches.size(); i > 1; --i) {
    std::swap(batches[i - 1], batches[uniform_index(rng, i)]);
  }
  return batches;
}

}  // namespace

real_t evaluate_loss(SurrogateModel& model, const SurrogateDataset& dataset,
                     const std::vector<LabeledSample>& samples) {
  if (samples.empty()) return 0.0;
  real_t loss = 0.0;
  index_t cached = -1;
  for (const LabeledSample& s : samples) {
    if (s.matrix_id != cached) {
      model.cache_matrix(dataset.graphs[s.matrix_id],
                         dataset.features[s.matrix_id]);
      cached = s.matrix_id;
    }
    const Prediction p = model.predict_cached(s.xm);
    loss += (p.mu - s.y_mean) * (p.mu - s.y_mean) +
            (p.sigma - s.y_std) * (p.sigma - s.y_std);
  }
  return loss / static_cast<real_t>(samples.size());
}

real_t evaluate_rmse(SurrogateModel& model, const SurrogateDataset& dataset,
                     const std::vector<LabeledSample>& samples) {
  if (samples.empty()) return 0.0;
  real_t se = 0.0;
  index_t cached = -1;
  for (const LabeledSample& s : samples) {
    if (s.matrix_id != cached) {
      model.cache_matrix(dataset.graphs[s.matrix_id],
                         dataset.features[s.matrix_id]);
      cached = s.matrix_id;
    }
    const Prediction p = model.predict_cached(s.xm);
    se += (p.mu - s.y_mean) * (p.mu - s.y_mean);
  }
  return std::sqrt(se / static_cast<real_t>(samples.size()));
}

TrainReport train_surrogate(SurrogateModel& model,
                            const SurrogateDataset& dataset,
                            const std::vector<LabeledSample>& train,
                            const std::vector<LabeledSample>& validation,
                            const TrainOptions& options) {
  MCMI_CHECK(!train.empty(), "no training samples");

  nn::AdamConfig adam_config;
  adam_config.learning_rate = options.learning_rate;
  adam_config.weight_decay = options.weight_decay;
  nn::Adam adam(model.parameters(), adam_config);
  adam.zero_grad();

  // Evaluation order: sort by matrix so cache_matrix is amortised.
  std::vector<LabeledSample> val_sorted = validation;
  std::sort(val_sorted.begin(), val_sorted.end(),
            [](const LabeledSample& a, const LabeledSample& b) {
              return a.matrix_id < b.matrix_id;
            });

  TrainReport report;
  report.best_validation_loss = std::numeric_limits<real_t>::infinity();
  Xoshiro256 rng = make_stream(options.seed, 0x7e);

  for (index_t epoch = 0; epoch < options.epochs; ++epoch) {
    real_t train_loss = 0.0;
    index_t batch_count = 0;
    for (const auto& batch : make_batches(train, options.batch_size, rng)) {
      const index_t matrix_id = batch.front()->matrix_id;
      train_loss += model.train_batch(dataset.graphs[matrix_id],
                                      dataset.features[matrix_id], batch,
                                      options.loss);
      adam.step();
      ++batch_count;
    }
    train_loss /= std::max<index_t>(1, batch_count);

    const real_t val_loss = evaluate_loss(model, dataset, val_sorted);
    report.epochs_run = epoch + 1;
    report.final_train_loss = train_loss;
    report.final_validation_loss = val_loss;
    report.best_validation_loss =
        std::min(report.best_validation_loss, val_loss);

    if (options.on_epoch && !options.on_epoch(epoch, train_loss, val_loss)) {
      break;
    }
  }
  return report;
}

}  // namespace mcmi
