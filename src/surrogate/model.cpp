#include "surrogate/model.hpp"

#include <cmath>
#include <fstream>

#include "core/error.hpp"
#include "features/matrix_features.hpp"

namespace mcmi {

SurrogateConfig paper_config() {
  SurrogateConfig c;
  c.gnn.kind = gnn::LayerKind::kEdgeConv;
  c.gnn.aggregation = gnn::Aggregation::kMean;
  c.gnn.hidden = 256;
  c.gnn.layers = 1;
  c.xa_hidden = 64;
  c.xa_layers = 1;
  c.xm_hidden = 16;
  c.xm_layers = 3;
  c.combined_hidden = 128;
  c.combined_layers = 2;
  c.dropout = 0.1;
  return c;
}

SurrogateConfig default_config() {
  SurrogateConfig c;
  c.gnn.kind = gnn::LayerKind::kEdgeConv;
  c.gnn.aggregation = gnn::Aggregation::kMean;
  c.gnn.hidden = 32;
  c.gnn.layers = 1;
  c.xa_hidden = 16;
  c.xa_layers = 1;
  c.xm_hidden = 16;
  c.xm_layers = 2;
  c.combined_hidden = 32;
  c.combined_layers = 2;
  c.dropout = 0.05;
  return c;
}

namespace {

nn::MlpConfig branch_config(index_t in, index_t hidden, index_t layers,
                            real_t dropout = 0.0) {
  nn::MlpConfig m;
  m.in_features = in;
  m.hidden = hidden;
  m.hidden_layers = layers;
  m.out_features = hidden;
  m.dropout = dropout;
  m.layer_norm = true;
  m.final_activation = true;
  return m;
}

}  // namespace

SurrogateModel::SurrogateModel(const SurrogateConfig& config)
    : config_(config),
      gnn_(config.gnn, /*node_feature_width=*/1, mix64(config.seed + 1)),
      xa_mlp_(branch_config(MatrixFeatures::count(), config.xa_hidden,
                            config.xa_layers),
              mix64(config.seed + 2)),
      xm_mlp_(branch_config(kXmWidth, config.xm_hidden, config.xm_layers),
              mix64(config.seed + 3)),
      combined_(branch_config(config.gnn.hidden + config.xa_hidden +
                                  config.xm_hidden,
                              config.combined_hidden, config.combined_layers,
                              config.dropout),
                mix64(config.seed + 4)),
      head_mu_(config.combined_hidden, 1, mix64(config.seed + 5)),
      head_sigma_(config.combined_hidden, 1, mix64(config.seed + 6)) {}

void SurrogateModel::fit_standardizers(const SurrogateDataset& dataset) {
  MCMI_CHECK(!dataset.samples.empty(), "empty dataset");
  xa_std_.fit(dataset.features);
  std::vector<std::vector<real_t>> xms;
  xms.reserve(dataset.samples.size());
  for (const auto& s : dataset.samples) xms.push_back(s.xm);
  xm_std_.fit(xms);
}

Prediction SurrogateModel::predict(const gnn::Graph& graph,
                                   const std::vector<real_t>& xa,
                                   const std::vector<real_t>& xm) {
  cache_matrix(graph, xa);
  return predict_cached(xm);
}

void SurrogateModel::cache_matrix(const gnn::Graph& graph,
                                  const std::vector<real_t>& xa) {
  MCMI_CHECK(xa_std_.fitted(), "standardizers not fitted");
  cached_hg_ = gnn_.forward(graph, /*train=*/false);
  cached_ha_ = xa_mlp_.forward(nn::Tensor::from_row(xa_std_.transform(xa)),
                               /*train=*/false);
  has_cache_ = true;
}

Prediction SurrogateModel::predict_cached(const std::vector<real_t>& xm) {
  MCMI_CHECK(has_cache_, "no cached matrix; call cache_matrix first");
  const nn::Tensor hm = xm_mlp_.forward(
      nn::Tensor::from_row(xm_std_.transform(xm)), /*train=*/false);
  const nn::Tensor fused = nn::hconcat({&cached_hg_, &cached_ha_, &hm});
  const nn::Tensor hc = combined_.forward(fused, /*train=*/false);
  const nn::Tensor pre_mu = head_mu_.forward(hc, false);
  const nn::Tensor pre_sigma = head_sigma_.forward(hc, false);
  Prediction p;
  p.mu = std::max(0.0, pre_mu(0, 0));
  p.sigma = nn::Softplus::value(pre_sigma(0, 0));
  return p;
}

PredictionWithGrad SurrogateModel::predict_cached_with_grad(
    const std::vector<real_t>& xm) {
  MCMI_CHECK(has_cache_, "no cached matrix; call cache_matrix first");
  const std::vector<real_t> xm_standardised = xm_std_.transform(xm);
  const nn::Tensor xm_in = nn::Tensor::from_row(xm_standardised);

  // Forward (eval mode).
  const nn::Tensor hm = xm_mlp_.forward(xm_in, false);
  const nn::Tensor fused = nn::hconcat({&cached_hg_, &cached_ha_, &hm});
  const nn::Tensor hc = combined_.forward(fused, false);
  const nn::Tensor pre_mu = head_mu_.forward(hc, false);
  const nn::Tensor pre_sigma = head_sigma_.forward(hc, false);

  PredictionWithGrad out;
  out.value.mu = std::max(0.0, pre_mu(0, 0));
  out.value.sigma = nn::Softplus::value(pre_sigma(0, 0));

  const index_t hg_w = cached_hg_.cols();
  const index_t ha_w = cached_ha_.cols();
  const index_t hm_w = hm.cols();

  // Backward pass per head.  Parameter gradients accumulate but callers in
  // the BO loop zero them before training, so only input grads matter here.
  auto input_grad = [&](nn::Linear& head, real_t outer) {
    nn::Tensor g(1, 1);
    g(0, 0) = outer;
    nn::Tensor ghc = head.backward(g);
    nn::Tensor gfused = combined_.backward(ghc);
    nn::Tensor ghm(1, hm_w);
    for (index_t c = 0; c < hm_w; ++c) ghm(0, c) = gfused(0, hg_w + ha_w + c);
    const nn::Tensor gxm = xm_mlp_.backward(ghm);
    std::vector<real_t> grad(static_cast<std::size_t>(kXmWidth), 0.0);
    for (index_t c = 0; c < kXmWidth; ++c) {
      // Chain rule back to raw parameter space through the standardiser.
      grad[c] = gxm(0, c) * xm_std_.scale(c);
    }
    return grad;
  };

  // d mu / d pre_mu: ReLU gate.
  const real_t mu_gate = pre_mu(0, 0) > 0.0 ? 1.0 : 0.0;
  out.dmu_dxm = input_grad(head_mu_, mu_gate);

  // Re-run the forward of the shared trunk so the caches match before the
  // second backward (backward() consumes the cached activations).
  xm_mlp_.forward(xm_in, false);
  combined_.forward(fused, false);
  head_sigma_.forward(hc, false);
  const real_t sigma_gate = nn::Softplus::derivative(pre_sigma(0, 0));
  out.dsigma_dxm = input_grad(head_sigma_, sigma_gate);
  return out;
}

real_t SurrogateModel::train_batch(
    const gnn::Graph& graph, const std::vector<real_t>& xa,
    const std::vector<const LabeledSample*>& batch, SurrogateLoss loss_kind) {
  MCMI_CHECK(!batch.empty(), "empty batch");
  MCMI_CHECK(xa_std_.fitted(), "standardizers not fitted");
  const index_t b = static_cast<index_t>(batch.size());

  // Branch forwards.  h_g and h_A are shared by every row of the batch.
  const nn::Tensor hg = gnn_.forward(graph, /*train=*/true);
  const nn::Tensor ha = xa_mlp_.forward(
      nn::Tensor::from_row(xa_std_.transform(xa)), /*train=*/true);
  nn::Tensor xm_in(b, kXmWidth);
  for (index_t r = 0; r < b; ++r) {
    xm_in.set_row(r, xm_std_.transform(batch[r]->xm));
  }
  const nn::Tensor hm = xm_mlp_.forward(xm_in, /*train=*/true);

  nn::Tensor fused(b, hg.cols() + ha.cols() + hm.cols());
  for (index_t r = 0; r < b; ++r) {
    index_t off = 0;
    for (index_t c = 0; c < hg.cols(); ++c) fused(r, off++) = hg(0, c);
    for (index_t c = 0; c < ha.cols(); ++c) fused(r, off++) = ha(0, c);
    for (index_t c = 0; c < hm.cols(); ++c) fused(r, off++) = hm(r, c);
  }

  const nn::Tensor hc = combined_.forward(fused, /*train=*/true);
  last_pre_mu_ = head_mu_.forward(hc, true);
  // head_sigma_ shares hc; its Linear caches hc internally.
  last_pre_sigma_ = head_sigma_.forward(hc, true);

  // Loss and its head gradients.  kMse is eq. (2): mean over the batch of
  // (mu - ybar)^2 + (sigma - s)^2.  kGaussianNll is the per-sample
  // ln(v) + (ybar - mu)^2 / v with v = sigma^2 + floor (the floor supplies
  // the numerical stability the paper flags as the NLL's weakness).
  real_t loss = 0.0;
  nn::Tensor gmu(b, 1), gsigma(b, 1);
  const real_t inv_b = 1.0 / static_cast<real_t>(b);
  constexpr real_t kVarianceFloor = 1e-6;
  for (index_t r = 0; r < b; ++r) {
    const real_t mu = std::max(0.0, last_pre_mu_(r, 0));
    const real_t sigma = nn::Softplus::value(last_pre_sigma_(r, 0));
    const real_t mu_gate = last_pre_mu_(r, 0) > 0.0 ? 1.0 : 0.0;
    const real_t sigma_gate =
        nn::Softplus::derivative(last_pre_sigma_(r, 0));
    if (loss_kind == SurrogateLoss::kMse) {
      const real_t dmu = mu - batch[r]->y_mean;
      const real_t dsigma = sigma - batch[r]->y_std;
      loss += (dmu * dmu + dsigma * dsigma) * inv_b;
      gmu(r, 0) = 2.0 * dmu * inv_b * mu_gate;
      gsigma(r, 0) = 2.0 * dsigma * inv_b * sigma_gate;
    } else {
      const real_t v = sigma * sigma + kVarianceFloor;
      const real_t resid = batch[r]->y_mean - mu;
      loss += (std::log(v) + resid * resid / v) * inv_b;
      gmu(r, 0) = -2.0 * resid / v * inv_b * mu_gate;
      gsigma(r, 0) =
          (2.0 * sigma / v) * (1.0 - resid * resid / v) * inv_b * sigma_gate;
    }
  }

  // Backward: heads share the combined output, so their input grads add.
  nn::Tensor ghc = head_mu_.backward(gmu);
  ghc.add_scaled(head_sigma_.backward(gsigma));
  const nn::Tensor gfused = combined_.backward(ghc);

  nn::Tensor ghg(1, hg.cols()), gha(1, ha.cols()), ghm(b, hm.cols());
  for (index_t r = 0; r < b; ++r) {
    index_t off = 0;
    for (index_t c = 0; c < hg.cols(); ++c) ghg(0, c) += gfused(r, off++);
    for (index_t c = 0; c < ha.cols(); ++c) gha(0, c) += gfused(r, off++);
    for (index_t c = 0; c < hm.cols(); ++c) ghm(r, c) = gfused(r, off++);
  }
  xm_mlp_.backward(ghm);
  xa_mlp_.backward(gha);
  gnn_.backward(graph, ghg);
  return loss;
}

std::vector<nn::Parameter*> SurrogateModel::parameters() {
  std::vector<nn::Parameter*> out;
  for (auto* p : gnn_.parameters()) out.push_back(p);
  for (auto* p : xa_mlp_.parameters()) out.push_back(p);
  for (auto* p : xm_mlp_.parameters()) out.push_back(p);
  for (auto* p : combined_.parameters()) out.push_back(p);
  for (auto* p : head_mu_.parameters()) out.push_back(p);
  for (auto* p : head_sigma_.parameters()) out.push_back(p);
  return out;
}

namespace {

void write_tensor(std::ofstream& out, const nn::Tensor& t) {
  const index_t r = t.rows(), c = t.cols();
  out.write(reinterpret_cast<const char*>(&r), sizeof(r));
  out.write(reinterpret_cast<const char*>(&c), sizeof(c));
  out.write(reinterpret_cast<const char*>(t.data().data()),
            static_cast<std::streamsize>(t.size() * sizeof(real_t)));
}

nn::Tensor read_tensor(std::ifstream& in) {
  index_t r = 0, c = 0;
  in.read(reinterpret_cast<char*>(&r), sizeof(r));
  in.read(reinterpret_cast<char*>(&c), sizeof(c));
  MCMI_CHECK(in.good() && r >= 0 && c >= 0, "corrupt model file");
  nn::Tensor t(r, c);
  in.read(reinterpret_cast<char*>(t.data().data()),
          static_cast<std::streamsize>(t.size() * sizeof(real_t)));
  MCMI_CHECK(in.good(), "corrupt model file (truncated tensor)");
  return t;
}

void write_vector(std::ofstream& out, const std::vector<real_t>& v) {
  const index_t n = static_cast<index_t>(v.size());
  out.write(reinterpret_cast<const char*>(&n), sizeof(n));
  out.write(reinterpret_cast<const char*>(v.data()),
            static_cast<std::streamsize>(v.size() * sizeof(real_t)));
}

std::vector<real_t> read_vector(std::ifstream& in) {
  index_t n = 0;
  in.read(reinterpret_cast<char*>(&n), sizeof(n));
  MCMI_CHECK(in.good() && n >= 0, "corrupt model file");
  std::vector<real_t> v(static_cast<std::size_t>(n));
  in.read(reinterpret_cast<char*>(v.data()),
          static_cast<std::streamsize>(v.size() * sizeof(real_t)));
  MCMI_CHECK(in.good(), "corrupt model file (truncated vector)");
  return v;
}

}  // namespace

void SurrogateModel::save(const std::string& path) const {
  std::ofstream out(path, std::ios::binary);
  MCMI_CHECK(out.good(), "cannot open " << path << " for writing");
  const char magic[8] = {'m', 'c', 'm', 'i', 's', 'g', 't', '1'};
  out.write(magic, sizeof(magic));
  auto* self = const_cast<SurrogateModel*>(this);
  for (const nn::Parameter* p : self->parameters()) {
    write_tensor(out, p->value);
  }
  write_vector(out, xa_std_.means());
  write_vector(out, xa_std_.stds());
  write_vector(out, xm_std_.means());
  write_vector(out, xm_std_.stds());
}

void SurrogateModel::load(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  MCMI_CHECK(in.good(), "cannot open " << path);
  char magic[8];
  in.read(magic, sizeof(magic));
  MCMI_CHECK(std::string(magic, 8) == "mcmisgt1",
             "not an mcmi surrogate file: " << path);
  for (nn::Parameter* p : parameters()) {
    nn::Tensor t = read_tensor(in);
    MCMI_CHECK(t.rows() == p->value.rows() && t.cols() == p->value.cols(),
               "architecture mismatch loading " << path);
    p->value = std::move(t);
  }
  std::vector<real_t> xa_mean = read_vector(in);
  std::vector<real_t> xa_stdv = read_vector(in);
  std::vector<real_t> xm_mean = read_vector(in);
  std::vector<real_t> xm_stdv = read_vector(in);
  xa_std_.restore(std::move(xa_mean), std::move(xa_stdv));
  xm_std_.restore(std::move(xm_mean), std::move(xm_stdv));
  has_cache_ = false;
}

}  // namespace mcmi
