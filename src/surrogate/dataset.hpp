#pragma once
// Labelled dataset for the surrogate: D = {(G_i, x_A,i, x_M,i, ybar_i, s_i)}.
//
// Each sample couples one matrix (graph + features) with one MCMC parameter
// vector and the sample mean / standard deviation of the performance metric
// y(A, x_M) over repeated solver runs (§3.1, §4.2).

#include <string>
#include <vector>

#include "core/types.hpp"
#include "gnn/graph.hpp"
#include "krylov/solver.hpp"
#include "mcmc/params.hpp"

namespace mcmi {

/// Width of the encoded x_M vector: (alpha, eps, delta) + one-hot solver.
inline constexpr index_t kXmWidth = 6;

/// Encode x_M = (alpha, eps, delta, solver) for the surrogate.
std::vector<real_t> encode_xm(const McmcParams& params, KrylovMethod method);

/// One labelled observation.
struct LabeledSample {
  index_t matrix_id = 0;          ///< index into SurrogateDataset::graphs
  std::vector<real_t> xm;         ///< encoded x_M (kXmWidth)
  real_t y_mean = 0.0;            ///< ybar over replicates
  real_t y_std = 0.0;             ///< s over replicates
};

/// The dataset: per-matrix graphs/features plus the labelled samples.
struct SurrogateDataset {
  std::vector<std::string> matrix_names;
  std::vector<gnn::Graph> graphs;             ///< one per matrix
  std::vector<std::vector<real_t>> features;  ///< x_A per matrix

  std::vector<LabeledSample> samples;

  /// Register a matrix; returns its id.
  index_t add_matrix(std::string name, gnn::Graph graph,
                     std::vector<real_t> xa);

  [[nodiscard]] index_t num_matrices() const {
    return static_cast<index_t>(graphs.size());
  }
  [[nodiscard]] index_t size() const {
    return static_cast<index_t>(samples.size());
  }

  /// Deterministic shuffled split of the samples (graphs are shared by
  /// reference semantics: both halves keep all graphs).  The paper uses
  /// 80/20 train/validation.
  void split(real_t validation_fraction, u64 seed,
             std::vector<LabeledSample>& train,
             std::vector<LabeledSample>& validation) const;
};

}  // namespace mcmi
