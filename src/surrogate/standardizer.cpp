#include "surrogate/standardizer.hpp"

#include <cmath>

#include "core/error.hpp"

namespace mcmi {

void Standardizer::fit(const std::vector<std::vector<real_t>>& rows) {
  MCMI_CHECK(!rows.empty(), "standardizer: no rows to fit");
  const std::size_t d = rows.front().size();
  mean_.assign(d, 0.0);
  std_.assign(d, 0.0);
  for (const auto& row : rows) {
    MCMI_CHECK(row.size() == d, "standardizer: ragged rows");
    for (std::size_t j = 0; j < d; ++j) mean_[j] += row[j];
  }
  const real_t inv_n = 1.0 / static_cast<real_t>(rows.size());
  for (real_t& m : mean_) m *= inv_n;
  for (const auto& row : rows) {
    for (std::size_t j = 0; j < d; ++j) {
      const real_t c = row[j] - mean_[j];
      std_[j] += c * c;
    }
  }
  for (real_t& s : std_) {
    s = std::sqrt(s * inv_n);
    if (s < 1e-12) s = 1.0;  // constant column: pass through
  }
}

std::vector<real_t> Standardizer::transform(
    const std::vector<real_t>& row) const {
  MCMI_CHECK(fitted(), "standardizer not fitted");
  MCMI_CHECK(row.size() == mean_.size(), "standardizer: width mismatch");
  std::vector<real_t> out(row.size());
  for (std::size_t j = 0; j < row.size(); ++j) {
    out[j] = (row[j] - mean_[j]) / std_[j];
  }
  return out;
}

std::vector<real_t> Standardizer::inverse(
    const std::vector<real_t>& row) const {
  MCMI_CHECK(fitted(), "standardizer not fitted");
  MCMI_CHECK(row.size() == mean_.size(), "standardizer: width mismatch");
  std::vector<real_t> out(row.size());
  for (std::size_t j = 0; j < row.size(); ++j) {
    out[j] = row[j] * std_[j] + mean_[j];
  }
  return out;
}

void Standardizer::restore(std::vector<real_t> means,
                           std::vector<real_t> stds) {
  MCMI_CHECK(means.size() == stds.size(), "standardizer: size mismatch");
  mean_ = std::move(means);
  std_ = std::move(stds);
}

}  // namespace mcmi
