#pragma once
// Feature standardisation (§3.1): "All features are standardised — each
// value is rescaled to zero mean and unit variance — so that they contribute
// on a comparable scale during training."

#include <vector>

#include "core/types.hpp"

namespace mcmi {

/// Per-column z-score transform fitted on training data.
class Standardizer {
 public:
  Standardizer() = default;

  /// Fit column means/stds on a set of rows (all the same width).
  /// Constant columns get std 1 so they pass through unchanged.
  void fit(const std::vector<std::vector<real_t>>& rows);

  /// (x - mean) / std, elementwise.
  [[nodiscard]] std::vector<real_t> transform(
      const std::vector<real_t>& row) const;

  /// Inverse transform.
  [[nodiscard]] std::vector<real_t> inverse(
      const std::vector<real_t>& row) const;

  /// d(standardised)/d(raw) for feature j — the chain-rule factor the EI
  /// gradient needs when optimising in raw parameter space.
  [[nodiscard]] real_t scale(index_t j) const { return 1.0 / std_[j]; }

  [[nodiscard]] bool fitted() const { return !mean_.empty(); }
  [[nodiscard]] index_t width() const {
    return static_cast<index_t>(mean_.size());
  }
  [[nodiscard]] const std::vector<real_t>& means() const { return mean_; }
  [[nodiscard]] const std::vector<real_t>& stds() const { return std_; }

  /// Restore from saved statistics.
  void restore(std::vector<real_t> means, std::vector<real_t> stds);

 private:
  std::vector<real_t> mean_;
  std::vector<real_t> std_;
};

}  // namespace mcmi
