#pragma once
// Surrogate training loop: minibatch Adam on the eq. (2) objective.
//
// Minibatches group samples by matrix so the graph branch runs once per
// batch (the dominant cost).  The paper trains with batch size 128, Adam,
// and early stopping under ASHA; `TrainOptions` exposes the same knobs and
// an epoch callback that the HPO scheduler hooks into.

#include <functional>

#include "surrogate/dataset.hpp"
#include "surrogate/model.hpp"

namespace mcmi {

struct TrainOptions {
  index_t epochs = 60;
  index_t batch_size = 128;
  real_t learning_rate = 1.848e-3;  ///< the paper's selected LR
  real_t weight_decay = 1e-4;
  SurrogateLoss loss = SurrogateLoss::kMse;  ///< eq. (2) by default
  u64 seed = 7;
  /// Called after each epoch with (epoch, train_loss, val_loss); returning
  /// false stops training early (ASHA pruning / early stopping).
  std::function<bool(index_t, real_t, real_t)> on_epoch;
};

struct TrainReport {
  index_t epochs_run = 0;
  real_t final_train_loss = 0.0;
  real_t final_validation_loss = 0.0;
  real_t best_validation_loss = 0.0;
};

/// Mean eq.-(2) loss of `model` over `samples` (eval mode).
real_t evaluate_loss(SurrogateModel& model, const SurrogateDataset& dataset,
                     const std::vector<LabeledSample>& samples);

/// Root-mean-square error of the mean prediction over `samples`.
real_t evaluate_rmse(SurrogateModel& model, const SurrogateDataset& dataset,
                     const std::vector<LabeledSample>& samples);

/// Train on `train`, monitoring `validation`.
TrainReport train_surrogate(SurrogateModel& model,
                            const SurrogateDataset& dataset,
                            const std::vector<LabeledSample>& train,
                            const std::vector<LabeledSample>& validation,
                            const TrainOptions& options = {});

}  // namespace mcmi
