#include <cmath>

#include "core/error.hpp"
#include "krylov/solver.hpp"
#include "sparse/vector_ops.hpp"

namespace mcmi {

SolveResult solve_cg(const CsrMatrix& a, const std::vector<real_t>& b,
                     const Preconditioner& p, std::vector<real_t>& x,
                     const SolveOptions& opt) {
  const index_t n = a.rows();
  MCMI_CHECK(a.cols() == n, "CG needs a square matrix");
  MCMI_CHECK(static_cast<index_t>(b.size()) == n, "rhs size mismatch");

  SolveResult result;
  x.assign(static_cast<std::size_t>(n), 0.0);

  // Preconditioned CG: r = b - A x, z = P r.
  std::vector<real_t> r = b;
  std::vector<real_t> z = p.apply(r);
  std::vector<real_t> q = z;  // search direction
  std::vector<real_t> aq(static_cast<std::size_t>(n));

  const real_t norm_pb = norm2(z);
  if (norm_pb == 0.0) {
    result.converged = true;
    return result;
  }
  if (!std::isfinite(norm_pb)) {
    result.iterations = opt.max_iterations;
    return result;
  }

  real_t rho = dot(r, z);
  for (index_t it = 0; it < opt.max_iterations; ++it) {
    a.multiply(q, aq);
    const real_t qaq = dot(q, aq);
    if (qaq <= 0.0) break;  // lost positive definiteness: report divergence
    const real_t alpha = rho / qaq;
    axpy2(alpha, q, aq, x, r);  // x += alpha q, r -= alpha aq, one pass
    p.apply(r, z);
    real_t rho_next, norm_z;
    dot_norm2(r, z, rho_next, norm_z);  // <r,z> and ||z|| fused
    result.iterations = it + 1;
    const real_t rel = norm_z / norm_pb;
    result.residual = rel;
    if (opt.record_history) result.history.push_back(rel);
    if (rel < opt.tolerance) {
      result.converged = true;
      return result;
    }
    const real_t beta = rho_next / rho;
    rho = rho_next;
    xpby(z, beta, q);  // q = z + beta q
  }
  return result;
}

}  // namespace mcmi
