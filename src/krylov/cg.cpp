#include <cmath>

#include "core/error.hpp"
#include "krylov/solver.hpp"
#include "sparse/vector_ops.hpp"

namespace mcmi {

SolveResult solve_cg(const CsrMatrix& a, const std::vector<real_t>& b,
                     const Preconditioner& p, std::vector<real_t>& x,
                     const SolveOptions& opt) {
  const index_t n = a.rows();
  MCMI_CHECK(a.cols() == n, "CG needs a square matrix");
  MCMI_CHECK(static_cast<index_t>(b.size()) == n, "rhs size mismatch");

  SolveResult result;
  x.assign(static_cast<std::size_t>(n), 0.0);

  // Preconditioned CG: r = b - A x, z = P r, with rho = <r, z> and ||z||
  // taken from the apply pass itself.
  std::vector<real_t> r = b;
  std::vector<real_t> z;
  real_t rho, norm_pb_sq;
  p.apply_dot_norm2(r, z, r, rho, norm_pb_sq);
  const real_t norm_pb = std::sqrt(norm_pb_sq);
  if (norm_pb == 0.0) {
    result.status = SolveStatus::kConverged;
    return result;
  }
  if (!std::isfinite(norm_pb)) {
    result.status = SolveStatus::kNonFinite;
    return result;
  }
  std::vector<real_t> q = z;  // search direction
  std::vector<real_t> aq(static_cast<std::size_t>(n));
  StagnationTracker stagnation(opt.stagnation_window);

  for (index_t it = 0; it < opt.max_iterations; ++it) {
    if (opt.cancel != nullptr && opt.cancel->should_stop()) {
      result.status = stop_reason(*opt.cancel);
      return result;
    }
    // aq = A q, qaq = <q, aq>, and — when qaq passes the validity guards
    // below — x += (rho/qaq) q, r -= (rho/qaq) aq, all in one parallel
    // region.  The fused kernel applies the update exactly when qaq is
    // finite and positive, so on every early return below x and r hold the
    // same bits the unfused sequence would have left.
    const real_t qaq = a.multiply_dot_axpy2(q, rho, aq, x, r);
    // alpha = rho / qaq: a non-finite denominator means overflow/NaN entered
    // the iteration, zero is an exact breakdown, and a negative value means
    // the operator is not positive definite — report each distinctly.
    if (!std::isfinite(qaq)) {
      result.status = SolveStatus::kNonFinite;
      return result;
    }
    if (qaq == 0.0) {
      result.status = SolveStatus::kBreakdown;
      return result;
    }
    if (qaq < 0.0) {
      result.status = SolveStatus::kDiverged;
      return result;
    }
    // z = P r with <r, z> / ||z||^2 and the recurrence
    // q = z + (rho_next/rho) q fused into the apply.  The q update moves
    // ahead of the convergence checks relative to the unfused loop, which
    // is observationally identical: on every returning branch below q is
    // dead state.
    real_t rho_next, norm_z_sq;
    p.apply_xpby_dot(r, z, r, rho, q, rho_next, norm_z_sq);
    result.iterations = it + 1;
    const real_t rel = std::sqrt(norm_z_sq) / norm_pb;
    result.residual = rel;
    if (opt.record_history) result.history.push_back(rel);
    if (rel < opt.tolerance) {
      result.status = SolveStatus::kConverged;
      return result;
    }
    if (!std::isfinite(rel)) {
      result.status = SolveStatus::kNonFinite;
      return result;
    }
    if (stagnation.update(rel)) {
      result.status = SolveStatus::kStagnation;
      return result;
    }
    rho = rho_next;
  }
  result.status = SolveStatus::kMaxIterations;
  return result;
}

}  // namespace mcmi
