#pragma once
// Krylov subspace solvers: CG, GMRES(m), BiCGStab.
//
// All three support left preconditioning — they iterate on P A x = P b —
// which is the setting of §3: the MCMC machinery produces P ~ A^-1 and the
// performance metric y(A, x_M) compares iteration counts with P against the
// identity-preconditioned baseline.

#include <limits>
#include <string>
#include <vector>

#include "core/cancellation.hpp"
#include "core/status.hpp"
#include "precond/preconditioner.hpp"
#include "sparse/csr.hpp"

namespace mcmi {

/// Which Krylov method to run.  The solver type is also a categorical
/// component of the MCMC parameter vector x_M fed to the surrogate (§4.1).
enum class KrylovMethod { kCG, kGMRES, kBiCGStab };

/// Human-readable method name ("cg", "gmres", "bicgstab").
std::string method_name(KrylovMethod method);
/// Parse a method name; throws for unknown names.
KrylovMethod parse_method(const std::string& name);

struct SolveOptions {
  real_t tolerance = 1e-8;    ///< relative preconditioned-residual tolerance
  index_t max_iterations = 5000;
  index_t restart = 50;       ///< GMRES restart length m
  bool record_history = false;  ///< store the residual at every step
  /// Iterations without any relative residual improvement before the solve
  /// reports SolveStatus::kStagnation (0 disables the check).
  index_t stagnation_window = 250;
  /// Cooperative cancellation / deadline, polled once per iteration; not
  /// owned.  nullptr runs unbounded (legacy behaviour).
  const CancelToken* cancel = nullptr;
};

struct SolveResult {
  SolveStatus status = SolveStatus::kMaxIterations;
  index_t iterations = 0;     ///< matrix-vector products consumed ("steps")
  real_t residual = 0.0;      ///< final relative preconditioned residual
  std::vector<real_t> history;  ///< per-step residuals when recorded

  [[nodiscard]] bool converged() const {
    return status == SolveStatus::kConverged;
  }
};

/// Uniform stagnation detector shared by CG/GMRES/BiCGStab: tracks the best
/// relative residual seen and trips after `window` consecutive iterations
/// without meaningful improvement (a relative decrease of at least 1e-9 —
/// any genuinely converging iteration clears it, round-off jitter does not).
class StagnationTracker {
 public:
  explicit StagnationTracker(index_t window) : window_(window) {}

  /// Feed one iteration's relative residual; true once stagnated.
  bool update(real_t rel) {
    if (window_ <= 0) return false;
    if (rel < best_ * (1.0 - 1e-9)) {
      best_ = rel;
      stalled_ = 0;
      return false;
    }
    return ++stalled_ >= window_;
  }

 private:
  index_t window_;
  index_t stalled_ = 0;
  real_t best_ = std::numeric_limits<real_t>::infinity();
};

/// Solve P A x = P b starting from x = 0.
/// `x` is overwritten with the solution approximation.
SolveResult solve_cg(const CsrMatrix& a, const std::vector<real_t>& b,
                     const Preconditioner& p, std::vector<real_t>& x,
                     const SolveOptions& options = {});

SolveResult solve_gmres(const CsrMatrix& a, const std::vector<real_t>& b,
                        const Preconditioner& p, std::vector<real_t>& x,
                        const SolveOptions& options = {});

SolveResult solve_bicgstab(const CsrMatrix& a, const std::vector<real_t>& b,
                           const Preconditioner& p, std::vector<real_t>& x,
                           const SolveOptions& options = {});

/// Dispatch on `method`.
SolveResult solve(KrylovMethod method, const CsrMatrix& a,
                  const std::vector<real_t>& b, const Preconditioner& p,
                  std::vector<real_t>& x, const SolveOptions& options = {});

}  // namespace mcmi
