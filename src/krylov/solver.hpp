#pragma once
// Krylov subspace solvers: CG, GMRES(m), BiCGStab.
//
// All three support left preconditioning — they iterate on P A x = P b —
// which is the setting of §3: the MCMC machinery produces P ~ A^-1 and the
// performance metric y(A, x_M) compares iteration counts with P against the
// identity-preconditioned baseline.

#include <string>
#include <vector>

#include "precond/preconditioner.hpp"
#include "sparse/csr.hpp"

namespace mcmi {

/// Which Krylov method to run.  The solver type is also a categorical
/// component of the MCMC parameter vector x_M fed to the surrogate (§4.1).
enum class KrylovMethod { kCG, kGMRES, kBiCGStab };

/// Human-readable method name ("cg", "gmres", "bicgstab").
std::string method_name(KrylovMethod method);
/// Parse a method name; throws for unknown names.
KrylovMethod parse_method(const std::string& name);

struct SolveOptions {
  real_t tolerance = 1e-8;    ///< relative preconditioned-residual tolerance
  index_t max_iterations = 5000;
  index_t restart = 50;       ///< GMRES restart length m
  bool record_history = false;  ///< store the residual at every step
};

struct SolveResult {
  bool converged = false;
  index_t iterations = 0;     ///< matrix-vector products consumed ("steps")
  real_t residual = 0.0;      ///< final relative preconditioned residual
  std::vector<real_t> history;  ///< per-step residuals when recorded
};

/// Solve P A x = P b starting from x = 0.
/// `x` is overwritten with the solution approximation.
SolveResult solve_cg(const CsrMatrix& a, const std::vector<real_t>& b,
                     const Preconditioner& p, std::vector<real_t>& x,
                     const SolveOptions& options = {});

SolveResult solve_gmres(const CsrMatrix& a, const std::vector<real_t>& b,
                        const Preconditioner& p, std::vector<real_t>& x,
                        const SolveOptions& options = {});

SolveResult solve_bicgstab(const CsrMatrix& a, const std::vector<real_t>& b,
                           const Preconditioner& p, std::vector<real_t>& x,
                           const SolveOptions& options = {});

/// Dispatch on `method`.
SolveResult solve(KrylovMethod method, const CsrMatrix& a,
                  const std::vector<real_t>& b, const Preconditioner& p,
                  std::vector<real_t>& x, const SolveOptions& options = {});

}  // namespace mcmi
