#include <cmath>

#include "core/error.hpp"
#include "krylov/solver.hpp"
#include "sparse/vector_ops.hpp"

namespace mcmi {

SolveResult solve_gmres(const CsrMatrix& a, const std::vector<real_t>& b,
                        const Preconditioner& p, std::vector<real_t>& x,
                        const SolveOptions& opt) {
  const index_t n = a.rows();
  MCMI_CHECK(a.cols() == n, "GMRES needs a square matrix");
  MCMI_CHECK(static_cast<index_t>(b.size()) == n, "rhs size mismatch");
  const index_t m = std::min(opt.restart, n);
  MCMI_CHECK(m >= 1, "restart length must be positive");

  SolveResult result;
  x.assign(static_cast<std::size_t>(n), 0.0);

  std::vector<real_t> scratch(static_cast<std::size_t>(n));
  const std::vector<real_t> pb = p.apply(b);
  const real_t norm_pb = norm2(pb);
  if (norm_pb == 0.0) {
    result.status = SolveStatus::kConverged;
    return result;
  }
  if (!std::isfinite(norm_pb)) {
    // Degenerate preconditioner (overflow/NaN): report failure instead of
    // iterating on garbage.
    result.status = SolveStatus::kNonFinite;
    return result;
  }

  // Krylov basis (m+1 vectors) and the Hessenberg matrix in factored form
  // via Givens rotations.
  std::vector<std::vector<real_t>> basis(
      static_cast<std::size_t>(m) + 1,
      std::vector<real_t>(static_cast<std::size_t>(n)));
  std::vector<real_t> h((static_cast<std::size_t>(m) + 1) * m, 0.0);
  std::vector<real_t> cs(static_cast<std::size_t>(m));
  std::vector<real_t> sn(static_cast<std::size_t>(m));
  std::vector<real_t> g(static_cast<std::size_t>(m) + 1);

  std::vector<real_t> pr;
  StagnationTracker stagnation(opt.stagnation_window);
  while (true) {
    if (opt.cancel != nullptr && opt.cancel->should_stop()) {
      result.status = stop_reason(*opt.cancel);
      return result;
    }
    // Restart: r = P(b - A x), with ||r|| taken from the apply pass.
    a.multiply(x, scratch);
    const std::vector<real_t> diff = subtract(b, scratch);
    real_t ddotr, beta_sq;
    p.apply_dot_norm2(diff, pr, diff, ddotr, beta_sq);
    (void)ddotr;
    real_t beta = std::sqrt(beta_sq);
    if (!std::isfinite(beta)) {
      result.status = SolveStatus::kNonFinite;
      return result;
    }
    result.residual = beta / norm_pb;
    // Convergence is only ever declared here, on the recomputed residual of
    // the actual iterate: the in-cycle Givens estimate drifts in finite
    // precision and reads exactly zero at a happy breakdown even when the
    // operator is singular and the true residual is not small.
    if (result.residual < opt.tolerance) {
      result.status = SolveStatus::kConverged;
      return result;
    }
    if (result.iterations >= opt.max_iterations) {
      result.status = SolveStatus::kMaxIterations;
      return result;
    }
    scale_into(1.0 / beta, pr, basis[0]);
    std::fill(g.begin(), g.end(), 0.0);
    g[0] = beta;

    index_t k = 0;  // inner iterations completed in this cycle
    bool stagnated = false;
    bool stopped = false;
    for (; k < m && result.iterations < opt.max_iterations; ++k) {
      // Arnoldi with fused modified Gram-Schmidt: the projection onto basis
      // j+1 rides the same pass that subtracts component j, the first
      // projection rides the preconditioner apply and the final norm rides
      // the last subtraction — one sweep per basis vector instead of two.
      a.multiply(basis[k], scratch);
      real_t hjk = p.apply_dot(scratch, basis[k + 1], basis[0]);
      real_t hk1 = 0.0;
      for (index_t j = 0; j <= k; ++j) {
        h[j * m + k] = hjk;
        if (j < k) {
          hjk = axpy_dot(-h[j * m + k], basis[j], basis[k + 1], basis[j + 1]);
        } else {
          hk1 = std::sqrt(axpy_norm2_sq(-h[j * m + k], basis[j], basis[k + 1]));
        }
      }
      h[(k + 1) * m + k] = hk1;
      if (hk1 > 0.0) scale(1.0 / hk1, basis[k + 1]);
      // Apply previous Givens rotations to the new column.
      for (index_t j = 0; j < k; ++j) {
        const real_t t = cs[j] * h[j * m + k] + sn[j] * h[(j + 1) * m + k];
        h[(j + 1) * m + k] =
            -sn[j] * h[j * m + k] + cs[j] * h[(j + 1) * m + k];
        h[j * m + k] = t;
      }
      // New rotation annihilating h(k+1, k).
      const real_t denom =
          std::hypot(h[k * m + k], h[(k + 1) * m + k]);
      if (denom == 0.0) {
        cs[k] = 1.0;
        sn[k] = 0.0;
      } else {
        cs[k] = h[k * m + k] / denom;
        sn[k] = h[(k + 1) * m + k] / denom;
      }
      h[k * m + k] = cs[k] * h[k * m + k] + sn[k] * h[(k + 1) * m + k];
      h[(k + 1) * m + k] = 0.0;
      g[k + 1] = -sn[k] * g[k];
      g[k] = cs[k] * g[k];

      result.iterations++;
      result.residual = std::abs(g[k + 1]) / norm_pb;
      if (opt.record_history) result.history.push_back(result.residual);
      if (!std::isfinite(result.residual)) {
        result.status = SolveStatus::kNonFinite;
        return result;
      }
      if (result.residual < opt.tolerance) {
        ++k;
        break;
      }
      if (hk1 == 0.0) {  // happy breakdown: exact solution in the subspace
        ++k;
        break;
      }
      if (stagnation.update(result.residual)) {
        stagnated = true;  // finish the cycle so x still gets the correction
        ++k;
        break;
      }
      if (opt.cancel != nullptr && opt.cancel->should_stop()) {
        stopped = true;
        ++k;
        break;
      }
    }

    // Solve the k x k triangular system and update x.  A singular or
    // non-finite Hessenberg indicates the (possibly garbage) preconditioned
    // operator destroyed the basis: report failure rather than update x.
    std::vector<real_t> y(static_cast<std::size_t>(k));
    for (index_t i = k - 1; i >= 0; --i) {
      real_t sum = g[i];
      for (index_t j = i + 1; j < k; ++j) sum -= h[i * m + j] * y[j];
      if (h[i * m + i] == 0.0 || !std::isfinite(h[i * m + i])) {
        result.status = std::isfinite(h[i * m + i]) ? SolveStatus::kBreakdown
                                                    : SolveStatus::kNonFinite;
        return result;
      }
      y[i] = sum / h[i * m + i];
    }
    for (index_t j = 0; j < k; ++j) axpy(y[j], basis[j], x);

    if (result.residual < opt.tolerance) {
      continue;  // estimate says converged: let the restart verify it
    }
    if (stagnated) {
      result.status = SolveStatus::kStagnation;
      return result;
    }
    if (stopped) {
      result.status = stop_reason(*opt.cancel);
      return result;
    }
  }
}

}  // namespace mcmi
