#include "krylov/solver.hpp"

#include "core/error.hpp"

namespace mcmi {

std::string method_name(KrylovMethod method) {
  switch (method) {
    case KrylovMethod::kCG:
      return "cg";
    case KrylovMethod::kGMRES:
      return "gmres";
    case KrylovMethod::kBiCGStab:
      return "bicgstab";
  }
  MCMI_FAIL("invalid KrylovMethod");
}

KrylovMethod parse_method(const std::string& name) {
  if (name == "cg") return KrylovMethod::kCG;
  if (name == "gmres") return KrylovMethod::kGMRES;
  if (name == "bicgstab") return KrylovMethod::kBiCGStab;
  MCMI_FAIL("unknown Krylov method '" << name << "'");
}

SolveResult solve(KrylovMethod method, const CsrMatrix& a,
                  const std::vector<real_t>& b, const Preconditioner& p,
                  std::vector<real_t>& x, const SolveOptions& options) {
  switch (method) {
    case KrylovMethod::kCG:
      return solve_cg(a, b, p, x, options);
    case KrylovMethod::kGMRES:
      return solve_gmres(a, b, p, x, options);
    case KrylovMethod::kBiCGStab:
      return solve_bicgstab(a, b, p, x, options);
  }
  MCMI_FAIL("invalid KrylovMethod");
}

}  // namespace mcmi
