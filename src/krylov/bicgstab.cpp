#include <cmath>

#include "core/error.hpp"
#include "krylov/solver.hpp"
#include "sparse/vector_ops.hpp"

namespace mcmi {

SolveResult solve_bicgstab(const CsrMatrix& a, const std::vector<real_t>& b,
                           const Preconditioner& p, std::vector<real_t>& x,
                           const SolveOptions& opt) {
  const index_t n = a.rows();
  MCMI_CHECK(a.cols() == n, "BiCGStab needs a square matrix");
  MCMI_CHECK(static_cast<index_t>(b.size()) == n, "rhs size mismatch");

  SolveResult result;
  x.assign(static_cast<std::size_t>(n), 0.0);

  // BiCGStab applied to the left-preconditioned system P A x = P b.  The
  // preconditioner applies are fused with the reductions that follow them,
  // so each half-step pays one SpMV pass instead of SpMV + dot sweeps.
  std::vector<real_t> scratch(static_cast<std::size_t>(n));

  std::vector<real_t> r;  // r0 = P b (x0 = 0)
  real_t bdotr, norm_pb_sq;
  p.apply_dot_norm2(b, r, b, bdotr, norm_pb_sq);
  (void)bdotr;  // only the norm of r0 is needed here
  const real_t norm_pb = std::sqrt(norm_pb_sq);
  if (norm_pb == 0.0) {
    result.status = SolveStatus::kConverged;
    return result;
  }
  if (!std::isfinite(norm_pb)) {
    result.status = SolveStatus::kNonFinite;
    return result;
  }
  const std::vector<real_t> r_hat = r;  // shadow residual
  std::vector<real_t> v(static_cast<std::size_t>(n), 0.0);
  std::vector<real_t> pvec(static_cast<std::size_t>(n), 0.0);
  std::vector<real_t> s(static_cast<std::size_t>(n));
  std::vector<real_t> t(static_cast<std::size_t>(n));

  real_t rho = 1.0, alpha = 1.0, omega = 1.0;
  StagnationTracker stagnation(opt.stagnation_window);

  for (index_t it = 0; it < opt.max_iterations; ++it) {
    if (opt.cancel != nullptr && opt.cancel->should_stop()) {
      result.status = stop_reason(*opt.cancel);
      return result;
    }
    const real_t rho_next = dot(r_hat, r);
    if (!std::isfinite(rho_next)) {
      result.status = SolveStatus::kNonFinite;
      return result;
    }
    if (rho_next == 0.0) {  // serious breakdown: <r_hat, r> vanished
      result.status = SolveStatus::kBreakdown;
      return result;
    }
    if (it == 0) {
      pvec = r;
    } else {
      const real_t beta = (rho_next / rho) * (alpha / omega);
      bicgstab_p_update(r, beta, omega, v, pvec);
    }
    rho = rho_next;
    a.multiply(pvec, scratch);
    const real_t rhv = p.apply_dot(scratch, v, r_hat);  // v = P A p, <r_hat,v>
    if (!std::isfinite(rhv)) {
      result.status = SolveStatus::kNonFinite;
      return result;
    }
    if (rhv == 0.0) {  // alpha denominator vanished
      result.status = SolveStatus::kBreakdown;
      return result;
    }
    alpha = rho / rhv;
    result.iterations = it + 1;
    // s = r - alpha v with its norm in one pass.
    real_t rel = sub_scaled_norm(r, alpha, v, s) / norm_pb;
    if (rel < opt.tolerance) {
      axpy(alpha, pvec, x);
      result.residual = rel;
      if (opt.record_history) result.history.push_back(rel);
      result.status = SolveStatus::kConverged;
      return result;
    }
    a.multiply(s, scratch);
    real_t tt, ts;
    p.apply_dot_norm2(scratch, t, s, ts, tt);  // t = P A s, <t,s>, <t,t>
    if (tt == 0.0) {  // omega denominator vanished
      result.status = SolveStatus::kBreakdown;
      return result;
    }
    omega = ts / tt;
    if (!std::isfinite(omega)) {
      result.status = SolveStatus::kNonFinite;
      return result;
    }
    if (omega == 0.0) {  // stabilisation step degenerate
      result.status = SolveStatus::kBreakdown;
      return result;
    }
    // x += alpha p + omega s and r = s - omega t with ||r|| — the two
    // solution/residual sweeps of the half-step in one fused pass.
    rel = axpy_pair_sub_norm(alpha, pvec, omega, s, t, x, r) / norm_pb;
    result.residual = rel;
    if (opt.record_history) result.history.push_back(rel);
    if (rel < opt.tolerance) {
      result.status = SolveStatus::kConverged;
      return result;
    }
    if (!std::isfinite(rel)) {
      result.status = SolveStatus::kNonFinite;
      return result;
    }
    if (stagnation.update(rel)) {
      result.status = SolveStatus::kStagnation;
      return result;
    }
  }
  result.status = SolveStatus::kMaxIterations;
  return result;
}

}  // namespace mcmi
