#include "mcmc/csr_arena.hpp"

#include <algorithm>

namespace mcmi {

CsrMatrix assemble_csr_from_arenas(index_t n,
                                   const std::vector<RowSlice>& rows,
                                   const std::vector<RowArena>& arenas) {
  std::vector<index_t> row_ptr(static_cast<std::size_t>(n) + 1, 0);
  for (index_t i = 0; i < n; ++i) {
    row_ptr[i + 1] = row_ptr[i] + rows[i].count;
  }
  std::vector<index_t> col_idx(static_cast<std::size_t>(row_ptr[n]));
  std::vector<real_t> values(static_cast<std::size_t>(row_ptr[n]));
#pragma omp parallel for schedule(static, 256)
  for (index_t i = 0; i < n; ++i) {
    const RowSlice& slice = rows[i];
    const RowArena& arena = arenas[static_cast<std::size_t>(slice.arena)];
    std::copy_n(arena.cols.begin() + slice.offset, slice.count,
                col_idx.begin() + row_ptr[i]);
    std::copy_n(arena.vals.begin() + slice.offset, slice.count,
                values.begin() + row_ptr[i]);
  }
  return CsrMatrix(n, n, std::move(row_ptr), std::move(col_idx),
                   std::move(values));
}

}  // namespace mcmi
