#include "mcmc/walk_kernel.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "core/error.hpp"
#include "core/rng.hpp"

namespace mcmi {

WalkKernel build_walk_kernel(const CsrMatrix& a, real_t alpha) {
  const index_t n = a.rows();
  const auto& row_ptr = a.row_ptr();
  const auto& col_idx = a.col_idx();
  const auto& values = a.values();

  WalkKernel k;
  k.row_ptr.assign(static_cast<std::size_t>(n) + 1, 0);
  k.row_sum.assign(static_cast<std::size_t>(n), 0.0);
  k.inv_diag.assign(static_cast<std::size_t>(n), 0.0);
  k.succ.reserve(values.size());
  k.value.reserve(values.size());
  k.cum_abs.reserve(values.size());

  for (index_t i = 0; i < n; ++i) {
    const real_t aii = a.at(i, i);
    MCMI_CHECK(aii != 0.0,
               "MCMCMI requires a nonzero diagonal; row " << i << " has none");
    // Perturbed diagonal d_i = a_ii + alpha * |a_ii| keeps the sign of a_ii
    // while increasing dominance, so the Jacobi iteration matrix shrinks.
    const real_t d = aii + std::copysign(alpha * std::abs(aii), aii);
    k.inv_diag[i] = 1.0 / d;
    real_t cum = 0.0;
    for (index_t p = row_ptr[i]; p < row_ptr[i + 1]; ++p) {
      const index_t j = col_idx[p];
      if (j == i) continue;  // B has zero diagonal by construction
      const real_t b = -values[p] / d;
      if (b == 0.0) continue;
      k.succ.push_back(j);
      k.value.push_back(b);
      cum += std::abs(b);
      k.cum_abs.push_back(cum);
    }
    k.row_sum[i] = cum;
    k.row_ptr[i + 1] = static_cast<index_t>(k.succ.size());
    k.norm_inf = std::max(k.norm_inf, cum);
  }

  // Precompute the per-transition weight step W *= sign(B_uv) * S_u and the
  // alias tables over |B_uv| (row-normalisation is implicit in the build).
  k.signed_sum.resize(k.value.size());
  std::vector<real_t> abs_value(k.value.size());
  for (index_t i = 0; i < n; ++i) {
    for (index_t p = k.row_ptr[i]; p < k.row_ptr[i + 1]; ++p) {
      k.signed_sum[p] = std::copysign(k.row_sum[i], k.value[p]);
      abs_value[p] = std::abs(k.value[p]);
    }
  }
  k.alias = AliasTable::build(k.row_ptr, abs_value);
  return k;
}

namespace {

/// Cheap content fingerprint: shape plus up to 16 evenly spaced
/// (col, value) samples.  O(1), and catches both a different matrix object
/// and an ABA address reuse by a same-shaped matrix with other entries.
u64 matrix_fingerprint(const CsrMatrix& a) {
  u64 h = mix64(static_cast<u64>(a.rows()) * 0x9e3779b97f4a7c15ULL ^
                static_cast<u64>(a.nnz()));
  const std::size_t nnz = a.values().size();
  if (nnz == 0) return h;
  const std::size_t stride = std::max<std::size_t>(1, nnz / 16);
  for (std::size_t p = 0; p < nnz; p += stride) {
    u64 bits;
    std::memcpy(&bits, &a.values()[p], sizeof(bits));
    h = mix64(h ^ bits ^ static_cast<u64>(a.col_idx()[p]));
  }
  return h;
}

}  // namespace

std::shared_ptr<const WalkKernel> WalkKernelCache::get(const CsrMatrix& a,
                                                       real_t alpha,
                                                       bool* hit) {
  u64 key;
  static_assert(sizeof(key) == sizeof(alpha), "alpha must be 64-bit");
  std::memcpy(&key, &alpha, sizeof(key));
  const u64 fp = matrix_fingerprint(a);

  std::lock_guard<std::mutex> lock(mutex_);
  if (!bound_ || fingerprint_ != fp) {
    entries_.clear();
    fingerprint_ = fp;
    bound_ = true;
  }
  const auto it = entries_.find(key);
  if (it != entries_.end()) {
    ++hits_;
    if (hit != nullptr) *hit = true;
    return it->second;
  }
  ++misses_;
  if (hit != nullptr) *hit = false;
  auto kernel = std::make_shared<const WalkKernel>(build_walk_kernel(a, alpha));
  // The paper grid spans a handful of alphas; a runaway caller (random alpha
  // per trial) must not accumulate kernels without bound.
  if (entries_.size() >= 32) entries_.clear();
  entries_.emplace(key, kernel);
  return kernel;
}

std::size_t WalkKernelCache::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_.size();
}

long long WalkKernelCache::hits() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return hits_;
}

long long WalkKernelCache::misses() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return misses_;
}

void WalkKernelCache::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  entries_.clear();
  bound_ = false;
  fingerprint_ = 0;
}

}  // namespace mcmi
