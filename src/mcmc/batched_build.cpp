#include "mcmc/batched_build.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstring>
#include <vector>

#include "core/error.hpp"
#include "core/parallel.hpp"
#include "core/rng.hpp"
#include "core/timer.hpp"
#include "mcmc/csr_arena.hpp"
#include "mcmc/emission.hpp"

namespace mcmi {

namespace {

/// Exact bit pattern of a double: the grouping key wherever "the same
/// parameter value" must mean bitwise equality (delta groups, alpha groups).
u64 float_bits(real_t x) {
  u64 k;
  std::memcpy(&k, &x, sizeof(k));
  return k;
}

/// Trials sharing one (alpha, delta) share one stopping rule (the cutoff T
/// is a pure function of delta and that alpha's kernel norm), so their walks
/// stop at identical steps and a smaller-N trial's accumulator is
/// bit-for-bit the prefix of a larger one: the group accumulates through ONE
/// stream and snapshots it at each member's chain-count boundary.
struct SegEntry {
  real_t delta = 0.0;            ///< the group's truncation threshold
  index_t cutoff = 0;            ///< the group's delta-implied walk cutoff
  index_t target = 0;            ///< unit whose accumulator takes the adds
  index_t alpha = 0;             ///< the group's alpha index (weight stream)
  std::vector<index_t> trials;   ///< members active in this segment
};

/// Accumulator snapshot at a segment boundary: dst's chains are exhausted,
/// so it freezes a bit-copy of the group stream accumulated so far.
struct CopyOp {
  index_t src = 0;  ///< unit id owning the group stream
  index_t dst = 0;  ///< unit id receiving the frozen snapshot
};

/// The active-group schedule for one contiguous range of chain indices
/// (constant active sets: chain counts are the segment bounds), plus the
/// snapshots to take once the segment's chains are done.
struct ChainSegment {
  index_t chain_begin = 0;
  index_t chain_end = 0;
  std::vector<SegEntry> entries;
  std::vector<CopyOp> copies;
};

/// One group's slot in the shared walk's live list: the stopping rule, the
/// accumulator of the segment's target unit (thread-private, lane-specific),
/// the alpha index selecting the weight stream, and the shared entry (for
/// per-unit transition accounting).
struct LiveGroup {
  real_t delta = 0.0;
  real_t* acc = nullptr;
  index_t cutoff = 0;
  index_t alpha = 0;
  const SegEntry* entry = nullptr;
};

/// Chain indices [0, N_max) split at the distinct chain counts, with units
/// grouped by exact (alpha index, delta bits).  Per segment, each group
/// accumulates into its smallest still-active member; at the segment's end
/// boundary the stream is snapshotted into every member whose chains end
/// there (and handed to the next member, which resumes the same stream — FP
/// addition order per unit is exactly the standalone chain-major order).
std::vector<ChainSegment> build_segments(const std::vector<index_t>& n_chains,
                                         const std::vector<real_t>& deltas,
                                         const std::vector<index_t>& cutoffs,
                                         const std::vector<index_t>& alpha_of) {
  std::vector<index_t> bounds = n_chains;
  std::sort(bounds.begin(), bounds.end());
  bounds.erase(std::unique(bounds.begin(), bounds.end()), bounds.end());

  // Stop-rule groups keyed by (alpha index, delta bits), in first-appearance
  // order (a deterministic order keeps the scatter sequence, and so the
  // output, independent of any map iteration quirks).  Members sorted by
  // chain count ascending, input order on ties.
  std::vector<std::vector<index_t>> groups;
  for (std::size_t t = 0; t < deltas.size(); ++t) {
    bool placed = false;
    for (auto& members : groups) {
      const auto lead = static_cast<std::size_t>(members.front());
      if (alpha_of[lead] == alpha_of[t] &&
          float_bits(deltas[lead]) == float_bits(deltas[t])) {
        members.push_back(static_cast<index_t>(t));
        placed = true;
        break;
      }
    }
    if (!placed) groups.push_back({static_cast<index_t>(t)});
  }
  for (auto& members : groups) {
    std::stable_sort(members.begin(), members.end(),
                     [&](index_t x, index_t y) {
                       return n_chains[static_cast<std::size_t>(x)] <
                              n_chains[static_cast<std::size_t>(y)];
                     });
  }

  std::vector<ChainSegment> segments;
  index_t prev = 0;
  for (index_t b : bounds) {
    ChainSegment seg;
    seg.chain_begin = prev;
    seg.chain_end = b;
    for (const auto& members : groups) {
      SegEntry entry;
      for (index_t t : members) {
        // Chain counts are segment bounds, so N_t > prev means the member
        // is active for every chain index of this segment.
        if (n_chains[static_cast<std::size_t>(t)] > prev) {
          entry.trials.push_back(t);
        }
      }
      if (entry.trials.empty()) continue;
      entry.target = entry.trials.front();  // smallest active chain count
      entry.delta = deltas[static_cast<std::size_t>(entry.target)];
      entry.cutoff = cutoffs[static_cast<std::size_t>(entry.target)];
      entry.alpha = alpha_of[static_cast<std::size_t>(entry.target)];
      // Members whose chains end at this segment's bound freeze a snapshot
      // of the stream; the next member resumes it.
      if (n_chains[static_cast<std::size_t>(entry.target)] == b) {
        index_t next_target = -1;
        for (index_t t : entry.trials) {
          if (n_chains[static_cast<std::size_t>(t)] == b &&
              t != entry.target) {
            seg.copies.push_back({entry.target, t});
          } else if (n_chains[static_cast<std::size_t>(t)] > b) {
            next_target = t;
            break;  // members are sorted: first one past b resumes
          }
        }
        if (next_target >= 0) seg.copies.push_back({entry.target, next_target});
      }
      seg.entries.push_back(std::move(entry));
    }
    segments.push_back(std::move(seg));
    prev = b;
  }
  return segments;
}

/// One shared walk serving every active stop-rule group at once: it samples
/// the chain a single time and scatters each step's weight into the stream
/// accumulator of every group still running.  The scatter stores are
/// independent of the walk's pointer-chased load chain, so they hide in its
/// stalls — this is where G x O(walks) collapses into ~1 x O(walks).
///
/// `live` is the segment's group template (copied per chain); entries are
/// swap-removed the moment their stopping rule fires, so the inner loop
/// only ever touches running groups.  Removal reorders entries ACROSS
/// groups only — each group's own adds still land in the chain-major,
/// step-major order of the standalone walks, which keeps the accumulated
/// doubles bit-identical.  Per-group step semantics mirror run_walk() in
/// inverter.cpp exactly: accumulate steps 1..min(T, S - 1, L) and count
/// min(T, S, L) transitions for every active member, S the first step with
/// |W| < delta or past the divergence guard, L the shared walk's length.
/// `transitions` is indexed by trial id; `mark`/`visited` collect the union
/// of touched states for the row (epoch-tagged, no clearing between rows).
template <SamplingMethod method>
void run_shared_walk(const WalkKernel& k, index_t start, LiveGroup* live,
                     index_t live_count, long long* transitions,
                     long long* retired, Xoshiro256& rng,
                     std::vector<u32>& mark, u32 epoch,
                     std::vector<index_t>& visited) {
  if (mark[static_cast<std::size_t>(start)] != epoch) {
    mark[static_cast<std::size_t>(start)] = epoch;
    visited.push_back(start);
  }
  // k = 0 term of the Neumann series, once per chain for every group.
  for (index_t m = 0; m < live_count; ++m) live[m].acc[start] += 1.0;

  index_t state = start;
  real_t weight = 1.0;
  index_t steps = 0;
  while (live_count > 0) {
    const index_t begin = k.row_ptr[state];
    const index_t end = k.row_ptr[state + 1];
    if (begin == end) break;  // absorbing state: every group ends here
    index_t p;
    if constexpr (method == SamplingMethod::kAlias) {
      p = k.alias.sample(begin, end, rng());
    } else {
      const real_t target = uniform01(rng) * k.row_sum[state];
      const auto first = k.cum_abs.begin() + begin;
      const auto last = k.cum_abs.begin() + end;
      auto it = std::upper_bound(first, last, target);
      if (it == last) --it;
      p = static_cast<index_t>(it - k.cum_abs.begin());
    }
    weight *= k.signed_sum[p];
    state = k.succ[p];
    ++steps;
    const real_t aw = std::abs(weight);
    if (aw > kDivergenceGuard) {
      // Divergent kernel blow-up: every still-running group breaks at this
      // step, uncounted in its accumulator (run_walk breaks before the
      // accumulate).  A group is live only while steps <= its cutoff, so
      // the step is always a counted transition — and a counted retirement.
      for (index_t m = 0; m < live_count; ++m) {
        for (index_t t : live[m].entry->trials) {
          transitions[t] += steps;
          retired[t] += 1;
        }
      }
      return;
    }
    for (index_t m = 0; m < live_count;) {
      LiveGroup& e = live[m];
      if (aw < e.delta) {
        // Sticky truncation: the crossing step is counted, not accumulated.
        for (index_t t : e.entry->trials) transitions[t] += steps;
        e = live[--live_count];
        continue;
      }
      e.acc[state] += weight;
      if (steps == e.cutoff) {
        for (index_t t : e.entry->trials) transitions[t] += steps;
        e = live[--live_count];
        continue;
      }
      ++m;
    }
    if (mark[static_cast<std::size_t>(state)] != epoch) {
      mark[static_cast<std::size_t>(state)] = epoch;
      visited.push_back(state);
    }
  }
  // Absorption: the surviving groups' cutoffs all exceed `steps` (a group
  // reaching its cutoff is removed the same step), so each one consumed
  // exactly the shared walk's length.
  for (index_t m = 0; m < live_count; ++m) {
    for (index_t t : live[m].entry->trials) transitions[t] += steps;
  }
}

/// One replicate's in-flight walk in the interleaved (lockstep) ensemble:
/// its RNG stream, walk position, per-alpha weight streams, and the live
/// stop-rule groups scattering into this replicate's accumulators.
struct Lane {
  Xoshiro256 rng{0};
  index_t state = 0;
  index_t steps = 0;
  index_t live_count = 0;
  LiveGroup* live = nullptr;  ///< lane-private scratch slice
  real_t* weights = nullptr;  ///< per-alpha weights, 1.0 at chain start
  long long* trans = nullptr; ///< per-unit transition counters of this lane
  long long* retired = nullptr;  ///< per-unit divergence retirements
  u32* mark = nullptr;        ///< lane-private epoch marks (size n)
  std::vector<index_t>* visited = nullptr;  ///< lane-private touched states
  u64 diverged = 0;           ///< per-alpha sticky divergence bitmask
};

/// Advance every lane's chain in lockstep, one step per lane per round: the
/// lanes' dependent kernel-load chains (state -> row_ptr -> alias table ->
/// succ) are mutually independent, so interleaving them lets the CPU
/// overlap R pointer chases where the serial per-replicate loop exposes one
/// — this is where R x O(walks) collapses into ~1 x O(walks) of wall time.
///
/// Per-lane step semantics are exactly run_shared_walk's (which mirrors the
/// standalone run_walk): lanes write disjoint accumulators and each lane's
/// adds land in the standalone chain-major, step-major order, so every
/// (trial, replicate) output stays bit-identical.  Finished lanes are
/// swap-removed so the round loop only touches running walks.
///
/// With `multi_alpha`, successor draws are shared across alphas (the caller
/// guarantees bitwise-identical sampling structures; `kernels[0]` samples)
/// while each alpha multiplies its own signed row-sum stream — a diverging
/// alpha retires only its own groups, bit-tracked in `Lane::diverged`.
///
/// Touched states are tracked per lane (`Lane::mark` / `Lane::visited`), not
/// as a cross-lane union: each replicate's emission and snapshot copies then
/// stream exactly the states its own walks reached, so a replicate pays the
/// same emission work it would standalone even when replicate walks touch
/// disjoint regions of a large graph.
template <SamplingMethod method, bool multi_alpha>
void run_lockstep_chains(const WalkKernel* const* kernels, index_t n_alphas,
                         Lane* lanes, Lane** active_lanes, index_t n_lanes,
                         u32 epoch) {
  const WalkKernel& k0 = *kernels[0];
  index_t active = n_lanes;
  for (index_t w = 0; w < n_lanes; ++w) active_lanes[w] = &lanes[w];
  while (active > 0) {
    for (index_t w = 0; w < active;) {
      Lane& lane = *active_lanes[w];
      const index_t begin = k0.row_ptr[lane.state];
      const index_t end = k0.row_ptr[lane.state + 1];
      if (begin == end) {
        // Absorbing state: the surviving groups consumed the whole walk.
        for (index_t m = 0; m < lane.live_count; ++m) {
          for (index_t t : lane.live[m].entry->trials) {
            lane.trans[t] += lane.steps;
          }
        }
        active_lanes[w] = active_lanes[--active];
        continue;
      }
      index_t p;
      if constexpr (method == SamplingMethod::kAlias) {
        p = k0.alias.sample(begin, end, lane.rng());
      } else {
        const real_t target = uniform01(lane.rng) * k0.row_sum[lane.state];
        const auto first = k0.cum_abs.begin() + begin;
        const auto last = k0.cum_abs.begin() + end;
        auto it = std::upper_bound(first, last, target);
        if (it == last) --it;
        p = static_cast<index_t>(it - k0.cum_abs.begin());
      }
      lane.state = k0.succ[p];
      ++lane.steps;
      if constexpr (!multi_alpha) {
        lane.weights[0] *= k0.signed_sum[p];
        const real_t aw = std::abs(lane.weights[0]);
        if (aw > kDivergenceGuard) {
          // Blow-up: every still-running group breaks at this counted step,
          // nothing accumulated (run_walk breaks before the accumulate).
          for (index_t m = 0; m < lane.live_count; ++m) {
            for (index_t t : lane.live[m].entry->trials) {
              lane.trans[t] += lane.steps;
              lane.retired[t] += 1;
            }
          }
          active_lanes[w] = active_lanes[--active];
          continue;
        }
        for (index_t m = 0; m < lane.live_count;) {
          LiveGroup& e = lane.live[m];
          if (aw < e.delta) {
            // Sticky truncation: crossing step counted, not accumulated.
            for (index_t t : e.entry->trials) lane.trans[t] += lane.steps;
            e = lane.live[--lane.live_count];
            continue;
          }
          e.acc[lane.state] += lane.weights[0];
          if (lane.steps == e.cutoff) {
            for (index_t t : e.entry->trials) lane.trans[t] += lane.steps;
            e = lane.live[--lane.live_count];
            continue;
          }
          ++m;
        }
      } else {
        // Shared successor draw, one weight stream per alpha.  A diverged
        // alpha stops updating (its walks have ended; the flag keeps inf
        // out of the stream) and retires its groups at this counted step.
        for (index_t a = 0; a < n_alphas; ++a) {
          if ((lane.diverged >> a) & 1u) continue;
          lane.weights[a] *= kernels[a]->signed_sum[p];
          if (std::abs(lane.weights[a]) > kDivergenceGuard) {
            lane.diverged |= u64{1} << a;
          }
        }
        for (index_t m = 0; m < lane.live_count;) {
          LiveGroup& e = lane.live[m];
          if ((lane.diverged >> e.alpha) & 1u) {
            for (index_t t : e.entry->trials) {
              lane.trans[t] += lane.steps;
              lane.retired[t] += 1;
            }
            e = lane.live[--lane.live_count];
            continue;
          }
          const real_t weight = lane.weights[e.alpha];
          const real_t aw = std::abs(weight);
          if (aw < e.delta) {
            for (index_t t : e.entry->trials) lane.trans[t] += lane.steps;
            e = lane.live[--lane.live_count];
            continue;
          }
          e.acc[lane.state] += weight;
          if (lane.steps == e.cutoff) {
            for (index_t t : e.entry->trials) lane.trans[t] += lane.steps;
            e = lane.live[--lane.live_count];
            continue;
          }
          ++m;
        }
      }
      // Mark before retiring the lane: a cutoff removal above accumulated
      // into this state, so this lane's emission must see it.
      if (lane.mark[static_cast<std::size_t>(lane.state)] != epoch) {
        lane.mark[static_cast<std::size_t>(lane.state)] = epoch;
        lane.visited->push_back(lane.state);
      }
      if (lane.live_count == 0) {
        active_lanes[w] = active_lanes[--active];
        continue;
      }
      ++w;
    }
  }
}

/// The compile-time lane-width tier of the lockstep engine: the same chain
/// semantics as `run_lockstep_chains<method, false>` with the per-lane walk
/// state (RNG words, position, weight, step count) hoisted out of the `Lane`
/// structs into W-wide struct-of-arrays locals the compiler can keep in
/// registers, a batched RNG that advances all W streams per round
/// (`Xoshiro256Batch`), and batched alias-table lookups
/// (`AliasTable::sample_batch`) that issue the W dependent loads together.
/// Lane retirement is a bitmask instead of pointer swap-removal, so the
/// round loops have a compile-time trip count.
///
/// Bit-identity with the dynamic tier: each lane's chain stream is recreated
/// per chain via make_stream, so advancing a retired lane's (dead) stream in
/// the batched draw is unobservable; an active lane at round s has consumed
/// exactly s draws in both tiers (absorbing lanes retire *before* the round's
/// draw, exactly as the dynamic engine checks `begin == end` before
/// sampling), and every weight/accumulator/mark update below is the
/// dynamic engine's, expression for expression.  Single-alpha only — the
/// multi-alpha ensemble always runs the dynamic tier.
/// The single-unit engine of the specialised tier: when every lane's live
/// list holds exactly one group — one (alpha, trial) unit per replicate,
/// the shape of the tuning loop's per-candidate replicate evaluation — the
/// whole stop rule is lane-invariant (the unit's delta, cutoff, and
/// accounting entry are shared; only the accumulator differs per lane), so
/// it lifts out of the `LiveGroup` scratch into scalars and per-lane
/// pointer arrays.  The per-transition inner loop then touches no `Lane`
/// or `LiveGroup` storage at all: stop-rule compares run against
/// register-resident scalars and the three remaining memory accesses are
/// the kernel loads, the accumulator add, and the epoch mark — the
/// irreducible set.  Same per-lane expression order as the dynamic tier,
/// so bit-identity is preserved (see run_lockstep_chains_spec below).
template <SamplingMethod method, int W>
void run_lockstep_chains_spec_single(const WalkKernel& k0, Lane* lanes,
                                     u32 epoch) {
  const real_t delta = lanes[0].live[0].delta;
  const index_t cutoff = lanes[0].live[0].cutoff;
  const SegEntry* entry = lanes[0].live[0].entry;
  Xoshiro256Batch<W> rng;
  index_t state[W];
  index_t steps[W];
  real_t weight[W];
  real_t* acc[W];
  u32* mark[W];
  std::vector<index_t>* vis[W];
  u32 active = 0;
  for (int l = 0; l < W; ++l) {
    rng.set_lane(l, lanes[l].rng);
    state[l] = lanes[l].state;
    steps[l] = lanes[l].steps;
    weight[l] = lanes[l].weights[0];
    acc[l] = lanes[l].live[0].acc;
    mark[l] = lanes[l].mark;
    vis[l] = lanes[l].visited;
    active |= u32{1} << l;
  }
  u64 bits[W];
  index_t begin[W];
  index_t end[W];
  index_t p[W];
  while (active != 0) {
    for (int l = 0; l < W; ++l) {
      begin[l] = k0.row_ptr[state[l]];
      end[l] = k0.row_ptr[state[l] + 1];
    }
    for (int l = 0; l < W; ++l) {
      if (((active >> l) & 1u) != 0 && begin[l] == end[l]) {
        // Absorbing state: the group consumed the whole walk, no draw spent.
        for (index_t t : entry->trials) lanes[l].trans[t] += steps[l];
        active &= ~(u32{1} << l);
      }
    }
    if (active == 0) break;
    rng.next(bits);
    if constexpr (method == SamplingMethod::kAlias) {
      k0.alias.template sample_batch<W>(begin, end, bits, p);
    } else {
      for (int l = 0; l < W; ++l) {
        if (((active >> l) & 1u) == 0) {
          p[l] = 0;
          continue;
        }
        const real_t target = static_cast<real_t>(bits[l] >> 11) * 0x1.0p-53 *
                              k0.row_sum[state[l]];
        const auto first = k0.cum_abs.begin() + begin[l];
        const auto last = k0.cum_abs.begin() + end[l];
        auto it = std::upper_bound(first, last, target);
        if (it == last) --it;
        p[l] = static_cast<index_t>(it - k0.cum_abs.begin());
      }
    }
    for (int l = 0; l < W; ++l) {
      if (((active >> l) & 1u) == 0) continue;
      weight[l] *= k0.signed_sum[p[l]];
      state[l] = k0.succ[p[l]];
      ++steps[l];
      const real_t aw = std::abs(weight[l]);
      if (aw > kDivergenceGuard) {
        // Blow-up: break at this counted step, nothing accumulated, no mark.
        for (index_t t : entry->trials) {
          lanes[l].trans[t] += steps[l];
          lanes[l].retired[t] += 1;
        }
        active &= ~(u32{1} << l);
        continue;
      }
      bool done;
      if (aw < delta) {
        // Sticky truncation: crossing step counted, not accumulated.
        for (index_t t : entry->trials) lanes[l].trans[t] += steps[l];
        done = true;
      } else {
        acc[l][state[l]] += weight[l];
        done = steps[l] == cutoff;
        if (done) {
          for (index_t t : entry->trials) lanes[l].trans[t] += steps[l];
        }
      }
      // Mark before retiring the lane: a cutoff removal above accumulated
      // into this state, so this lane's emission must see it (and the
      // dynamic tier marks on delta truncation too — a zero-accumulator
      // candidate the emission threshold then drops).
      if (mark[l][static_cast<std::size_t>(state[l])] != epoch) {
        mark[l][static_cast<std::size_t>(state[l])] = epoch;
        vis[l]->push_back(state[l]);
      }
      if (done) active &= ~(u32{1} << l);
    }
  }
}

template <SamplingMethod method, int W>
void run_lockstep_chains_spec(const WalkKernel& k0, Lane* lanes, u32 epoch) {
  if (lanes[0].live_count == 1) {
    // One live group per lane (the live template is lane-uniform): take the
    // register-resident single-unit engine.
    run_lockstep_chains_spec_single<method, W>(k0, lanes, epoch);
    return;
  }
  Xoshiro256Batch<W> rng;
  index_t state[W];
  index_t steps[W];
  real_t weight[W];
  u32 active = 0;
  for (int l = 0; l < W; ++l) {
    rng.set_lane(l, lanes[l].rng);
    state[l] = lanes[l].state;
    steps[l] = lanes[l].steps;
    weight[l] = lanes[l].weights[0];
    active |= u32{1} << l;
  }
  u64 bits[W];
  index_t begin[W];
  index_t end[W];
  index_t p[W];
  while (active != 0) {
    // Gather the row ranges of all W lanes together (a retired lane reads
    // its stale — still valid — position; its range is never acted on).
    for (int l = 0; l < W; ++l) {
      begin[l] = k0.row_ptr[state[l]];
      end[l] = k0.row_ptr[state[l] + 1];
    }
    // Absorbing states retire before the draw: the surviving groups
    // consumed the whole walk, and no RNG word is spent (the dynamic tier
    // breaks before sampling too).
    for (int l = 0; l < W; ++l) {
      if (((active >> l) & 1u) != 0 && begin[l] == end[l]) {
        Lane& lane = lanes[l];
        for (index_t m = 0; m < lane.live_count; ++m) {
          for (index_t t : lane.live[m].entry->trials) {
            lane.trans[t] += steps[l];
          }
        }
        active &= ~(u32{1} << l);
      }
    }
    if (active == 0) break;
    // One batched draw advances every lane's stream; retired lanes' words
    // are dead (their streams are re-keyed at the next chain).
    rng.next(bits);
    if constexpr (method == SamplingMethod::kAlias) {
      k0.alias.template sample_batch<W>(begin, end, bits, p);
    } else {
      for (int l = 0; l < W; ++l) {
        if (((active >> l) & 1u) == 0) {
          p[l] = 0;
          continue;
        }
        const real_t target = static_cast<real_t>(bits[l] >> 11) * 0x1.0p-53 *
                              k0.row_sum[state[l]];
        const auto first = k0.cum_abs.begin() + begin[l];
        const auto last = k0.cum_abs.begin() + end[l];
        auto it = std::upper_bound(first, last, target);
        if (it == last) --it;
        p[l] = static_cast<index_t>(it - k0.cum_abs.begin());
      }
    }
    for (int l = 0; l < W; ++l) {
      if (((active >> l) & 1u) == 0) continue;
      Lane& lane = lanes[l];
      weight[l] *= k0.signed_sum[p[l]];
      state[l] = k0.succ[p[l]];
      ++steps[l];
      const real_t aw = std::abs(weight[l]);
      if (aw > kDivergenceGuard) {
        // Blow-up: every still-running group breaks at this counted step,
        // nothing accumulated and no mark (run_walk breaks before both).
        for (index_t m = 0; m < lane.live_count; ++m) {
          for (index_t t : lane.live[m].entry->trials) {
            lane.trans[t] += steps[l];
            lane.retired[t] += 1;
          }
        }
        active &= ~(u32{1} << l);
        continue;
      }
      for (index_t m = 0; m < lane.live_count;) {
        LiveGroup& e = lane.live[m];
        if (aw < e.delta) {
          // Sticky truncation: crossing step counted, not accumulated.
          for (index_t t : e.entry->trials) lane.trans[t] += steps[l];
          e = lane.live[--lane.live_count];
          continue;
        }
        e.acc[state[l]] += weight[l];
        if (steps[l] == e.cutoff) {
          for (index_t t : e.entry->trials) lane.trans[t] += steps[l];
          e = lane.live[--lane.live_count];
          continue;
        }
        ++m;
      }
      // Mark before retiring the lane: a cutoff removal above accumulated
      // into this state, so this lane's emission must see it.
      if (lane.mark[static_cast<std::size_t>(state[l])] != epoch) {
        lane.mark[static_cast<std::size_t>(state[l])] = epoch;
        lane.visited->push_back(state[l]);
      }
      if (lane.live_count == 0) active &= ~(u32{1} << l);
    }
  }
}

/// Flattened build request for the interleaved engine: one "unit" per
/// (alpha, trial) pair, one lane per replicate seed.
struct EngineUnits {
  std::vector<GridTrial> trials;  ///< per unit
  std::vector<index_t> alpha_of;  ///< per unit: index into the kernel list
};

/// Engine outputs, indexed [lane][unit].
struct EngineOutput {
  std::vector<std::vector<CsrMatrix>> p;
  std::vector<std::vector<McmcBuildInfo>> info;
};

/// The interleaved ensemble build shared by replicate_batched_grid_build
/// (one alpha, R lanes) and the multi-alpha fast path (A alphas, R lanes):
/// Phase A walks every lane in lockstep through the shared chain schedule,
/// Phase B emits every (lane, unit) row through the standalone arena path,
/// Phase C assembles per-(lane, unit) CSRs and apportions the ensemble wall
/// time by each build's own truncated transition share.
EngineOutput run_interleaved_engine(const CsrMatrix& a,
                                    const std::vector<const WalkKernel*>& kernels,
                                    const std::vector<bool>& cache_hits,
                                    const EngineUnits& units,
                                    const std::vector<u64>& seeds,
                                    const McmcOptions& options) {
  WallTimer ensemble_timer;
  const index_t n = a.rows();
  const auto n_units = static_cast<index_t>(units.trials.size());
  const auto n_lanes = static_cast<index_t>(seeds.size());
  const auto n_alphas = static_cast<index_t>(kernels.size());
  // Multi-alpha requests reach the engine only after multi_alpha_grid_build
  // verified that kernels[0]'s draws serve every alpha bit-identically
  // (can_share_successor_draws / can_share_inverse_cdf_draws per method).
  const bool multi = n_alphas > 1;

  std::vector<index_t> n_chains(units.trials.size());
  std::vector<index_t> cutoffs(units.trials.size());
  std::vector<real_t> deltas(units.trials.size());
  std::vector<McmcBuildInfo> info_template(units.trials.size());
  for (std::size_t u = 0; u < units.trials.size(); ++u) {
    const WalkKernel& k = *kernels[static_cast<std::size_t>(units.alpha_of[u])];
    n_chains[u] = chains_for_eps(units.trials[u].eps);
    cutoffs[u] = walk_length_for_delta(units.trials[u].delta, k.norm_inf,
                                       options.walk_cap);
    deltas[u] = units.trials[u].delta;
    McmcBuildInfo& info = info_template[u];
    info.b_norm_inf = k.norm_inf;
    info.neumann_convergent = k.norm_inf < 1.0;
    info.chains_per_row = n_chains[u];
    info.walk_cutoff = cutoffs[u];
    info.kernel_cache_hit =
        cache_hits[static_cast<std::size_t>(units.alpha_of[u])];
  }
  const std::vector<ChainSegment> segments =
      build_segments(n_chains, deltas, cutoffs, units.alpha_of);

  const index_t row_budget = std::max<index_t>(
      1, static_cast<index_t>(std::llround(
             options.filling_factor * static_cast<real_t>(a.nnz()) /
             static_cast<real_t>(n))));
  const real_t threshold = options.truncation_threshold;

  // Per-(lane, unit) arenas and row slices: the assembly path of the
  // standalone inverter, instantiated once per build.  Flat index
  // lane * n_units + unit throughout.
  const auto n_builds = static_cast<std::size_t>(n_lanes) *
                        static_cast<std::size_t>(n_units);
  const auto num_threads = static_cast<std::size_t>(max_threads());
  std::vector<std::vector<RowArena>> arenas(
      n_builds, std::vector<RowArena>(num_threads));
  std::vector<std::vector<RowSlice>> row_slices(
      n_builds, std::vector<RowSlice>(static_cast<std::size_t>(n)));
  std::vector<long long> transitions(n_builds, 0);
  std::vector<long long> retired(n_builds, 0);
  // Cooperative cancellation: an `omp for` cannot break, so a shared flag
  // turns the remaining rows into no-ops; the partial ensemble is discarded
  // after the loops.
  std::atomic<bool> aborted{false};

  const ChainPartition partition(n, options.ranks);
  for (index_t rank = 0; rank < options.ranks; ++rank) {
    const index_t row_begin = partition.begin(rank);
    const index_t row_end = partition.end(rank);
    // Shard-grouped row spans (sparse/sharded_plan.hpp): a span never
    // crosses a shard boundary, so a sharded grid build walks shard-local
    // work units; an empty options.shards yields plain 8-row spans — the
    // legacy chunking.  Chains stay keyed by (seed, row, chain), so the
    // assembled CSRs are bit-identical for any layout.
    const std::vector<std::pair<index_t, index_t>> spans =
        shard_row_spans(options.shards, row_begin, row_end, 8);
#pragma omp parallel
    {
      const int tid = thread_id();
      // Thread-private workspace.  accum holds one dense accumulator per
      // (lane, unit); each lane tracks its own touched-state set so a
      // replicate's emission streams only what its own walks reached — a
      // superset of each unit's touched set within the lane, harmless
      // because never-touched states carry an exact 0.0 and fall to the
      // threshold filter, leaving each emitted row bit-identical.
      std::vector<real_t> accum(n_builds * static_cast<std::size_t>(n), 0.0);
      std::vector<u32> mark(static_cast<std::size_t>(n_lanes) *
                                static_cast<std::size_t>(n),
                            0);
      u32 epoch = 0;
      std::vector<std::vector<index_t>> visited(
          static_cast<std::size_t>(n_lanes));
      // One emission engine per thread: its scratch is recycled across every
      // (trial, replicate, alpha) lane instead of re-allocated per emission.
      RowEmitter emitter;
      std::vector<EmissionUnit> group(static_cast<std::size_t>(n_units));
      std::vector<long long> local_transitions(n_builds, 0);
      std::vector<long long> local_retired(n_builds, 0);
      std::vector<real_t> inv_chains(units.trials.size());
      for (std::size_t u = 0; u < units.trials.size(); ++u) {
        inv_chains[u] = 1.0 / static_cast<real_t>(n_chains[u]);
      }
      const auto acc_of = [&](index_t lane, index_t u) {
        return accum.data() +
               (static_cast<std::size_t>(lane) *
                    static_cast<std::size_t>(n_units) +
                static_cast<std::size_t>(u)) *
                   static_cast<std::size_t>(n);
      };
      // Per-segment live-list templates with each lane's accumulator
      // pointers patched in (lane-major), plus the scratch the chains
      // consume and the per-lane weight slots.
      std::vector<std::vector<LiveGroup>> live_template(segments.size());
      std::size_t max_entries = 0;
      for (std::size_t s = 0; s < segments.size(); ++s) {
        for (index_t lane = 0; lane < n_lanes; ++lane) {
          for (const SegEntry& e : segments[s].entries) {
            live_template[s].push_back(
                {e.delta, acc_of(lane, e.target), e.cutoff, e.alpha, &e});
          }
        }
        max_entries = std::max(max_entries, segments[s].entries.size());
      }
      std::vector<LiveGroup> live(static_cast<std::size_t>(n_lanes) *
                                  max_entries);
      std::vector<real_t> weights(static_cast<std::size_t>(n_lanes) *
                                  static_cast<std::size_t>(n_alphas));
      std::vector<Lane> lanes(static_cast<std::size_t>(n_lanes));
      std::vector<Lane*> active_ptrs(static_cast<std::size_t>(n_lanes));
      // Lane-invariant wiring (scratch slices, counters, touched sets) is
      // fixed per thread; only the per-chain walk state is reset below.
      for (index_t r = 0; r < n_lanes; ++r) {
        Lane& lane = lanes[static_cast<std::size_t>(r)];
        lane.live = live.data() + static_cast<std::size_t>(r) * max_entries;
        lane.weights = weights.data() + static_cast<std::size_t>(r) *
                                            static_cast<std::size_t>(n_alphas);
        lane.trans = local_transitions.data() +
                     static_cast<std::size_t>(r) *
                         static_cast<std::size_t>(n_units);
        lane.retired = local_retired.data() +
                       static_cast<std::size_t>(r) *
                           static_cast<std::size_t>(n_units);
        lane.mark = mark.data() +
                    static_cast<std::size_t>(r) * static_cast<std::size_t>(n);
        lane.visited = &visited[static_cast<std::size_t>(r)];
      }
      const index_t nspans = static_cast<index_t>(spans.size());
#pragma omp for schedule(dynamic, 1)
      for (index_t sp = 0; sp < nspans; ++sp)
      for (index_t i = spans[static_cast<std::size_t>(sp)].first;
           i < spans[static_cast<std::size_t>(sp)].second; ++i) {
        if (aborted.load(std::memory_order_relaxed)) continue;
        if (options.cancel != nullptr && options.cancel->should_stop()) {
          aborted.store(true, std::memory_order_relaxed);
          continue;
        }
        // ---- Phase A: every lane's chain c advances in lockstep through
        // the shared segment schedule, scattering into its own replicate's
        // group streams; at each segment boundary the finished members
        // freeze bit-copies of their stream per lane (the CRN invariant in
        // the header).
        ++epoch;
        for (index_t r = 0; r < n_lanes; ++r) {
          visited[static_cast<std::size_t>(r)].clear();
          visited[static_cast<std::size_t>(r)].push_back(i);
          mark[static_cast<std::size_t>(r) * static_cast<std::size_t>(n) +
               static_cast<std::size_t>(i)] = epoch;
        }
        for (std::size_t s = 0; s < segments.size(); ++s) {
          const ChainSegment& seg = segments[s];
          const auto entries =
              static_cast<index_t>(segments[s].entries.size());
          for (index_t c = seg.chain_begin; c < seg.chain_end; ++c) {
            for (index_t r = 0; r < n_lanes; ++r) {
              Lane& lane = lanes[static_cast<std::size_t>(r)];
              lane.rng = make_stream(seeds[static_cast<std::size_t>(r)],
                                     static_cast<u64>(i), static_cast<u64>(c));
              lane.state = i;
              lane.steps = 0;
              lane.diverged = 0;
              std::copy(live_template[s].begin() +
                            static_cast<std::ptrdiff_t>(r * entries),
                        live_template[s].begin() +
                            static_cast<std::ptrdiff_t>((r + 1) * entries),
                        lane.live);
              lane.live_count = entries;
              for (index_t al = 0; al < n_alphas; ++al) {
                lane.weights[al] = 1.0;
              }
              // k = 0 term of the Neumann series, once per chain per group.
              for (index_t m = 0; m < entries; ++m) lane.live[m].acc[i] += 1.0;
            }
            // Lane-tier dispatch on the active lane count: single-alpha
            // ensembles whose lane count matches a compiled width run the
            // SIMD tier (register-resident SoA state, batched RNG + alias
            // lookups); everything else — multi-alpha, odd lane counts, or
            // an explicit opt-out — runs the dynamic tier.  Both tiers are
            // bit-identical, so the choice is invisible in the output.
            const bool spec = !multi && !options.force_dynamic_lanes &&
                              (n_lanes == 4 || n_lanes == 8 || n_lanes == 16);
            if (options.sampling == SamplingMethod::kAlias) {
              if (multi) {
                run_lockstep_chains<SamplingMethod::kAlias, true>(
                    kernels.data(), n_alphas, lanes.data(), active_ptrs.data(),
                    n_lanes, epoch);
              } else if (spec && n_lanes == 4) {
                run_lockstep_chains_spec<SamplingMethod::kAlias, 4>(
                    *kernels[0], lanes.data(), epoch);
              } else if (spec && n_lanes == 8) {
                run_lockstep_chains_spec<SamplingMethod::kAlias, 8>(
                    *kernels[0], lanes.data(), epoch);
              } else if (spec && n_lanes == 16) {
                run_lockstep_chains_spec<SamplingMethod::kAlias, 16>(
                    *kernels[0], lanes.data(), epoch);
              } else {
                run_lockstep_chains<SamplingMethod::kAlias, false>(
                    kernels.data(), n_alphas, lanes.data(), active_ptrs.data(),
                    n_lanes, epoch);
              }
            } else {
              if (multi) {
                run_lockstep_chains<SamplingMethod::kInverseCdf, true>(
                    kernels.data(), n_alphas, lanes.data(), active_ptrs.data(),
                    n_lanes, epoch);
              } else if (spec && n_lanes == 4) {
                run_lockstep_chains_spec<SamplingMethod::kInverseCdf, 4>(
                    *kernels[0], lanes.data(), epoch);
              } else if (spec && n_lanes == 8) {
                run_lockstep_chains_spec<SamplingMethod::kInverseCdf, 8>(
                    *kernels[0], lanes.data(), epoch);
              } else if (spec && n_lanes == 16) {
                run_lockstep_chains_spec<SamplingMethod::kInverseCdf, 16>(
                    *kernels[0], lanes.data(), epoch);
              } else {
                run_lockstep_chains<SamplingMethod::kInverseCdf, false>(
                    kernels.data(), n_alphas, lanes.data(), active_ptrs.data(),
                    n_lanes, epoch);
              }
            }
          }
          for (const CopyOp& op : seg.copies) {
            for (index_t r = 0; r < n_lanes; ++r) {
              const real_t* src = acc_of(r, op.src);
              real_t* dst = acc_of(r, op.dst);
              for (index_t j : visited[static_cast<std::size_t>(r)]) {
                dst[j] = src[j];
              }
            }
          }
        }
        for (index_t r = 0; r < n_lanes; ++r) {
          std::sort(visited[static_cast<std::size_t>(r)].begin(),
                    visited[static_cast<std::size_t>(r)].end());
        }

        // ---- Phase B: emit every (lane, unit) row through the arena path.
        // One emit_group() per lane: the lane's units share its sorted
        // touched set (a superset of each unit's own), so unit 0's kept
        // columns pre-rank the candidates for the lane's remaining units.
        for (index_t r = 0; r < n_lanes; ++r) {
          for (index_t u = 0; u < n_units; ++u) {
            const auto b = static_cast<std::size_t>(r) *
                               static_cast<std::size_t>(n_units) +
                           static_cast<std::size_t>(u);
            group[static_cast<std::size_t>(u)] = {
                &arenas[b][static_cast<std::size_t>(tid)], acc_of(r, u),
                inv_chains[static_cast<std::size_t>(u)],
                &kernels[static_cast<std::size_t>(
                             units.alpha_of[static_cast<std::size_t>(u)])]
                     ->inv_diag,
                &row_slices[b][static_cast<std::size_t>(i)]};
          }
          emitter.emit_group(group.data(), n_units, tid,
                             visited[static_cast<std::size_t>(r)], i,
                             threshold, row_budget);
        }
      }
#pragma omp critical(mcmi_interleaved_transitions)
      {
        for (std::size_t b = 0; b < n_builds; ++b) {
          transitions[b] += local_transitions[b];
          retired[b] += local_retired[b];
        }
      }
    }
  }
  const real_t ensemble_seconds = ensemble_timer.seconds();

  // Phase C: per-(lane, unit) CSR assembly, timed per build; the shared
  // ensemble time is apportioned by each build's own truncated transition
  // share so build_seconds reflects the work it would have paid standalone.
  // An aborted ensemble skips assembly: every build reports the stop reason
  // and an empty matrix (partial artifacts discarded).
  long long total_transitions = 0;
  for (long long t : transitions) total_transitions += t;
  const bool was_aborted = aborted.load();

  EngineOutput out;
  out.p.resize(static_cast<std::size_t>(n_lanes));
  out.info.resize(static_cast<std::size_t>(n_lanes));
  for (index_t r = 0; r < n_lanes; ++r) {
    auto& lane_p = out.p[static_cast<std::size_t>(r)];
    auto& lane_info = out.info[static_cast<std::size_t>(r)];
    lane_p.reserve(static_cast<std::size_t>(n_units));
    lane_info.reserve(static_cast<std::size_t>(n_units));
    for (index_t u = 0; u < n_units; ++u) {
      const auto b = static_cast<std::size_t>(r) *
                         static_cast<std::size_t>(n_units) +
                     static_cast<std::size_t>(u);
      WallTimer assembly_timer;
      lane_p.push_back(was_aborted ? CsrMatrix()
                                   : assemble_csr_from_arenas(n, row_slices[b],
                                                              arenas[b]));
      McmcBuildInfo info = info_template[static_cast<std::size_t>(u)];
      if (was_aborted) info.status = build_stop_reason(*options.cancel);
      info.total_transitions = transitions[b];
      info.divergence_retirements = retired[b];
      const real_t share =
          total_transitions > 0
              ? static_cast<real_t>(transitions[b]) /
                    static_cast<real_t>(total_transitions)
              : 1.0 / static_cast<real_t>(n_builds);
      info.build_seconds = ensemble_seconds * share + assembly_timer.seconds();
      lane_info.push_back(info);
    }
  }
  return out;
}

/// Shared argument validation for the grid builders.
void check_grid_request(const CsrMatrix& a, real_t alpha,
                        const std::vector<GridTrial>& trials,
                        const McmcOptions& options) {
  MCMI_CHECK(a.rows() == a.cols(), "MCMCMI needs a square matrix");
  MCMI_CHECK(alpha >= 0.0, "alpha must be nonnegative");
  MCMI_CHECK(!trials.empty(), "batched grid build needs at least one trial");
  MCMI_CHECK(options.filling_factor > 0.0, "filling factor must be positive");
  for (const GridTrial& t : trials) {
    MCMI_CHECK(t.eps > 0.0 && t.eps <= 1.0, "eps must be in (0,1]");
    MCMI_CHECK(t.delta > 0.0 && t.delta <= 1.0, "delta must be in (0,1]");
  }
}

}  // namespace

BatchedGridResult batched_grid_build(const CsrMatrix& a, real_t alpha,
                                     const std::vector<GridTrial>& trials,
                                     const McmcOptions& options,
                                     WalkKernelCache* kernel_cache) {
  check_grid_request(a, alpha, trials, options);

  WallTimer ensemble_timer;
  const index_t n = a.rows();
  const auto g = static_cast<index_t>(trials.size());

  std::shared_ptr<const WalkKernel> cached;
  WalkKernel local;
  bool cache_hit = false;
  if (kernel_cache != nullptr) {
    cached = kernel_cache->get(a, alpha, &cache_hit);
  } else {
    local = build_walk_kernel(a, alpha);
  }
  const WalkKernel& kernel = cached ? *cached : local;

  std::vector<index_t> n_chains(trials.size());
  std::vector<index_t> cutoffs(trials.size());
  std::vector<real_t> deltas(trials.size());
  BatchedGridResult result;
  result.info.resize(trials.size());
  for (std::size_t t = 0; t < trials.size(); ++t) {
    n_chains[t] = chains_for_eps(trials[t].eps);
    cutoffs[t] = walk_length_for_delta(trials[t].delta, kernel.norm_inf,
                                       options.walk_cap);
    deltas[t] = trials[t].delta;
    McmcBuildInfo& info = result.info[t];
    info.b_norm_inf = kernel.norm_inf;
    info.neumann_convergent = kernel.norm_inf < 1.0;
    info.chains_per_row = n_chains[t];
    info.walk_cutoff = cutoffs[t];
    info.kernel_cache_hit = cache_hit;
  }
  const std::vector<index_t> alpha_of(trials.size(), 0);
  const std::vector<ChainSegment> segments =
      build_segments(n_chains, deltas, cutoffs, alpha_of);

  const index_t row_budget = std::max<index_t>(
      1, static_cast<index_t>(std::llround(
             options.filling_factor * static_cast<real_t>(a.nnz()) /
             static_cast<real_t>(n))));
  const real_t threshold = options.truncation_threshold;

  // Per-trial arenas and row slices: the assembly path of the standalone
  // inverter, instantiated once per trial.
  const auto num_threads = static_cast<std::size_t>(max_threads());
  std::vector<std::vector<RowArena>> arenas(
      trials.size(), std::vector<RowArena>(num_threads));
  std::vector<std::vector<RowSlice>> row_slices(
      trials.size(), std::vector<RowSlice>(static_cast<std::size_t>(n)));
  std::vector<long long> transitions(trials.size(), 0);
  std::vector<long long> retired(trials.size(), 0);
  // Cooperative cancellation: an `omp for` cannot break, so a shared flag
  // turns the remaining rows into no-ops; the partial batch is discarded
  // after the loops.
  std::atomic<bool> aborted{false};

  const ChainPartition partition(n, options.ranks);
  for (index_t rank = 0; rank < options.ranks; ++rank) {
    const index_t row_begin = partition.begin(rank);
    const index_t row_end = partition.end(rank);
    // Shard-grouped row spans (sparse/sharded_plan.hpp): a span never
    // crosses a shard boundary, so a sharded grid build walks shard-local
    // work units; an empty options.shards yields plain 8-row spans — the
    // legacy chunking.  Chains stay keyed by (seed, row, chain), so the
    // assembled CSRs are bit-identical for any layout.
    const std::vector<std::pair<index_t, index_t>> spans =
        shard_row_spans(options.shards, row_begin, row_end, 8);
#pragma omp parallel
    {
      const int tid = thread_id();
      // Thread-private workspace.  accum holds one dense accumulator per
      // trial; mark/visited track the union of touched states per row — a
      // superset of every trial's own touched set, harmless because
      // never-touched states carry an exact 0.0 and fall to the threshold
      // filter, leaving each trial's emitted row bit-identical.
      std::vector<real_t> accum(
          static_cast<std::size_t>(g) * static_cast<std::size_t>(n), 0.0);
      std::vector<u32> mark(static_cast<std::size_t>(n), 0);
      u32 epoch = 0;
      std::vector<index_t> visited;
      // One emission engine per thread, recycled across every trial's rows.
      RowEmitter emitter;
      std::vector<EmissionUnit> group(static_cast<std::size_t>(g));
      std::vector<long long> local_transitions(trials.size(), 0);
      std::vector<long long> local_retired(trials.size(), 0);
      std::vector<real_t> inv_chains(trials.size());
      for (std::size_t t = 0; t < trials.size(); ++t) {
        inv_chains[t] = 1.0 / static_cast<real_t>(n_chains[t]);
      }
      const auto acc_of = [&](index_t t) {
        return accum.data() +
               static_cast<std::size_t>(t) * static_cast<std::size_t>(n);
      };
      // Per-segment live-list templates with this thread's accumulator
      // pointers patched in, plus the scratch copy each chain consumes.
      std::vector<std::vector<LiveGroup>> live_template(segments.size());
      std::size_t max_entries = 0;
      for (std::size_t s = 0; s < segments.size(); ++s) {
        for (const SegEntry& e : segments[s].entries) {
          live_template[s].push_back(
              {e.delta, acc_of(e.target), e.cutoff, e.alpha, &e});
        }
        max_entries = std::max(max_entries, live_template[s].size());
      }
      std::vector<LiveGroup> live(max_entries);
      const index_t nspans = static_cast<index_t>(spans.size());
#pragma omp for schedule(dynamic, 1)
      for (index_t sp = 0; sp < nspans; ++sp)
      for (index_t i = spans[static_cast<std::size_t>(sp)].first;
           i < spans[static_cast<std::size_t>(sp)].second; ++i) {
        if (aborted.load(std::memory_order_relaxed)) continue;
        if (options.cancel != nullptr && options.cancel->should_stop()) {
          aborted.store(true, std::memory_order_relaxed);
          continue;
        }
        // ---- Phase A: one shared walk per chain, scattering into every
        // running group's stream accumulator; at each segment boundary the
        // finished members freeze bit-copies of their stream (see the CRN
        // invariant in the header).
        ++epoch;
        visited.clear();
        for (std::size_t s = 0; s < segments.size(); ++s) {
          const ChainSegment& seg = segments[s];
          const auto live_count =
              static_cast<index_t>(live_template[s].size());
          for (index_t c = seg.chain_begin; c < seg.chain_end; ++c) {
            std::copy(live_template[s].begin(), live_template[s].end(),
                      live.begin());
            Xoshiro256 rng = make_stream(options.seed, static_cast<u64>(i),
                                         static_cast<u64>(c));
            if (options.sampling == SamplingMethod::kAlias) {
              run_shared_walk<SamplingMethod::kAlias>(
                  kernel, i, live.data(), live_count,
                  local_transitions.data(), local_retired.data(), rng, mark,
                  epoch, visited);
            } else {
              run_shared_walk<SamplingMethod::kInverseCdf>(
                  kernel, i, live.data(), live_count,
                  local_transitions.data(), local_retired.data(), rng, mark,
                  epoch, visited);
            }
          }
          for (const CopyOp& op : seg.copies) {
            const real_t* src = acc_of(op.src);
            real_t* dst = acc_of(op.dst);
            for (index_t j : visited) dst[j] = src[j];
          }
        }
        std::sort(visited.begin(), visited.end());

        // ---- Phase B: emit every trial's row through the arena path.
        // One emit_group() over the trials: they share the sorted union (a
        // touched superset), so trial 0's kept columns pre-rank the
        // candidates for the rest of the group.
        for (index_t t = 0; t < g; ++t) {
          group[static_cast<std::size_t>(t)] = {
              &arenas[static_cast<std::size_t>(t)]
                     [static_cast<std::size_t>(tid)],
              acc_of(t), inv_chains[static_cast<std::size_t>(t)],
              &kernel.inv_diag,
              &row_slices[static_cast<std::size_t>(t)]
                         [static_cast<std::size_t>(i)]};
        }
        emitter.emit_group(group.data(), g, tid, visited, i, threshold,
                           row_budget);
      }
#pragma omp critical(mcmi_batched_transitions)
      {
        for (std::size_t t = 0; t < trials.size(); ++t) {
          transitions[t] += local_transitions[t];
          retired[t] += local_retired[t];
        }
      }
    }
  }
  const real_t ensemble_seconds = ensemble_timer.seconds();

  // Phase C: per-trial CSR assembly, timed per trial; the shared ensemble
  // time is apportioned by each trial's own truncated transition share so
  // build_seconds reflects the work the trial would have paid standalone.
  // An aborted batch skips assembly: every trial reports the stop reason
  // and an empty matrix (partial artifacts discarded).
  long long total_transitions = 0;
  for (std::size_t t = 0; t < trials.size(); ++t) {
    total_transitions += transitions[t];
  }
  const bool was_aborted = aborted.load();
  result.preconditioners.reserve(trials.size());
  for (std::size_t t = 0; t < trials.size(); ++t) {
    WallTimer assembly_timer;
    result.preconditioners.push_back(
        was_aborted ? CsrMatrix()
                    : assemble_csr_from_arenas(n, row_slices[t], arenas[t]));
    McmcBuildInfo& info = result.info[t];
    if (was_aborted) info.status = build_stop_reason(*options.cancel);
    info.total_transitions = transitions[t];
    info.divergence_retirements = retired[t];
    const real_t share =
        total_transitions > 0
            ? static_cast<real_t>(transitions[t]) /
                  static_cast<real_t>(total_transitions)
            : 1.0 / static_cast<real_t>(trials.size());
    info.build_seconds = ensemble_seconds * share + assembly_timer.seconds();
  }
  return result;
}

ReplicatedGridResult replicate_batched_grid_build(
    const CsrMatrix& a, real_t alpha, const std::vector<GridTrial>& trials,
    const std::vector<u64>& replicate_seeds, const McmcOptions& options,
    WalkKernelCache* kernel_cache) {
  check_grid_request(a, alpha, trials, options);
  MCMI_CHECK(!replicate_seeds.empty(),
             "replicate-batched build needs at least one replicate seed");

  ReplicatedGridResult result;
  if (replicate_seeds.size() == 1) {
    // One lane is exactly the single-ensemble build — no lockstep overhead.
    McmcOptions single = options;
    single.seed = replicate_seeds.front();
    result.replicates.push_back(
        batched_grid_build(a, alpha, trials, single, kernel_cache));
    return result;
  }

  std::shared_ptr<const WalkKernel> cached;
  WalkKernel local;
  bool cache_hit = false;
  if (kernel_cache != nullptr) {
    cached = kernel_cache->get(a, alpha, &cache_hit);
  } else {
    local = build_walk_kernel(a, alpha);
  }
  const WalkKernel& kernel = cached ? *cached : local;

  EngineUnits units;
  units.trials = trials;
  units.alpha_of.assign(trials.size(), 0);
  EngineOutput out = run_interleaved_engine(a, {&kernel}, {cache_hit}, units,
                                            replicate_seeds, options);
  result.replicates.reserve(replicate_seeds.size());
  for (std::size_t r = 0; r < replicate_seeds.size(); ++r) {
    result.replicates.push_back(
        {std::move(out.p[r]), std::move(out.info[r])});
  }
  return result;
}

bool can_share_successor_draws(const WalkKernel& lhs, const WalkKernel& rhs) {
  // Same walk graph and bitwise-equal alias decisions: a shared draw then
  // lands on the same successor slot in both kernels for every RNG word.
  return lhs.row_ptr == rhs.row_ptr && lhs.succ == rhs.succ &&
         lhs.alias.prob() == rhs.alias.prob() &&
         lhs.alias.alias() == rhs.alias.alias();
}

bool can_share_inverse_cdf_draws(const WalkKernel& lhs, const WalkKernel& rhs) {
  if (lhs.row_ptr != rhs.row_ptr || lhs.succ != rhs.succ ||
      lhs.row_sum.size() != rhs.row_sum.size()) {
    return false;
  }
  const auto n = static_cast<index_t>(lhs.row_sum.size());
  for (index_t i = 0; i < n; ++i) {
    const real_t ls = lhs.row_sum[i];
    const real_t rs = rhs.row_sum[i];
    if (ls == 0.0 && rs == 0.0) continue;  // no successors: never drawn from
    if (ls <= 0.0 || rs <= 0.0) return false;
    // The CDF draw compares u * S_u against the cum_abs prefix sums.  If
    // rhs's row is lhs's scaled by an exact power of two, both sides of
    // every comparison scale exactly (power-of-two products commute with
    // rounding in the normal range), so each RNG word selects the same
    // transition slot.  frexp only nominates the candidate ratio — the
    // division may round — so the scaling itself is verified bitwise below.
    int exponent = 0;
    const real_t ratio = rs / ls;
    if (std::frexp(ratio, &exponent) != 0.5) return false;
    if (ls * ratio != rs) return false;
    // u >= 2^-53 when nonzero, so row sums at 1e-100 or above keep every
    // u * S_u product in the normal range where the scaling argument holds.
    if (std::min(ls, rs) < 1e-100) return false;
    for (index_t p = lhs.row_ptr[i]; p < lhs.row_ptr[i + 1]; ++p) {
      if (lhs.cum_abs[static_cast<std::size_t>(p)] * ratio !=
          rhs.cum_abs[static_cast<std::size_t>(p)]) {
        return false;
      }
    }
  }
  return true;
}

MultiAlphaGridResult multi_alpha_grid_build(
    const CsrMatrix& a, const std::vector<AlphaGroup>& groups,
    const std::vector<u64>& replicate_seeds, const McmcOptions& options,
    WalkKernelCache* kernel_cache) {
  MCMI_CHECK(!groups.empty(), "multi-alpha build needs at least one group");
  MCMI_CHECK(!replicate_seeds.empty(),
             "multi-alpha build needs at least one replicate seed");
  for (const AlphaGroup& g : groups) {
    check_grid_request(a, g.alpha, g.trials, options);
  }

  const auto per_group_fallback = [&]() {
    MultiAlphaGridResult fallback;
    fallback.shared_successors = false;
    fallback.groups.reserve(groups.size());
    for (const AlphaGroup& g : groups) {
      fallback.groups.push_back(replicate_batched_grid_build(
          a, g.alpha, g.trials, replicate_seeds, options, kernel_cache));
    }
    return fallback;  // lambda-local: moves out, no CSR deep copies
  };
  // One group shares nothing; past 64 the per-alpha divergence bitmask in
  // Lane would overflow (and a request that degenerate shares nothing worth
  // having anyway) — both run one ensemble per group.
  if (groups.size() == 1 || groups.size() > 64) return per_group_fallback();

  // Fetch every group's kernel up front: the runtime sharing check needs
  // them all, and a kernel cache turns the fallback path's second fetch
  // into a hit.  Callers without a cache get a call-local one so the
  // fallback never rebuilds a kernel it already built for the check.
  WalkKernelCache local_cache;
  if (kernel_cache == nullptr) kernel_cache = &local_cache;
  std::vector<std::shared_ptr<const WalkKernel>> cached(groups.size());
  std::vector<const WalkKernel*> kernels(groups.size());
  std::vector<bool> hits(groups.size(), false);
  for (std::size_t g = 0; g < groups.size(); ++g) {
    bool hit = false;
    cached[g] = kernel_cache->get(a, groups[g].alpha, &hit);
    kernels[g] = cached[g].get();
    hits[g] = hit;
  }

  // Draw sharing needs bitwise-identical successor decisions per method:
  // bitwise-equal alias tables on the alias path, exact power-of-two
  // scaling of the cumulative row weights on the inverse-CDF path (the
  // binary search over u * S_u is scale-invariant exactly then).
  bool shareable = true;
  for (std::size_t g = 1; shareable && g < groups.size(); ++g) {
    shareable = options.sampling == SamplingMethod::kAlias
                    ? can_share_successor_draws(*kernels[0], *kernels[g])
                    : can_share_inverse_cdf_draws(*kernels[0], *kernels[g]);
  }
  if (!shareable) return per_group_fallback();

  EngineUnits units;
  std::vector<std::size_t> offsets(groups.size());
  for (std::size_t g = 0; g < groups.size(); ++g) {
    offsets[g] = units.trials.size();
    for (const GridTrial& t : groups[g].trials) {
      units.trials.push_back(t);
      units.alpha_of.push_back(static_cast<index_t>(g));
    }
  }
  EngineOutput out = run_interleaved_engine(a, kernels, hits, units,
                                            replicate_seeds, options);

  MultiAlphaGridResult result;
  result.shared_successors = true;
  result.groups.resize(groups.size());
  for (std::size_t g = 0; g < groups.size(); ++g) {
    ReplicatedGridResult& rep = result.groups[g];
    rep.replicates.resize(replicate_seeds.size());
    for (std::size_t r = 0; r < replicate_seeds.size(); ++r) {
      BatchedGridResult& b = rep.replicates[r];
      const std::size_t count = groups[g].trials.size();
      b.preconditioners.reserve(count);
      b.info.reserve(count);
      for (std::size_t t = 0; t < count; ++t) {
        b.preconditioners.push_back(std::move(out.p[r][offsets[g] + t]));
        b.info.push_back(out.info[r][offsets[g] + t]);
      }
    }
  }
  return result;
}

std::vector<AlphaGroup> group_grid_by_alpha(
    const std::vector<McmcParams>& grid) {
  std::vector<AlphaGroup> groups;
  for (std::size_t i = 0; i < grid.size(); ++i) {
    const u64 key = float_bits(grid[i].alpha);
    AlphaGroup* group = nullptr;
    for (AlphaGroup& existing : groups) {
      if (float_bits(existing.alpha) == key) {
        group = &existing;
        break;
      }
    }
    if (group == nullptr) {
      groups.push_back({grid[i].alpha, {}, {}});
      group = &groups.back();
    }
    group->indices.push_back(static_cast<index_t>(i));
    group->trials.push_back({grid[i].eps, grid[i].delta});
  }
  return groups;
}

}  // namespace mcmi
