#include "mcmc/batched_build.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <vector>

#include "core/error.hpp"
#include "core/parallel.hpp"
#include "core/rng.hpp"
#include "core/timer.hpp"
#include "mcmc/csr_arena.hpp"

namespace mcmi {

namespace {

/// Exact bit pattern of a double: the grouping key wherever "the same
/// parameter value" must mean bitwise equality (delta groups, alpha groups).
u64 float_bits(real_t x) {
  u64 k;
  std::memcpy(&k, &x, sizeof(k));
  return k;
}

/// Trials sharing one delta share one stopping rule (the cutoff T is a pure
/// function of delta), so their walks stop at identical steps and a
/// smaller-N trial's accumulator is bit-for-bit the prefix of a larger one:
/// the group accumulates through ONE stream and snapshots it at each
/// member's chain-count boundary.
struct SegEntry {
  real_t delta = 0.0;            ///< the group's truncation threshold
  index_t cutoff = 0;            ///< the group's delta-implied walk cutoff
  index_t target = 0;            ///< trial whose accumulator takes the adds
  std::vector<index_t> trials;   ///< members active in this segment
};

/// Accumulator snapshot at a segment boundary: dst's chains are exhausted,
/// so it freezes a bit-copy of the group stream accumulated so far.
struct CopyOp {
  index_t src = 0;  ///< trial id owning the group stream
  index_t dst = 0;  ///< trial id receiving the frozen snapshot
};

/// The active-group schedule for one contiguous range of chain indices
/// (constant active sets: chain counts are the segment bounds), plus the
/// snapshots to take once the segment's chains are done.
struct ChainSegment {
  index_t chain_begin = 0;
  index_t chain_end = 0;
  std::vector<SegEntry> entries;
  std::vector<CopyOp> copies;
};

/// One group's slot in the shared walk's live list: the stopping rule, the
/// thread-private accumulator of the segment's target trial, and the shared
/// entry (for per-trial transition accounting).
struct LiveGroup {
  real_t delta = 0.0;
  real_t* acc = nullptr;
  index_t cutoff = 0;
  const SegEntry* entry = nullptr;
};

/// Chain indices [0, N_max) split at the distinct chain counts, with trials
/// grouped by exact delta bits.  Per segment, each group accumulates into
/// its smallest still-active member; at the segment's end boundary the
/// stream is snapshotted into every member whose chains end there (and
/// handed to the next member, which resumes the same stream — FP addition
/// order per trial is exactly the standalone chain-major order).
std::vector<ChainSegment> build_segments(const std::vector<index_t>& n_chains,
                                         const std::vector<real_t>& deltas,
                                         const std::vector<index_t>& cutoffs) {
  std::vector<index_t> bounds = n_chains;
  std::sort(bounds.begin(), bounds.end());
  bounds.erase(std::unique(bounds.begin(), bounds.end()), bounds.end());

  // Stop-rule groups keyed by delta bits, in first-appearance order (a
  // deterministic order keeps the scatter sequence, and so the output,
  // independent of any map iteration quirks).  Members sorted by chain
  // count ascending, input order on ties.
  std::vector<std::vector<index_t>> groups;
  for (std::size_t t = 0; t < deltas.size(); ++t) {
    bool placed = false;
    for (auto& members : groups) {
      if (float_bits(deltas[static_cast<std::size_t>(members.front())]) ==
          float_bits(deltas[t])) {
        members.push_back(static_cast<index_t>(t));
        placed = true;
        break;
      }
    }
    if (!placed) groups.push_back({static_cast<index_t>(t)});
  }
  for (auto& members : groups) {
    std::stable_sort(members.begin(), members.end(),
                     [&](index_t x, index_t y) {
                       return n_chains[static_cast<std::size_t>(x)] <
                              n_chains[static_cast<std::size_t>(y)];
                     });
  }

  std::vector<ChainSegment> segments;
  index_t prev = 0;
  for (index_t b : bounds) {
    ChainSegment seg;
    seg.chain_begin = prev;
    seg.chain_end = b;
    for (const auto& members : groups) {
      SegEntry entry;
      for (index_t t : members) {
        // Chain counts are segment bounds, so N_t > prev means the member
        // is active for every chain index of this segment.
        if (n_chains[static_cast<std::size_t>(t)] > prev) {
          entry.trials.push_back(t);
        }
      }
      if (entry.trials.empty()) continue;
      entry.target = entry.trials.front();  // smallest active chain count
      entry.delta = deltas[static_cast<std::size_t>(entry.target)];
      entry.cutoff = cutoffs[static_cast<std::size_t>(entry.target)];
      // Members whose chains end at this segment's bound freeze a snapshot
      // of the stream; the next member resumes it.
      if (n_chains[static_cast<std::size_t>(entry.target)] == b) {
        index_t next_target = -1;
        for (index_t t : entry.trials) {
          if (n_chains[static_cast<std::size_t>(t)] == b &&
              t != entry.target) {
            seg.copies.push_back({entry.target, t});
          } else if (n_chains[static_cast<std::size_t>(t)] > b) {
            next_target = t;
            break;  // members are sorted: first one past b resumes
          }
        }
        if (next_target >= 0) seg.copies.push_back({entry.target, next_target});
      }
      seg.entries.push_back(std::move(entry));
    }
    segments.push_back(std::move(seg));
    prev = b;
  }
  return segments;
}

/// One shared walk serving every active stop-rule group at once: it samples
/// the chain a single time and scatters each step's weight into the stream
/// accumulator of every group still running.  The scatter stores are
/// independent of the walk's pointer-chased load chain, so they hide in its
/// stalls — this is where G x O(walks) collapses into ~1 x O(walks).
///
/// `live` is the segment's group template (copied per chain); entries are
/// swap-removed the moment their stopping rule fires, so the inner loop
/// only ever touches running groups.  Removal reorders entries ACROSS
/// groups only — each group's own adds still land in the chain-major,
/// step-major order of the standalone walks, which keeps the accumulated
/// doubles bit-identical.  Per-group step semantics mirror run_walk() in
/// inverter.cpp exactly: accumulate steps 1..min(T, S - 1, L) and count
/// min(T, S, L) transitions for every active member, S the first step with
/// |W| < delta or past the divergence guard, L the shared walk's length.
/// `transitions` is indexed by trial id; `mark`/`visited` collect the union
/// of touched states for the row (epoch-tagged, no clearing between rows).
template <SamplingMethod method>
void run_shared_walk(const WalkKernel& k, index_t start, LiveGroup* live,
                     index_t live_count, long long* transitions,
                     Xoshiro256& rng, std::vector<u32>& mark, u32 epoch,
                     std::vector<index_t>& visited) {
  if (mark[static_cast<std::size_t>(start)] != epoch) {
    mark[static_cast<std::size_t>(start)] = epoch;
    visited.push_back(start);
  }
  // k = 0 term of the Neumann series, once per chain for every group.
  for (index_t m = 0; m < live_count; ++m) live[m].acc[start] += 1.0;

  index_t state = start;
  real_t weight = 1.0;
  index_t steps = 0;
  while (live_count > 0) {
    const index_t begin = k.row_ptr[state];
    const index_t end = k.row_ptr[state + 1];
    if (begin == end) break;  // absorbing state: every group ends here
    index_t p;
    if constexpr (method == SamplingMethod::kAlias) {
      p = k.alias.sample(begin, end, rng());
    } else {
      const real_t target = uniform01(rng) * k.row_sum[state];
      const auto first = k.cum_abs.begin() + begin;
      const auto last = k.cum_abs.begin() + end;
      auto it = std::upper_bound(first, last, target);
      if (it == last) --it;
      p = static_cast<index_t>(it - k.cum_abs.begin());
    }
    weight *= k.signed_sum[p];
    state = k.succ[p];
    ++steps;
    const real_t aw = std::abs(weight);
    if (aw > kDivergenceGuard) {
      // Divergent kernel blow-up: every still-running group breaks at this
      // step, uncounted in its accumulator (run_walk breaks before the
      // accumulate).  A group is live only while steps <= its cutoff, so
      // the step is always a counted transition.
      for (index_t m = 0; m < live_count; ++m) {
        for (index_t t : live[m].entry->trials) transitions[t] += steps;
      }
      return;
    }
    for (index_t m = 0; m < live_count;) {
      LiveGroup& e = live[m];
      if (aw < e.delta) {
        // Sticky truncation: the crossing step is counted, not accumulated.
        for (index_t t : e.entry->trials) transitions[t] += steps;
        e = live[--live_count];
        continue;
      }
      e.acc[state] += weight;
      if (steps == e.cutoff) {
        for (index_t t : e.entry->trials) transitions[t] += steps;
        e = live[--live_count];
        continue;
      }
      ++m;
    }
    if (mark[static_cast<std::size_t>(state)] != epoch) {
      mark[static_cast<std::size_t>(state)] = epoch;
      visited.push_back(state);
    }
  }
  // Absorption: the surviving groups' cutoffs all exceed `steps` (a group
  // reaching its cutoff is removed the same step), so each one consumed
  // exactly the shared walk's length.
  for (index_t m = 0; m < live_count; ++m) {
    for (index_t t : live[m].entry->trials) transitions[t] += steps;
  }
}

}  // namespace

BatchedGridResult batched_grid_build(const CsrMatrix& a, real_t alpha,
                                     const std::vector<GridTrial>& trials,
                                     const McmcOptions& options,
                                     WalkKernelCache* kernel_cache) {
  MCMI_CHECK(a.rows() == a.cols(), "MCMCMI needs a square matrix");
  MCMI_CHECK(alpha >= 0.0, "alpha must be nonnegative");
  MCMI_CHECK(!trials.empty(), "batched grid build needs at least one trial");
  MCMI_CHECK(options.filling_factor > 0.0, "filling factor must be positive");
  for (const GridTrial& t : trials) {
    MCMI_CHECK(t.eps > 0.0 && t.eps <= 1.0, "eps must be in (0,1]");
    MCMI_CHECK(t.delta > 0.0 && t.delta <= 1.0, "delta must be in (0,1]");
  }

  WallTimer ensemble_timer;
  const index_t n = a.rows();
  const auto g = static_cast<index_t>(trials.size());

  std::shared_ptr<const WalkKernel> cached;
  WalkKernel local;
  bool cache_hit = false;
  if (kernel_cache != nullptr) {
    cached = kernel_cache->get(a, alpha, &cache_hit);
  } else {
    local = build_walk_kernel(a, alpha);
  }
  const WalkKernel& kernel = cached ? *cached : local;

  std::vector<index_t> n_chains(trials.size());
  std::vector<index_t> cutoffs(trials.size());
  std::vector<real_t> deltas(trials.size());
  BatchedGridResult result;
  result.info.resize(trials.size());
  for (std::size_t t = 0; t < trials.size(); ++t) {
    n_chains[t] = chains_for_eps(trials[t].eps);
    cutoffs[t] = walk_length_for_delta(trials[t].delta, kernel.norm_inf,
                                       options.walk_cap);
    deltas[t] = trials[t].delta;
    McmcBuildInfo& info = result.info[t];
    info.b_norm_inf = kernel.norm_inf;
    info.neumann_convergent = kernel.norm_inf < 1.0;
    info.chains_per_row = n_chains[t];
    info.walk_cutoff = cutoffs[t];
    info.kernel_cache_hit = cache_hit;
  }
  const std::vector<ChainSegment> segments =
      build_segments(n_chains, deltas, cutoffs);

  const index_t row_budget = std::max<index_t>(
      1, static_cast<index_t>(std::llround(
             options.filling_factor * static_cast<real_t>(a.nnz()) /
             static_cast<real_t>(n))));
  const real_t threshold = options.truncation_threshold;

  // Per-trial arenas and row slices: the assembly path of the standalone
  // inverter, instantiated once per trial.
  const auto num_threads = static_cast<std::size_t>(max_threads());
  std::vector<std::vector<RowArena>> arenas(
      trials.size(), std::vector<RowArena>(num_threads));
  std::vector<std::vector<RowSlice>> row_slices(
      trials.size(), std::vector<RowSlice>(static_cast<std::size_t>(n)));
  std::vector<long long> transitions(trials.size(), 0);

  const ChainPartition partition(n, options.ranks);
  for (index_t rank = 0; rank < options.ranks; ++rank) {
    const index_t row_begin = partition.begin(rank);
    const index_t row_end = partition.end(rank);
#pragma omp parallel
    {
      const int tid = thread_id();
      // Thread-private workspace.  accum holds one dense accumulator per
      // trial; mark/visited track the union of touched states per row — a
      // superset of every trial's own touched set, harmless because
      // never-touched states carry an exact 0.0 and fall to the threshold
      // filter, leaving each trial's emitted row bit-identical.
      std::vector<real_t> accum(
          static_cast<std::size_t>(g) * static_cast<std::size_t>(n), 0.0);
      std::vector<u32> mark(static_cast<std::size_t>(n), 0);
      u32 epoch = 0;
      std::vector<index_t> visited;
      std::vector<index_t> order;
      std::vector<long long> local_transitions(trials.size(), 0);
      std::vector<real_t> inv_chains(trials.size());
      for (std::size_t t = 0; t < trials.size(); ++t) {
        inv_chains[t] = 1.0 / static_cast<real_t>(n_chains[t]);
      }
      const auto acc_of = [&](index_t t) {
        return accum.data() +
               static_cast<std::size_t>(t) * static_cast<std::size_t>(n);
      };
      // Per-segment live-list templates with this thread's accumulator
      // pointers patched in, plus the scratch copy each chain consumes.
      std::vector<std::vector<LiveGroup>> live_template(segments.size());
      std::size_t max_entries = 0;
      for (std::size_t s = 0; s < segments.size(); ++s) {
        for (const SegEntry& e : segments[s].entries) {
          live_template[s].push_back(
              {e.delta, acc_of(e.target), e.cutoff, &e});
        }
        max_entries = std::max(max_entries, live_template[s].size());
      }
      std::vector<LiveGroup> live(max_entries);
#pragma omp for schedule(dynamic, 8)
      for (index_t i = row_begin; i < row_end; ++i) {
        // ---- Phase A: one shared walk per chain, scattering into every
        // running group's stream accumulator; at each segment boundary the
        // finished members freeze bit-copies of their stream (see the CRN
        // invariant in the header).
        ++epoch;
        visited.clear();
        for (std::size_t s = 0; s < segments.size(); ++s) {
          const ChainSegment& seg = segments[s];
          const auto live_count =
              static_cast<index_t>(live_template[s].size());
          for (index_t c = seg.chain_begin; c < seg.chain_end; ++c) {
            std::copy(live_template[s].begin(), live_template[s].end(),
                      live.begin());
            Xoshiro256 rng = make_stream(options.seed, static_cast<u64>(i),
                                         static_cast<u64>(c));
            if (options.sampling == SamplingMethod::kAlias) {
              run_shared_walk<SamplingMethod::kAlias>(
                  kernel, i, live.data(), live_count,
                  local_transitions.data(), rng, mark, epoch, visited);
            } else {
              run_shared_walk<SamplingMethod::kInverseCdf>(
                  kernel, i, live.data(), live_count,
                  local_transitions.data(), rng, mark, epoch, visited);
            }
          }
          for (const CopyOp& op : seg.copies) {
            const real_t* src = acc_of(op.src);
            real_t* dst = acc_of(op.dst);
            for (index_t j : visited) dst[j] = src[j];
          }
        }
        std::sort(visited.begin(), visited.end());

        // ---- Phase B: emit every trial's row through the arena path.
        // Trial-major: each trial streams the shared sorted union (a
        // touched superset) through its own accumulator via the same
        // emission helper the standalone inverter uses.
        for (index_t t = 0; t < g; ++t) {
          row_slices[static_cast<std::size_t>(t)][static_cast<std::size_t>(i)] =
              emit_row_from_accumulator(
                  arenas[static_cast<std::size_t>(t)]
                        [static_cast<std::size_t>(tid)],
                  tid, acc_of(t), visited, i,
                  inv_chains[static_cast<std::size_t>(t)], kernel.inv_diag,
                  threshold, row_budget, order);
        }
      }
#pragma omp critical(mcmi_batched_transitions)
      {
        for (std::size_t t = 0; t < trials.size(); ++t) {
          transitions[t] += local_transitions[t];
        }
      }
    }
  }
  const real_t ensemble_seconds = ensemble_timer.seconds();

  // Phase C: per-trial CSR assembly, timed per trial; the shared ensemble
  // time is apportioned by each trial's own truncated transition share so
  // build_seconds reflects the work the trial would have paid standalone.
  long long total_transitions = 0;
  for (std::size_t t = 0; t < trials.size(); ++t) {
    total_transitions += transitions[t];
  }
  result.preconditioners.reserve(trials.size());
  for (std::size_t t = 0; t < trials.size(); ++t) {
    WallTimer assembly_timer;
    result.preconditioners.push_back(
        assemble_csr_from_arenas(n, row_slices[t], arenas[t]));
    McmcBuildInfo& info = result.info[t];
    info.total_transitions = transitions[t];
    const real_t share =
        total_transitions > 0
            ? static_cast<real_t>(transitions[t]) /
                  static_cast<real_t>(total_transitions)
            : 1.0 / static_cast<real_t>(trials.size());
    info.build_seconds = ensemble_seconds * share + assembly_timer.seconds();
  }
  return result;
}

std::vector<AlphaGroup> group_grid_by_alpha(
    const std::vector<McmcParams>& grid) {
  std::vector<AlphaGroup> groups;
  for (std::size_t i = 0; i < grid.size(); ++i) {
    const u64 key = float_bits(grid[i].alpha);
    AlphaGroup* group = nullptr;
    for (AlphaGroup& existing : groups) {
      if (float_bits(existing.alpha) == key) {
        group = &existing;
        break;
      }
    }
    if (group == nullptr) {
      groups.push_back({grid[i].alpha, {}, {}});
      group = &groups.back();
    }
    group->indices.push_back(static_cast<index_t>(i));
    group->trials.push_back({grid[i].eps, grid[i].delta});
  }
  return groups;
}

}  // namespace mcmi
