#include "mcmc/regenerative.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>

#include "core/error.hpp"
#include "core/parallel.hpp"
#include "core/rng.hpp"
#include "core/timer.hpp"
#include "mcmc/alias_table.hpp"
#include "mcmc/csr_arena.hpp"
#include "mcmc/emission.hpp"

namespace mcmi {

namespace {

/// Same Jacobi-split kernel as the classic inverter, but the walk treats the
/// leftover probability 1 - S_u as absorption, so ||B||_inf must be < 1.
struct AbsorbingKernel {
  std::vector<index_t> row_ptr;
  std::vector<index_t> succ;
  std::vector<real_t> sign;      ///< sign(B_uv) — the MAO weight is +-1
  std::vector<real_t> cum_abs;   ///< cumulative |B_uv| within the row
  std::vector<real_t> row_sum;   ///< S_u < 1 required
  std::vector<real_t> inv_diag;
  AliasTable alias;              ///< O(1) successor draw over |B_uv| / S_u
  real_t norm_inf = 0.0;
};

AbsorbingKernel build_kernel(const CsrMatrix& a, real_t alpha,
                             SamplingMethod sampling) {
  const index_t n = a.rows();
  const auto& row_ptr = a.row_ptr();
  const auto& col_idx = a.col_idx();
  const auto& values = a.values();

  AbsorbingKernel k;
  k.row_ptr.assign(static_cast<std::size_t>(n) + 1, 0);
  k.row_sum.assign(static_cast<std::size_t>(n), 0.0);
  k.inv_diag.assign(static_cast<std::size_t>(n), 0.0);
  std::vector<real_t> abs_weight;

  for (index_t i = 0; i < n; ++i) {
    const real_t aii = a.at(i, i);
    MCMI_CHECK(aii != 0.0, "regenerative MCMCMI: zero diagonal in row " << i);
    const real_t d = aii + std::copysign(alpha * std::abs(aii), aii);
    k.inv_diag[i] = 1.0 / d;
    real_t cum = 0.0;
    for (index_t p = row_ptr[i]; p < row_ptr[i + 1]; ++p) {
      const index_t j = col_idx[p];
      if (j == i) continue;
      const real_t b = -values[p] / d;
      if (b == 0.0) continue;
      k.succ.push_back(j);
      k.sign.push_back(b > 0.0 ? 1.0 : -1.0);
      cum += std::abs(b);
      // Only the structure the chosen sampler reads is materialised.
      if (sampling == SamplingMethod::kInverseCdf) {
        k.cum_abs.push_back(cum);
      } else {
        abs_weight.push_back(std::abs(b));
      }
    }
    k.row_sum[i] = cum;
    k.row_ptr[i + 1] = static_cast<index_t>(k.succ.size());
    k.norm_inf = std::max(k.norm_inf, cum);
  }
  if (sampling == SamplingMethod::kAlias) {
    k.alias = AliasTable::build(k.row_ptr, abs_weight);
  }
  return k;
}

/// One regenerative cycle from `start`: walk until absorption (or the cap),
/// accumulating signed contributions.  Returns transitions consumed.  The
/// absorption bit always comes from the first draw of a step; the alias
/// path then spends a second draw on the successor, while the inverse-CDF
/// path reuses the first draw for its binary search (bit-compatible with
/// the original implementation).
template <SamplingMethod method>
index_t run_regen_cycle(const AbsorbingKernel& k, index_t start,
                        index_t walk_cap, Xoshiro256& rng,
                        std::vector<real_t>& accum,
                        std::vector<index_t>& touched) {
  index_t state = start;
  real_t weight = 1.0;
  if (accum[start] == 0.0) touched.push_back(start);
  accum[start] += 1.0;
  index_t steps = 0;
  while (steps < walk_cap) {
    const index_t begin = k.row_ptr[state];
    const index_t end = k.row_ptr[state + 1];
    const real_t s = k.row_sum[state];
    // With probability 1 - S_u the walk is absorbed (regenerates).
    const real_t u = uniform01(rng);
    if (begin == end || u >= s) break;
    index_t p;
    if constexpr (method == SamplingMethod::kAlias) {
      p = k.alias.sample(begin, end, rng());
    } else {
      const auto first = k.cum_abs.begin() + begin;
      const auto last = k.cum_abs.begin() + end;
      auto it = std::upper_bound(first, last, u);
      if (it == last) --it;
      p = static_cast<index_t>(it - k.cum_abs.begin());
    }
    // Under the absorbing kernel p_uv = |B_uv| the weight update is
    // B_uv / |B_uv| = sign(B_uv): weights never grow.
    weight *= k.sign[p];
    state = k.succ[p];
    ++steps;
    if (accum[state] == 0.0) touched.push_back(state);
    accum[state] += weight;
  }
  return steps;
}

}  // namespace

RegenerativeInverter::RegenerativeInverter(const CsrMatrix& a,
                                           RegenerativeParams params,
                                           RegenerativeOptions options)
    : a_(a), params_(params), options_(options) {
  MCMI_CHECK(a.rows() == a.cols(), "regenerative MCMCMI needs a square matrix");
  MCMI_CHECK(params_.alpha >= 0.0, "alpha must be nonnegative");
  MCMI_CHECK(params_.transition_budget >= 1,
             "transition budget must be positive");
}

CsrMatrix RegenerativeInverter::compute() {
  WallTimer timer;
  const index_t n = a_.rows();
  const AbsorbingKernel kernel =
      build_kernel(a_, params_.alpha, options_.sampling);
  MCMI_CHECK(kernel.norm_inf < 1.0,
             "regenerative scheme requires ||B||_inf < 1 (got "
                 << kernel.norm_inf
                 << "); increase alpha until the Neumann series converges");

  info_ = RegenerativeBuildInfo{};
  info_.b_norm_inf = kernel.norm_inf;

  const index_t row_budget = std::max<index_t>(
      1, static_cast<index_t>(std::llround(
             options_.filling_factor * static_cast<real_t>(a_.nnz()) /
             static_cast<real_t>(n))));

  // Arena-based two-phase assembly: rows land in per-thread arenas with
  // sorted columns, then a prefix-sum + copy concatenates them (see
  // csr_arena.hpp).
  std::vector<RowArena> arenas(static_cast<std::size_t>(max_threads()));
  std::vector<RowSlice> row_slices(static_cast<std::size_t>(n));
  std::atomic<long long> transitions{0};
  std::atomic<long long> regenerations{0};

#pragma omp parallel
  {
    const int tid = thread_id();
    RowArena& arena = arenas[static_cast<std::size_t>(tid)];
    std::vector<real_t> accum(static_cast<std::size_t>(n), 0.0);
    std::vector<index_t> touched;
    RowEmitter emitter;
    long long local_transitions = 0;
    long long local_regens = 0;
#pragma omp for schedule(dynamic, 8)
    for (index_t i = 0; i < n; ++i) {
      touched.clear();
      Xoshiro256 rng = make_stream(options_.seed, 0x9e67u, static_cast<u64>(i));
      index_t spent = 0;
      index_t chains = 0;
      // Regenerate from row i until the transition budget is exhausted;
      // always complete the final cycle so every chain is unbiased.
      while (spent < params_.transition_budget) {
        ++chains;
        spent += options_.sampling == SamplingMethod::kAlias
                     ? run_regen_cycle<SamplingMethod::kAlias>(
                           kernel, i, options_.walk_cap, rng, accum, touched)
                     : run_regen_cycle<SamplingMethod::kInverseCdf>(
                           kernel, i, options_.walk_cap, rng, accum, touched);
      }
      local_transitions += spent;
      local_regens += chains;

      // The +-1 MAO weights cancel to exactly zero routinely, so states can
      // enter `touched` twice — deduplicate before emission.
      std::sort(touched.begin(), touched.end());
      touched.erase(std::unique(touched.begin(), touched.end()),
                    touched.end());
      const real_t inv_chains = 1.0 / static_cast<real_t>(chains);
      row_slices[i] = emitter.emit(arena, tid, accum.data(), touched, i,
                                   inv_chains, kernel.inv_diag,
                                   options_.truncation_threshold, row_budget);
    }
    transitions += local_transitions;
    regenerations += local_regens;
  }

  info_.total_transitions = transitions.load();
  info_.total_regenerations = regenerations.load();
  CsrMatrix p = assemble_csr_from_arenas(n, row_slices, arenas);
  info_.build_seconds = timer.seconds();
  return p;
}

std::unique_ptr<SparseApproximateInverse>
RegenerativeInverter::build_preconditioner(const CsrMatrix& a,
                                           const RegenerativeParams& params,
                                           const RegenerativeOptions& options) {
  RegenerativeInverter inverter(a, params, options);
  CsrMatrix p = inverter.compute();
  return std::make_unique<SparseApproximateInverse>(std::move(p),
                                                    "regenerative-mcmcmi");
}

}  // namespace mcmi
