#pragma once
// Walker alias tables for O(1) transition sampling.
//
// The MCMC walk draws successors under p_uv = |B_uv| / S_u.  Inverse-CDF
// sampling costs a binary search per step; the alias method (Walker 1977,
// Vose 1991) preprocesses each row into flat prob[]/alias[] arrays so a
// transition is one RNG draw, one table lookup and one compare — constant
// time regardless of the row's nonzero count.  Construction is O(nnz) and
// rides on the same row_ptr layout as the walk kernel, so the table is built
// once per (matrix, alpha) and shared by every chain.

#include <vector>

#include "core/types.hpp"

namespace mcmi {

/// Per-row alias tables over a CSR-like (row_ptr, weights) layout.  Slot p of
/// row u covers the transition stored at position p; sampling returns a slot
/// index into the same flat arrays the caller indexes `succ`/`value` with.
class AliasTable {
 public:
  AliasTable() = default;

  /// Build tables for every row of the (row_ptr, weights) layout.  Weights
  /// must be nonnegative; rows may be empty (never sampled) and a row whose
  /// weights all vanish degenerates to uniform over its slots.
  static AliasTable build(const std::vector<index_t>& row_ptr,
                          const std::vector<real_t>& weights);

  /// Sample a slot in [begin, end) from a single 64-bit draw: the high bits
  /// pick the slot, the residual fraction decides between it and its alias.
  [[nodiscard]] index_t sample(index_t begin, index_t end, u64 bits) const {
    const index_t width = end - begin;
    const real_t u = static_cast<real_t>(bits >> 11) * 0x1.0p-53 *
                     static_cast<real_t>(width);
    index_t k = static_cast<index_t>(u);
    if (k >= width) k = width - 1;  // FP rounding guard at the top edge
    const index_t slot = begin + k;
    const real_t frac = u - static_cast<real_t>(k);
    return frac < prob_[slot] ? slot : alias_[slot];
  }

  /// Sample W slots at once, lane l drawing from row range
  /// [begin[l], end[l]) with the 64-bit word bits[l] — per lane the exact
  /// arithmetic of `sample()`, so each lane's result is bitwise what a
  /// scalar call would return.  The W table loads are issued together from
  /// one tight loop, letting their (mutually independent) latencies overlap
  /// instead of serialising behind each chain's pointer chase — the batched
  /// lookup tier of the lockstep walk engine.  An empty range (an absorbing
  /// row: a retired lane's stale position) yields 0 without touching the
  /// tables; callers must ignore such lanes' outputs.
  template <int W>
  void sample_batch(const index_t* begin, const index_t* end, const u64* bits,
                    index_t* out) const {
    const real_t* prob = prob_.data();
    const index_t* alias = alias_.data();
    for (int l = 0; l < W; ++l) {
      const index_t width = end[l] - begin[l];
      if (width <= 0) {
        out[l] = 0;
        continue;
      }
      const real_t u = static_cast<real_t>(bits[l] >> 11) * 0x1.0p-53 *
                       static_cast<real_t>(width);
      index_t k = static_cast<index_t>(u);
      if (k >= width) k = width - 1;  // FP rounding guard at the top edge
      const index_t slot = begin[l] + k;
      const real_t frac = u - static_cast<real_t>(k);
      out[l] = frac < prob[slot] ? slot : alias[slot];
    }
  }

  [[nodiscard]] const std::vector<real_t>& prob() const { return prob_; }
  [[nodiscard]] const std::vector<index_t>& alias() const { return alias_; }
  [[nodiscard]] bool empty() const { return prob_.empty(); }

 private:
  std::vector<real_t> prob_;    ///< acceptance threshold per slot, in [0, 1]
  std::vector<index_t> alias_;  ///< fallback slot when the threshold fails
};

}  // namespace mcmi
