#pragma once
// Batched MCMC grid builds: one walk ensemble serves every (eps, delta)
// trial at a fixed alpha.
//
// The AI-tuning loop probes many (alpha, eps, delta) trials against one
// matrix.  Trials sharing alpha run the *same* Markov chains — the kernel
// B = I - D^-1 A_a depends only on (A, alpha) — and differ solely in how
// many chains they average (N = chains_for_eps(eps)) and where each chain
// stops (the first step with |W| < delta, or the delta-implied cutoff T).
//
// CRN prefix-sharing invariant
// ----------------------------
// Chain streams are keyed by (seed, row, chain) and a walk consumes exactly
// one draw per transition, independent of (eps, delta).  Under these common
// random numbers a smaller trial's walks are exact prefixes / chain-subsets
// of a larger trial's walks:
//
//   * chain subset:  trial t uses chains c < N_t of the shared ensemble run
//     at N_max = max_t N_t;
//   * step prefix:   trial t accumulates steps 1..E of a chain where
//     E = min(T_t, S_t - 1, L),  S_t the first step with |W| < delta_t (or
//     |W| > the divergence guard), L the shared walk's own length — exactly
//     the steps its standalone walk would have accumulated, because the
//     weight sequence W_1, W_2, ... is trial-independent.
//
// The builder therefore runs the ensemble once per chain to the loosest
// still-active stopping condition, records the (state, weight) trajectory,
// and replays each trial's prefix into a per-trial accumulator in the same
// (chain-major, step-major) order the standalone inverter uses — so every
// trial's assembled P is bit-identical to McmcInverter::compute() with the
// same seed, at any OpenMP thread count and rank partition.  This turns
// G trials x O(walks) into ~1 x O(walks) + G x O(replay), where a replay
// step (one streamed load + one indexed add) is several times cheaper than
// a sampling step (RNG + alias lookup + pointer-chased kernel loads).

#include <vector>

#include "core/types.hpp"
#include "mcmc/inverter.hpp"
#include "mcmc/params.hpp"
#include "mcmc/walk_kernel.hpp"
#include "sparse/csr.hpp"

namespace mcmi {

/// One (eps, delta) trial of a batched grid build at fixed alpha.
struct GridTrial {
  real_t eps = 0.25;    ///< stochastic error in (0, 1]: chain count
  real_t delta = 0.25;  ///< truncation error in (0, 1]: walk stopping rule
};

/// Per-trial outputs of a batched grid build, in input trial order.
struct BatchedGridResult {
  std::vector<CsrMatrix> preconditioners;  ///< P per trial
  std::vector<McmcBuildInfo> info;         ///< diagnostics per trial
};

/// Build every trial's preconditioner from one shared walk ensemble.
///
/// Each trial's P (and its info's total_transitions / chains_per_row /
/// walk_cutoff) is identical to a standalone
/// `McmcInverter(a, {alpha, eps, delta}, options).compute()`; build_seconds
/// apportions the shared ensemble wall time by each trial's own truncated
/// transition count (plus its own assembly).  When `kernel_cache` is given
/// the walk kernel for (a, alpha) is fetched from / stored into it.
BatchedGridResult batched_grid_build(const CsrMatrix& a, real_t alpha,
                                     const std::vector<GridTrial>& trials,
                                     const McmcOptions& options = {},
                                     WalkKernelCache* kernel_cache = nullptr);

/// One batched build's worth of grid points: every position of the source
/// list sharing this exact alpha, in encounter order.
struct AlphaGroup {
  real_t alpha = 0.0;
  std::vector<index_t> indices;   ///< positions in the source list
  std::vector<GridTrial> trials;  ///< (eps, delta) per position
};

/// Group a parameter list by exact alpha bits, first-appearance order:
/// each group maps to one batched_grid_build (or measure_grid) call, and
/// `indices` scatters the per-trial results back into source order.
std::vector<AlphaGroup> group_grid_by_alpha(
    const std::vector<McmcParams>& grid);

}  // namespace mcmi
