#pragma once
/// @file batched_build.hpp
/// @brief Batched MCMC grid builds: one walk ensemble serves every
/// (eps, delta) trial at a fixed alpha, every replicate of the trial grid,
/// and — when the kernel allows — every alpha of a multi-alpha request.
///
/// The AI-tuning loop probes many (alpha, eps, delta) trials against one
/// matrix, each replicated R times to estimate run-to-run variance.  Trials
/// sharing alpha run the *same* Markov chains — the kernel B = I - D^-1 A_a
/// depends only on (A, alpha) — and differ solely in how many chains they
/// average (N = chains_for_eps(eps)) and where each chain stops (the first
/// step with |W| < delta, or the delta-implied cutoff T).  Replicates differ
/// solely in the base seed of their chain streams.
///
/// ## CRN prefix-sharing invariant
///
/// Chain streams are keyed by (seed, row, chain) and a walk consumes exactly
/// one draw per transition, independent of (eps, delta).  Under these common
/// random numbers a smaller trial's walks are exact prefixes / chain-subsets
/// of a larger trial's walks:
///
///   * chain subset:  trial t uses chains c < N_t of the shared ensemble run
///     at N_max = max_t N_t;
///   * step prefix:   trial t accumulates steps 1..E of a chain where
///     E = min(T_t, S_t - 1, L),  S_t the first step with |W| < delta_t (or
///     |W| > the divergence guard), L the shared walk's own length — exactly
///     the steps its standalone walk would have accumulated, because the
///     weight sequence W_1, W_2, ... is trial-independent.
///
/// The builder therefore runs the ensemble once per chain to the loosest
/// still-active stopping condition, scattering each step's weight into a
/// per-stop-rule-group accumulator stream that is snapshotted (bit-copied)
/// at each trial's chain-count boundary, in the same (chain-major,
/// step-major) order the standalone inverter uses — so every trial's
/// assembled P is bit-identical to McmcInverter::compute() with the same
/// seed, at any OpenMP thread count and rank partition.  This turns
/// G trials x O(walks) into ~1 x O(walks) + G x O(assembly), where the
/// scatter stores hide in the walk's pointer-chased load stalls.
///
/// ## Replicate batching (interleaved lanes)
///
/// Replicate streams are keyed by seed only, so an R-replicate ensemble
/// needs no second pass over the kernel per replicate: every replicate's
/// chain c advances in lockstep through one interleaved walk loop ("lanes"),
/// giving the CPU R independent pointer-chase chains to overlap where the
/// serial loop exposes one.  Each lane scatters into its own replicate's
/// accumulators, so per-(trial, replicate) accumulation order — and thus the
/// output bits — is exactly the standalone order.  The sampling pass is
/// latency-bound (one dependent kernel load chain per walk), which is why
/// interleaving R replicates recovers most of the R-fold redundancy the
/// serial per-replicate loop pays.
///
/// ## Multi-alpha sharing (opt-in, runtime-checked)
///
/// The walk's transition probabilities p_uv = |B_uv| / S_u are invariant
/// under the diagonal perturbation alpha (the perturbed diagonal
/// d_u = a_uu (1 + alpha) scales a row of B uniformly), so walks for
/// different alphas can share successor draws and differ only in their
/// weight streams W *= copysign(S_u(alpha), B_uv).  In floating point the
/// invariance holds only when the per-alpha sampling decisions round
/// identically; multi_alpha_grid_build() verifies this bitwise at runtime —
/// can_share_successor_draws() for the alias path (bitwise-equal alias
/// tables), can_share_inverse_cdf_draws() for the inverse-CDF path (the
/// normalised cumulative-weight arrays agree under an exact power-of-two
/// rescaling, which makes the u * S_u binary search scale-invariant) — and
/// falls back to one ensemble per alpha otherwise, so the bit-identity
/// contract is unconditional.
///
/// ## Cancellation
///
/// Every builder polls McmcOptions::cancel once per row.  A build that
/// stops early discards all partial artifacts: each trial reports
/// BuildStatus::kDeadlineExceeded / kCancelled in its McmcBuildInfo and an
/// empty (0 x 0) preconditioner matrix.  Divergence-guard walk retirements
/// are counted per trial in McmcBuildInfo::divergence_retirements either
/// way, matching the standalone inverter's accounting exactly.

#include <vector>

#include "core/types.hpp"
#include "mcmc/inverter.hpp"
#include "mcmc/params.hpp"
#include "mcmc/walk_kernel.hpp"
#include "sparse/csr.hpp"

namespace mcmi {

/// One (eps, delta) trial of a batched grid build at fixed alpha.
struct GridTrial {
  real_t eps = 0.25;    ///< stochastic error in (0, 1]: chain count
  real_t delta = 0.25;  ///< truncation error in (0, 1]: walk stopping rule
};

/// Per-trial outputs of a batched grid build, in input trial order.
struct BatchedGridResult {
  std::vector<CsrMatrix> preconditioners;  ///< P per trial
  std::vector<McmcBuildInfo> info;         ///< diagnostics per trial
};

/// Build every trial's preconditioner from one shared walk ensemble.
///
/// Each trial's P (and its info's total_transitions / chains_per_row /
/// walk_cutoff) is identical to a standalone
/// `McmcInverter(a, {alpha, eps, delta}, options).compute()`; build_seconds
/// apportions the shared ensemble wall time by each trial's own truncated
/// transition count (plus its own assembly).  When `kernel_cache` is given
/// the walk kernel for (a, alpha) is fetched from / stored into it.
///
/// @param a             square system matrix with nonzero diagonal
/// @param alpha         diagonal perturbation shared by every trial
/// @param trials        the (eps, delta) grid; at least one entry
/// @param options       sampler knobs; `options.seed` keys the chain streams
/// @param kernel_cache  optional per-alpha kernel reuse across calls
/// @return one preconditioner and one diagnostics record per trial,
///         in input order
BatchedGridResult batched_grid_build(const CsrMatrix& a, real_t alpha,
                                     const std::vector<GridTrial>& trials,
                                     const McmcOptions& options = {},
                                     WalkKernelCache* kernel_cache = nullptr);

/// Per-replicate outputs of a replicate-batched grid build: element r holds
/// the full trial grid built with `replicate_seeds[r]`.
struct ReplicatedGridResult {
  std::vector<BatchedGridResult> replicates;  ///< [replicate], trial order
};

/// Build every (trial, replicate) preconditioner from one interleaved walk
/// ensemble: replicate lanes advance through the chain loop in lockstep
/// (see the file comment), so the kernel is traversed in a single pass
/// instead of once per replicate.
///
/// Replicate r of the result is bit-identical to
/// `batched_grid_build(a, alpha, trials, options with seed =
/// replicate_seeds[r], kernel_cache)` — and therefore to the standalone
/// `McmcInverter::compute()` per trial — at any OpenMP thread count and rank
/// partition.  `options.seed` is ignored; the replicate seeds key the chain
/// streams.  Per-(trial, replicate) build_seconds apportions the shared
/// ensemble wall time by that build's own truncated transition share.
///
/// Memory note: each OpenMP thread holds one dense accumulator per (trial,
/// replicate) — replicates x trials x n doubles, an R-fold increase over
/// per-replicate batched_grid_build calls.  For very large systems with
/// many trials and threads, prefer looping batched_grid_build per replicate
/// if that footprint matters more than the single-pass walk.
///
/// @param a                square system matrix with nonzero diagonal
/// @param alpha            diagonal perturbation shared by every trial
/// @param trials           the (eps, delta) grid; at least one entry
/// @param replicate_seeds  one chain-stream base seed per replicate;
///                         at least one entry (duplicates are allowed and
///                         produce identical replicate outputs)
/// @param options          sampler knobs; `options.seed` is ignored
/// @param kernel_cache     optional per-alpha kernel reuse across calls
/// @return per-replicate BatchedGridResults, in `replicate_seeds` order
ReplicatedGridResult replicate_batched_grid_build(
    const CsrMatrix& a, real_t alpha, const std::vector<GridTrial>& trials,
    const std::vector<u64>& replicate_seeds, const McmcOptions& options = {},
    WalkKernelCache* kernel_cache = nullptr);

/// One batched build's worth of grid points: every position of the source
/// list sharing this exact alpha, in encounter order.
struct AlphaGroup {
  real_t alpha = 0.0;             ///< the group's shared perturbation
  std::vector<index_t> indices;   ///< positions in the source list
  std::vector<GridTrial> trials;  ///< (eps, delta) per position
};

/// Group a parameter list by exact alpha bits, first-appearance order:
/// each group maps to one batched_grid_build (or measure_grid) call, and
/// `indices` scatters the per-trial results back into source order.
std::vector<AlphaGroup> group_grid_by_alpha(
    const std::vector<McmcParams>& grid);

/// Outputs of a multi-alpha grid build, indexed like the request groups.
struct MultiAlphaGridResult {
  std::vector<ReplicatedGridResult> groups;  ///< [group][replicate][trial]
  /// True when one ensemble's successor draws served every alpha (the
  /// runtime check passed); false when the builder fell back to one
  /// ensemble per alpha.  Outputs are bit-identical either way.
  bool shared_successors = false;
};

/// Whether two walk kernels draw bit-identical successor sequences from the
/// same RNG stream on the alias path: same walk graph (row_ptr, succ) and
/// bitwise-equal alias tables.  This is the runtime gate for multi-alpha
/// successor sharing — the transition probabilities are alpha-invariant in
/// exact arithmetic, but the shared ensemble is only used when the rounded
/// tables agree exactly, keeping the output contract unconditional.
bool can_share_successor_draws(const WalkKernel& lhs, const WalkKernel& rhs);

/// Whether two walk kernels make bit-identical successor decisions from the
/// same RNG stream on the inverse-CDF path: same walk graph, and per row an
/// exact power-of-two factor scales lhs's cumulative |B| prefix sums and
/// row sum onto rhs's (equivalently, the scale-invariant *normalised*
/// cum_abs arrays are bitwise equal).  Multiplication by a power of two
/// commutes with floating-point rounding away from the subnormal range, so
/// under this condition the draw `upper_bound(cum_abs, u * S_u)` picks the
/// same transition slot for every RNG word in both kernels; rows whose sums
/// sit close enough to the subnormal range for that argument to leak
/// (< 1e-100) conservatively fail the check.  This is the runtime gate for
/// multi-alpha draw sharing on the inverse-CDF sampler, the counterpart of
/// can_share_successor_draws() on the alias path — e.g. the (1+alpha)
/// factors of alphas {1, 3} scale every row by exactly 2x and always pass.
bool can_share_inverse_cdf_draws(const WalkKernel& lhs, const WalkKernel& rhs);

/// Build every (group, trial, replicate) preconditioner, sharing one walk
/// ensemble across *all* alphas when the kernels allow it: successor draws
/// are sampled once per step through the first group's sampling structures
/// while each alpha carries its own weight stream, stopping rules, and
/// accumulators.  The sharing fast path requires bitwise-identical draw
/// decisions across the groups, verified at runtime per sampling method —
/// can_share_successor_draws() for the alias path (bitwise-equal alias
/// tables), can_share_inverse_cdf_draws() for the inverse-CDF path (exact
/// power-of-two scaling of the cumulative weights); otherwise the builder
/// runs one replicate-batched ensemble per group.  Either way every
/// (group, trial, replicate) output is bit-identical to its standalone
/// `McmcInverter::compute()`.
///
/// @param a                square system matrix with nonzero diagonal
/// @param groups           one trial list per alpha (AlphaGroup::indices is
///                         not consulted); at least one group, each with at
///                         least one trial
/// @param replicate_seeds  one chain-stream base seed per replicate
/// @param options          sampler knobs; `options.seed` is ignored
/// @param kernel_cache     optional per-alpha kernel reuse across calls;
///                         when omitted a call-local cache still prevents
///                         the fallback path from rebuilding the kernels
///                         the runtime check already built
/// @return per-group ReplicatedGridResults plus the sharing outcome
MultiAlphaGridResult multi_alpha_grid_build(
    const CsrMatrix& a, const std::vector<AlphaGroup>& groups,
    const std::vector<u64>& replicate_seeds, const McmcOptions& options = {},
    WalkKernelCache* kernel_cache = nullptr);

}  // namespace mcmi
