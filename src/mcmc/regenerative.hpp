#pragma once
// Regenerative Ulam–von Neumann matrix inversion.
//
// The paper cites Ghosh et al. (2025) [9] as "the regenerative formulation
// that collapses multiple hyperparameters into a single transition budget
// parameter" and names it as a drop-in replacement for the classic scheme
// (§3).  This module implements that variant: instead of (eps, delta)
// controlling chain count and walk cutoff separately, each row spends a
// single *transition budget*; walks absorb stochastically with probability
// 1 - S_u at each state (requiring the alpha-perturbed kernel to satisfy
// ||B||_inf < 1) and regenerate from the start row until the budget is
// exhausted.  Absorption replaces truncation, so the estimator is unbiased
// — the bias of the classic scheme's delta-cutoff disappears, at the price
// of random walk lengths.

#include <memory>

#include "core/types.hpp"
#include "mcmc/params.hpp"
#include "precond/sparse_precond.hpp"
#include "sparse/csr.hpp"

namespace mcmi {

struct RegenerativeParams {
  real_t alpha = 2.0;          ///< same diagonal perturbation as the classic scheme
  index_t transition_budget = 64;  ///< Markov transitions to spend per row
};

struct RegenerativeOptions {
  real_t filling_factor = 2.0;
  real_t truncation_threshold = 1e-9;
  index_t walk_cap = 4096;     ///< backstop against pathological kernels
  u64 seed = 20250922;
  /// Successor sampler.  The alias path spends a second RNG draw per step:
  /// the first decides the absorption bit (u >= S_u regenerates), the second
  /// feeds the alias table; the inverse-CDF path reuses the absorption draw
  /// for its binary search, reproducing the original output bit for bit.
  SamplingMethod sampling = SamplingMethod::kAlias;
};

struct RegenerativeBuildInfo {
  real_t b_norm_inf = 0.0;
  long long total_transitions = 0;
  long long total_regenerations = 0;  ///< chains completed across all rows
  real_t build_seconds = 0.0;
};

/// Regenerative MCMC inverter: produces an explicit sparse P ~ A^-1.
class RegenerativeInverter {
 public:
  RegenerativeInverter(const CsrMatrix& a, RegenerativeParams params,
                       RegenerativeOptions options = {});

  [[nodiscard]] CsrMatrix compute();
  [[nodiscard]] const RegenerativeBuildInfo& info() const { return info_; }

  static std::unique_ptr<SparseApproximateInverse> build_preconditioner(
      const CsrMatrix& a, const RegenerativeParams& params,
      const RegenerativeOptions& options = {});

 private:
  const CsrMatrix& a_;
  RegenerativeParams params_;
  RegenerativeOptions options_;
  RegenerativeBuildInfo info_;
};

}  // namespace mcmi
