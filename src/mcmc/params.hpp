#pragma once
// MCMC matrix-inversion algorithmic parameters x_M (§4.1).
//
//   alpha — matrix perturbation scaling the added diagonal of A so the
//           Neumann-series preconditioner converges;
//   eps   — stochastic error, determines the number of independent Markov
//           chains per row;
//   delta — truncation error, determines the maximum walk length.
//
// The categorical Krylov solver type completes x_M for the surrogate but is
// carried separately (krylov/solver.hpp).

#include <string>
#include <vector>

#include "core/types.hpp"

namespace mcmi {

/// How a walk draws its successor under p_uv = |B_uv| / S_u.  Shared by the
/// classic and regenerative inverters.
enum class SamplingMethod {
  kAlias,       ///< Walker alias table: one draw + one compare per step
  kInverseCdf,  ///< binary search over cumulative weights (reference path)
};

/// Weight-magnitude guard for divergent kernels (||B|| >= 1): a walk whose
/// |W| blows past this breaks with a finite estimate instead of inf/nan.
/// Shared by the standalone and batched builders — their bit-identity
/// contract depends on truncating at the same step.
inline constexpr real_t kDivergenceGuard = 1e30;

/// Continuous MCMC parameters x_M = (alpha, eps, delta).
struct McmcParams {
  real_t alpha = 2.0;   ///< diagonal perturbation scale, alpha > 0
  real_t eps = 0.25;    ///< stochastic error in (0, 1]
  real_t delta = 0.25;  ///< truncation error in (0, 1]

  [[nodiscard]] std::string to_string() const;
};

/// Number of independent chains per row implied by eps: the probable-error
/// bound N = ceil((0.6745 / eps)^2) of the MCMCMI literature.
index_t chains_for_eps(real_t eps);

/// Walk-length cutoff implied by delta given the iteration-matrix norm:
/// smallest T with ||B||^T <= delta (capped by `cap` when ||B|| >= 1 and the
/// Neumann series diverges).
index_t walk_length_for_delta(real_t delta, real_t b_norm, index_t cap);

/// The 4x4x4 coarse training grid of §4.2:
/// alpha in {1,2,4,5}, eps and delta in {1/2, 1/4, 1/8, 1/16}.
std::vector<McmcParams> paper_parameter_grid();

/// The alpha values of the grid, in order.
std::vector<real_t> paper_alpha_values();
/// The eps (= delta) values of the grid, in order.
std::vector<real_t> paper_eps_values();

}  // namespace mcmi
