#include "mcmc/inverter.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <vector>

#include "core/error.hpp"
#include "core/parallel.hpp"
#include "core/rng.hpp"
#include "core/timer.hpp"
#include "mcmc/csr_arena.hpp"
#include "mcmc/emission.hpp"
#include "mcmc/walk_kernel.hpp"

namespace mcmi {

namespace {

/// One (row, chain) random walk: accumulates W contributions into `accum`
/// (dense workspace) and records freshly touched states in `touched`.
/// Returns the number of transitions consumed.  The successor draw is the
/// only difference between the two sampling methods: one RNG word through
/// the alias table versus a binary search over cumulative weights (the
/// reference path, which consumes the RNG stream exactly like the original
/// implementation and therefore reproduces its output bit for bit).
template <SamplingMethod method>
index_t run_walk(const WalkKernel& k, index_t start, index_t cutoff,
                 real_t delta, Xoshiro256& rng, std::vector<real_t>& accum,
                 std::vector<index_t>& touched, long long& retired) {
  // k = 0 term of the Neumann series: the walk starts at `start` with W = 1.
  if (accum[start] == 0.0) touched.push_back(start);
  accum[start] += 1.0;

  index_t state = start;
  real_t weight = 1.0;
  index_t steps = 0;
  while (steps < cutoff) {
    const index_t begin = k.row_ptr[state];
    const index_t end = k.row_ptr[state + 1];
    if (begin == end) break;  // absorbing state: no off-diagonal mass
    index_t p;
    if constexpr (method == SamplingMethod::kAlias) {
      p = k.alias.sample(begin, end, rng());
    } else {
      // Inverse-CDF sampling of the successor under p_uv = |B_uv| / S_u.
      const real_t target = uniform01(rng) * k.row_sum[state];
      const auto first = k.cum_abs.begin() + begin;
      const auto last = k.cum_abs.begin() + end;
      auto it = std::upper_bound(first, last, target);
      if (it == last) --it;  // guard the rounding edge target ~= S_u
      p = static_cast<index_t>(it - k.cum_abs.begin());
    }
    // Weight update W *= B_uv / p_uv = sign(B_uv) * S_u, precomputed.
    weight *= k.signed_sum[p];
    state = k.succ[p];
    ++steps;
    if (std::abs(weight) < delta) break;  // truncation criterion
    // Divergent kernel (||B|| > 1): bound the blow-up so the estimate stays
    // finite — the resulting garbage preconditioner is the intended failure
    // signal for near-zero alpha, but it must not poison the solver with
    // inf/nan.  Retirements are counted so callers can see the divergence.
    if (std::abs(weight) > kDivergenceGuard) {
      ++retired;
      break;
    }
    if (accum[state] == 0.0) touched.push_back(state);
    accum[state] += weight;
  }
  return steps;
}

}  // namespace

McmcInverter::McmcInverter(const CsrMatrix& a, McmcParams params,
                           McmcOptions options)
    : a_(a), params_(params), options_(options) {
  MCMI_CHECK(a.rows() == a.cols(), "MCMCMI needs a square matrix");
  MCMI_CHECK(params_.alpha >= 0.0, "alpha must be nonnegative");
  MCMI_CHECK(params_.eps > 0.0 && params_.eps <= 1.0, "eps must be in (0,1]");
  MCMI_CHECK(params_.delta > 0.0 && params_.delta <= 1.0,
             "delta must be in (0,1]");
  MCMI_CHECK(options_.filling_factor > 0.0, "filling factor must be positive");
}

CsrMatrix McmcInverter::compute() {
  WallTimer timer;
  const index_t n = a_.rows();

  if (options_.cancel != nullptr && options_.cancel->should_stop()) {
    info_ = McmcBuildInfo{};
    info_.status = build_stop_reason(*options_.cancel);
    return CsrMatrix();  // refused before any work
  }

  // The kernel is a pure function of (A, alpha): reuse it across trials that
  // share alpha when the caller attached a cache.
  std::shared_ptr<const WalkKernel> cached;
  WalkKernel local;
  bool cache_hit = false;
  if (kernel_cache_ != nullptr) {
    cached = kernel_cache_->get(a_, params_.alpha, &cache_hit);
  } else {
    local = build_walk_kernel(a_, params_.alpha);
  }
  const WalkKernel& kernel = cached ? *cached : local;

  info_ = McmcBuildInfo{};
  info_.b_norm_inf = kernel.norm_inf;
  info_.neumann_convergent = kernel.norm_inf < 1.0;
  info_.chains_per_row = chains_for_eps(params_.eps);
  info_.walk_cutoff = walk_length_for_delta(params_.delta, kernel.norm_inf,
                                            options_.walk_cap);
  info_.kernel_cache_hit = cache_hit;

  // Per-row nonzero budget from the filling factor: the paper caps the
  // preconditioner at filling_factor * phi(A), i.e. on average
  // filling_factor * nnz(A)/n entries per row.
  const index_t row_budget = std::max<index_t>(
      1, static_cast<index_t>(std::llround(
             options_.filling_factor * static_cast<real_t>(a_.nnz()) /
             static_cast<real_t>(n))));

  const index_t chains = info_.chains_per_row;
  const index_t cutoff = info_.walk_cutoff;
  const real_t inv_chains = 1.0 / static_cast<real_t>(chains);
  const real_t threshold = options_.truncation_threshold;

  // Phase 1: every thread assembles its rows into a private arena and
  // records where each row landed; phase 2 prefix-sums the lengths and
  // copies the slices into the final CSR buffers.  Rows enter the arena with
  // sorted columns, so no trailing re-sort pass is needed.
  std::vector<RowArena> arenas(static_cast<std::size_t>(max_threads()));
  std::vector<RowSlice> row_slices(static_cast<std::size_t>(n));
  std::atomic<long long> transitions{0};
  std::atomic<long long> retirements{0};
  // Cooperative cancellation: an `omp for` cannot break, so a shared flag
  // turns the remaining rows into no-ops and the partial build is discarded
  // after the loops.
  std::atomic<bool> aborted{false};

  // The rank loop mirrors the paper's 2-rank MPI decomposition; inside each
  // rank block rows are OpenMP-parallel.  Results are identical at any
  // rank/thread count because streams are keyed by (seed, row, chain).
  const ChainPartition partition(n, options_.ranks);
  for (index_t rank = 0; rank < options_.ranks; ++rank) {
    const index_t begin = partition.begin(rank);
    const index_t end = partition.end(rank);
    // Shard-grouped row spans for this rank (empty options_.shards yields
    // the whole rank range): rows of different shards never interleave
    // inside one span, modelling per-device row ownership while the span
    // granularity keeps the pool load-balanced.
    const std::vector<std::pair<index_t, index_t>> spans =
        options_.shards.empty()
            ? std::vector<std::pair<index_t, index_t>>{}
            : shard_row_spans(options_.shards, begin, end, 8);
#pragma omp parallel
    {
      const int tid = thread_id();
      RowArena& arena = arenas[static_cast<std::size_t>(tid)];
      std::vector<real_t> accum(static_cast<std::size_t>(n), 0.0);
      std::vector<index_t> touched;
      RowEmitter emitter;
      long long local_transitions = 0;
      long long local_retired = 0;
      const auto process_row = [&](index_t i) {
        if (aborted.load(std::memory_order_relaxed)) return;
        if (options_.cancel != nullptr && options_.cancel->should_stop()) {
          aborted.store(true, std::memory_order_relaxed);
          return;
        }
        touched.clear();
        for (index_t c = 0; c < chains; ++c) {
          Xoshiro256 rng = make_stream(options_.seed, static_cast<u64>(i),
                                       static_cast<u64>(c));
          local_transitions +=
              options_.sampling == SamplingMethod::kAlias
                  ? run_walk<SamplingMethod::kAlias>(kernel, i, cutoff,
                                                     params_.delta, rng, accum,
                                                     touched, local_retired)
                  : run_walk<SamplingMethod::kInverseCdf>(
                        kernel, i, cutoff, params_.delta, rng, accum, touched,
                        local_retired);
        }
        // Integer weights can cancel to exactly zero and re-accumulate, in
        // which case a state enters `touched` twice — deduplicate before
        // emission so the CSR row stays well formed.  The sort also fixes the
        // emitted column order.
        std::sort(touched.begin(), touched.end());
        touched.erase(std::unique(touched.begin(), touched.end()),
                      touched.end());
        row_slices[i] = emitter.emit(arena, tid, accum.data(), touched, i,
                                     inv_chains, kernel.inv_diag, threshold,
                                     row_budget);
      };
      if (spans.empty()) {
#pragma omp for schedule(dynamic, 8)
        for (index_t i = begin; i < end; ++i) process_row(i);
      } else {
        // Sharded build: every (seed, row, chain) stream is unchanged, so
        // the emitted rows — and the assembled P — are bit-identical to
        // the legacy loop for any layout.
        const index_t nspans = static_cast<index_t>(spans.size());
#pragma omp for schedule(dynamic, 1)
        for (index_t sp = 0; sp < nspans; ++sp) {
          for (index_t i = spans[static_cast<std::size_t>(sp)].first;
               i < spans[static_cast<std::size_t>(sp)].second; ++i) {
            process_row(i);
          }
        }
      }
      transitions += local_transitions;
      retirements += local_retired;
    }
  }

  info_.total_transitions = transitions.load();
  info_.divergence_retirements = retirements.load();
  if (aborted.load()) {
    info_.status = build_stop_reason(*options_.cancel);
    info_.build_seconds = timer.seconds();
    return CsrMatrix();  // partial artifacts discarded
  }
  CsrMatrix p = assemble_csr_from_arenas(n, row_slices, arenas);
  info_.build_seconds = timer.seconds();
  return p;
}

std::unique_ptr<SparseApproximateInverse> McmcInverter::build_preconditioner(
    const CsrMatrix& a, const McmcParams& params, const McmcOptions& options,
    WalkKernelCache* kernel_cache) {
  McmcInverter inverter(a, params, options);
  inverter.set_kernel_cache(kernel_cache);
  CsrMatrix p = inverter.compute();
  return std::make_unique<SparseApproximateInverse>(
      std::move(p), "mcmcmi" + params.to_string());
}

}  // namespace mcmi
