#include "mcmc/inverter.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <vector>

#include "core/error.hpp"
#include "core/parallel.hpp"
#include "core/rng.hpp"
#include "core/timer.hpp"

namespace mcmi {

namespace {

/// The iteration matrix B = I - D^-1 A_a in a walk-friendly layout:
/// per state, sorted successor states with signed values, cumulative
/// |B| weights for inverse-CDF sampling, and the row absolute sum.
struct WalkKernel {
  std::vector<index_t> row_ptr;
  std::vector<index_t> succ;      ///< successor state per transition
  std::vector<real_t> value;      ///< signed B_uv
  std::vector<real_t> cum_abs;    ///< running sum of |B_uv| within the row
  std::vector<real_t> row_sum;    ///< S_u = sum_v |B_uv|
  std::vector<real_t> inv_diag;   ///< 1 / d_u of the perturbed matrix
  real_t norm_inf = 0.0;          ///< max_u S_u
};

WalkKernel build_kernel(const CsrMatrix& a, real_t alpha) {
  const index_t n = a.rows();
  const auto& row_ptr = a.row_ptr();
  const auto& col_idx = a.col_idx();
  const auto& values = a.values();

  WalkKernel k;
  k.row_ptr.assign(static_cast<std::size_t>(n) + 1, 0);
  k.row_sum.assign(static_cast<std::size_t>(n), 0.0);
  k.inv_diag.assign(static_cast<std::size_t>(n), 0.0);
  k.succ.reserve(values.size());
  k.value.reserve(values.size());
  k.cum_abs.reserve(values.size());

  for (index_t i = 0; i < n; ++i) {
    const real_t aii = a.at(i, i);
    MCMI_CHECK(aii != 0.0,
               "MCMCMI requires a nonzero diagonal; row " << i << " has none");
    // Perturbed diagonal d_i = a_ii + alpha * |a_ii| keeps the sign of a_ii
    // while increasing dominance, so the Jacobi iteration matrix shrinks.
    const real_t d = aii + std::copysign(alpha * std::abs(aii), aii);
    k.inv_diag[i] = 1.0 / d;
    real_t cum = 0.0;
    for (index_t p = row_ptr[i]; p < row_ptr[i + 1]; ++p) {
      const index_t j = col_idx[p];
      if (j == i) continue;  // B has zero diagonal by construction
      const real_t b = -values[p] / d;
      if (b == 0.0) continue;
      k.succ.push_back(j);
      k.value.push_back(b);
      cum += std::abs(b);
      k.cum_abs.push_back(cum);
    }
    k.row_sum[i] = cum;
    k.row_ptr[i + 1] = static_cast<index_t>(k.succ.size());
    k.norm_inf = std::max(k.norm_inf, cum);
  }
  return k;
}

/// One (row, chain) random walk: accumulates W contributions into `accum`
/// (dense workspace) and records freshly touched states in `touched`.
/// Returns the number of transitions consumed.
index_t run_walk(const WalkKernel& k, index_t start, index_t cutoff,
                 real_t delta, Xoshiro256& rng, std::vector<real_t>& accum,
                 std::vector<index_t>& touched) {
  // k = 0 term of the Neumann series: the walk starts at `start` with W = 1.
  if (accum[start] == 0.0) touched.push_back(start);
  accum[start] += 1.0;

  index_t state = start;
  real_t weight = 1.0;
  index_t steps = 0;
  while (steps < cutoff) {
    const index_t begin = k.row_ptr[state];
    const index_t end = k.row_ptr[state + 1];
    if (begin == end) break;  // absorbing state: no off-diagonal mass
    const real_t s = k.row_sum[state];
    // Inverse-CDF sampling of the successor under p_uv = |B_uv| / S_u.
    const real_t target = uniform01(rng) * s;
    const auto first = k.cum_abs.begin() + begin;
    const auto last = k.cum_abs.begin() + end;
    auto it = std::upper_bound(first, last, target);
    if (it == last) --it;  // guard the rounding edge target ~= S_u
    const index_t p = static_cast<index_t>(it - k.cum_abs.begin());
    // Weight update W *= B_uv / p_uv = sign(B_uv) * S_u.
    weight *= std::copysign(s, k.value[p]);
    state = k.succ[p];
    ++steps;
    if (std::abs(weight) < delta) break;  // truncation criterion
    // Divergent kernel (||B|| > 1): bound the blow-up so the estimate stays
    // finite — the resulting garbage preconditioner is the intended failure
    // signal for near-zero alpha, but it must not poison the solver with
    // inf/nan.
    if (std::abs(weight) > 1e30) break;
    if (accum[state] == 0.0) touched.push_back(state);
    accum[state] += weight;
  }
  return steps;
}

}  // namespace

McmcInverter::McmcInverter(const CsrMatrix& a, McmcParams params,
                           McmcOptions options)
    : a_(a), params_(params), options_(options) {
  MCMI_CHECK(a.rows() == a.cols(), "MCMCMI needs a square matrix");
  MCMI_CHECK(params_.alpha >= 0.0, "alpha must be nonnegative");
  MCMI_CHECK(params_.eps > 0.0 && params_.eps <= 1.0, "eps must be in (0,1]");
  MCMI_CHECK(params_.delta > 0.0 && params_.delta <= 1.0,
             "delta must be in (0,1]");
  MCMI_CHECK(options_.filling_factor > 0.0, "filling factor must be positive");
}

CsrMatrix McmcInverter::compute() {
  WallTimer timer;
  const index_t n = a_.rows();
  const WalkKernel kernel = build_kernel(a_, params_.alpha);

  info_ = McmcBuildInfo{};
  info_.b_norm_inf = kernel.norm_inf;
  info_.neumann_convergent = kernel.norm_inf < 1.0;
  info_.chains_per_row = chains_for_eps(params_.eps);
  info_.walk_cutoff = walk_length_for_delta(params_.delta, kernel.norm_inf,
                                            options_.walk_cap);

  // Per-row nonzero budget from the filling factor: the paper caps the
  // preconditioner at filling_factor * phi(A), i.e. on average
  // filling_factor * nnz(A)/n entries per row.
  const index_t row_budget = std::max<index_t>(
      1, static_cast<index_t>(std::llround(
             options_.filling_factor * static_cast<real_t>(a_.nnz()) /
             static_cast<real_t>(n))));

  const index_t chains = info_.chains_per_row;
  const index_t cutoff = info_.walk_cutoff;
  const real_t inv_chains = 1.0 / static_cast<real_t>(chains);

  // Row results assembled independently, then concatenated.
  std::vector<std::vector<index_t>> row_cols(static_cast<std::size_t>(n));
  std::vector<std::vector<real_t>> row_vals(static_cast<std::size_t>(n));
  std::atomic<long long> transitions{0};

  // The rank loop mirrors the paper's 2-rank MPI decomposition; inside each
  // rank block rows are OpenMP-parallel.  Results are identical at any
  // rank/thread count because streams are keyed by (seed, row, chain).
  const ChainPartition partition(n, options_.ranks);
  for (index_t rank = 0; rank < options_.ranks; ++rank) {
    const index_t begin = partition.begin(rank);
    const index_t end = partition.end(rank);
#pragma omp parallel
    {
      std::vector<real_t> accum(static_cast<std::size_t>(n), 0.0);
      std::vector<index_t> touched;
      long long local_transitions = 0;
#pragma omp for schedule(dynamic, 8)
      for (index_t i = begin; i < end; ++i) {
        touched.clear();
        for (index_t c = 0; c < chains; ++c) {
          Xoshiro256 rng = make_stream(options_.seed, static_cast<u64>(i),
                                       static_cast<u64>(c));
          local_transitions += run_walk(kernel, i, cutoff, params_.delta, rng,
                                        accum, touched);
        }
        // Integer weights can cancel to exactly zero and re-accumulate, in
        // which case a state enters `touched` twice — deduplicate before
        // emission so the CSR row stays well formed.
        std::sort(touched.begin(), touched.end());
        touched.erase(std::unique(touched.begin(), touched.end()),
                      touched.end());
        // Average over chains and map M -> P = M D^-1 (column scaling).
        std::vector<index_t>& cols = row_cols[i];
        std::vector<real_t>& vals = row_vals[i];
        cols.reserve(touched.size());
        vals.reserve(touched.size());
        for (index_t j : touched) {
          const real_t pij = accum[j] * inv_chains * kernel.inv_diag[j];
          accum[j] = 0.0;
          if (j != i && std::abs(pij) <= options_.truncation_threshold) {
            continue;  // truncation threshold (diagonal always kept)
          }
          cols.push_back(j);
          vals.push_back(pij);
        }
        // Filling-factor cap: keep the row_budget largest-magnitude entries.
        if (static_cast<index_t>(cols.size()) > row_budget) {
          std::vector<index_t> order(cols.size());
          for (std::size_t q = 0; q < order.size(); ++q) {
            order[q] = static_cast<index_t>(q);
          }
          std::nth_element(order.begin(), order.begin() + row_budget - 1,
                           order.end(), [&](index_t x, index_t y) {
                             return std::abs(vals[x]) > std::abs(vals[y]);
                           });
          order.resize(static_cast<std::size_t>(row_budget));
          std::vector<index_t> kept_cols;
          std::vector<real_t> kept_vals;
          kept_cols.reserve(order.size());
          kept_vals.reserve(order.size());
          for (index_t q : order) {
            kept_cols.push_back(cols[q]);
            kept_vals.push_back(vals[q]);
          }
          cols = std::move(kept_cols);
          vals = std::move(kept_vals);
        }
      }
      transitions += local_transitions;
    }
  }

  // Assemble CSR (rows must have sorted columns).
  std::vector<index_t> row_ptr(static_cast<std::size_t>(n) + 1, 0);
  for (index_t i = 0; i < n; ++i) {
    row_ptr[i + 1] = row_ptr[i] + static_cast<index_t>(row_cols[i].size());
  }
  std::vector<index_t> col_idx(static_cast<std::size_t>(row_ptr[n]));
  std::vector<real_t> values(static_cast<std::size_t>(row_ptr[n]));
#pragma omp parallel for schedule(dynamic, 32)
  for (index_t i = 0; i < n; ++i) {
    std::vector<index_t> order(row_cols[i].size());
    for (std::size_t q = 0; q < order.size(); ++q) {
      order[q] = static_cast<index_t>(q);
    }
    std::sort(order.begin(), order.end(), [&](index_t x, index_t y) {
      return row_cols[i][x] < row_cols[i][y];
    });
    index_t pos = row_ptr[i];
    for (index_t q : order) {
      col_idx[pos] = row_cols[i][q];
      values[pos] = row_vals[i][q];
      ++pos;
    }
  }

  info_.total_transitions = static_cast<index_t>(transitions.load());
  info_.build_seconds = timer.seconds();
  return CsrMatrix(n, n, std::move(row_ptr), std::move(col_idx),
                   std::move(values));
}

std::unique_ptr<SparseApproximateInverse> McmcInverter::build_preconditioner(
    const CsrMatrix& a, const McmcParams& params, const McmcOptions& options) {
  McmcInverter inverter(a, params, options);
  CsrMatrix p = inverter.compute();
  return std::make_unique<SparseApproximateInverse>(
      std::move(p), "mcmcmi" + params.to_string());
}

}  // namespace mcmi
