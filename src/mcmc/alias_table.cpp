#include "mcmc/alias_table.hpp"

#include "core/error.hpp"

namespace mcmi {

AliasTable AliasTable::build(const std::vector<index_t>& row_ptr,
                             const std::vector<real_t>& weights) {
  MCMI_CHECK(!row_ptr.empty(), "alias table needs a row layout");
  const std::size_t nnz = weights.size();
  MCMI_CHECK(static_cast<std::size_t>(row_ptr.back()) == nnz,
             "alias table: row_ptr/weights mismatch");

  AliasTable t;
  t.prob_.assign(nnz, 1.0);
  t.alias_.resize(nnz);
  for (std::size_t p = 0; p < nnz; ++p) {
    t.alias_[p] = static_cast<index_t>(p);  // self-alias: always safe
  }

  // Vose's stable two-stack construction, row by row.  Scratch is reused
  // across rows; both stacks hold slot indices scaled to mean weight 1.
  std::vector<real_t> scaled;
  std::vector<index_t> small;
  std::vector<index_t> large;
  const index_t rows = static_cast<index_t>(row_ptr.size()) - 1;
  for (index_t u = 0; u < rows; ++u) {
    const index_t begin = row_ptr[u];
    const index_t end = row_ptr[u + 1];
    const index_t width = end - begin;
    if (width <= 1) continue;  // empty or single-slot row: prob 1, self-alias

    real_t sum = 0.0;
    for (index_t p = begin; p < end; ++p) {
      MCMI_CHECK(weights[p] >= 0.0, "alias table: negative weight");
      sum += weights[p];
    }
    if (sum <= 0.0) continue;  // all-zero row: degenerate uniform

    scaled.resize(static_cast<std::size_t>(width));
    small.clear();
    large.clear();
    const real_t scale = static_cast<real_t>(width) / sum;
    for (index_t k = 0; k < width; ++k) {
      scaled[k] = weights[begin + k] * scale;
      (scaled[k] < 1.0 ? small : large).push_back(k);
    }
    while (!small.empty() && !large.empty()) {
      const index_t s = small.back();
      small.pop_back();
      const index_t l = large.back();
      t.prob_[begin + s] = scaled[s];
      t.alias_[begin + s] = begin + l;
      scaled[l] -= 1.0 - scaled[s];
      if (scaled[l] < 1.0) {
        large.pop_back();
        small.push_back(l);
      }
    }
    // Leftovers (either stack) are exactly 1 up to rounding: accept always.
    for (index_t s : small) t.prob_[begin + s] = 1.0;
    for (index_t l : large) t.prob_[begin + l] = 1.0;
  }
  return t;
}

}  // namespace mcmi
