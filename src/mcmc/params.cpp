#include "mcmc/params.hpp"

#include <cmath>
#include <sstream>

#include "core/error.hpp"

namespace mcmi {

std::string McmcParams::to_string() const {
  std::ostringstream os;
  os << "(alpha=" << alpha << ", eps=" << eps << ", delta=" << delta << ")";
  return os.str();
}

index_t chains_for_eps(real_t eps) {
  MCMI_CHECK(eps > 0.0 && eps <= 1.0, "eps must be in (0,1], got " << eps);
  // Probable error of the mean: 0.6745 * sigma / sqrt(N) <= eps * sigma.
  const real_t q = 0.6745 / eps;
  return std::max<index_t>(1, static_cast<index_t>(std::ceil(q * q)));
}

index_t walk_length_for_delta(real_t delta, real_t b_norm, index_t cap) {
  MCMI_CHECK(delta > 0.0 && delta <= 1.0,
             "delta must be in (0,1], got " << delta);
  MCMI_CHECK(cap >= 1, "cap must be positive");
  if (b_norm <= 0.0) return 1;
  if (b_norm >= 1.0) return cap;  // series diverges: bounded by the cap only
  const real_t t = std::log(delta) / std::log(b_norm);
  if (!std::isfinite(t)) return 1;
  return std::min<index_t>(cap,
                           std::max<index_t>(1, static_cast<index_t>(std::ceil(t))));
}

std::vector<McmcParams> paper_parameter_grid() {
  std::vector<McmcParams> grid;
  grid.reserve(64);
  for (real_t alpha : paper_alpha_values()) {
    for (real_t eps : paper_eps_values()) {
      for (real_t delta : paper_eps_values()) {
        grid.push_back({alpha, eps, delta});
      }
    }
  }
  return grid;
}

std::vector<real_t> paper_alpha_values() { return {1.0, 2.0, 4.0, 5.0}; }

std::vector<real_t> paper_eps_values() {
  return {0.5, 0.25, 0.125, 0.0625};
}

}  // namespace mcmi
