#pragma once
// MCMC matrix inversion (MCMCMI) — the Ulam–von Neumann scheme of
// Lebedev & Alexandrov [16] and Sahin et al. [27], the preconditioner the
// AI-tuning framework of the paper optimises.
//
// Pipeline for A with nonzero diagonal and parameters (alpha, eps, delta):
//
//   1. Perturb:      A_a = A + alpha * diag(|a_11|, ..., |a_nn|)
//   2. Jacobi split: B   = I - D^-1 A_a  with D = diag(A_a)
//                    so   A_a^-1 = (sum_k B^k) D^-1  when rho(B) < 1
//   3. Sample:       row i of M = sum_k B^k is estimated by N independent
//                    random walks under the Monte-Carlo-almost-optimal
//                    kernel p_uv = |B_uv| / sum_w |B_uw|; the walk weight
//                    picks up sign(B_uv) * sum_w |B_uw| per step, the walk
//                    truncates when |W| < delta or the delta-implied cutoff
//                    is reached, and eps fixes N = ceil((0.6745/eps)^2).
//   4. Assemble:     P_ij = M_ij / d_j, thresholded (default 1e-9) and
//                    capped at filling_factor * phi(A) nonzeros (default 2x).
//
// Chains are embarrassingly parallel: OpenMP over rows, and every
// (row, chain) pair draws from an RNG stream keyed by its global index, so
// the result is identical at any thread count — this stands in for the
// paper's hybrid MPI+OpenMP decomposition (see ChainPartition).

#include <memory>

#include "core/cancellation.hpp"
#include "core/status.hpp"
#include "core/types.hpp"
#include "mcmc/params.hpp"
#include "mcmc/walk_kernel.hpp"
#include "precond/sparse_precond.hpp"
#include "sparse/csr.hpp"

namespace mcmi {

/// Knobs that the paper fixes matrix-independently (§4.1).
struct McmcOptions {
  real_t filling_factor = 2.0;    ///< retained nnz(P) <= factor * nnz(A)
  real_t truncation_threshold = 1e-9;  ///< drop |P_ij| below this
  index_t walk_cap = 256;         ///< hard safety cap on walk length
  index_t ranks = 2;              ///< rank-like chain partition (paper: 2 MPI)
  u64 seed = 20250922;            ///< base RNG seed (arXiv date of the paper)
  SamplingMethod sampling = SamplingMethod::kAlias;  ///< successor sampler
  /// Optional row-shard layout (sparse/sharded_plan.hpp): when set, the
  /// walk ensemble iterates shard-grouped row spans inside each rank's
  /// parallel region — the thread-pool stand-in for per-device row
  /// ownership.  Chains stay keyed by (seed, row, chain), so the built
  /// preconditioner is bit-identical to the unsharded build for any
  /// layout; empty = legacy row loop.
  ShardLayout shards{};
  /// Cooperative cancellation / deadline, polled once per row; not owned.
  /// A build that stops early discards all partial artifacts and reports
  /// the reason in McmcBuildInfo::status.
  const CancelToken* cancel = nullptr;
  /// Opt out of the compile-time SIMD lane tier of the lockstep engine
  /// (mcmc/batched_build.cpp): when set, interleaved ensembles always run
  /// the dynamic-lane-count path.  The two tiers are bit-identical; this
  /// knob exists for A/B benchmarking and conformance testing only.
  bool force_dynamic_lanes = false;
};

/// Diagnostics from a preconditioner build.
struct McmcBuildInfo {
  BuildStatus status = BuildStatus::kBuilt;  ///< why the build ended
  real_t b_norm_inf = 0.0;        ///< ||B||_inf of the iteration matrix
  bool neumann_convergent = false;  ///< ||B||_inf < 1
  index_t chains_per_row = 0;     ///< N implied by eps
  index_t walk_cutoff = 0;        ///< T implied by delta (and the cap)
  long long total_transitions = 0;  ///< Markov-chain steps consumed
  /// Walks retired by the divergence guard (|W| > kDivergenceGuard): nonzero
  /// counts are the per-build signature of a divergent kernel.
  long long divergence_retirements = 0;
  bool kernel_cache_hit = false;  ///< walk kernel came from a WalkKernelCache
  real_t build_seconds = 0.0;
};

/// MCMC matrix inverter: produces an explicit sparse P ~ A^-1.
class McmcInverter {
 public:
  McmcInverter(const CsrMatrix& a, McmcParams params,
               McmcOptions options = {});

  /// Run the sampler and assemble the sparse approximate inverse.
  [[nodiscard]] CsrMatrix compute();

  /// Diagnostics of the most recent compute().
  [[nodiscard]] const McmcBuildInfo& info() const { return info_; }

  /// Opt into kernel reuse: when set, the walk kernel (and its alias tables)
  /// for (a, alpha) is fetched from / stored into `cache` instead of being
  /// rebuilt.  The cache must outlive compute(); pass nullptr to detach.
  void set_kernel_cache(WalkKernelCache* cache) { kernel_cache_ = cache; }

  /// One-call convenience: build P and wrap it as a preconditioner.  When
  /// `kernel_cache` is given the walk kernel (and its alias tables) for
  /// (a, alpha) is reused across calls instead of being rebuilt per trial.
  static std::unique_ptr<SparseApproximateInverse> build_preconditioner(
      const CsrMatrix& a, const McmcParams& params,
      const McmcOptions& options = {}, WalkKernelCache* kernel_cache = nullptr);

 private:
  const CsrMatrix& a_;
  McmcParams params_;
  McmcOptions options_;
  McmcBuildInfo info_;
  WalkKernelCache* kernel_cache_ = nullptr;
};

}  // namespace mcmi
