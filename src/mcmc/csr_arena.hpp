#pragma once
// Arena-based CSR row storage shared by the MCMC inverters.
//
// Each worker thread appends its finished rows to a private flat arena
// (cols/vals grow amortised — no per-row heap vectors), records where every
// row landed, and a prefix-sum plus parallel copy concatenates the arenas
// into the final CSR buffers.  Rows enter the arena in sorted-column order,
// so no trailing re-sort pass is needed.
//
// Rows are written into the arena by the emission engine (mcmc/emission.hpp,
// RowEmitter) — the accumulator -> CSR-row pipeline with threshold-tracked
// budget truncation that every builder shares.

#include <cstdint>
#include <vector>

#include "core/types.hpp"
#include "sparse/csr.hpp"

namespace mcmi {

/// Per-thread append-only row storage.
struct RowArena {
  std::vector<index_t> cols;
  std::vector<real_t> vals;
};

/// Where one assembled row lives: (arena index, offset, length).
struct RowSlice {
  std::int32_t arena = 0;
  index_t offset = 0;
  index_t count = 0;
};

/// Phase 2 of the two-phase assembly: prefix-sum the per-row lengths into a
/// CSR row_ptr and copy every arena row into the final buffers in parallel.
CsrMatrix assemble_csr_from_arenas(index_t n,
                                   const std::vector<RowSlice>& rows,
                                   const std::vector<RowArena>& arenas);

}  // namespace mcmi
