#pragma once
// Arena-based CSR row assembly shared by the MCMC inverters.
//
// Each worker thread appends its finished rows to a private flat arena
// (cols/vals grow amortised — no per-row heap vectors), records where every
// row landed, and a prefix-sum plus parallel copy concatenates the arenas
// into the final CSR buffers.  Rows enter the arena in sorted-column order,
// so no trailing re-sort pass is needed; the filling-factor truncation runs
// in the arena with an nth_element over caller-owned index scratch.

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <functional>
#include <vector>

#include "core/types.hpp"
#include "sparse/csr.hpp"

namespace mcmi {

/// Per-thread append-only row storage.
struct RowArena {
  std::vector<index_t> cols;
  std::vector<real_t> vals;
};

/// Where one assembled row lives: (arena index, offset, length).
struct RowSlice {
  std::int32_t arena = 0;
  index_t offset = 0;
  index_t count = 0;
};

/// Keep the `budget` largest-|value| entries of the row occupying
/// [base, base+count) of `arena`, preserving sorted column order, and shrink
/// the arena back down.  `scratch` is reusable caller scratch.  The cut
/// magnitude is the budget-th largest |value| (an nth_element over a flat
/// copy of the magnitudes — direct double compares, no index indirection);
/// entries strictly above it always survive and ties at the cut keep the
/// lowest columns, so a single forward compaction pass both applies the
/// selection and preserves column order with no trailing sort.  The
/// selection depends only on the row content — never on thread scheduling.
inline index_t truncate_row_to_budget(RowArena& arena, index_t base,
                                      index_t count, index_t budget,
                                      std::vector<real_t>& scratch) {
  if (count <= budget) return count;
  scratch.resize(static_cast<std::size_t>(count));
  for (index_t q = 0; q < count; ++q) {
    scratch[static_cast<std::size_t>(q)] = std::abs(arena.vals[base + q]);
  }
  std::nth_element(scratch.begin(), scratch.begin() + (budget - 1),
                   scratch.end(), std::greater<real_t>());
  const real_t cut = scratch[static_cast<std::size_t>(budget - 1)];
  index_t above = 0;
  for (index_t q = 0; q < count; ++q) {
    above += std::abs(arena.vals[base + q]) > cut ? 1 : 0;
  }
  index_t ties_left = budget - above;  // >= 1: the cut entry itself ties
  index_t kept = 0;
  for (index_t q = 0; q < count; ++q) {  // q >= kept: forward copy safe
    const real_t av = std::abs(arena.vals[base + q]);
    if (av > cut) {
      // always kept
    } else if (av == cut && ties_left > 0) {
      --ties_left;
    } else {
      continue;
    }
    arena.cols[base + kept] = arena.cols[base + q];
    arena.vals[base + kept] = arena.vals[base + q];
    ++kept;
  }
  arena.cols.resize(static_cast<std::size_t>(base + budget));
  arena.vals.resize(static_cast<std::size_t>(base + budget));
  return budget;
}

/// Emit one assembled row into `arena`: scale the accumulated walk sums to
/// P entries (average over chains, column scaling by inv_diag), reset the
/// accumulator slots, drop off-diagonals at or below `threshold` (the
/// diagonal is always kept), and cap the row at `budget` entries.  `touched`
/// must be sorted ascending and cover every nonzero accumulator slot —
/// a superset is fine: untouched states carry an exact 0.0 and fall to the
/// threshold filter.  Shared by the standalone and batched builders (their
/// bit-identity contract rides on this single definition).  Returns the
/// row's slice for thread `tid`.
inline RowSlice emit_row_from_accumulator(
    RowArena& arena, int tid, real_t* accum,
    const std::vector<index_t>& touched, index_t row, real_t inv_chains,
    const std::vector<real_t>& inv_diag, real_t threshold, index_t budget,
    std::vector<real_t>& scratch) {
  const index_t base = static_cast<index_t>(arena.cols.size());
  for (index_t j : touched) {
    const real_t pij = accum[j] * inv_chains * inv_diag[j];
    accum[j] = 0.0;
    if (j != row && std::abs(pij) <= threshold) {
      continue;  // truncation threshold (diagonal always kept)
    }
    arena.cols.push_back(j);
    arena.vals.push_back(pij);
  }
  const index_t kept = truncate_row_to_budget(
      arena, base, static_cast<index_t>(arena.cols.size()) - base, budget,
      scratch);
  return {tid, base, kept};
}

/// Phase 2 of the two-phase assembly: prefix-sum the per-row lengths into a
/// CSR row_ptr and copy every arena row into the final buffers in parallel.
CsrMatrix assemble_csr_from_arenas(index_t n,
                                   const std::vector<RowSlice>& rows,
                                   const std::vector<RowArena>& arenas);

}  // namespace mcmi
