#pragma once
// Arena-based CSR row assembly shared by the MCMC inverters.
//
// Each worker thread appends its finished rows to a private flat arena
// (cols/vals grow amortised — no per-row heap vectors), records where every
// row landed, and a prefix-sum plus parallel copy concatenates the arenas
// into the final CSR buffers.  Rows enter the arena in sorted-column order,
// so no trailing re-sort pass is needed; the filling-factor truncation runs
// in the arena with an nth_element over caller-owned index scratch.

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "core/types.hpp"
#include "sparse/csr.hpp"

namespace mcmi {

/// Per-thread append-only row storage.
struct RowArena {
  std::vector<index_t> cols;
  std::vector<real_t> vals;
};

/// Where one assembled row lives: (arena index, offset, length).
struct RowSlice {
  std::int32_t arena = 0;
  index_t offset = 0;
  index_t count = 0;
};

/// Keep the `budget` largest-|value| entries of the row occupying
/// [base, base+count) of `arena`, preserving sorted column order, and shrink
/// the arena back down.  `order` is reusable caller scratch.  The selection
/// (ties included) matches nth_element over the emission order, which depends
/// only on the row content — never on thread scheduling.
inline index_t truncate_row_to_budget(RowArena& arena, index_t base,
                                      index_t count, index_t budget,
                                      std::vector<index_t>& order) {
  if (count <= budget) return count;
  order.resize(static_cast<std::size_t>(count));
  for (index_t q = 0; q < count; ++q) order[q] = q;
  std::nth_element(order.begin(), order.begin() + budget - 1, order.end(),
                   [&](index_t x, index_t y) {
                     return std::abs(arena.vals[base + x]) >
                            std::abs(arena.vals[base + y]);
                   });
  order.resize(static_cast<std::size_t>(budget));
  std::sort(order.begin(), order.end());  // restore ascending column order
  for (index_t q = 0; q < budget; ++q) {  // order[q] >= q: forward copy safe
    arena.cols[base + q] = arena.cols[base + order[q]];
    arena.vals[base + q] = arena.vals[base + order[q]];
  }
  arena.cols.resize(static_cast<std::size_t>(base + budget));
  arena.vals.resize(static_cast<std::size_t>(base + budget));
  return budget;
}

/// Emit one assembled row into `arena`: scale the accumulated walk sums to
/// P entries (average over chains, column scaling by inv_diag), reset the
/// accumulator slots, drop off-diagonals at or below `threshold` (the
/// diagonal is always kept), and cap the row at `budget` entries.  `touched`
/// must be sorted ascending and cover every nonzero accumulator slot —
/// a superset is fine: untouched states carry an exact 0.0 and fall to the
/// threshold filter.  Shared by the standalone and batched builders (their
/// bit-identity contract rides on this single definition).  Returns the
/// row's slice for thread `tid`.
inline RowSlice emit_row_from_accumulator(
    RowArena& arena, int tid, real_t* accum,
    const std::vector<index_t>& touched, index_t row, real_t inv_chains,
    const std::vector<real_t>& inv_diag, real_t threshold, index_t budget,
    std::vector<index_t>& order) {
  const index_t base = static_cast<index_t>(arena.cols.size());
  for (index_t j : touched) {
    const real_t pij = accum[j] * inv_chains * inv_diag[j];
    accum[j] = 0.0;
    if (j != row && std::abs(pij) <= threshold) {
      continue;  // truncation threshold (diagonal always kept)
    }
    arena.cols.push_back(j);
    arena.vals.push_back(pij);
  }
  const index_t kept = truncate_row_to_budget(
      arena, base, static_cast<index_t>(arena.cols.size()) - base, budget,
      order);
  return {tid, base, kept};
}

/// Phase 2 of the two-phase assembly: prefix-sum the per-row lengths into a
/// CSR row_ptr and copy every arena row into the final buffers in parallel.
CsrMatrix assemble_csr_from_arenas(index_t n,
                                   const std::vector<RowSlice>& rows,
                                   const std::vector<RowArena>& arenas);

}  // namespace mcmi
