#pragma once
// The Jacobi-split iteration matrix B = I - D^-1 A_a in a walk-friendly
// layout, shared by every chain of an MCMC inversion.
//
// The kernel is a pure function of (A, alpha) — eps and delta only change how
// many chains walk it and how long.  The AI-tuning loop probes many
// (alpha, eps, delta) trials against one matrix, so kernels are cacheable per
// alpha: WalkKernelCache keys built kernels (including their alias tables) by
// alpha bits and hands out shared ownership, turning the per-trial O(nnz)
// rebuild into a lookup.

#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "core/types.hpp"
#include "mcmc/alias_table.hpp"
#include "sparse/csr.hpp"

namespace mcmi {

/// Per-state successor lists with signed values, precomputed step weights,
/// cumulative |B| for the reference inverse-CDF path, and alias tables for
/// the O(1) path.
struct WalkKernel {
  std::vector<index_t> row_ptr;
  std::vector<index_t> succ;        ///< successor state per transition
  std::vector<real_t> value;        ///< signed B_uv
  std::vector<real_t> signed_sum;   ///< copysign(S_u, B_uv): the MAO W-step
  std::vector<real_t> cum_abs;      ///< running sum of |B_uv| within the row
  std::vector<real_t> row_sum;      ///< S_u = sum_v |B_uv|
  std::vector<real_t> inv_diag;     ///< 1 / d_u of the perturbed matrix
  AliasTable alias;                 ///< O(1) sampler over |B_uv| / S_u
  real_t norm_inf = 0.0;            ///< max_u S_u
};

/// Build the kernel (and its alias tables) for A perturbed by alpha.
WalkKernel build_walk_kernel(const CsrMatrix& a, real_t alpha);

/// Kernels keyed by alpha for one matrix.  The cache is bound to the first
/// matrix it sees — identified by a content fingerprint (shape plus sampled
/// entries), so reusing the cache with a different matrix drops every entry
/// even when the new matrix happens to occupy the old one's address.  A
/// cache owned per measured system is both safe and maximally effective.
/// Thread-safe.
class WalkKernelCache {
 public:
  /// Kernel for (a, alpha): cached when available, built and cached
  /// otherwise.  The returned pointer stays valid independent of the cache.
  /// When `hit` is given it reports whether this call was served from the
  /// cache (race-free, unlike comparing hits() across the call).
  std::shared_ptr<const WalkKernel> get(const CsrMatrix& a, real_t alpha,
                                        bool* hit = nullptr);

  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] long long hits() const;
  [[nodiscard]] long long misses() const;
  void clear();

 private:
  mutable std::mutex mutex_;
  u64 fingerprint_ = 0;  ///< content fingerprint of the bound matrix
  bool bound_ = false;
  std::unordered_map<u64, std::shared_ptr<const WalkKernel>> entries_;
  long long hits_ = 0;
  long long misses_ = 0;
};

}  // namespace mcmi
