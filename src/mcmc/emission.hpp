#pragma once
/// @file emission.hpp
/// @brief The row-emission engine: the accumulator -> CSR-row pipeline every
/// MCMC builder shares, with threshold-tracked top-k truncation.
///
/// Emitting a row means streaming a walk accumulator's touched states into
/// P entries (average over chains, column scaling by the inverse diagonal),
/// dropping off-diagonals at or below the truncation threshold, and capping
/// the row at the filling-factor budget.  After the batched builders
/// collapsed the walk work (one ensemble serves every (eps, delta) trial x
/// replicate x alpha), this per-(trial, replicate) emission pass became the
/// dominant fixed cost of a grid build — on lattice-like matrices a row's
/// touched set grows with the square of the walk length while the budget
/// stays O(row degree), so almost all streamed candidates are doomed and a
/// full selection pass per emission is wasted work.
///
/// ## The emission invariant (bit-identity contract)
///
/// Every builder — standalone, regenerative, batched, replicate-batched,
/// multi-alpha — emits rows through this one engine, and the emitted row is
/// a pure function of the row's content:
///
///   * **Values**: `P_ij = accum[j] * inv_chains * inv_diag[j]`, computed in
///     ascending column order (the touched set is sorted), bit-for-bit the
///     standalone arithmetic.
///   * **Threshold**: off-diagonals with `|P_ij| <= threshold` are dropped;
///     the diagonal entry is always a candidate.
///   * **Budget cut**: when more than `budget` candidates survive the
///     threshold, the row keeps entries whose magnitude exceeds the
///     budget-th largest |value| (counting duplicates), and ties *at* the
///     cut magnitude keep the lowest columns until the budget is filled.
///   * **Ordering**: the emitted row is in ascending column order; no
///     trailing sort exists anywhere in the pipeline.
///
/// The selection never depends on thread scheduling, batching arrangement,
/// or which scratch the engine happened to reuse.
///
/// ## The threshold-tracked cut
///
/// RowEmitter keeps a bounded min-heap of the `budget` largest candidate
/// magnitudes seen so far while the row streams.  Its minimum is a running
/// lower bound on the final cut, and after the last candidate it *is* the
/// exact budget-th largest magnitude — so:
///
///   * a candidate strictly below the running minimum can never survive and
///     is rejected with one compare, without ever touching the arena;
///   * candidates at or above it are staged into the arena (ties at the
///     final cut must stay available for lowest-column selection);
///   * the final compaction applies the exact cut to the staged survivors
///     only, with no `nth_element` over the full candidate set.
///
/// Rows that cannot overflow the budget skip all tracking: the touched
/// count is checked first (`touched.size() <= budget` emits through a bare
/// threshold-filter loop), and a row whose post-threshold candidate count
/// stays within budget returns its staged entries unchanged.
///
/// ## Scratch-reuse contract
///
/// One RowEmitter per worker thread, reused across every row and every
/// (trial, replicate, alpha) lane of a batched build: the heap buffer is
/// allocated once and recycled, so per-emission cost contains no heap
/// allocation.  A RowEmitter holds no row state between calls — emit() is
/// restartable and the engine may be shared across builds sequentially —
/// but it is not thread-safe; threads own their engines.
#include <vector>

#include "core/types.hpp"
#include "mcmc/csr_arena.hpp"

namespace mcmi {

/// One unit of a group emission: a (trial, replicate, alpha) lane of a
/// batched build that shares the group's touched set but owns its
/// accumulator, averaging factor, column scaling, and arena.
struct EmissionUnit {
  RowArena* arena;                       ///< the unit's append-only storage
  real_t* accum;                         ///< the unit's dense accumulator
  real_t inv_chains;                     ///< 1 / chain count of the unit
  const std::vector<real_t>* inv_diag;   ///< per-column 1 / d_j scaling
  RowSlice* slice;                       ///< out: the emitted row's slice
};

/// Scratch-owning row-emission engine shared by every MCMC builder.  See
/// the file comment for the emission invariant it implements and the
/// scratch-reuse contract.  Construct one per worker thread and reuse it
/// across rows, trials, replicates, and alpha lanes.
class RowEmitter {
 public:
  /// Emit one assembled row into `arena`: scale the accumulated walk sums
  /// to P entries, reset the consumed accumulator slots to exactly 0.0,
  /// apply the truncation threshold (the diagonal is always a candidate),
  /// and cap the row at `budget` entries by the budget-th-largest-|value|
  /// cut with lowest-column ties.
  ///
  /// `touched` must be sorted ascending and cover every nonzero accumulator
  /// slot — a superset is fine: untouched states carry an exact 0.0 and
  /// fall to the threshold filter.  This is what lets the batched builders
  /// stream one shared touched union through many accumulators.
  ///
  /// @param arena      the calling thread's append-only row storage
  /// @param tid        the arena's index, recorded in the returned slice
  /// @param accum      dense accumulator of the row's walk sums; consumed
  ///                   slots are reset to 0.0
  /// @param touched    ascending candidate states covering every nonzero
  ///                   accumulator slot (supersets allowed)
  /// @param row        the row index (its entry bypasses the threshold)
  /// @param inv_chains 1 / chain count: the Monte-Carlo average factor
  /// @param inv_diag   per-column scaling 1 / d_j of the perturbed matrix
  /// @param threshold  drop off-diagonals with |P_ij| at or below this
  /// @param budget     maximum entries the emitted row may keep (>= 1)
  /// @return the emitted row's slice (arena id, offset, length)
  RowSlice emit(RowArena& arena, int tid, real_t* accum,
                const std::vector<index_t>& touched, index_t row,
                real_t inv_chains, const std::vector<real_t>& inv_diag,
                real_t threshold, index_t budget);

  /// Emit one row for a whole group of units sharing `touched` — the
  /// (trial, replicate, alpha) lanes of a batched build — with candidate
  /// pre-ranking shared across the group.  Unit 0 runs the standard
  /// threshold-tracked emit(); its kept columns become the group's *hot
  /// set*, and every later unit derives a one-shot rejection bound from its
  /// own values at those columns (the budget-th largest magnitude over >=
  /// budget candidates is a lower bound on that unit's exact cut, because
  /// widening a candidate set can only raise its budget-th largest).  The
  /// streaming pass then rejects doomed candidates with a single compare
  /// against the fixed bound — no per-candidate heap maintenance — and the
  /// final cut is re-derived exactly from the staged survivors, so every
  /// unit's emitted row is bit-identical to an independent emit() no matter
  /// how poorly the units correlate.  Each unit's slice lands in
  /// `units[u].slice`.
  void emit_group(EmissionUnit* units, index_t n_units, int tid,
                  const std::vector<index_t>& touched, index_t row,
                  real_t threshold, index_t budget);

 private:
  /// Bounded min-heap over the `budget` largest candidate magnitudes of the
  /// row in flight; cleared per emission, capacity recycled across calls.
  std::vector<real_t> heap_;
  /// Group emission scratch: the hot-set columns shared across a group and
  /// the magnitude buffer for the per-unit bound / exact-cut selections.
  std::vector<index_t> hot_;
  std::vector<real_t> mag_;
};

/// Reference emitter: the same emission invariant implemented the
/// pre-engine way (stage every post-threshold candidate, then one
/// `nth_element` over a flat magnitude copy plus an ordered compaction).
/// This is the spec the property tests pin RowEmitter against and the
/// status-quo side of the gated `BM_EmitRow*` benchmark pairs; it is not
/// used by any builder.
///
/// @param arena      the calling thread's append-only row storage
/// @param tid        the arena's index, recorded in the returned slice
/// @param accum      dense accumulator of the row's walk sums; consumed
///                   slots are reset to 0.0
/// @param touched    ascending candidate states covering every nonzero
///                   accumulator slot (supersets allowed)
/// @param row        the row index (its entry bypasses the threshold)
/// @param inv_chains 1 / chain count: the Monte-Carlo average factor
/// @param inv_diag   per-column scaling 1 / d_j of the perturbed matrix
/// @param threshold  drop off-diagonals with |P_ij| at or below this
/// @param budget     maximum entries the emitted row may keep (>= 1)
/// @param scratch    reusable caller scratch for the magnitude copy
/// @return the emitted row's slice (arena id, offset, length)
RowSlice emit_row_reference(RowArena& arena, int tid, real_t* accum,
                            const std::vector<index_t>& touched, index_t row,
                            real_t inv_chains,
                            const std::vector<real_t>& inv_diag,
                            real_t threshold, index_t budget,
                            std::vector<real_t>& scratch);

}  // namespace mcmi
