#include "mcmc/emission.hpp"

#include <algorithm>
#include <cmath>
#include <functional>

namespace mcmi {

namespace {

/// Restore the min-heap property after overwriting the root of a full heap.
inline void sift_down(real_t* heap, index_t size) {
  const real_t value = heap[0];
  index_t hole = 0;
  while (true) {
    index_t child = 2 * hole + 1;
    if (child >= size) break;
    if (child + 1 < size && heap[child + 1] < heap[child]) ++child;
    if (heap[child] >= value) break;
    heap[hole] = heap[child];
    hole = child;
  }
  heap[hole] = value;
}

/// The exact-cut compaction shared by the engine and the reference path:
/// keep the staged entries in [base, base + staged) whose magnitude exceeds
/// `cut`, plus lowest-column ties at `cut` until `budget` entries are kept,
/// preserving the staged (ascending-column) order; shrink the arena to the
/// kept prefix.  `cut` must be the budget-th largest |value| over the row's
/// full candidate set, and every candidate with |value| >= cut must be
/// staged — both are what make the forward pass an exact selection.
void compact_to_budget(RowArena& arena, index_t base, index_t staged,
                       index_t budget, real_t cut) {
  index_t above = 0;
  for (index_t q = 0; q < staged; ++q) {
    above += std::abs(arena.vals[base + q]) > cut ? 1 : 0;
  }
  index_t ties_left = budget - above;  // >= 1: the cut entry itself ties
  index_t kept = 0;
  for (index_t q = 0; q < staged; ++q) {  // q >= kept: forward copy safe
    const real_t av = std::abs(arena.vals[base + q]);
    if (av > cut) {
      // always kept
    } else if (av == cut && ties_left > 0) {
      --ties_left;
    } else {
      continue;
    }
    arena.cols[base + kept] = arena.cols[base + q];
    arena.vals[base + kept] = arena.vals[base + q];
    ++kept;
  }
  arena.cols.resize(static_cast<std::size_t>(base + budget));
  arena.vals.resize(static_cast<std::size_t>(base + budget));
}

}  // namespace

RowSlice RowEmitter::emit(RowArena& arena, int tid, real_t* accum,
                          const std::vector<index_t>& touched, index_t row,
                          real_t inv_chains,
                          const std::vector<real_t>& inv_diag,
                          real_t threshold, index_t budget) {
  const index_t base = static_cast<index_t>(arena.cols.size());

  if (static_cast<index_t>(touched.size()) <= budget) {
    // Touched-count fast path: the row cannot overflow the budget, so the
    // bare threshold-filter loop is the whole emission.
    for (index_t j : touched) {
      const real_t pij = accum[j] * inv_chains * inv_diag[j];
      accum[j] = 0.0;
      if (j != row && std::abs(pij) <= threshold) continue;
      arena.cols.push_back(j);
      arena.vals.push_back(pij);
    }
    return {tid, base, static_cast<index_t>(arena.cols.size()) - base};
  }

  // Threshold-tracked path.  Stage plainly until the budget fills — rows
  // whose post-threshold candidate count stays within budget never pay any
  // tracking — then heapify the staged magnitudes once and stream the rest
  // against the bounded min-heap of the `budget` largest magnitudes seen so
  // far.  The heap minimum only grows toward the final cut, so a candidate
  // strictly below it is rejected with one compare and never staged;
  // candidates at the minimum must be staged (they may be lowest-column
  // ties at the final cut).
  const auto n_touched = static_cast<index_t>(touched.size());
  index_t candidates = 0;
  index_t t = 0;
  for (; t < n_touched && candidates < budget; ++t) {
    const index_t j = touched[static_cast<std::size_t>(t)];
    const real_t pij = accum[j] * inv_chains * inv_diag[j];
    accum[j] = 0.0;
    if (j != row && std::abs(pij) <= threshold) continue;
    ++candidates;
    arena.cols.push_back(j);
    arena.vals.push_back(pij);
  }
  if (t < n_touched) {
    heap_.resize(static_cast<std::size_t>(budget));
    for (index_t q = 0; q < budget; ++q) {
      heap_[static_cast<std::size_t>(q)] = std::abs(arena.vals[base + q]);
    }
    std::make_heap(heap_.begin(), heap_.end(), std::greater<real_t>());
    for (; t < n_touched; ++t) {
      const index_t j = touched[static_cast<std::size_t>(t)];
      const real_t pij = accum[j] * inv_chains * inv_diag[j];
      accum[j] = 0.0;
      const real_t mag = std::abs(pij);
      if (j != row && mag <= threshold) continue;
      ++candidates;
      if (mag < heap_.front()) continue;  // can never survive the cut
      if (mag > heap_.front()) {
        heap_.front() = mag;
        sift_down(heap_.data(), budget);
      }
      arena.cols.push_back(j);
      arena.vals.push_back(pij);
    }
  }
  const index_t staged = static_cast<index_t>(arena.cols.size()) - base;
  if (candidates <= budget) return {tid, base, staged};

  // The heap min is now exactly the budget-th largest |value| over the full
  // candidate set (every rejected candidate was strictly below a bound that
  // never exceeds it), and every candidate >= the cut is staged.
  compact_to_budget(arena, base, staged, budget, heap_.front());
  return {tid, base, budget};
}

void RowEmitter::emit_group(EmissionUnit* units, index_t n_units, int tid,
                            const std::vector<index_t>& touched, index_t row,
                            real_t threshold, index_t budget) {
  // Unit 0 pays the full threshold-tracked emission and donates its kept
  // columns as the group's hot set.
  *units[0].slice =
      emit(*units[0].arena, tid, units[0].accum, touched, row,
           units[0].inv_chains, *units[0].inv_diag, threshold, budget);
  const RowSlice& s0 = *units[0].slice;
  hot_.assign(units[0].arena->cols.begin() + s0.offset,
              units[0].arena->cols.begin() + s0.offset + s0.count);

  for (index_t k = 1; k < n_units; ++k) {
    const EmissionUnit& unit = units[static_cast<std::size_t>(k)];
    RowArena& arena = *unit.arena;
    real_t* accum = unit.accum;
    const real_t inv_chains = unit.inv_chains;
    const std::vector<real_t>& inv_diag = *unit.inv_diag;
    const index_t base = static_cast<index_t>(arena.cols.size());

    if (static_cast<index_t>(touched.size()) <= budget) {
      // Cannot overflow the budget: the bare threshold filter is exact.
      for (index_t j : touched) {
        const real_t pij = accum[j] * inv_chains * inv_diag[j];
        accum[j] = 0.0;
        if (j != row && std::abs(pij) <= threshold) continue;
        arena.cols.push_back(j);
        arena.vals.push_back(pij);
      }
      *unit.slice = {tid, base, static_cast<index_t>(arena.cols.size()) - base};
      continue;
    }

    // Bound pass over the shared hot set: this unit's own values at the
    // columns unit 0 kept.  With at least `budget` candidates among them,
    // their budget-th largest magnitude is a lower bound on this unit's
    // exact cut — a candidate strictly below it can never survive.  Accum
    // slots are only read here; the streaming pass below resets them.
    mag_.clear();
    for (index_t j : hot_) {
      const real_t pij = accum[j] * inv_chains * inv_diag[j];
      const real_t m = std::abs(pij);
      if (j != row && m <= threshold) continue;
      mag_.push_back(m);
    }
    real_t bound = 0.0;
    if (static_cast<index_t>(mag_.size()) >= budget) {
      std::nth_element(mag_.begin(), mag_.begin() + (budget - 1), mag_.end(),
                       std::greater<real_t>());
      bound = mag_[static_cast<std::size_t>(budget - 1)];
    }

    // Streaming pass: one compare against the fixed bound replaces the
    // heap bookkeeping; everything rejected is strictly below the exact
    // cut, so the staged set still contains every survivor and tie.
    index_t candidates = 0;
    for (index_t j : touched) {
      const real_t pij = accum[j] * inv_chains * inv_diag[j];
      accum[j] = 0.0;
      const real_t m = std::abs(pij);
      if (j != row && m <= threshold) continue;
      ++candidates;
      if (m < bound) continue;  // can never survive the cut
      arena.cols.push_back(j);
      arena.vals.push_back(pij);
    }
    const index_t staged = static_cast<index_t>(arena.cols.size()) - base;
    if (candidates <= budget) {
      // No overflow implies bound == 0 (a positive bound needs >= budget
      // hot candidates, all counted above), so nothing was rejected.
      *unit.slice = {tid, base, staged};
      continue;
    }

    // The staged set holds every candidate at or above the exact cut, so
    // the budget-th largest staged magnitude *is* that cut.
    mag_.resize(static_cast<std::size_t>(staged));
    for (index_t q = 0; q < staged; ++q) {
      mag_[static_cast<std::size_t>(q)] = std::abs(arena.vals[base + q]);
    }
    std::nth_element(mag_.begin(), mag_.begin() + (budget - 1), mag_.end(),
                     std::greater<real_t>());
    compact_to_budget(arena, base, staged, budget,
                      mag_[static_cast<std::size_t>(budget - 1)]);
    *unit.slice = {tid, base, budget};
  }
}

RowSlice emit_row_reference(RowArena& arena, int tid, real_t* accum,
                            const std::vector<index_t>& touched, index_t row,
                            real_t inv_chains,
                            const std::vector<real_t>& inv_diag,
                            real_t threshold, index_t budget,
                            std::vector<real_t>& scratch) {
  const index_t base = static_cast<index_t>(arena.cols.size());
  for (index_t j : touched) {
    const real_t pij = accum[j] * inv_chains * inv_diag[j];
    accum[j] = 0.0;
    if (j != row && std::abs(pij) <= threshold) continue;
    arena.cols.push_back(j);
    arena.vals.push_back(pij);
  }
  const index_t count = static_cast<index_t>(arena.cols.size()) - base;
  if (count <= budget) return {tid, base, count};

  // The pre-engine cut: nth_element over a flat copy of the magnitudes
  // (direct double compares), then the shared exact compaction.
  scratch.resize(static_cast<std::size_t>(count));
  for (index_t q = 0; q < count; ++q) {
    scratch[static_cast<std::size_t>(q)] = std::abs(arena.vals[base + q]);
  }
  std::nth_element(scratch.begin(), scratch.begin() + (budget - 1),
                   scratch.end(), std::greater<real_t>());
  compact_to_budget(arena, base, count, budget,
                    scratch[static_cast<std::size_t>(budget - 1)]);
  return {tid, base, budget};
}

}  // namespace mcmi
