#include "nn/tensor.hpp"

namespace mcmi::nn {

Tensor Tensor::matmul(const Tensor& other) const {
  MCMI_CHECK(cols_ == other.rows_, "matmul: inner mismatch " << cols_ << " vs "
                                                             << other.rows_);
  Tensor out(rows_, other.cols_);
#pragma omp parallel for schedule(static) if (rows_ > 64)
  for (index_t i = 0; i < rows_; ++i) {
    for (index_t k = 0; k < cols_; ++k) {
      const real_t aik = (*this)(i, k);
      if (aik == 0.0) continue;
      const real_t* brow = &other.data_[static_cast<std::size_t>(k) * other.cols_];
      real_t* orow = &out.data_[static_cast<std::size_t>(i) * other.cols_];
      for (index_t j = 0; j < other.cols_; ++j) orow[j] += aik * brow[j];
    }
  }
  return out;
}

Tensor Tensor::matmul_transposed(const Tensor& other) const {
  MCMI_CHECK(cols_ == other.cols_,
             "matmul_transposed: inner mismatch " << cols_ << " vs "
                                                  << other.cols_);
  Tensor out(rows_, other.rows_);
#pragma omp parallel for schedule(static) if (rows_ > 64)
  for (index_t i = 0; i < rows_; ++i) {
    for (index_t j = 0; j < other.rows_; ++j) {
      const real_t* arow = &data_[static_cast<std::size_t>(i) * cols_];
      const real_t* brow = &other.data_[static_cast<std::size_t>(j) * cols_];
      real_t sum = 0.0;
      for (index_t k = 0; k < cols_; ++k) sum += arow[k] * brow[k];
      out(i, j) = sum;
    }
  }
  return out;
}

Tensor Tensor::transposed_matmul(const Tensor& other) const {
  MCMI_CHECK(rows_ == other.rows_,
             "transposed_matmul: outer mismatch " << rows_ << " vs "
                                                  << other.rows_);
  Tensor out(cols_, other.cols_);
  for (index_t r = 0; r < rows_; ++r) {
    const real_t* arow = &data_[static_cast<std::size_t>(r) * cols_];
    const real_t* brow = &other.data_[static_cast<std::size_t>(r) * other.cols_];
    for (index_t i = 0; i < cols_; ++i) {
      const real_t ai = arow[i];
      if (ai == 0.0) continue;
      real_t* orow = &out.data_[static_cast<std::size_t>(i) * other.cols_];
      for (index_t j = 0; j < other.cols_; ++j) orow[j] += ai * brow[j];
    }
  }
  return out;
}

void Tensor::add_scaled(const Tensor& other, real_t alpha) {
  MCMI_CHECK(rows_ == other.rows_ && cols_ == other.cols_,
             "add_scaled: shape mismatch");
  for (std::size_t i = 0; i < data_.size(); ++i) {
    data_[i] += alpha * other.data_[i];
  }
}

std::vector<real_t> Tensor::row(index_t i) const {
  MCMI_CHECK(i >= 0 && i < rows_, "row out of range");
  const std::size_t begin = static_cast<std::size_t>(i) * cols_;
  return {data_.begin() + begin, data_.begin() + begin + cols_};
}

void Tensor::set_row(index_t i, const std::vector<real_t>& values) {
  MCMI_CHECK(i >= 0 && i < rows_, "row out of range");
  MCMI_CHECK(static_cast<index_t>(values.size()) == cols_,
             "row width mismatch");
  std::copy(values.begin(), values.end(),
            data_.begin() + static_cast<std::size_t>(i) * cols_);
}

Tensor Tensor::from_row(const std::vector<real_t>& values) {
  Tensor t(1, static_cast<index_t>(values.size()));
  t.data_ = values;
  return t;
}

Tensor Tensor::from_rows(const std::vector<std::vector<real_t>>& rows) {
  MCMI_CHECK(!rows.empty(), "from_rows: empty input");
  Tensor t(static_cast<index_t>(rows.size()),
           static_cast<index_t>(rows.front().size()));
  for (index_t i = 0; i < t.rows(); ++i) t.set_row(i, rows[i]);
  return t;
}

void Tensor::fill_uniform(Xoshiro256& rng, real_t limit) {
  for (real_t& v : data_) v = uniform(rng, -limit, limit);
}

Tensor hconcat(const std::vector<const Tensor*>& parts) {
  MCMI_CHECK(!parts.empty(), "hconcat: no parts");
  const index_t rows = parts.front()->rows();
  index_t cols = 0;
  for (const Tensor* p : parts) {
    MCMI_CHECK(p->rows() == rows, "hconcat: row mismatch");
    cols += p->cols();
  }
  Tensor out(rows, cols);
  for (index_t i = 0; i < rows; ++i) {
    index_t offset = 0;
    for (const Tensor* p : parts) {
      for (index_t j = 0; j < p->cols(); ++j) {
        out(i, offset + j) = (*p)(i, j);
      }
      offset += p->cols();
    }
  }
  return out;
}

}  // namespace mcmi::nn
