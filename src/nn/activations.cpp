#include "nn/activations.hpp"

#include <cmath>

namespace mcmi::nn {

Tensor ReLU::forward(const Tensor& input, bool /*train*/) {
  input_ = input;
  Tensor out = input;
  for (real_t& v : out.data()) v = v > 0.0 ? v : 0.0;
  return out;
}

Tensor ReLU::backward(const Tensor& grad_output) {
  MCMI_CHECK(grad_output.rows() == input_.rows() &&
                 grad_output.cols() == input_.cols(),
             "relu backward: shape mismatch");
  Tensor grad = grad_output;
  for (std::size_t i = 0; i < grad.data().size(); ++i) {
    if (input_.data()[i] <= 0.0) grad.data()[i] = 0.0;
  }
  return grad;
}

real_t Softplus::value(real_t x) {
  // ln(1 + e^x) = max(x, 0) + log1p(e^{-|x|}) avoids overflow either way.
  return std::max(x, 0.0) + std::log1p(std::exp(-std::abs(x)));
}

real_t Softplus::derivative(real_t x) {
  // sigmoid(x), stable in both tails.
  if (x >= 0.0) {
    const real_t e = std::exp(-x);
    return 1.0 / (1.0 + e);
  }
  const real_t e = std::exp(x);
  return e / (1.0 + e);
}

Tensor Softplus::forward(const Tensor& input, bool /*train*/) {
  input_ = input;
  Tensor out = input;
  for (real_t& v : out.data()) v = value(v);
  return out;
}

Tensor Softplus::backward(const Tensor& grad_output) {
  MCMI_CHECK(grad_output.rows() == input_.rows() &&
                 grad_output.cols() == input_.cols(),
             "softplus backward: shape mismatch");
  Tensor grad = grad_output;
  for (std::size_t i = 0; i < grad.data().size(); ++i) {
    grad.data()[i] *= derivative(input_.data()[i]);
  }
  return grad;
}

}  // namespace mcmi::nn
