#pragma once
// Minimal dense tensor for the neural-network stack.
//
// Everything the surrogate needs is rank-2 (batch x features), so Tensor is
// a row-major matrix with the handful of fused operations the layers use.
// All gradients in this library are computed by explicit per-layer backward
// passes over these tensors — no autograd graph, which keeps the code
// auditable and makes exact input gradients (needed by the EI optimiser)
// a by-product of the same code path used for training.

#include <vector>

#include "core/error.hpp"
#include "core/rng.hpp"
#include "core/types.hpp"

namespace mcmi::nn {

class Tensor {
 public:
  Tensor() = default;
  Tensor(index_t rows, index_t cols, real_t fill = 0.0)
      : rows_(rows), cols_(cols),
        data_(static_cast<std::size_t>(rows) * static_cast<std::size_t>(cols),
              fill) {
    MCMI_CHECK(rows >= 0 && cols >= 0, "negative tensor shape");
  }

  [[nodiscard]] index_t rows() const { return rows_; }
  [[nodiscard]] index_t cols() const { return cols_; }
  [[nodiscard]] std::size_t size() const { return data_.size(); }
  [[nodiscard]] bool empty() const { return data_.empty(); }

  real_t& operator()(index_t i, index_t j) {
    return data_[static_cast<std::size_t>(i) * cols_ + j];
  }
  real_t operator()(index_t i, index_t j) const {
    return data_[static_cast<std::size_t>(i) * cols_ + j];
  }
  [[nodiscard]] std::vector<real_t>& data() { return data_; }
  [[nodiscard]] const std::vector<real_t>& data() const { return data_; }

  void fill(real_t value) { std::fill(data_.begin(), data_.end(), value); }

  /// this (r x k) times other (k x c).
  [[nodiscard]] Tensor matmul(const Tensor& other) const;
  /// this (r x k) times other^T (c x k).
  [[nodiscard]] Tensor matmul_transposed(const Tensor& other) const;
  /// this^T (k x r) times other (r x c) — the weight-gradient shape.
  [[nodiscard]] Tensor transposed_matmul(const Tensor& other) const;

  /// Elementwise in-place accumulate: this += alpha * other.
  void add_scaled(const Tensor& other, real_t alpha = 1.0);

  /// One row as a vector copy.
  [[nodiscard]] std::vector<real_t> row(index_t i) const;
  /// Overwrite one row.
  void set_row(index_t i, const std::vector<real_t>& values);

  /// Build a 1 x n tensor from a vector.
  static Tensor from_row(const std::vector<real_t>& values);
  /// Stack rows into a (v.size() x n) tensor.
  static Tensor from_rows(const std::vector<std::vector<real_t>>& rows);

  /// Fill with uniform samples in [-limit, limit].
  void fill_uniform(Xoshiro256& rng, real_t limit);

 private:
  index_t rows_ = 0;
  index_t cols_ = 0;
  std::vector<real_t> data_;
};

/// Horizontal concatenation [a | b | ...] of equal-row-count tensors.
Tensor hconcat(const std::vector<const Tensor*>& parts);

}  // namespace mcmi::nn
