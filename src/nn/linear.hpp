#pragma once
// Fully connected (dense) layer.

#include "nn/layer.hpp"

namespace mcmi::nn {

/// y = x W + b with W (in x out) and bias b (1 x out).
/// Kaiming-uniform initialisation from a deterministic stream.
class Linear final : public Layer {
 public:
  Linear(index_t in_features, index_t out_features, u64 seed);

  Tensor forward(const Tensor& input, bool train) override;
  Tensor backward(const Tensor& grad_output) override;
  std::vector<Parameter*> parameters() override { return {&weight_, &bias_}; }

  [[nodiscard]] index_t in_features() const { return weight_.value.rows(); }
  [[nodiscard]] index_t out_features() const { return weight_.value.cols(); }

 private:
  Parameter weight_;
  Parameter bias_;
  Tensor input_;  // cached for backward
};

}  // namespace mcmi::nn
