#pragma once
// Layer normalisation.
//
// §3.1: "Layer normalisation is applied in both the message passing layers
// and FC stacks to stabilise training and mitigate covariate shift."

#include "nn/layer.hpp"

namespace mcmi::nn {

/// Per-row normalisation over the feature dimension with learnable
/// gain/bias: y = gamma * (x - mean) / sqrt(var + eps) + beta.
class LayerNorm final : public Layer {
 public:
  explicit LayerNorm(index_t features, real_t eps = 1e-5);

  Tensor forward(const Tensor& input, bool train) override;
  Tensor backward(const Tensor& grad_output) override;
  std::vector<Parameter*> parameters() override { return {&gamma_, &beta_}; }

 private:
  Parameter gamma_;
  Parameter beta_;
  real_t eps_;
  Tensor normalized_;          // cached x_hat
  std::vector<real_t> inv_std_;  // cached 1/sqrt(var+eps) per row
};

}  // namespace mcmi::nn
