#include "nn/gradient_check.hpp"

#include <cmath>

namespace mcmi::nn {

namespace {

real_t relative_error(real_t analytic, real_t numeric) {
  const real_t denom = std::max({std::abs(analytic), std::abs(numeric), 1e-8});
  return std::abs(analytic - numeric) / denom;
}

/// Scalar loss L = sum_ij grad_output_ij * forward(input)_ij, whose input
/// gradient is exactly what backward(grad_output) returns.
real_t probe_loss(Layer& layer, const Tensor& input,
                  const Tensor& grad_output) {
  const Tensor out = layer.forward(input, /*train=*/false);
  real_t loss = 0.0;
  for (std::size_t i = 0; i < out.data().size(); ++i) {
    loss += out.data()[i] * grad_output.data()[i];
  }
  return loss;
}

}  // namespace

GradCheckResult check_gradients(Layer& layer, const Tensor& input,
                                const Tensor& grad_output, real_t h) {
  GradCheckResult result;

  for (Parameter* p : layer.parameters()) p->zero_grad();
  layer.forward(input, /*train=*/false);
  const Tensor grad_in = layer.backward(grad_output);

  // Input gradient vs central differences.
  Tensor probe = input;
  for (std::size_t i = 0; i < probe.data().size(); ++i) {
    const real_t orig = probe.data()[i];
    probe.data()[i] = orig + h;
    const real_t plus = probe_loss(layer, probe, grad_output);
    probe.data()[i] = orig - h;
    const real_t minus = probe_loss(layer, probe, grad_output);
    probe.data()[i] = orig;
    const real_t numeric = (plus - minus) / (2.0 * h);
    result.max_input_error = std::max(
        result.max_input_error, relative_error(grad_in.data()[i], numeric));
  }

  // Parameter gradients vs central differences.
  for (Parameter* p : layer.parameters()) {
    for (std::size_t i = 0; i < p->value.data().size(); ++i) {
      const real_t orig = p->value.data()[i];
      p->value.data()[i] = orig + h;
      const real_t plus = probe_loss(layer, input, grad_output);
      p->value.data()[i] = orig - h;
      const real_t minus = probe_loss(layer, input, grad_output);
      p->value.data()[i] = orig;
      const real_t numeric = (plus - minus) / (2.0 * h);
      result.max_param_error =
          std::max(result.max_param_error,
                   relative_error(p->grad.data()[i], numeric));
    }
  }
  return result;
}

real_t check_scalar_gradient(
    const std::function<real_t(const std::vector<real_t>&)>& f,
    const std::vector<real_t>& x, const std::vector<real_t>& analytic_grad,
    real_t h) {
  real_t max_err = 0.0;
  std::vector<real_t> probe = x;
  for (std::size_t i = 0; i < x.size(); ++i) {
    probe[i] = x[i] + h;
    const real_t plus = f(probe);
    probe[i] = x[i] - h;
    const real_t minus = f(probe);
    probe[i] = x[i];
    const real_t numeric = (plus - minus) / (2.0 * h);
    max_err = std::max(max_err, relative_error(analytic_grad[i], numeric));
  }
  return max_err;
}

}  // namespace mcmi::nn
