#pragma once
// Multi-layer perceptron: the FC stacks of the surrogate model.
//
// Each hidden block is Linear -> LayerNorm -> ReLU (-> Dropout), matching
// §3.1; the output block is Linear only.

#include <memory>

#include "nn/activations.hpp"
#include "nn/dropout.hpp"
#include "nn/layer.hpp"
#include "nn/layernorm.hpp"
#include "nn/linear.hpp"

namespace mcmi::nn {

struct MlpConfig {
  index_t in_features = 1;
  index_t hidden = 16;
  index_t hidden_layers = 1;  ///< number of hidden blocks
  index_t out_features = 16;
  real_t dropout = 0.0;
  bool layer_norm = true;
  bool final_activation = false;  ///< append ReLU after the output layer
};

/// Sequential MLP with the paper's hidden-block structure.
class Mlp final : public Layer {
 public:
  Mlp(const MlpConfig& config, u64 seed);

  Tensor forward(const Tensor& input, bool train) override;
  Tensor backward(const Tensor& grad_output) override;
  std::vector<Parameter*> parameters() override;

  [[nodiscard]] index_t out_features() const { return out_features_; }

 private:
  std::vector<std::unique_ptr<Layer>> layers_;
  index_t out_features_ = 0;
};

}  // namespace mcmi::nn
