#include "nn/adam.hpp"

#include <cmath>

namespace mcmi::nn {

Adam::Adam(std::vector<Parameter*> parameters, AdamConfig config)
    : params_(std::move(parameters)), config_(config) {
  m_.reserve(params_.size());
  v_.reserve(params_.size());
  for (const Parameter* p : params_) {
    m_.emplace_back(p->value.rows(), p->value.cols());
    v_.emplace_back(p->value.rows(), p->value.cols());
  }
}

void Adam::step() {
  ++t_;
  const real_t bc1 = 1.0 - std::pow(config_.beta1, static_cast<real_t>(t_));
  const real_t bc2 = 1.0 - std::pow(config_.beta2, static_cast<real_t>(t_));
  for (std::size_t k = 0; k < params_.size(); ++k) {
    Parameter& p = *params_[k];
    auto& value = p.value.data();
    auto& grad = p.grad.data();
    auto& m = m_[k].data();
    auto& v = v_[k].data();
    for (std::size_t i = 0; i < value.size(); ++i) {
      const real_t g = grad[i] + config_.weight_decay * value[i];
      m[i] = config_.beta1 * m[i] + (1.0 - config_.beta1) * g;
      v[i] = config_.beta2 * v[i] + (1.0 - config_.beta2) * g * g;
      const real_t mhat = m[i] / bc1;
      const real_t vhat = v[i] / bc2;
      value[i] -= config_.learning_rate * mhat / (std::sqrt(vhat) + config_.eps);
      grad[i] = 0.0;
    }
  }
}

void Adam::zero_grad() {
  for (Parameter* p : params_) p->zero_grad();
}

}  // namespace mcmi::nn
