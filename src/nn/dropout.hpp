#pragma once
// Inverted dropout.
//
// §3.1 applies dropout in the combined FC stack.  Masks are drawn from a
// stream keyed by (seed, forward-call counter), so training runs are
// reproducible at any thread count.

#include "nn/layer.hpp"

namespace mcmi::nn {

class Dropout final : public Layer {
 public:
  explicit Dropout(real_t rate, u64 seed);

  Tensor forward(const Tensor& input, bool train) override;
  Tensor backward(const Tensor& grad_output) override;

  [[nodiscard]] real_t rate() const { return rate_; }

 private:
  real_t rate_;
  u64 seed_;
  u64 calls_ = 0;
  Tensor mask_;  // scaled keep mask used by the last training forward
  bool last_train_ = false;
};

}  // namespace mcmi::nn
