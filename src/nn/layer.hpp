#pragma once
// Layer and parameter abstractions.
//
// Each layer implements an explicit forward/backward pair.  backward()
// receives dL/d(output), accumulates dL/d(parameters) into Parameter::grad,
// and returns dL/d(input) — so stacking layers gives both training
// gradients and the exact input gradients the EI maximiser needs (§3.2).

#include <memory>
#include <string>
#include <vector>

#include "nn/tensor.hpp"

namespace mcmi::nn {

/// A trainable tensor with its accumulated gradient.
struct Parameter {
  std::string name;
  Tensor value;
  Tensor grad;

  Parameter(std::string n, Tensor v)
      : name(std::move(n)), value(std::move(v)),
        grad(value.rows(), value.cols()) {}

  void zero_grad() { grad.fill(0.0); }
};

/// Abstract differentiable layer (batch-first: inputs are batch x features).
class Layer {
 public:
  virtual ~Layer() = default;

  /// Compute outputs; `train` enables stochastic behaviour (dropout).
  /// The layer caches whatever backward() needs.
  virtual Tensor forward(const Tensor& input, bool train) = 0;

  /// Propagate: accumulate parameter gradients, return input gradient.
  /// Must be called after forward() with a matching batch.
  virtual Tensor backward(const Tensor& grad_output) = 0;

  /// All trainable parameters (empty for stateless layers).
  virtual std::vector<Parameter*> parameters() { return {}; }
};

/// Collect parameters from several layers.
inline std::vector<Parameter*> collect_parameters(
    const std::vector<Layer*>& layers) {
  std::vector<Parameter*> out;
  for (Layer* l : layers) {
    for (Parameter* p : l->parameters()) out.push_back(p);
  }
  return out;
}

}  // namespace mcmi::nn
