#include "nn/mlp.hpp"

namespace mcmi::nn {

Mlp::Mlp(const MlpConfig& c, u64 seed) : out_features_(c.out_features) {
  MCMI_CHECK(c.hidden_layers >= 0, "negative layer count");
  index_t width = c.in_features;
  for (index_t l = 0; l < c.hidden_layers; ++l) {
    layers_.push_back(
        std::make_unique<Linear>(width, c.hidden, mix64(seed + 31 * l)));
    if (c.layer_norm) layers_.push_back(std::make_unique<LayerNorm>(c.hidden));
    layers_.push_back(std::make_unique<ReLU>());
    if (c.dropout > 0.0) {
      layers_.push_back(
          std::make_unique<Dropout>(c.dropout, mix64(seed + 977 * l)));
    }
    width = c.hidden;
  }
  layers_.push_back(
      std::make_unique<Linear>(width, c.out_features, mix64(seed + 7777)));
  if (c.final_activation) layers_.push_back(std::make_unique<ReLU>());
}

Tensor Mlp::forward(const Tensor& input, bool train) {
  Tensor x = input;
  for (auto& layer : layers_) x = layer->forward(x, train);
  return x;
}

Tensor Mlp::backward(const Tensor& grad_output) {
  Tensor g = grad_output;
  for (auto it = layers_.rbegin(); it != layers_.rend(); ++it) {
    g = (*it)->backward(g);
  }
  return g;
}

std::vector<Parameter*> Mlp::parameters() {
  std::vector<Parameter*> out;
  for (auto& layer : layers_) {
    for (Parameter* p : layer->parameters()) out.push_back(p);
  }
  return out;
}

}  // namespace mcmi::nn
