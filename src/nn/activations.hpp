#pragma once
// Elementwise activations: ReLU and Softplus.
//
// Equation (1) of the paper: the mean head applies ReLU, the standard-
// deviation head applies the softplus transform ln(1 + e^z) so sigma stays
// strictly positive.

#include "nn/layer.hpp"

namespace mcmi::nn {

/// max(0, x).
class ReLU final : public Layer {
 public:
  Tensor forward(const Tensor& input, bool train) override;
  Tensor backward(const Tensor& grad_output) override;

 private:
  Tensor input_;
};

/// ln(1 + e^x), numerically stable for large |x|.
class Softplus final : public Layer {
 public:
  Tensor forward(const Tensor& input, bool train) override;
  Tensor backward(const Tensor& grad_output) override;

  /// Scalar helpers shared with the surrogate heads.
  static real_t value(real_t x);
  static real_t derivative(real_t x);  ///< sigmoid(x)

 private:
  Tensor input_;
};

}  // namespace mcmi::nn
