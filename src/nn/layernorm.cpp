#include "nn/layernorm.hpp"

#include <cmath>

namespace mcmi::nn {

LayerNorm::LayerNorm(index_t features, real_t eps)
    : gamma_("layernorm.gamma", Tensor(1, features, 1.0)),
      beta_("layernorm.beta", Tensor(1, features, 0.0)),
      eps_(eps) {
  MCMI_CHECK(features > 0, "empty layer norm");
}

Tensor LayerNorm::forward(const Tensor& input, bool /*train*/) {
  const index_t d = gamma_.value.cols();
  MCMI_CHECK(input.cols() == d, "layernorm: width mismatch");
  const index_t batch = input.rows();
  normalized_ = Tensor(batch, d);
  inv_std_.assign(static_cast<std::size_t>(batch), 0.0);
  Tensor out(batch, d);
  for (index_t i = 0; i < batch; ++i) {
    real_t mean = 0.0;
    for (index_t j = 0; j < d; ++j) mean += input(i, j);
    mean /= static_cast<real_t>(d);
    real_t var = 0.0;
    for (index_t j = 0; j < d; ++j) {
      const real_t c = input(i, j) - mean;
      var += c * c;
    }
    var /= static_cast<real_t>(d);
    const real_t inv_std = 1.0 / std::sqrt(var + eps_);
    inv_std_[i] = inv_std;
    for (index_t j = 0; j < d; ++j) {
      const real_t xhat = (input(i, j) - mean) * inv_std;
      normalized_(i, j) = xhat;
      out(i, j) = gamma_.value(0, j) * xhat + beta_.value(0, j);
    }
  }
  return out;
}

Tensor LayerNorm::backward(const Tensor& grad_output) {
  const index_t batch = normalized_.rows();
  const index_t d = normalized_.cols();
  MCMI_CHECK(grad_output.rows() == batch && grad_output.cols() == d,
             "layernorm backward: shape mismatch");
  Tensor grad_in(batch, d);
  for (index_t i = 0; i < batch; ++i) {
    // dgamma += g * xhat ; dbeta += g.
    real_t sum_gx = 0.0;   // sum_j gamma_j g_ij
    real_t sum_gxx = 0.0;  // sum_j gamma_j g_ij xhat_ij
    for (index_t j = 0; j < d; ++j) {
      const real_t g = grad_output(i, j);
      gamma_.grad(0, j) += g * normalized_(i, j);
      beta_.grad(0, j) += g;
      const real_t gg = gamma_.value(0, j) * g;
      sum_gx += gg;
      sum_gxx += gg * normalized_(i, j);
    }
    const real_t inv_d = 1.0 / static_cast<real_t>(d);
    for (index_t j = 0; j < d; ++j) {
      const real_t gg = gamma_.value(0, j) * grad_output(i, j);
      // Standard layer-norm input gradient:
      // dx = inv_std * (gg - mean(gg) - xhat * mean(gg * xhat)).
      grad_in(i, j) = inv_std_[i] *
                      (gg - sum_gx * inv_d - normalized_(i, j) * sum_gxx * inv_d);
    }
  }
  return grad_in;
}

}  // namespace mcmi::nn
