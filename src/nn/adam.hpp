#pragma once
// Adam optimiser (Kingma & Ba, 2015) with L2 weight decay — the optimiser
// used to train the graph neural surrogate (§4.4).

#include <vector>

#include "nn/layer.hpp"

namespace mcmi::nn {

struct AdamConfig {
  real_t learning_rate = 1e-3;
  real_t beta1 = 0.9;
  real_t beta2 = 0.999;
  real_t eps = 1e-8;
  real_t weight_decay = 0.0;  ///< L2 penalty added to gradients
};

class Adam {
 public:
  Adam(std::vector<Parameter*> parameters, AdamConfig config = {});

  /// Apply one update from the accumulated gradients, then zero them.
  void step();

  /// Zero all gradients without stepping.
  void zero_grad();

  [[nodiscard]] const AdamConfig& config() const { return config_; }
  void set_learning_rate(real_t lr) { config_.learning_rate = lr; }

 private:
  std::vector<Parameter*> params_;
  AdamConfig config_;
  std::vector<Tensor> m_;  // first moments
  std::vector<Tensor> v_;  // second moments
  index_t t_ = 0;
};

}  // namespace mcmi::nn
