#pragma once
// Central-difference gradient checking — used by the test suite to verify
// every layer's backward pass against its forward pass.

#include <functional>

#include "nn/layer.hpp"

namespace mcmi::nn {

/// Maximum relative error between the analytic input gradient of `layer`
/// and central differences, for a given input and upstream gradient.
/// Also checks parameter gradients.  `h` is the finite-difference step.
struct GradCheckResult {
  real_t max_input_error = 0.0;
  real_t max_param_error = 0.0;
};

GradCheckResult check_gradients(Layer& layer, const Tensor& input,
                                const Tensor& grad_output, real_t h = 1e-5);

/// Check the gradient of a scalar function f(x) against central differences.
real_t check_scalar_gradient(
    const std::function<real_t(const std::vector<real_t>&)>& f,
    const std::vector<real_t>& x, const std::vector<real_t>& analytic_grad,
    real_t h = 1e-6);

}  // namespace mcmi::nn
