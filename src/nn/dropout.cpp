#include "nn/dropout.hpp"

namespace mcmi::nn {

Dropout::Dropout(real_t rate, u64 seed) : rate_(rate), seed_(seed) {
  MCMI_CHECK(rate >= 0.0 && rate < 1.0, "dropout rate must be in [0,1)");
}

Tensor Dropout::forward(const Tensor& input, bool train) {
  last_train_ = train && rate_ > 0.0;
  if (!last_train_) return input;
  Xoshiro256 rng = make_stream(seed_, 0xD0, calls_++);
  const real_t keep = 1.0 - rate_;
  const real_t scale = 1.0 / keep;
  mask_ = Tensor(input.rows(), input.cols());
  Tensor out = input;
  for (std::size_t i = 0; i < out.data().size(); ++i) {
    const real_t m = uniform01(rng) < keep ? scale : 0.0;
    mask_.data()[i] = m;
    out.data()[i] *= m;
  }
  return out;
}

Tensor Dropout::backward(const Tensor& grad_output) {
  if (!last_train_) return grad_output;
  MCMI_CHECK(grad_output.rows() == mask_.rows() &&
                 grad_output.cols() == mask_.cols(),
             "dropout backward: shape mismatch");
  Tensor grad = grad_output;
  for (std::size_t i = 0; i < grad.data().size(); ++i) {
    grad.data()[i] *= mask_.data()[i];
  }
  return grad;
}

}  // namespace mcmi::nn
