#include "nn/linear.hpp"

#include <cmath>

namespace mcmi::nn {

Linear::Linear(index_t in_features, index_t out_features, u64 seed)
    : weight_("linear.weight", Tensor(in_features, out_features)),
      bias_("linear.bias", Tensor(1, out_features)) {
  MCMI_CHECK(in_features > 0 && out_features > 0, "empty linear layer");
  // Kaiming-uniform fan-in initialisation (matches the ReLU activations
  // used throughout the surrogate).
  Xoshiro256 rng = make_stream(seed, 0x11);
  const real_t limit = std::sqrt(6.0 / static_cast<real_t>(in_features));
  weight_.value.fill_uniform(rng, limit);
  bias_.value.fill(0.0);
}

Tensor Linear::forward(const Tensor& input, bool /*train*/) {
  MCMI_CHECK(input.cols() == weight_.value.rows(),
             "linear: input width " << input.cols() << " != in_features "
                                    << weight_.value.rows());
  input_ = input;
  Tensor out = input.matmul(weight_.value);
  for (index_t i = 0; i < out.rows(); ++i) {
    for (index_t j = 0; j < out.cols(); ++j) {
      out(i, j) += bias_.value(0, j);
    }
  }
  return out;
}

Tensor Linear::backward(const Tensor& grad_output) {
  MCMI_CHECK(grad_output.rows() == input_.rows(),
             "linear backward: batch mismatch");
  // dW += x^T g, db += column sums of g, dx = g W^T.
  weight_.grad.add_scaled(input_.transposed_matmul(grad_output));
  for (index_t i = 0; i < grad_output.rows(); ++i) {
    for (index_t j = 0; j < grad_output.cols(); ++j) {
      bias_.grad(0, j) += grad_output(i, j);
    }
  }
  return grad_output.matmul_transposed(weight_.value);
}

}  // namespace mcmi::nn
