#include "core/parallel.hpp"

#include <omp.h>

namespace mcmi {

int max_threads() { return omp_get_max_threads(); }

int thread_id() { return omp_get_thread_num(); }

void parallel_for(index_t begin, index_t end,
                  const std::function<void(index_t)>& body, index_t grain) {
  if (end <= begin) return;
#pragma omp parallel for schedule(dynamic, grain)
  for (index_t i = begin; i < end; ++i) {
    body(i);
  }
}

}  // namespace mcmi
