#include "core/parallel.hpp"

#ifdef _OPENMP
#include <omp.h>
#endif

namespace mcmi {

#ifdef _OPENMP
int max_threads() { return omp_get_max_threads(); }

int thread_id() { return omp_get_thread_num(); }
#else
int max_threads() { return 1; }

int thread_id() { return 0; }
#endif

void parallel_for(index_t begin, index_t end,
                  const std::function<void(index_t)>& body, index_t grain) {
  if (end <= begin) return;
  (void)grain;  // only consumed by the omp pragma

#pragma omp parallel for schedule(dynamic, grain)
  for (index_t i = begin; i < end; ++i) {
    body(i);
  }
}

}  // namespace mcmi
