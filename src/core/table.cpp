#include "core/table.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "core/error.hpp"

namespace mcmi {

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {
  MCMI_CHECK(!header_.empty(), "table needs at least one column");
}

void TextTable::add_row(std::vector<std::string> cells) {
  MCMI_CHECK(cells.size() == header_.size(),
             "row width " << cells.size() << " != header width "
                          << header_.size());
  rows_.push_back(std::move(cells));
}

std::string TextTable::fmt(real_t value, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << value;
  return os.str();
}

std::string TextTable::sci(real_t value, int precision) {
  std::ostringstream os;
  os << std::scientific << std::setprecision(precision) << value;
  return os.str();
}

std::string TextTable::fmt(index_t value) { return std::to_string(value); }

void TextTable::print(std::ostream& os) const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << std::left << std::setw(static_cast<int>(width[c]) + 2) << row[c];
    }
    os << '\n';
  };
  print_row(header_);
  std::size_t total = 0;
  for (auto w : width) total += w + 2;
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) print_row(row);
}

void TextTable::write_csv(const std::string& path) const {
  std::ofstream out(path);
  MCMI_CHECK(out.good(), "cannot open " << path << " for writing");
  auto escape = [](const std::string& s) {
    if (s.find_first_of(",\"\n") == std::string::npos) return s;
    std::string q = "\"";
    for (char ch : s) {
      if (ch == '"') q += "\"\"";
      else q += ch;
    }
    return q + "\"";
  };
  auto write_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c > 0) out << ',';
      out << escape(row[c]);
    }
    out << '\n';
  };
  write_row(header_);
  for (const auto& row : rows_) write_row(row);
}

}  // namespace mcmi
