#pragma once
// Streaming 64-bit content hashing.
//
// The serving layer addresses cached artifacts by the *content* of a matrix
// (structure and value bits), so the hash must be a pure function of the
// data — never of addresses, capacities, or insertion order.  Hash64 chains
// SplitMix64 over the fed words; it is not cryptographic, but 64 bits of
// well-mixed state make accidental collisions negligible for store-sized
// populations, and the store verifies content on every hit anyway (see
// serve/artifact_store.hpp), so a collision costs a cache miss, not a wrong
// answer.

#include <cstring>

#include "core/rng.hpp"
#include "core/types.hpp"

namespace mcmi {

/// Streaming SplitMix64-chained hasher over 64-bit words.
class Hash64 {
 public:
  explicit Hash64(u64 seed = 0) : state_(mix64(seed ^ kDomain)) {}

  /// Fold one word into the state.
  void update(u64 word) { state_ = mix64(state_ ^ word); }

  /// Fold a double by bit pattern (distinguishes -0.0 from 0.0 and every
  /// NaN payload — required for the "same content" contract of the store).
  void update_bits(real_t value) {
    u64 bits;
    std::memcpy(&bits, &value, sizeof(bits));
    update(bits);
  }

  /// Fold a signed index array, length-prefixed so adjacent arrays cannot
  /// alias each other's boundaries.
  void update_array(const index_t* data, std::size_t count) {
    update(static_cast<u64>(count));
    for (std::size_t i = 0; i < count; ++i) {
      update(static_cast<u64>(data[i]));
    }
  }

  /// Fold a real array by bit pattern, length-prefixed.
  void update_array(const real_t* data, std::size_t count) {
    update(static_cast<u64>(count));
    for (std::size_t i = 0; i < count; ++i) update_bits(data[i]);
  }

  /// The digest of everything fed so far (does not consume the state).
  [[nodiscard]] u64 digest() const { return mix64(state_); }

 private:
  static constexpr u64 kDomain = 0xa0761d6478bd642fULL;
  u64 state_;
};

}  // namespace mcmi
