#pragma once
// Error handling: a single exception type plus check macros.
//
// Numerical libraries need precise failure messages (which matrix, which
// dimension) far more than elaborate exception hierarchies, so everything
// throws mcmi::Error with a formatted what() string.

#include <sstream>
#include <stdexcept>
#include <string>

namespace mcmi {

/// Exception thrown by all mcmi precondition/state checks.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {

[[noreturn]] inline void throw_error(const char* file, int line,
                                     const char* expr,
                                     const std::string& message) {
  std::ostringstream os;
  os << file << ":" << line << ": check failed: " << expr;
  if (!message.empty()) os << " — " << message;
  throw Error(os.str());
}

}  // namespace detail
}  // namespace mcmi

/// Precondition check that is always active (also in Release builds).
/// Usage: MCMI_CHECK(n > 0, "matrix dimension must be positive, got " << n);
#define MCMI_CHECK(expr, ...)                                              \
  do {                                                                     \
    if (!(expr)) {                                                         \
      std::ostringstream mcmi_check_os_;                                   \
      mcmi_check_os_ << "" __VA_ARGS__;                                    \
      ::mcmi::detail::throw_error(__FILE__, __LINE__, #expr,               \
                                  mcmi_check_os_.str());                   \
    }                                                                      \
  } while (false)

/// Unconditional failure with message.
#define MCMI_FAIL(...) MCMI_CHECK(false, __VA_ARGS__)
