#pragma once
// Shared-memory parallel helpers.
//
// The paper runs the MCMC preconditioner as a hybrid MPI+OpenMP code (2 ranks
// x 4 threads on a single node).  No MPI runtime is available here, so the
// same decomposition is modelled by ChainPartition: work items (Markov
// chains, matrix rows) are split into `ranks` contiguous blocks, each block
// processed by OpenMP threads.  Because every chain draws from an RNG stream
// keyed by its global index, the partitioning — and thread scheduling inside
// it — never changes the sampled values, only who computes them.

#include <algorithm>
#include <functional>

#include "core/error.hpp"
#include "core/types.hpp"

namespace mcmi {

/// Number of OpenMP threads the process will use.
int max_threads();

/// Index of the calling thread within the current parallel region
/// (0 outside any region).
int thread_id();

/// Run body(i) for i in [begin, end) with OpenMP dynamic scheduling.
/// `grain` controls the chunk size handed to each thread.
void parallel_for(index_t begin, index_t end,
                  const std::function<void(index_t)>& body,
                  index_t grain = 1);

/// Rank-like decomposition of a 1-D range, mirroring the paper's
/// 2-rank MPI layout on one node.
struct ChainPartition {
  index_t total = 0;  ///< total number of work items
  index_t ranks = 1;  ///< number of rank-like blocks

  ChainPartition(index_t total_items, index_t num_ranks)
      : total(total_items), ranks(num_ranks) {
    MCMI_CHECK(total_items >= 0, "negative work count");
    MCMI_CHECK(num_ranks >= 1, "need at least one rank");
  }

  /// First item owned by `rank`.
  [[nodiscard]] index_t begin(index_t rank) const {
    return rank * (total / ranks) + std::min(rank, total % ranks);
  }
  /// One past the last item owned by `rank`.
  [[nodiscard]] index_t end(index_t rank) const { return begin(rank + 1); }
  /// Number of items owned by `rank`.
  [[nodiscard]] index_t size(index_t rank) const {
    return end(rank) - begin(rank);
  }
};

}  // namespace mcmi
