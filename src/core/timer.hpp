#pragma once
// Wall-clock timing for experiment harnesses.

#include <chrono>

#include "core/types.hpp"

namespace mcmi {

/// Monotonic wall-clock timer.  start() on construction; seconds() reads the
/// elapsed time without stopping.
class WallTimer {
 public:
  WallTimer() : start_(clock::now()) {}

  void reset() { start_ = clock::now(); }

  /// Elapsed seconds since construction or last reset().
  [[nodiscard]] real_t seconds() const {
    return std::chrono::duration<real_t>(clock::now() - start_).count();
  }

  /// Elapsed milliseconds.
  [[nodiscard]] real_t millis() const { return seconds() * 1e3; }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

}  // namespace mcmi
