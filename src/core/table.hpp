#pragma once
// Text tables and CSV output for the benchmark harnesses.
//
// Every bench binary regenerating one of the paper's tables/figures prints an
// aligned text table (for eyeballing) and can mirror the same rows to a CSV
// file for downstream plotting.

#include <fstream>
#include <iosfwd>
#include <string>
#include <vector>

#include "core/types.hpp"

namespace mcmi {

/// Column-aligned text table with an optional CSV mirror.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  /// Append one row; the number of cells must match the header width.
  void add_row(std::vector<std::string> cells);

  /// Convenience: format a real with fixed precision.
  static std::string fmt(real_t value, int precision = 4);
  /// Convenience: format a real in scientific notation (as Table 1 does for
  /// condition numbers).
  static std::string sci(real_t value, int precision = 1);
  static std::string fmt(index_t value);
  /// Disambiguates 64-bit counters (e.g. McmcBuildInfo::total_transitions)
  /// that would otherwise convert equally well to real_t and index_t.
  static std::string fmt(long long value) {
    return fmt(static_cast<index_t>(value));
  }

  /// Render the table with aligned columns.
  void print(std::ostream& os) const;

  /// Write the table as CSV.
  void write_csv(const std::string& path) const;

  [[nodiscard]] index_t rows() const {
    return static_cast<index_t>(rows_.size());
  }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace mcmi
