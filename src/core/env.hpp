#pragma once
// Environment-variable configuration used by benches and examples.
//
// Benches default to sizes that finish quickly on a laptop; setting
// MCMI_FULL=1 switches to the paper-scale configuration, and individual
// knobs (replicates, epochs, ...) can be overridden per variable.

#include <string>

#include "core/types.hpp"

namespace mcmi {

/// Read an integer environment variable, returning `fallback` when the
/// variable is unset or unparsable.
index_t env_int(const char* name, index_t fallback);

/// Read a floating-point environment variable.
real_t env_real(const char* name, real_t fallback);

/// Read a boolean environment variable; "1", "true", "yes", "on" (any case)
/// count as true.
bool env_flag(const char* name, bool fallback);

/// Read a string environment variable.
std::string env_string(const char* name, const std::string& fallback);

/// True when MCMI_FULL=1: run experiments at paper scale.
bool full_scale();

}  // namespace mcmi
