#pragma once
// Structured outcome taxonomy shared by the Krylov solvers, the MCMC
// builders and the solve orchestrator.
//
// Every terminal state a solve or a preconditioner build can reach has a
// name here; layers report *why* they stopped instead of a bare boolean.
// The orchestrator's fallback ladder keys its retry/degrade decisions on
// these values, so additions must keep the existing enumerators stable.

namespace mcmi {

/// Terminal state of a Krylov solve.
enum class SolveStatus {
  kConverged,         ///< relative preconditioned residual below tolerance
  kMaxIterations,     ///< iteration budget exhausted without convergence
  kBreakdown,         ///< exact breakdown (zero rho / omega / pivot)
  kStagnation,        ///< no residual progress over the stagnation window
  kDiverged,          ///< residual grows without bound / lost definiteness
  kNonFinite,         ///< NaN or Inf entered the iteration
  kDeadlineExceeded,  ///< cooperative deadline passed mid-solve
  kCancelled,         ///< cooperative cancellation requested
  kRejected,          ///< shed at the service boundary; the solve never ran
};

/// Terminal state of a preconditioner build.
enum class BuildStatus {
  kBuilt,             ///< preconditioner assembled and usable
  kDivergentKernel,   ///< MCMC walk kernel has ||B|| >= 1 (garbage P)
  kZeroPivot,         ///< factorisation breakdown (zero diagonal / pivot)
  kDeadlineExceeded,  ///< build abandoned: deadline passed
  kCancelled,         ///< build abandoned: cancellation requested
  kInjectedFault,     ///< failed by the fault-injection harness
};

inline const char* to_string(SolveStatus s) {
  switch (s) {
    case SolveStatus::kConverged: return "converged";
    case SolveStatus::kMaxIterations: return "max_iterations";
    case SolveStatus::kBreakdown: return "breakdown";
    case SolveStatus::kStagnation: return "stagnation";
    case SolveStatus::kDiverged: return "diverged";
    case SolveStatus::kNonFinite: return "non_finite";
    case SolveStatus::kDeadlineExceeded: return "deadline_exceeded";
    case SolveStatus::kCancelled: return "cancelled";
    case SolveStatus::kRejected: return "rejected";
  }
  return "unknown";
}

inline const char* to_string(BuildStatus s) {
  switch (s) {
    case BuildStatus::kBuilt: return "built";
    case BuildStatus::kDivergentKernel: return "divergent_kernel";
    case BuildStatus::kZeroPivot: return "zero_pivot";
    case BuildStatus::kDeadlineExceeded: return "deadline_exceeded";
    case BuildStatus::kCancelled: return "cancelled";
    case BuildStatus::kInjectedFault: return "injected_fault";
  }
  return "unknown";
}

/// True when the solve stopped because of the cooperative budget rather
/// than a numerical event — the orchestrator must not fall further down
/// the ladder in that case.
inline bool is_budget_stop(SolveStatus s) {
  return s == SolveStatus::kDeadlineExceeded || s == SolveStatus::kCancelled;
}

inline bool is_budget_stop(BuildStatus s) {
  return s == BuildStatus::kDeadlineExceeded || s == BuildStatus::kCancelled;
}

/// Cause-aware build-failure taxonomy for the serving layer's circuit
/// breaker: a *transient* failure (budget/cancel/injected fault) may clear
/// on retry after a cooldown, while a *permanent* one (divergent walk
/// kernel, zero pivot) is a property of the matrix and never will.
inline bool is_transient_build_failure(BuildStatus s) {
  return s == BuildStatus::kDeadlineExceeded || s == BuildStatus::kCancelled ||
         s == BuildStatus::kInjectedFault;
}

}  // namespace mcmi
