#pragma once
// Deterministic random number generation.
//
// All stochastic components of the library (MCMC walks, dropout masks, TPE
// sampling, dataset splits) draw from streams created by `make_stream(seed,
// keys...)`.  A stream is keyed by a user seed plus a tuple of "site" indices
// (e.g. row index, chain index, replicate index); the key tuple is hashed with
// SplitMix64 into the state of a Xoshiro256++ engine.  Because the stream
// depends only on the key — never on thread scheduling — every parallel
// experiment is reproducible bit-for-bit at any thread count.

#include <array>
#include <cmath>
#include <limits>

#include "core/types.hpp"

namespace mcmi {

/// SplitMix64: tiny, high-quality 64-bit mixer used for seeding and key
/// hashing (Vigna, 2015).
inline u64 splitmix64(u64& state) {
  u64 z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Hash a single 64-bit value (stateless convenience wrapper).
inline u64 mix64(u64 x) { return splitmix64(x); }

/// Xoshiro256++ engine (Blackman & Vigna).  Satisfies
/// std::uniform_random_bit_generator.
class Xoshiro256 {
 public:
  using result_type = u64;

  explicit Xoshiro256(u64 seed = 0x853c49e6748fea9bULL) { reseed(seed); }

  /// Seed all four state words through SplitMix64 as recommended by the
  /// generator's authors; guarantees a non-zero state.
  void reseed(u64 seed) {
    for (auto& w : s_) w = splitmix64(seed);
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<u64>::max();
  }

  result_type operator()() {
    const u64 result = rotl(s_[0] + s_[3], 23) + s_[0];
    const u64 t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// The four raw state words — the seed for SIMD lane batches
  /// (`Xoshiro256Batch`), which must resume this exact stream.
  [[nodiscard]] const std::array<u64, 4>& state_words() const { return s_; }

 private:
  static constexpr u64 rotl(u64 x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::array<u64, 4> s_{};
};

/// W independent Xoshiro256++ streams in struct-of-arrays layout: one
/// `next()` call fills W draws, advancing every lane with the exact scalar
/// update of `Xoshiro256::operator()` — lane l's sequence is bitwise the
/// sequence of the engine it was seeded from via `set_lane`.  The per-lane
/// state lives in flat arrays (no pointer-chasing through per-lane engine
/// objects), so the compiler can keep it in vector registers and the W
/// updates auto-vectorise: this is the batched RNG tier of the lockstep
/// walk engine (mcmc/batched_build.cpp).
template <int W>
struct Xoshiro256Batch {
  u64 s0[W];
  u64 s1[W];
  u64 s2[W];
  u64 s3[W];

  /// Load lane `lane` with the current state of `rng`; the lane's draws
  /// continue `rng`'s stream bit-for-bit.
  void set_lane(int lane, const Xoshiro256& rng) {
    const std::array<u64, 4>& s = rng.state_words();
    s0[lane] = s[0];
    s1[lane] = s[1];
    s2[lane] = s[2];
    s3[lane] = s[3];
  }

  /// Advance every lane one step and store its draw in `out[lane]`.
  void next(u64* out) {
    for (int l = 0; l < W; ++l) {
      out[l] = rotl64(s0[l] + s3[l], 23) + s0[l];
      const u64 t = s1[l] << 17;
      s2[l] ^= s0[l];
      s3[l] ^= s1[l];
      s1[l] ^= s2[l];
      s0[l] ^= s3[l];
      s2[l] ^= t;
      s3[l] = rotl64(s3[l], 45);
    }
  }

 private:
  static constexpr u64 rotl64(u64 x, int k) {
    return (x << k) | (x >> (64 - k));
  }
};

/// Uniform double in [0, 1) using the top 53 bits.
inline real_t uniform01(Xoshiro256& rng) {
  return static_cast<real_t>(rng() >> 11) * 0x1.0p-53;
}

/// Uniform double in [lo, hi).
inline real_t uniform(Xoshiro256& rng, real_t lo, real_t hi) {
  return lo + (hi - lo) * uniform01(rng);
}

/// Uniform integer in [0, n) without modulo bias (Lemire's method would be
/// overkill here; rejection keeps it simple and exact).
inline u64 uniform_index(Xoshiro256& rng, u64 n) {
  const u64 limit = std::numeric_limits<u64>::max() - std::numeric_limits<u64>::max() % n;
  u64 x;
  do {
    x = rng();
  } while (x >= limit);
  return x % n;
}

/// Standard normal sample via the Marsaglia polar method.  Stateless (no
/// cached spare) so streams keyed by site stay independent of call history
/// parity.
inline real_t normal01(Xoshiro256& rng) {
  while (true) {
    const real_t u = 2.0 * uniform01(rng) - 1.0;
    const real_t v = 2.0 * uniform01(rng) - 1.0;
    const real_t s = u * u + v * v;
    if (s > 0.0 && s < 1.0) {
      return u * std::sqrt(-2.0 * std::log(s) / s);
    }
  }
}

/// Normal sample with given mean and standard deviation.
inline real_t normal(Xoshiro256& rng, real_t mean, real_t stddev) {
  return mean + stddev * normal01(rng);
}

namespace detail {
inline u64 combine_keys(u64 acc) { return acc; }
template <typename... Rest>
u64 combine_keys(u64 acc, u64 key, Rest... rest) {
  // Feed each key through the mixer with a distinct round constant so that
  // (a, b) and (b, a) produce different streams.
  u64 state = acc ^ (key + 0x9e3779b97f4a7c15ULL + (acc << 6) + (acc >> 2));
  return combine_keys(splitmix64(state), static_cast<u64>(rest)...);
}
}  // namespace detail

/// Create an independent random stream keyed by (seed, site indices...).
/// Identical keys always give identical streams; distinct keys give streams
/// that are statistically independent for all practical purposes.
template <typename... Keys>
Xoshiro256 make_stream(u64 seed, Keys... keys) {
  return Xoshiro256(detail::combine_keys(mix64(seed ^ 0x2545f4914f6cdd1dULL),
                                         static_cast<u64>(keys)...));
}

}  // namespace mcmi
