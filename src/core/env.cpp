#include "core/env.hpp"

#include <algorithm>
#include <cstdlib>

namespace mcmi {

namespace {
const char* raw(const char* name) { return std::getenv(name); }
}  // namespace

index_t env_int(const char* name, index_t fallback) {
  const char* v = raw(name);
  if (v == nullptr || *v == '\0') return fallback;
  char* end = nullptr;
  const long long parsed = std::strtoll(v, &end, 10);
  return (end != nullptr && *end == '\0') ? static_cast<index_t>(parsed)
                                          : fallback;
}

real_t env_real(const char* name, real_t fallback) {
  const char* v = raw(name);
  if (v == nullptr || *v == '\0') return fallback;
  char* end = nullptr;
  const double parsed = std::strtod(v, &end);
  return (end != nullptr && *end == '\0') ? static_cast<real_t>(parsed)
                                          : fallback;
}

bool env_flag(const char* name, bool fallback) {
  const char* v = raw(name);
  if (v == nullptr || *v == '\0') return fallback;
  std::string s(v);
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  if (s == "1" || s == "true" || s == "yes" || s == "on") return true;
  if (s == "0" || s == "false" || s == "no" || s == "off") return false;
  return fallback;
}

std::string env_string(const char* name, const std::string& fallback) {
  const char* v = raw(name);
  return (v == nullptr || *v == '\0') ? fallback : std::string(v);
}

bool full_scale() { return env_flag("MCMI_FULL", false); }

}  // namespace mcmi
