#pragma once
// Fundamental scalar and index types shared by every mcmi module.

#include <cstdint>
#include <cstddef>

namespace mcmi {

/// Floating-point type used throughout the numerical kernels.
using real_t = double;

/// Index type for matrix dimensions and nonzero positions.  Signed so that
/// OpenMP canonical loops and reverse iteration are straightforward.
using index_t = std::int64_t;

/// Unsigned 64-bit word used by the counter-based RNG machinery.
using u64 = std::uint64_t;
using u32 = std::uint32_t;

}  // namespace mcmi
