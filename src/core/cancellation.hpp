#pragma once
// Cooperative cancellation and wall-clock deadlines.
//
// A CancelToken is owned by whoever issues the work (the orchestrator, a
// test, a server loop) and observed — never mutated — by the workers: the
// Krylov inner loops and the MCMC row loops poll should_stop() and abandon
// cleanly.  Tokens chain: a per-stage token created with a stage budget
// also reports stop when the request-level parent stops, so one pointer
// threads the whole hierarchy through SolveOptions / McmcOptions.
//
// Polling cost is one relaxed atomic load plus (when a deadline is set)
// one steady_clock read — cheap enough for once-per-iteration checks in
// solvers and once-per-row checks in builders.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <limits>

#include "core/status.hpp"
#include "core/types.hpp"

namespace mcmi {

class CancelToken {
 public:
  using clock = std::chrono::steady_clock;

  /// No deadline; stops only on request_cancel() (or via the parent).
  CancelToken() = default;

  /// Deadline `seconds_from_now` in the future (<= 0 expires immediately).
  explicit CancelToken(real_t seconds_from_now) {
    set_deadline(seconds_from_now);
  }

  CancelToken(const CancelToken&) = delete;
  CancelToken& operator=(const CancelToken&) = delete;

  void set_deadline(real_t seconds_from_now) {
    deadline_ = clock::now() + std::chrono::duration_cast<clock::duration>(
                                   std::chrono::duration<real_t>(
                                       std::max<real_t>(seconds_from_now, 0)));
    has_deadline_ = true;
  }

  void clear_deadline() { has_deadline_ = false; }

  /// Owner-side reuse between requests: clears a previous cancel request
  /// (the deadline, if any, is managed separately via set/clear_deadline).
  void reset() { cancelled_.store(false, std::memory_order_relaxed); }

  /// Observe `parent` as well: should_stop() also fires when the parent
  /// stops.  The parent must outlive this token.
  void chain_to(const CancelToken* parent) { parent_ = parent; }

  /// Thread-safe; flips every observer of this token (and children chained
  /// to it) into the stopped state.
  void request_cancel() { cancelled_.store(true, std::memory_order_relaxed); }

  [[nodiscard]] bool cancel_requested() const {
    if (cancelled_.load(std::memory_order_relaxed)) return true;
    return parent_ != nullptr && parent_->cancel_requested();
  }

  [[nodiscard]] bool deadline_passed() const {
    if (has_deadline_ && clock::now() >= deadline_) return true;
    return parent_ != nullptr && parent_->deadline_passed();
  }

  [[nodiscard]] bool should_stop() const {
    return cancel_requested() || deadline_passed();
  }

  /// Seconds *past* the nearest deadline in the chain: positive once the
  /// deadline has passed, negative (time still remaining) before it, and
  /// -infinity when no deadline is set anywhere in the chain.  The service
  /// watchdog keys its grace window on this — a worker whose token is
  /// overdue by more than the grace is presumed hung and gets cancelled.
  [[nodiscard]] real_t overdue_seconds() const {
    return -remaining_seconds();
  }

  /// Seconds until the nearest deadline in the chain (infinity if none).
  [[nodiscard]] real_t remaining_seconds() const {
    real_t remaining = std::numeric_limits<real_t>::infinity();
    if (has_deadline_) {
      remaining = std::chrono::duration<real_t>(deadline_ - clock::now())
                      .count();
    }
    if (parent_ != nullptr) {
      remaining = std::min(remaining, parent_->remaining_seconds());
    }
    return remaining;
  }

 private:
  std::atomic<bool> cancelled_{false};
  bool has_deadline_ = false;
  clock::time_point deadline_{};
  const CancelToken* parent_ = nullptr;
};

/// Why a stopped token stopped: explicit cancellation wins over deadline.
inline SolveStatus stop_reason(const CancelToken& token) {
  return token.cancel_requested() ? SolveStatus::kCancelled
                                  : SolveStatus::kDeadlineExceeded;
}

inline BuildStatus build_stop_reason(const CancelToken& token) {
  return token.cancel_requested() ? BuildStatus::kCancelled
                                  : BuildStatus::kDeadlineExceeded;
}

}  // namespace mcmi
