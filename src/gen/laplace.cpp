#include "gen/laplace.hpp"

#include "core/error.hpp"

namespace mcmi {

CsrMatrix laplace_2d(index_t m) {
  MCMI_CHECK(m >= 2, "need at least 2 mesh intervals, got " << m);
  const index_t g = m - 1;  // interior points per side
  const index_t n = g * g;
  CooMatrix coo(n, n);
  auto id = [g](index_t ix, index_t iy) { return iy * g + ix; };
  for (index_t iy = 0; iy < g; ++iy) {
    for (index_t ix = 0; ix < g; ++ix) {
      const index_t row = id(ix, iy);
      coo.add(row, row, 4.0);
      if (ix > 0) coo.add(row, id(ix - 1, iy), -1.0);
      if (ix + 1 < g) coo.add(row, id(ix + 1, iy), -1.0);
      if (iy > 0) coo.add(row, id(ix, iy - 1), -1.0);
      if (iy + 1 < g) coo.add(row, id(ix, iy + 1), -1.0);
    }
  }
  return CsrMatrix::from_coo(std::move(coo));
}

CsrMatrix laplace_1d(index_t n) {
  MCMI_CHECK(n >= 1, "need positive dimension");
  CooMatrix coo(n, n);
  for (index_t i = 0; i < n; ++i) {
    coo.add(i, i, 2.0);
    if (i > 0) coo.add(i, i - 1, -1.0);
    if (i + 1 < n) coo.add(i, i + 1, -1.0);
  }
  return CsrMatrix::from_coo(std::move(coo));
}

}  // namespace mcmi
