#pragma once
// Plasma-physics-like nonsymmetric operators (`a0XXXX` family of Table 1).
//
// The paper's a00512 / a08192 matrices are finite-element discretisations of
// asymmetric differential operators from plasma physics at two mesh
// resolutions.  We reproduce the family with a structured-grid
// discretisation of a drift-diffusion operator with an E x B - like swirl
// velocity field,
//
//   -div(nu grad u) + b(x,y) . grad u + c u,   b = omega * (y-1/2, -(x-1/2)),
//
// using a coupling radius of 2 for the coarse matrix (wide, higher-order
// stencil; fill ~ 0.05 at n=512, matching phi=0.059) and radius 1 for the
// fine one (5-point; fill ~ 0.0006, matching phi=0.0007).  Conditioning
// grows with resolution as O(h^-2), reproducing kappa ~ 1.9e3 -> 3.2e5.

#include "sparse/csr.hpp"

namespace mcmi {

struct PlasmaOptions {
  index_t nx = 32;        ///< grid points in x
  index_t ny = 16;        ///< grid points in y
  index_t radius = 2;     ///< stencil coupling radius
  real_t diffusion = 1.0; ///< nu
  real_t swirl = 24.0;    ///< omega, strength of the rotational drift
  real_t reaction = 0.35;  ///< c
};

/// Build a plasma-like drift-diffusion matrix of dimension nx*ny.
CsrMatrix plasma_drift_diffusion(const PlasmaOptions& options);

/// Paper-named convenience constructors.
CsrMatrix plasma_a00512();  ///< n = 512 (32x16, radius 2)
CsrMatrix plasma_a08192();  ///< n = 8192 (128x64, radius 1)

}  // namespace mcmi
