#include "gen/random_sparse.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "core/error.hpp"

namespace mcmi {

namespace {

/// Sample `count` distinct column indices != row from [0, n).
std::vector<index_t> sample_columns(Xoshiro256& rng, index_t n, index_t row,
                                    index_t count) {
  std::vector<index_t> cols;
  cols.reserve(static_cast<std::size_t>(count));
  while (static_cast<index_t>(cols.size()) < count) {
    const index_t c = static_cast<index_t>(uniform_index(rng, static_cast<u64>(n)));
    if (c == row) continue;
    if (std::find(cols.begin(), cols.end(), c) != cols.end()) continue;
    cols.push_back(c);
  }
  return cols;
}

}  // namespace

CsrMatrix pdd_real_sparse(index_t n, real_t fill, u64 seed) {
  MCMI_CHECK(n >= 2, "dimension too small");
  MCMI_CHECK(fill > 0.0 && fill <= 1.0, "fill must be in (0,1]");
  const index_t per_row =
      std::max<index_t>(1, static_cast<index_t>(std::llround(fill * n)) - 1);
  CooMatrix coo(n, n);
  for (index_t i = 0; i < n; ++i) {
    Xoshiro256 rng = make_stream(seed, 0, static_cast<u64>(i));
    real_t abs_sum = 0.0;
    for (index_t c : sample_columns(rng, n, i, per_row)) {
      const real_t v = uniform(rng, -1.0, 1.0);
      coo.add(i, c, v);
      abs_sum += std::abs(v);
    }
    // Mild diagonal dominance keeps kappa small (~5-13) and independent of
    // n, as the PDD_RealSparse rows of Table 1 show.
    coo.add(i, i, 0.7 * abs_sum + 0.3 + uniform(rng, 0.0, 0.2));
  }
  return CsrMatrix::from_coo(std::move(coo));
}

CsrMatrix random_spd(index_t n, index_t per_row, real_t shift, u64 seed) {
  MCMI_CHECK(n >= 2, "dimension too small");
  CooMatrix coo(n, n);
  real_t max_row_sum = 0.0;
  std::vector<real_t> row_sum(static_cast<std::size_t>(n), 0.0);
  for (index_t i = 0; i < n; ++i) {
    Xoshiro256 rng = make_stream(seed, 1, static_cast<u64>(i));
    for (index_t c : sample_columns(rng, n, i, per_row)) {
      const real_t v = uniform(rng, -0.5, 0.5);
      // Symmetrise by emitting both (i,c) and (c,i).
      coo.add(i, c, v);
      coo.add(c, i, v);
      row_sum[i] += std::abs(v);
      row_sum[c] += std::abs(v);
    }
  }
  for (real_t s : row_sum) max_row_sum = std::max(max_row_sum, s);
  for (index_t i = 0; i < n; ++i) {
    // Gershgorin: diagonal > row sum guarantees positive definiteness.
    coo.add(i, i, max_row_sum + shift);
  }
  return CsrMatrix::from_coo(std::move(coo));
}

CsrMatrix random_diag_dominant(index_t n, index_t per_row, real_t dominance,
                               u64 seed) {
  MCMI_CHECK(n >= 2, "dimension too small");
  MCMI_CHECK(dominance > 1.0, "dominance must exceed 1");
  CooMatrix coo(n, n);
  for (index_t i = 0; i < n; ++i) {
    Xoshiro256 rng = make_stream(seed, 2, static_cast<u64>(i));
    real_t abs_sum = 0.0;
    for (index_t c : sample_columns(rng, n, i, per_row)) {
      const real_t v = uniform(rng, -1.0, 1.0);
      coo.add(i, c, v);
      abs_sum += std::abs(v);
    }
    coo.add(i, i, dominance * std::max(abs_sum, 1e-3));
  }
  return CsrMatrix::from_coo(std::move(coo));
}

}  // namespace mcmi
