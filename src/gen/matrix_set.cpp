#include "gen/matrix_set.hpp"

#include "core/error.hpp"
#include "gen/adv_diff.hpp"
#include "gen/climate.hpp"
#include "gen/laplace.hpp"
#include "gen/plasma.hpp"
#include "gen/random_sparse.hpp"

namespace mcmi {

NamedMatrix make_matrix(const std::string& name, bool full_scale) {
  if (name == "2DFDLaplace_16") return {name, laplace_2d(16), true};
  if (name == "2DFDLaplace_32") return {name, laplace_2d(32), true};
  if (name == "2DFDLaplace_64") return {name, laplace_2d(64), true};
  if (name == "2DFDLaplace_128") {
    // Reduced to m=96 (n=9025) by default; full scale restores m=128
    // (n=16129) as published.
    return {name, laplace_2d(full_scale ? 128 : 96), true};
  }
  if (name == "nonsym_r3_a11") {
    return {name, climate_nonsym_r3_a11(full_scale), false};
  }
  if (name == "a00512") return {name, plasma_a00512(), false};
  if (name == "a08192") return {name, plasma_a08192(), false};
  if (name == "unsteady_adv_diff_order1_0001") {
    return {name, unsteady_adv_diff_order1(), false};
  }
  if (name == "unsteady_adv_diff_order2_0001") {
    return {name, unsteady_adv_diff_order2(), false};
  }
  if (name == "PDD_RealSparse_N64") return {name, pdd_real_sparse(64), false};
  if (name == "PDD_RealSparse_N128") {
    return {name, pdd_real_sparse(128), false};
  }
  if (name == "PDD_RealSparse_N256") {
    return {name, pdd_real_sparse(256), false};
  }
  MCMI_FAIL("unknown matrix name '" << name << "'");
}

std::vector<std::string> paper_matrix_names() {
  return {
      "2DFDLaplace_16",
      "2DFDLaplace_32",
      "2DFDLaplace_64",
      "2DFDLaplace_128",
      "nonsym_r3_a11",
      "a00512",
      "a08192",
      "unsteady_adv_diff_order1_0001",
      "unsteady_adv_diff_order2_0001",
      "PDD_RealSparse_N64",
      "PDD_RealSparse_N128",
      "PDD_RealSparse_N256",
  };
}

std::vector<NamedMatrix> paper_matrix_set(bool full_scale) {
  std::vector<NamedMatrix> out;
  for (const std::string& name : paper_matrix_names()) {
    out.push_back(make_matrix(name, full_scale));
  }
  return out;
}

std::vector<NamedMatrix> training_matrix_set(index_t max_dim) {
  std::vector<NamedMatrix> out;
  for (const std::string& name : paper_matrix_names()) {
    if (name == "unsteady_adv_diff_order2_0001") continue;  // unseen test
    NamedMatrix m = make_matrix(name, /*full_scale=*/false);
    if (m.matrix.rows() <= max_dim) out.push_back(std::move(m));
  }
  return out;
}

}  // namespace mcmi
