#pragma once
// Random sparse matrix generators.
//
// `pdd_real_sparse(n)` reproduces the PDD_RealSparse_N{64,128,256} family of
// Table 1: random nonsymmetric sparse matrices with fixed fill 0.1 and small
// condition numbers (kappa ~ 5-13), the well-conditioned end of the study.
// The remaining generators provide controlled random inputs for tests.

#include "core/rng.hpp"
#include "sparse/csr.hpp"

namespace mcmi {

/// Random diagonally dominant nonsymmetric matrix with exactly
/// round(fill*n) nonzeros per row (diagonal included).  Well conditioned.
CsrMatrix pdd_real_sparse(index_t n, real_t fill = 0.1, u64 seed = 7);

/// Random sparse SPD matrix: B + B^T + shift*I with B random sparse;
/// `per_row` off-diagonal entries per row of B.
CsrMatrix random_spd(index_t n, index_t per_row, real_t shift, u64 seed = 11);

/// Random strictly diagonally dominant matrix with `per_row` off-diagonal
/// entries per row; `dominance` > 1 scales the diagonal margin.
CsrMatrix random_diag_dominant(index_t n, index_t per_row,
                               real_t dominance = 1.5, u64 seed = 13);

}  // namespace mcmi
