#include "gen/adv_diff.hpp"

#include <cmath>
#include <vector>

#include "core/error.hpp"

namespace mcmi {

namespace {

/// Geometrically graded interior mesh on (0,1): step sizes h_i = c * g^i
/// resolve the outflow boundary layer at x = 1.  Returns the s interior node
/// positions; `steps` receives the s+1 cell widths.
std::vector<real_t> graded_mesh(index_t s, real_t grading,
                                std::vector<real_t>& steps) {
  steps.resize(static_cast<std::size_t>(s) + 1);
  real_t total = 0.0;
  for (index_t i = 0; i <= s; ++i) {
    steps[i] = std::pow(grading, static_cast<real_t>(s - i));
    total += steps[i];
  }
  for (real_t& h : steps) h /= total;
  std::vector<real_t> x(static_cast<std::size_t>(s));
  real_t pos = 0.0;
  for (index_t i = 0; i < s; ++i) {
    pos += steps[i];
    x[i] = pos;
  }
  return x;
}

/// Dense nonlocal spatial operator on the graded mesh:
/// G_ij = exp(-|x_i - x_j| / ell) * w_j with trapezoid weights w_j.
std::vector<real_t> nonlocal_kernel(const std::vector<real_t>& x,
                                    const std::vector<real_t>& steps,
                                    real_t ell) {
  const index_t s = static_cast<index_t>(x.size());
  std::vector<real_t> g(static_cast<std::size_t>(s) * s);
  for (index_t i = 0; i < s; ++i) {
    for (index_t j = 0; j < s; ++j) {
      const real_t d = std::abs(x[i] - x[j]);
      const real_t wj = 0.5 * (steps[j] + steps[j + 1]);
      g[i * s + j] = std::exp(-d / ell) * wj;
    }
  }
  return g;
}

}  // namespace

CsrMatrix unsteady_adv_diff(const AdvDiffOptions& o) {
  MCMI_CHECK(o.space >= 3, "need at least 3 spatial points");
  MCMI_CHECK(o.steps >= 2, "need at least 2 time levels");
  MCMI_CHECK(o.order == 1 || o.order == 2, "order must be 1 or 2");

  const index_t s = o.space;
  const index_t t = o.steps;
  const index_t n = s * t;

  // Boundary-layer-graded mesh: the order-2 discretisation resolves the
  // layer more aggressively (finer minimum step), which is what drives its
  // larger condition number in Table 1 (6.6e6 vs 4.1e6).
  const real_t grading =
      (o.grading > 0.0) ? o.grading : ((o.order == 1) ? 2.05 : 1.87);
  std::vector<real_t> h;
  const std::vector<real_t> x = graded_mesh(s, grading, h);

  // Spatial operator L = b u_x - nu u_xx on the non-uniform mesh, stored
  // densely on the s-point line for assembly convenience.
  std::vector<real_t> spatial(static_cast<std::size_t>(s) * s, 0.0);
  for (index_t i = 0; i < s; ++i) {
    const real_t hl = h[i];       // step to the left neighbour
    const real_t hr = h[i + 1];   // step to the right neighbour
    // Diffusion on non-uniform mesh (standard 3-point formula).
    const real_t cl = 2.0 / (hl * (hl + hr));
    const real_t cr = 2.0 / (hr * (hl + hr));
    spatial[i * s + i] += o.diffusion * (cl + cr);
    if (i > 0) spatial[i * s + (i - 1)] -= o.diffusion * cl;
    if (i + 1 < s) spatial[i * s + (i + 1)] -= o.diffusion * cr;
    // Advection b u_x.
    if (o.order == 1) {
      // First-order upwind (b > 0): (u_i - u_{i-1}) / hl.
      spatial[i * s + i] += o.velocity / hl;
      if (i > 0) spatial[i * s + (i - 1)] -= o.velocity / hl;
    } else {
      // Second-order central on the non-uniform mesh.
      const real_t denom = hl * hr * (hl + hr);
      const real_t wl = -hr * hr / denom;
      const real_t wr = hl * hl / denom;
      const real_t wc = (hr * hr - hl * hl) / denom;
      spatial[i * s + i] += o.velocity * wc;
      if (i > 0) spatial[i * s + (i - 1)] += o.velocity * wl;
      if (i + 1 < s) spatial[i * s + (i + 1)] += o.velocity * wr;
    }
  }

  const std::vector<real_t> g = nonlocal_kernel(x, h, o.kernel_length);

  // Memory quadrature weights for the Volterra integral over past levels.
  auto weight = [&](index_t lag) -> real_t {
    const real_t temporal = std::exp(-static_cast<real_t>(lag) / 4.0);
    if (o.order == 1) return o.dt * temporal;
    const real_t trap = (lag == 0) ? 1.5 : 1.0;  // end-corrected weight
    return o.dt * trap * temporal * std::exp(-static_cast<real_t>(lag) / 8.0);
  };

  CooMatrix coo(n, n);
  auto idx = [s](index_t level, index_t point) { return level * s + point; };

  for (index_t k = 0; k < t; ++k) {
    // Time derivative: backward Euler (order 1) / BDF2 (order 2).
    for (index_t i = 0; i < s; ++i) {
      const index_t row = idx(k, i);
      if (o.order == 1 || k == 0) {
        coo.add(row, row, 1.0 / o.dt);
        if (k > 0) coo.add(row, idx(k - 1, i), -1.0 / o.dt);
      } else {
        // BDF2: (3 u^k - 4 u^{k-1} + u^{k-2}) / (2 dt).
        coo.add(row, row, 1.5 / o.dt);
        coo.add(row, idx(k - 1, i), -2.0 / o.dt);
        if (k >= 2) coo.add(row, idx(k - 2, i), 0.5 / o.dt);
      }
    }
    // Spatial operator at the current level (implicit).
    for (index_t i = 0; i < s; ++i) {
      for (index_t j = 0; j < s; ++j) {
        const real_t v = spatial[i * s + j];
        if (v != 0.0) coo.add(idx(k, i), idx(k, j), v);
      }
    }
    // Volterra memory: sum over past levels m <= k of w_{k-m} * G.
    for (index_t m = 0; m <= k; ++m) {
      const real_t w = o.memory_strength * weight(k - m);
      for (index_t i = 0; i < s; ++i) {
        for (index_t j = 0; j < s; ++j) {
          const real_t v = w * g[i * s + j];
          if (v != 0.0) coo.add(idx(k, i), idx(m, j), v);
        }
      }
    }
  }
  return CsrMatrix::from_coo(std::move(coo));
}

CsrMatrix unsteady_adv_diff_order1() {
  AdvDiffOptions o;
  o.order = 1;
  return unsteady_adv_diff(o);
}

CsrMatrix unsteady_adv_diff_order2() {
  AdvDiffOptions o;
  o.order = 2;
  return unsteady_adv_diff(o);
}

}  // namespace mcmi
