#pragma once
// Finite-difference Laplacian generators.
//
// `laplace_2d(m)` reproduces the 2DFDLaplace_<m> family of Table 1: the
// standard 5-point stencil on the (m-1)x(m-1) interior grid of the unit
// square (so 2DFDLaplace_16 has n = 15^2 = 225).  The unscaled stencil
// diag=4, off=-1 gives the O(h^-2) condition-number ladder the paper
// illustrates (kappa ~ 1.0e2, 4.1e2, 1.7e3, 6.6e3 for m = 16..128).

#include "sparse/csr.hpp"

namespace mcmi {

/// 5-point 2D FD Laplacian with `m` mesh intervals per side
/// (dimension (m-1)^2, symmetric positive definite).
CsrMatrix laplace_2d(index_t m);

/// 1D second-difference matrix of dimension n (tridiagonal 2,-1), SPD.
/// Used by fast unit tests.
CsrMatrix laplace_1d(index_t n);

}  // namespace mcmi
