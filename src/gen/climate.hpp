#pragma once
// Climate-simulation-like nonsymmetric operator (`nonsym_r3_a11` in Table 1).
//
// The paper's matrix represents systems occurring in climate simulations
// (n = 20930, nonsymmetric, kappa ~ 1.9e4, phi ~ 0.0044 i.e. ~92 nonzeros
// per row).  We reproduce the family with an anisotropic rotated-diffusion
// transport operator on a structured grid — the discrete shape of
// atmospheric tracer transport: strong zonal advection, rotated anisotropic
// diffusion, and a wide (radius-4) coupling stencil giving ~80 nonzeros per
// row.

#include "sparse/csr.hpp"

namespace mcmi {

struct ClimateOptions {
  index_t nx = 46;          ///< grid points in x (longitude)
  index_t ny = 46;          ///< grid points in y (latitude)
  index_t radius = 4;       ///< coupling radius (~(2r+1)^2 nnz per row)
  real_t anisotropy = 50.0; ///< ratio of along-flow to cross-flow diffusion
  real_t rotation = 0.4;    ///< local rotation angle scale of the diffusion axes
  real_t zonal_wind = 8.0;  ///< strength of the zonal advection
};

/// Build a climate-transport-like matrix of dimension nx*ny.
CsrMatrix climate_transport(const ClimateOptions& options);

/// Reduced-size stand-in for nonsym_r3_a11 (n = 2116 by default;
/// nx=ny=145 under MCMI_FULL reproduces the paper's n ~ 2.1e4).
CsrMatrix climate_nonsym_r3_a11(bool full_scale = false);

}  // namespace mcmi
