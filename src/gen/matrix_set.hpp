#pragma once
// The Table 1 matrix catalogue.
//
// `paper_matrix_set()` materialises the twelve matrices of the study with
// their paper names.  By default the two largest members
// (2DFDLaplace_128, nonsym_r3_a11) are generated at reduced size so the
// benches stay laptop-friendly; `full_scale=true` (env MCMI_FULL=1)
// restores the published dimensions.

#include <string>
#include <vector>

#include "sparse/csr.hpp"

namespace mcmi {

/// One catalogued matrix with its metadata.
struct NamedMatrix {
  std::string name;   ///< paper name, e.g. "2DFDLaplace_64"
  CsrMatrix matrix;
  bool spd = false;   ///< symmetric positive definite (enables CG)
};

/// Build one catalogue entry by paper name.  Throws for unknown names.
NamedMatrix make_matrix(const std::string& name, bool full_scale = false);

/// All names in Table 1 order.
std::vector<std::string> paper_matrix_names();

/// The full Table 1 catalogue.
std::vector<NamedMatrix> paper_matrix_set(bool full_scale = false);

/// The small-matrix training subset used by the pipeline benches
/// (everything with n <= max_dim; the unseen test matrix
/// unsteady_adv_diff_order2_0001 is always excluded, as in §4.2).
std::vector<NamedMatrix> training_matrix_set(index_t max_dim = 1200);

}  // namespace mcmi
