#include "gen/climate.hpp"

#include <cmath>

#include "core/error.hpp"

namespace mcmi {

CsrMatrix climate_transport(const ClimateOptions& o) {
  MCMI_CHECK(o.nx >= 2 * o.radius + 1 && o.ny >= 2 * o.radius + 1,
             "grid too small for radius " << o.radius);
  const index_t n = o.nx * o.ny;
  const real_t hx = 1.0 / static_cast<real_t>(o.nx + 1);
  const real_t hy = 1.0 / static_cast<real_t>(o.ny + 1);

  CooMatrix coo(n, n);
  auto id = [&](index_t ix, index_t iy) { return iy * o.nx + ix; };

  for (index_t iy = 0; iy < o.ny; ++iy) {
    for (index_t ix = 0; ix < o.nx; ++ix) {
      const index_t row = id(ix, iy);
      const real_t y = static_cast<real_t>(iy + 1) * hy;
      // Diffusion axes rotate with latitude (jet-stream tilt).
      const real_t theta = o.rotation * std::sin(2.0 * M_PI * y);
      const real_t ct = std::cos(theta), st = std::sin(theta);
      // Anisotropic diffusion tensor D = R diag(k_par, k_perp) R^T.
      const real_t kpar = o.anisotropy, kperp = 1.0;
      const real_t dxx = kpar * ct * ct + kperp * st * st;
      const real_t dyy = kpar * st * st + kperp * ct * ct;
      const real_t dxy = (kpar - kperp) * ct * st;

      real_t diag = 0.0;
      for (index_t dy = -o.radius; dy <= o.radius; ++dy) {
        for (index_t dx = -o.radius; dx <= o.radius; ++dx) {
          if (dx == 0 && dy == 0) continue;
          const real_t ex = static_cast<real_t>(dx) * hx;
          const real_t ey = static_cast<real_t>(dy) * hy;
          const real_t r2 = ex * ex + ey * ey;
          // Directional weight: coupling strength along the local diffusion
          // tensor, decaying with squared distance.
          const real_t along = dxx * ex * ex + 2.0 * dxy * ex * ey +
                               dyy * ey * ey;
          const real_t w = along / (r2 * r2) * hx * hy;
          if (w <= 0.0) continue;
          diag += w;
          const index_t jx = ix + dx;
          const index_t jy = iy + dy;
          if (jx >= 0 && jx < o.nx && jy >= 0 && jy < o.ny) {
            coo.add(row, id(jx, jy), -w);
          }
        }
      }
      // Zonal wind: latitude-dependent upwind advection in x (nonsymmetric).
      const real_t u = o.zonal_wind * std::cos(M_PI * (y - 0.5));
      if (u >= 0.0) {
        diag += u / hx;
        if (ix > 0) coo.add(row, id(ix - 1, iy), -u / hx);
      } else {
        diag -= u / hx;
        if (ix + 1 < o.nx) coo.add(row, id(ix + 1, iy), u / hx);
      }
      coo.add(row, row, diag + 1.0);  // weak reaction keeps A nonsingular
    }
  }
  return CsrMatrix::from_coo(std::move(coo));
}

CsrMatrix climate_nonsym_r3_a11(bool full_scale) {
  ClimateOptions o;
  if (full_scale) {
    o.nx = 145;  // 145^2 = 21025 ~ the paper's 20930
    o.ny = 145;
  }
  return climate_transport(o);
}

}  // namespace mcmi
