#include "gen/plasma.hpp"

#include <cmath>

#include "core/error.hpp"

namespace mcmi {

CsrMatrix plasma_drift_diffusion(const PlasmaOptions& o) {
  MCMI_CHECK(o.nx >= 3 && o.ny >= 3, "grid too small");
  MCMI_CHECK(o.radius >= 1, "radius must be >= 1");
  const index_t n = o.nx * o.ny;
  const real_t hx = 1.0 / static_cast<real_t>(o.nx + 1);
  const real_t hy = 1.0 / static_cast<real_t>(o.ny + 1);

  CooMatrix coo(n, n);
  auto id = [&](index_t ix, index_t iy) { return iy * o.nx + ix; };

  for (index_t iy = 0; iy < o.ny; ++iy) {
    for (index_t ix = 0; ix < o.nx; ++ix) {
      const index_t row = id(ix, iy);
      const real_t x = static_cast<real_t>(ix + 1) * hx;
      const real_t y = static_cast<real_t>(iy + 1) * hy;
      // E x B - like swirl around the domain centre.
      const real_t bx = o.swirl * (y - 0.5);
      const real_t by = -o.swirl * (x - 0.5);

      real_t diag = o.reaction;
      // Diffusion with inverse-square distance weights over the coupling
      // radius; radius 1 reduces to the classic 5-point stencil, radius 2
      // gives the wider coupling of higher-order elements.
      for (index_t dy = -o.radius; dy <= o.radius; ++dy) {
        for (index_t dx = -o.radius; dx <= o.radius; ++dx) {
          if (dx == 0 && dy == 0) continue;
          if (std::abs(dx) + std::abs(dy) > o.radius + 1) continue;  // clip corners
          const index_t jx = ix + dx;
          const index_t jy = iy + dy;
          const real_t dist2 = static_cast<real_t>(dx * dx) * hx * hx +
                               static_cast<real_t>(dy * dy) * hy * hy;
          const real_t w = o.diffusion / dist2 /
                           static_cast<real_t>(4 * o.radius);
          if (jx >= 0 && jx < o.nx && jy >= 0 && jy < o.ny) {
            // Conservative interior coupling (Neumann-like walls): the
            // near-singular constant mode is pinned only by the reaction
            // term and boundary outflow, which is what produces the large
            // kappa of the a0XXXX plasma matrices.
            diag += w;
            coo.add(row, id(jx, jy), -w);
          }
        }
      }
      // First-order upwind advection (makes the operator nonsymmetric).
      if (bx >= 0.0) {
        diag += bx / hx;
        if (ix > 0) coo.add(row, id(ix - 1, iy), -bx / hx);
      } else {
        diag -= bx / hx;
        if (ix + 1 < o.nx) coo.add(row, id(ix + 1, iy), bx / hx);
      }
      if (by >= 0.0) {
        diag += by / hy;
        if (iy > 0) coo.add(row, id(ix, iy - 1), -by / hy);
      } else {
        diag -= by / hy;
        if (iy + 1 < o.ny) coo.add(row, id(ix, iy + 1), by / hy);
      }
      coo.add(row, row, diag);
    }
  }
  return CsrMatrix::from_coo(std::move(coo));
}

CsrMatrix plasma_a00512() {
  PlasmaOptions o;
  o.nx = 32;
  o.ny = 16;
  o.radius = 2;
  o.swirl = 24.0;
  return plasma_drift_diffusion(o);
}

CsrMatrix plasma_a08192() {
  PlasmaOptions o;
  o.nx = 128;
  o.ny = 64;
  o.radius = 1;
  o.swirl = 24.0;
  return plasma_drift_diffusion(o);
}

}  // namespace mcmi
