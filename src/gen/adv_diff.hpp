#pragma once
// Unsteady advection–diffusion generator.
//
// Table 1 lists `unsteady_adv_diff_order{1,2}_0001` (n = 225, nonsymmetric,
// fill 0.646, kappa ~ 4.1e6 / 6.6e6).  The very high fill marks these as
// *all-at-once space-time* systems with a memory term: we discretise
//
//   u_t + b u_x - nu u_xx + integral_0^t K(t-s) (G u)(s) ds = f
//
// on `space` interior points x `steps` time levels (default 15 x 15 = 225).
// The Volterra memory kernel couples every earlier time level through a
// dense nonlocal spatial operator G (exponential kernel), which produces the
// block-lower-triangular, nearly-dense structure (~0.55-0.65 fill) and the
// severe ill-conditioning of the paper's test matrices.  `order` selects the
// quadrature for the memory integral — rectangle rule (order 1) or the
// trapezoid-type rule (order 2); the order-2 variant has larger end weights
// and a sharper kernel, which is what makes it the *harder* unseen system
// used for generalisation in §4.2.

#include "sparse/csr.hpp"

namespace mcmi {

struct AdvDiffOptions {
  index_t space = 15;      ///< interior spatial points per time level
  index_t steps = 15;      ///< time levels (dimension = space*steps)
  int order = 1;           ///< time-quadrature order, 1 or 2
  real_t velocity = 1.0;   ///< advection speed b
  real_t diffusion = 1e-3; ///< diffusion coefficient nu
  real_t dt = 0.05;        ///< time step
  real_t memory_strength = 40.0;  ///< scale of the Volterra memory term
  real_t kernel_length = 0.35;    ///< correlation length of the nonlocal G
  real_t grading = 0.0;           ///< mesh grading ratio; 0 = per-order default
};

/// Build the all-at-once unsteady advection–diffusion matrix.
/// Dimension = options.space * options.steps; nonsymmetric.
CsrMatrix unsteady_adv_diff(const AdvDiffOptions& options);

/// Paper-named convenience constructors (n = 225).
CsrMatrix unsteady_adv_diff_order1();
CsrMatrix unsteady_adv_diff_order2();

}  // namespace mcmi
