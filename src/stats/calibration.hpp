#pragma once
// Calibration analysis for probabilistic predictions (Figure 1 and 2).
//
// Figure 1: for each confidence level tau, the symmetric prediction
// interval mu_j +- z_{(1+tau)/2} sigma_j (eq. 5) should contain the
// observation y_j a fraction tau of the time; empirical coverage with
// Wilson bands diagnoses over/under-confidence.
//
// Figure 2: for each parameter point, does the model's predicted mean fall
// inside the *empirical* confidence interval of the replicated solver runs?

#include <vector>

#include "core/types.hpp"
#include "stats/wilson.hpp"

namespace mcmi {

/// One (observation, prediction) pair: y_j observed, (mu_j, sigma_j)
/// predicted by the surrogate.
struct CalibrationSample {
  real_t observed = 0.0;
  real_t mu = 0.0;
  real_t sigma = 0.0;
};

/// One point of the Figure 1 calibration curve.
struct CoveragePoint {
  real_t expected = 0.0;   ///< tau
  real_t observed = 0.0;   ///< empirical coverage p_hat
  Interval wilson;         ///< Wilson 95% band on p_hat
};

/// The default confidence ladder of the paper:
/// tau in {0.50, 0.68, 0.80, 0.90, 0.95, 0.99}.
std::vector<real_t> paper_confidence_levels();

/// Empirical coverage of the symmetric prediction intervals at each tau.
std::vector<CoveragePoint> calibration_curve(
    const std::vector<CalibrationSample>& samples,
    const std::vector<real_t>& taus = paper_confidence_levels());

/// Mean absolute calibration error: average |observed - expected| over the
/// curve (0 = perfectly calibrated).
real_t calibration_error(const std::vector<CoveragePoint>& curve);

/// Figure 2 primitive: is the predicted mean inside the empirical
/// confidence interval of the replicates?  The interval is
/// ybar +- z_{(1+conf)/2} * s / sqrt(R) for R replicates.
bool prediction_within_empirical_ci(real_t predicted_mu,
                                    const std::vector<real_t>& replicates,
                                    real_t confidence = 0.99);

}  // namespace mcmi
