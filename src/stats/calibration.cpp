#include "stats/calibration.hpp"

#include <cmath>

#include "core/error.hpp"
#include "stats/normal.hpp"
#include "stats/summary.hpp"

namespace mcmi {

std::vector<real_t> paper_confidence_levels() {
  return {0.50, 0.68, 0.80, 0.90, 0.95, 0.99};
}

std::vector<CoveragePoint> calibration_curve(
    const std::vector<CalibrationSample>& samples,
    const std::vector<real_t>& taus) {
  MCMI_CHECK(!samples.empty(), "calibration curve needs samples");
  std::vector<CoveragePoint> curve;
  curve.reserve(taus.size());
  for (real_t tau : taus) {
    const real_t z = normal_quantile(0.5 * (1.0 + tau));
    index_t inside = 0;
    for (const CalibrationSample& s : samples) {
      const real_t half = z * s.sigma;
      if (s.observed >= s.mu - half && s.observed <= s.mu + half) ++inside;
    }
    CoveragePoint point;
    point.expected = tau;
    point.observed =
        static_cast<real_t>(inside) / static_cast<real_t>(samples.size());
    point.wilson = wilson_interval(point.observed,
                                   static_cast<index_t>(samples.size()));
    curve.push_back(point);
  }
  return curve;
}

real_t calibration_error(const std::vector<CoveragePoint>& curve) {
  MCMI_CHECK(!curve.empty(), "empty calibration curve");
  real_t err = 0.0;
  for (const CoveragePoint& p : curve) {
    err += std::abs(p.observed - p.expected);
  }
  return err / static_cast<real_t>(curve.size());
}

bool prediction_within_empirical_ci(real_t predicted_mu,
                                    const std::vector<real_t>& replicates,
                                    real_t confidence) {
  MCMI_CHECK(!replicates.empty(), "need replicates");
  const real_t ybar = mean(replicates);
  const real_t s = sample_std(replicates);
  const real_t z = normal_quantile(0.5 * (1.0 + confidence));
  const real_t half =
      z * s / std::sqrt(static_cast<real_t>(replicates.size()));
  return predicted_mu >= ybar - half && predicted_mu <= ybar + half;
}

}  // namespace mcmi
