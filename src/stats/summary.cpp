#include "stats/summary.hpp"

#include <algorithm>
#include <cmath>

#include "core/error.hpp"

namespace mcmi {

real_t mean(const std::vector<real_t>& xs) {
  MCMI_CHECK(!xs.empty(), "mean of empty sample");
  real_t sum = 0.0;
  for (real_t x : xs) sum += x;
  return sum / static_cast<real_t>(xs.size());
}

real_t sample_std(const std::vector<real_t>& xs) {
  if (xs.size() < 2) return 0.0;
  const real_t m = mean(xs);
  real_t ss = 0.0;
  for (real_t x : xs) ss += (x - m) * (x - m);
  return std::sqrt(ss / static_cast<real_t>(xs.size() - 1));
}

real_t quantile(std::vector<real_t> xs, real_t q) {
  MCMI_CHECK(!xs.empty(), "quantile of empty sample");
  MCMI_CHECK(q >= 0.0 && q <= 1.0, "quantile level must be in [0,1]");
  std::sort(xs.begin(), xs.end());
  const real_t pos = q * static_cast<real_t>(xs.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(std::floor(pos));
  const std::size_t hi = static_cast<std::size_t>(std::ceil(pos));
  const real_t frac = pos - static_cast<real_t>(lo);
  return xs[lo] + frac * (xs[hi] - xs[lo]);
}

real_t median(std::vector<real_t> xs) { return quantile(std::move(xs), 0.5); }

BoxStats box_stats(std::vector<real_t> xs) {
  MCMI_CHECK(!xs.empty(), "box stats of empty sample");
  std::sort(xs.begin(), xs.end());
  BoxStats b;
  b.minimum = xs.front();
  b.maximum = xs.back();
  b.q1 = quantile(xs, 0.25);
  b.median = quantile(xs, 0.5);
  b.q3 = quantile(xs, 0.75);
  const real_t iqr = b.q3 - b.q1;
  const real_t lo_fence = b.q1 - 1.5 * iqr;
  const real_t hi_fence = b.q3 + 1.5 * iqr;
  b.whisker_low = b.maximum;
  b.whisker_high = b.minimum;
  for (real_t x : xs) {
    if (x >= lo_fence) {
      b.whisker_low = std::min(b.whisker_low, x);
      break;
    }
  }
  for (auto it = xs.rbegin(); it != xs.rend(); ++it) {
    if (*it <= hi_fence) {
      b.whisker_high = *it;
      break;
    }
  }
  for (real_t x : xs) {
    if (x < lo_fence || x > hi_fence) b.outliers.push_back(x);
  }
  return b;
}

}  // namespace mcmi
