#include "stats/wilson.hpp"

#include <algorithm>
#include <cmath>

#include "core/error.hpp"
#include "stats/normal.hpp"

namespace mcmi {

Interval wilson_interval(real_t p_hat, index_t n, real_t confidence) {
  MCMI_CHECK(n > 0, "Wilson interval needs at least one trial");
  MCMI_CHECK(p_hat >= 0.0 && p_hat <= 1.0, "proportion must be in [0,1]");
  MCMI_CHECK(confidence > 0.0 && confidence < 1.0,
             "confidence must be in (0,1)");
  const real_t z = normal_quantile(0.5 * (1.0 + confidence));
  const real_t nn = static_cast<real_t>(n);
  const real_t z2 = z * z;
  const real_t denom = 1.0 + z2 / nn;
  const real_t centre = p_hat + z2 / (2.0 * nn);
  const real_t margin =
      z * std::sqrt(p_hat * (1.0 - p_hat) / nn + z2 / (4.0 * nn * nn));
  Interval ci;
  ci.low = std::max(0.0, (centre - margin) / denom);
  ci.high = std::min(1.0, (centre + margin) / denom);
  return ci;
}

}  // namespace mcmi
