#pragma once
// Wilson score confidence interval for a binomial proportion (eq. 6).
//
// The paper prefers Wilson over the normal approximation "because it
// produces well-behaved bounds in [0,1], even for small n or extreme
// proportions"; it forms the shaded bands of the Figure 1 calibration plot.

#include "core/types.hpp"

namespace mcmi {

struct Interval {
  real_t low = 0.0;
  real_t high = 0.0;
};

/// Two-sided Wilson score interval for an observed proportion p_hat out of n
/// trials at confidence `confidence` (default 95%, z = z_{0.975}).
Interval wilson_interval(real_t p_hat, index_t n, real_t confidence = 0.95);

}  // namespace mcmi
