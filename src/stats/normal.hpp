#pragma once
// Standard normal distribution functions.
//
// Phi and phi appear in the closed-form Expected Improvement (eq. 3); the
// quantile z_tau defines the symmetric prediction intervals of the
// calibration analysis (eq. 5).

#include "core/types.hpp"

namespace mcmi {

/// Standard normal probability density phi(x).
real_t normal_pdf(real_t x);

/// Standard normal cumulative distribution Phi(x) (erfc-based, accurate to
/// machine precision).
real_t normal_cdf(real_t x);

/// Standard normal quantile Phi^-1(p) for p in (0, 1)
/// (Acklam's rational approximation polished with one Halley step).
real_t normal_quantile(real_t p);

}  // namespace mcmi
