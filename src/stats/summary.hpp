#pragma once
// Sample summaries: means, quantiles and box-plot statistics.
//
// Figure 3 of the paper is a box plot of per-x_M sample medians; this module
// provides the exact summaries that figure needs.

#include <vector>

#include "core/types.hpp"

namespace mcmi {

/// Arithmetic mean.  Empty input throws.
real_t mean(const std::vector<real_t>& xs);

/// Unbiased sample standard deviation (n-1 denominator); 0 for n < 2.
real_t sample_std(const std::vector<real_t>& xs);

/// Linear-interpolated quantile, q in [0, 1] (type-7, the numpy default).
real_t quantile(std::vector<real_t> xs, real_t q);

/// Median (quantile 0.5).
real_t median(std::vector<real_t> xs);

/// Five-number box-plot summary with 1.5*IQR whiskers and outliers.
struct BoxStats {
  real_t minimum = 0.0;
  real_t q1 = 0.0;
  real_t median = 0.0;
  real_t q3 = 0.0;
  real_t maximum = 0.0;
  real_t whisker_low = 0.0;   ///< smallest point >= q1 - 1.5 IQR
  real_t whisker_high = 0.0;  ///< largest point <= q3 + 1.5 IQR
  std::vector<real_t> outliers;
};

BoxStats box_stats(std::vector<real_t> xs);

}  // namespace mcmi
