#include "gnn/stack.hpp"

#include <cmath>

namespace mcmi::gnn {

GnnStack::GnnStack(const GnnConfig& config, index_t node_feature_width,
                   u64 seed)
    : config_(config) {
  MCMI_CHECK(config.layers >= 1, "need at least one message-passing layer");
  index_t width = node_feature_width;
  for (index_t l = 0; l < config.layers; ++l) {
    layers_.push_back(make_gnn_layer(config.kind, config.aggregation, width,
                                     config.hidden, mix64(seed + 131 * l)));
    width = config.hidden;
  }
}

nn::Tensor GnnStack::forward(const Graph& graph, bool train) {
  last_num_nodes_ = graph.num_nodes;
  nn::Tensor h = graph.node_features;
  for (real_t& v : h.data()) v = std::log1p(v);
  for (auto& layer : layers_) h = layer->forward(graph, h, train);

  // Global mean pooling.
  nn::Tensor pooled(1, config_.hidden);
  const real_t inv_n = 1.0 / static_cast<real_t>(graph.num_nodes);
  for (index_t i = 0; i < graph.num_nodes; ++i) {
    for (index_t c = 0; c < config_.hidden; ++c) {
      pooled(0, c) += h(i, c) * inv_n;
    }
  }
  return pooled;
}

void GnnStack::backward(const Graph& graph, const nn::Tensor& grad_embedding) {
  MCMI_CHECK(grad_embedding.cols() == config_.hidden,
             "gnn backward: width mismatch");
  const real_t inv_n = 1.0 / static_cast<real_t>(last_num_nodes_);
  nn::Tensor grad_h(last_num_nodes_, config_.hidden);
  for (index_t i = 0; i < last_num_nodes_; ++i) {
    for (index_t c = 0; c < config_.hidden; ++c) {
      grad_h(i, c) = grad_embedding(0, c) * inv_n;
    }
  }
  for (auto it = layers_.rbegin(); it != layers_.rend(); ++it) {
    grad_h = (*it)->backward(graph, grad_h);
  }
  // The gradient with respect to the (fixed) node degrees is discarded.
}

std::vector<nn::Parameter*> GnnStack::parameters() {
  std::vector<nn::Parameter*> out;
  for (auto& layer : layers_) {
    for (nn::Parameter* p : layer->parameters()) out.push_back(p);
  }
  return out;
}

}  // namespace mcmi::gnn
