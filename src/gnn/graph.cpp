#include "gnn/graph.hpp"

namespace mcmi::gnn {

Graph Graph::from_csr(const CsrMatrix& a) {
  Graph g;
  g.num_nodes = a.rows();
  g.edge_ptr.assign(a.row_ptr().begin(), a.row_ptr().end());
  g.dst.assign(a.col_idx().begin(), a.col_idx().end());
  g.weight.assign(a.values().begin(), a.values().end());
  g.node_features = nn::Tensor(g.num_nodes, 1);
  for (index_t i = 0; i < g.num_nodes; ++i) {
    g.node_features(i, 0) = static_cast<real_t>(g.degree(i));
  }
  return g;
}

}  // namespace mcmi::gnn
