#pragma once
// Graph representation of a sparse matrix (§3.1).
//
// "We construct a weighted and directed graph G = (V, x_V, E, w_E) from the
// matrix A, whose vertex set represents the rows of A.  An edge (i,j)
// exists iff A_ij != 0 and carries weight w_E(i,j) = A_ij.  Each vertex
// stores the unweighted row degree."
//
// Edges are stored grouped by source node (CSR-like edge_ptr) so message
// aggregation over a node's neighbourhood is a contiguous scan.

#include <vector>

#include "nn/tensor.hpp"
#include "sparse/csr.hpp"

namespace mcmi::gnn {

struct Graph {
  index_t num_nodes = 0;
  std::vector<index_t> edge_ptr;  ///< size n+1; edges of node i are [ptr[i], ptr[i+1])
  std::vector<index_t> dst;       ///< destination node per edge
  std::vector<real_t> weight;     ///< edge weight A_ij
  nn::Tensor node_features;       ///< n x 1: unweighted row degree

  [[nodiscard]] index_t num_edges() const {
    return static_cast<index_t>(dst.size());
  }
  [[nodiscard]] index_t degree(index_t node) const {
    return edge_ptr[node + 1] - edge_ptr[node];
  }

  /// Build the paper's graph from a CSR matrix.  Diagonal entries become
  /// self-loops (kept: they carry the dominant weights).
  static Graph from_csr(const CsrMatrix& a);
};

}  // namespace mcmi::gnn
