#pragma once
// Message-passing layers.
//
// The paper's HPO (§4.3) searches over several message-passing mechanisms
// and aggregation strategies; the selected architecture is a single
// EdgeConv layer with mean aggregation.  This module implements three of
// the candidate mechanisms with full backward passes:
//
//   EdgeConv  (Wang et al.)   m_ij = W [h_i ; h_j - h_i]
//   GINE      (Hu et al.)     m_ij = relu(h_j + embed(w_ij)), GIN update
//   GCN-style mean conv       m_ij = h_j (with self-loop), linear update
//   GATv2     (Brody et al.)  attention-weighted neighbour sum; the
//                             aggregation argument is ignored (softmax
//                             attention is its own aggregation)
//
// and the aggregation strategies mean / sum / max / multi (concat of all
// three, the PNA-flavoured MultiAggregation).  Every layer ends with
// LayerNorm + ReLU at the node level, per §3.1.

#include <memory>
#include <string>
#include <vector>

#include "gnn/graph.hpp"
#include "nn/layer.hpp"
#include "nn/layernorm.hpp"
#include "nn/linear.hpp"

namespace mcmi::gnn {

enum class Aggregation { kMean, kSum, kMax, kMulti };
enum class LayerKind { kEdgeConv, kGine, kGcn, kGatv2 };

std::string aggregation_name(Aggregation a);
std::string layer_kind_name(LayerKind k);
Aggregation parse_aggregation(const std::string& name);
LayerKind parse_layer_kind(const std::string& name);

/// Abstract message-passing layer over a fixed graph.
class GnnLayer {
 public:
  virtual ~GnnLayer() = default;

  /// h (n x in) -> h' (n x out).  Caches activations for backward().
  virtual nn::Tensor forward(const Graph& g, const nn::Tensor& h,
                             bool train) = 0;
  /// Returns dL/dh; accumulates parameter gradients.
  virtual nn::Tensor backward(const Graph& g, const nn::Tensor& grad_out) = 0;
  virtual std::vector<nn::Parameter*> parameters() = 0;
  [[nodiscard]] virtual index_t out_features() const = 0;
};

/// Factory covering the layer-type x aggregation search space.
std::unique_ptr<GnnLayer> make_gnn_layer(LayerKind kind, Aggregation agg,
                                         index_t in_features,
                                         index_t out_features, u64 seed);

// ---------------------------------------------------------------------------
// Shared neighbourhood aggregation machinery (used by the layer classes).
// ---------------------------------------------------------------------------

/// Aggregate per-edge messages (E x d) into node outputs (n x d or n x 3d
/// for kMulti).  `argmax` receives the winning edge per (node, channel) for
/// the max reduction so the backward pass can route gradients.
nn::Tensor aggregate_messages(const Graph& g, const nn::Tensor& messages,
                              Aggregation agg,
                              std::vector<index_t>& argmax);

/// Scatter node gradients back onto edges — the adjoint of
/// aggregate_messages.
nn::Tensor scatter_gradients(const Graph& g, const nn::Tensor& grad_nodes,
                             Aggregation agg, index_t message_width,
                             const std::vector<index_t>& argmax);

/// Output width of the aggregation for a given message width.
index_t aggregated_width(Aggregation agg, index_t message_width);

}  // namespace mcmi::gnn
