#pragma once
// GNN stack: l_g message-passing layers + global mean pooling, producing the
// graph embedding h_g of §3.1.

#include <memory>
#include <vector>

#include "gnn/layers.hpp"

namespace mcmi::gnn {

struct GnnConfig {
  LayerKind kind = LayerKind::kEdgeConv;     ///< paper-selected default
  Aggregation aggregation = Aggregation::kMean;  ///< paper-selected default
  index_t hidden = 64;   ///< embedding width (paper: 256)
  index_t layers = 1;    ///< message-passing depth (paper: 1)
};

class GnnStack {
 public:
  GnnStack(const GnnConfig& config, index_t node_feature_width, u64 seed);

  /// Graph -> pooled embedding h_g (1 x hidden).  Node degrees are passed
  /// through log1p before the first layer so huge-degree graphs do not
  /// saturate the early activations.
  nn::Tensor forward(const Graph& graph, bool train);

  /// Backward from dL/dh_g; accumulates parameter gradients.
  void backward(const Graph& graph, const nn::Tensor& grad_embedding);

  std::vector<nn::Parameter*> parameters();

  [[nodiscard]] index_t embedding_width() const { return config_.hidden; }
  [[nodiscard]] const GnnConfig& config() const { return config_; }

 private:
  GnnConfig config_;
  std::vector<std::unique_ptr<GnnLayer>> layers_;
  index_t last_num_nodes_ = 0;
};

}  // namespace mcmi::gnn
