#include "gnn/layers.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "core/error.hpp"

namespace mcmi::gnn {

std::string aggregation_name(Aggregation a) {
  switch (a) {
    case Aggregation::kMean: return "mean";
    case Aggregation::kSum: return "sum";
    case Aggregation::kMax: return "max";
    case Aggregation::kMulti: return "multi";
  }
  MCMI_FAIL("invalid aggregation");
}

std::string layer_kind_name(LayerKind k) {
  switch (k) {
    case LayerKind::kEdgeConv: return "edgeconv";
    case LayerKind::kGine: return "gine";
    case LayerKind::kGcn: return "gcn";
    case LayerKind::kGatv2: return "gatv2";
  }
  MCMI_FAIL("invalid layer kind");
}

Aggregation parse_aggregation(const std::string& name) {
  if (name == "mean") return Aggregation::kMean;
  if (name == "sum") return Aggregation::kSum;
  if (name == "max") return Aggregation::kMax;
  if (name == "multi") return Aggregation::kMulti;
  MCMI_FAIL("unknown aggregation '" << name << "'");
}

LayerKind parse_layer_kind(const std::string& name) {
  if (name == "edgeconv") return LayerKind::kEdgeConv;
  if (name == "gine") return LayerKind::kGine;
  if (name == "gcn") return LayerKind::kGcn;
  if (name == "gatv2") return LayerKind::kGatv2;
  MCMI_FAIL("unknown GNN layer kind '" << name << "'");
}

index_t aggregated_width(Aggregation agg, index_t message_width) {
  return agg == Aggregation::kMulti ? 3 * message_width : message_width;
}

nn::Tensor aggregate_messages(const Graph& g, const nn::Tensor& messages,
                              Aggregation agg, std::vector<index_t>& argmax) {
  const index_t n = g.num_nodes;
  const index_t m = messages.cols();
  MCMI_CHECK(messages.rows() == g.num_edges(),
             "message count != edge count");
  const index_t width = aggregated_width(agg, m);
  nn::Tensor out(n, width);

  const bool need_max = agg == Aggregation::kMax || agg == Aggregation::kMulti;
  if (need_max) {
    argmax.assign(static_cast<std::size_t>(n) * m, -1);
  } else {
    argmax.clear();
  }

#pragma omp parallel for schedule(static) if (n > 256)
  for (index_t i = 0; i < n; ++i) {
    const index_t begin = g.edge_ptr[i];
    const index_t end = g.edge_ptr[i + 1];
    const index_t deg = end - begin;
    if (deg == 0) continue;  // isolated node: aggregated features stay 0

    // Offsets of the (mean, max, sum) sections inside the output row.
    const index_t mean_off = 0;
    const index_t max_off = agg == Aggregation::kMulti ? m
                            : agg == Aggregation::kMax ? 0
                                                       : -1;
    const index_t sum_off = agg == Aggregation::kMulti ? 2 * m
                            : agg == Aggregation::kSum ? 0
                                                       : -1;
    for (index_t e = begin; e < end; ++e) {
      for (index_t c = 0; c < m; ++c) {
        const real_t v = messages(e, c);
        if (agg == Aggregation::kMean || agg == Aggregation::kMulti) {
          out(i, mean_off + c) += v;
        }
        if (sum_off >= 0 && agg != Aggregation::kMean) {
          if (agg == Aggregation::kSum) out(i, sum_off + c) += v;
          else out(i, sum_off + c) += v;  // multi: sum section
        }
        if (need_max) {
          index_t& arg = argmax[static_cast<std::size_t>(i) * m + c];
          if (arg < 0 || v > out(i, max_off + c)) {
            out(i, max_off + c) = v;
            arg = e;
          }
        }
      }
    }
    if (agg == Aggregation::kMean || agg == Aggregation::kMulti) {
      const real_t inv_deg = 1.0 / static_cast<real_t>(deg);
      for (index_t c = 0; c < m; ++c) out(i, mean_off + c) *= inv_deg;
    }
  }
  return out;
}

nn::Tensor scatter_gradients(const Graph& g, const nn::Tensor& grad_nodes,
                             Aggregation agg, index_t message_width,
                             const std::vector<index_t>& argmax) {
  const index_t n = g.num_nodes;
  const index_t m = message_width;
  MCMI_CHECK(grad_nodes.cols() == aggregated_width(agg, m),
             "scatter: width mismatch");
  nn::Tensor grad_edges(g.num_edges(), m);

  for (index_t i = 0; i < n; ++i) {
    const index_t begin = g.edge_ptr[i];
    const index_t end = g.edge_ptr[i + 1];
    const index_t deg = end - begin;
    if (deg == 0) continue;
    const real_t inv_deg = 1.0 / static_cast<real_t>(deg);

    if (agg == Aggregation::kMean || agg == Aggregation::kMulti) {
      for (index_t e = begin; e < end; ++e) {
        for (index_t c = 0; c < m; ++c) {
          grad_edges(e, c) += grad_nodes(i, c) * inv_deg;
        }
      }
    }
    if (agg == Aggregation::kSum || agg == Aggregation::kMulti) {
      const index_t off = agg == Aggregation::kMulti ? 2 * m : 0;
      for (index_t e = begin; e < end; ++e) {
        for (index_t c = 0; c < m; ++c) {
          grad_edges(e, c) += grad_nodes(i, off + c);
        }
      }
    }
    if (agg == Aggregation::kMax || agg == Aggregation::kMulti) {
      const index_t off = agg == Aggregation::kMulti ? m : 0;
      for (index_t c = 0; c < m; ++c) {
        const index_t e = argmax[static_cast<std::size_t>(i) * m + c];
        if (e >= 0) grad_edges(e, c) += grad_nodes(i, off + c);
      }
    }
  }
  return grad_edges;
}

namespace {

/// Node-level LayerNorm + ReLU epilogue shared by all three layer kinds.
class NodeEpilogue {
 public:
  NodeEpilogue(index_t features) : norm_(features) {}

  nn::Tensor forward(const nn::Tensor& x, bool train) {
    pre_relu_ = norm_.forward(x, train);
    nn::Tensor out = pre_relu_;
    for (real_t& v : out.data()) v = v > 0.0 ? v : 0.0;
    return out;
  }

  nn::Tensor backward(const nn::Tensor& grad_out) {
    nn::Tensor g = grad_out;
    for (std::size_t i = 0; i < g.data().size(); ++i) {
      if (pre_relu_.data()[i] <= 0.0) g.data()[i] = 0.0;
    }
    return norm_.backward(g);
  }

  std::vector<nn::Parameter*> parameters() { return norm_.parameters(); }

 private:
  nn::LayerNorm norm_;
  nn::Tensor pre_relu_;
};

/// EdgeConv: m_ij = W [h_i ; h_j - h_i] + b, aggregated, then LN + ReLU.
class EdgeConvLayer final : public GnnLayer {
 public:
  EdgeConvLayer(Aggregation agg, index_t in, index_t out, u64 seed)
      : agg_(agg), in_(in), out_(out),
        message_(2 * in, out, mix64(seed + 1)),
        projection_(aggregated_width(agg, out), out, mix64(seed + 2)),
        epilogue_(out) {}

  nn::Tensor forward(const Graph& g, const nn::Tensor& h, bool train) override {
    MCMI_CHECK(h.cols() == in_, "edgeconv: feature width mismatch");
    const index_t e_count = g.num_edges();
    nn::Tensor edge_input(e_count, 2 * in_);
    for (index_t i = 0; i < g.num_nodes; ++i) {
      for (index_t e = g.edge_ptr[i]; e < g.edge_ptr[i + 1]; ++e) {
        const index_t j = g.dst[e];
        for (index_t c = 0; c < in_; ++c) {
          edge_input(e, c) = h(i, c);
          edge_input(e, in_ + c) = h(j, c) - h(i, c);
        }
      }
    }
    const nn::Tensor messages = message_.forward(edge_input, train);
    nn::Tensor agg = aggregate_messages(g, messages, agg_, argmax_);
    if (agg_ == Aggregation::kMulti) agg = projection_.forward(agg, train);
    return epilogue_.forward(agg, train);
  }

  nn::Tensor backward(const Graph& g, const nn::Tensor& grad_out) override {
    nn::Tensor grad = epilogue_.backward(grad_out);
    if (agg_ == Aggregation::kMulti) grad = projection_.backward(grad);
    const nn::Tensor grad_edges =
        scatter_gradients(g, grad, agg_, out_, argmax_);
    const nn::Tensor grad_edge_input = message_.backward(grad_edges);
    nn::Tensor grad_h(g.num_nodes, in_);
    for (index_t i = 0; i < g.num_nodes; ++i) {
      for (index_t e = g.edge_ptr[i]; e < g.edge_ptr[i + 1]; ++e) {
        const index_t j = g.dst[e];
        for (index_t c = 0; c < in_; ++c) {
          const real_t ga = grad_edge_input(e, c);           // d/d h_i part 1
          const real_t gb = grad_edge_input(e, in_ + c);     // d/d (h_j - h_i)
          grad_h(i, c) += ga - gb;
          grad_h(j, c) += gb;
        }
      }
    }
    return grad_h;
  }

  std::vector<nn::Parameter*> parameters() override {
    std::vector<nn::Parameter*> out;
    for (auto* p : message_.parameters()) out.push_back(p);
    if (agg_ == Aggregation::kMulti) {
      for (auto* p : projection_.parameters()) out.push_back(p);
    }
    for (auto* p : epilogue_.parameters()) out.push_back(p);
    return out;
  }

  [[nodiscard]] index_t out_features() const override { return out_; }

 private:
  Aggregation agg_;
  index_t in_;
  index_t out_;
  nn::Linear message_;
  nn::Linear projection_;  // only used for multi aggregation
  NodeEpilogue epilogue_;
  std::vector<index_t> argmax_;
};

/// GINE: m_ij = relu(h_j + embed(w_ij)); s = (1+eps) h + agg(m);
/// out = LN(ReLU')(W s + b) — with LN+ReLU as the shared epilogue.
class GineLayer final : public GnnLayer {
 public:
  GineLayer(Aggregation agg, index_t in, index_t out, u64 seed)
      : agg_(agg), in_(in), out_(out),
        edge_embed_(1, in, mix64(seed + 3)),
        projection_(aggregated_width(agg, in), in, mix64(seed + 4)),
        update_(in, out, mix64(seed + 5)),
        eps_("gine.eps", nn::Tensor(1, 1, 0.0)),
        epilogue_(out) {}

  nn::Tensor forward(const Graph& g, const nn::Tensor& h, bool train) override {
    MCMI_CHECK(h.cols() == in_, "gine: feature width mismatch");
    const index_t e_count = g.num_edges();
    nn::Tensor weights(e_count, 1);
    for (index_t e = 0; e < e_count; ++e) weights(e, 0) = g.weight[e];
    const nn::Tensor embedded = edge_embed_.forward(weights, train);

    pre_relu_edges_ = nn::Tensor(e_count, in_);
    nn::Tensor messages(e_count, in_);
    for (index_t i = 0; i < g.num_nodes; ++i) {
      for (index_t e = g.edge_ptr[i]; e < g.edge_ptr[i + 1]; ++e) {
        const index_t j = g.dst[e];
        for (index_t c = 0; c < in_; ++c) {
          const real_t pre = h(j, c) + embedded(e, c);
          pre_relu_edges_(e, c) = pre;
          messages(e, c) = pre > 0.0 ? pre : 0.0;
        }
      }
    }
    nn::Tensor agg = aggregate_messages(g, messages, agg_, argmax_);
    if (agg_ == Aggregation::kMulti) agg = projection_.forward(agg, train);
    h_cache_ = h;
    nn::Tensor s = agg;
    const real_t one_eps = 1.0 + eps_.value(0, 0);
    for (index_t i = 0; i < g.num_nodes; ++i) {
      for (index_t c = 0; c < in_; ++c) s(i, c) += one_eps * h(i, c);
    }
    return epilogue_.forward(update_.forward(s, train), train);
  }

  nn::Tensor backward(const Graph& g, const nn::Tensor& grad_out) override {
    nn::Tensor grad = update_.backward(epilogue_.backward(grad_out));
    // Split into the (1+eps) h term and the aggregation term.
    const real_t one_eps = 1.0 + eps_.value(0, 0);
    nn::Tensor grad_h(g.num_nodes, in_);
    for (index_t i = 0; i < g.num_nodes; ++i) {
      for (index_t c = 0; c < in_; ++c) {
        grad_h(i, c) += one_eps * grad(i, c);
        eps_.grad(0, 0) += grad(i, c) * h_cache_(i, c);
      }
    }
    nn::Tensor grad_agg = grad;
    if (agg_ == Aggregation::kMulti) grad_agg = projection_.backward(grad_agg);
    nn::Tensor grad_edges =
        scatter_gradients(g, grad_agg, agg_, in_, argmax_);
    // Through the edge ReLU.
    for (std::size_t i = 0; i < grad_edges.data().size(); ++i) {
      if (pre_relu_edges_.data()[i] <= 0.0) grad_edges.data()[i] = 0.0;
    }
    // To h_j and to the edge embedding.
    for (index_t i = 0; i < g.num_nodes; ++i) {
      for (index_t e = g.edge_ptr[i]; e < g.edge_ptr[i + 1]; ++e) {
        const index_t j = g.dst[e];
        for (index_t c = 0; c < in_; ++c) {
          grad_h(j, c) += grad_edges(e, c);
        }
      }
    }
    edge_embed_.backward(grad_edges);  // weight-scalar grads are discarded
    return grad_h;
  }

  std::vector<nn::Parameter*> parameters() override {
    std::vector<nn::Parameter*> out;
    for (auto* p : edge_embed_.parameters()) out.push_back(p);
    if (agg_ == Aggregation::kMulti) {
      for (auto* p : projection_.parameters()) out.push_back(p);
    }
    for (auto* p : update_.parameters()) out.push_back(p);
    out.push_back(&eps_);
    for (auto* p : epilogue_.parameters()) out.push_back(p);
    return out;
  }

  [[nodiscard]] index_t out_features() const override { return out_; }

 private:
  Aggregation agg_;
  index_t in_;
  index_t out_;
  nn::Linear edge_embed_;
  nn::Linear projection_;
  nn::Linear update_;
  nn::Parameter eps_;
  NodeEpilogue epilogue_;
  nn::Tensor pre_relu_edges_;
  nn::Tensor h_cache_;
  std::vector<index_t> argmax_;
};

/// GCN-style convolution: aggregate neighbour features (self-loops come from
/// the matrix diagonal), then Linear + LN + ReLU.
class GcnLayer final : public GnnLayer {
 public:
  GcnLayer(Aggregation agg, index_t in, index_t out, u64 seed)
      : agg_(agg), in_(in), out_(out),
        update_(aggregated_width(agg, in), out, mix64(seed + 6)),
        epilogue_(out) {}

  nn::Tensor forward(const Graph& g, const nn::Tensor& h, bool train) override {
    MCMI_CHECK(h.cols() == in_, "gcn: feature width mismatch");
    nn::Tensor messages(g.num_edges(), in_);
    for (index_t i = 0; i < g.num_nodes; ++i) {
      for (index_t e = g.edge_ptr[i]; e < g.edge_ptr[i + 1]; ++e) {
        const index_t j = g.dst[e];
        for (index_t c = 0; c < in_; ++c) messages(e, c) = h(j, c);
      }
    }
    const nn::Tensor agg = aggregate_messages(g, messages, agg_, argmax_);
    return epilogue_.forward(update_.forward(agg, train), train);
  }

  nn::Tensor backward(const Graph& g, const nn::Tensor& grad_out) override {
    const nn::Tensor grad_agg =
        update_.backward(epilogue_.backward(grad_out));
    const nn::Tensor grad_edges =
        scatter_gradients(g, grad_agg, agg_, in_, argmax_);
    nn::Tensor grad_h(g.num_nodes, in_);
    for (index_t i = 0; i < g.num_nodes; ++i) {
      for (index_t e = g.edge_ptr[i]; e < g.edge_ptr[i + 1]; ++e) {
        const index_t j = g.dst[e];
        for (index_t c = 0; c < in_; ++c) grad_h(j, c) += grad_edges(e, c);
      }
    }
    return grad_h;
  }

  std::vector<nn::Parameter*> parameters() override {
    std::vector<nn::Parameter*> out;
    for (auto* p : update_.parameters()) out.push_back(p);
    for (auto* p : epilogue_.parameters()) out.push_back(p);
    return out;
  }

  [[nodiscard]] index_t out_features() const override { return out_; }

 private:
  Aggregation agg_;
  index_t in_;
  index_t out_;
  nn::Linear update_;
  NodeEpilogue epilogue_;
  std::vector<index_t> argmax_;
};

/// GATv2 attention convolution (Brody et al., 2022):
///   z_e   = S_i + T_j          with S = h W_s, T = h W_t
///   score = a . leaky_relu(z_e)
///   alpha = softmax over the edges of node i
///   out_i = sum_e alpha_e T_j  -> LN + ReLU epilogue
/// Softmax attention replaces the pluggable aggregation.
class Gatv2Layer final : public GnnLayer {
 public:
  Gatv2Layer(index_t in, index_t out, u64 seed)
      : in_(in), out_(out),
        source_(in, out, mix64(seed + 7)),
        target_(in, out, mix64(seed + 8)),
        attention_("gatv2.attention", nn::Tensor(1, out)),
        epilogue_(out) {
    Xoshiro256 rng = make_stream(seed, 0xA77);
    attention_.value.fill_uniform(rng, std::sqrt(3.0 / out));
  }

  nn::Tensor forward(const Graph& g, const nn::Tensor& h, bool train) override {
    MCMI_CHECK(h.cols() == in_, "gatv2: feature width mismatch");
    const index_t e_count = g.num_edges();
    s_cache_ = source_.forward(h, train);  // n x out
    t_cache_ = target_.forward(h, train);  // n x out

    leaky_ = nn::Tensor(e_count, out_);
    z_positive_.assign(static_cast<std::size_t>(e_count) * out_, 0);
    alpha_.assign(static_cast<std::size_t>(e_count), 0.0);

    nn::Tensor out(g.num_nodes, out_);
    for (index_t i = 0; i < g.num_nodes; ++i) {
      const index_t begin = g.edge_ptr[i];
      const index_t end = g.edge_ptr[i + 1];
      if (begin == end) continue;
      real_t max_score = -std::numeric_limits<real_t>::infinity();
      std::vector<real_t> scores(static_cast<std::size_t>(end - begin));
      for (index_t e = begin; e < end; ++e) {
        const index_t j = g.dst[e];
        real_t score = 0.0;
        for (index_t c = 0; c < out_; ++c) {
          const real_t z = s_cache_(i, c) + t_cache_(j, c);
          const bool pos = z > 0.0;
          z_positive_[static_cast<std::size_t>(e) * out_ + c] = pos ? 1 : 0;
          const real_t l = pos ? z : 0.2 * z;  // LeakyReLU(0.2)
          leaky_(e, c) = l;
          score += attention_.value(0, c) * l;
        }
        scores[e - begin] = score;
        max_score = std::max(max_score, score);
      }
      real_t denom = 0.0;
      for (index_t e = begin; e < end; ++e) {
        const real_t w = std::exp(scores[e - begin] - max_score);
        alpha_[e] = w;
        denom += w;
      }
      for (index_t e = begin; e < end; ++e) {
        alpha_[e] /= denom;
        const index_t j = g.dst[e];
        for (index_t c = 0; c < out_; ++c) {
          out(i, c) += alpha_[e] * t_cache_(j, c);
        }
      }
    }
    return epilogue_.forward(out, train);
  }

  nn::Tensor backward(const Graph& g, const nn::Tensor& grad_out) override {
    const nn::Tensor grad = epilogue_.backward(grad_out);
    nn::Tensor grad_s(g.num_nodes, out_);
    nn::Tensor grad_t(g.num_nodes, out_);

    for (index_t i = 0; i < g.num_nodes; ++i) {
      const index_t begin = g.edge_ptr[i];
      const index_t end = g.edge_ptr[i + 1];
      if (begin == end) continue;
      // d out_i / d alpha_e and the direct T path.
      std::vector<real_t> dalpha(static_cast<std::size_t>(end - begin), 0.0);
      for (index_t e = begin; e < end; ++e) {
        const index_t j = g.dst[e];
        for (index_t c = 0; c < out_; ++c) {
          dalpha[e - begin] += grad(i, c) * t_cache_(j, c);
          grad_t(j, c) += alpha_[e] * grad(i, c);
        }
      }
      // Softmax backward: dscore_e = alpha_e (dalpha_e - sum alpha dalpha).
      real_t weighted = 0.0;
      for (index_t e = begin; e < end; ++e) {
        weighted += alpha_[e] * dalpha[e - begin];
      }
      for (index_t e = begin; e < end; ++e) {
        const real_t dscore = alpha_[e] * (dalpha[e - begin] - weighted);
        const index_t j = g.dst[e];
        for (index_t c = 0; c < out_; ++c) {
          // score = a . leaky(z): gradient to a and through LeakyReLU to z.
          attention_.grad(0, c) += dscore * leaky_(e, c);
          const real_t slope =
              z_positive_[static_cast<std::size_t>(e) * out_ + c] ? 1.0 : 0.2;
          const real_t dz = dscore * attention_.value(0, c) * slope;
          grad_s(i, c) += dz;
          grad_t(j, c) += dz;
        }
      }
    }
    nn::Tensor grad_h = source_.backward(grad_s);
    grad_h.add_scaled(target_.backward(grad_t));
    return grad_h;
  }

  std::vector<nn::Parameter*> parameters() override {
    std::vector<nn::Parameter*> out;
    for (auto* p : source_.parameters()) out.push_back(p);
    for (auto* p : target_.parameters()) out.push_back(p);
    out.push_back(&attention_);
    for (auto* p : epilogue_.parameters()) out.push_back(p);
    return out;
  }

  [[nodiscard]] index_t out_features() const override { return out_; }

 private:
  index_t in_;
  index_t out_;
  nn::Linear source_;
  nn::Linear target_;
  nn::Parameter attention_;
  NodeEpilogue epilogue_;
  nn::Tensor s_cache_;
  nn::Tensor t_cache_;
  nn::Tensor leaky_;
  std::vector<char> z_positive_;
  std::vector<real_t> alpha_;
};

}  // namespace

std::unique_ptr<GnnLayer> make_gnn_layer(LayerKind kind, Aggregation agg,
                                         index_t in_features,
                                         index_t out_features, u64 seed) {
  switch (kind) {
    case LayerKind::kEdgeConv:
      return std::make_unique<EdgeConvLayer>(agg, in_features, out_features,
                                             seed);
    case LayerKind::kGine:
      return std::make_unique<GineLayer>(agg, in_features, out_features, seed);
    case LayerKind::kGcn:
      return std::make_unique<GcnLayer>(agg, in_features, out_features, seed);
    case LayerKind::kGatv2:
      return std::make_unique<Gatv2Layer>(in_features, out_features, seed);
  }
  MCMI_FAIL("invalid layer kind");
}

}  // namespace mcmi::gnn
