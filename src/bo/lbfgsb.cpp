#include "bo/lbfgsb.hpp"

#include <algorithm>
#include <cmath>
#include <deque>

#include "core/error.hpp"

namespace mcmi {

void Bounds::project(std::vector<real_t>& x) const {
  MCMI_CHECK(x.size() == lower.size() && x.size() == upper.size(),
             "bounds dimension mismatch");
  for (std::size_t i = 0; i < x.size(); ++i) {
    x[i] = std::clamp(x[i], lower[i], upper[i]);
  }
}

namespace {

struct Pair {
  std::vector<real_t> s;
  std::vector<real_t> y;
  real_t rho = 0.0;  // 1 / (y^T s)
};

real_t dot(const std::vector<real_t>& a, const std::vector<real_t>& b) {
  real_t sum = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) sum += a[i] * b[i];
  return sum;
}

/// Projected gradient: zero on components pinned at an active bound.
std::vector<real_t> projected_gradient(const std::vector<real_t>& x,
                                       const std::vector<real_t>& g,
                                       const Bounds& b) {
  std::vector<real_t> pg = g;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const bool at_lower = x[i] <= b.lower[i] && g[i] > 0.0;
    const bool at_upper = x[i] >= b.upper[i] && g[i] < 0.0;
    if (at_lower || at_upper) pg[i] = 0.0;
  }
  return pg;
}

real_t inf_norm(const std::vector<real_t>& v) {
  real_t best = 0.0;
  for (real_t x : v) best = std::max(best, std::abs(x));
  return best;
}

}  // namespace

LbfgsbResult minimize_lbfgsb(const Objective& f, std::vector<real_t> x0,
                             const Bounds& bounds,
                             const LbfgsbOptions& opt) {
  const index_t n = bounds.dim();
  MCMI_CHECK(static_cast<index_t>(x0.size()) == n,
             "x0 dimension " << x0.size() << " != bounds dim " << n);
  bounds.project(x0);

  LbfgsbResult result;
  result.x = std::move(x0);

  std::vector<real_t> g(static_cast<std::size_t>(n));
  result.value = f(result.x, g);
  result.evaluations = 1;

  std::deque<Pair> memory;

  for (index_t it = 0; it < opt.max_iterations; ++it) {
    result.iterations = it;
    const std::vector<real_t> pg = projected_gradient(result.x, g, bounds);
    if (inf_norm(pg) < opt.grad_tolerance) {
      result.converged = true;
      return result;
    }

    // Two-loop recursion on the projected gradient.
    std::vector<real_t> q = pg;
    std::vector<real_t> alpha(memory.size());
    for (std::size_t k = memory.size(); k-- > 0;) {
      alpha[k] = memory[k].rho * dot(memory[k].s, q);
      for (std::size_t i = 0; i < q.size(); ++i) {
        q[i] -= alpha[k] * memory[k].y[i];
      }
    }
    if (!memory.empty()) {
      const Pair& last = memory.back();
      const real_t gamma = dot(last.s, last.y) / dot(last.y, last.y);
      for (real_t& v : q) v *= gamma;
    }
    for (std::size_t k = 0; k < memory.size(); ++k) {
      const real_t beta = memory[k].rho * dot(memory[k].y, q);
      for (std::size_t i = 0; i < q.size(); ++i) {
        q[i] += (alpha[k] - beta) * memory[k].s[i];
      }
    }
    // Descent direction d = -H pg, with active components frozen.
    std::vector<real_t> d(q.size());
    for (std::size_t i = 0; i < q.size(); ++i) d[i] = -q[i];
    for (std::size_t i = 0; i < d.size(); ++i) {
      if (pg[i] == 0.0) d[i] = 0.0;
    }
    real_t directional = dot(d, g);
    if (directional >= 0.0) {
      // Fall back to steepest descent when curvature information misleads.
      for (std::size_t i = 0; i < d.size(); ++i) d[i] = -pg[i];
      directional = dot(d, g);
      if (directional >= 0.0) {
        result.converged = true;  // no descent available in the box
        return result;
      }
    }

    // Weak-Wolfe line search by bisection (Lewis & Overton): the curvature
    // condition guarantees s^T y > 0 on acceptance, so the BFGS memory stays
    // positive definite even on nonconvex objectives — Armijo alone stalls
    // on curved valleys because every pair gets rejected.
    const real_t c2 = 0.9;
    real_t t = 1.0, t_lo = 0.0, t_hi = 0.0;  // t_hi == 0 means unbounded
    std::vector<real_t> x_new(result.x.size());
    std::vector<real_t> g_new(g.size());
    real_t f_new = result.value;
    bool accepted = false;
    for (int ls = 0; ls < 50 && t >= opt.step_tolerance; ++ls) {
      for (std::size_t i = 0; i < x_new.size(); ++i) {
        x_new[i] = result.x[i] + t * d[i];
      }
      bounds.project(x_new);
      f_new = f(x_new, g_new);
      ++result.evaluations;
      // Both conditions are evaluated on the actual projected displacement.
      real_t decrease = 0.0, new_slope = 0.0;
      for (std::size_t i = 0; i < x_new.size(); ++i) {
        const real_t dx = x_new[i] - result.x[i];
        decrease += g[i] * dx;
        new_slope += g_new[i] * dx;
      }
      if (f_new > result.value + opt.armijo_c1 * decrease ||
          f_new >= result.value) {
        t_hi = t;  // too long (or no progress): shrink
        t = 0.5 * (t_lo + t_hi);
      } else if (new_slope < c2 * decrease) {
        t_lo = t;  // curvature still strongly negative: lengthen
        t = (t_hi == 0.0) ? 2.0 * t : 0.5 * (t_lo + t_hi);
      } else {
        accepted = true;
        break;
      }
    }
    if (!accepted) {
      // Fall back to the best sufficient-decrease point if one was found.
      if (f_new < result.value) {
        accepted = true;
      } else {
        result.converged = inf_norm(pg) < std::sqrt(opt.grad_tolerance);
        return result;
      }
    }

    // Curvature update.
    Pair pair;
    pair.s.resize(x_new.size());
    pair.y.resize(g_new.size());
    for (std::size_t i = 0; i < x_new.size(); ++i) {
      pair.s[i] = x_new[i] - result.x[i];
      pair.y[i] = g_new[i] - g[i];
    }
    const real_t sy = dot(pair.s, pair.y);
    if (sy > 1e-12 * std::sqrt(dot(pair.s, pair.s) * dot(pair.y, pair.y))) {
      pair.rho = 1.0 / sy;
      memory.push_back(std::move(pair));
      if (static_cast<index_t>(memory.size()) > opt.history) {
        memory.pop_front();
      }
    }

    result.x = x_new;
    result.value = f_new;
    g = g_new;
  }
  return result;
}

}  // namespace mcmi
