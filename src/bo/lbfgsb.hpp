#pragma once
// Bound-constrained limited-memory BFGS (L-BFGS-B).
//
// §3.2: "we minimise the negative EI using the gradient-based quasi-Newton
// method L-BFGS-B; back-propagation supplies the exact gradient, which
// L-BFGS-B exploits to build curvature information."
//
// This is the Byrd–Lu–Nocedal–Zhu algorithm in its projected form: the
// active set comes from the projected gradient, the two-loop recursion runs
// on the free variables, and a projected Armijo backtracking line search
// globalises each step.  For the paper's 3-dimensional x_M box this reaches
// the same optima as the full generalized-Cauchy-point variant (validated on
// bound-constrained Rosenbrock/quadratic tests).

#include <functional>
#include <vector>

#include "core/types.hpp"

namespace mcmi {

/// Box constraints lower[i] <= x[i] <= upper[i].
struct Bounds {
  std::vector<real_t> lower;
  std::vector<real_t> upper;

  [[nodiscard]] index_t dim() const {
    return static_cast<index_t>(lower.size());
  }
  /// Clip a point into the box.
  void project(std::vector<real_t>& x) const;
};

/// Objective: fills `grad` and returns f(x).
using Objective =
    std::function<real_t(const std::vector<real_t>&, std::vector<real_t>&)>;

struct LbfgsbOptions {
  index_t max_iterations = 200;
  index_t history = 8;             ///< stored (s, y) pairs
  real_t grad_tolerance = 1e-8;    ///< on the projected gradient, inf-norm
  real_t step_tolerance = 1e-14;   ///< minimum line-search step
  real_t armijo_c1 = 1e-4;
};

struct LbfgsbResult {
  std::vector<real_t> x;
  real_t value = 0.0;
  index_t iterations = 0;
  index_t evaluations = 0;
  bool converged = false;
};

/// Minimise f over the box.  x0 is projected into the box first.
LbfgsbResult minimize_lbfgsb(const Objective& f, std::vector<real_t> x0,
                             const Bounds& bounds,
                             const LbfgsbOptions& options = {});

}  // namespace mcmi
