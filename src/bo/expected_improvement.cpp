#include "bo/expected_improvement.hpp"

#include <algorithm>
#include <cmath>

#include "core/error.hpp"
#include "stats/normal.hpp"

namespace mcmi {

real_t expected_improvement(real_t mu, real_t sigma, const EiContext& ctx) {
  const real_t a = ctx.y_min - mu - ctx.xi;
  if (sigma <= 1e-12) return std::max(0.0, a);
  const real_t z = a / sigma;
  return a * normal_cdf(z) + sigma * normal_pdf(z);
}

real_t expected_improvement_grad(real_t mu, real_t sigma,
                                 const std::vector<real_t>& dmu,
                                 const std::vector<real_t>& dsigma,
                                 const EiContext& ctx,
                                 std::vector<real_t>& grad) {
  MCMI_CHECK(dmu.size() == dsigma.size(), "gradient size mismatch");
  grad.assign(dmu.size(), 0.0);
  const real_t a = ctx.y_min - mu - ctx.xi;
  if (sigma <= 1e-12) {
    // Degenerate posterior: EI = max(0, a); only the mu path contributes.
    if (a > 0.0) {
      for (std::size_t i = 0; i < dmu.size(); ++i) grad[i] = -dmu[i];
    }
    return std::max(0.0, a);
  }
  const real_t z = a / sigma;
  const real_t cdf = normal_cdf(z);
  const real_t pdf = normal_pdf(z);
  // dEI/dmu = -Phi(z); dEI/dsigma = phi(z) (the z-terms cancel exactly).
  for (std::size_t i = 0; i < dmu.size(); ++i) {
    grad[i] = -cdf * dmu[i] + pdf * dsigma[i];
  }
  return a * cdf + sigma * pdf;
}

}  // namespace mcmi
