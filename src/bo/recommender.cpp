#include "bo/recommender.hpp"

#include <algorithm>
#include <cmath>

#include "core/error.hpp"

namespace mcmi {

Bounds McmcSearchSpace::bounds() const {
  Bounds b;
  b.lower = {alpha_min, eps_min, delta_min};
  b.upper = {alpha_max, eps_max, delta_max};
  return b;
}

McmcParams McmcSearchSpace::sample(Xoshiro256& rng) const {
  McmcParams p;
  p.alpha = uniform(rng, alpha_min, alpha_max);
  p.eps = uniform(rng, eps_min, eps_max);
  p.delta = uniform(rng, delta_min, delta_max);
  return p;
}

namespace {

std::vector<real_t> to_point(const McmcParams& p) {
  return {p.alpha, p.eps, p.delta};
}

McmcParams to_params(const std::vector<real_t>& x) {
  return {x[0], x[1], x[2]};
}

real_t distance(const std::vector<real_t>& a, const std::vector<real_t>& b) {
  real_t d2 = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    d2 += (a[i] - b[i]) * (a[i] - b[i]);
  }
  return std::sqrt(d2);
}

}  // namespace

std::vector<Recommendation> recommend_batch(SurrogateModel& model,
                                            KrylovMethod method,
                                            const McmcSearchSpace& space,
                                            const RecommendOptions& options) {
  MCMI_CHECK(options.batch_size >= 1, "batch size must be positive");
  const Bounds bounds = space.bounds();
  const EiContext ei_ctx{options.y_min, options.xi};

  // Objective for L-BFGS-B: minimise -EI(x_M) with exact gradients from the
  // surrogate backward pass.
  auto objective = [&](const std::vector<real_t>& x,
                       std::vector<real_t>& grad) -> real_t {
    McmcParams p = to_params(x);
    const std::vector<real_t> xm = encode_xm(p, method);
    PredictionWithGrad pg = model.predict_cached_with_grad(xm);
    // The continuous components are the first three entries of x_M.
    const std::vector<real_t> dmu(pg.dmu_dxm.begin(), pg.dmu_dxm.begin() + 3);
    const std::vector<real_t> dsigma(pg.dsigma_dxm.begin(),
                                     pg.dsigma_dxm.begin() + 3);
    std::vector<real_t> ei_grad;
    const real_t ei = expected_improvement_grad(pg.value.mu, pg.value.sigma,
                                                dmu, dsigma, ei_ctx, ei_grad);
    grad.resize(3);
    for (std::size_t i = 0; i < 3; ++i) grad[i] = -ei_grad[i];
    return -ei;
  };

  std::vector<Recommendation> batch;
  std::vector<std::vector<real_t>> accepted_points;
  index_t attempt = 0;
  const index_t max_attempts = options.batch_size * 8;

  while (static_cast<index_t>(batch.size()) < options.batch_size &&
         attempt < max_attempts) {
    Xoshiro256 rng = make_stream(options.seed, 0xB0, static_cast<u64>(attempt));
    ++attempt;
    const McmcParams init = space.sample(rng);
    const LbfgsbResult res =
        minimize_lbfgsb(objective, to_point(init), bounds, options.lbfgsb);

    // Deduplicate: if the optimiser collapsed onto an existing candidate,
    // keep the raw random explorer instead (diversity matters more than a
    // marginally better EI within one batch).
    std::vector<real_t> point = res.x;
    bool duplicate = false;
    for (const auto& other : accepted_points) {
      if (distance(point, other) < options.dedup_distance) {
        duplicate = true;
        break;
      }
    }
    if (duplicate) {
      point = to_point(init);
      bool still_duplicate = false;
      for (const auto& other : accepted_points) {
        if (distance(point, other) < options.dedup_distance) {
          still_duplicate = true;
          break;
        }
      }
      if (still_duplicate) continue;
    }

    Recommendation rec;
    rec.params = to_params(point);
    rec.prediction =
        model.predict_cached(encode_xm(rec.params, method));
    rec.ei = expected_improvement(rec.prediction.mu, rec.prediction.sigma,
                                  ei_ctx);
    accepted_points.push_back(point);
    batch.push_back(rec);
  }

  // Highest-EI candidates first.
  std::sort(batch.begin(), batch.end(),
            [](const Recommendation& a, const Recommendation& b) {
              return a.ei > b.ei;
            });
  return batch;
}

std::vector<AlphaGroup> group_recommendations_by_alpha(
    const std::vector<Recommendation>& batch) {
  std::vector<McmcParams> grid;
  grid.reserve(batch.size());
  for (const Recommendation& rec : batch) grid.push_back(rec.params);
  return group_grid_by_alpha(grid);
}

}  // namespace mcmi
