#pragma once
// Expected Improvement acquisition (eq. 3).
//
// For a Gaussian surrogate posterior N(mu, sigma^2) and incumbent y_min:
//
//   EI(x) = (y_min - mu - xi) Phi(z) + sigma phi(z),   z = (y_min-mu-xi)/sigma
//
// with the closed-form gradient dEI = -Phi(z) dmu + phi(z) dsigma.
// xi is the exploration parameter: 0 = pure exploitation, 0.01-0.10 balanced,
// larger values favour uncertain regions (the paper benchmarks xi = 0.05 and
// xi = 1.0).

#include <vector>

#include "core/types.hpp"

namespace mcmi {

struct EiContext {
  real_t y_min = 1.0;  ///< best (lowest) observed performance metric so far
  real_t xi = 0.05;    ///< exploration parameter
};

/// EI value for a prediction (mu, sigma).  sigma <= 0 degenerates to the
/// deterministic improvement max(0, y_min - mu - xi).
real_t expected_improvement(real_t mu, real_t sigma, const EiContext& ctx);

/// EI and its gradient w.r.t. the optimisation variables, given the
/// prediction gradients dmu/dx and dsigma/dx.
real_t expected_improvement_grad(real_t mu, real_t sigma,
                                 const std::vector<real_t>& dmu,
                                 const std::vector<real_t>& dsigma,
                                 const EiContext& ctx,
                                 std::vector<real_t>& grad);

}  // namespace mcmi
