#pragma once
// Batch recommendation of MCMC parameters (the inner loop of Algorithm 1).
//
// For a fixed matrix, each of the k batch slots draws a random initial x_M
// inside the search box and runs L-BFGS-B on -EI with the exact surrogate
// input gradients.  Near-duplicate optima are replaced by fresh random
// explorers so the evaluated batch stays diverse.

#include <vector>

#include "bo/expected_improvement.hpp"
#include "bo/lbfgsb.hpp"
#include "krylov/solver.hpp"
#include "mcmc/batched_build.hpp"
#include "mcmc/params.hpp"
#include "surrogate/model.hpp"

namespace mcmi {

/// Search box for the continuous x_M components (alpha, eps, delta).
struct McmcSearchSpace {
  real_t alpha_min = 0.25;
  real_t alpha_max = 6.0;
  real_t eps_min = 0.05;
  real_t eps_max = 1.0;
  real_t delta_min = 0.05;
  real_t delta_max = 1.0;

  [[nodiscard]] Bounds bounds() const;
  /// Uniform random point in the box.
  [[nodiscard]] McmcParams sample(Xoshiro256& rng) const;
};

struct RecommendOptions {
  index_t batch_size = 32;    ///< k in Algorithm 1
  real_t xi = 0.05;           ///< EI exploration parameter
  real_t y_min = 1.0;         ///< incumbent (1.0 = unpreconditioned baseline)
  real_t dedup_distance = 1e-3;  ///< minimum L2 distance between candidates
  u64 seed = 99;
  LbfgsbOptions lbfgsb;
};

struct Recommendation {
  McmcParams params;
  real_t ei = 0.0;            ///< acquisition value at the optimum
  Prediction prediction;      ///< surrogate prediction at the optimum
};

/// Recommend a batch of k parameter vectors for `method` on the matrix that
/// is currently cached inside `model` (call model.cache_matrix first).
std::vector<Recommendation> recommend_batch(SurrogateModel& model,
                                            KrylovMethod method,
                                            const McmcSearchSpace& space,
                                            const RecommendOptions& options);

/// The batch grouped by exact alpha bits (encounter order): candidates
/// sharing an alpha run the same Markov chains, so each group evaluates
/// through one batched walk ensemble per replicate
/// (PerformanceMeasurer::measure_grid) instead of one build per candidate.
std::vector<AlphaGroup> group_recommendations_by_alpha(
    const std::vector<Recommendation>& batch);

}  // namespace mcmi
