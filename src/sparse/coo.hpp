#pragma once
// Coordinate (triplet) sparse matrix — the assembly format.
//
// Generators and the Matrix Market reader assemble entries in arbitrary
// order; CooMatrix collects them, then `compress()` sorts, merges duplicates
// (summing values, as finite-element assembly requires) and drops explicit
// zeros, ready for conversion to CSR.

#include <vector>

#include "core/types.hpp"

namespace mcmi {

/// One (row, col, value) triplet.
struct Triplet {
  index_t row = 0;
  index_t col = 0;
  real_t value = 0.0;
};

/// Mutable triplet-format sparse matrix used during assembly.
class CooMatrix {
 public:
  CooMatrix() = default;
  CooMatrix(index_t rows, index_t cols);

  /// Accumulate a value at (i, j).  Duplicate coordinates are summed by
  /// compress().
  void add(index_t i, index_t j, real_t value);

  /// Sort entries row-major, merge duplicates by summing and remove entries
  /// whose merged value is exactly zero.
  void compress();

  [[nodiscard]] index_t rows() const { return rows_; }
  [[nodiscard]] index_t cols() const { return cols_; }
  [[nodiscard]] index_t nnz() const {
    return static_cast<index_t>(entries_.size());
  }
  [[nodiscard]] const std::vector<Triplet>& entries() const {
    return entries_;
  }

 private:
  index_t rows_ = 0;
  index_t cols_ = 0;
  std::vector<Triplet> entries_;
};

}  // namespace mcmi
