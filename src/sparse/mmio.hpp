#pragma once
// Matrix Market (.mtx) I/O.
//
// Supports the coordinate format with real values in `general` or
// `symmetric` storage — the subset covering every matrix family the paper
// uses.  Writing always emits `coordinate real general`.

#include <string>

#include "sparse/csr.hpp"

namespace mcmi {

/// Read a Matrix Market coordinate file into CSR.  Symmetric storage is
/// expanded to full form.  Throws mcmi::Error on malformed input.
CsrMatrix read_matrix_market(const std::string& path);

/// Write a CSR matrix as `matrix coordinate real general` with 1-based
/// indices.
void write_matrix_market(const CsrMatrix& matrix, const std::string& path);

}  // namespace mcmi
