#pragma once
// Compressed sparse row matrix — the workhorse format.
//
// All solver-facing operations (SpMV, transpose, diagonal manipulation,
// norms) live here.  SpMV runs through a per-matrix SpmvPlan — nnz-balanced
// row chunks with fused product+reduction kernels, built lazily on first
// product and cached for the life of the matrix (the shape is immutable) —
// and everything else is deterministic single-pass code.  Column indices
// within each row are kept sorted, which the MCMC sampler and ILU(0) rely
// on for binary search.

#include <memory>
#include <string>
#include <vector>

#include "core/types.hpp"
#include "sparse/coo.hpp"
#include "sparse/sharded_plan.hpp"
#include "sparse/spmv_plan.hpp"

namespace mcmi {

/// Immutable-shape CSR sparse matrix (values may be modified in place).
class CsrMatrix {
 public:
  CsrMatrix() = default;

  /// Copies go through std::atomic_load/store on the lazy caches: copying
  /// a matrix is legal while another thread concurrently publishes a cache
  /// into it (the serving layer copies a shared pinned matrix into ILU(0)
  /// while sibling workers multiply with it).  The arrays themselves are
  /// plain copies — mutating values_ concurrently with a copy remains the
  /// caller's race, as ever.
  CsrMatrix(const CsrMatrix& other);
  CsrMatrix& operator=(const CsrMatrix& other);
  /// Moves stay defaulted (non-atomic): moving *from* a matrix another
  /// thread still uses would race on the arrays anyway, so the caches add
  /// no new hazard.
  CsrMatrix(CsrMatrix&&) = default;
  CsrMatrix& operator=(CsrMatrix&&) = default;
  ~CsrMatrix() = default;

  /// Build from a triplet matrix; compresses it first.
  static CsrMatrix from_coo(CooMatrix coo);

  /// Build directly from CSR arrays (validated).
  CsrMatrix(index_t rows, index_t cols, std::vector<index_t> row_ptr,
            std::vector<index_t> col_idx, std::vector<real_t> values);

  /// n x n identity.
  static CsrMatrix identity(index_t n);

  /// Square diagonal matrix from a vector.
  static CsrMatrix diagonal(const std::vector<real_t>& d);

  [[nodiscard]] index_t rows() const { return rows_; }
  [[nodiscard]] index_t cols() const { return cols_; }
  [[nodiscard]] index_t nnz() const {
    return static_cast<index_t>(values_.size());
  }
  /// Fill ratio phi(A) = nnz / (rows*cols), as reported in Table 1.
  [[nodiscard]] real_t fill() const;

  [[nodiscard]] const std::vector<index_t>& row_ptr() const {
    return row_ptr_;
  }
  [[nodiscard]] const std::vector<index_t>& col_idx() const {
    return col_idx_;
  }
  [[nodiscard]] const std::vector<real_t>& values() const { return values_; }
  [[nodiscard]] std::vector<real_t>& values() { return values_; }

  /// Number of stored entries in row i.
  [[nodiscard]] index_t row_nnz(index_t i) const {
    return row_ptr_[i + 1] - row_ptr_[i];
  }

  /// Value at (i, j); zero if the position is not stored.  O(log row_nnz).
  [[nodiscard]] real_t at(index_t i, index_t j) const;

  /// y = A * x, through the cached execution plan.
  void multiply(const std::vector<real_t>& x, std::vector<real_t>& y) const;
  [[nodiscard]] std::vector<real_t> multiply(
      const std::vector<real_t>& x) const;

  /// y = A * x returning <x, y> from the same pass (the CG q·Aq shape;
  /// square matrices only).
  [[nodiscard]] real_t multiply_dot(const std::vector<real_t>& x,
                                    std::vector<real_t>& y) const;

  /// y = A * x returning <w, y> from the same pass (the BiCGStab
  /// r_hat·(PA p) shape).
  [[nodiscard]] real_t multiply_dot(const std::vector<real_t>& x,
                                    std::vector<real_t>& y,
                                    const std::vector<real_t>& w) const;

  /// y = A * x with <w, y> and <y, y> from the same pass (a preconditioner
  /// apply fused with the <r, z> / ||z||^2 pair of the convergence check).
  void multiply_dot_norm2(const std::vector<real_t>& x,
                          std::vector<real_t>& y,
                          const std::vector<real_t>& w, real_t& dot_wy,
                          real_t& norm_sq_y) const;

  /// Fused preconditioned-CG tail: z = A * x with <w, z> / ||z||^2, then
  /// q = z + (<w, z> / rho_prev) * q — one parallel region on the default
  /// plan path, composed product + xpby under a backend execution.  Either
  /// way bit-identical to multiply_dot_norm2 followed by vector_ops xpby.
  void multiply_dot_norm2_xpby(const std::vector<real_t>& x,
                               std::vector<real_t>& z,
                               const std::vector<real_t>& w, real_t rho_prev,
                               std::vector<real_t>& q, real_t& dot_wz,
                               real_t& norm_sq_z) const;

  /// Fused CG descent step: aq = A * q returning qaq = <q, aq>, and — only
  /// when qaq is finite and positive — x += (rho/qaq) * q,
  /// r -= (rho/qaq) * aq in the same parallel region.  On an invalid qaq
  /// x and r are untouched, so callers keep their existing breakdown /
  /// divergence handling.  Bit-identical to multiply_dot + axpy2.
  [[nodiscard]] real_t multiply_dot_axpy2(const std::vector<real_t>& q,
                                          real_t rho, std::vector<real_t>& aq,
                                          std::vector<real_t>& x,
                                          std::vector<real_t>& r) const;

  /// The cached execution plan (shape-derived, built on first use and then
  /// shared by every product for the life of the matrix).
  [[nodiscard]] const SpmvPlan& spmv_plan() const;

  /// Select the execution backend for every subsequent product.  The
  /// execution is built *eagerly* through the PlanBackendRegistry and
  /// published atomically, so no consumer can observe a stale
  /// single-backend plan after the switch (the lazily cached spmv_plan()
  /// is keyed only by content and knows nothing about backends).
  /// kSingle reverts to the default cached-plan path; other backends
  /// require the registry slot to be claimed (kAccelerator aborts until a
  /// device backend registers).  Const: this is execution *policy*, not
  /// matrix content — same contract as the lazy plan caches, and copies
  /// taken after the call inherit the backend.
  void set_plan_backend(PlanBackend backend, ShardLayout layout = {}) const;

  /// The backend products currently dispatch to (kSingle when none set).
  [[nodiscard]] PlanBackend plan_backend() const;

  /// The bound execution, or null on the default single-plan path.
  [[nodiscard]] std::shared_ptr<const PlanExecution> plan_execution() const {
    return std::atomic_load(&exec_);
  }

  /// y = A^T * x via a lazily cached column-major gather plan
  /// (OpenMP-parallel over columns, bit-deterministic at any thread count).
  void multiply_transpose(const std::vector<real_t>& x,
                          std::vector<real_t>& y) const;

  /// Explicit transpose.
  [[nodiscard]] CsrMatrix transpose() const;

  /// C = A * B (sparse-sparse product); used to form P*A when analysing
  /// preconditioned spectra in tests.
  [[nodiscard]] CsrMatrix multiply(const CsrMatrix& other) const;

  /// C = alpha*A + beta*B, with identical dimensions.
  [[nodiscard]] static CsrMatrix add(real_t alpha, const CsrMatrix& a,
                                     real_t beta, const CsrMatrix& b);

  /// Main diagonal as a dense vector (zeros for missing entries).
  [[nodiscard]] std::vector<real_t> diag() const;

  /// A + alpha*diag(d) for a dense vector d (structure is extended when the
  /// diagonal entry is missing).
  [[nodiscard]] CsrMatrix add_diagonal(real_t alpha,
                                       const std::vector<real_t>& d) const;

  /// Scale row i by s[i] (i.e. diag(s) * A).
  void scale_rows(const std::vector<real_t>& s);

  /// Matrix norms.
  [[nodiscard]] real_t norm_inf() const;  ///< max row sum of |a_ij|
  [[nodiscard]] real_t norm_one() const;  ///< max column sum of |a_ij|
  [[nodiscard]] real_t norm_frobenius() const;

  /// Relative symmetricity score in [0, 1]: 1 - ||A - A^T||_F / (2||A||_F).
  /// Returns 1 for exactly symmetric matrices, ~0 for skew ones.
  [[nodiscard]] real_t symmetry_score() const;
  /// True when the sparsity pattern and values are symmetric to `tol`.
  [[nodiscard]] bool is_symmetric(real_t tol = 1e-12) const;

  /// Dense row-major copy (small matrices / tests only).
  [[nodiscard]] std::vector<real_t> to_dense() const;

  /// Drop stored entries with |a_ij| <= threshold (diagonal never dropped).
  [[nodiscard]] CsrMatrix dropped(real_t threshold) const;

  /// Full-content 64-bit fingerprint over shape, structure, and value bits
  /// (core/hash.hpp): two matrices share a fingerprint exactly when every
  /// dimension, row pointer, column index, and value bit pattern agrees.
  /// O(nnz); the content-addressed ArtifactStore keys on it.  Unlike the
  /// sampled fingerprint of WalkKernelCache this hashes *every* entry, so a
  /// single flipped value bit changes the key.
  [[nodiscard]] u64 content_fingerprint() const;

  /// True when `other` stores exactly the same content (dimensions,
  /// structure, and value *bit patterns* — NaNs and signed zeros compare by
  /// bits, not by IEEE equality).  The collision check behind
  /// content_fingerprint()-keyed caches.
  [[nodiscard]] bool same_content(const CsrMatrix& other) const;

  /// Human-readable summary, e.g. "csr 225x225 nnz=1065 fill=0.021".
  [[nodiscard]] std::string summary() const;

 private:
  void validate() const;

  /// Column-major gather view of the matrix for A^T products: entries of
  /// column j live at col_ptr[j]..col_ptr[j+1], each naming its source row
  /// and its position in values_ (so in-place value edits stay visible).
  struct TransposeGather {
    std::vector<index_t> col_ptr;
    std::vector<index_t> src_row;
    std::vector<index_t> src_pos;
    SpmvPlan plan;  ///< nnz-balanced chunking over columns
  };
  [[nodiscard]] std::shared_ptr<const TransposeGather> transpose_gather()
      const;

  index_t rows_ = 0;
  index_t cols_ = 0;
  std::vector<index_t> row_ptr_{0};
  std::vector<index_t> col_idx_;
  std::vector<real_t> values_;
  /// Both caches are built lazily on first use — many matrices (assembly
  /// intermediates, rejected preconditioner candidates) are never
  /// multiplied — and shared across copies, which is sound because the
  /// shape is immutable.  First-use races resolve via compare-exchange, so
  /// once published a cache is never replaced.
  mutable std::shared_ptr<const SpmvPlan> plan_;
  mutable std::shared_ptr<const TransposeGather> tgather_;
  /// Selected execution backend (null = default single-plan path).  Unlike
  /// the caches above this *is* replaced — set_plan_backend publishes a
  /// freshly built execution atomically — so products always pair a
  /// backend with the layout it was built for, never a stale mix.
  mutable std::shared_ptr<const PlanExecution> exec_;
};

}  // namespace mcmi
