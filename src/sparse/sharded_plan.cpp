#include "sparse/sharded_plan.hpp"

#include <algorithm>

#include "core/error.hpp"
#include "core/hash.hpp"

namespace mcmi {

const char* to_string(PlanBackend backend) {
  switch (backend) {
    case PlanBackend::kSingle: return "single";
    case PlanBackend::kShardedThreads: return "sharded-threads";
    case PlanBackend::kAccelerator: return "accelerator";
  }
  return "unknown";
}

// ---------------------------------------------------------------------------
// ShardLayout

ShardLayout ShardLayout::nnz_balanced(index_t shards,
                                      const std::vector<index_t>& row_ptr) {
  const index_t rows =
      row_ptr.empty() ? 0 : static_cast<index_t>(row_ptr.size()) - 1;
  const index_t nnz = row_ptr.empty() ? 0 : row_ptr.back();
  if (shards < 1) shards = 1;
  ShardLayout layout;
  layout.boundaries.resize(static_cast<std::size_t>(shards) + 1);
  layout.boundaries.front() = 0;
  layout.boundaries.back() = rows;
  for (index_t s = 1; s < shards; ++s) {
    const index_t target = nnz * s / shards;
    index_t r = static_cast<index_t>(
        std::lower_bound(row_ptr.begin(),
                         row_ptr.begin() + static_cast<std::ptrdiff_t>(rows),
                         target) -
        row_ptr.begin());
    r = std::max(r, layout.boundaries[static_cast<std::size_t>(s) - 1]);
    layout.boundaries[static_cast<std::size_t>(s)] = std::min(r, rows);
  }
  return layout;
}

ShardLayout ShardLayout::uniform(index_t shards, index_t rows) {
  if (shards < 1) shards = 1;
  ShardLayout layout;
  layout.boundaries.resize(static_cast<std::size_t>(shards) + 1);
  for (index_t s = 0; s <= shards; ++s) {
    layout.boundaries[static_cast<std::size_t>(s)] = rows * s / shards;
  }
  return layout;
}

u64 ShardLayout::fingerprint() const {
  Hash64 hash(0x7368726cULL);  // "shrl"
  hash.update_array(boundaries.data(), boundaries.size());
  return hash.digest();
}

void ShardLayout::validate(index_t rows) const {
  MCMI_CHECK(!boundaries.empty() && boundaries.size() >= 2,
             "shard layout needs at least one shard");
  MCMI_CHECK(boundaries.front() == 0,
             "shard layout must start at row 0, got " << boundaries.front());
  MCMI_CHECK(boundaries.back() == rows, "shard layout ends at row "
                                            << boundaries.back()
                                            << ", matrix has " << rows);
  for (std::size_t s = 1; s < boundaries.size(); ++s) {
    MCMI_CHECK(boundaries[s - 1] <= boundaries[s],
               "shard boundaries not monotone at shard " << s - 1);
  }
}

// ---------------------------------------------------------------------------
// ShardReducer

ShardReducer::ShardReducer(std::vector<index_t> block_rows)
    : block_rows_(std::move(block_rows)) {}

real_t ShardReducer::block_dot(const real_t* w, const real_t* y,
                               index_t begin, index_t end) {
  real_t d0 = 0.0, d1 = 0.0, d2 = 0.0, d3 = 0.0;
  index_t i = begin;
  for (; i + 4 <= end; i += 4) {
    d0 += w[i] * y[i];
    d1 += w[i + 1] * y[i + 1];
    d2 += w[i + 2] * y[i + 2];
    d3 += w[i + 3] * y[i + 3];
  }
  for (; i < end; ++i) d0 += w[i] * y[i];
  return (d0 + d1) + (d2 + d3);
}

void ShardReducer::block_dot_norm2(const real_t* w, const real_t* y,
                                   index_t begin, index_t end,
                                   real_t& part_wy, real_t& part_yy) {
  real_t d0 = 0.0, d1 = 0.0, d2 = 0.0, d3 = 0.0;
  real_t q0 = 0.0, q1 = 0.0, q2 = 0.0, q3 = 0.0;
  index_t i = begin;
  for (; i + 4 <= end; i += 4) {
    d0 += w[i] * y[i];
    d1 += w[i + 1] * y[i + 1];
    d2 += w[i + 2] * y[i + 2];
    d3 += w[i + 3] * y[i + 3];
    q0 += y[i] * y[i];
    q1 += y[i + 1] * y[i + 1];
    q2 += y[i + 2] * y[i + 2];
    q3 += y[i + 3] * y[i + 3];
  }
  for (; i < end; ++i) {
    d0 += w[i] * y[i];
    q0 += y[i] * y[i];
  }
  part_wy = (d0 + d1) + (d2 + d3);
  part_yy = (q0 + q1) + (q2 + q3);
}

void ShardReducer::reduce(const ShardLayout& layout, const real_t* w,
                          const real_t* y, bool with_norm, real_t& dot_wy,
                          real_t& norm_sq_y) const {
  dot_wy = 0.0;
  norm_sq_y = 0.0;
  const index_t nb = num_blocks();
  if (nb == 0) return;
  const index_t rows = block_rows_.back();

  std::vector<real_t> part_wy(static_cast<std::size_t>(nb), 0.0);
  std::vector<real_t> part_yy(static_cast<std::size_t>(nb), 0.0);
  // A block is finalised by the one shard fully containing it; blocks
  // straddling a shard boundary stay pending and are recomputed whole
  // below, so every block's partial is the same arithmetic no matter how
  // the layout cuts the rows.
  std::vector<unsigned char> done(static_cast<std::size_t>(nb), 0);

  const index_t ns = layout.empty() ? 1 : layout.shards();
#pragma omp parallel for schedule(dynamic, 1) if (ns > 1)
  for (index_t s = 0; s < ns; ++s) {
    const index_t rb = layout.empty() ? 0 : layout.boundaries[s];
    const index_t re = layout.empty() ? rows : layout.boundaries[s + 1];
    // First block starting at or after rb.
    index_t t = static_cast<index_t>(
        std::lower_bound(block_rows_.begin(), block_rows_.end(), rb) -
        block_rows_.begin());
    for (; t < nb && block_rows_[static_cast<std::size_t>(t) + 1] <= re;
         ++t) {
      const auto ti = static_cast<std::size_t>(t);
      if (with_norm) {
        block_dot_norm2(w, y, block_rows_[ti], block_rows_[ti + 1],
                        part_wy[ti], part_yy[ti]);
      } else {
        part_wy[ti] = block_dot(w, y, block_rows_[ti], block_rows_[ti + 1]);
      }
      done[ti] = 1;
    }
  }

  // Fixed block order: boundary blocks (at most shards-1 of them) are
  // recomputed whole here, and the combination tree never sees the layout
  // or the thread count.
  for (index_t t = 0; t < nb; ++t) {
    const auto ti = static_cast<std::size_t>(t);
    if (!done[ti]) {
      if (with_norm) {
        block_dot_norm2(w, y, block_rows_[ti], block_rows_[ti + 1],
                        part_wy[ti], part_yy[ti]);
      } else {
        part_wy[ti] = block_dot(w, y, block_rows_[ti], block_rows_[ti + 1]);
      }
    }
    dot_wy += part_wy[ti];
    norm_sq_y += part_yy[ti];
  }
}

void ShardReducer::reference(const real_t* w, const real_t* y, bool with_norm,
                             real_t& dot_wy, real_t& norm_sq_y) const {
  dot_wy = 0.0;
  norm_sq_y = 0.0;
  for (index_t t = 0; t < num_blocks(); ++t) {
    const auto ti = static_cast<std::size_t>(t);
    real_t wy = 0.0;
    real_t yy = 0.0;
    if (with_norm) {
      block_dot_norm2(w, y, block_rows_[ti], block_rows_[ti + 1], wy, yy);
    } else {
      wy = block_dot(w, y, block_rows_[ti], block_rows_[ti + 1]);
    }
    dot_wy += wy;
    norm_sq_y += yy;
  }
}

// ---------------------------------------------------------------------------
// ShardedPlan

ShardedPlan ShardedPlan::build(index_t rows, index_t cols,
                               const std::vector<index_t>& row_ptr,
                               const std::vector<index_t>& col_idx,
                               ShardLayout layout) {
  if (rows < 0) rows = 0;
  if (layout.empty()) layout.boundaries = {0, rows};
  layout.validate(rows);

  ShardedPlan plan;
  plan.layout_ = std::move(layout);
  const index_t ns = plan.layout_.shards();
  plan.shards_.resize(static_cast<std::size_t>(ns));
  for (index_t s = 0; s < ns; ++s) {
    Shard& shard = plan.shards_[static_cast<std::size_t>(s)];
    shard.row_begin = plan.layout_.boundaries[static_cast<std::size_t>(s)];
    shard.row_end = plan.layout_.boundaries[static_cast<std::size_t>(s) + 1];
    shard.nnz_begin = row_ptr[static_cast<std::size_t>(shard.row_begin)];
    const index_t shard_rows = shard.row_end - shard.row_begin;
    shard.local_row_ptr.resize(static_cast<std::size_t>(shard_rows) + 1);
    for (index_t i = 0; i <= shard_rows; ++i) {
      shard.local_row_ptr[static_cast<std::size_t>(i)] =
          row_ptr[static_cast<std::size_t>(shard.row_begin + i)] -
          shard.nnz_begin;
    }
    // The slice's column indices, so the per-shard plan gets its own
    // 32-bit re-encoding and width dispatch (columns stay global: x is
    // never partitioned).
    const std::vector<index_t> shard_cols(
        col_idx.begin() + shard.nnz_begin,
        col_idx.begin() + row_ptr[static_cast<std::size_t>(shard.row_end)]);
    shard.plan = SpmvPlan::build(shard_rows, cols, shard.local_row_ptr,
                                 shard_cols);
    for (index_t c = 0; c < shard.plan.num_chunks(); ++c) {
      plan.items_.emplace_back(s, c);
    }
  }
  // The reduction grid is the *full* matrix's chunk decomposition — shared
  // with the single plan so both paths fold the same blocks in the same
  // order (bit-identical fused results across backends).
  plan.reducer_ = ShardReducer(SpmvPlan::chunk_boundaries(rows, row_ptr));
  return plan;
}

index_t ShardedPlan::shard_nnz(index_t s) const {
  const Shard& shard = shards_[static_cast<std::size_t>(s)];
  return shard.local_row_ptr.back();
}

void ShardedPlan::multiply(const index_t* /*row_ptr*/, const index_t* col_idx,
                           const real_t* values, const real_t* x,
                           real_t* y) const {
  const index_t ni = static_cast<index_t>(items_.size());
#pragma omp parallel for schedule(static) if (ni > 1)
  for (index_t i = 0; i < ni; ++i) {
    const auto [s, c] = items_[static_cast<std::size_t>(i)];
    const Shard& shard = shards_[static_cast<std::size_t>(s)];
    shard.plan.multiply_chunk(c, shard.local_row_ptr.data(),
                              col_idx + shard.nnz_begin,
                              values + shard.nnz_begin, x,
                              y + shard.row_begin);
  }
}

void ShardedPlan::run_fused(const index_t* col_idx, const real_t* values,
                            const real_t* x, const real_t* w, real_t* y,
                            bool with_norm, real_t& dot_wy,
                            real_t& norm_sq_y) const {
  multiply(nullptr, col_idx, values, x, y);
  reducer_.reduce(layout_, w, y, with_norm, dot_wy, norm_sq_y);
}

real_t ShardedPlan::multiply_dot(const index_t* /*row_ptr*/,
                                 const index_t* col_idx, const real_t* values,
                                 const real_t* x, const real_t* w,
                                 real_t* y) const {
  real_t dot_wy = 0.0;
  real_t unused = 0.0;
  run_fused(col_idx, values, x, w, y, false, dot_wy, unused);
  return dot_wy;
}

void ShardedPlan::multiply_dot_norm2(const index_t* /*row_ptr*/,
                                     const index_t* col_idx,
                                     const real_t* values, const real_t* x,
                                     const real_t* w, real_t* y,
                                     real_t& dot_wy,
                                     real_t& norm_sq_y) const {
  run_fused(col_idx, values, x, w, y, true, dot_wy, norm_sq_y);
}

// ---------------------------------------------------------------------------
// PlanBackendRegistry

namespace {

/// The default backend as a PlanExecution: one SpmvPlan over the whole
/// matrix (what CsrMatrix runs implicitly when no backend is selected).
class SinglePlanExecution final : public PlanExecution {
 public:
  SinglePlanExecution(index_t rows, index_t cols,
                      const std::vector<index_t>& row_ptr,
                      const std::vector<index_t>& col_idx)
      : plan_(SpmvPlan::build(rows, cols, row_ptr, col_idx)) {}

  [[nodiscard]] PlanBackend backend() const override {
    return PlanBackend::kSingle;
  }
  [[nodiscard]] const ShardLayout& layout() const override { return layout_; }

  void multiply(const index_t* row_ptr, const index_t* col_idx,
                const real_t* values, const real_t* x,
                real_t* y) const override {
    plan_.multiply(row_ptr, col_idx, values, x, y);
  }
  [[nodiscard]] real_t multiply_dot(const index_t* row_ptr,
                                    const index_t* col_idx,
                                    const real_t* values, const real_t* x,
                                    const real_t* w,
                                    real_t* y) const override {
    return plan_.multiply_dot(row_ptr, col_idx, values, x, w, y);
  }
  void multiply_dot_norm2(const index_t* row_ptr, const index_t* col_idx,
                          const real_t* values, const real_t* x,
                          const real_t* w, real_t* y, real_t& dot_wy,
                          real_t& norm_sq_y) const override {
    plan_.multiply_dot_norm2(row_ptr, col_idx, values, x, w, y, dot_wy,
                             norm_sq_y);
  }

 private:
  SpmvPlan plan_;
  ShardLayout layout_;  // empty: no partition
};

int slot_of(PlanBackend backend) {
  const int slot = static_cast<int>(backend);
  MCMI_CHECK(slot >= 0 && slot < 3, "unknown plan backend " << slot);
  return slot;
}

}  // namespace

PlanBackendRegistry::PlanBackendRegistry() {
  factories_[slot_of(PlanBackend::kSingle)] =
      [](index_t rows, index_t cols, const std::vector<index_t>& row_ptr,
         const std::vector<index_t>& col_idx,
         const ShardLayout& /*layout*/) -> std::unique_ptr<PlanExecution> {
    return std::make_unique<SinglePlanExecution>(rows, cols, row_ptr,
                                                 col_idx);
  };
  factories_[slot_of(PlanBackend::kShardedThreads)] =
      [](index_t rows, index_t cols, const std::vector<index_t>& row_ptr,
         const std::vector<index_t>& col_idx,
         const ShardLayout& layout) -> std::unique_ptr<PlanExecution> {
    return std::make_unique<ShardedPlan>(
        ShardedPlan::build(rows, cols, row_ptr, col_idx, layout));
  };
  // kAccelerator stays empty: the stubbed slot a device backend (or a test
  // mock) claims via register_backend.
}

PlanBackendRegistry& PlanBackendRegistry::instance() {
  static PlanBackendRegistry registry;
  return registry;
}

void PlanBackendRegistry::register_backend(PlanBackend backend,
                                           PlanExecutionFactory factory) {
  MCMI_CHECK(factory != nullptr, "null factory for plan backend "
                                     << to_string(backend));
  const int slot = slot_of(backend);
  std::lock_guard<std::mutex> lock(mutex_);
  factories_[slot] = std::move(factory);
}

void PlanBackendRegistry::unregister_backend(PlanBackend backend) {
  MCMI_CHECK(backend == PlanBackend::kAccelerator,
             "built-in plan backend " << to_string(backend)
                                      << " may not be unregistered");
  std::lock_guard<std::mutex> lock(mutex_);
  factories_[slot_of(backend)] = nullptr;
}

bool PlanBackendRegistry::available(PlanBackend backend) const {
  const int slot = slot_of(backend);
  std::lock_guard<std::mutex> lock(mutex_);
  return factories_[slot] != nullptr;
}

std::unique_ptr<PlanExecution> PlanBackendRegistry::create(
    PlanBackend backend, index_t rows, index_t cols,
    const std::vector<index_t>& row_ptr, const std::vector<index_t>& col_idx,
    const ShardLayout& layout) const {
  PlanExecutionFactory factory;
  {
    const int slot = slot_of(backend);
    std::lock_guard<std::mutex> lock(mutex_);
    factory = factories_[slot];
  }
  MCMI_CHECK(factory != nullptr,
             "plan backend " << to_string(backend)
                             << " unavailable (no registered factory)");
  return factory(rows, cols, row_ptr, col_idx, layout);
}

// ---------------------------------------------------------------------------
// shard_row_spans

std::vector<std::pair<index_t, index_t>> shard_row_spans(
    const ShardLayout& layout, index_t row_begin, index_t row_end,
    index_t grain) {
  if (grain < 1) grain = 1;
  std::vector<std::pair<index_t, index_t>> spans;
  const index_t ns = layout.empty() ? 1 : layout.shards();
  for (index_t s = 0; s < ns; ++s) {
    const index_t b =
        layout.empty() ? row_begin
                       : std::max(layout.boundaries[static_cast<std::size_t>(
                                      s)],
                                  row_begin);
    const index_t e =
        layout.empty()
            ? row_end
            : std::min(layout.boundaries[static_cast<std::size_t>(s) + 1],
                       row_end);
    for (index_t i = b; i < e; i += grain) {
      spans.emplace_back(i, std::min(i + grain, e));
    }
  }
  return spans;
}

}  // namespace mcmi
