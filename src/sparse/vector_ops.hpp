#pragma once
// Dense vector kernels used by the Krylov solvers.
//
// These are deliberately simple loops: at the sizes the paper studies
// (n <= ~2e4) memory traffic dominates and the compiler vectorises them.

#include <cmath>
#include <vector>

#include "core/error.hpp"
#include "core/types.hpp"

namespace mcmi {

/// Euclidean dot product.
inline real_t dot(const std::vector<real_t>& a, const std::vector<real_t>& b) {
  MCMI_CHECK(a.size() == b.size(), "dot: size mismatch");
  real_t sum = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) sum += a[i] * b[i];
  return sum;
}

/// 2-norm.
inline real_t norm2(const std::vector<real_t>& a) {
  return std::sqrt(dot(a, a));
}

/// Infinity norm.
inline real_t norm_inf(const std::vector<real_t>& a) {
  real_t best = 0.0;
  for (real_t v : a) best = std::max(best, std::abs(v));
  return best;
}

/// y += alpha * x.
inline void axpy(real_t alpha, const std::vector<real_t>& x,
                 std::vector<real_t>& y) {
  MCMI_CHECK(x.size() == y.size(), "axpy: size mismatch");
  for (std::size_t i = 0; i < x.size(); ++i) y[i] += alpha * x[i];
}

/// y = x + beta * y (the BiCGStab / CG update shape).
inline void xpby(const std::vector<real_t>& x, real_t beta,
                 std::vector<real_t>& y) {
  MCMI_CHECK(x.size() == y.size(), "xpby: size mismatch");
  for (std::size_t i = 0; i < x.size(); ++i) y[i] = x[i] + beta * y[i];
}

/// x *= alpha.
inline void scale(real_t alpha, std::vector<real_t>& x) {
  for (real_t& v : x) v *= alpha;
}

/// Elementwise difference a - b.
inline std::vector<real_t> subtract(const std::vector<real_t>& a,
                                    const std::vector<real_t>& b) {
  MCMI_CHECK(a.size() == b.size(), "subtract: size mismatch");
  std::vector<real_t> out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = a[i] - b[i];
  return out;
}

}  // namespace mcmi
