#pragma once
// Dense vector kernels used by the Krylov solvers.
//
// Elementwise updates are OpenMP-parallel above a size threshold (below it
// the compiler-vectorised serial loop wins).  Reductions use a fixed block
// decomposition — partial sums per 4096-element block combined in block
// order — so the result is bit-identical at any thread count, which the
// deterministic-output contract of the MCMC pipeline relies on.  Fused
// variants (dot+norm, update+norm, double-axpy) cover the per-iteration
// shapes of CG / BiCGStab / GMRES with one memory pass instead of two.

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <vector>

#include "core/error.hpp"
#include "core/types.hpp"

namespace mcmi {

namespace vec_detail {

/// Below this size every kernel runs its plain serial loop (also keeping the
/// summation order — and therefore every historical result — unchanged for
/// the paper-scale systems).
constexpr std::size_t kParallelThreshold = 16384;

/// Reduction block: fixed so the combination tree depends on the data length
/// only, never on the number of threads.
constexpr std::size_t kBlock = 4096;

}  // namespace vec_detail

/// Euclidean dot product.
inline real_t dot(const std::vector<real_t>& a, const std::vector<real_t>& b) {
  MCMI_CHECK(a.size() == b.size(), "dot: size mismatch");
  const std::size_t n = a.size();
  if (n < vec_detail::kParallelThreshold) {
    real_t sum = 0.0;
    for (std::size_t i = 0; i < n; ++i) sum += a[i] * b[i];
    return sum;
  }
  const std::size_t blocks = (n + vec_detail::kBlock - 1) / vec_detail::kBlock;
  std::vector<real_t> partial(blocks);
#pragma omp parallel for schedule(static)
  for (std::ptrdiff_t blk = 0; blk < static_cast<std::ptrdiff_t>(blocks);
       ++blk) {
    const std::size_t begin = static_cast<std::size_t>(blk) * vec_detail::kBlock;
    const std::size_t end = std::min(n, begin + vec_detail::kBlock);
    real_t sum = 0.0;
    for (std::size_t i = begin; i < end; ++i) sum += a[i] * b[i];
    partial[static_cast<std::size_t>(blk)] = sum;
  }
  real_t sum = 0.0;
  for (real_t v : partial) sum += v;  // fixed order: thread-count independent
  return sum;
}

/// 2-norm.
inline real_t norm2(const std::vector<real_t>& a) {
  return std::sqrt(dot(a, a));
}

/// Fused dot(a, b) and ||b||: the CG convergence check (rho = <r, z>,
/// rel = ||z||) in a single pass over both vectors.
inline void dot_norm2(const std::vector<real_t>& a,
                      const std::vector<real_t>& b, real_t& dot_ab,
                      real_t& norm_b) {
  MCMI_CHECK(a.size() == b.size(), "dot_norm2: size mismatch");
  const std::size_t n = a.size();
  real_t d = 0.0, q = 0.0;
  if (n < vec_detail::kParallelThreshold) {
    for (std::size_t i = 0; i < n; ++i) {
      d += a[i] * b[i];
      q += b[i] * b[i];
    }
  } else {
    const std::size_t blocks =
        (n + vec_detail::kBlock - 1) / vec_detail::kBlock;
    std::vector<real_t> partial_d(blocks), partial_q(blocks);
#pragma omp parallel for schedule(static)
    for (std::ptrdiff_t blk = 0; blk < static_cast<std::ptrdiff_t>(blocks);
         ++blk) {
      const std::size_t begin =
          static_cast<std::size_t>(blk) * vec_detail::kBlock;
      const std::size_t end = std::min(n, begin + vec_detail::kBlock);
      real_t bd = 0.0, bq = 0.0;
      for (std::size_t i = begin; i < end; ++i) {
        bd += a[i] * b[i];
        bq += b[i] * b[i];
      }
      partial_d[static_cast<std::size_t>(blk)] = bd;
      partial_q[static_cast<std::size_t>(blk)] = bq;
    }
    for (std::size_t blk = 0; blk < blocks; ++blk) {
      d += partial_d[blk];
      q += partial_q[blk];
    }
  }
  dot_ab = d;
  norm_b = std::sqrt(q);
}

/// Fused dot(x, y) and dot(x, z): the BiCGStab omega numerator/denominator
/// (<t, t>, <t, s>) in one pass over x.
inline void dot_dot(const std::vector<real_t>& x, const std::vector<real_t>& y,
                    const std::vector<real_t>& z, real_t& dot_xy,
                    real_t& dot_xz) {
  MCMI_CHECK(x.size() == y.size() && x.size() == z.size(),
             "dot_dot: size mismatch");
  const std::size_t n = x.size();
  real_t dy = 0.0, dz = 0.0;
  if (n < vec_detail::kParallelThreshold) {
    for (std::size_t i = 0; i < n; ++i) {
      dy += x[i] * y[i];
      dz += x[i] * z[i];
    }
  } else {
    const std::size_t blocks =
        (n + vec_detail::kBlock - 1) / vec_detail::kBlock;
    std::vector<real_t> partial_y(blocks), partial_z(blocks);
#pragma omp parallel for schedule(static)
    for (std::ptrdiff_t blk = 0; blk < static_cast<std::ptrdiff_t>(blocks);
         ++blk) {
      const std::size_t begin =
          static_cast<std::size_t>(blk) * vec_detail::kBlock;
      const std::size_t end = std::min(n, begin + vec_detail::kBlock);
      real_t by = 0.0, bz = 0.0;
      for (std::size_t i = begin; i < end; ++i) {
        by += x[i] * y[i];
        bz += x[i] * z[i];
      }
      partial_y[static_cast<std::size_t>(blk)] = by;
      partial_z[static_cast<std::size_t>(blk)] = bz;
    }
    for (std::size_t blk = 0; blk < blocks; ++blk) {
      dy += partial_y[blk];
      dz += partial_z[blk];
    }
  }
  dot_xy = dy;
  dot_xz = dz;
}

/// Infinity norm.
inline real_t norm_inf(const std::vector<real_t>& a) {
  real_t best = 0.0;
  for (real_t v : a) best = std::max(best, std::abs(v));
  return best;
}

/// y += alpha * x.
inline void axpy(real_t alpha, const std::vector<real_t>& x,
                 std::vector<real_t>& y) {
  MCMI_CHECK(x.size() == y.size(), "axpy: size mismatch");
  const std::size_t n = x.size();
  if (n < vec_detail::kParallelThreshold) {
    for (std::size_t i = 0; i < n; ++i) y[i] += alpha * x[i];
    return;
  }
#pragma omp parallel for schedule(static)
  for (std::ptrdiff_t i = 0; i < static_cast<std::ptrdiff_t>(n); ++i) {
    y[i] += alpha * x[i];
  }
}

/// Fused CG update: x += alpha * q, r -= alpha * aq in one pass.
inline void axpy2(real_t alpha, const std::vector<real_t>& q,
                  const std::vector<real_t>& aq, std::vector<real_t>& x,
                  std::vector<real_t>& r) {
  MCMI_CHECK(q.size() == x.size() && aq.size() == r.size() &&
                 x.size() == r.size(),
             "axpy2: size mismatch");
  const std::size_t n = x.size();
  if (n < vec_detail::kParallelThreshold) {
    for (std::size_t i = 0; i < n; ++i) {
      x[i] += alpha * q[i];
      r[i] -= alpha * aq[i];
    }
    return;
  }
#pragma omp parallel for schedule(static)
  for (std::ptrdiff_t i = 0; i < static_cast<std::ptrdiff_t>(n); ++i) {
    x[i] += alpha * q[i];
    r[i] -= alpha * aq[i];
  }
}

/// Fused modified-Gram-Schmidt step: y += alpha * x, returning <w, y> from
/// the same pass — the GMRES orthogonalisation against basis j fused with
/// the projection onto basis j+1.
inline real_t axpy_dot(real_t alpha, const std::vector<real_t>& x,
                       std::vector<real_t>& y, const std::vector<real_t>& w) {
  MCMI_CHECK(x.size() == y.size() && w.size() == y.size(),
             "axpy_dot: size mismatch");
  const std::size_t n = y.size();
  if (n < vec_detail::kParallelThreshold) {
    real_t d = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      const real_t v = y[i] + alpha * x[i];
      y[i] = v;
      d += w[i] * v;
    }
    return d;
  }
  const std::size_t blocks = (n + vec_detail::kBlock - 1) / vec_detail::kBlock;
  std::vector<real_t> partial(blocks);
#pragma omp parallel for schedule(static)
  for (std::ptrdiff_t blk = 0; blk < static_cast<std::ptrdiff_t>(blocks);
       ++blk) {
    const std::size_t begin = static_cast<std::size_t>(blk) * vec_detail::kBlock;
    const std::size_t end = std::min(n, begin + vec_detail::kBlock);
    real_t sum = 0.0;
    for (std::size_t i = begin; i < end; ++i) {
      const real_t v = y[i] + alpha * x[i];
      y[i] = v;
      sum += w[i] * v;
    }
    partial[static_cast<std::size_t>(blk)] = sum;
  }
  real_t d = 0.0;
  for (real_t v : partial) d += v;  // fixed order: thread-count independent
  return d;
}

/// Fused final modified-Gram-Schmidt step: y += alpha * x, returning
/// <y, y> — the last orthogonalisation fused with the new basis norm.
inline real_t axpy_norm2_sq(real_t alpha, const std::vector<real_t>& x,
                            std::vector<real_t>& y) {
  MCMI_CHECK(x.size() == y.size(), "axpy_norm2_sq: size mismatch");
  const std::size_t n = y.size();
  if (n < vec_detail::kParallelThreshold) {
    real_t q = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      const real_t v = y[i] + alpha * x[i];
      y[i] = v;
      q += v * v;
    }
    return q;
  }
  const std::size_t blocks = (n + vec_detail::kBlock - 1) / vec_detail::kBlock;
  std::vector<real_t> partial(blocks);
#pragma omp parallel for schedule(static)
  for (std::ptrdiff_t blk = 0; blk < static_cast<std::ptrdiff_t>(blocks);
       ++blk) {
    const std::size_t begin = static_cast<std::size_t>(blk) * vec_detail::kBlock;
    const std::size_t end = std::min(n, begin + vec_detail::kBlock);
    real_t sum = 0.0;
    for (std::size_t i = begin; i < end; ++i) {
      const real_t v = y[i] + alpha * x[i];
      y[i] = v;
      sum += v * v;
    }
    partial[static_cast<std::size_t>(blk)] = sum;
  }
  real_t q = 0.0;
  for (real_t v : partial) q += v;
  return q;
}

/// Fused BiCGStab solution update: x += alpha * p + omega * s in one pass.
inline void axpy_pair(real_t alpha, const std::vector<real_t>& p, real_t omega,
                      const std::vector<real_t>& s, std::vector<real_t>& x) {
  MCMI_CHECK(p.size() == x.size() && s.size() == x.size(),
             "axpy_pair: size mismatch");
  const std::size_t n = x.size();
  if (n < vec_detail::kParallelThreshold) {
    for (std::size_t i = 0; i < n; ++i) x[i] += alpha * p[i] + omega * s[i];
    return;
  }
#pragma omp parallel for schedule(static)
  for (std::ptrdiff_t i = 0; i < static_cast<std::ptrdiff_t>(n); ++i) {
    x[i] += alpha * p[i] + omega * s[i];
  }
}

/// Fused BiCGStab search-direction update: p = r + beta * (p - omega * v).
inline void bicgstab_p_update(const std::vector<real_t>& r, real_t beta,
                              real_t omega, const std::vector<real_t>& v,
                              std::vector<real_t>& p) {
  MCMI_CHECK(r.size() == p.size() && v.size() == p.size(),
             "bicgstab_p_update: size mismatch");
  const std::size_t n = p.size();
  if (n < vec_detail::kParallelThreshold) {
    for (std::size_t i = 0; i < n; ++i) {
      p[i] = r[i] + beta * (p[i] - omega * v[i]);
    }
    return;
  }
#pragma omp parallel for schedule(static)
  for (std::ptrdiff_t i = 0; i < static_cast<std::ptrdiff_t>(n); ++i) {
    p[i] = r[i] + beta * (p[i] - omega * v[i]);
  }
}

/// Fused residual step: out = x - alpha * y, returning ||out||.  Covers the
/// BiCGStab s/r updates, each immediately followed by a norm check.
inline real_t sub_scaled_norm(const std::vector<real_t>& x, real_t alpha,
                              const std::vector<real_t>& y,
                              std::vector<real_t>& out) {
  MCMI_CHECK(x.size() == y.size(), "sub_scaled_norm: size mismatch");
  out.resize(x.size());
  const std::size_t n = x.size();
  real_t q = 0.0;
  if (n < vec_detail::kParallelThreshold) {
    for (std::size_t i = 0; i < n; ++i) {
      const real_t v = x[i] - alpha * y[i];
      out[i] = v;
      q += v * v;
    }
    return std::sqrt(q);
  }
  const std::size_t blocks = (n + vec_detail::kBlock - 1) / vec_detail::kBlock;
  std::vector<real_t> partial(blocks);
#pragma omp parallel for schedule(static)
  for (std::ptrdiff_t blk = 0; blk < static_cast<std::ptrdiff_t>(blocks);
       ++blk) {
    const std::size_t begin = static_cast<std::size_t>(blk) * vec_detail::kBlock;
    const std::size_t end = std::min(n, begin + vec_detail::kBlock);
    real_t sum = 0.0;
    for (std::size_t i = begin; i < end; ++i) {
      const real_t v = x[i] - alpha * y[i];
      out[i] = v;
      sum += v * v;
    }
    partial[static_cast<std::size_t>(blk)] = sum;
  }
  for (std::size_t blk = 0; blk < blocks; ++blk) q += partial[blk];
  return std::sqrt(q);
}

/// Fully fused BiCGStab tail: x += alpha * p + omega * s and
/// r = s - omega * t with ||r|| from the same pass — the axpy_pair +
/// sub_scaled_norm sequence collapsed into one sweep.  Per element the
/// expressions (and the fixed-block reduction) are exactly those of the
/// two-kernel sequence, so the result is bit-identical to composing them.
inline real_t axpy_pair_sub_norm(real_t alpha, const std::vector<real_t>& p,
                                 real_t omega, const std::vector<real_t>& s,
                                 const std::vector<real_t>& t,
                                 std::vector<real_t>& x,
                                 std::vector<real_t>& r) {
  MCMI_CHECK(p.size() == x.size() && s.size() == x.size() &&
                 t.size() == x.size(),
             "axpy_pair_sub_norm: size mismatch");
  r.resize(x.size());
  const std::size_t n = x.size();
  real_t q = 0.0;
  if (n < vec_detail::kParallelThreshold) {
    for (std::size_t i = 0; i < n; ++i) {
      x[i] += alpha * p[i] + omega * s[i];
      const real_t v = s[i] - omega * t[i];
      r[i] = v;
      q += v * v;
    }
    return std::sqrt(q);
  }
  const std::size_t blocks = (n + vec_detail::kBlock - 1) / vec_detail::kBlock;
  std::vector<real_t> partial(blocks);
#pragma omp parallel for schedule(static)
  for (std::ptrdiff_t blk = 0; blk < static_cast<std::ptrdiff_t>(blocks);
       ++blk) {
    const std::size_t begin = static_cast<std::size_t>(blk) * vec_detail::kBlock;
    const std::size_t end = std::min(n, begin + vec_detail::kBlock);
    real_t sum = 0.0;
    for (std::size_t i = begin; i < end; ++i) {
      x[i] += alpha * p[i] + omega * s[i];
      const real_t v = s[i] - omega * t[i];
      r[i] = v;
      sum += v * v;
    }
    partial[static_cast<std::size_t>(blk)] = sum;
  }
  for (std::size_t blk = 0; blk < blocks; ++blk) q += partial[blk];
  return std::sqrt(q);
}

/// y = x + beta * y (the BiCGStab / CG update shape).
inline void xpby(const std::vector<real_t>& x, real_t beta,
                 std::vector<real_t>& y) {
  MCMI_CHECK(x.size() == y.size(), "xpby: size mismatch");
  const std::size_t n = x.size();
  if (n < vec_detail::kParallelThreshold) {
    for (std::size_t i = 0; i < n; ++i) y[i] = x[i] + beta * y[i];
    return;
  }
#pragma omp parallel for schedule(static)
  for (std::ptrdiff_t i = 0; i < static_cast<std::ptrdiff_t>(n); ++i) {
    y[i] = x[i] + beta * y[i];
  }
}

/// x *= alpha.
inline void scale(real_t alpha, std::vector<real_t>& x) {
  const std::size_t n = x.size();
  if (n < vec_detail::kParallelThreshold) {
    for (real_t& v : x) v *= alpha;
    return;
  }
#pragma omp parallel for schedule(static)
  for (std::ptrdiff_t i = 0; i < static_cast<std::ptrdiff_t>(n); ++i) {
    x[i] *= alpha;
  }
}

/// out = alpha * x (the GMRES basis normalisation v = r / beta).
inline void scale_into(real_t alpha, const std::vector<real_t>& x,
                       std::vector<real_t>& out) {
  out.resize(x.size());
  const std::size_t n = x.size();
  if (n < vec_detail::kParallelThreshold) {
    for (std::size_t i = 0; i < n; ++i) out[i] = alpha * x[i];
    return;
  }
#pragma omp parallel for schedule(static)
  for (std::ptrdiff_t i = 0; i < static_cast<std::ptrdiff_t>(n); ++i) {
    out[i] = alpha * x[i];
  }
}

/// Elementwise difference a - b.
inline std::vector<real_t> subtract(const std::vector<real_t>& a,
                                    const std::vector<real_t>& b) {
  MCMI_CHECK(a.size() == b.size(), "subtract: size mismatch");
  std::vector<real_t> out(a.size());
  const std::size_t n = a.size();
  if (n < vec_detail::kParallelThreshold) {
    for (std::size_t i = 0; i < n; ++i) out[i] = a[i] - b[i];
    return out;
  }
#pragma omp parallel for schedule(static)
  for (std::ptrdiff_t i = 0; i < static_cast<std::ptrdiff_t>(n); ++i) {
    out[i] = a[i] - b[i];
  }
  return out;
}

}  // namespace mcmi
