#pragma once
/// @file spmv_plan.hpp
/// @brief Precomputed SpMV execution plan: nnz-balanced row chunks + fused
/// kernels.
///
/// The naive row-parallel SpMV loop re-derives its schedule on every call
/// and pays for a zero-fill pass, 64-bit column indices and separate
/// reduction passes for the dot products every Krylov iteration needs right
/// after the product.  A SpmvPlan is built once per matrix shape and
/// amortised across the whole solve:
///
///   * rows are partitioned into contiguous chunks of roughly equal nonzero
///     count (prefix-sum over row_ptr), so skewed matrices keep every
///     thread busy without `schedule(dynamic)` bookkeeping;
///   * chunks whose rows all share one short width dispatch to fully
///     unrolled fixed-width kernels (diagonal / tridiagonal shapes);
///   * column indices are re-encoded to 32 bits when the column count
///     allows, halving the index traffic of the bandwidth-bound kernel;
///   * fused variants compute <w, Ax> (and optionally ||Ax||^2) inside the
///     product pass, cutting one full vector sweep per Krylov iteration.
///
/// Determinism: the chunk decomposition depends only on the matrix shape,
/// one chunk's partial reductions are accumulated in row order and chunk
/// partials are combined in chunk order, so every result is bit-identical
/// at any OpenMP thread count — the same convention as the fixed-block
/// reductions in vector_ops.hpp.
///
/// The plan reads the CSR arrays it was built for on every call (values may
/// change in place; the shape must not).  CsrMatrix owns one plan per
/// matrix and the transpose gather plan reuses the same chunking machinery,
/// so this is the layer a future sharded or multi-backend SpMV plugs into.

#include <cstdint>
#include <vector>

#include "core/types.hpp"

namespace mcmi {

/// One matrix's SpMV schedule: the chunk table, the unrolled-width dispatch
/// tags, and the optional 32-bit column re-encoding, with plain-pointer
/// kernel entry points so CsrMatrix (and the cached transpose view) can run
/// any value array through the same plan.
class SpmvPlan {
 public:
  SpmvPlan() = default;

  /// Build a plan for the CSR shape (row_ptr, col_idx) of a rows x cols
  /// matrix.  Only the shape is consulted; values are supplied per call.
  static SpmvPlan build(index_t rows, index_t cols,
                        const std::vector<index_t>& row_ptr,
                        const std::vector<index_t>& col_idx);

  /// Number of row chunks (0 for an empty/default plan).
  [[nodiscard]] index_t num_chunks() const {
    return chunk_rows_.empty() ? 0
                               : static_cast<index_t>(chunk_rows_.size()) - 1;
  }

  /// First row of chunk c (c in [0, num_chunks()]).
  [[nodiscard]] index_t chunk_begin(index_t c) const {
    return chunk_rows_[static_cast<std::size_t>(c)];
  }

  /// The nnz-balanced chunk boundaries build() would compute for this
  /// shape: boundary c is the first row whose prefix nonzero count reaches
  /// c/chunks of the total.  A pure function of the shape — the sharded
  /// execution layer uses the same grid for its fixed-order reductions, so
  /// the two paths share one combination tree.
  static std::vector<index_t> chunk_boundaries(
      index_t rows, const std::vector<index_t>& row_ptr);

  /// Run one chunk of the plan serially (no OpenMP): y over the chunk's
  /// rows only.  The sharded backend flattens (shard, chunk) pairs into
  /// its own parallel schedule and drives each chunk through this entry.
  void multiply_chunk(index_t c, const index_t* row_ptr,
                      const index_t* col_idx, const real_t* values,
                      const real_t* x, real_t* y) const;

  /// y = A x.  Writes every y[i]; no zero-fill pass.
  void multiply(const index_t* row_ptr, const index_t* col_idx,
                const real_t* values, const real_t* x, real_t* y) const;

  /// y = A x, returning <w, y> accumulated inside the product pass.
  [[nodiscard]] real_t multiply_dot(const index_t* row_ptr,
                                    const index_t* col_idx,
                                    const real_t* values, const real_t* x,
                                    const real_t* w, real_t* y) const;

  /// y = A x with <w, y> and <y, y> in the same pass (the preconditioner
  /// apply + <r, z> + ||z||^2 shape of CG/BiCGStab).
  void multiply_dot_norm2(const index_t* row_ptr, const index_t* col_idx,
                          const real_t* values, const real_t* x,
                          const real_t* w, real_t* y, real_t& dot_wy,
                          real_t& norm_sq_y) const;

  /// The whole preconditioned-CG tail in one parallel region: z = A x with
  /// <w, z> and <z, z> accumulated in the product pass, then — after the
  /// fixed-chunk-order reduction — beta = <w, z> / rho_prev and
  /// q = z + beta * q over the same chunk grid.  Fusing the q-recurrence
  /// into the region saves a full parallel-region launch + vector sweep per
  /// CG iteration; the reduction tree and the elementwise update expression
  /// are exactly those of multiply_dot_norm2 followed by xpby, so the
  /// result is bit-identical to composing them at any thread count.
  void multiply_dot_norm2_xpby(const index_t* row_ptr, const index_t* col_idx,
                               const real_t* values, const real_t* x,
                               const real_t* w, real_t* z, real_t rho_prev,
                               real_t* q, real_t& dot_wz,
                               real_t& norm_sq_z) const;

  /// The CG descent step in one parallel region: aq = A q with
  /// qaq = <q, aq> from the product pass, then — when qaq is finite and
  /// positive, exactly the caller's validity guard — alpha = rho / qaq and
  /// x += alpha * q, r -= alpha * aq over the same chunk grid.  On an
  /// invalid qaq (breakdown / divergence / non-finite) x and r are left
  /// untouched, matching the unfused path that returns before its axpy2.
  /// Returns qaq; bit-identical to multiply_dot + axpy2 at any thread
  /// count.
  [[nodiscard]] real_t multiply_dot_axpy2(const index_t* row_ptr,
                                          const index_t* col_idx,
                                          const real_t* values,
                                          const real_t* q, real_t rho,
                                          real_t* aq, real_t* x,
                                          real_t* r) const;

  /// Gather kernel for a transposed view: y[j] = sum_k values[src_pos[k]] *
  /// x[src_row[k]] over k in [col_ptr[j], col_ptr[j+1]).  The plan must have
  /// been built over (col_ptr, src_row).
  void multiply_gather(const index_t* col_ptr, const index_t* src_row,
                       const index_t* src_pos, const real_t* values,
                       const real_t* x, real_t* y) const;

 private:
  /// Chunk c covers rows [chunk_rows_[c], chunk_rows_[c+1]).
  std::vector<index_t> chunk_rows_;
  /// Uniform row width of chunk c for the unrolled dispatch; 0 = generic.
  std::vector<std::int8_t> chunk_width_;
  /// 32-bit copy of col_idx when cols < 2^31 (empty otherwise): the SpMV
  /// kernels are bandwidth-bound and index traffic is half the story.
  std::vector<u32> col32_;
};

}  // namespace mcmi
