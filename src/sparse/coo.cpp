#include "sparse/coo.hpp"

#include <algorithm>

#include "core/error.hpp"

namespace mcmi {

CooMatrix::CooMatrix(index_t rows, index_t cols) : rows_(rows), cols_(cols) {
  MCMI_CHECK(rows >= 0 && cols >= 0,
             "invalid dimensions " << rows << "x" << cols);
}

void CooMatrix::add(index_t i, index_t j, real_t value) {
  MCMI_CHECK(i >= 0 && i < rows_ && j >= 0 && j < cols_,
             "entry (" << i << "," << j << ") outside " << rows_ << "x"
                       << cols_);
  entries_.push_back({i, j, value});
}

void CooMatrix::compress() {
  std::sort(entries_.begin(), entries_.end(),
            [](const Triplet& a, const Triplet& b) {
              return a.row != b.row ? a.row < b.row : a.col < b.col;
            });
  std::vector<Triplet> merged;
  merged.reserve(entries_.size());
  for (const Triplet& t : entries_) {
    if (!merged.empty() && merged.back().row == t.row &&
        merged.back().col == t.col) {
      merged.back().value += t.value;
    } else {
      merged.push_back(t);
    }
  }
  merged.erase(std::remove_if(merged.begin(), merged.end(),
                              [](const Triplet& t) { return t.value == 0.0; }),
               merged.end());
  entries_ = std::move(merged);
}

}  // namespace mcmi
