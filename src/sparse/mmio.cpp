#include "sparse/mmio.hpp"

#include <algorithm>
#include <fstream>
#include <iomanip>
#include <sstream>

#include "core/error.hpp"

namespace mcmi {

CsrMatrix read_matrix_market(const std::string& path) {
  std::ifstream in(path);
  MCMI_CHECK(in.good(), "cannot open " << path);

  // Every extraction below is checked: malformed input (truncated file,
  // non-numeric tokens, out-of-range indices) must surface as a structured
  // mcmi::Error naming the offending line, never as silently-defaulted
  // values or undefined behaviour.  `lineno` counts physical lines so the
  // message points at the exact spot in the file.
  long long lineno = 0;
  std::string line;
  const auto next_line = [&]() {
    const bool ok = static_cast<bool>(std::getline(in, line));
    if (ok) ++lineno;
    return ok;
  };

  MCMI_CHECK(next_line(), "empty file " << path);
  std::istringstream banner(line);
  std::string tag, object, format, field, storage;
  banner >> tag >> object >> format >> field >> storage;
  std::transform(format.begin(), format.end(), format.begin(), ::tolower);
  std::transform(field.begin(), field.end(), field.begin(), ::tolower);
  std::transform(storage.begin(), storage.end(), storage.begin(), ::tolower);
  MCMI_CHECK(tag == "%%MatrixMarket" && object == "matrix",
             "not a MatrixMarket matrix file: " << path);
  MCMI_CHECK(format == "coordinate", "only coordinate format supported");
  MCMI_CHECK(field == "real" || field == "integer" || field == "pattern",
             "unsupported field type '" << field << "'");
  MCMI_CHECK(storage == "general" || storage == "symmetric",
             "unsupported storage '" << storage << "'");

  // Skip comments.
  bool have_size_line = false;
  while (next_line()) {
    if (!line.empty() && line[0] != '%') {
      have_size_line = true;
      break;
    }
  }
  MCMI_CHECK(have_size_line, "missing size line in " << path);
  std::istringstream size_line(line);
  index_t rows = 0, cols = 0, entries = 0;
  MCMI_CHECK(static_cast<bool>(size_line >> rows >> cols >> entries),
             "bad size line in " << path << ":" << lineno << ": '" << line
                                 << "'");
  MCMI_CHECK(rows > 0 && cols > 0 && entries >= 0,
             "bad size line in " << path << ":" << lineno << ": '" << line
                                 << "'");

  CooMatrix coo(rows, cols);
  for (index_t e = 0; e < entries; ++e) {
    MCMI_CHECK(next_line(), "truncated file " << path << ": expected "
                                              << entries << " entries, got "
                                              << e);
    std::istringstream entry(line);
    index_t i = 0, j = 0;
    real_t v = 1.0;
    MCMI_CHECK(static_cast<bool>(entry >> i >> j),
               "bad entry in " << path << ":" << lineno << ": '" << line
                               << "'");
    if (field != "pattern") {
      MCMI_CHECK(static_cast<bool>(entry >> v),
                 "bad value in " << path << ":" << lineno << ": '" << line
                                 << "'");
    }
    MCMI_CHECK(i >= 1 && i <= rows && j >= 1 && j <= cols,
               "entry out of range in " << path << ":" << lineno << ": ("
                                        << i << ", " << j << ") not in ["
                                        << rows << " x " << cols << "]");
    coo.add(i - 1, j - 1, v);
    if (storage == "symmetric" && i != j) coo.add(j - 1, i - 1, v);
  }
  return CsrMatrix::from_coo(std::move(coo));
}

void write_matrix_market(const CsrMatrix& matrix, const std::string& path) {
  std::ofstream out(path);
  MCMI_CHECK(out.good(), "cannot open " << path << " for writing");
  out << "%%MatrixMarket matrix coordinate real general\n";
  out << matrix.rows() << " " << matrix.cols() << " " << matrix.nnz() << "\n";
  out << std::setprecision(17);
  const auto& row_ptr = matrix.row_ptr();
  const auto& col_idx = matrix.col_idx();
  const auto& values = matrix.values();
  for (index_t i = 0; i < matrix.rows(); ++i) {
    for (index_t k = row_ptr[i]; k < row_ptr[i + 1]; ++k) {
      out << i + 1 << " " << col_idx[k] + 1 << " " << values[k] << "\n";
    }
  }
}

}  // namespace mcmi
