#pragma once
/// @file sharded_plan.hpp
/// @brief Sharded SpMV execution behind the SpmvPlan seam: nnz-balanced row
/// shards, a fixed-order ShardReducer for dots and norms, and the
/// PlanBackend registry that makes a GPU/accelerator backend a drop-in
/// third implementation.
///
/// A ShardedPlan partitions the rows of one matrix into contiguous,
/// nnz-balanced shards; each shard owns a per-shard SpmvPlan built over its
/// row slice (rebased row pointers, the shard's own 32-bit column
/// re-encoding).  Shards model the unit of placement — today every shard
/// runs on the host thread pool, later shards map to devices — so the
/// execution layer never assumes shard count == thread count: the plain
/// product flattens (shard, chunk) work items into one schedule, keeping
/// every core busy even when shards are few.
///
/// Determinism contract (the asset PRs 1–5 established):
///
///  * SpMV: every row's sum is accumulated in column order, so y is
///    bit-identical to the single-plan path for ANY shard layout.
///  * Dots/norms: per-shard partials cannot simply be added — FP addition
///    is not associative, so a sum split at a shard boundary changes bits.
///    Instead the ShardReducer owns a *fixed block grid* (a pure function
///    of the matrix shape, independent of the layout): each shard computes
///    partials only for blocks it fully contains, the reducer recomputes
///    the few blocks straddling shard boundaries whole, and all blocks are
///    combined in fixed block order.  Every block's value is therefore the
///    same arithmetic regardless of which shard (or thread) produced it,
///    so the reduction is bit-identical for any shard count — including
///    shard counts coprime to the thread count — and, because the block
///    grid and per-block accumulation reproduce the single plan's fused
///    chunk reduction exactly, bit-identical to the unsharded path too.
///
/// Backend dispatch: PlanBackend names an execution strategy, a
/// PlanExecution is one matrix's bound instance of it, and the
/// PlanBackendRegistry maps enum -> factory.  kSingle and kShardedThreads
/// are registered at startup; kAccelerator is a stubbed slot — tests
/// register a mock to pin the dispatch contract, and a real device backend
/// (Lebedev et al., "Advanced Accelerator Architectures") registers there
/// without touching any call site.

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <utility>
#include <vector>

#include "core/types.hpp"
#include "sparse/spmv_plan.hpp"

namespace mcmi {

/// Execution strategy behind CsrMatrix products.
enum class PlanBackend {
  kSingle = 0,          ///< one SpmvPlan over the whole matrix (default)
  kShardedThreads = 1,  ///< nnz-balanced row shards on the host thread pool
  kAccelerator = 2,     ///< device backend slot (stubbed; registry-gated)
};

/// Human-readable backend name ("single", "sharded-threads", ...).
const char* to_string(PlanBackend backend);

/// Contiguous row partition of an n-row matrix: shard s owns rows
/// [boundaries[s], boundaries[s+1]).  Degenerate shards (empty, one row,
/// everything) are legal; an empty `boundaries` means "no explicit layout"
/// (the single-plan path).
struct ShardLayout {
  std::vector<index_t> boundaries;

  /// Number of shards (0 for the empty layout).
  [[nodiscard]] index_t shards() const {
    return boundaries.empty() ? 0
                              : static_cast<index_t>(boundaries.size()) - 1;
  }
  [[nodiscard]] bool empty() const { return boundaries.empty(); }

  /// Nnz-balanced layout: shard s ends at the first row whose prefix
  /// nonzero count reaches s/shards of the total (same rule as the
  /// SpmvPlan chunk decomposition, so skewed matrices balance by work,
  /// not by row count).  A pure function of (shards, shape).
  static ShardLayout nnz_balanced(index_t shards,
                                  const std::vector<index_t>& row_ptr);

  /// Row-uniform layout (tests / degenerate-layout construction).
  static ShardLayout uniform(index_t shards, index_t rows);

  /// 64-bit fingerprint over the boundary list; the (matrix fingerprint,
  /// layout fingerprint) pair keys cached sharded plans in the serving
  /// layer.  The empty layout hashes to a distinct constant.
  [[nodiscard]] u64 fingerprint() const;

  /// Abort unless the layout is a valid partition of `rows` rows
  /// (monotone boundaries, first 0, last == rows).
  void validate(index_t rows) const;

  [[nodiscard]] bool operator==(const ShardLayout& other) const {
    return boundaries == other.boundaries;
  }
};

/// Fixed-block deterministic reducer for <w, y> and ||y||^2 over a block
/// grid that is a pure function of the matrix shape (never of the shard
/// layout or thread count).  Shards accumulate the blocks they fully
/// contain; reduce() recomputes boundary-straddling blocks whole and folds
/// every block in fixed block order, so the result is bit-identical for
/// any layout — and, with the grid and per-block accumulation below,
/// bit-identical to SpmvPlan's fused chunk reduction.
class ShardReducer {
 public:
  ShardReducer() = default;

  /// @param block_rows block boundaries (block t covers
  ///   [block_rows[t], block_rows[t+1])); fixed for the reducer's life.
  explicit ShardReducer(std::vector<index_t> block_rows);

  [[nodiscard]] index_t num_blocks() const {
    return block_rows_.empty()
               ? 0
               : static_cast<index_t>(block_rows_.size()) - 1;
  }
  [[nodiscard]] const std::vector<index_t>& block_rows() const {
    return block_rows_;
  }

  /// One block's <w, y> partial: four striped accumulators relative to the
  /// block start, combined (d0+d1)+(d2+d3) — the exact arithmetic of the
  /// fused SpmvPlan chunk, reproduced here so a recomputed block is
  /// bit-equal to a fused one.
  static real_t block_dot(const real_t* w, const real_t* y, index_t begin,
                          index_t end);
  /// As block_dot, also producing the block's ||y||^2 partial.
  static void block_dot_norm2(const real_t* w, const real_t* y, index_t begin,
                              index_t end, real_t& part_wy, real_t& part_yy);

  /// Reduce <w, y> (and, with `with_norm`, ||y||^2) under `layout`:
  /// per-shard partials for fully-contained blocks (parallel over shards),
  /// straddled blocks recomputed whole, all blocks folded in fixed block
  /// order.  An empty layout reduces as one shard.  Bit-identical for any
  /// layout and thread count.
  void reduce(const ShardLayout& layout, const real_t* w, const real_t* y,
              bool with_norm, real_t& dot_wy, real_t& norm_sq_y) const;

  /// Layout-free reference reduction: every block computed serially in
  /// block order.  This is the specification reduce() must match byte for
  /// byte (the fuzz suite diffs the two over randomized layouts).
  void reference(const real_t* w, const real_t* y, bool with_norm,
                 real_t& dot_wy, real_t& norm_sq_y) const;

 private:
  std::vector<index_t> block_rows_;
};

/// One matrix's bound execution backend: the abstract seam CsrMatrix
/// products dispatch through.  Implementations read the CSR arrays passed
/// per call (values may change in place; the shape must match the build).
class PlanExecution {
 public:
  virtual ~PlanExecution() = default;

  /// The strategy this execution implements.
  [[nodiscard]] virtual PlanBackend backend() const = 0;
  /// The row partition the execution was built for (empty for kSingle).
  [[nodiscard]] virtual const ShardLayout& layout() const = 0;

  /// y = A x.  Writes every y[i].
  virtual void multiply(const index_t* row_ptr, const index_t* col_idx,
                        const real_t* values, const real_t* x,
                        real_t* y) const = 0;
  /// y = A x returning <w, y> from the same dispatch.
  [[nodiscard]] virtual real_t multiply_dot(const index_t* row_ptr,
                                            const index_t* col_idx,
                                            const real_t* values,
                                            const real_t* x, const real_t* w,
                                            real_t* y) const = 0;
  /// y = A x with <w, y> and <y, y>.
  virtual void multiply_dot_norm2(const index_t* row_ptr,
                                  const index_t* col_idx,
                                  const real_t* values, const real_t* x,
                                  const real_t* w, real_t* y, real_t& dot_wy,
                                  real_t& norm_sq_y) const = 0;
};

/// Sharded host execution: per-shard SpmvPlans over nnz-balanced row
/// slices, (shard, chunk) work items flattened into one parallel schedule,
/// and a ShardReducer over the full matrix's chunk grid for the fused
/// reductions.
class ShardedPlan final : public PlanExecution {
 public:
  /// Build for the CSR shape (row_ptr, col_idx) under `layout` (validated
  /// against `rows`; an empty layout becomes one shard).
  static ShardedPlan build(index_t rows, index_t cols,
                           const std::vector<index_t>& row_ptr,
                           const std::vector<index_t>& col_idx,
                           ShardLayout layout);

  [[nodiscard]] PlanBackend backend() const override {
    return PlanBackend::kShardedThreads;
  }
  [[nodiscard]] const ShardLayout& layout() const override { return layout_; }
  [[nodiscard]] index_t num_shards() const {
    return static_cast<index_t>(shards_.size());
  }
  /// Stored nonzeros of shard s (work-balance inspection / bench counters).
  [[nodiscard]] index_t shard_nnz(index_t s) const;
  /// The reducer (tests pin its grid against the single plan's chunks).
  [[nodiscard]] const ShardReducer& reducer() const { return reducer_; }

  void multiply(const index_t* row_ptr, const index_t* col_idx,
                const real_t* values, const real_t* x,
                real_t* y) const override;
  [[nodiscard]] real_t multiply_dot(const index_t* row_ptr,
                                    const index_t* col_idx,
                                    const real_t* values, const real_t* x,
                                    const real_t* w,
                                    real_t* y) const override;
  void multiply_dot_norm2(const index_t* row_ptr, const index_t* col_idx,
                          const real_t* values, const real_t* x,
                          const real_t* w, real_t* y, real_t& dot_wy,
                          real_t& norm_sq_y) const override;

 private:
  /// One shard's slice: global row/nnz base plus a rebased row-pointer copy
  /// so the per-shard plan indexes the slice from zero.
  struct Shard {
    index_t row_begin = 0;
    index_t row_end = 0;
    index_t nnz_begin = 0;
    std::vector<index_t> local_row_ptr;
    SpmvPlan plan;
  };

  void run_fused(const index_t* col_idx, const real_t* values,
                 const real_t* x, const real_t* w, real_t* y, bool with_norm,
                 real_t& dot_wy, real_t& norm_sq_y) const;

  ShardLayout layout_;
  std::vector<Shard> shards_;
  /// Flattened (shard, chunk) schedule: shard count never caps parallelism.
  std::vector<std::pair<index_t, index_t>> items_;
  ShardReducer reducer_;
};

/// Factory bound into the registry: builds one matrix's execution for a
/// backend.  `layout` is the requested partition (may be empty).
using PlanExecutionFactory = std::function<std::unique_ptr<PlanExecution>(
    index_t rows, index_t cols, const std::vector<index_t>& row_ptr,
    const std::vector<index_t>& col_idx, const ShardLayout& layout)>;

/// Process-wide PlanBackend -> factory table.  kSingle and
/// kShardedThreads are registered at construction; kAccelerator starts
/// unregistered (the stubbed slot) so requesting it reports "backend
/// unavailable" instead of silently falling back — tests register a mock
/// there to interface-test the dispatch, and a real device backend later
/// claims the slot the same way.  Thread-safe.
class PlanBackendRegistry {
 public:
  static PlanBackendRegistry& instance();

  /// Claim (or replace) a backend slot.
  void register_backend(PlanBackend backend, PlanExecutionFactory factory);
  /// Release a slot (tests restore the stub after mocking); built-in
  /// backends may not be unregistered.
  void unregister_backend(PlanBackend backend);
  /// True when the backend has a bound factory.
  [[nodiscard]] bool available(PlanBackend backend) const;
  /// Build one matrix's execution; aborts when the backend is unavailable.
  [[nodiscard]] std::unique_ptr<PlanExecution> create(
      PlanBackend backend, index_t rows, index_t cols,
      const std::vector<index_t>& row_ptr,
      const std::vector<index_t>& col_idx, const ShardLayout& layout) const;

 private:
  PlanBackendRegistry();
  mutable std::mutex mutex_;
  PlanExecutionFactory factories_[3];
};

/// Shard-grouped row schedule: the intersections of `layout`'s shards with
/// [row_begin, row_end), each split into spans of at most `grain` rows.
/// The MCMC builders iterate these spans so one grid build runs
/// shard-major (rows of different shards never interleave inside a span)
/// while the span granularity keeps the thread pool load-balanced.
std::vector<std::pair<index_t, index_t>> shard_row_spans(
    const ShardLayout& layout, index_t row_begin, index_t row_end,
    index_t grain);

}  // namespace mcmi
