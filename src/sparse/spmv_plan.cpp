#include "sparse/spmv_plan.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace mcmi {

namespace {

/// Target nonzeros per chunk.  Matches the order of the vector_ops reduction
/// block so per-chunk partials stay cheap relative to the chunk body; small
/// matrices collapse to a single serial chunk.
constexpr index_t kChunkNnz = 16384;

/// Row sum for a compile-time row width: the loop fully unrolls into W
/// sequential fused multiply-adds (sequential so the summation order — and
/// therefore bit-equality with the generic path — is preserved).
template <int W, typename ColT>
inline real_t row_sum_fixed(const ColT* col, const real_t* val,
                            const real_t* x) {
  real_t s = 0.0;
  for (int k = 0; k < W; ++k) s += val[k] * x[col[k]];
  return s;
}

template <int W, typename ColT>
inline void rows_fixed(index_t b, index_t e, const index_t* rp,
                       const ColT* ci, const real_t* v, const real_t* x,
                       real_t* y) {
  for (index_t i = b; i < e; ++i) {
    y[i] = row_sum_fixed<W, ColT>(ci + rp[i], v + rp[i], x);
  }
}

/// One row's product sum, accumulated in column order (bit-equal to the
/// naive row loop).
template <typename ColT>
inline real_t row_sum(index_t i, const index_t* rp, const ColT* ci,
                      const real_t* v, const real_t* x) {
  real_t s = 0.0;
  const index_t kb = rp[i];
  const index_t ke = rp[i + 1];
  for (index_t k = kb; k < ke; ++k) s += v[k] * x[ci[k]];
  return s;
}

template <typename ColT>
inline void rows_generic(index_t b, index_t e, const index_t* rp,
                         const ColT* ci, const real_t* v, const real_t* x,
                         real_t* y) {
  // Four independent row sums per step: each row keeps its in-order
  // (naive-bit-equal) accumulation while the rows' FMA chains overlap.
  index_t i = b;
  for (; i + 4 <= e; i += 4) {
    y[i] = row_sum(i, rp, ci, v, x);
    y[i + 1] = row_sum(i + 1, rp, ci, v, x);
    y[i + 2] = row_sum(i + 2, rp, ci, v, x);
    y[i + 3] = row_sum(i + 3, rp, ci, v, x);
  }
  for (; i < e; ++i) y[i] = row_sum(i, rp, ci, v, x);
}

template <typename ColT>
inline void chunk_multiply(index_t b, index_t e, int width, const index_t* rp,
                           const ColT* ci, const real_t* v, const real_t* x,
                           real_t* y) {
  switch (width) {
    case 1: rows_fixed<1>(b, e, rp, ci, v, x, y); break;
    case 2: rows_fixed<2>(b, e, rp, ci, v, x, y); break;
    case 3: rows_fixed<3>(b, e, rp, ci, v, x, y); break;
    case 4: rows_fixed<4>(b, e, rp, ci, v, x, y); break;
    case 5: rows_fixed<5>(b, e, rp, ci, v, x, y); break;
    case 6: rows_fixed<6>(b, e, rp, ci, v, x, y); break;
    case 7: rows_fixed<7>(b, e, rp, ci, v, x, y); break;
    case 8: rows_fixed<8>(b, e, rp, ci, v, x, y); break;
    default: rows_generic(b, e, rp, ci, v, x, y); break;
  }
}

template <typename ColT>
void run_multiply(const std::vector<index_t>& chunk_rows,
                  const std::vector<std::int8_t>& chunk_width,
                  const index_t* rp, const ColT* ci, const real_t* v,
                  const real_t* x, real_t* y) {
  const index_t nc = static_cast<index_t>(chunk_rows.size()) - 1;
#pragma omp parallel for schedule(static) if (nc > 1)
  for (index_t c = 0; c < nc; ++c) {
    chunk_multiply(chunk_rows[c], chunk_rows[c + 1], chunk_width[c], rp, ci,
                   v, x, y);
  }
}

/// Fused chunk body: y over [b, e) plus the chunk's partial <w, y> (and
/// optionally <y, y>), with `row` computing one row's product sum.  Four
/// rows per step feed four independent dot accumulators — a single
/// accumulator would serialise the whole chunk on the FMA latency chain —
/// combined in a fixed order at the end, so the result depends only on the
/// chunk bounds, never on the thread count.
template <bool WithNorm, typename RowFn>
inline void fused_rows(index_t b, index_t e, const real_t* w, real_t* y,
                       const RowFn& row, real_t& part_wy, real_t& part_yy) {
  real_t d0 = 0.0, d1 = 0.0, d2 = 0.0, d3 = 0.0;
  real_t q0 = 0.0, q1 = 0.0, q2 = 0.0, q3 = 0.0;
  index_t i = b;
  for (; i + 4 <= e; i += 4) {
    const real_t s0 = row(i);
    const real_t s1 = row(i + 1);
    const real_t s2 = row(i + 2);
    const real_t s3 = row(i + 3);
    y[i] = s0;
    y[i + 1] = s1;
    y[i + 2] = s2;
    y[i + 3] = s3;
    d0 += w[i] * s0;
    d1 += w[i + 1] * s1;
    d2 += w[i + 2] * s2;
    d3 += w[i + 3] * s3;
    if constexpr (WithNorm) {
      q0 += s0 * s0;
      q1 += s1 * s1;
      q2 += s2 * s2;
      q3 += s3 * s3;
    }
  }
  for (; i < e; ++i) {
    const real_t s = row(i);
    y[i] = s;
    d0 += w[i] * s;
    if constexpr (WithNorm) q0 += s * s;
  }
  part_wy = (d0 + d1) + (d2 + d3);
  part_yy = (q0 + q1) + (q2 + q3);
}

/// The generic fused chunk lives in its own function so the hot loop's
/// codegen is independent of the fixed-width dispatch below (folding the
/// two into one switch measurably pessimised this path).
template <bool WithNorm, typename ColT>
void chunk_multiply_fused_generic(index_t b, index_t e, const index_t* rp,
                                  const ColT* ci, const real_t* v,
                                  const real_t* x, const real_t* w,
                                  real_t* y, real_t& part_wy,
                                  real_t& part_yy) {
  fused_rows<WithNorm>(
      b, e, w, y, [&](index_t i) { return row_sum(i, rp, ci, v, x); },
      part_wy, part_yy);
}

/// Fused chunk for a uniform short row width.
template <bool WithNorm, typename ColT>
void chunk_multiply_fused_fixed(index_t b, index_t e, int width,
                                const index_t* rp, const ColT* ci,
                                const real_t* v, const real_t* x,
                                const real_t* w, real_t* y, real_t& part_wy,
                                real_t& part_yy) {
  switch (width) {
#define MCMI_FUSED_CASE(W)                                                  \
  case W:                                                                   \
    fused_rows<WithNorm>(                                                   \
        b, e, w, y,                                                         \
        [&](index_t i) {                                                    \
          return row_sum_fixed<W, ColT>(ci + rp[i], v + rp[i], x);          \
        },                                                                  \
        part_wy, part_yy);                                                  \
    break;
    MCMI_FUSED_CASE(1)
    MCMI_FUSED_CASE(2)
    MCMI_FUSED_CASE(3)
    MCMI_FUSED_CASE(4)
    MCMI_FUSED_CASE(5)
    MCMI_FUSED_CASE(6)
    MCMI_FUSED_CASE(7)
    MCMI_FUSED_CASE(8)
#undef MCMI_FUSED_CASE
    default:
      chunk_multiply_fused_generic<WithNorm>(b, e, rp, ci, v, x, w, y,
                                             part_wy, part_yy);
      break;
  }
}

template <bool WithNorm, typename ColT>
inline void chunk_multiply_fused(index_t b, index_t e, int width,
                                 const index_t* rp, const ColT* ci,
                                 const real_t* v, const real_t* x,
                                 const real_t* w, real_t* y, real_t& part_wy,
                                 real_t& part_yy) {
  if (width == 0) {
    chunk_multiply_fused_generic<WithNorm>(b, e, rp, ci, v, x, w, y, part_wy,
                                           part_yy);
  } else {
    chunk_multiply_fused_fixed<WithNorm>(b, e, width, rp, ci, v, x, w, y,
                                         part_wy, part_yy);
  }
}

template <bool WithNorm, typename ColT>
void run_multiply_fused(const std::vector<index_t>& chunk_rows,
                        const std::vector<std::int8_t>& chunk_width,
                        const index_t* rp, const ColT* ci, const real_t* v,
                        const real_t* x, const real_t* w, real_t* y,
                        real_t& dot_wy, real_t& norm_sq_y) {
  const index_t nc = static_cast<index_t>(chunk_rows.size()) - 1;
  std::vector<real_t> part_wy(static_cast<std::size_t>(nc), 0.0);
  std::vector<real_t> part_yy(static_cast<std::size_t>(nc), 0.0);
#pragma omp parallel for schedule(static) if (nc > 1)
  for (index_t c = 0; c < nc; ++c) {
    chunk_multiply_fused<WithNorm>(chunk_rows[c], chunk_rows[c + 1],
                                   chunk_width[c], rp, ci, v, x, w, y,
                                   part_wy[static_cast<std::size_t>(c)],
                                   part_yy[static_cast<std::size_t>(c)]);
  }
  real_t wy = 0.0;
  real_t yy = 0.0;
  // Fixed chunk order: the combination tree never sees the thread count.
  for (index_t c = 0; c < nc; ++c) {
    wy += part_wy[static_cast<std::size_t>(c)];
    yy += part_yy[static_cast<std::size_t>(c)];
  }
  dot_wy = wy;
  norm_sq_y = yy;
}

/// Fused CG tail runner: product + reductions, then beta = <w, z> /
/// rho_prev, then q = z + beta * q — one parallel region end to end.  The
/// `single` block reduces the chunk partials in fixed chunk order (exactly
/// run_multiply_fused's combination tree) and its closing barrier publishes
/// beta to every thread before the second worksharing loop; the q-update is
/// elementwise, so running it over the chunk grid instead of the
/// vector_ops block grid cannot change any bit.
template <typename ColT>
void run_fused_xpby(const std::vector<index_t>& chunk_rows,
                    const std::vector<std::int8_t>& chunk_width,
                    const index_t* rp, const ColT* ci, const real_t* v,
                    const real_t* x, const real_t* w, real_t* z,
                    real_t rho_prev, real_t* q, real_t& dot_wz,
                    real_t& norm_sq_z) {
  const index_t nc = static_cast<index_t>(chunk_rows.size()) - 1;
  std::vector<real_t> part_wz(static_cast<std::size_t>(nc), 0.0);
  std::vector<real_t> part_zz(static_cast<std::size_t>(nc), 0.0);
  real_t wz = 0.0;
  real_t zz = 0.0;
  real_t beta = 0.0;
#pragma omp parallel if (nc > 1)
  {
#pragma omp for schedule(static)
    for (index_t c = 0; c < nc; ++c) {
      chunk_multiply_fused<true>(chunk_rows[c], chunk_rows[c + 1],
                                 chunk_width[c], rp, ci, v, x, w, z,
                                 part_wz[static_cast<std::size_t>(c)],
                                 part_zz[static_cast<std::size_t>(c)]);
    }
#pragma omp single
    {
      for (index_t c = 0; c < nc; ++c) {
        wz += part_wz[static_cast<std::size_t>(c)];
        zz += part_zz[static_cast<std::size_t>(c)];
      }
      beta = wz / rho_prev;
    }
#pragma omp for schedule(static)
    for (index_t c = 0; c < nc; ++c) {
      for (index_t i = chunk_rows[c]; i < chunk_rows[c + 1]; ++i) {
        q[i] = z[i] + beta * q[i];
      }
    }
  }
  dot_wz = wz;
  norm_sq_z = zz;
}

/// Fused CG descent runner: aq = A q with qaq = <q, aq>, then — behind the
/// caller's exact validity guard — alpha = rho / qaq, x += alpha * q,
/// r -= alpha * aq.  `valid` is shared and set before the single's closing
/// barrier, so every thread takes the same branch around the second
/// worksharing loop; an invalid qaq leaves x and r bit-untouched, matching
/// the unfused caller that returns before its axpy2.
template <typename ColT>
real_t run_fused_axpy2(const std::vector<index_t>& chunk_rows,
                       const std::vector<std::int8_t>& chunk_width,
                       const index_t* rp, const ColT* ci, const real_t* v,
                       const real_t* q, real_t rho, real_t* aq, real_t* x,
                       real_t* r) {
  const index_t nc = static_cast<index_t>(chunk_rows.size()) - 1;
  std::vector<real_t> part(static_cast<std::size_t>(nc), 0.0);
  std::vector<real_t> unused(static_cast<std::size_t>(nc), 0.0);
  real_t qaq = 0.0;
  real_t alpha = 0.0;
  bool valid = false;
#pragma omp parallel if (nc > 1)
  {
#pragma omp for schedule(static)
    for (index_t c = 0; c < nc; ++c) {
      chunk_multiply_fused<false>(chunk_rows[c], chunk_rows[c + 1],
                                  chunk_width[c], rp, ci, v, q, q, aq,
                                  part[static_cast<std::size_t>(c)],
                                  unused[static_cast<std::size_t>(c)]);
    }
#pragma omp single
    {
      for (index_t c = 0; c < nc; ++c) {
        qaq += part[static_cast<std::size_t>(c)];
      }
      valid = std::isfinite(qaq) && qaq > 0.0;
      if (valid) alpha = rho / qaq;
    }
    if (valid) {
#pragma omp for schedule(static)
      for (index_t c = 0; c < nc; ++c) {
        for (index_t i = chunk_rows[c]; i < chunk_rows[c + 1]; ++i) {
          x[i] += alpha * q[i];
          r[i] -= alpha * aq[i];
        }
      }
    }
  }
  return qaq;
}

template <typename ColT>
void run_gather(const std::vector<index_t>& chunk_rows, const index_t* cp,
                const ColT* src_row, const index_t* src_pos, const real_t* v,
                const real_t* x, real_t* y) {
  const index_t nc = static_cast<index_t>(chunk_rows.size()) - 1;
#pragma omp parallel for schedule(static) if (nc > 1)
  for (index_t c = 0; c < nc; ++c) {
    for (index_t j = chunk_rows[c]; j < chunk_rows[c + 1]; ++j) {
      real_t s = 0.0;
      const index_t kb = cp[j];
      const index_t ke = cp[j + 1];
      for (index_t k = kb; k < ke; ++k) s += v[src_pos[k]] * x[src_row[k]];
      y[j] = s;
    }
  }
}

}  // namespace

std::vector<index_t> SpmvPlan::chunk_boundaries(
    index_t rows, const std::vector<index_t>& row_ptr) {
  if (rows < 0) rows = 0;
  const index_t nnz =
      row_ptr.empty() ? 0 : row_ptr[static_cast<std::size_t>(rows)];

  // Nnz-balanced chunk boundaries: chunk c ends at the first row whose
  // prefix nonzero count reaches c/chunks of the total.  Boundaries are a
  // pure function of the shape, so the decomposition — and with it every
  // fused reduction — is independent of the thread count.
  index_t chunks = std::min<index_t>(
      std::max<index_t>(rows, 1), (nnz + kChunkNnz - 1) / kChunkNnz);
  if (chunks < 1) chunks = 1;
  std::vector<index_t> chunk_rows(static_cast<std::size_t>(chunks) + 1);
  chunk_rows.front() = 0;
  chunk_rows.back() = rows;
  for (index_t c = 1; c < chunks; ++c) {
    const index_t target = nnz * c / chunks;
    index_t r = static_cast<index_t>(
        std::lower_bound(row_ptr.begin(),
                         row_ptr.begin() + static_cast<std::ptrdiff_t>(rows),
                         target) -
        row_ptr.begin());
    r = std::max(r, chunk_rows[static_cast<std::size_t>(c) - 1]);
    chunk_rows[static_cast<std::size_t>(c)] = std::min(r, rows);
  }
  return chunk_rows;
}

SpmvPlan SpmvPlan::build(index_t rows, index_t cols,
                         const std::vector<index_t>& row_ptr,
                         const std::vector<index_t>& col_idx) {
  SpmvPlan plan;
  if (rows < 0) rows = 0;
  plan.chunk_rows_ = chunk_boundaries(rows, row_ptr);
  const index_t chunks = static_cast<index_t>(plan.chunk_rows_.size()) - 1;

  // Uniform short-width detection per chunk for the unrolled kernels.
  plan.chunk_width_.assign(static_cast<std::size_t>(chunks), 0);
  for (index_t c = 0; c < chunks; ++c) {
    const index_t b = plan.chunk_rows_[static_cast<std::size_t>(c)];
    const index_t e = plan.chunk_rows_[static_cast<std::size_t>(c) + 1];
    if (b >= e) continue;
    const index_t w = row_ptr[b + 1] - row_ptr[b];
    if (w < 1 || w > 8) continue;
    bool uniform = true;
    for (index_t i = b + 1; i < e && uniform; ++i) {
      uniform = (row_ptr[i + 1] - row_ptr[i]) == w;
    }
    if (uniform) plan.chunk_width_[static_cast<std::size_t>(c)] =
        static_cast<std::int8_t>(w);
  }

  if (cols >= 0 &&
      cols <= static_cast<index_t>(std::numeric_limits<std::int32_t>::max())) {
    plan.col32_.assign(col_idx.begin(), col_idx.end());
  }
  return plan;
}

void SpmvPlan::multiply_chunk(index_t c, const index_t* row_ptr,
                              const index_t* col_idx, const real_t* values,
                              const real_t* x, real_t* y) const {
  const index_t b = chunk_rows_[static_cast<std::size_t>(c)];
  const index_t e = chunk_rows_[static_cast<std::size_t>(c) + 1];
  const int width = chunk_width_[static_cast<std::size_t>(c)];
  if (!col32_.empty()) {
    chunk_multiply(b, e, width, row_ptr, col32_.data(), values, x, y);
  } else {
    chunk_multiply(b, e, width, row_ptr, col_idx, values, x, y);
  }
}

void SpmvPlan::multiply(const index_t* row_ptr, const index_t* col_idx,
                        const real_t* values, const real_t* x,
                        real_t* y) const {
  if (num_chunks() == 0) return;
  if (!col32_.empty()) {
    run_multiply(chunk_rows_, chunk_width_, row_ptr, col32_.data(), values, x,
                 y);
  } else {
    run_multiply(chunk_rows_, chunk_width_, row_ptr, col_idx, values, x, y);
  }
}

real_t SpmvPlan::multiply_dot(const index_t* row_ptr, const index_t* col_idx,
                              const real_t* values, const real_t* x,
                              const real_t* w, real_t* y) const {
  if (num_chunks() == 0) return 0.0;
  real_t dot_wy = 0.0;
  real_t unused = 0.0;
  if (!col32_.empty()) {
    run_multiply_fused<false>(chunk_rows_, chunk_width_, row_ptr,
                              col32_.data(), values, x, w, y, dot_wy, unused);
  } else {
    run_multiply_fused<false>(chunk_rows_, chunk_width_, row_ptr, col_idx,
                              values, x, w, y, dot_wy, unused);
  }
  return dot_wy;
}

void SpmvPlan::multiply_dot_norm2(const index_t* row_ptr,
                                  const index_t* col_idx, const real_t* values,
                                  const real_t* x, const real_t* w, real_t* y,
                                  real_t& dot_wy, real_t& norm_sq_y) const {
  dot_wy = 0.0;
  norm_sq_y = 0.0;
  if (num_chunks() == 0) return;
  if (!col32_.empty()) {
    run_multiply_fused<true>(chunk_rows_, chunk_width_, row_ptr,
                             col32_.data(), values, x, w, y, dot_wy,
                             norm_sq_y);
  } else {
    run_multiply_fused<true>(chunk_rows_, chunk_width_, row_ptr, col_idx,
                             values, x, w, y, dot_wy, norm_sq_y);
  }
}

void SpmvPlan::multiply_dot_norm2_xpby(const index_t* row_ptr,
                                       const index_t* col_idx,
                                       const real_t* values, const real_t* x,
                                       const real_t* w, real_t* z,
                                       real_t rho_prev, real_t* q,
                                       real_t& dot_wz,
                                       real_t& norm_sq_z) const {
  dot_wz = 0.0;
  norm_sq_z = 0.0;
  if (num_chunks() == 0) return;
  if (!col32_.empty()) {
    run_fused_xpby(chunk_rows_, chunk_width_, row_ptr, col32_.data(), values,
                   x, w, z, rho_prev, q, dot_wz, norm_sq_z);
  } else {
    run_fused_xpby(chunk_rows_, chunk_width_, row_ptr, col_idx, values, x, w,
                   z, rho_prev, q, dot_wz, norm_sq_z);
  }
}

real_t SpmvPlan::multiply_dot_axpy2(const index_t* row_ptr,
                                    const index_t* col_idx,
                                    const real_t* values, const real_t* q,
                                    real_t rho, real_t* aq, real_t* x,
                                    real_t* r) const {
  if (num_chunks() == 0) return 0.0;
  if (!col32_.empty()) {
    return run_fused_axpy2(chunk_rows_, chunk_width_, row_ptr, col32_.data(),
                           values, q, rho, aq, x, r);
  }
  return run_fused_axpy2(chunk_rows_, chunk_width_, row_ptr, col_idx, values,
                         q, rho, aq, x, r);
}

void SpmvPlan::multiply_gather(const index_t* col_ptr, const index_t* src_row,
                               const index_t* src_pos, const real_t* values,
                               const real_t* x, real_t* y) const {
  if (num_chunks() == 0) return;
  if (!col32_.empty()) {
    run_gather(chunk_rows_, col_ptr, col32_.data(), src_pos, values, x, y);
  } else {
    run_gather(chunk_rows_, col_ptr, src_row, src_pos, values, x, y);
  }
}

}  // namespace mcmi
