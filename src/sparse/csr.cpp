#include "sparse/csr.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <sstream>

#include "core/error.hpp"
#include "core/hash.hpp"
#include "sparse/vector_ops.hpp"

namespace mcmi {

CsrMatrix::CsrMatrix(const CsrMatrix& other)
    : rows_(other.rows_),
      cols_(other.cols_),
      row_ptr_(other.row_ptr_),
      col_idx_(other.col_idx_),
      values_(other.values_),
      plan_(std::atomic_load(&other.plan_)),
      tgather_(std::atomic_load(&other.tgather_)),
      exec_(std::atomic_load(&other.exec_)) {}

CsrMatrix& CsrMatrix::operator=(const CsrMatrix& other) {
  if (this == &other) return *this;
  rows_ = other.rows_;
  cols_ = other.cols_;
  row_ptr_ = other.row_ptr_;
  col_idx_ = other.col_idx_;
  values_ = other.values_;
  std::atomic_store(&plan_, std::atomic_load(&other.plan_));
  std::atomic_store(&tgather_, std::atomic_load(&other.tgather_));
  std::atomic_store(&exec_, std::atomic_load(&other.exec_));
  return *this;
}

CsrMatrix CsrMatrix::from_coo(CooMatrix coo) {
  coo.compress();
  const index_t rows = coo.rows();
  std::vector<index_t> row_ptr(rows + 1, 0);
  std::vector<index_t> col_idx;
  std::vector<real_t> values;
  col_idx.reserve(coo.entries().size());
  values.reserve(coo.entries().size());
  for (const Triplet& t : coo.entries()) row_ptr[t.row + 1]++;
  for (index_t i = 0; i < rows; ++i) row_ptr[i + 1] += row_ptr[i];
  for (const Triplet& t : coo.entries()) {
    col_idx.push_back(t.col);
    values.push_back(t.value);
  }
  return CsrMatrix(rows, coo.cols(), std::move(row_ptr), std::move(col_idx),
                   std::move(values));
}

CsrMatrix::CsrMatrix(index_t rows, index_t cols, std::vector<index_t> row_ptr,
                     std::vector<index_t> col_idx, std::vector<real_t> values)
    : rows_(rows),
      cols_(cols),
      row_ptr_(std::move(row_ptr)),
      col_idx_(std::move(col_idx)),
      values_(std::move(values)) {
  validate();
}

void CsrMatrix::validate() const {
  MCMI_CHECK(rows_ >= 0 && cols_ >= 0, "negative dimensions");
  MCMI_CHECK(static_cast<index_t>(row_ptr_.size()) == rows_ + 1,
             "row_ptr size " << row_ptr_.size() << " != rows+1 " << rows_ + 1);
  MCMI_CHECK(col_idx_.size() == values_.size(),
             "col_idx/values size mismatch");
  MCMI_CHECK(row_ptr_.front() == 0, "row_ptr must start at 0");
  MCMI_CHECK(row_ptr_.back() == static_cast<index_t>(values_.size()),
             "row_ptr must end at nnz");
  for (index_t i = 0; i < rows_; ++i) {
    MCMI_CHECK(row_ptr_[i] <= row_ptr_[i + 1], "row_ptr not monotone at row "
                                                   << i);
    for (index_t k = row_ptr_[i]; k < row_ptr_[i + 1]; ++k) {
      MCMI_CHECK(col_idx_[k] >= 0 && col_idx_[k] < cols_,
                 "column " << col_idx_[k] << " out of range in row " << i);
      MCMI_CHECK(k == row_ptr_[i] || col_idx_[k - 1] < col_idx_[k],
                 "columns not strictly increasing in row " << i);
    }
  }
}

CsrMatrix CsrMatrix::identity(index_t n) {
  std::vector<index_t> row_ptr(n + 1);
  std::vector<index_t> col_idx(n);
  std::vector<real_t> values(n, 1.0);
  for (index_t i = 0; i <= n; ++i) row_ptr[i] = i;
  for (index_t i = 0; i < n; ++i) col_idx[i] = i;
  return CsrMatrix(n, n, std::move(row_ptr), std::move(col_idx),
                   std::move(values));
}

CsrMatrix CsrMatrix::diagonal(const std::vector<real_t>& d) {
  const index_t n = static_cast<index_t>(d.size());
  std::vector<index_t> row_ptr(n + 1);
  std::vector<index_t> col_idx(n);
  for (index_t i = 0; i <= n; ++i) row_ptr[i] = i;
  for (index_t i = 0; i < n; ++i) col_idx[i] = i;
  return CsrMatrix(n, n, std::move(row_ptr), std::move(col_idx), d);
}

real_t CsrMatrix::fill() const {
  if (rows_ == 0 || cols_ == 0) return 0.0;
  return static_cast<real_t>(nnz()) /
         (static_cast<real_t>(rows_) * static_cast<real_t>(cols_));
}

real_t CsrMatrix::at(index_t i, index_t j) const {
  MCMI_CHECK(i >= 0 && i < rows_ && j >= 0 && j < cols_,
             "(" << i << "," << j << ") outside matrix");
  const auto begin = col_idx_.begin() + row_ptr_[i];
  const auto end = col_idx_.begin() + row_ptr_[i + 1];
  const auto it = std::lower_bound(begin, end, j);
  if (it != end && *it == j) {
    return values_[static_cast<std::size_t>(it - col_idx_.begin())];
  }
  return 0.0;
}

const SpmvPlan& CsrMatrix::spmv_plan() const {
  std::shared_ptr<const SpmvPlan> p = std::atomic_load(&plan_);
  if (!p) {
    auto built = std::make_shared<const SpmvPlan>(
        SpmvPlan::build(rows_, cols_, row_ptr_, col_idx_));
    std::shared_ptr<const SpmvPlan> expected;
    // First publisher wins; a loser adopts the winner's plan, so the member
    // is never replaced and returned references stay valid for the life of
    // the matrix.
    if (std::atomic_compare_exchange_strong(&plan_, &expected,
                                            std::shared_ptr<const SpmvPlan>(
                                                built))) {
      p = built;
    } else {
      p = expected;
    }
  }
  return *p;
}

void CsrMatrix::set_plan_backend(PlanBackend backend,
                                 ShardLayout layout) const {
  if (backend == PlanBackend::kSingle && layout.empty()) {
    // Back to the default path: the lazily cached single plan serves every
    // product again (no execution object in the way).
    std::atomic_store(&exec_, std::shared_ptr<const PlanExecution>());
    return;
  }
  std::shared_ptr<const PlanExecution> built =
      PlanBackendRegistry::instance().create(backend, rows_, cols_, row_ptr_,
                                             col_idx_, layout);
  std::atomic_store(&exec_, std::move(built));
}

PlanBackend CsrMatrix::plan_backend() const {
  const std::shared_ptr<const PlanExecution> exec = std::atomic_load(&exec_);
  return exec ? exec->backend() : PlanBackend::kSingle;
}

void CsrMatrix::multiply(const std::vector<real_t>& x,
                         std::vector<real_t>& y) const {
  MCMI_CHECK(static_cast<index_t>(x.size()) == cols_,
             "x size " << x.size() << " != cols " << cols_);
  y.resize(static_cast<std::size_t>(rows_));  // every y[i] is written
  if (const auto exec = std::atomic_load(&exec_)) {
    exec->multiply(row_ptr_.data(), col_idx_.data(), values_.data(), x.data(),
                   y.data());
    return;
  }
  spmv_plan().multiply(row_ptr_.data(), col_idx_.data(), values_.data(),
                       x.data(), y.data());
}

std::vector<real_t> CsrMatrix::multiply(const std::vector<real_t>& x) const {
  std::vector<real_t> y;
  multiply(x, y);
  return y;
}

real_t CsrMatrix::multiply_dot(const std::vector<real_t>& x,
                               std::vector<real_t>& y) const {
  return multiply_dot(x, y, x);
}

real_t CsrMatrix::multiply_dot(const std::vector<real_t>& x,
                               std::vector<real_t>& y,
                               const std::vector<real_t>& w) const {
  MCMI_CHECK(static_cast<index_t>(x.size()) == cols_,
             "x size " << x.size() << " != cols " << cols_);
  MCMI_CHECK(static_cast<index_t>(w.size()) == rows_,
             "w size " << w.size() << " != rows " << rows_);
  y.resize(static_cast<std::size_t>(rows_));
  if (const auto exec = std::atomic_load(&exec_)) {
    return exec->multiply_dot(row_ptr_.data(), col_idx_.data(),
                              values_.data(), x.data(), w.data(), y.data());
  }
  return spmv_plan().multiply_dot(row_ptr_.data(), col_idx_.data(),
                                  values_.data(), x.data(), w.data(),
                                  y.data());
}

void CsrMatrix::multiply_dot_norm2(const std::vector<real_t>& x,
                                   std::vector<real_t>& y,
                                   const std::vector<real_t>& w,
                                   real_t& dot_wy, real_t& norm_sq_y) const {
  MCMI_CHECK(static_cast<index_t>(x.size()) == cols_,
             "x size " << x.size() << " != cols " << cols_);
  MCMI_CHECK(static_cast<index_t>(w.size()) == rows_,
             "w size " << w.size() << " != rows " << rows_);
  y.resize(static_cast<std::size_t>(rows_));
  if (const auto exec = std::atomic_load(&exec_)) {
    exec->multiply_dot_norm2(row_ptr_.data(), col_idx_.data(),
                             values_.data(), x.data(), w.data(), y.data(),
                             dot_wy, norm_sq_y);
    return;
  }
  spmv_plan().multiply_dot_norm2(row_ptr_.data(), col_idx_.data(),
                                 values_.data(), x.data(), w.data(), y.data(),
                                 dot_wy, norm_sq_y);
}

void CsrMatrix::multiply_dot_norm2_xpby(const std::vector<real_t>& x,
                                        std::vector<real_t>& z,
                                        const std::vector<real_t>& w,
                                        real_t rho_prev,
                                        std::vector<real_t>& q,
                                        real_t& dot_wz,
                                        real_t& norm_sq_z) const {
  MCMI_CHECK(static_cast<index_t>(q.size()) == rows_,
             "q size " << q.size() << " != rows " << rows_);
  if (std::atomic_load(&exec_)) {
    // Backend executions expose only the product entries; compose the
    // recurrence from them.  Bit-identical to the fused path: the update
    // expression is elementwise and the reduction rides the backend's own
    // fixed-order tree.
    multiply_dot_norm2(x, z, w, dot_wz, norm_sq_z);
    xpby(z, dot_wz / rho_prev, q);
    return;
  }
  MCMI_CHECK(static_cast<index_t>(x.size()) == cols_,
             "x size " << x.size() << " != cols " << cols_);
  MCMI_CHECK(static_cast<index_t>(w.size()) == rows_,
             "w size " << w.size() << " != rows " << rows_);
  z.resize(static_cast<std::size_t>(rows_));
  spmv_plan().multiply_dot_norm2_xpby(row_ptr_.data(), col_idx_.data(),
                                      values_.data(), x.data(), w.data(),
                                      z.data(), rho_prev, q.data(), dot_wz,
                                      norm_sq_z);
}

real_t CsrMatrix::multiply_dot_axpy2(const std::vector<real_t>& q, real_t rho,
                                     std::vector<real_t>& aq,
                                     std::vector<real_t>& x,
                                     std::vector<real_t>& r) const {
  MCMI_CHECK(static_cast<index_t>(x.size()) == rows_,
             "x size " << x.size() << " != rows " << rows_);
  MCMI_CHECK(static_cast<index_t>(r.size()) == rows_,
             "r size " << r.size() << " != rows " << rows_);
  if (std::atomic_load(&exec_)) {
    std::vector<real_t>& yv = aq;
    const real_t qaq = multiply_dot(q, yv);
    if (std::isfinite(qaq) && qaq > 0.0) {
      axpy2(rho / qaq, q, yv, x, r);
    }
    return qaq;
  }
  MCMI_CHECK(static_cast<index_t>(q.size()) == cols_,
             "q size " << q.size() << " != cols " << cols_);
  aq.resize(static_cast<std::size_t>(rows_));
  return spmv_plan().multiply_dot_axpy2(row_ptr_.data(), col_idx_.data(),
                                        values_.data(), q.data(), rho,
                                        aq.data(), x.data(), r.data());
}

std::shared_ptr<const CsrMatrix::TransposeGather>
CsrMatrix::transpose_gather() const {
  std::shared_ptr<const TransposeGather> g = std::atomic_load(&tgather_);
  if (g) return g;
  // Build the column-major gather: same counting pass as transpose(), but
  // recording source positions instead of copying values, so the gather
  // tracks in-place value edits.  A concurrent first call may build twice;
  // the compare-exchange below keeps the first published structure.
  auto built = std::make_shared<TransposeGather>();
  built->col_ptr.assign(static_cast<std::size_t>(cols_) + 1, 0);
  built->src_row.resize(values_.size());
  built->src_pos.resize(values_.size());
  for (index_t c : col_idx_) built->col_ptr[c + 1]++;
  for (index_t j = 0; j < cols_; ++j) built->col_ptr[j + 1] += built->col_ptr[j];
  std::vector<index_t> next(built->col_ptr.begin(), built->col_ptr.end() - 1);
  for (index_t i = 0; i < rows_; ++i) {
    for (index_t k = row_ptr_[i]; k < row_ptr_[i + 1]; ++k) {
      const index_t pos = next[col_idx_[k]]++;
      built->src_row[pos] = i;
      built->src_pos[pos] = k;
    }
  }
  built->plan = SpmvPlan::build(cols_, rows_, built->col_ptr, built->src_row);
  g = built;
  std::shared_ptr<const TransposeGather> expected;
  if (!std::atomic_compare_exchange_strong(&tgather_, &expected, g)) {
    g = expected;
  }
  return g;
}

void CsrMatrix::multiply_transpose(const std::vector<real_t>& x,
                                   std::vector<real_t>& y) const {
  MCMI_CHECK(static_cast<index_t>(x.size()) == rows_,
             "x size " << x.size() << " != rows " << rows_);
  const std::shared_ptr<const TransposeGather> g = transpose_gather();
  y.resize(static_cast<std::size_t>(cols_));
  // Gather over the cached transpose structure: each column's sum runs in
  // ascending source-row order, so the result is bit-identical to the
  // historical serial scatter at any thread count.
  g->plan.multiply_gather(g->col_ptr.data(), g->src_row.data(),
                          g->src_pos.data(), values_.data(), x.data(),
                          y.data());
}

CsrMatrix CsrMatrix::transpose() const {
  std::vector<index_t> row_ptr(cols_ + 1, 0);
  std::vector<index_t> col_idx(values_.size());
  std::vector<real_t> values(values_.size());
  for (index_t c : col_idx_) row_ptr[c + 1]++;
  for (index_t j = 0; j < cols_; ++j) row_ptr[j + 1] += row_ptr[j];
  std::vector<index_t> next(row_ptr.begin(), row_ptr.end() - 1);
  for (index_t i = 0; i < rows_; ++i) {
    for (index_t k = row_ptr_[i]; k < row_ptr_[i + 1]; ++k) {
      const index_t pos = next[col_idx_[k]]++;
      col_idx[pos] = i;
      values[pos] = values_[k];
    }
  }
  return CsrMatrix(cols_, rows_, std::move(row_ptr), std::move(col_idx),
                   std::move(values));
}

CsrMatrix CsrMatrix::multiply(const CsrMatrix& other) const {
  MCMI_CHECK(cols_ == other.rows_, "inner dimension mismatch: "
                                       << cols_ << " vs " << other.rows_);
  CooMatrix out(rows_, other.cols_);
  std::vector<real_t> accum(static_cast<std::size_t>(other.cols_), 0.0);
  std::vector<index_t> marked;
  for (index_t i = 0; i < rows_; ++i) {
    marked.clear();
    for (index_t k = row_ptr_[i]; k < row_ptr_[i + 1]; ++k) {
      const index_t j = col_idx_[k];
      const real_t aij = values_[k];
      for (index_t l = other.row_ptr_[j]; l < other.row_ptr_[j + 1]; ++l) {
        const index_t c = other.col_idx_[l];
        if (accum[c] == 0.0) marked.push_back(c);
        accum[c] += aij * other.values_[l];
      }
    }
    for (index_t c : marked) {
      if (accum[c] != 0.0) out.add(i, c, accum[c]);
      accum[c] = 0.0;
    }
  }
  return from_coo(std::move(out));
}

CsrMatrix CsrMatrix::add(real_t alpha, const CsrMatrix& a, real_t beta,
                         const CsrMatrix& b) {
  MCMI_CHECK(a.rows_ == b.rows_ && a.cols_ == b.cols_,
             "dimension mismatch in add");
  CooMatrix out(a.rows_, a.cols_);
  for (index_t i = 0; i < a.rows_; ++i) {
    for (index_t k = a.row_ptr_[i]; k < a.row_ptr_[i + 1]; ++k) {
      out.add(i, a.col_idx_[k], alpha * a.values_[k]);
    }
    for (index_t k = b.row_ptr_[i]; k < b.row_ptr_[i + 1]; ++k) {
      out.add(i, b.col_idx_[k], beta * b.values_[k]);
    }
  }
  return from_coo(std::move(out));
}

std::vector<real_t> CsrMatrix::diag() const {
  const index_t n = std::min(rows_, cols_);
  std::vector<real_t> d(static_cast<std::size_t>(n), 0.0);
  for (index_t i = 0; i < n; ++i) d[i] = at(i, i);
  return d;
}

CsrMatrix CsrMatrix::add_diagonal(real_t alpha,
                                  const std::vector<real_t>& d) const {
  MCMI_CHECK(static_cast<index_t>(d.size()) == std::min(rows_, cols_),
             "diagonal length mismatch");
  CooMatrix out(rows_, cols_);
  for (index_t i = 0; i < rows_; ++i) {
    for (index_t k = row_ptr_[i]; k < row_ptr_[i + 1]; ++k) {
      out.add(i, col_idx_[k], values_[k]);
    }
  }
  for (index_t i = 0; i < static_cast<index_t>(d.size()); ++i) {
    if (alpha * d[i] != 0.0) out.add(i, i, alpha * d[i]);
  }
  return from_coo(std::move(out));
}

void CsrMatrix::scale_rows(const std::vector<real_t>& s) {
  MCMI_CHECK(static_cast<index_t>(s.size()) == rows_,
             "scale vector length mismatch");
  for (index_t i = 0; i < rows_; ++i) {
    for (index_t k = row_ptr_[i]; k < row_ptr_[i + 1]; ++k) {
      values_[k] *= s[i];
    }
  }
}

real_t CsrMatrix::norm_inf() const {
  real_t best = 0.0;
  for (index_t i = 0; i < rows_; ++i) {
    real_t sum = 0.0;
    for (index_t k = row_ptr_[i]; k < row_ptr_[i + 1]; ++k) {
      sum += std::abs(values_[k]);
    }
    best = std::max(best, sum);
  }
  return best;
}

real_t CsrMatrix::norm_one() const {
  std::vector<real_t> col_sum(static_cast<std::size_t>(cols_), 0.0);
  for (std::size_t k = 0; k < values_.size(); ++k) {
    col_sum[col_idx_[k]] += std::abs(values_[k]);
  }
  real_t best = 0.0;
  for (real_t s : col_sum) best = std::max(best, s);
  return best;
}

real_t CsrMatrix::norm_frobenius() const {
  real_t sum = 0.0;
  for (real_t v : values_) sum += v * v;
  return std::sqrt(sum);
}

real_t CsrMatrix::symmetry_score() const {
  if (rows_ != cols_) return 0.0;
  const real_t fro = norm_frobenius();
  if (fro == 0.0) return 1.0;
  const CsrMatrix diff = add(1.0, *this, -1.0, transpose());
  return std::max(0.0, 1.0 - diff.norm_frobenius() / (2.0 * fro));
}

bool CsrMatrix::is_symmetric(real_t tol) const {
  if (rows_ != cols_) return false;
  const CsrMatrix t = transpose();
  if (t.col_idx_ != col_idx_ || t.row_ptr_ != row_ptr_) {
    // Pattern differs; fall back to value comparison through at().
    for (index_t i = 0; i < rows_; ++i) {
      for (index_t k = row_ptr_[i]; k < row_ptr_[i + 1]; ++k) {
        if (std::abs(values_[k] - at(col_idx_[k], i)) > tol) return false;
      }
    }
    return true;
  }
  for (std::size_t k = 0; k < values_.size(); ++k) {
    if (std::abs(values_[k] - t.values_[k]) > tol) return false;
  }
  return true;
}

std::vector<real_t> CsrMatrix::to_dense() const {
  std::vector<real_t> dense(
      static_cast<std::size_t>(rows_) * static_cast<std::size_t>(cols_), 0.0);
  for (index_t i = 0; i < rows_; ++i) {
    for (index_t k = row_ptr_[i]; k < row_ptr_[i + 1]; ++k) {
      dense[static_cast<std::size_t>(i) * cols_ + col_idx_[k]] = values_[k];
    }
  }
  return dense;
}

CsrMatrix CsrMatrix::dropped(real_t threshold) const {
  CooMatrix out(rows_, cols_);
  for (index_t i = 0; i < rows_; ++i) {
    for (index_t k = row_ptr_[i]; k < row_ptr_[i + 1]; ++k) {
      if (col_idx_[k] == i || std::abs(values_[k]) > threshold) {
        out.add(i, col_idx_[k], values_[k]);
      }
    }
  }
  return from_coo(std::move(out));
}

u64 CsrMatrix::content_fingerprint() const {
  Hash64 h(0x63737266ULL);  // "csrf"
  h.update(static_cast<u64>(rows_));
  h.update(static_cast<u64>(cols_));
  h.update_array(row_ptr_.data(), row_ptr_.size());
  h.update_array(col_idx_.data(), col_idx_.size());
  h.update_array(values_.data(), values_.size());
  return h.digest();
}

bool CsrMatrix::same_content(const CsrMatrix& other) const {
  if (rows_ != other.rows_ || cols_ != other.cols_ ||
      row_ptr_.size() != other.row_ptr_.size() ||
      col_idx_.size() != other.col_idx_.size() ||
      values_.size() != other.values_.size()) {
    return false;
  }
  const auto bytes_equal = [](const void* a, const void* b, std::size_t n) {
    return n == 0 || std::memcmp(a, b, n) == 0;
  };
  return bytes_equal(row_ptr_.data(), other.row_ptr_.data(),
                     row_ptr_.size() * sizeof(index_t)) &&
         bytes_equal(col_idx_.data(), other.col_idx_.data(),
                     col_idx_.size() * sizeof(index_t)) &&
         bytes_equal(values_.data(), other.values_.data(),
                     values_.size() * sizeof(real_t));
}

std::string CsrMatrix::summary() const {
  std::ostringstream os;
  os << "csr " << rows_ << "x" << cols_ << " nnz=" << nnz()
     << " fill=" << fill();
  return os.str();
}

}  // namespace mcmi
