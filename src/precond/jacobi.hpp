#pragma once
// Jacobi (diagonal) preconditioner — the cheapest classical baseline.

#include "precond/preconditioner.hpp"
#include "sparse/csr.hpp"

namespace mcmi {

/// P = diag(A)^-1.
class JacobiPreconditioner final : public Preconditioner {
 public:
  explicit JacobiPreconditioner(const CsrMatrix& a);

  using Preconditioner::apply;
  void apply(const std::vector<real_t>& x,
             std::vector<real_t>& y) const override;
  [[nodiscard]] std::string name() const override { return "jacobi"; }

 private:
  std::vector<real_t> inv_diag_;
};

}  // namespace mcmi
