#include "precond/ilu0.hpp"

#include <algorithm>

#include "core/error.hpp"

namespace mcmi {

Ilu0Preconditioner::Ilu0Preconditioner(const CsrMatrix& a) : factors_(a) {
  MCMI_CHECK(a.rows() == a.cols(), "ILU(0) needs a square matrix");
  const index_t n = a.rows();
  const auto& row_ptr = factors_.row_ptr();
  const auto& col_idx = factors_.col_idx();
  auto& values = factors_.values();

  diag_pos_.assign(static_cast<std::size_t>(n), -1);
  for (index_t i = 0; i < n; ++i) {
    for (index_t k = row_ptr[i]; k < row_ptr[i + 1]; ++k) {
      if (col_idx[k] == i) diag_pos_[i] = k;
    }
    MCMI_CHECK(diag_pos_[i] >= 0,
               "ILU(0) breakdown: missing diagonal in row " << i);
  }

  // IKJ-variant incomplete factorisation restricted to the pattern of A.
  std::vector<index_t> pos_in_row(static_cast<std::size_t>(n), -1);
  for (index_t i = 0; i < n; ++i) {
    // Mark the columns present in row i for O(1) pattern lookups.
    for (index_t k = row_ptr[i]; k < row_ptr[i + 1]; ++k) {
      pos_in_row[col_idx[k]] = k;
    }
    for (index_t k = row_ptr[i]; k < row_ptr[i + 1]; ++k) {
      const index_t j = col_idx[k];
      if (j >= i) break;  // only eliminate with rows above the diagonal
      const real_t ujj = values[diag_pos_[j]];
      MCMI_CHECK(ujj != 0.0, "ILU(0) breakdown: zero pivot at row " << j);
      const real_t lij = values[k] / ujj;
      values[k] = lij;
      // Subtract lij * U(j, j+1:) on the pattern of row i.
      for (index_t m = diag_pos_[j] + 1; m < row_ptr[j + 1]; ++m) {
        const index_t c = col_idx[m];
        const index_t p = pos_in_row[c];
        if (p >= 0) values[p] -= lij * values[m];
      }
    }
    MCMI_CHECK(values[diag_pos_[i]] != 0.0,
               "ILU(0) breakdown: zero pivot at row " << i);
    for (index_t k = row_ptr[i]; k < row_ptr[i + 1]; ++k) {
      pos_in_row[col_idx[k]] = -1;
    }
  }
}

void Ilu0Preconditioner::apply(const std::vector<real_t>& x,
                               std::vector<real_t>& y) const {
  const index_t n = factors_.rows();
  MCMI_CHECK(static_cast<index_t>(x.size()) == n, "size mismatch in ILU apply");
  const auto& row_ptr = factors_.row_ptr();
  const auto& col_idx = factors_.col_idx();
  const auto& values = factors_.values();

  // Forward solve L z = x (unit diagonal).
  y = x;
  for (index_t i = 0; i < n; ++i) {
    real_t sum = y[i];
    for (index_t k = row_ptr[i]; k < diag_pos_[i]; ++k) {
      sum -= values[k] * y[col_idx[k]];
    }
    y[i] = sum;
  }
  // Backward solve U y = z.
  for (index_t i = n - 1; i >= 0; --i) {
    real_t sum = y[i];
    for (index_t k = diag_pos_[i] + 1; k < row_ptr[i + 1]; ++k) {
      sum -= values[k] * y[col_idx[k]];
    }
    y[i] = sum / values[diag_pos_[i]];
  }
}

}  // namespace mcmi
