#pragma once
// ILU(0) — incomplete LU factorisation with zero fill-in.
//
// The classical algebraic baseline the paper contrasts with (§2): powerful,
// but serial in its triangular solves and liable to break down on indefinite
// matrices — which is exactly the niche MCMC-based inversion targets.

#include "precond/preconditioner.hpp"
#include "sparse/csr.hpp"

namespace mcmi {

/// P x = U^-1 L^-1 x with L, U restricted to the sparsity pattern of A.
class Ilu0Preconditioner final : public Preconditioner {
 public:
  /// Factorise.  Throws mcmi::Error on structural/numerical breakdown
  /// (zero pivot), mirroring ILU's documented failure mode.
  explicit Ilu0Preconditioner(const CsrMatrix& a);

  using Preconditioner::apply;
  void apply(const std::vector<real_t>& x,
             std::vector<real_t>& y) const override;
  [[nodiscard]] std::string name() const override { return "ilu0"; }

 private:
  // Combined LU factors in the pattern of A: strictly-lower entries hold L
  // (unit diagonal implied), diagonal + upper hold U.
  CsrMatrix factors_;
  std::vector<index_t> diag_pos_;  ///< position of the diagonal in each row
};

}  // namespace mcmi
