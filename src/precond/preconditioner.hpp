#pragma once
// Preconditioner interface.
//
// A preconditioner is an operator P ~ A^-1 applied from the left:
// the Krylov solvers iterate on P A x = P b (§3 of the paper).

#include <string>
#include <vector>

#include "core/types.hpp"
#include "sparse/vector_ops.hpp"

namespace mcmi {

/// Abstract left preconditioner: y = P x with P ~ A^-1.
class Preconditioner {
 public:
  virtual ~Preconditioner() = default;

  /// Apply the preconditioner: y = P x.  `y` is resized as needed.
  virtual void apply(const std::vector<real_t>& x,
                     std::vector<real_t>& y) const = 0;

  /// Fused apply + inner product: y = P x, returning <w, y>.  The default
  /// composes apply() with a dot pass; implementations whose apply is one
  /// SpMV override it so the dot rides the product pass.
  [[nodiscard]] virtual real_t apply_dot(const std::vector<real_t>& x,
                                         std::vector<real_t>& y,
                                         const std::vector<real_t>& w) const {
    apply(x, y);
    return dot(w, y);
  }

  /// Fused apply + the Krylov convergence pair: y = P x with <w, y> and
  /// <y, y> from one pass (CG calls it with w = r for rho and ||z||^2,
  /// BiCGStab with w = s for omega).
  virtual void apply_dot_norm2(const std::vector<real_t>& x,
                               std::vector<real_t>& y,
                               const std::vector<real_t>& w, real_t& dot_wy,
                               real_t& norm_sq_y) const {
    apply(x, y);
    dot_dot(y, w, y, dot_wy, norm_sq_y);
  }

  /// Fused apply + CG search-direction recurrence: z = P x with <w, z> and
  /// ||z||^2 from the product pass, then beta = <w, z> / rho_prev and
  /// q = z + beta * q.  CG calls it with x = w = r so the whole
  /// preconditioner tail of an iteration — apply, rho, stagnation norm and
  /// the q update — is one operator visit.  The default composes
  /// apply_dot_norm2() with the vector_ops xpby; one-SpMV implementations
  /// override it so the recurrence shares the product's parallel region.
  /// Both forms are bit-identical (the update is elementwise; only the
  /// reduction has an order and it is the apply_dot_norm2 tree either way).
  virtual void apply_xpby_dot(const std::vector<real_t>& x,
                              std::vector<real_t>& z,
                              const std::vector<real_t>& w, real_t rho_prev,
                              std::vector<real_t>& q, real_t& dot_wz,
                              real_t& norm_sq_z) const {
    apply_dot_norm2(x, z, w, dot_wz, norm_sq_z);
    xpby(z, dot_wz / rho_prev, q);
  }

  /// Descriptive name for logging/tables.
  [[nodiscard]] virtual std::string name() const = 0;

  /// Convenience overload returning a fresh vector.
  [[nodiscard]] std::vector<real_t> apply(const std::vector<real_t>& x) const {
    std::vector<real_t> y;
    apply(x, y);
    return y;
  }
};

/// The identity "preconditioner" (P = I): the unpreconditioned baseline that
/// the performance metric y(A, x_M) divides by.
class IdentityPreconditioner final : public Preconditioner {
 public:
  using Preconditioner::apply;
  void apply(const std::vector<real_t>& x,
             std::vector<real_t>& y) const override {
    y = x;
  }
  [[nodiscard]] std::string name() const override { return "identity"; }
};

}  // namespace mcmi
