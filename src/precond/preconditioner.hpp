#pragma once
// Preconditioner interface.
//
// A preconditioner is an operator P ~ A^-1 applied from the left:
// the Krylov solvers iterate on P A x = P b (§3 of the paper).

#include <string>
#include <vector>

#include "core/types.hpp"

namespace mcmi {

/// Abstract left preconditioner: y = P x with P ~ A^-1.
class Preconditioner {
 public:
  virtual ~Preconditioner() = default;

  /// Apply the preconditioner: y = P x.  `y` is resized as needed.
  virtual void apply(const std::vector<real_t>& x,
                     std::vector<real_t>& y) const = 0;

  /// Descriptive name for logging/tables.
  [[nodiscard]] virtual std::string name() const = 0;

  /// Convenience overload returning a fresh vector.
  [[nodiscard]] std::vector<real_t> apply(const std::vector<real_t>& x) const {
    std::vector<real_t> y;
    apply(x, y);
    return y;
  }
};

/// The identity "preconditioner" (P = I): the unpreconditioned baseline that
/// the performance metric y(A, x_M) divides by.
class IdentityPreconditioner final : public Preconditioner {
 public:
  using Preconditioner::apply;
  void apply(const std::vector<real_t>& x,
             std::vector<real_t>& y) const override {
    y = x;
  }
  [[nodiscard]] std::string name() const override { return "identity"; }
};

}  // namespace mcmi
