#pragma once
// Explicit sparse approximate-inverse preconditioner.
//
// The MCMC matrix-inversion engine produces an explicit sparse matrix
// P ~ A^-1; applying it is a single SpMV, the property that makes
// MCMC preconditioning embarrassingly parallel (§2).

#include <string>
#include <utility>

#include "precond/preconditioner.hpp"
#include "sparse/csr.hpp"

namespace mcmi {

/// Wraps an explicit sparse P ~ A^-1; apply() is one SpMV.
class SparseApproximateInverse final : public Preconditioner {
 public:
  SparseApproximateInverse(CsrMatrix p, std::string name)
      : p_(std::move(p)), name_(std::move(name)) {}

  using Preconditioner::apply;
  void apply(const std::vector<real_t>& x,
             std::vector<real_t>& y) const override {
    p_.multiply(x, y);
  }

  // The apply is one SpMV, so the Krylov reductions ride P's execution plan
  // instead of costing separate vector sweeps.
  [[nodiscard]] real_t apply_dot(const std::vector<real_t>& x,
                                 std::vector<real_t>& y,
                                 const std::vector<real_t>& w) const override {
    return p_.multiply_dot(x, y, w);
  }

  void apply_dot_norm2(const std::vector<real_t>& x, std::vector<real_t>& y,
                       const std::vector<real_t>& w, real_t& dot_wy,
                       real_t& norm_sq_y) const override {
    p_.multiply_dot_norm2(x, y, w, dot_wy, norm_sq_y);
  }

  void apply_xpby_dot(const std::vector<real_t>& x, std::vector<real_t>& z,
                      const std::vector<real_t>& w, real_t rho_prev,
                      std::vector<real_t>& q, real_t& dot_wz,
                      real_t& norm_sq_z) const override {
    p_.multiply_dot_norm2_xpby(x, z, w, rho_prev, q, dot_wz, norm_sq_z);
  }

  [[nodiscard]] std::string name() const override { return name_; }

  /// The explicit approximate inverse (inspection / spectra in tests).
  [[nodiscard]] const CsrMatrix& matrix() const { return p_; }

  /// Route P's own products through `backend` (see
  /// CsrMatrix::set_plan_backend): the sharded serving path sets this once
  /// at swap-in so warm solves shard the preconditioner apply alongside
  /// the operator.  Const for the same reason the CsrMatrix call is —
  /// execution policy, not content.
  void set_plan_backend(PlanBackend backend, ShardLayout layout = {}) const {
    p_.set_plan_backend(backend, std::move(layout));
  }

 private:
  CsrMatrix p_;
  std::string name_;
};

}  // namespace mcmi
