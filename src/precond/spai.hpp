#pragma once
// SPAI — sparse approximate inverse by per-row residual minimisation
// (Grote & Huckle, 1997).
//
// §2 positions SPAI as the deterministic cousin of MCMC matrix inversion:
// it also builds an explicit sparse stand-in for A^-1 applied via SpMV, and
// also parallelises embarrassingly (each row is an independent least-squares
// problem).  Implemented here as the deterministic baseline to compare the
// stochastic sampler against: row i of P minimises ||A^T p_i - e_i||_2 over
// the sparsity pattern of A^k's row (pattern level k in {1, 2}).

#include "precond/preconditioner.hpp"
#include "sparse/csr.hpp"

namespace mcmi {

struct SpaiOptions {
  index_t pattern_level = 1;  ///< 1 = pattern of A, 2 = pattern of A^2
  index_t max_row_nnz = 64;   ///< cap on unknowns per row least-squares
};

/// Left SPAI preconditioner: P ~ A^-1 with P A ~ I row-wise.
class SpaiPreconditioner final : public Preconditioner {
 public:
  explicit SpaiPreconditioner(const CsrMatrix& a, SpaiOptions options = {});

  using Preconditioner::apply;
  void apply(const std::vector<real_t>& x,
             std::vector<real_t>& y) const override;
  [[nodiscard]] std::string name() const override { return "spai"; }

  /// The explicit approximate inverse.
  [[nodiscard]] const CsrMatrix& matrix() const { return p_; }

 private:
  CsrMatrix p_;
};

}  // namespace mcmi
