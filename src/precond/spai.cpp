#include "precond/spai.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "core/error.hpp"
#include "dense/lu.hpp"
#include "dense/matrix.hpp"

namespace mcmi {

namespace {

/// Sparsity pattern for row i: columns of A's row i (level 1), optionally
/// expanded one more hop (level 2), capped at `cap` by |a_ij| magnitude.
std::vector<index_t> row_pattern(const CsrMatrix& a, index_t i, index_t level,
                                 index_t cap) {
  const auto& row_ptr = a.row_ptr();
  const auto& col_idx = a.col_idx();
  const auto& values = a.values();

  std::vector<index_t> pattern(col_idx.begin() + row_ptr[i],
                               col_idx.begin() + row_ptr[i + 1]);
  if (level >= 2) {
    std::vector<index_t> expanded = pattern;
    for (index_t j : pattern) {
      expanded.insert(expanded.end(), col_idx.begin() + row_ptr[j],
                      col_idx.begin() + row_ptr[j + 1]);
    }
    std::sort(expanded.begin(), expanded.end());
    expanded.erase(std::unique(expanded.begin(), expanded.end()),
                   expanded.end());
    pattern = std::move(expanded);
  }
  if (static_cast<index_t>(pattern.size()) > cap) {
    // Keep the diagonal plus the largest |a_ij| couplings.
    std::vector<std::pair<real_t, index_t>> weighted;
    for (index_t j : pattern) {
      real_t w = (j == i) ? std::numeric_limits<real_t>::infinity() : 0.0;
      for (index_t k = row_ptr[i]; k < row_ptr[i + 1]; ++k) {
        if (col_idx[k] == j) w = std::abs(values[k]);
      }
      weighted.emplace_back(w, j);
    }
    std::partial_sort(weighted.begin(), weighted.begin() + cap,
                      weighted.end(), std::greater<>());
    pattern.clear();
    for (index_t c = 0; c < cap; ++c) pattern.push_back(weighted[c].second);
    std::sort(pattern.begin(), pattern.end());
  }
  return pattern;
}

}  // namespace

SpaiPreconditioner::SpaiPreconditioner(const CsrMatrix& a,
                                       SpaiOptions options) {
  MCMI_CHECK(a.rows() == a.cols(), "SPAI needs a square matrix");
  MCMI_CHECK(options.pattern_level >= 1 && options.pattern_level <= 2,
             "pattern level must be 1 or 2");
  const index_t n = a.rows();
  const auto& row_ptr = a.row_ptr();
  const auto& col_idx = a.col_idx();
  const auto& values = a.values();

  std::vector<std::vector<index_t>> cols(static_cast<std::size_t>(n));
  std::vector<std::vector<real_t>> vals(static_cast<std::size_t>(n));

#pragma omp parallel for schedule(dynamic, 16)
  for (index_t i = 0; i < n; ++i) {
    // Unknown support J and constrained rows I:
    //   row i of P minimises || sum_{j in J} p_j A_j,: - e_i ||_2,
    // so I is the union of the patterns of the rows j in J.
    const std::vector<index_t> support =
        row_pattern(a, i, options.pattern_level, options.max_row_nnz);
    std::vector<index_t> constrained;
    for (index_t j : support) {
      constrained.insert(constrained.end(), col_idx.begin() + row_ptr[j],
                         col_idx.begin() + row_ptr[j + 1]);
    }
    std::sort(constrained.begin(), constrained.end());
    constrained.erase(std::unique(constrained.begin(), constrained.end()),
                      constrained.end());

    const index_t m = static_cast<index_t>(constrained.size());
    const index_t w = static_cast<index_t>(support.size());
    // Local dense system M (m x w): M[r][c] = A(support[c], constrained[r]).
    DenseMatrix local(m, w);
    for (index_t c = 0; c < w; ++c) {
      const index_t j = support[c];
      for (index_t k = row_ptr[j]; k < row_ptr[j + 1]; ++k) {
        const auto it = std::lower_bound(constrained.begin(),
                                         constrained.end(), col_idx[k]);
        local(static_cast<index_t>(it - constrained.begin()), c) = values[k];
      }
    }
    // Normal equations (M^T M) p = M^T e_i; the support is small so the
    // dense solve is cheap and well conditioned enough in practice.
    DenseMatrix gram(w, w);
    std::vector<real_t> rhs(static_cast<std::size_t>(w), 0.0);
    const auto it = std::lower_bound(constrained.begin(), constrained.end(),
                                     i);
    const index_t e_row = static_cast<index_t>(it - constrained.begin());
    for (index_t c1 = 0; c1 < w; ++c1) {
      for (index_t c2 = 0; c2 < w; ++c2) {
        real_t sum = 0.0;
        for (index_t r = 0; r < m; ++r) sum += local(r, c1) * local(r, c2);
        gram(c1, c2) = sum;
      }
      gram(c1, c1) += 1e-12;  // tiny ridge against rank deficiency
      rhs[c1] = local(e_row, c1);
    }
    const std::vector<real_t> p = dense_solve(gram, rhs);
    for (index_t c = 0; c < w; ++c) {
      if (p[c] != 0.0) {
        cols[i].push_back(support[c]);
        vals[i].push_back(p[c]);
      }
    }
  }

  std::vector<index_t> p_row_ptr(static_cast<std::size_t>(n) + 1, 0);
  for (index_t i = 0; i < n; ++i) {
    p_row_ptr[i + 1] = p_row_ptr[i] + static_cast<index_t>(cols[i].size());
  }
  std::vector<index_t> p_cols(static_cast<std::size_t>(p_row_ptr[n]));
  std::vector<real_t> p_vals(static_cast<std::size_t>(p_row_ptr[n]));
  for (index_t i = 0; i < n; ++i) {
    std::copy(cols[i].begin(), cols[i].end(),
              p_cols.begin() + p_row_ptr[i]);
    std::copy(vals[i].begin(), vals[i].end(),
              p_vals.begin() + p_row_ptr[i]);
  }
  p_ = CsrMatrix(n, n, std::move(p_row_ptr), std::move(p_cols),
                 std::move(p_vals));
}

void SpaiPreconditioner::apply(const std::vector<real_t>& x,
                               std::vector<real_t>& y) const {
  p_.multiply(x, y);
}

}  // namespace mcmi
