#include "precond/jacobi.hpp"

#include <cmath>

#include "core/error.hpp"

namespace mcmi {

JacobiPreconditioner::JacobiPreconditioner(const CsrMatrix& a) {
  MCMI_CHECK(a.rows() == a.cols(), "Jacobi needs a square matrix");
  inv_diag_ = a.diag();
  for (index_t i = 0; i < static_cast<index_t>(inv_diag_.size()); ++i) {
    MCMI_CHECK(inv_diag_[i] != 0.0, "zero diagonal at row " << i);
    inv_diag_[i] = 1.0 / inv_diag_[i];
  }
}

void JacobiPreconditioner::apply(const std::vector<real_t>& x,
                                 std::vector<real_t>& y) const {
  MCMI_CHECK(x.size() == inv_diag_.size(), "size mismatch in Jacobi apply");
  y.resize(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) y[i] = inv_diag_[i] * x[i];
}

}  // namespace mcmi
