#include "dense/matrix.hpp"

#include <cmath>

#include "sparse/csr.hpp"

namespace mcmi {

DenseMatrix DenseMatrix::identity(index_t n) {
  DenseMatrix m(n, n);
  for (index_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

DenseMatrix DenseMatrix::from_csr(const CsrMatrix& a) {
  DenseMatrix m(a.rows(), a.cols());
  m.data() = a.to_dense();
  return m;
}

DenseMatrix DenseMatrix::multiply(const DenseMatrix& other) const {
  MCMI_CHECK(cols_ == other.rows_, "dense multiply: inner mismatch");
  DenseMatrix out(rows_, other.cols_);
  for (index_t i = 0; i < rows_; ++i) {
    for (index_t k = 0; k < cols_; ++k) {
      const real_t aik = (*this)(i, k);
      if (aik == 0.0) continue;
      for (index_t j = 0; j < other.cols_; ++j) {
        out(i, j) += aik * other(k, j);
      }
    }
  }
  return out;
}

std::vector<real_t> DenseMatrix::multiply(const std::vector<real_t>& x) const {
  MCMI_CHECK(static_cast<index_t>(x.size()) == cols_,
             "dense matvec: size mismatch");
  std::vector<real_t> y(static_cast<std::size_t>(rows_), 0.0);
  for (index_t i = 0; i < rows_; ++i) {
    real_t sum = 0.0;
    for (index_t j = 0; j < cols_; ++j) sum += (*this)(i, j) * x[j];
    y[i] = sum;
  }
  return y;
}

DenseMatrix DenseMatrix::transpose() const {
  DenseMatrix out(cols_, rows_);
  for (index_t i = 0; i < rows_; ++i) {
    for (index_t j = 0; j < cols_; ++j) out(j, i) = (*this)(i, j);
  }
  return out;
}

real_t DenseMatrix::norm_frobenius() const {
  real_t sum = 0.0;
  for (real_t v : data_) sum += v * v;
  return std::sqrt(sum);
}

real_t DenseMatrix::max_abs_diff(const DenseMatrix& other) const {
  MCMI_CHECK(rows_ == other.rows_ && cols_ == other.cols_,
             "max_abs_diff: dimension mismatch");
  real_t best = 0.0;
  for (std::size_t i = 0; i < data_.size(); ++i) {
    best = std::max(best, std::abs(data_[i] - other.data_[i]));
  }
  return best;
}

}  // namespace mcmi
