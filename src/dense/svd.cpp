#include "dense/svd.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace mcmi {

std::vector<real_t> singular_values(DenseMatrix a, index_t max_sweeps) {
  const index_t m = a.rows();
  const index_t n = a.cols();
  MCMI_CHECK(m >= n, "one-sided Jacobi expects rows >= cols; transpose first");

  // One-sided Jacobi: orthogonalise pairs of columns of A by plane rotations
  // until all pairs are numerically orthogonal; column norms are then the
  // singular values.
  const real_t eps = std::numeric_limits<real_t>::epsilon();
  for (index_t sweep = 0; sweep < max_sweeps; ++sweep) {
    bool converged = true;
    for (index_t p = 0; p < n - 1; ++p) {
      for (index_t q = p + 1; q < n; ++q) {
        real_t app = 0.0, aqq = 0.0, apq = 0.0;
        for (index_t i = 0; i < m; ++i) {
          const real_t u = a(i, p);
          const real_t v = a(i, q);
          app += u * u;
          aqq += v * v;
          apq += u * v;
        }
        if (std::abs(apq) <= eps * std::sqrt(app * aqq)) continue;
        converged = false;
        // Jacobi rotation annihilating the (p,q) Gram entry.
        const real_t tau = (aqq - app) / (2.0 * apq);
        const real_t t = (tau >= 0.0 ? 1.0 : -1.0) /
                         (std::abs(tau) + std::sqrt(1.0 + tau * tau));
        const real_t c = 1.0 / std::sqrt(1.0 + t * t);
        const real_t s = c * t;
        for (index_t i = 0; i < m; ++i) {
          const real_t u = a(i, p);
          const real_t v = a(i, q);
          a(i, p) = c * u - s * v;
          a(i, q) = s * u + c * v;
        }
      }
    }
    if (converged) break;
  }

  std::vector<real_t> sigma(static_cast<std::size_t>(n));
  for (index_t j = 0; j < n; ++j) {
    real_t sum = 0.0;
    for (index_t i = 0; i < m; ++i) sum += a(i, j) * a(i, j);
    sigma[j] = std::sqrt(sum);
  }
  std::sort(sigma.begin(), sigma.end(), std::greater<real_t>());
  return sigma;
}

real_t condition_number_exact(const DenseMatrix& a) {
  DenseMatrix work = a.rows() >= a.cols() ? a : a.transpose();
  const std::vector<real_t> sigma = singular_values(std::move(work));
  MCMI_CHECK(!sigma.empty(), "empty matrix has no condition number");
  const real_t smin = sigma.back();
  if (smin <= 0.0) return std::numeric_limits<real_t>::infinity();
  return sigma.front() / smin;
}

}  // namespace mcmi
