#pragma once
// Small dense row-major matrix.
//
// Used only where exactness matters more than scale: LU reference solves in
// tests, exact inverses to validate the MCMC estimator, and Jacobi SVD for
// the Table 1 condition numbers of the small matrices.

#include <vector>

#include "core/error.hpp"
#include "core/types.hpp"

namespace mcmi {

class CsrMatrix;

/// Row-major dense matrix.
class DenseMatrix {
 public:
  DenseMatrix() = default;
  DenseMatrix(index_t rows, index_t cols, real_t fill = 0.0)
      : rows_(rows), cols_(cols),
        data_(static_cast<std::size_t>(rows) * static_cast<std::size_t>(cols),
              fill) {
    MCMI_CHECK(rows >= 0 && cols >= 0, "negative dense dimensions");
  }

  static DenseMatrix identity(index_t n);
  static DenseMatrix from_csr(const CsrMatrix& a);

  [[nodiscard]] index_t rows() const { return rows_; }
  [[nodiscard]] index_t cols() const { return cols_; }

  real_t& operator()(index_t i, index_t j) {
    return data_[static_cast<std::size_t>(i) * cols_ + j];
  }
  real_t operator()(index_t i, index_t j) const {
    return data_[static_cast<std::size_t>(i) * cols_ + j];
  }

  [[nodiscard]] const std::vector<real_t>& data() const { return data_; }
  [[nodiscard]] std::vector<real_t>& data() { return data_; }

  /// this * other.
  [[nodiscard]] DenseMatrix multiply(const DenseMatrix& other) const;
  /// this * x.
  [[nodiscard]] std::vector<real_t> multiply(
      const std::vector<real_t>& x) const;
  [[nodiscard]] DenseMatrix transpose() const;

  /// Frobenius norm.
  [[nodiscard]] real_t norm_frobenius() const;
  /// max |a_ij - b_ij|.
  [[nodiscard]] real_t max_abs_diff(const DenseMatrix& other) const;

 private:
  index_t rows_ = 0;
  index_t cols_ = 0;
  std::vector<real_t> data_;
};

}  // namespace mcmi
