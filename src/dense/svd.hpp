#pragma once
// Singular values via one-sided Jacobi rotations.
//
// Table 1 reports kappa(A) = ||A||_2 ||A^-1||_2 = sigma_max / sigma_min; for
// the small matrices in the study we compute it exactly with this routine,
// and for large ones src/features falls back to iterative estimates.

#include <vector>

#include "dense/matrix.hpp"

namespace mcmi {

/// All singular values of `a`, sorted descending.  One-sided Jacobi applied
/// to the columns; converges to machine precision for the sizes used here.
std::vector<real_t> singular_values(DenseMatrix a, index_t max_sweeps = 60);

/// Exact 2-norm condition number sigma_max / sigma_min.  Returns +inf when
/// the smallest singular value underflows to zero.
real_t condition_number_exact(const DenseMatrix& a);

}  // namespace mcmi
