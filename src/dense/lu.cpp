#include "dense/lu.hpp"

#include <cmath>
#include <utility>

namespace mcmi {

LuFactorization::LuFactorization(DenseMatrix a) : lu_(std::move(a)) {
  MCMI_CHECK(lu_.rows() == lu_.cols(), "LU needs a square matrix, got "
                                           << lu_.rows() << "x" << lu_.cols());
  const index_t n = lu_.rows();
  perm_.resize(static_cast<std::size_t>(n));
  for (index_t i = 0; i < n; ++i) perm_[i] = i;

  for (index_t k = 0; k < n; ++k) {
    // Partial pivoting: pick the largest magnitude in column k.
    index_t pivot = k;
    real_t best = std::abs(lu_(k, k));
    for (index_t i = k + 1; i < n; ++i) {
      const real_t v = std::abs(lu_(i, k));
      if (v > best) {
        best = v;
        pivot = i;
      }
    }
    MCMI_CHECK(best > 0.0, "singular matrix: zero pivot at column " << k);
    if (pivot != k) {
      for (index_t j = 0; j < n; ++j) std::swap(lu_(k, j), lu_(pivot, j));
      std::swap(perm_[k], perm_[pivot]);
      sign_ = -sign_;
    }
    const real_t inv_pivot = 1.0 / lu_(k, k);
    for (index_t i = k + 1; i < n; ++i) {
      const real_t lik = lu_(i, k) * inv_pivot;
      lu_(i, k) = lik;
      if (lik == 0.0) continue;
      for (index_t j = k + 1; j < n; ++j) {
        lu_(i, j) -= lik * lu_(k, j);
      }
    }
  }
}

std::vector<real_t> LuFactorization::solve(std::vector<real_t> b) const {
  const index_t n = size();
  MCMI_CHECK(static_cast<index_t>(b.size()) == n, "rhs size mismatch");
  std::vector<real_t> x(static_cast<std::size_t>(n));
  // Apply permutation, then forward substitution with unit L.
  for (index_t i = 0; i < n; ++i) x[i] = b[perm_[i]];
  for (index_t i = 0; i < n; ++i) {
    real_t sum = x[i];
    for (index_t j = 0; j < i; ++j) sum -= lu_(i, j) * x[j];
    x[i] = sum;
  }
  // Backward substitution with U.
  for (index_t i = n - 1; i >= 0; --i) {
    real_t sum = x[i];
    for (index_t j = i + 1; j < n; ++j) sum -= lu_(i, j) * x[j];
    x[i] = sum / lu_(i, i);
  }
  return x;
}

DenseMatrix LuFactorization::inverse() const {
  const index_t n = size();
  DenseMatrix inv(n, n);
  std::vector<real_t> e(static_cast<std::size_t>(n), 0.0);
  for (index_t j = 0; j < n; ++j) {
    e[j] = 1.0;
    const std::vector<real_t> col = solve(e);
    for (index_t i = 0; i < n; ++i) inv(i, j) = col[i];
    e[j] = 0.0;
  }
  return inv;
}

real_t LuFactorization::determinant() const {
  real_t det = sign_;
  for (index_t i = 0; i < size(); ++i) det *= lu_(i, i);
  return det;
}

std::vector<real_t> dense_solve(const DenseMatrix& a,
                                const std::vector<real_t>& b) {
  return LuFactorization(a).solve(b);
}

DenseMatrix dense_inverse(const DenseMatrix& a) {
  return LuFactorization(a).inverse();
}

}  // namespace mcmi
