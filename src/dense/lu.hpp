#pragma once
// Dense LU factorisation with partial pivoting.
//
// The reference direct solver: tests compare every iterative solver and the
// MCMC inverse estimator against LU solves / explicit inverses.

#include <vector>

#include "dense/matrix.hpp"

namespace mcmi {

/// PA = LU factorisation with partial (row) pivoting.
class LuFactorization {
 public:
  /// Factorise a square matrix.  Throws mcmi::Error if the matrix is
  /// numerically singular (zero pivot).
  explicit LuFactorization(DenseMatrix a);

  /// Solve A x = b.
  [[nodiscard]] std::vector<real_t> solve(std::vector<real_t> b) const;

  /// Explicit inverse (column-by-column solves).
  [[nodiscard]] DenseMatrix inverse() const;

  /// Determinant (product of pivots with permutation sign).
  [[nodiscard]] real_t determinant() const;

  [[nodiscard]] index_t size() const { return lu_.rows(); }

 private:
  DenseMatrix lu_;             // packed L (unit lower) and U
  std::vector<index_t> perm_;  // row permutation
  int sign_ = 1;
};

/// Convenience: solve a dense system in one call.
std::vector<real_t> dense_solve(const DenseMatrix& a,
                                const std::vector<real_t>& b);

/// Convenience: explicit dense inverse.
DenseMatrix dense_inverse(const DenseMatrix& a);

}  // namespace mcmi
