#include "features/matrix_features.hpp"

#include <algorithm>
#include <cmath>

#include "core/error.hpp"
#include "core/rng.hpp"
#include "dense/matrix.hpp"
#include "dense/svd.hpp"
#include "krylov/solver.hpp"
#include "precond/jacobi.hpp"
#include "sparse/vector_ops.hpp"

namespace mcmi {

namespace {

/// sigma_max(A) by power iteration on A^T A.
real_t largest_singular_value(const CsrMatrix& a, index_t iterations) {
  const index_t n = a.cols();
  Xoshiro256 rng = make_stream(97, 0);
  std::vector<real_t> v(static_cast<std::size_t>(n));
  for (real_t& x : v) x = normal01(rng);
  const real_t nv = norm2(v);
  for (real_t& x : v) x /= nv;

  std::vector<real_t> av, atav;
  real_t sigma2 = 0.0;
  for (index_t it = 0; it < iterations; ++it) {
    a.multiply(v, av);
    a.multiply_transpose(av, atav);
    sigma2 = norm2(atav);
    if (sigma2 == 0.0) return 0.0;
    for (index_t i = 0; i < n; ++i) v[i] = atav[i] / sigma2;
  }
  return std::sqrt(sigma2);
}

/// sigma_min(A) by inverse iteration on A^T A: each step solves A z = w and
/// A^T y = z approximately with Jacobi-preconditioned GMRES.
real_t smallest_singular_value(const CsrMatrix& a, index_t iterations) {
  const index_t n = a.cols();
  const CsrMatrix at = a.transpose();
  JacobiPreconditioner pa(a);
  JacobiPreconditioner pat(at);
  SolveOptions opt;
  opt.tolerance = 1e-10;
  opt.max_iterations = 400;
  opt.restart = 60;

  Xoshiro256 rng = make_stream(101, 0);
  std::vector<real_t> v(static_cast<std::size_t>(n));
  for (real_t& x : v) x = normal01(rng);
  real_t nv = norm2(v);
  for (real_t& x : v) x /= nv;

  real_t growth = 0.0;
  for (index_t it = 0; it < iterations; ++it) {
    std::vector<real_t> z, y;
    solve_gmres(a, v, pa, z, opt);       // z ~ A^-1 v
    solve_gmres(at, z, pat, y, opt);     // y ~ A^-T z = (A^T A)^-1 v
    growth = norm2(y);
    if (growth == 0.0 || !std::isfinite(growth)) return 0.0;
    for (index_t i = 0; i < n; ++i) v[i] = y[i] / growth;
  }
  // growth ~ 1 / sigma_min^2.
  return 1.0 / std::sqrt(growth);
}

}  // namespace

std::vector<real_t> MatrixFeatures::to_vector() const {
  return {dimension,      log_nnz,  fill,           symmetry,
          norm_inf,       norm_one, norm_frobenius, diag_dominance,
          avg_row_nnz,    log_condition};
}

std::vector<std::string> MatrixFeatures::names() {
  return {"n",        "log_nnz",  "fill",     "symmetry", "norm_inf",
          "norm_one", "norm_fro", "diag_dom", "avg_nnz",  "log_kappa"};
}

index_t MatrixFeatures::count() {
  return static_cast<index_t>(names().size());
}

real_t estimate_condition_number(const CsrMatrix& a, index_t exact_threshold) {
  MCMI_CHECK(a.rows() == a.cols(), "condition number needs a square matrix");
  if (a.rows() <= exact_threshold) {
    return condition_number_exact(DenseMatrix::from_csr(a));
  }
  const real_t smax = largest_singular_value(a, 30);
  const real_t smin = smallest_singular_value(a, 3);
  if (smin <= 0.0) return std::numeric_limits<real_t>::infinity();
  return smax / smin;
}

MatrixFeatures extract_features(const CsrMatrix& a,
                                index_t condition_exact_threshold) {
  MatrixFeatures f;
  const index_t n = a.rows();
  f.dimension = static_cast<real_t>(n);
  f.log_nnz = std::log1p(static_cast<real_t>(a.nnz()));
  f.fill = a.fill();
  f.symmetry = a.symmetry_score();
  f.norm_inf = a.norm_inf();
  f.norm_one = a.norm_one();
  f.norm_frobenius = a.norm_frobenius();
  f.avg_row_nnz = n > 0 ? static_cast<real_t>(a.nnz()) / n : 0.0;

  // Diagonal dominance: min_i |a_ii| / sum_{j != i} |a_ij|, clipped to [0,10].
  real_t dominance = 10.0;
  const auto& row_ptr = a.row_ptr();
  const auto& col_idx = a.col_idx();
  const auto& values = a.values();
  for (index_t i = 0; i < n; ++i) {
    real_t diag = 0.0, off = 0.0;
    for (index_t k = row_ptr[i]; k < row_ptr[i + 1]; ++k) {
      if (col_idx[k] == i) diag = std::abs(values[k]);
      else off += std::abs(values[k]);
    }
    const real_t ratio = off > 0.0 ? diag / off : 10.0;
    dominance = std::min(dominance, std::min(ratio, 10.0));
  }
  f.diag_dominance = dominance;

  const real_t kappa = estimate_condition_number(a, condition_exact_threshold);
  f.log_condition = std::isfinite(kappa) ? std::log10(std::max(kappa, 1.0))
                                         : 16.0;  // saturate singular cases
  return f;
}

}  // namespace mcmi
