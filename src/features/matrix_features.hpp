#pragma once
// Cheap matrix features x_A for the surrogate model (§3.1).
//
// The paper augments the graph input with "inexpensive matrix features ...
// such as the norms, sparsity and symmetricity".  This module extracts that
// feature vector, including an approximate condition number (exact SVD for
// small matrices, power/inverse iteration otherwise).

#include <string>
#include <vector>

#include "core/types.hpp"
#include "sparse/csr.hpp"

namespace mcmi {

/// The x_A feature vector.
struct MatrixFeatures {
  real_t dimension = 0.0;        ///< n
  real_t log_nnz = 0.0;          ///< log(1 + nnz)
  real_t fill = 0.0;             ///< phi(A)
  real_t symmetry = 0.0;         ///< symmetry score in [0, 1]
  real_t norm_inf = 0.0;
  real_t norm_one = 0.0;
  real_t norm_frobenius = 0.0;
  real_t diag_dominance = 0.0;   ///< min_i |a_ii| / sum_{j!=i} |a_ij|
  real_t avg_row_nnz = 0.0;
  real_t log_condition = 0.0;    ///< log10 of the condition estimate

  /// Flatten to the vector fed to the surrogate's FC branch.
  [[nodiscard]] std::vector<real_t> to_vector() const;
  /// Names aligned with to_vector(), for reports.
  static std::vector<std::string> names();
  /// Number of features.
  static index_t count();
};

/// Estimate kappa_2(A).  Matrices with n <= `exact_threshold` use the exact
/// Jacobi SVD; larger ones use power iteration for sigma_max and
/// GMRES-based inverse iteration for sigma_min.
real_t estimate_condition_number(const CsrMatrix& a,
                                 index_t exact_threshold = 300);

/// Extract the full feature vector.  `condition_exact_threshold` is passed
/// through to estimate_condition_number.
MatrixFeatures extract_features(const CsrMatrix& a,
                                index_t condition_exact_threshold = 300);

}  // namespace mcmi
