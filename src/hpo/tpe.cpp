#include "hpo/tpe.hpp"

#include <algorithm>
#include <cmath>

#include "core/error.hpp"

namespace mcmi::hpo {

TpeSampler::TpeSampler(SearchSpace space, TpeOptions options)
    : space_(std::move(space)), options_(options) {
  MCMI_CHECK(options_.gamma > 0.0 && options_.gamma < 1.0,
             "gamma must be in (0,1)");
  MCMI_CHECK(space_.dim() > 0, "empty search space");
}

namespace {

/// Scott-rule bandwidth over a (possibly log-transformed) sample; floored so
/// a degenerate sample still explores.
real_t bandwidth(const std::vector<real_t>& xs, real_t range) {
  if (xs.size() < 2) return std::max(0.1 * range, 1e-12);
  real_t mean = 0.0;
  for (real_t x : xs) mean += x;
  mean /= static_cast<real_t>(xs.size());
  real_t var = 0.0;
  for (real_t x : xs) var += (x - mean) * (x - mean);
  var /= static_cast<real_t>(xs.size() - 1);
  const real_t sd = std::sqrt(var);
  const real_t scott =
      1.06 * sd * std::pow(static_cast<real_t>(xs.size()), -0.2);
  return std::max(scott, 0.01 * range);
}

}  // namespace

real_t TpeSampler::log_density(const ParamSpec& spec,
                               const std::vector<real_t>& values,
                               real_t value) const {
  if (spec.kind == ParamKind::kCategorical || spec.kind == ParamKind::kChoice) {
    // Smoothed count distribution with a uniform pseudo-count prior.
    const index_t k = spec.cardinality();
    std::vector<real_t> weight(static_cast<std::size_t>(k), 1.0);
    for (real_t v : values) {
      const index_t idx = static_cast<index_t>(std::llround(v));
      if (idx >= 0 && idx < k) weight[idx] += 1.0;
    }
    real_t total = 0.0;
    for (real_t w : weight) total += w;
    const index_t idx = static_cast<index_t>(std::llround(value));
    MCMI_CHECK(idx >= 0 && idx < k, "categorical value out of range");
    return std::log(weight[idx] / total);
  }

  // Continuous: Gaussian KDE; log-uniform parameters are modelled in log
  // space (with the Jacobian dropped — it cancels in the l/g ratio).
  const bool log_space = spec.kind == ParamKind::kLogUniform;
  auto tx = [&](real_t x) { return log_space ? std::log(x) : x; };
  const real_t lo = tx(spec.low), hi = tx(spec.high);
  std::vector<real_t> xs;
  xs.reserve(values.size());
  for (real_t v : values) xs.push_back(tx(v));
  const real_t h = bandwidth(xs, hi - lo);
  const real_t x = tx(value);
  if (xs.empty()) return -std::log(hi - lo);  // uniform prior
  real_t density = 0.0;
  const real_t norm = 1.0 / (static_cast<real_t>(xs.size()) * h *
                             std::sqrt(2.0 * M_PI));
  for (real_t c : xs) {
    const real_t z = (x - c) / h;
    density += std::exp(-0.5 * z * z);
  }
  return std::log(std::max(density * norm, 1e-300));
}

real_t TpeSampler::sample_density(const ParamSpec& spec,
                                  const std::vector<real_t>& values,
                                  Xoshiro256& rng) const {
  if (values.empty()) return spec.sample(rng);
  if (spec.kind == ParamKind::kCategorical || spec.kind == ParamKind::kChoice) {
    // Sample from the smoothed counts.
    const index_t k = spec.cardinality();
    std::vector<real_t> weight(static_cast<std::size_t>(k), 1.0);
    for (real_t v : values) {
      const index_t idx = static_cast<index_t>(std::llround(v));
      if (idx >= 0 && idx < k) weight[idx] += 1.0;
    }
    real_t total = 0.0;
    for (real_t w : weight) total += w;
    real_t target = uniform01(rng) * total;
    for (index_t i = 0; i < k; ++i) {
      target -= weight[i];
      if (target <= 0.0) return static_cast<real_t>(i);
    }
    return static_cast<real_t>(k - 1);
  }

  const bool log_space = spec.kind == ParamKind::kLogUniform;
  auto tx = [&](real_t x) { return log_space ? std::log(x) : x; };
  auto untx = [&](real_t x) { return log_space ? std::exp(x) : x; };
  const real_t lo = tx(spec.low), hi = tx(spec.high);
  std::vector<real_t> xs;
  xs.reserve(values.size());
  for (real_t v : values) xs.push_back(tx(v));
  const real_t h = bandwidth(xs, hi - lo);
  // Pick a kernel centre, then perturb.
  const real_t centre = xs[uniform_index(rng, xs.size())];
  const real_t draw = std::clamp(centre + h * normal01(rng), lo, hi);
  return untx(draw);
}

Assignment TpeSampler::suggest() {
  Xoshiro256 rng = make_stream(options_.seed, 0x73, suggestions_++);
  if (static_cast<index_t>(history_.size()) < options_.startup_trials) {
    return space_.sample(rng);
  }

  // Split history into good (lowest gamma fraction) and bad.
  std::vector<const TrialRecord*> sorted;
  sorted.reserve(history_.size());
  for (const auto& t : history_) sorted.push_back(&t);
  std::sort(sorted.begin(), sorted.end(),
            [](const TrialRecord* a, const TrialRecord* b) {
              return a->objective < b->objective;
            });
  const std::size_t n_good = std::max<std::size_t>(
      1, static_cast<std::size_t>(options_.gamma *
                                  static_cast<real_t>(sorted.size())));

  Assignment best_candidate;
  real_t best_score = -std::numeric_limits<real_t>::infinity();
  for (index_t c = 0; c < options_.candidates; ++c) {
    Assignment candidate(space_.dim());
    real_t score = 0.0;
    for (index_t d = 0; d < space_.dim(); ++d) {
      std::vector<real_t> good_vals, bad_vals;
      for (std::size_t i = 0; i < sorted.size(); ++i) {
        (i < n_good ? good_vals : bad_vals)
            .push_back(sorted[i]->assignment[d]);
      }
      const real_t v = sample_density(space_.params[d], good_vals, rng);
      candidate[d] = v;
      score += log_density(space_.params[d], good_vals, v) -
               log_density(space_.params[d], bad_vals, v);
    }
    if (score > best_score) {
      best_score = score;
      best_candidate = std::move(candidate);
    }
  }
  return best_candidate;
}

void TpeSampler::record(const Assignment& assignment, real_t objective) {
  MCMI_CHECK(static_cast<index_t>(assignment.size()) == space_.dim(),
             "assignment dimension mismatch");
  history_.push_back({assignment, objective});
}

const TrialRecord& TpeSampler::best() const {
  MCMI_CHECK(!history_.empty(), "no completed trials");
  const TrialRecord* best = &history_.front();
  for (const auto& t : history_) {
    if (t.objective < best->objective) best = &t;
  }
  return *best;
}

}  // namespace mcmi::hpo
