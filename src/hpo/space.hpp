#pragma once
// Hyper-parameter search space description.
//
// Mirrors the §4.3 space: categorical choices (message-passing mechanism,
// aggregation), integer choices (hidden dimensions, layer counts) and
// continuous parameters (learning rate log-uniform in [1e-4, 1e-1], weight
// decay in [1e-6, 1e-3], dropout uniform in [0, 0.2]).
//
// Every parameter is represented internally as a real number: categorical /
// integer choices store the index into `choices`.

#include <string>
#include <vector>

#include "core/rng.hpp"
#include "core/types.hpp"

namespace mcmi::hpo {

enum class ParamKind {
  kCategorical,  ///< value = index into labels
  kChoice,       ///< value = index into numeric choices
  kUniform,      ///< value in [low, high]
  kLogUniform,   ///< value in [low, high], sampled log-uniformly
};

struct ParamSpec {
  std::string name;
  ParamKind kind = ParamKind::kUniform;
  std::vector<std::string> labels;   ///< categorical labels
  std::vector<real_t> choices;       ///< numeric choices
  real_t low = 0.0;
  real_t high = 1.0;

  static ParamSpec categorical(std::string name,
                               std::vector<std::string> labels);
  static ParamSpec choice(std::string name, std::vector<real_t> choices);
  static ParamSpec uniform(std::string name, real_t low, real_t high);
  static ParamSpec log_uniform(std::string name, real_t low, real_t high);

  /// Number of discrete options (0 for continuous parameters).
  [[nodiscard]] index_t cardinality() const;
  /// Uniform random value for this parameter.
  [[nodiscard]] real_t sample(Xoshiro256& rng) const;
};

/// An assignment of one value per parameter, in space order.
using Assignment = std::vector<real_t>;

struct SearchSpace {
  std::vector<ParamSpec> params;

  [[nodiscard]] index_t dim() const {
    return static_cast<index_t>(params.size());
  }
  [[nodiscard]] Assignment sample(Xoshiro256& rng) const;
  [[nodiscard]] index_t index_of(const std::string& name) const;
};

/// The paper's §4.3 surrogate search space.
SearchSpace surrogate_search_space();

}  // namespace mcmi::hpo
