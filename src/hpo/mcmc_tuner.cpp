#include "hpo/mcmc_tuner.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "core/error.hpp"
#include "stats/summary.hpp"

namespace mcmi::hpo {

SearchSpace mcmc_search_space(const McmcTuneOptions& options) {
  MCMI_CHECK(!options.alphas.empty(), "alpha grid must not be empty");
  for (real_t alpha : options.alphas) {
    MCMI_CHECK(alpha >= 0.0, "alpha must be nonnegative");
  }
  SearchSpace space;
  space.params.push_back(ParamSpec::choice("alpha", options.alphas));
  space.params.push_back(
      ParamSpec::uniform("eps", options.eps_min, options.eps_max));
  space.params.push_back(
      ParamSpec::uniform("delta", options.delta_min, options.delta_max));
  return space;
}

McmcTuneResult tune_mcmc_params(PerformanceMeasurer& measurer,
                                KrylovMethod method,
                                const McmcTuneOptions& options) {
  MCMI_CHECK(options.rounds >= 1, "need at least one round");
  MCMI_CHECK(options.candidates_per_round >= 1,
             "need at least one candidate per round");
  const SearchSpace space = mcmc_search_space(options);
  TpeSampler sampler(space, options.tpe);
  const index_t alpha_index = space.index_of("alpha");
  const index_t eps_index = space.index_of("eps");
  const index_t delta_index = space.index_of("delta");

  McmcTuneResult result;
  result.best_median = std::numeric_limits<real_t>::infinity();
  for (index_t round = 0; round < options.rounds; ++round) {
    // Cooperative cancellation at round granularity: a round is the unit of
    // batched evaluation, so stopping between rounds keeps what was already
    // measured consistent and returns the best-so-far incumbent.
    if (options.cancel != nullptr && options.cancel->should_stop()) break;
    // Propose the round's batch, snapping alpha through the choice
    // parameter so candidates collapse into a few batched grid builds.
    std::vector<Assignment> assignments;
    std::vector<McmcParams> batch;
    for (index_t c = 0; c < options.candidates_per_round; ++c) {
      Assignment a = sampler.suggest();
      const auto choice = static_cast<std::size_t>(
          std::llround(a[static_cast<std::size_t>(alpha_index)]));
      batch.push_back({options.alphas[choice],
                       a[static_cast<std::size_t>(eps_index)],
                       a[static_cast<std::size_t>(delta_index)]});
      assignments.push_back(std::move(a));
    }

    // Evaluate: one shared walk ensemble per (distinct alpha, replicate).
    const std::vector<real_t> medians =
        measurer.measure_grouped_medians(batch, method, options.replicates);

    for (std::size_t c = 0; c < batch.size(); ++c) {
      sampler.record(assignments[c], medians[c]);
      result.history.push_back({batch[c], medians[c]});
      if (medians[c] < result.best_median) {
        result.best_median = medians[c];
        result.best = batch[c];
      }
    }
  }
  return result;
}

std::future<McmcTuneResult> tune_mcmc_params_async(
    PerformanceMeasurer& measurer, KrylovMethod method,
    const McmcTuneOptions& options) {
  return std::async(std::launch::async, [&measurer, method, options]() {
    return tune_mcmc_params(measurer, method, options);
  });
}

}  // namespace mcmi::hpo
