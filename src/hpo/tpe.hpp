#pragma once
// Tree-structured Parzen Estimator (Bergstra et al., 2011).
//
// The paper performs hyper-parameter optimisation with TPE (§4.3).  TPE
// models P(x | y < y*) and P(x | y >= y*) with kernel density estimators
// l(x) and g(x) over the completed trials and proposes the candidate that
// maximises the ratio l(x)/g(x) among n_candidates draws from l.
// Continuous parameters use Gaussian kernels with a Scott-rule bandwidth;
// categorical/choice parameters use smoothed count distributions.

#include <vector>

#include "hpo/space.hpp"

namespace mcmi::hpo {

struct TpeOptions {
  index_t startup_trials = 8;    ///< random search before TPE kicks in
  real_t gamma = 0.25;           ///< fraction of trials considered "good"
  index_t candidates = 24;       ///< draws from l(x) scored by l/g
  u64 seed = 4242;
};

struct TrialRecord {
  Assignment assignment;
  real_t objective = 0.0;        ///< lower is better
};

class TpeSampler {
 public:
  TpeSampler(SearchSpace space, TpeOptions options = {});

  /// Suggest the next assignment to evaluate.
  [[nodiscard]] Assignment suggest();

  /// Report a completed trial.
  void record(const Assignment& assignment, real_t objective);

  [[nodiscard]] const std::vector<TrialRecord>& history() const {
    return history_;
  }
  [[nodiscard]] const SearchSpace& space() const { return space_; }

  /// Best completed trial so far (throws when history is empty).
  [[nodiscard]] const TrialRecord& best() const;

 private:
  /// Log-density of `value` under the KDE built from `values` for parameter
  /// `spec` (Gaussian kernels / smoothed counts).
  real_t log_density(const ParamSpec& spec, const std::vector<real_t>& values,
                     real_t value) const;
  /// Draw from the KDE of `values` for parameter `spec`.
  real_t sample_density(const ParamSpec& spec,
                        const std::vector<real_t>& values, Xoshiro256& rng) const;

  SearchSpace space_;
  TpeOptions options_;
  std::vector<TrialRecord> history_;
  u64 suggestions_ = 0;
};

}  // namespace mcmi::hpo
