#include "hpo/asha.hpp"

#include <algorithm>
#include <cmath>

#include "core/error.hpp"

namespace mcmi::hpo {

AshaScheduler::AshaScheduler(AshaOptions options) : options_(options) {
  MCMI_CHECK(options_.grace_period >= 1, "grace period must be positive");
  MCMI_CHECK(options_.reduction_factor > 1.0, "eta must exceed 1");
  real_t level = static_cast<real_t>(options_.grace_period);
  while (static_cast<index_t>(level) <= options_.max_resource) {
    rungs_.push_back(static_cast<index_t>(level));
    level *= options_.reduction_factor;
  }
  rung_scores_.resize(rungs_.size());
}

index_t AshaScheduler::rung_size(index_t rung) const {
  MCMI_CHECK(rung >= 0 && rung < static_cast<index_t>(rungs_.size()),
             "rung out of range");
  return static_cast<index_t>(rung_scores_[rung].size());
}

bool AshaScheduler::report(index_t trial, index_t resource, real_t score) {
  // Find the highest rung this resource has reached.
  index_t rung = -1;
  for (std::size_t k = 0; k < rungs_.size(); ++k) {
    if (resource >= rungs_[k]) rung = static_cast<index_t>(k);
  }
  if (rung < 0) return true;  // below the grace period: always continue

  auto [it, inserted] = trial_rung_.try_emplace(trial, -1);
  if (it->second >= rung) return true;  // already judged at this rung
  it->second = rung;

  auto& scores = rung_scores_[rung];
  scores.push_back(score);

  // Asynchronous promotion rule: continue iff the score is within the top
  // 1/eta of everything recorded at this rung so far.
  std::vector<real_t> sorted = scores;
  std::sort(sorted.begin(), sorted.end());
  const std::size_t keep = std::max<std::size_t>(
      1, static_cast<std::size_t>(std::floor(
             static_cast<real_t>(sorted.size()) / options_.reduction_factor)));
  const real_t threshold = sorted[keep - 1];
  return score <= threshold;
}

}  // namespace mcmi::hpo
