#include "hpo/space.hpp"

#include <cmath>

#include "core/error.hpp"

namespace mcmi::hpo {

ParamSpec ParamSpec::categorical(std::string name,
                                 std::vector<std::string> labels) {
  ParamSpec p;
  p.name = std::move(name);
  p.kind = ParamKind::kCategorical;
  p.labels = std::move(labels);
  MCMI_CHECK(!p.labels.empty(), "categorical needs labels");
  return p;
}

ParamSpec ParamSpec::choice(std::string name, std::vector<real_t> choices) {
  ParamSpec p;
  p.name = std::move(name);
  p.kind = ParamKind::kChoice;
  p.choices = std::move(choices);
  MCMI_CHECK(!p.choices.empty(), "choice needs options");
  return p;
}

ParamSpec ParamSpec::uniform(std::string name, real_t low, real_t high) {
  ParamSpec p;
  p.name = std::move(name);
  p.kind = ParamKind::kUniform;
  p.low = low;
  p.high = high;
  MCMI_CHECK(low < high, "empty uniform range");
  return p;
}

ParamSpec ParamSpec::log_uniform(std::string name, real_t low, real_t high) {
  ParamSpec p;
  p.name = std::move(name);
  p.kind = ParamKind::kLogUniform;
  p.low = low;
  p.high = high;
  MCMI_CHECK(low > 0.0 && low < high, "bad log-uniform range");
  return p;
}

index_t ParamSpec::cardinality() const {
  switch (kind) {
    case ParamKind::kCategorical:
      return static_cast<index_t>(labels.size());
    case ParamKind::kChoice:
      return static_cast<index_t>(choices.size());
    default:
      return 0;
  }
}

real_t ParamSpec::sample(Xoshiro256& rng) const {
  switch (kind) {
    case ParamKind::kCategorical:
    case ParamKind::kChoice:
      return static_cast<real_t>(
          uniform_index(rng, static_cast<u64>(cardinality())));
    case ParamKind::kUniform:
      return ::mcmi::uniform(rng, low, high);
    case ParamKind::kLogUniform:
      return std::exp(::mcmi::uniform(rng, std::log(low), std::log(high)));
  }
  MCMI_FAIL("invalid param kind");
}

Assignment SearchSpace::sample(Xoshiro256& rng) const {
  Assignment a;
  a.reserve(params.size());
  for (const ParamSpec& p : params) a.push_back(p.sample(rng));
  return a;
}

index_t SearchSpace::index_of(const std::string& name) const {
  for (std::size_t i = 0; i < params.size(); ++i) {
    if (params[i].name == name) return static_cast<index_t>(i);
  }
  MCMI_FAIL("unknown hyper-parameter '" << name << "'");
}

SearchSpace surrogate_search_space() {
  SearchSpace s;
  s.params.push_back(
      ParamSpec::categorical("layer", {"edgeconv", "gine", "gcn", "gatv2"}));
  s.params.push_back(
      ParamSpec::categorical("aggregation", {"mean", "sum", "max", "multi"}));
  s.params.push_back(ParamSpec::choice("gnn_hidden", {16, 32, 64}));
  s.params.push_back(ParamSpec::choice("gnn_layers", {1, 2}));
  s.params.push_back(ParamSpec::choice("xa_hidden", {8, 16, 32, 64}));
  s.params.push_back(ParamSpec::choice("xa_layers", {1, 2, 3, 4}));
  s.params.push_back(ParamSpec::choice("xm_hidden", {4, 8, 16, 32}));
  s.params.push_back(ParamSpec::choice("xm_layers", {1, 2, 3, 4}));
  s.params.push_back(ParamSpec::choice("combined_hidden", {32, 64, 128}));
  s.params.push_back(ParamSpec::choice("combined_layers", {1, 2, 3, 4}));
  s.params.push_back(ParamSpec::log_uniform("learning_rate", 1e-4, 1e-1));
  s.params.push_back(ParamSpec::log_uniform("weight_decay", 1e-6, 1e-3));
  s.params.push_back(ParamSpec::uniform("dropout", 0.0, 0.2));
  return s;
}

}  // namespace mcmi::hpo
