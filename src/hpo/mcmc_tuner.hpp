#pragma once
// Direct TPE search over the MCMC parameters x_M = (alpha, eps, delta) for
// one linear system — the surrogate-free counterpart of the paper's BO loop,
// built to exploit batched grid builds: alpha is a categorical choice over a
// small grid, so each round's candidate batch collapses into one shared walk
// ensemble per distinct alpha (PerformanceMeasurer::measure_grid) instead of
// one preconditioner build per candidate.  The eps/delta box mirrors the
// low corner of the BO search space, where tuning converges and common
// random numbers pay the most.

#include <vector>

#include "hpo/tpe.hpp"
#include "krylov/solver.hpp"
#include "mcmc/params.hpp"
#include "pipeline/metric.hpp"

namespace mcmi::hpo {

struct McmcTuneOptions {
  std::vector<real_t> alphas = {1.0, 2.0, 4.0, 5.0};  ///< categorical grid
  real_t eps_min = 0.05;
  real_t eps_max = 0.5;
  real_t delta_min = 0.05;
  real_t delta_max = 0.5;
  index_t rounds = 3;                ///< TPE rounds
  index_t candidates_per_round = 8;  ///< batch size per round
  index_t replicates = 2;            ///< y replicates per candidate
  TpeOptions tpe;                    ///< sampler knobs (seed, gamma, ...)
};

/// One evaluated candidate.
struct McmcTrialResult {
  McmcParams params;
  real_t median_y = 0.0;  ///< sample median of the replicated eq.(4) ratio
};

struct McmcTuneResult {
  McmcParams best;
  real_t best_median = 0.0;
  std::vector<McmcTrialResult> history;  ///< evaluation order
};

/// The x_M search space TPE samples from: categorical alpha over `alphas`,
/// uniform eps and delta inside the box.
SearchSpace mcmc_search_space(const McmcTuneOptions& options);

/// Tune x_M for the system inside `measurer` with `method`.  Deterministic
/// for a fixed (measurer seed, options.tpe.seed).
McmcTuneResult tune_mcmc_params(PerformanceMeasurer& measurer,
                                KrylovMethod method,
                                const McmcTuneOptions& options = {});

}  // namespace mcmi::hpo
