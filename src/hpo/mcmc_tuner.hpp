#pragma once
/// @file mcmc_tuner.hpp
/// @brief Direct TPE search over the MCMC parameters x_M = (alpha, eps,
/// delta) for one linear system — the surrogate-free counterpart of the
/// paper's BO loop, built to exploit batched grid builds.
///
/// Alpha is a categorical choice over a small grid, so each round's
/// candidate batch collapses into a handful of alpha groups that evaluate
/// through `PerformanceMeasurer::measure_grouped_medians`: one interleaved
/// walk ensemble serves every (candidate, replicate) of an alpha — and,
/// when the per-alpha kernels round to bitwise-identical alias tables
/// (multi_alpha_grid_build), a single ensemble's successor draws serve
/// every alpha at once — instead of one preconditioner build per candidate
/// per replicate.  The eps/delta box mirrors the low corner of the BO
/// search space, where tuning converges and common random numbers pay the
/// most.

#include <future>
#include <vector>

#include "core/cancellation.hpp"
#include "hpo/tpe.hpp"
#include "krylov/solver.hpp"
#include "mcmc/params.hpp"
#include "pipeline/metric.hpp"

namespace mcmi::hpo {

/// Knobs of the direct x_M tuning loop.
struct McmcTuneOptions {
  /// Categorical alpha grid the sampler chooses from; candidates snap to
  /// these exact values so they collapse into few batched ensembles.
  std::vector<real_t> alphas = {1.0, 2.0, 4.0, 5.0};
  real_t eps_min = 0.05;    ///< lower edge of the eps box
  real_t eps_max = 0.5;     ///< upper edge of the eps box
  real_t delta_min = 0.05;  ///< lower edge of the delta box
  real_t delta_max = 0.5;   ///< upper edge of the delta box
  index_t rounds = 3;                ///< TPE rounds
  index_t candidates_per_round = 8;  ///< batch size per round
  index_t replicates = 2;            ///< y replicates per candidate
  TpeOptions tpe;                    ///< sampler knobs (seed, gamma, ...)
  /// Optional cancel/deadline token (not owned; must outlive the run).
  /// Checked at round boundaries: a stopped token ends the loop early and
  /// the run returns the best-so-far incumbent (history may be short).
  const CancelToken* cancel = nullptr;
};

/// One evaluated candidate.
struct McmcTrialResult {
  McmcParams params;      ///< the evaluated x_M
  real_t median_y = 0.0;  ///< sample median of the replicated eq.(4) ratio
};

/// Outcome of a tuning run.
struct McmcTuneResult {
  McmcParams best;           ///< incumbent x_M (lowest median y)
  real_t best_median = 0.0;  ///< the incumbent's median y
  std::vector<McmcTrialResult> history;  ///< evaluation order
};

/// The x_M search space TPE samples from: categorical alpha over
/// `options.alphas`, uniform eps and delta inside the box.
SearchSpace mcmc_search_space(const McmcTuneOptions& options);

/// Tune x_M for the system inside `measurer` with `method`.  Deterministic
/// for a fixed (measurer seed, options.tpe.seed), and — because the batched
/// evaluation paths are bit-identical to standalone builds — invariant to
/// how candidates get grouped into shared ensembles.
McmcTuneResult tune_mcmc_params(PerformanceMeasurer& measurer,
                                KrylovMethod method,
                                const McmcTuneOptions& options = {});

/// Run tune_mcmc_params on a dedicated thread (std::async), returning the
/// future.  The caller keeps ownership of `measurer` and of the token named
/// by `options.cancel` — both must outlive the future's completion.  This
/// is the serving layer's entry point: the builder thread kicks off tuning
/// for a cold fingerprint and swaps the tuned parameters in when the future
/// resolves, while requests keep being served by the fallback rungs.
std::future<McmcTuneResult> tune_mcmc_params_async(
    PerformanceMeasurer& measurer, KrylovMethod method,
    const McmcTuneOptions& options = {});

}  // namespace mcmi::hpo
