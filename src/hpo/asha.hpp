#pragma once
// Asynchronous Successive Halving (ASHA, Li et al., 2020).
//
// §4.3: "the Asynchronous Successive Halving Algorithm scheduler for early
// stopping and resource-efficient scheduling, with a maximum of 150 epochs,
// a grace period of 20 and a reduction factor of 3."
//
// Rungs sit at resource levels grace * eta^k.  When a trial reaches a rung
// it is promoted only if its score is within the top 1/eta of all scores
// recorded at that rung *so far* — the asynchronous rule, which never waits
// for stragglers.

#include <map>
#include <vector>

#include "core/types.hpp"

namespace mcmi::hpo {

struct AshaOptions {
  index_t grace_period = 20;   ///< minimum resource before any stop
  index_t max_resource = 150;  ///< maximum epochs
  real_t reduction_factor = 3.0;  ///< eta
};

class AshaScheduler {
 public:
  explicit AshaScheduler(AshaOptions options = {});

  /// Report the score (lower is better) of `trial` at `resource` consumed.
  /// Returns true if the trial should CONTINUE, false if it should stop.
  bool report(index_t trial, index_t resource, real_t score);

  /// Rung resource levels (grace * eta^k <= max_resource).
  [[nodiscard]] const std::vector<index_t>& rungs() const { return rungs_; }

  /// Number of scores recorded at a rung.
  [[nodiscard]] index_t rung_size(index_t rung) const;

 private:
  AshaOptions options_;
  std::vector<index_t> rungs_;
  // Per rung: all scores recorded when trials arrived there.
  std::vector<std::vector<real_t>> rung_scores_;
  // Highest rung each trial has been judged at (to judge each rung once).
  std::map<index_t, index_t> trial_rung_;
};

}  // namespace mcmi::hpo
