#include "serve/artifact_store.hpp"

#include <algorithm>
#include <utility>

#include "core/error.hpp"
#include "core/hash.hpp"
#include "solve/fault_injection.hpp"

namespace mcmi::serve {

const char* to_string(BuildState state) {
  switch (state) {
    case BuildState::kCold: return "cold";
    case BuildState::kBuilding: return "building";
    case BuildState::kTuned: return "tuned";
    case BuildState::kRetryWait: return "retry_wait";
    case BuildState::kFailed: return "failed";
  }
  return "unknown";
}

ArtifactEntry::ArtifactEntry(u64 fingerprint,
                             std::shared_ptr<const CsrMatrix> matrix)
    : fingerprint_(fingerprint),
      matrix_(std::move(matrix)),
      kernels_(std::make_shared<WalkKernelCache>()) {
  MCMI_CHECK(matrix_ != nullptr, "artifact entry needs a matrix");
}

std::shared_ptr<const CsrMatrix> ArtifactEntry::matrix_for(
    PlanBackend backend, const ShardLayout& layout) {
  if (backend == PlanBackend::kSingle && layout.empty()) return matrix_;
  Hash64 key_hash(0x706c6b79ULL);  // "plky"
  key_hash.update(static_cast<u64>(backend));
  key_hash.update(layout.fingerprint());
  const u64 key = key_hash.digest();
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = bound_matrices_.find(key);
  if (it != bound_matrices_.end()) return it->second;
  // Built under the entry mutex: bounded O(nnz) work, and holding the lock
  // is exactly what coalesces concurrent requests for one layout onto a
  // single build.
  auto bound = std::make_shared<CsrMatrix>(*matrix_);
  bound->set_plan_backend(backend, layout);
  ++plan_builds_;
  bound_matrices_.emplace(key, bound);
  return bound;
}

u64 ArtifactEntry::plan_builds() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return plan_builds_;
}

std::shared_ptr<const SparseApproximateInverse> ArtifactEntry::tuned() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return tuned_;
}

McmcParams ArtifactEntry::tuned_params() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return tuned_params_;
}

BuildState ArtifactEntry::state() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return state_;
}

bool ArtifactEntry::try_begin_build() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (state_ == BuildState::kCold) {
    state_ = BuildState::kBuilding;
    return true;
  }
  // Half-open probe: once the cooldown expires, the first claimant flips
  // the breaker to kBuilding; everyone else keeps coalescing onto it.
  if (state_ == BuildState::kRetryWait && clock::now() >= cooldown_until_) {
    state_ = BuildState::kBuilding;
    return true;
  }
  return false;
}

void ArtifactEntry::mark_build_failed(BuildStatus cause, index_t max_attempts,
                                      real_t cooldown_seconds) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (state_ != BuildState::kBuilding) return;
  failure_cause_ = cause;
  ++build_failures_;
  if (!is_transient_build_failure(cause) || build_failures_ >= max_attempts) {
    state_ = BuildState::kFailed;
    return;
  }
  // Exponential cooldown: the k-th transient failure waits 2^(k-1) times
  // the base before the breaker half-opens for one probe build.
  const real_t cooldown =
      cooldown_seconds * static_cast<real_t>(1ll << std::min<index_t>(
                                                 build_failures_ - 1, 30));
  cooldown_until_ =
      clock::now() + std::chrono::duration_cast<clock::duration>(
                         std::chrono::duration<real_t>(
                             std::max<real_t>(cooldown, 0)));
  state_ = BuildState::kRetryWait;
}

BuildStatus ArtifactEntry::failure_cause() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return failure_cause_;
}

index_t ArtifactEntry::build_failures() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return build_failures_;
}

bool ArtifactEntry::retry_ready() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return state_ == BuildState::kRetryWait && clock::now() >= cooldown_until_;
}

real_t ArtifactEntry::cooldown_remaining_seconds() const {
  std::lock_guard<std::mutex> lock(mutex_);
  if (state_ != BuildState::kRetryWait) return 0.0;
  const real_t remaining =
      std::chrono::duration<real_t>(cooldown_until_ - clock::now()).count();
  return std::max<real_t>(remaining, 0);
}

std::size_t ArtifactEntry::matrix_bytes(const CsrMatrix& m) {
  return m.row_ptr().size() * sizeof(index_t) +
         m.col_idx().size() * sizeof(index_t) +
         m.values().size() * sizeof(real_t);
}

std::size_t ArtifactEntry::bytes() const {
  std::size_t total = matrix_bytes(*matrix_);
  std::lock_guard<std::mutex> lock(mutex_);
  if (tuned_ != nullptr) total += matrix_bytes(tuned_->matrix());
  return total;
}

ArtifactStore::ArtifactStore(Limits limits) : limits_(limits) {
  MCMI_CHECK(limits_.max_entries >= 1, "store needs room for one entry");
}

void ArtifactStore::touch(Slot& slot) {
  lru_.splice(lru_.begin(), lru_, slot.lru_pos);
  slot.lru_pos = lru_.begin();
}

void ArtifactStore::evict_if_over_budget() {
  // Injected byte pressure (chaos harness) inflates the accounted bytes,
  // so a pressure spike evicts exactly like real resident growth would.
  const std::size_t pressure =
      faults_ != nullptr ? faults_->store_pressure_bytes() : 0;
  while (lru_.size() > 1 &&
         (lru_.size() > limits_.max_entries ||
          bytes_ + pressure > limits_.max_bytes)) {
    const u64 victim = lru_.back();
    auto it = slots_.find(victim);
    bytes_ -= it->second.bytes;
    slots_.erase(it);
    lru_.pop_back();
    ++stats_.evictions;
    if (pressure > 0) ++stats_.pressure_evictions;
  }
}

std::shared_ptr<ArtifactEntry> ArtifactStore::lookup_verified(
    u64 fingerprint, const CsrMatrix& a) {
  auto it = slots_.find(fingerprint);
  if (it == slots_.end()) {
    ++stats_.misses;
    return nullptr;
  }
  if (!it->second.entry->matrix()->same_content(a)) {
    ++stats_.collisions;
    return nullptr;
  }
  touch(it->second);
  ++stats_.hits;
  return it->second.entry;
}

std::shared_ptr<ArtifactEntry> ArtifactStore::find(const CsrMatrix& a) {
  return find(a.content_fingerprint(), a);
}

std::shared_ptr<ArtifactEntry> ArtifactStore::find(u64 fingerprint,
                                                   const CsrMatrix& a) {
  std::lock_guard<std::mutex> lock(mutex_);
  return lookup_verified(fingerprint, a);
}

std::shared_ptr<ArtifactEntry> ArtifactStore::intern(const CsrMatrix& a) {
  const u64 fingerprint = a.content_fingerprint();
  std::lock_guard<std::mutex> lock(mutex_);
  if (auto entry = lookup_verified(fingerprint, a)) return entry;

  auto entry = std::make_shared<ArtifactEntry>(
      fingerprint, std::make_shared<CsrMatrix>(a));
  // A fingerprint collision leaves the resident entry in place: the new
  // entry is handed back detached, so its requests still work (they just
  // never get a warm path) and the impostor cannot displace cached state.
  if (slots_.count(fingerprint) != 0) return entry;

  lru_.push_front(fingerprint);
  Slot slot;
  slot.entry = entry;
  slot.lru_pos = lru_.begin();
  slot.bytes = entry->bytes();
  bytes_ += slot.bytes;
  slots_.emplace(fingerprint, std::move(slot));
  evict_if_over_budget();
  return entry;
}

void ArtifactStore::swap_in(
    const std::shared_ptr<ArtifactEntry>& entry,
    std::shared_ptr<const SparseApproximateInverse> tuned, McmcParams params) {
  MCMI_CHECK(entry != nullptr && tuned != nullptr,
             "swap_in needs an entry and a preconditioner");
  std::lock_guard<std::mutex> store_lock(mutex_);
  {
    std::lock_guard<std::mutex> entry_lock(entry->mutex_);
    entry->tuned_ = std::move(tuned);
    entry->tuned_params_ = params;
    entry->state_ = BuildState::kTuned;
  }
  ++stats_.swaps;
  auto it = slots_.find(entry->fingerprint());
  if (it == slots_.end() || it->second.entry != entry) return;  // detached
  bytes_ -= it->second.bytes;
  it->second.bytes = entry->bytes();
  bytes_ += it->second.bytes;
  evict_if_over_budget();
}

StoreStats ArtifactStore::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

std::size_t ArtifactStore::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return slots_.size();
}

std::size_t ArtifactStore::bytes() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return bytes_;
}

bool ArtifactStore::contains(u64 fingerprint) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return slots_.count(fingerprint) != 0;
}

std::vector<u64> ArtifactStore::lru_fingerprints() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return {lru_.begin(), lru_.end()};
}

}  // namespace mcmi::serve
