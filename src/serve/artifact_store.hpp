#pragma once
/// @file artifact_store.hpp
/// @brief Content-addressed store of per-matrix solve artifacts — the
/// memory of the serving layer.
///
/// Every expensive thing the pipeline derives from a matrix — the tuned
/// MCMC preconditioner, the (alpha -> walk kernel) cache, the lazily built
/// SpmvPlan, the tuned (alpha, eps, delta) — is a pure function of the
/// matrix *content*, so the store keys entries by
/// CsrMatrix::content_fingerprint() (a full-content 64-bit hash over
/// shape, structure, and value bit patterns).  A 64-bit key can collide in
/// principle, so every lookup that lands on an entry verifies
/// CsrMatrix::same_content() before reporting a hit; a collision is
/// counted and treated as a miss, never served.
///
/// Entries are evicted LRU when either the entry count or the byte budget
/// is exceeded.  Eviction only unlinks the entry from the store's index —
/// requests still holding the entry's shared_ptr keep using it safely and
/// it is freed when the last holder drops it.
///
/// Thread safety: the store's index is guarded by one mutex; each entry
/// has its own mutex for its mutable artifact slots.  Lock order is
/// store -> entry (swap_in) and entries never call back into the store.

#include <chrono>
#include <cstddef>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "core/status.hpp"
#include "core/types.hpp"
#include "mcmc/params.hpp"
#include "mcmc/walk_kernel.hpp"
#include "precond/sparse_precond.hpp"
#include "sparse/csr.hpp"

namespace mcmi {
class FaultInjector;  // solve/fault_injection.hpp; scripts byte pressure
}  // namespace mcmi

namespace mcmi::serve {

/// Monotonic counters of store traffic (a snapshot; see
/// ArtifactStore::stats()).
struct StoreStats {
  u64 hits = 0;        ///< lookups that found a verified entry
  u64 misses = 0;      ///< lookups that found nothing
  u64 collisions = 0;  ///< fingerprint matched but content differed
  u64 evictions = 0;   ///< entries unlinked by LRU/byte pressure
  u64 swaps = 0;       ///< tuned preconditioners atomically swapped in
  u64 pressure_evictions = 0;  ///< evictions forced by injected byte pressure
};

/// Lifecycle of the strong (MCMC) artifact of one entry.
///
/// The kRetryWait / kFailed split is the build circuit breaker: a
/// *transient* failure (deadline, cancellation, injected fault — see
/// is_transient_build_failure) opens the breaker into kRetryWait with an
/// exponentially growing cooldown, and once the cooldown expires exactly
/// one caller's try_begin_build() claims the half-open probe build
/// (kRetryWait -> kBuilding).  A *permanent* failure (divergent walk
/// kernel, zero pivot) — or exhausting the bounded attempt budget — lands
/// in kFailed, which nothing ever leaves.
enum class BuildState {
  kCold,       ///< no build attempted yet
  kBuilding,   ///< exactly one builder owns the in-flight build
  kTuned,      ///< tuned preconditioner swapped in; warm path available
  kRetryWait,  ///< transient failure; cooldown gates the next probe build
  kFailed,     ///< build retired permanently (e.g. divergent kernel)
};

/// Human-readable build state name ("cold", "building", ...).
const char* to_string(BuildState state);

/// One matrix's cached artifacts.  Created by ArtifactStore::intern() and
/// handed out by shared_ptr, so an entry outlives its own eviction for as
/// long as any request still holds it.
class ArtifactEntry {
 public:
  /// @param fingerprint the content fingerprint the entry is keyed by
  /// @param matrix pinned copy of the matrix (shares the lazily built
  ///   SpmvPlan with every other copy of the same underlying arrays)
  ArtifactEntry(u64 fingerprint, std::shared_ptr<const CsrMatrix> matrix);

  /// The content fingerprint this entry is keyed by.
  [[nodiscard]] u64 fingerprint() const { return fingerprint_; }
  /// The pinned matrix (never null).
  [[nodiscard]] const std::shared_ptr<const CsrMatrix>& matrix() const {
    return matrix_;
  }
  /// The per-entry (alpha -> walk kernel) cache shared by every request
  /// and build against this matrix.
  [[nodiscard]] const std::shared_ptr<WalkKernelCache>& kernels() const {
    return kernels_;
  }

  /// The pinned matrix bound to an execution backend, cached per
  /// (backend, layout fingerprint) — the `(fingerprint, shard_layout)`
  /// key that lets warm serving survive a layout change: an artifact
  /// built under layout A serves under layout B from the same entry, each
  /// layout's execution built exactly once.  Concurrent callers for one
  /// layout coalesce onto a single build (the entry mutex is held across
  /// it; plan construction is O(nnz) and never calls back into the
  /// store).  kSingle with an empty layout returns the pinned matrix
  /// itself.
  [[nodiscard]] std::shared_ptr<const CsrMatrix> matrix_for(
      PlanBackend backend, const ShardLayout& layout);

  /// Backend-bound matrix builds performed so far (the coalescing tests'
  /// double-build detector).
  [[nodiscard]] u64 plan_builds() const;

  /// The tuned MCMC preconditioner, or null while cold/building/failed.
  [[nodiscard]] std::shared_ptr<const SparseApproximateInverse> tuned() const;
  /// The tuned (alpha, eps, delta); meaningful once state() == kTuned.
  [[nodiscard]] McmcParams tuned_params() const;
  /// Current build lifecycle state.
  [[nodiscard]] BuildState state() const;

  /// Claim the build slot: flips kCold -> kBuilding (or, once the cooldown
  /// has expired, kRetryWait -> kBuilding for the half-open probe) and
  /// returns true for exactly one caller; every other caller (and every
  /// other state) gets false.  This is both the coalescing primitive — K
  /// concurrent requests race here and exactly one schedules the MCMC
  /// build — and the circuit breaker's probe gate.
  [[nodiscard]] bool try_begin_build();

  /// Record a failed build (kBuilding -> kRetryWait | kFailed) with its
  /// cause.  A transient `cause` with attempts left opens the breaker:
  /// kRetryWait with cooldown `cooldown_seconds * 2^(failures-1)`.  A
  /// permanent cause — or the `max_attempts`-th failure — retires the
  /// entry for good (kFailed): requests keep being served by the fallback
  /// rungs and nobody retries.  The defaults reproduce the pre-breaker
  /// behaviour (any failure retires).
  void mark_build_failed(BuildStatus cause = BuildStatus::kDivergentKernel,
                         index_t max_attempts = 1,
                         real_t cooldown_seconds = 0.0);

  /// Cause of the most recent build failure (kBuilt while none happened).
  [[nodiscard]] BuildStatus failure_cause() const;
  /// Build attempts that have *failed* so far (probes included).
  [[nodiscard]] index_t build_failures() const;
  /// True when the entry is in kRetryWait and the cooldown has expired,
  /// i.e. the next try_begin_build() will claim the probe.
  [[nodiscard]] bool retry_ready() const;
  /// Seconds until the current cooldown expires (0 when not cooling down).
  [[nodiscard]] real_t cooldown_remaining_seconds() const;

  /// Approximate resident bytes (matrix arrays + tuned preconditioner
  /// arrays); the store's byte budget sums this over live entries.
  [[nodiscard]] std::size_t bytes() const;

 private:
  friend class ArtifactStore;  // swap_in writes the tuned slots

  static std::size_t matrix_bytes(const CsrMatrix& m);

  const u64 fingerprint_;
  const std::shared_ptr<const CsrMatrix> matrix_;
  const std::shared_ptr<WalkKernelCache> kernels_;

  using clock = std::chrono::steady_clock;

  mutable std::mutex mutex_;
  BuildState state_ = BuildState::kCold;
  std::shared_ptr<const SparseApproximateInverse> tuned_;
  McmcParams tuned_params_{};
  // Circuit-breaker bookkeeping (all guarded by mutex_).
  BuildStatus failure_cause_ = BuildStatus::kBuilt;
  index_t build_failures_ = 0;
  clock::time_point cooldown_until_{};
  /// (backend, layout fingerprint) -> pinned matrix with that execution
  /// bound (guarded by mutex_).  The copies share the row/col/value
  /// arrays' content and the lazy single-plan cache with matrix_; only
  /// the execution policy differs.
  std::unordered_map<u64, std::shared_ptr<const CsrMatrix>> bound_matrices_;
  u64 plan_builds_ = 0;
};

/// Capacity budgets of the store; eviction triggers when either is
/// exceeded.
struct StoreLimits {
  std::size_t max_entries = 64;        ///< entry-count budget
  std::size_t max_bytes = 256u << 20;  ///< resident-byte budget
};

/// Content-addressed, LRU+byte-bounded store of ArtifactEntry objects.
class ArtifactStore {
 public:
  using Limits = StoreLimits;

  explicit ArtifactStore(Limits limits = {});

  /// Look up the entry for `a` by content fingerprint, verifying content
  /// on a hit.  Returns null on miss or collision (both counted).
  [[nodiscard]] std::shared_ptr<ArtifactEntry> find(const CsrMatrix& a);

  /// Keyed lookup used by collision tests and by callers that already
  /// computed the fingerprint: same semantics as find(a) but trusts the
  /// caller's `fingerprint` instead of rehashing.
  [[nodiscard]] std::shared_ptr<ArtifactEntry> find(u64 fingerprint,
                                                    const CsrMatrix& a);

  /// Find-or-create: returns the verified entry for `a`, inserting (and
  /// possibly evicting) if absent.  On a fingerprint collision the new
  /// entry is returned *detached* — fully usable by its requests but not
  /// inserted, so the resident entry is never displaced by an impostor.
  [[nodiscard]] std::shared_ptr<ArtifactEntry> intern(const CsrMatrix& a);

  /// Atomically publish the tuned preconditioner for `entry`
  /// (kBuilding -> kTuned), update the byte accounting, and evict if the
  /// new bytes exceed the budget.  Requests that observe tuned() != null
  /// from this point use it; in-flight solves are unaffected.
  /// @param entry the entry whose build completed
  /// @param tuned the preconditioner to publish (must not be null)
  /// @param params the tuned (alpha, eps, delta) that produced it
  void swap_in(const std::shared_ptr<ArtifactEntry>& entry,
               std::shared_ptr<const SparseApproximateInverse> tuned,
               McmcParams params);

  /// Attach a fault injector (not owned; may be null): its scripted
  /// store byte pressure is added to the accounted bytes whenever the
  /// budget is checked, so tests can force eviction storms without
  /// allocating.  Production stores never set this.
  void set_fault_injector(FaultInjector* faults) { faults_ = faults; }

  /// Counter snapshot (consistent under the store mutex).
  [[nodiscard]] StoreStats stats() const;
  /// Live (inserted, non-evicted) entry count.
  [[nodiscard]] std::size_t size() const;
  /// Resident bytes across live entries.
  [[nodiscard]] std::size_t bytes() const;
  /// True when `fingerprint` is currently resident.
  [[nodiscard]] bool contains(u64 fingerprint) const;
  /// Resident fingerprints, most recently used first (for tests/ops).
  [[nodiscard]] std::vector<u64> lru_fingerprints() const;

 private:
  struct Slot {
    std::shared_ptr<ArtifactEntry> entry;
    std::list<u64>::iterator lru_pos;
    std::size_t bytes = 0;  ///< accounted bytes (updated on swap_in)
  };

  // All three require mutex_ held.
  void touch(Slot& slot);
  void evict_if_over_budget();
  std::shared_ptr<ArtifactEntry> lookup_verified(u64 fingerprint,
                                                 const CsrMatrix& a);

  const Limits limits_;
  FaultInjector* faults_ = nullptr;  ///< optional scripted byte pressure
  mutable std::mutex mutex_;
  std::unordered_map<u64, Slot> slots_;
  std::list<u64> lru_;  ///< front = most recently used
  std::size_t bytes_ = 0;
  StoreStats stats_;
};

}  // namespace mcmi::serve
