#pragma once
/// @file telemetry.hpp
/// @brief Serving-layer observability primitives: fixed-bucket latency
/// histograms and a bounded ring-buffer event log.
///
/// Both types are deliberately dumb containers — no locking, no clocks.
/// The SolveService owns them behind its own mutex and stamps event times
/// itself, so a stats() snapshot is one memcpy-ish copy and the hot path
/// pays a handful of integer increments per request.

#include <array>
#include <cstddef>
#include <vector>

#include "core/types.hpp"

namespace mcmi::serve {

/// Fixed-bucket wall-clock latency histogram (seconds).  The bucket edges
/// are compile-time constants — roughly logarithmic from 0.1 ms to 10 s
/// plus an overflow bucket — so snapshots from different services (or
/// different runs) are always directly comparable, bucket by bucket.
struct LatencyHistogram {
  /// Upper bounds (inclusive) of each bucket except the last, in seconds;
  /// the final bucket catches everything slower.
  static constexpr std::array<real_t, 11> kUpperBounds = {
      1e-4, 3e-4, 1e-3, 3e-3, 1e-2, 3e-2, 0.1, 0.3, 1.0, 3.0, 10.0};
  static constexpr std::size_t kBuckets = kUpperBounds.size() + 1;

  std::array<u64, kBuckets> counts{};  ///< per-bucket sample counts
  u64 total_count = 0;                 ///< samples recorded
  real_t total_seconds = 0;            ///< sum of all samples

  /// Record one sample (negative values clamp into the first bucket).
  void record(real_t seconds);

  /// Mean of all recorded samples (0 when empty).
  [[nodiscard]] real_t mean_seconds() const {
    return total_count == 0 ? 0.0
                            : total_seconds / static_cast<real_t>(total_count);
  }

  /// Upper-bound estimate of the q-quantile (q in [0, 1]): the upper edge
  /// of the bucket containing the q-th sample.  Coarse by design — the
  /// histogram trades resolution for fixed memory and mergeability.
  [[nodiscard]] real_t quantile_upper_bound(real_t q) const;
};

/// What happened, for the ops event log.  One enumerator per decision the
/// overload/fault machinery can take — the log answers "why did my request
/// not run?" without a debugger.
enum class ServiceEventType {
  kShed,               ///< queued job evicted by a higher-priority arrival
  kExpired,            ///< queued job completed past-deadline by the sweep
  kCancelled,          ///< job ended by explicit cancellation
  kCompleted,          ///< job finished a solve (any numerical status)
  kRejected,           ///< submission refused at admission
  kBuildScheduled,     ///< background build enqueued (includes probes)
  kBuildCompleted,     ///< build swapped a tuned preconditioner in
  kBuildTransient,     ///< build failed transiently; entry cooling down
  kBuildRetired,       ///< build failed permanently; entry retired
  kWatchdogBuildKill,  ///< watchdog cancelled a build stuck past its budget
  kWatchdogSolveKill,  ///< watchdog cancelled a solve stuck past deadline
  kStorePressure,      ///< injected byte-pressure spike forced eviction
};

/// Event-type name ("shed", "expired", ...).
const char* to_string(ServiceEventType type);

/// One entry of the service event log.
struct ServiceEvent {
  real_t seconds = 0;      ///< service-relative timestamp (start = 0)
  ServiceEventType type = ServiceEventType::kCompleted;
  u64 fingerprint = 0;     ///< matrix fingerprint involved (0 when n/a)
  const char* detail = ""; ///< static detail string (e.g. a status name)
};

/// Bounded ring buffer of ServiceEvents: push() overwrites the oldest
/// entry once `capacity` is reached, snapshot() returns oldest-first.
/// Not thread-safe — the owner serializes access (the SolveService holds
/// its stats mutex around both).
class EventLog {
 public:
  explicit EventLog(std::size_t capacity);

  void push(const ServiceEvent& event);
  /// Events in arrival order, oldest first (at most `capacity` of them).
  [[nodiscard]] std::vector<ServiceEvent> snapshot() const;
  /// Events pushed over the log's lifetime (>= snapshot().size()).
  [[nodiscard]] u64 pushed() const { return pushed_; }

 private:
  std::vector<ServiceEvent> ring_;
  std::size_t capacity_;
  std::size_t next_ = 0;  ///< ring slot the next push lands in
  u64 pushed_ = 0;
};

}  // namespace mcmi::serve
