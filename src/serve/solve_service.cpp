#include "serve/solve_service.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>

#include "core/error.hpp"
#include "core/timer.hpp"
#include "solve/fault_injection.hpp"

namespace mcmi::serve {

namespace detail {

struct JobState {
  std::mutex mutex;
  std::condition_variable cv;
  bool done = false;
  CancelToken token;
  ServeRequest request;
  std::shared_ptr<ArtifactEntry> entry;
  std::vector<real_t> rhs;
  ServeResult result;
  WallTimer timer;  ///< started at submit; clocks queue + total time
};

}  // namespace detail

using detail::JobState;

ServeResult ServeHandle::wait() const {
  MCMI_CHECK(state_ != nullptr, "waiting on an empty handle");
  std::unique_lock<std::mutex> lock(state_->mutex);
  state_->cv.wait(lock, [&] { return state_->done; });
  return state_->result;
}

const ServeResult& ServeHandle::wait_ref() const {
  MCMI_CHECK(state_ != nullptr, "waiting on an empty handle");
  std::unique_lock<std::mutex> lock(state_->mutex);
  state_->cv.wait(lock, [&] { return state_->done; });
  return state_->result;
}

bool ServeHandle::wait_for(real_t seconds) const {
  MCMI_CHECK(state_ != nullptr, "waiting on an empty handle");
  std::unique_lock<std::mutex> lock(state_->mutex);
  return state_->cv.wait_for(lock,
                             std::chrono::duration<real_t>(seconds),
                             [&] { return state_->done; });
}

bool ServeHandle::done() const {
  if (state_ == nullptr) return false;
  std::lock_guard<std::mutex> lock(state_->mutex);
  return state_->done;
}

void ServeHandle::cancel() const {
  if (state_ != nullptr) state_->token.request_cancel();
}

SolveService::SolveService(ServiceOptions options)
    : options_(std::move(options)),
      store_(options_.store),
      events_(options_.event_log_capacity) {
  MCMI_CHECK(options_.workers >= 1, "service needs at least one worker");
  MCMI_CHECK(options_.queue_capacity >= 1, "queue capacity must be >= 1");
  store_.set_fault_injector(options_.faults);
  paused_ = options_.start_paused;
  workers_.reserve(options_.workers);
  for (std::size_t i = 0; i < options_.workers; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
  const std::size_t builders =
      options_.build_on_cold ? std::max<std::size_t>(options_.builders, 1)
                             : options_.builders;
  builders_.reserve(builders);
  for (std::size_t i = 0; i < builders; ++i) {
    builders_.emplace_back([this] { builder_loop(); });
  }
  if (options_.watchdog_period_seconds > 0) {
    watchdog_ = std::thread([this] { watchdog_loop(); });
  }
}

SolveService::~SolveService() { shutdown(); }

void SolveService::record_event_locked(ServiceEventType type, u64 fingerprint,
                                       const char* detail) {
  ServiceEvent event;
  event.seconds =
      std::chrono::duration<real_t>(CancelToken::clock::now() - epoch_)
          .count();
  event.type = type;
  event.fingerprint = fingerprint;
  event.detail = detail;
  events_.push(event);
}

void SolveService::account_terminal_locked(const JobState& job) {
  const SolveStatus status = job.result.report.status;
  switch (status) {
    case SolveStatus::kRejected:
      ++stats_.shed;
      record_event_locked(ServiceEventType::kShed, job.result.fingerprint,
                          "evicted by higher priority");
      break;
    case SolveStatus::kCancelled:
      ++stats_.cancelled;
      record_event_locked(ServiceEventType::kCancelled,
                          job.result.fingerprint,
                          job.result.solve_ran ? "mid-solve" : "queued");
      break;
    case SolveStatus::kDeadlineExceeded:
      ++stats_.expired;
      record_event_locked(ServiceEventType::kExpired, job.result.fingerprint,
                          job.result.solve_ran ? "mid-solve" : "queued");
      break;
    default:
      ++stats_.completed;
      record_event_locked(ServiceEventType::kCompleted,
                          job.result.fingerprint, to_string(status));
      break;
  }
  stats_.queue_wait.record(job.result.queue_seconds);
  stats_.total.record(job.result.total_seconds);
  if (job.result.solve_ran) {
    stats_.solve.record(job.result.report.total_seconds);
  }
}

void SolveService::complete_job(const std::shared_ptr<JobState>& job) {
  job->result.total_seconds = job->timer.seconds();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    account_terminal_locked(*job);
  }
  {
    std::lock_guard<std::mutex> lock(job->mutex);
    job->done = true;
  }
  job->cv.notify_all();
  drain_cv_.notify_all();
}

ServeHandle SolveService::submit(const CsrMatrix& a, std::vector<real_t> rhs,
                                 const ServeRequest& request) {
  MCMI_CHECK(static_cast<index_t>(rhs.size()) == a.rows(),
             "rhs size must match the matrix");
  {
    // Cheap pre-check so a shutdown-time submit never interns the matrix.
    std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_) {
      ++stats_.rejected_shutdown;
      record_event_locked(ServiceEventType::kRejected, 0, "shutdown");
      return {};
    }
  }

  auto job = std::make_shared<JobState>();
  job->request = request;
  job->rhs = std::move(rhs);
  job->entry = store_.intern(a);
  job->result.fingerprint = job->entry->fingerprint();
  job->token.chain_to(&shutdown_token_);
  if (std::isfinite(request.deadline_seconds)) {
    // Deadline stamped at submit: queue wait counts against the request.
    job->token.set_deadline(request.deadline_seconds);
  }

  if (job->token.should_stop()) {
    // Dead on arrival (deadline <= 0, or shutdown raced the pre-check):
    // accepted and completed immediately, never queued — no worker, no
    // queue slot, no build.
    job->result.report.status = stop_reason(job->token);
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (stopping_) {
        ++stats_.rejected_shutdown;
        record_event_locked(ServiceEventType::kRejected, 0, "shutdown");
        return {};
      }
      ++stats_.submitted;
    }
    complete_job(job);
    return ServeHandle(job);
  }

  std::shared_ptr<JobState> victim;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_) {
      ++stats_.rejected_shutdown;
      record_event_locked(ServiceEventType::kRejected, 0, "shutdown");
      return {};
    }
    if (queue_.size() >= options_.queue_capacity) {
      // Load shedding: a strictly higher-priority arrival evicts the most
      // expendable queued job — lowest priority, oldest among equals —
      // instead of being refused.  The map is keyed (-priority, seq), so
      // the victim group is the one holding the *largest* key; its oldest
      // member is the group's lower bound.
      const index_t worst_key = std::prev(queue_.end())->first.first;
      if (request.priority > -worst_key) {
        auto vit = queue_.lower_bound({worst_key, 0});
        victim = vit->second;
        queue_.erase(vit);
        victim->result.report.status = SolveStatus::kRejected;
        victim->result.queue_seconds = victim->timer.seconds();
      } else {
        ++stats_.rejected_capacity;
        record_event_locked(ServiceEventType::kRejected,
                            job->entry->fingerprint(), "capacity");
        return {};
      }
    }
    queue_.emplace(std::make_pair(-request.priority, next_seq_++), job);
    ++stats_.submitted;
  }
  if (victim != nullptr) complete_job(victim);
  work_cv_.notify_one();
  return ServeHandle(job);
}

void SolveService::worker_loop() {
  for (;;) {
    std::shared_ptr<JobState> job;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_cv_.wait(lock, [&] {
        return stopping_ || (!paused_ && !queue_.empty());
      });
      if (stopping_) return;
      job = queue_.begin()->second;
      queue_.erase(queue_.begin());
      ++running_;
      active_jobs_.push_back(job);
    }
    run_job(job);
    {
      std::lock_guard<std::mutex> lock(mutex_);
      --running_;
      active_jobs_.erase(
          std::find(active_jobs_.begin(), active_jobs_.end(), job));
    }
    drain_cv_.notify_all();
  }
}

void SolveService::run_job(const std::shared_ptr<JobState>& job) {
  job->result.queue_seconds = job->timer.seconds();

  if (job->token.should_stop()) {
    // Cancelled or past deadline while queued (the watchdog sweep usually
    // harvests these first; this is the at-pickup backstop): complete
    // without solving.
    job->result.report.status = stop_reason(job->token);
    complete_job(job);
    return;
  }

  // Warm-vs-cold admission: the decision point is the worker pickup, so a
  // request that waited through a swap_in gets the warm path.
  auto tuned = job->entry->tuned();
  const bool warm = tuned != nullptr;
  if (!warm && options_.build_on_cold) schedule_build(job->entry);

  SolveRequest sreq;
  sreq.tolerance = job->request.tolerance;
  sreq.max_iterations = job->request.max_iterations;
  sreq.restart = job->request.restart;
  sreq.method = job->request.method;
  sreq.external_cancel = &job->token;  // deadline + cancel live on the token
  if (warm) {
    // The tuned preconditioner is *supplied*: the MCMC rung skips its
    // build and applies the store's P (fallback rungs remain below it).
    sreq.supply(SolveStage::kMcmc, std::move(tuned));
    sreq.mcmc_params = job->entry->tuned_params();
  } else {
    // Cold path: serve now from the cheap rungs; the MCMC build (if any)
    // is already on its way through the builder pool.
    sreq.ladder = {
        {SolveStage::kIlu0, 0.0, 1, 0.0},
        {SolveStage::kJacobi, 0.0, 1, 0.0},
        {SolveStage::kIdentity, 0.0, 1, 0.0},
    };
  }

  // The operator the solve runs against: the pinned matrix, or — under a
  // configured shard count — the entry's cached copy bound to the sharded
  // backend (keyed by (fingerprint, shard_layout), built once per layout).
  std::shared_ptr<const CsrMatrix> matrix = job->entry->matrix();
  if (options_.solve_shards > 0) {
    matrix = job->entry->matrix_for(
        PlanBackend::kShardedThreads,
        ShardLayout::nnz_balanced(options_.solve_shards, matrix->row_ptr()));
  }
  SolveOrchestrator orchestrator(*matrix);
  orchestrator.set_kernel_cache(job->entry->kernels().get());
  job->result.x.assign(job->rhs.size(), 0.0);
  job->result.report = orchestrator.solve(job->rhs, job->result.x, sreq);
  job->result.solve_ran = true;
  job->result.warm = warm;

  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (warm) {
      ++stats_.warm_requests;
    } else {
      ++stats_.cold_requests;
    }
  }
  complete_job(job);
}

void SolveService::schedule_build(
    const std::shared_ptr<ArtifactEntry>& entry) {
  // A claim that follows earlier failures is the circuit breaker's
  // half-open probe (try_begin_build only grants it once the cooldown has
  // expired); a first claim is the ordinary cold build.
  const bool probe = entry->build_failures() > 0;
  if (entry->try_begin_build()) {
    bool scheduled = false;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (!stopping_) {
        build_queue_.push_back({entry});
        ++stats_.builds_started;
        if (probe) ++stats_.builds_retried;
        record_event_locked(ServiceEventType::kBuildScheduled,
                            entry->fingerprint(), probe ? "probe" : "cold");
        scheduled = true;
      }
    }
    if (scheduled) {
      build_cv_.notify_one();
    } else {
      retire_or_cool_down(entry, BuildStatus::kCancelled);
    }
  } else if (entry->state() == BuildState::kBuilding) {
    // Coalesced: this request's fingerprint already has a build in
    // flight; it joins the same eventual swap_in instead of scheduling.
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.coalesced_builds;
  }
}

void SolveService::builder_loop() {
  for (;;) {
    BuildJob build;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      build_cv_.wait(lock, [&] { return stopping_ || !build_queue_.empty(); });
      if (stopping_) return;
      build = std::move(build_queue_.front());
      build_queue_.pop_front();
      ++building_;
    }
    run_build(build);
    {
      std::lock_guard<std::mutex> lock(mutex_);
      --building_;
    }
    drain_cv_.notify_all();
  }
}

void SolveService::retire_or_cool_down(
    const std::shared_ptr<ArtifactEntry>& entry, BuildStatus cause) {
  entry->mark_build_failed(cause, options_.max_build_attempts,
                           options_.build_cooldown_seconds);
  std::lock_guard<std::mutex> lock(mutex_);
  if (entry->state() == BuildState::kRetryWait) {
    ++stats_.builds_transient;
    record_event_locked(ServiceEventType::kBuildTransient,
                        entry->fingerprint(), to_string(cause));
  } else {
    ++stats_.builds_failed;
    record_event_locked(ServiceEventType::kBuildRetired, entry->fingerprint(),
                        to_string(cause));
  }
}

void SolveService::run_build(const BuildJob& build) {
  const CsrMatrix& a = *build.entry->matrix();

  // Every background build runs under its own token: the budget bounds
  // tuner + build together, shutdown chains in, and the watchdog holds a
  // reference so it can reap a build that stops polling.
  auto token = std::make_shared<CancelToken>();
  token->chain_to(&shutdown_token_);
  if (options_.build_budget_seconds > 0) {
    token->set_deadline(options_.build_budget_seconds);
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    active_builds_.push_back(
        {build.entry, token, CancelToken::clock::now()});
  }

  BuildStatus status = BuildStatus::kBuilt;
  CsrMatrix pm;
  McmcParams params = options_.mcmc_params;

  FaultInjector::ServiceBuildFault fault;
  if (options_.faults != nullptr) {
    fault = options_.faults->next_service_build();
  }
  if (fault.hang) {
    // Scripted non-polling hang: only an explicit cancel (watchdog
    // intervention or shutdown) wakes it — the deadline is a cooperative
    // construct a hung build by definition ignores.
    while (!token->cancel_requested()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    status = BuildStatus::kCancelled;
  } else if (fault.fail) {
    status = fault.status;
  } else {
    if (options_.tune && !token->should_stop()) {
      PerformanceMeasurer measurer(a, options_.tune_solve_options,
                                   options_.mcmc_options);
      hpo::McmcTuneOptions tune_options = options_.tune_options;
      tune_options.cancel = token.get();
      const hpo::McmcTuneResult tuned =
          hpo::tune_mcmc_params(measurer, options_.tune_method, tune_options);
      // A cancelled first round leaves no history; keep the fallback params.
      if (!tuned.history.empty()) params = tuned.best;
    }
    if (token->should_stop()) {
      status = build_stop_reason(*token);
    } else {
      McmcOptions mcmc_options = options_.mcmc_options;
      mcmc_options.cancel = token.get();
      McmcInverter inverter(a, params, mcmc_options);
      inverter.set_kernel_cache(build.entry->kernels().get());
      pm = inverter.compute();
      const McmcBuildInfo& info = inverter.info();
      if (info.status != BuildStatus::kBuilt) {
        status = info.status;
      } else if (!info.neumann_convergent) {
        status = BuildStatus::kDivergentKernel;
      }
    }
  }

  {
    std::lock_guard<std::mutex> lock(mutex_);
    active_builds_.erase(
        std::find_if(active_builds_.begin(), active_builds_.end(),
                     [&](const ActiveBuild& b) { return b.token == token; }));
  }

  if (status == BuildStatus::kBuilt) {
    auto tuned =
        std::make_shared<SparseApproximateInverse>(std::move(pm), "mcmc");
    if (options_.solve_shards > 0) {
      // Bind the tuned P to the serving backend once, here, instead of per
      // request: the SPAI is shared by every warm solve from now on.
      tuned->set_plan_backend(PlanBackend::kShardedThreads,
                              ShardLayout::nnz_balanced(
                                  options_.solve_shards,
                                  tuned->matrix().row_ptr()));
    }
    store_.swap_in(build.entry, std::move(tuned), params);
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.builds_completed;
    record_event_locked(ServiceEventType::kBuildCompleted,
                        build.entry->fingerprint(), "swapped in");
  } else {
    // Cause-aware retirement: transient failures (deadline, cancel,
    // injected fault) cool down in kRetryWait for a bounded number of
    // probe rebuilds; permanent ones (divergent kernel, zero pivot)
    // retire the fingerprint — requests stay on the fallback rungs and
    // no rebuild storm follows either way.
    retire_or_cool_down(build.entry, status);
  }
}

void SolveService::watchdog_loop() {
  const auto period =
      std::chrono::duration<real_t>(options_.watchdog_period_seconds);
  std::unique_lock<std::mutex> lock(mutex_);
  while (!stopping_) {
    watchdog_cv_.wait_for(lock, period, [&] { return stopping_; });
    if (stopping_) return;

    // (1) Proactive expiry sweep: complete already-expired (or cancelled)
    // queued jobs without consuming a worker — under overload, expired
    // jobs must not occupy queue slots or worker pickups.
    std::vector<std::shared_ptr<JobState>> harvested;
    for (auto it = queue_.begin(); it != queue_.end();) {
      JobState& job = *it->second;
      if (job.token.should_stop()) {
        job.result.report.status = stop_reason(job.token);
        job.result.queue_seconds = job.timer.seconds();
        harvested.push_back(it->second);
        it = queue_.erase(it);
      } else {
        ++it;
      }
    }

    // (2) Builds stuck past their budget + grace: a polling build would
    // have stopped itself at the deadline, so anything still running is
    // presumed hung — fire its token and let the builder recover.
    if (options_.build_budget_seconds > 0) {
      const auto now = CancelToken::clock::now();
      const real_t limit =
          options_.build_budget_seconds + options_.watchdog_grace_seconds;
      for (ActiveBuild& b : active_builds_) {
        const real_t age =
            std::chrono::duration<real_t>(now - b.start).count();
        if (age > limit && !b.token->cancel_requested()) {
          b.token->request_cancel();
          ++stats_.watchdog_build_kills;
          record_event_locked(ServiceEventType::kWatchdogBuildKill,
                              b.entry->fingerprint(), "stuck past budget");
        }
      }
    }

    // (3) Solves stuck past their deadline + grace, same presumption.
    for (const std::shared_ptr<JobState>& job : active_jobs_) {
      if (job->token.overdue_seconds() > options_.watchdog_grace_seconds &&
          !job->token.cancel_requested()) {
        job->token.request_cancel();
        ++stats_.watchdog_solve_kills;
        record_event_locked(ServiceEventType::kWatchdogSolveKill,
                            job->result.fingerprint, "stuck past deadline");
      }
    }

    if (!harvested.empty()) {
      lock.unlock();
      for (const auto& job : harvested) complete_job(job);
      lock.lock();
    }
  }
}

void SolveService::drain() {
  std::unique_lock<std::mutex> lock(mutex_);
  drain_cv_.wait(lock, [&] {
    return queue_.empty() && running_ == 0 && build_queue_.empty() &&
           building_ == 0;
  });
}

void SolveService::pause() {
  std::lock_guard<std::mutex> lock(mutex_);
  paused_ = true;
}

void SolveService::resume() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    paused_ = false;
  }
  work_cv_.notify_all();
  drain_cv_.notify_all();
}

void SolveService::shutdown() {
  std::vector<std::shared_ptr<JobState>> orphans;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
    for (auto& [key, job] : queue_) orphans.push_back(job);
    queue_.clear();
    build_queue_.clear();
  }
  shutdown_token_.request_cancel();
  work_cv_.notify_all();
  build_cv_.notify_all();
  drain_cv_.notify_all();
  watchdog_cv_.notify_all();

  for (const auto& job : orphans) {
    job->result.report.status = SolveStatus::kCancelled;
    complete_job(job);
  }
  for (std::thread& t : workers_) {
    if (t.joinable()) t.join();
  }
  for (std::thread& t : builders_) {
    if (t.joinable()) t.join();
  }
  if (watchdog_.joinable()) watchdog_.join();
}

ServiceStats SolveService::stats() const {
  ServiceStats out;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    out = stats_;
  }
  out.rejected = out.rejected_capacity + out.rejected_shutdown;
  out.store = store_.stats();
  return out;
}

std::vector<ServiceEvent> SolveService::recent_events() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return events_.snapshot();
}

}  // namespace mcmi::serve
