#include "serve/solve_service.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>

#include "core/error.hpp"
#include "core/timer.hpp"

namespace mcmi::serve {

namespace detail {

struct JobState {
  std::mutex mutex;
  std::condition_variable cv;
  bool done = false;
  CancelToken token;
  ServeRequest request;
  std::shared_ptr<ArtifactEntry> entry;
  std::vector<real_t> rhs;
  ServeResult result;
  WallTimer timer;  ///< started at submit; clocks queue + total time
};

}  // namespace detail

using detail::JobState;

const ServeResult& ServeHandle::wait() const {
  MCMI_CHECK(state_ != nullptr, "waiting on an empty handle");
  std::unique_lock<std::mutex> lock(state_->mutex);
  state_->cv.wait(lock, [&] { return state_->done; });
  return state_->result;
}

bool ServeHandle::wait_for(real_t seconds) const {
  MCMI_CHECK(state_ != nullptr, "waiting on an empty handle");
  std::unique_lock<std::mutex> lock(state_->mutex);
  return state_->cv.wait_for(lock,
                             std::chrono::duration<real_t>(seconds),
                             [&] { return state_->done; });
}

bool ServeHandle::done() const {
  if (state_ == nullptr) return false;
  std::lock_guard<std::mutex> lock(state_->mutex);
  return state_->done;
}

void ServeHandle::cancel() const {
  if (state_ != nullptr) state_->token.request_cancel();
}

SolveService::SolveService(ServiceOptions options)
    : options_(std::move(options)), store_(options_.store) {
  MCMI_CHECK(options_.workers >= 1, "service needs at least one worker");
  MCMI_CHECK(options_.queue_capacity >= 1, "queue capacity must be >= 1");
  paused_ = options_.start_paused;
  workers_.reserve(options_.workers);
  for (std::size_t i = 0; i < options_.workers; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
  const std::size_t builders =
      options_.build_on_cold ? std::max<std::size_t>(options_.builders, 1)
                             : options_.builders;
  builders_.reserve(builders);
  for (std::size_t i = 0; i < builders; ++i) {
    builders_.emplace_back([this] { builder_loop(); });
  }
}

SolveService::~SolveService() { shutdown(); }

ServeHandle SolveService::submit(const CsrMatrix& a, std::vector<real_t> rhs,
                                 const ServeRequest& request) {
  MCMI_CHECK(static_cast<index_t>(rhs.size()) == a.rows(),
             "rhs size must match the matrix");
  {
    // Optimistic admission check before touching the store, so a full
    // queue rejects without interning the matrix.
    std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_ || queue_.size() >= options_.queue_capacity) {
      ++stats_.rejected;
      return {};
    }
  }

  auto job = std::make_shared<JobState>();
  job->request = request;
  job->rhs = std::move(rhs);
  job->entry = store_.intern(a);
  job->result.fingerprint = job->entry->fingerprint();
  job->token.chain_to(&shutdown_token_);
  if (std::isfinite(request.deadline_seconds)) {
    // Deadline stamped at submit: queue wait counts against the request.
    job->token.set_deadline(request.deadline_seconds);
  }

  {
    std::lock_guard<std::mutex> lock(mutex_);
    // Authoritative re-check: capacity may have filled meanwhile.
    if (stopping_ || queue_.size() >= options_.queue_capacity) {
      ++stats_.rejected;
      return {};
    }
    queue_.emplace(std::make_pair(-request.priority, next_seq_++), job);
    ++stats_.submitted;
  }
  work_cv_.notify_one();
  return ServeHandle(job);
}

void SolveService::worker_loop() {
  for (;;) {
    std::shared_ptr<JobState> job;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_cv_.wait(lock, [&] {
        return stopping_ || (!paused_ && !queue_.empty());
      });
      if (stopping_) return;
      job = queue_.begin()->second;
      queue_.erase(queue_.begin());
      ++running_;
    }
    run_job(job);
    {
      std::lock_guard<std::mutex> lock(mutex_);
      --running_;
    }
    drain_cv_.notify_all();
  }
}

void SolveService::run_job(const std::shared_ptr<JobState>& job) {
  job->result.queue_seconds = job->timer.seconds();

  if (job->token.should_stop()) {
    // Cancelled (or past deadline) while queued: complete without solving.
    job->result.report.status = stop_reason(job->token);
    {
      std::lock_guard<std::mutex> lock(mutex_);
      ++stats_.completed;
      if (job->token.cancel_requested()) ++stats_.cancelled;
    }
    finish_job(job);
    return;
  }

  // Warm-vs-cold admission: the decision point is the worker pickup, so a
  // request that waited through a swap_in gets the warm path.
  auto tuned = job->entry->tuned();
  const bool warm = tuned != nullptr;
  if (!warm && options_.build_on_cold) schedule_build(job->entry);

  SolveRequest sreq;
  sreq.tolerance = job->request.tolerance;
  sreq.max_iterations = job->request.max_iterations;
  sreq.restart = job->request.restart;
  sreq.method = job->request.method;
  sreq.external_cancel = &job->token;  // deadline + cancel live on the token
  if (warm) {
    // The tuned preconditioner is *supplied*: the MCMC rung skips its
    // build and applies the store's P (fallback rungs remain below it).
    sreq.supply(SolveStage::kMcmc, std::move(tuned));
    sreq.mcmc_params = job->entry->tuned_params();
  } else {
    // Cold path: serve now from the cheap rungs; the MCMC build (if any)
    // is already on its way through the builder pool.
    sreq.ladder = {
        {SolveStage::kIlu0, 0.0, 1, 0.0},
        {SolveStage::kJacobi, 0.0, 1, 0.0},
        {SolveStage::kIdentity, 0.0, 1, 0.0},
    };
  }

  SolveOrchestrator orchestrator(*job->entry->matrix());
  orchestrator.set_kernel_cache(job->entry->kernels().get());
  job->result.x.assign(job->rhs.size(), 0.0);
  job->result.report = orchestrator.solve(job->rhs, job->result.x, sreq);
  job->result.solve_ran = true;
  job->result.warm = warm;

  {
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.completed;
    if (job->result.report.status == SolveStatus::kCancelled) {
      ++stats_.cancelled;
    }
    if (warm) {
      ++stats_.warm_requests;
    } else {
      ++stats_.cold_requests;
    }
  }
  finish_job(job);
}

void SolveService::schedule_build(
    const std::shared_ptr<ArtifactEntry>& entry) {
  if (entry->try_begin_build()) {
    bool scheduled = false;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (!stopping_) {
        build_queue_.push_back({entry});
        ++stats_.builds_started;
        scheduled = true;
      }
    }
    if (scheduled) {
      build_cv_.notify_one();
    } else {
      entry->mark_build_failed();
    }
  } else if (entry->state() == BuildState::kBuilding) {
    // Coalesced: this request's fingerprint already has a build in
    // flight; it joins the same eventual swap_in instead of scheduling.
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.coalesced_builds;
  }
}

void SolveService::builder_loop() {
  for (;;) {
    BuildJob build;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      build_cv_.wait(lock, [&] { return stopping_ || !build_queue_.empty(); });
      if (stopping_) return;
      build = std::move(build_queue_.front());
      build_queue_.pop_front();
      ++building_;
    }
    run_build(build);
    {
      std::lock_guard<std::mutex> lock(mutex_);
      --building_;
    }
    drain_cv_.notify_all();
  }
}

void SolveService::run_build(const BuildJob& build) {
  const CsrMatrix& a = *build.entry->matrix();

  McmcParams params = options_.mcmc_params;
  if (options_.tune && !shutdown_token_.should_stop()) {
    PerformanceMeasurer measurer(a, options_.tune_solve_options,
                                 options_.mcmc_options);
    hpo::McmcTuneOptions tune_options = options_.tune_options;
    tune_options.cancel = &shutdown_token_;
    const hpo::McmcTuneResult tuned =
        hpo::tune_mcmc_params(measurer, options_.tune_method, tune_options);
    // A cancelled first round leaves no history; keep the fallback params.
    if (!tuned.history.empty()) params = tuned.best;
  }

  McmcOptions mcmc_options = options_.mcmc_options;
  mcmc_options.cancel = &shutdown_token_;
  McmcInverter inverter(a, params, mcmc_options);
  inverter.set_kernel_cache(build.entry->kernels().get());
  CsrMatrix pm = inverter.compute();
  const McmcBuildInfo& info = inverter.info();

  if (info.status == BuildStatus::kBuilt && info.neumann_convergent) {
    store_.swap_in(build.entry, std::make_shared<SparseApproximateInverse>(
                                    std::move(pm), "mcmc"),
                   params);
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.builds_completed;
  } else {
    // Retired permanently: the matrix is hostile to the MCMC stage (or the
    // service is shutting down) — requests stay on the fallback rungs and
    // no rebuild storm follows.
    build.entry->mark_build_failed();
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.builds_failed;
  }
}

void SolveService::finish_job(const std::shared_ptr<JobState>& job) {
  job->result.total_seconds = job->timer.seconds();
  {
    std::lock_guard<std::mutex> lock(job->mutex);
    job->done = true;
  }
  job->cv.notify_all();
}

void SolveService::drain() {
  std::unique_lock<std::mutex> lock(mutex_);
  drain_cv_.wait(lock, [&] {
    return queue_.empty() && running_ == 0 && build_queue_.empty() &&
           building_ == 0;
  });
}

void SolveService::pause() {
  std::lock_guard<std::mutex> lock(mutex_);
  paused_ = true;
}

void SolveService::resume() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    paused_ = false;
  }
  work_cv_.notify_all();
  drain_cv_.notify_all();
}

void SolveService::shutdown() {
  std::vector<std::shared_ptr<JobState>> orphans;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
    for (auto& [key, job] : queue_) orphans.push_back(job);
    queue_.clear();
    build_queue_.clear();
  }
  shutdown_token_.request_cancel();
  work_cv_.notify_all();
  build_cv_.notify_all();
  drain_cv_.notify_all();

  for (const auto& job : orphans) {
    job->result.report.status = SolveStatus::kCancelled;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      ++stats_.cancelled;
    }
    finish_job(job);
  }
  for (std::thread& t : workers_) {
    if (t.joinable()) t.join();
  }
  for (std::thread& t : builders_) {
    if (t.joinable()) t.join();
  }
}

ServiceStats SolveService::stats() const {
  ServiceStats out;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    out = stats_;
  }
  out.store = store_.stats();
  return out;
}

}  // namespace mcmi::serve
