#pragma once
/// @file solve_service.hpp
/// @brief SolveService — the long-lived, concurrent request engine
/// (ROADMAP item 1: solver-as-a-service).
///
/// A SolveService owns a bounded priority queue of solve jobs, a worker
/// pool that drives SolveOrchestrator::solve with a per-request
/// CancelToken, a builder pool that runs MCMC build (+ optional HPO
/// tuning) asynchronously, and a content-addressed ArtifactStore of
/// per-matrix artifacts.
///
/// Admission is warm-vs-cold: the *first* request for a matrix fingerprint
/// is served immediately by the cheap fallback rungs (ILU0 -> Jacobi ->
/// identity) while the MCMC build and tuner run in the background; once
/// the tuned preconditioner is swapped into the store, later requests for
/// the same fingerprint take the warm path (the tuned P is *supplied* to
/// the orchestrator, skipping the build entirely).  Concurrent requests
/// against the same fingerprint coalesce onto one build — the entry's
/// try_begin_build() hands the build to exactly one of them.
///
/// Determinism: the *answers* keep the repo's bit-exactness contract — a
/// warm solve with the swapped-in P is bit-identical to a solve with the
/// same P built inline, because the preconditioner itself is a
/// deterministic function of (matrix, params, seed).  What varies with
/// timing is only *which* path (warm or cold) a given request takes.

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "core/cancellation.hpp"
#include "hpo/mcmc_tuner.hpp"
#include "serve/artifact_store.hpp"
#include "solve/orchestrator.hpp"

namespace mcmi::serve {

/// Per-request knobs carried by submit().
struct ServeRequest {
  real_t tolerance = 1e-8;          ///< relative residual target
  index_t max_iterations = 5000;    ///< Krylov iteration cap
  index_t restart = 50;             ///< GMRES restart length
  KrylovMethod method = KrylovMethod::kGMRES;
  /// Wall-clock deadline measured from *submit* time, so queue wait counts
  /// against it; infinity = unbounded.
  real_t deadline_seconds = std::numeric_limits<real_t>::infinity();
  /// Higher runs first; ties run in submission order.
  index_t priority = 0;
};

/// Outcome of one served request.
struct ServeResult {
  SolveReport report;       ///< the orchestrator's full ladder history
  std::vector<real_t> x;    ///< the answer (valid when report.converged())
  u64 fingerprint = 0;      ///< content fingerprint of the matrix
  bool warm = false;        ///< served with the store's tuned preconditioner
  bool solve_ran = false;   ///< false when cancelled before a worker ran it
  real_t queue_seconds = 0; ///< submit -> worker pickup
  real_t total_seconds = 0; ///< submit -> completion
};

/// Aggregate service counters (snapshot; store counters nested).
struct ServiceStats {
  u64 submitted = 0;         ///< accepted submissions
  u64 rejected = 0;          ///< refused at admission (queue full/stopping)
  u64 completed = 0;         ///< jobs finished by a worker
  u64 cancelled = 0;         ///< jobs ended by explicit cancellation
  u64 warm_requests = 0;     ///< served with a tuned store preconditioner
  u64 cold_requests = 0;     ///< served by the fallback rungs
  u64 builds_started = 0;    ///< MCMC builds scheduled
  u64 builds_completed = 0;  ///< builds that swapped a tuned P in
  u64 builds_failed = 0;     ///< builds retired permanently
  u64 coalesced_builds = 0;  ///< requests that joined an in-flight build
  StoreStats store;          ///< the artifact store's own counters
};

namespace detail {
/// Shared state of one in-flight job; ServeHandle is a view onto it.
struct JobState;
}  // namespace detail

/// Caller-side handle of a submitted job: wait for, poll, or cancel it.
/// Copyable (shared state); a default-constructed or rejected handle is
/// falsy and must not be waited on.
class ServeHandle {
 public:
  ServeHandle() = default;

  /// True for a handle backed by an accepted submission.
  explicit operator bool() const { return state_ != nullptr; }

  /// Block until the job completes and return its result.  The reference
  /// lives inside the job's shared state: it stays valid while *some*
  /// handle to the job exists, so keep the handle alive (don't call
  /// `service.submit(...).wait()` on a temporary).
  const ServeResult& wait() const;
  /// Block up to `seconds`; true when the job completed in time.
  bool wait_for(real_t seconds) const;
  /// Non-blocking completion check.
  [[nodiscard]] bool done() const;
  /// Cooperatively cancel: a queued job completes immediately as
  /// kCancelled without running; an in-flight solve stops at its next
  /// cancellation poll.  Safe from any thread.
  void cancel() const;

 private:
  friend class SolveService;
  explicit ServeHandle(std::shared_ptr<detail::JobState> state)
      : state_(std::move(state)) {}
  std::shared_ptr<detail::JobState> state_;
};

/// Construction-time knobs of the service.
struct ServiceOptions {
  std::size_t workers = 2;          ///< solve worker threads
  std::size_t builders = 1;         ///< background build/tune threads
  std::size_t queue_capacity = 64;  ///< pending-job bound (admission)
  ArtifactStore::Limits store;      ///< artifact store budgets
  /// Schedule an async MCMC build on the first request of a fingerprint.
  bool build_on_cold = true;
  /// Run the HPO tuner before the background build (cold requests are
  /// unaffected — they are already being served by the fallback rungs).
  /// Off: the build uses `mcmc_params` directly.
  bool tune = false;
  hpo::McmcTuneOptions tune_options;     ///< tuner knobs when tune is on
  KrylovMethod tune_method = KrylovMethod::kGMRES;  ///< tuner's solve method
  SolveOptions tune_solve_options;       ///< measurer knobs when tune is on
  McmcParams mcmc_params{};              ///< build params (tuner fallback)
  McmcOptions mcmc_options{};            ///< sampler knobs for the build
  /// Start with the worker pool paused (tests: fill the queue, then
  /// resume() for deterministic scheduling).
  bool start_paused = false;
};

/// The concurrent solve engine.  Threads start in the constructor and are
/// joined by shutdown() / the destructor; submit() is thread-safe.
class SolveService {
 public:
  explicit SolveService(ServiceOptions options = {});
  ~SolveService();

  SolveService(const SolveService&) = delete;
  SolveService& operator=(const SolveService&) = delete;

  /// Submit a solve of `a x = rhs`.  Interns `a` in the artifact store,
  /// stamps the deadline, and enqueues.  Returns a falsy handle when the
  /// queue is at capacity or the service is shutting down (counted as
  /// rejected).
  ServeHandle submit(const CsrMatrix& a, std::vector<real_t> rhs,
                     const ServeRequest& request = {});

  /// Block until every accepted job has completed and no build is pending
  /// or in flight.  Call resume() first if the service is paused.
  void drain();

  /// Hold workers (not builders) before their next job; queued jobs wait.
  void pause();
  /// Release paused workers.
  void resume();

  /// Stop accepting work, cancel everything queued, join all threads.
  /// Idempotent; also run by the destructor.
  void shutdown();

  /// Counter snapshot (store counters included).
  [[nodiscard]] ServiceStats stats() const;
  /// The artifact store (for inspection; shared with the workers).
  [[nodiscard]] ArtifactStore& store() { return store_; }

 private:
  struct BuildJob {
    std::shared_ptr<ArtifactEntry> entry;
  };

  void worker_loop();
  void builder_loop();
  void run_job(const std::shared_ptr<detail::JobState>& job);
  void run_build(const BuildJob& build);
  void schedule_build(const std::shared_ptr<ArtifactEntry>& entry);
  void finish_job(const std::shared_ptr<detail::JobState>& job);

  const ServiceOptions options_;
  ArtifactStore store_;
  CancelToken shutdown_token_;

  mutable std::mutex mutex_;
  std::condition_variable work_cv_;    ///< workers wait here
  std::condition_variable build_cv_;   ///< builders wait here
  std::condition_variable drain_cv_;   ///< drain()/shutdown() wait here
  /// Priority queue: key (-priority, seq) so higher priority pops first
  /// and ties keep submission order.
  std::map<std::pair<index_t, u64>, std::shared_ptr<detail::JobState>>
      queue_;
  std::deque<BuildJob> build_queue_;
  u64 next_seq_ = 0;
  std::size_t running_ = 0;   ///< jobs currently held by workers
  std::size_t building_ = 0;  ///< builds currently held by builders
  bool paused_ = false;
  bool stopping_ = false;
  ServiceStats stats_;

  std::vector<std::thread> workers_;
  std::vector<std::thread> builders_;
};

}  // namespace mcmi::serve
