#pragma once
/// @file solve_service.hpp
/// @brief SolveService — the long-lived, concurrent request engine
/// (ROADMAP item 1: solver-as-a-service).
///
/// A SolveService owns a bounded priority queue of solve jobs, a worker
/// pool that drives SolveOrchestrator::solve with a per-request
/// CancelToken, a builder pool that runs MCMC build (+ optional HPO
/// tuning) asynchronously, a content-addressed ArtifactStore of
/// per-matrix artifacts, and a watchdog thread that keeps all of the
/// above honest under overload and faults.
///
/// Admission is warm-vs-cold: the *first* request for a matrix fingerprint
/// is served immediately by the cheap fallback rungs (ILU0 -> Jacobi ->
/// identity) while the MCMC build and tuner run in the background; once
/// the tuned preconditioner is swapped into the store, later requests for
/// the same fingerprint take the warm path (the tuned P is *supplied* to
/// the orchestrator, skipping the build entirely).  Concurrent requests
/// against the same fingerprint coalesce onto one build — the entry's
/// try_begin_build() hands the build to exactly one of them.
///
/// Overload resilience (this layer's contract under sustained 2x load):
///  * a full queue sheds the lowest-priority, oldest queued job to admit a
///    strictly higher-priority arrival (completed as kRejected) instead of
///    refusing the arrival; equal-or-lower-priority arrivals are refused
///    (rejected_capacity);
///  * a watchdog sweep completes already-expired queued jobs as
///    kDeadlineExceeded without consuming a worker, and workers re-check
///    expiry at pickup;
///  * transient build failures cool down in BuildState::kRetryWait with
///    bounded attempts and exponential backoff (the build circuit
///    breaker) instead of retiring the fingerprint forever;
///  * every background build runs under its own CancelToken budget, and
///    the watchdog cancels builds/solves stuck past budget + grace.
///
/// Determinism: the *answers* keep the repo's bit-exactness contract — a
/// warm solve with the swapped-in P is bit-identical to a solve with the
/// same P built inline, because the preconditioner itself is a
/// deterministic function of (matrix, params, seed).  What varies with
/// timing is only *which* path (warm or cold) a given request takes, and
/// under overload *which* requests run at all — never any answer's bits.

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "core/cancellation.hpp"
#include "hpo/mcmc_tuner.hpp"
#include "serve/artifact_store.hpp"
#include "serve/telemetry.hpp"
#include "solve/orchestrator.hpp"

namespace mcmi::serve {

/// Per-request knobs carried by submit().
struct ServeRequest {
  real_t tolerance = 1e-8;          ///< relative residual target
  index_t max_iterations = 5000;    ///< Krylov iteration cap
  index_t restart = 50;             ///< GMRES restart length
  KrylovMethod method = KrylovMethod::kGMRES;
  /// Wall-clock deadline measured from *submit* time, so queue wait counts
  /// against it; infinity = unbounded.
  real_t deadline_seconds = std::numeric_limits<real_t>::infinity();
  /// Higher runs first; ties run in submission order.  Under a full queue
  /// a strictly higher priority also shelters the request from refusal:
  /// it evicts (sheds) the lowest-priority oldest queued job instead.
  index_t priority = 0;
};

/// Outcome of one served request.
struct ServeResult {
  SolveReport report;       ///< the orchestrator's full ladder history
  std::vector<real_t> x;    ///< the answer (valid when report.converged())
  u64 fingerprint = 0;      ///< content fingerprint of the matrix
  bool warm = false;        ///< served with the store's tuned preconditioner
  bool solve_ran = false;   ///< false when cancelled/shed/expired unrun
  real_t queue_seconds = 0; ///< submit -> worker pickup (or queue exit)
  real_t total_seconds = 0; ///< submit -> completion
};

/// Aggregate service counters (snapshot; store counters nested).
///
/// Conservation: once the service is drained,
/// `submitted == completed + cancelled + shed + expired` holds exactly —
/// every accepted job ends in exactly one of those four buckets.
struct ServiceStats {
  u64 submitted = 0;          ///< accepted submissions (shed jobs included)
  u64 rejected = 0;           ///< refusals; always capacity + shutdown
  u64 rejected_capacity = 0;  ///< refused: queue full, nothing sheddable
  u64 rejected_shutdown = 0;  ///< refused: service stopping
  u64 completed = 0;          ///< jobs that ended in a numerical status
  u64 cancelled = 0;          ///< jobs ended by explicit cancellation
  u64 shed = 0;               ///< queued jobs evicted by a higher priority
  u64 expired = 0;            ///< jobs ended past-deadline (queued or run)
  u64 warm_requests = 0;      ///< served with a tuned store preconditioner
  u64 cold_requests = 0;      ///< served by the fallback rungs
  u64 builds_started = 0;     ///< MCMC builds scheduled (probes included)
  u64 builds_completed = 0;   ///< builds that swapped a tuned P in
  u64 builds_failed = 0;      ///< builds retired permanently
  u64 builds_transient = 0;   ///< build failures that entered kRetryWait
  u64 builds_retried = 0;     ///< circuit-breaker probe builds scheduled
  u64 coalesced_builds = 0;   ///< requests that joined an in-flight build
  u64 watchdog_build_kills = 0;  ///< builds cancelled stuck past budget
  u64 watchdog_solve_kills = 0;  ///< solves cancelled stuck past deadline
  LatencyHistogram queue_wait;   ///< submit -> pickup/queue-exit
  LatencyHistogram solve;        ///< orchestrator wall time (ran jobs)
  LatencyHistogram total;        ///< submit -> completion
  StoreStats store;              ///< the artifact store's own counters
};

namespace detail {
/// Shared state of one in-flight job; ServeHandle is a view onto it.
struct JobState;
}  // namespace detail

/// Caller-side handle of a submitted job: wait for, poll, or cancel it.
/// Copyable (shared state); a default-constructed or rejected handle is
/// falsy and must not be waited on.
class ServeHandle {
 public:
  ServeHandle() = default;

  /// True for a handle backed by an accepted submission.
  explicit operator bool() const { return state_ != nullptr; }

  /// Block until the job completes and return a copy of its result.  Safe
  /// on a temporary handle: `service.submit(...).wait()` owns its result.
  ServeResult wait() const;
  /// Zero-copy variant: the reference lives inside the job's shared state
  /// and stays valid only while *some* handle to the job exists — keep the
  /// handle alive (never call `service.submit(...).wait_ref()` on a
  /// temporary).  Use when the result is large and the handle's lifetime
  /// is already pinned.
  const ServeResult& wait_ref() const;
  /// Block up to `seconds`; true when the job completed in time.
  bool wait_for(real_t seconds) const;
  /// Non-blocking completion check.
  [[nodiscard]] bool done() const;
  /// Cooperatively cancel: a queued job completes as kCancelled without
  /// running (harvested by the watchdog sweep or at worker pickup); an
  /// in-flight solve stops at its next cancellation poll.  Safe from any
  /// thread.
  void cancel() const;

 private:
  friend class SolveService;
  explicit ServeHandle(std::shared_ptr<detail::JobState> state)
      : state_(std::move(state)) {}
  std::shared_ptr<detail::JobState> state_;
};

/// Construction-time knobs of the service.
struct ServiceOptions {
  std::size_t workers = 2;          ///< solve worker threads
  std::size_t builders = 1;         ///< background build/tune threads
  std::size_t queue_capacity = 64;  ///< pending-job bound (admission)
  ArtifactStore::Limits store;      ///< artifact store budgets
  /// Schedule an async MCMC build on the first request of a fingerprint.
  bool build_on_cold = true;
  /// Run the HPO tuner before the background build (cold requests are
  /// unaffected — they are already being served by the fallback rungs).
  /// Off: the build uses `mcmc_params` directly.
  bool tune = false;
  hpo::McmcTuneOptions tune_options;     ///< tuner knobs when tune is on
  KrylovMethod tune_method = KrylovMethod::kGMRES;  ///< tuner's solve method
  SolveOptions tune_solve_options;       ///< measurer knobs when tune is on
  McmcParams mcmc_params{};              ///< build params (tuner fallback)
  McmcOptions mcmc_options{};            ///< sampler knobs for the build
  /// Row shards for served solves: > 0 routes the operator — and the tuned
  /// preconditioner, bound once at swap-in — through the kShardedThreads
  /// backend with an nnz-balanced layout of this many shards, cached in
  /// the entry under the (fingerprint, shard_layout) key.  0 keeps the
  /// single-plan backend.  Answers are bit-identical either way (the
  /// sharded reducer folds the single plan's own chunk grid), so a warm
  /// artifact built under one layout serves under any other.
  index_t solve_shards = 0;
  /// Wall-clock budget for one background build + tune: the deadline on
  /// the build's own CancelToken, so a runaway tuner or build abandons
  /// itself at its next poll (and the watchdog reaps it if it never
  /// polls).  <= 0 = unbounded.
  real_t build_budget_seconds = 0.0;
  /// Total build attempts per fingerprint (initial + probes) before a
  /// transient failure retires the entry permanently.  1 reproduces the
  /// pre-breaker behaviour (any failure retires).
  index_t max_build_attempts = 3;
  /// Cooldown after the first transient build failure; doubles per
  /// failure (the circuit breaker's exponential backoff).
  real_t build_cooldown_seconds = 0.25;
  /// Watchdog sweep period: how often expired queued jobs are harvested
  /// and stuck builds/solves checked.  <= 0 disables the watchdog thread
  /// (expiry is then only re-checked at worker pickup).
  real_t watchdog_period_seconds = 0.02;
  /// Slack past a budget/deadline before the watchdog presumes a hang and
  /// cancels: long enough that a *polling* build/solve always stops
  /// itself first (keeping its honest kDeadlineExceeded status), short
  /// enough to bound how long a hung thread pins a worker/builder slot.
  real_t watchdog_grace_seconds = 0.25;
  /// Capacity of the recent_events() ring buffer.
  std::size_t event_log_capacity = 256;
  /// Optional service-level chaos injector (not owned; must outlive the
  /// service).  Scripts build hangs, builder-slot faults and store byte
  /// pressure — see FaultInjector's service-level API.  Tests only.
  FaultInjector* faults = nullptr;
  /// Start with the worker pool paused (tests: fill the queue, then
  /// resume() for deterministic scheduling).
  bool start_paused = false;
};

/// The concurrent solve engine.  Threads start in the constructor and are
/// joined by shutdown() / the destructor; submit() is thread-safe.
class SolveService {
 public:
  explicit SolveService(ServiceOptions options = {});
  ~SolveService();

  SolveService(const SolveService&) = delete;
  SolveService& operator=(const SolveService&) = delete;

  /// Submit a solve of `a x = rhs`.  Interns `a` in the artifact store,
  /// stamps the deadline, and enqueues.  Returns a falsy handle only when
  /// the service is stopping, or the queue is full and the request's
  /// priority does not beat any queued job's (counted rejected_*).  A
  /// request that is already past its deadline at submit is accepted and
  /// completed immediately as kDeadlineExceeded (counted expired).
  ServeHandle submit(const CsrMatrix& a, std::vector<real_t> rhs,
                     const ServeRequest& request = {});

  /// Block until every accepted job has completed and no build is pending
  /// or in flight.  Call resume() first if the service is paused.
  void drain();

  /// Hold workers (not builders or the watchdog) before their next job;
  /// queued jobs wait, but the expiry sweep still harvests them.
  void pause();
  /// Release paused workers.
  void resume();

  /// Stop accepting work, cancel everything queued, join all threads.
  /// Idempotent; also run by the destructor.
  void shutdown();

  /// Counter snapshot (store counters included; `rejected` filled in as
  /// rejected_capacity + rejected_shutdown).
  [[nodiscard]] ServiceStats stats() const;
  /// The most recent service events, oldest first (bounded ring buffer of
  /// event_log_capacity entries) — the ops answer to "why did my request
  /// not run?".
  [[nodiscard]] std::vector<ServiceEvent> recent_events() const;
  /// The artifact store (for inspection; shared with the workers).
  [[nodiscard]] ArtifactStore& store() { return store_; }

 private:
  struct BuildJob {
    std::shared_ptr<ArtifactEntry> entry;
  };
  /// Watchdog visibility into one in-flight background build.
  struct ActiveBuild {
    std::shared_ptr<ArtifactEntry> entry;
    std::shared_ptr<CancelToken> token;
    CancelToken::clock::time_point start;
  };

  void worker_loop();
  void builder_loop();
  void watchdog_loop();
  void run_job(const std::shared_ptr<detail::JobState>& job);
  void run_build(const BuildJob& build);
  void schedule_build(const std::shared_ptr<ArtifactEntry>& entry);
  /// Finish an accepted job: stamp total time, account it in exactly one
  /// terminal counter + the histograms, log the event, wake waiters.
  /// Must be called WITHOUT mutex_ held, exactly once per job.
  void complete_job(const std::shared_ptr<detail::JobState>& job);
  /// The single classification point behind the conservation law
  /// (mutex_ held).
  void account_terminal_locked(const detail::JobState& job);
  void record_event_locked(ServiceEventType type, u64 fingerprint,
                           const char* detail);
  void retire_or_cool_down(const std::shared_ptr<ArtifactEntry>& entry,
                           BuildStatus cause);

  const ServiceOptions options_;
  ArtifactStore store_;
  CancelToken shutdown_token_;
  const CancelToken::clock::time_point epoch_ =
      CancelToken::clock::now();  ///< event timestamps are service-relative

  mutable std::mutex mutex_;
  std::condition_variable work_cv_;      ///< workers wait here
  std::condition_variable build_cv_;     ///< builders wait here
  std::condition_variable drain_cv_;     ///< drain()/shutdown() wait here
  std::condition_variable watchdog_cv_;  ///< watchdog sleeps here
  /// Priority queue: key (-priority, seq) so higher priority pops first
  /// and ties keep submission order.  The shed victim under overload is
  /// the *last* priority group's first element (lowest priority, oldest).
  std::map<std::pair<index_t, u64>, std::shared_ptr<detail::JobState>>
      queue_;
  std::deque<BuildJob> build_queue_;
  std::vector<std::shared_ptr<detail::JobState>> active_jobs_;
  std::vector<ActiveBuild> active_builds_;
  u64 next_seq_ = 0;
  std::size_t running_ = 0;   ///< jobs currently held by workers
  std::size_t building_ = 0;  ///< builds currently held by builders
  bool paused_ = false;
  bool stopping_ = false;
  ServiceStats stats_;
  EventLog events_;

  std::vector<std::thread> workers_;
  std::vector<std::thread> builders_;
  std::thread watchdog_;
};

}  // namespace mcmi::serve
