#include "serve/telemetry.hpp"

#include <algorithm>
#include <limits>

#include "core/error.hpp"

namespace mcmi::serve {

constexpr std::array<real_t, 11> LatencyHistogram::kUpperBounds;
constexpr std::size_t LatencyHistogram::kBuckets;

void LatencyHistogram::record(real_t seconds) {
  const real_t s = std::max<real_t>(seconds, 0);
  std::size_t bucket = kUpperBounds.size();  // overflow by default
  for (std::size_t i = 0; i < kUpperBounds.size(); ++i) {
    if (s <= kUpperBounds[i]) {
      bucket = i;
      break;
    }
  }
  ++counts[bucket];
  ++total_count;
  total_seconds += s;
}

real_t LatencyHistogram::quantile_upper_bound(real_t q) const {
  if (total_count == 0) return 0.0;
  const real_t clamped = std::min<real_t>(std::max<real_t>(q, 0), 1);
  // Rank of the q-th sample, 1-based; ceil so q=0 still needs one sample.
  const u64 rank = std::max<u64>(
      static_cast<u64>(clamped * static_cast<real_t>(total_count) + 0.5), 1);
  u64 seen = 0;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    seen += counts[i];
    if (seen >= rank) {
      return i < kUpperBounds.size()
                 ? kUpperBounds[i]
                 : std::numeric_limits<real_t>::infinity();
    }
  }
  return std::numeric_limits<real_t>::infinity();
}

const char* to_string(ServiceEventType type) {
  switch (type) {
    case ServiceEventType::kShed: return "shed";
    case ServiceEventType::kExpired: return "expired";
    case ServiceEventType::kCancelled: return "cancelled";
    case ServiceEventType::kCompleted: return "completed";
    case ServiceEventType::kRejected: return "rejected";
    case ServiceEventType::kBuildScheduled: return "build_scheduled";
    case ServiceEventType::kBuildCompleted: return "build_completed";
    case ServiceEventType::kBuildTransient: return "build_transient";
    case ServiceEventType::kBuildRetired: return "build_retired";
    case ServiceEventType::kWatchdogBuildKill: return "watchdog_build_kill";
    case ServiceEventType::kWatchdogSolveKill: return "watchdog_solve_kill";
    case ServiceEventType::kStorePressure: return "store_pressure";
  }
  return "unknown";
}

EventLog::EventLog(std::size_t capacity) : capacity_(capacity) {
  MCMI_CHECK(capacity_ >= 1, "event log needs room for one event");
  ring_.reserve(capacity_);
}

void EventLog::push(const ServiceEvent& event) {
  if (ring_.size() < capacity_) {
    ring_.push_back(event);
  } else {
    ring_[next_] = event;
  }
  next_ = (next_ + 1) % capacity_;
  ++pushed_;
}

std::vector<ServiceEvent> EventLog::snapshot() const {
  std::vector<ServiceEvent> out;
  out.reserve(ring_.size());
  if (ring_.size() < capacity_) {
    out.assign(ring_.begin(), ring_.end());
    return out;
  }
  // Full ring: next_ is the oldest slot.
  out.insert(out.end(), ring_.begin() + static_cast<std::ptrdiff_t>(next_),
             ring_.end());
  out.insert(out.end(), ring_.begin(),
             ring_.begin() + static_cast<std::ptrdiff_t>(next_));
  return out;
}

}  // namespace mcmi::serve
