// Quickstart: build a sparse system, construct an MCMC matrix-inversion
// preconditioner, and compare GMRES iteration counts with and without it.
//
//   $ ./examples/quickstart
//
// This is the minimal end-to-end use of the library's core API:
//   gen     -> a Table 1 matrix family
//   mcmc    -> McmcInverter::build_preconditioner(A, {alpha, eps, delta})
//   krylov  -> solve_gmres(A, b, P, x)

#include <cstdio>

#include "gen/matrix_set.hpp"
#include "krylov/solver.hpp"
#include "mcmc/inverter.hpp"

int main() {
  using namespace mcmi;

  // The plasma-physics matrix a00512 from the paper's study set:
  // nonsymmetric, moderately ill-conditioned.
  const NamedMatrix system = make_matrix("a00512");
  const CsrMatrix& a = system.matrix;
  std::printf("system: %s (%s)\n", system.name.c_str(), a.summary().c_str());

  std::vector<real_t> b(static_cast<std::size_t>(a.rows()), 1.0);
  SolveOptions options;
  options.tolerance = 1e-8;
  options.restart = 250;
  options.max_iterations = 2000;

  // 1. Unpreconditioned baseline.
  IdentityPreconditioner identity;
  std::vector<real_t> x;
  const SolveResult baseline = solve_gmres(a, b, identity, x, options);
  std::printf("unpreconditioned GMRES : %lld steps (converged=%d)\n",
              static_cast<long long>(baseline.iterations),
              baseline.converged());

  // 2. MCMC matrix-inversion preconditioner with the paper's parameter
  //    vector x_M = (alpha, eps, delta).
  const McmcParams params{/*alpha=*/1.0, /*eps=*/0.0625, /*delta=*/0.0625};
  const auto preconditioner = McmcInverter::build_preconditioner(a, params);
  std::printf("preconditioner %s: nnz(P)=%lld (filling cap 2x nnz(A))\n",
              preconditioner->name().c_str(),
              static_cast<long long>(preconditioner->matrix().nnz()));

  const SolveResult accelerated =
      solve_gmres(a, b, *preconditioner, x, options);
  std::printf("MCMC-preconditioned    : %lld steps (converged=%d)\n",
              static_cast<long long>(accelerated.iterations),
              accelerated.converged());

  // 3. The paper's performance metric (eq. 4).
  const real_t y = static_cast<real_t>(accelerated.iterations) /
                   static_cast<real_t>(baseline.iterations);
  std::printf("performance metric y(A, x_M) = %.3f  (y < 1 means the "
              "preconditioner pays off)\n", y);
  return 0;
}
