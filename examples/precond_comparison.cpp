// Scenario: choosing a preconditioner for heterogeneous systems.
//
// Sweeps the classical baselines (Jacobi, ILU(0)) and the MCMC matrix
// inversion across the paper's matrix families and prints the GMRES step
// counts — the §2 comparison: ILU is strong when it works but can break
// down; MCMC preconditioning applies uniformly and parallelises as SpMV.

#include <cstdio>
#include <iostream>
#include <memory>

#include "core/error.hpp"
#include "core/table.hpp"
#include "gen/matrix_set.hpp"
#include "krylov/solver.hpp"
#include "mcmc/inverter.hpp"
#include "precond/ilu0.hpp"
#include "precond/jacobi.hpp"
#include "precond/spai.hpp"

int main() {
  using namespace mcmi;
  SolveOptions options;
  options.tolerance = 1e-8;
  options.restart = 250;
  options.max_iterations = 4000;

  TextTable table({"matrix", "n", "none", "jacobi", "ilu0", "spai",
                   "mcmcmi(1, 1/16, 1/16)"});
  for (const char* name :
       {"2DFDLaplace_32", "a00512", "PDD_RealSparse_N256",
        "unsteady_adv_diff_order1_0001"}) {
    const NamedMatrix system = make_matrix(name);
    const CsrMatrix& a = system.matrix;
    std::vector<real_t> b(static_cast<std::size_t>(a.rows()), 1.0);
    std::vector<real_t> x;

    auto steps = [&](const Preconditioner& p) -> std::string {
      const SolveResult res = solve_gmres(a, b, p, x, options);
      return res.converged() ? std::to_string(res.iterations) : "diverged";
    };

    IdentityPreconditioner none;
    JacobiPreconditioner jacobi(a);
    std::string ilu_steps;
    try {
      Ilu0Preconditioner ilu(a);
      ilu_steps = steps(ilu);
    } catch (const Error&) {
      ilu_steps = "breakdown";  // the §2 ILU failure mode
    }
    SpaiPreconditioner spai(a);
    const auto mcmc =
        McmcInverter::build_preconditioner(a, {1.0, 0.0625, 0.0625});

    table.add_row({name, TextTable::fmt(a.rows()), steps(none), steps(jacobi),
                   ilu_steps, steps(spai), steps(*mcmc)});
  }
  std::printf("GMRES steps to 1e-8 by preconditioner:\n");
  table.print(std::cout);
  std::printf("\nMCMCMI applies via one SpMV per iteration and its build is "
              "embarrassingly parallel —\nthe architectural advantage §2 "
              "highlights over triangular-solve preconditioners.\n");
  return 0;
}
