// Scenario: train, inspect and persist the graph-neural surrogate.
//
// Shows the model-centric API: dataset assembly, standardisation, training
// with an epoch callback, RMSE/calibration inspection, save/load, and the
// cached-matrix fast path used by the BO inner loop.

#include <cstdio>

#include "core/env.hpp"
#include "pipeline/dataset_builder.hpp"
#include "stats/calibration.hpp"
#include "surrogate/trainer.hpp"

int main() {
  using namespace mcmi;
  const index_t epochs = env_int("MCMI_EPOCHS", 25);

  DatasetBuildOptions data;
  data.replicates = env_int("MCMI_REPLICATES", 3);
  std::printf("building dataset...\n");
  const SurrogateDataset dataset =
      build_dataset(training_matrix_set(300), data);
  std::vector<LabeledSample> train, validation;
  dataset.split(0.2, 21, train, validation);
  std::printf("dataset: %lld samples (%zu train / %zu validation)\n",
              static_cast<long long>(dataset.size()), train.size(),
              validation.size());

  SurrogateModel model(default_config());
  model.fit_standardizers(dataset);

  TrainOptions options;
  options.epochs = epochs;
  options.on_epoch = [](index_t epoch, real_t train_loss, real_t val_loss) {
    if (epoch % 5 == 0) {
      std::printf("  epoch %3lld  train %.4f  val %.4f\n",
                  static_cast<long long>(epoch), train_loss, val_loss);
    }
    return true;
  };
  train_surrogate(model, dataset, train, validation, options);

  std::printf("validation RMSE of the mean head: %.4f\n",
              evaluate_rmse(model, dataset, validation));

  // Calibration on the validation samples: does sigma_hat track the spread?
  std::vector<CalibrationSample> calib;
  index_t cached = -1;
  for (const LabeledSample& s : validation) {
    if (s.matrix_id != cached) {
      model.cache_matrix(dataset.graphs[s.matrix_id],
                         dataset.features[s.matrix_id]);
      cached = s.matrix_id;
    }
    const Prediction p = model.predict_cached(s.xm);
    calib.push_back({s.y_mean, p.mu, p.sigma});
  }
  std::printf("calibration (tau -> observed coverage):\n");
  for (const CoveragePoint& pt : calibration_curve(calib)) {
    std::printf("  %.2f -> %.3f  [Wilson %.3f, %.3f]\n", pt.expected,
                pt.observed, pt.wilson.low, pt.wilson.high);
  }

  // Persist and reload.
  const std::string path = "surrogate_model.bin";
  model.save(path);
  SurrogateModel reloaded(default_config());
  reloaded.load(path);
  reloaded.cache_matrix(dataset.graphs[0], dataset.features[0]);
  const Prediction p = reloaded.predict_cached(dataset.samples[0].xm);
  std::printf("model saved to %s and reloaded: prediction mu=%.4f "
              "sigma=%.4f for the first training point (label %.4f)\n",
              path.c_str(), p.mu, p.sigma, dataset.samples[0].y_mean);
  return 0;
}
