// Scenario: AI-driven parameter recommendation for a new linear system —
// the paper's headline workflow in one program.
//
//   1. label a small training corpus by running the MCMC preconditioner
//      over the coarse parameter grid (§4.2);
//   2. train the graph-neural surrogate (§3.1);
//   3. for an unseen matrix, let Expected Improvement + L-BFGS-B recommend
//      a parameter batch (§3.2, Algorithm 1);
//   4. verify the recommendation against the grid-search optimum at half
//      the evaluation budget.
//
// Runs a scaled-down corpus by default; MCMI_REPLICATES / MCMI_EPOCHS
// rescale it.

#include <algorithm>
#include <cstdio>

#include "bo/recommender.hpp"
#include "core/env.hpp"
#include "features/matrix_features.hpp"
#include "pipeline/dataset_builder.hpp"
#include "stats/summary.hpp"
#include "surrogate/trainer.hpp"

int main() {
  using namespace mcmi;
  const index_t replicates = env_int("MCMI_REPLICATES", 3);
  const index_t epochs = env_int("MCMI_EPOCHS", 20);

  // -- 1. Label a training corpus (small matrices, coarse grid). ----------
  DatasetBuildOptions data;
  data.replicates = replicates;
  std::printf("[1/4] labelling the training corpus...\n");
  SurrogateDataset dataset = build_dataset(training_matrix_set(300), data);
  std::printf("      %lld labelled samples over %lld matrices\n",
              static_cast<long long>(dataset.size()),
              static_cast<long long>(dataset.num_matrices()));

  // -- 2. Train the surrogate. ---------------------------------------------
  std::printf("[2/4] training the graph-neural surrogate (%lld epochs)...\n",
              static_cast<long long>(epochs));
  SurrogateModel model(default_config());
  model.fit_standardizers(dataset);
  std::vector<LabeledSample> train, validation;
  dataset.split(0.2, 11, train, validation);
  TrainOptions train_options;
  train_options.epochs = epochs;
  const TrainReport report =
      train_surrogate(model, dataset, train, validation, train_options);
  std::printf("      validation loss %.4f\n", report.final_validation_loss);

  // -- 3. Recommend parameters for an unseen system. -----------------------
  const NamedMatrix unseen = make_matrix("unsteady_adv_diff_order2_0001");
  std::printf("[3/4] recommending x_M for unseen matrix %s...\n",
              unseen.name.c_str());
  model.cache_matrix(gnn::Graph::from_csr(unseen.matrix),
                     extract_features(unseen.matrix).to_vector());
  real_t y_min = 1e9;
  for (const LabeledSample& s : dataset.samples) {
    y_min = std::min(y_min, s.y_mean);
  }
  RecommendOptions rec_options;
  rec_options.batch_size = 8;
  rec_options.xi = 0.05;
  rec_options.y_min = y_min;
  McmcSearchSpace space;
  const auto batch =
      recommend_batch(model, KrylovMethod::kGMRES, space, rec_options);

  // -- 4. Evaluate recommendations vs the coarse grid. ---------------------
  std::printf("[4/4] evaluating %zu recommendations (and the 64-point grid "
              "for reference)...\n", batch.size());
  SolveOptions solve;
  solve.restart = 250;
  solve.max_iterations = 4000;
  PerformanceMeasurer measurer(unseen.matrix, solve);

  // Recommendations sharing an alpha (and the whole 64-point reference
  // grid, 16 points per alpha) evaluate through batched walk ensembles.
  std::vector<McmcParams> batch_params;
  for (const Recommendation& rec : batch) batch_params.push_back(rec.params);
  const std::vector<real_t> medians = measurer.measure_grouped_medians(
      batch_params, KrylovMethod::kGMRES, replicates);
  real_t best_bo = 1e9;
  McmcParams best_bo_params;
  for (std::size_t r = 0; r < batch.size(); ++r) {
    const Recommendation& rec = batch[r];
    std::printf("      x_M=(%.2f, %.3f, %.3f)  EI=%.4f  ->  median y=%.4f\n",
                rec.params.alpha, rec.params.eps, rec.params.delta, rec.ei,
                medians[r]);
    if (medians[r] < best_bo) {
      best_bo = medians[r];
      best_bo_params = rec.params;
    }
  }
  real_t best_grid = 1e9;
  for (real_t med : measurer.measure_grouped_medians(
           paper_parameter_grid(), KrylovMethod::kGMRES, replicates)) {
    best_grid = std::min(best_grid, med);
  }
  std::printf("\nbest recommendation: x_M=(%.2f, %.3f, %.3f) with median "
              "y=%.4f\ngrid-search optimum (8x the evaluations): y=%.4f\n",
              best_bo_params.alpha, best_bo_params.eps, best_bo_params.delta,
              best_bo, best_grid);
  std::printf("%s\n", best_bo <= best_grid
                          ? "the AI recommendation matches or beats the grid "
                            "at a fraction of the cost."
                          : "the grid wins at this tiny training scale; rerun "
                            "with MCMI_REPLICATES/MCMI_EPOCHS raised.");
  return 0;
}
