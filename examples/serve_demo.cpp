// Scenario: the solver as a service — a long-lived SolveService taking
// concurrent solve requests against a handful of recurring matrices
// (ROADMAP item 1's "millions of users" shape, scaled to a demo).
//
//   1. start a SolveService (worker pool + builder pool + artifact store);
//   2. submit a burst of requests round-robin over 3 matrix fingerprints —
//      the first request per fingerprint is served cold by the fallback
//      rungs while the MCMC build runs in the background;
//   3. submit a second burst once the tuned preconditioners are swapped
//      in — these take the warm path;
//   4. print throughput, latency and store hit rate for both bursts.
//
// MCMI_REQUESTS rescales the burst size; MCMI_WORKERS the worker pool.

#include <cstdio>
#include <vector>

#include "core/env.hpp"
#include "core/rng.hpp"
#include "core/timer.hpp"
#include "gen/laplace.hpp"
#include "serve/solve_service.hpp"

int main() {
  using namespace mcmi;
  using namespace mcmi::serve;
  const index_t requests = env_int("MCMI_REQUESTS", 24);
  const index_t workers = env_int("MCMI_WORKERS", 2);

  // -- 1. Start the service. ----------------------------------------------
  ServiceOptions options;
  options.workers = static_cast<std::size_t>(workers);
  options.queue_capacity = static_cast<std::size_t>(2 * requests);
  options.mcmc_params = {1.0, 0.25, 0.125};
  SolveService service(options);
  const std::vector<CsrMatrix> mats = {laplace_2d(16), laplace_2d(12),
                                       laplace_2d(8)};
  std::printf("[1/3] service up: %lld workers, 3 matrix fingerprints\n",
              static_cast<long long>(workers));

  auto burst = [&](const char* name, u64 seed_base) {
    WallTimer timer;
    std::vector<ServeHandle> handles;
    for (index_t i = 0; i < requests; ++i) {
      const CsrMatrix& a = mats[static_cast<std::size_t>(i) % mats.size()];
      Xoshiro256 rng = make_stream(seed_base + static_cast<u64>(i));
      std::vector<real_t> b(static_cast<std::size_t>(a.rows()));
      for (real_t& v : b) v = normal01(rng);
      handles.push_back(service.submit(a, std::move(b)));
    }
    index_t converged = 0;
    real_t worst_ms = 0;
    for (const ServeHandle& h : handles) {
      const ServeResult& r = h.wait();
      if (r.report.converged()) ++converged;
      worst_ms = std::max(worst_ms, r.total_seconds * 1e3);
    }
    const real_t elapsed = timer.seconds();
    std::printf("      %s: %lld/%lld converged, %.0f req/s, worst %.2f ms\n",
                name, static_cast<long long>(converged),
                static_cast<long long>(requests),
                static_cast<real_t>(requests) / elapsed, worst_ms);
  };

  // -- 2. Cold burst: fallback rungs serve while MCMC builds run. ---------
  std::printf("[2/3] cold burst (builds scheduled in the background)...\n");
  burst("cold", 1000);
  service.drain();  // wait for the background builds + swap-ins

  // -- 3. Warm burst: tuned preconditioners served from the store. --------
  std::printf("[3/3] warm burst (tuned preconditioners from the store)...\n");
  burst("warm", 2000);

  const ServiceStats stats = service.stats();
  const u64 served = stats.warm_requests + stats.cold_requests;
  std::printf(
      "service: %llu served (%llu warm / %llu cold), hit rate %.2f\n"
      "store:   %llu builds, %llu swaps, %llu hits, %llu misses\n",
      static_cast<unsigned long long>(served),
      static_cast<unsigned long long>(stats.warm_requests),
      static_cast<unsigned long long>(stats.cold_requests),
      served == 0 ? 0.0
                  : static_cast<double>(stats.warm_requests) /
                        static_cast<double>(served),
      static_cast<unsigned long long>(stats.builds_completed),
      static_cast<unsigned long long>(stats.store.swaps),
      static_cast<unsigned long long>(stats.store.hits),
      static_cast<unsigned long long>(stats.store.misses));
  return 0;
}
