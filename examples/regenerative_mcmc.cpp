// Scenario: the regenerative Ulam–von Neumann variant (Ghosh et al., 2025),
// the "more recent variant" the paper names as a drop-in replacement for the
// classic sampler (§3) — all hyper-parameters collapse into one transition
// budget.
//
// Compares classic (eps, delta) tuning against the single-knob regenerative
// scheme on a climate-like system, at matched sampling cost.

#include <cstdio>
#include <iostream>

#include "core/table.hpp"
#include "gen/matrix_set.hpp"
#include "krylov/solver.hpp"
#include "mcmc/inverter.hpp"
#include "mcmc/regenerative.hpp"

int main() {
  using namespace mcmi;
  const NamedMatrix system = make_matrix("PDD_RealSparse_N256");
  const CsrMatrix& a = system.matrix;
  std::printf("system: %s (%s)\n\n", system.name.c_str(),
              a.summary().c_str());

  std::vector<real_t> b(static_cast<std::size_t>(a.rows()), 1.0);
  SolveOptions options;
  options.restart = 250;
  options.max_iterations = 2000;
  IdentityPreconditioner identity;
  std::vector<real_t> x;
  const index_t baseline =
      solve_gmres(a, b, identity, x, options).iterations;
  std::printf("unpreconditioned GMRES: %lld steps\n\n",
              static_cast<long long>(baseline));

  TextTable table({"scheme", "knobs", "transitions", "gmres steps", "y"});

  // Classic scheme: two stochastic knobs to tune.
  for (real_t eps : {0.25, 0.0625}) {
    McmcInverter inverter(a, {1.0, eps, 0.0625});
    const SparseApproximateInverse p(inverter.compute(), "classic");
    const SolveResult res = solve_gmres(a, b, p, x, options);
    table.add_row({"classic",
                   "eps=" + TextTable::fmt(eps, 4) + " delta=0.0625",
                   TextTable::fmt(inverter.info().total_transitions),
                   TextTable::fmt(res.iterations),
                   TextTable::fmt(static_cast<real_t>(res.iterations) /
                                      static_cast<real_t>(baseline),
                                  3)});
  }

  // Regenerative scheme: one budget knob; absorption replaces truncation,
  // so the estimator is unbiased.
  for (index_t budget : {16, 64, 256}) {
    RegenerativeInverter inverter(a, {1.0, budget});
    const SparseApproximateInverse p(inverter.compute(), "regenerative");
    const SolveResult res = solve_gmres(a, b, p, x, options);
    table.add_row({"regenerative",
                   "budget=" + TextTable::fmt(budget) + "/row",
                   TextTable::fmt(inverter.info().total_transitions),
                   TextTable::fmt(res.iterations),
                   TextTable::fmt(static_cast<real_t>(res.iterations) /
                                      static_cast<real_t>(baseline),
                                  3)});
  }
  table.print(std::cout);
  std::printf("\none transition budget replaces the (eps, delta) pair — the "
              "robustness/variance-control\nadvance the paper cites from the "
              "regenerative formulation.\n");
  return 0;
}
