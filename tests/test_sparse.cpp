// Tests for src/sparse: COO assembly, CSR operations against dense
// references, Matrix Market round trips, and property sweeps over random
// matrices.

#include <gtest/gtest.h>

#include <cmath>
#include <fstream>

#include "core/rng.hpp"
#include "dense/matrix.hpp"
#include "gen/laplace.hpp"
#include "gen/random_sparse.hpp"
#include "sparse/csr.hpp"
#include "sparse/mmio.hpp"
#include "sparse/vector_ops.hpp"

namespace mcmi {
namespace {

CsrMatrix small_matrix() {
  CooMatrix coo(3, 3);
  coo.add(0, 0, 2.0);
  coo.add(0, 2, -1.0);
  coo.add(1, 1, 3.0);
  coo.add(2, 0, 0.5);
  coo.add(2, 2, 4.0);
  return CsrMatrix::from_coo(std::move(coo));
}

TEST(Coo, CompressMergesDuplicatesAndDropsZeros) {
  CooMatrix coo(2, 2);
  coo.add(0, 0, 1.0);
  coo.add(0, 0, 2.0);
  coo.add(1, 1, 5.0);
  coo.add(1, 1, -5.0);
  coo.compress();
  EXPECT_EQ(coo.nnz(), 1);
  EXPECT_DOUBLE_EQ(coo.entries()[0].value, 3.0);
}

TEST(Coo, RejectsOutOfRange) {
  CooMatrix coo(2, 2);
  EXPECT_THROW(coo.add(2, 0, 1.0), Error);
  EXPECT_THROW(coo.add(0, -1, 1.0), Error);
}

TEST(Csr, BuildAndAccess) {
  const CsrMatrix a = small_matrix();
  EXPECT_EQ(a.rows(), 3);
  EXPECT_EQ(a.nnz(), 5);
  EXPECT_DOUBLE_EQ(a.at(0, 0), 2.0);
  EXPECT_DOUBLE_EQ(a.at(0, 1), 0.0);
  EXPECT_DOUBLE_EQ(a.at(2, 0), 0.5);
  EXPECT_DOUBLE_EQ(a.fill(), 5.0 / 9.0);
}

TEST(Csr, IdentityAndDiagonal) {
  const CsrMatrix i3 = CsrMatrix::identity(3);
  std::vector<real_t> x = {1.0, 2.0, 3.0};
  EXPECT_EQ(i3.multiply(x), x);
  const CsrMatrix d = CsrMatrix::diagonal({2.0, 3.0});
  EXPECT_EQ(d.multiply({1.0, 1.0}), (std::vector<real_t>{2.0, 3.0}));
}

TEST(Csr, MultiplyMatchesDense) {
  const CsrMatrix a = pdd_real_sparse(40, 0.2, 3);
  const DenseMatrix ad = DenseMatrix::from_csr(a);
  Xoshiro256 rng = make_stream(1);
  std::vector<real_t> x(40);
  for (real_t& v : x) v = normal01(rng);
  const std::vector<real_t> y_sparse = a.multiply(x);
  const std::vector<real_t> y_dense = ad.multiply(x);
  for (index_t i = 0; i < 40; ++i) EXPECT_NEAR(y_sparse[i], y_dense[i], 1e-12);
}

TEST(Csr, TransposeMatchesDense) {
  const CsrMatrix a = pdd_real_sparse(30, 0.2, 5);
  const CsrMatrix at = a.transpose();
  for (index_t i = 0; i < 30; ++i) {
    for (index_t j = 0; j < 30; ++j) {
      EXPECT_DOUBLE_EQ(a.at(i, j), at.at(j, i));
    }
  }
}

TEST(Csr, MultiplyTransposeAgreesWithTranspose) {
  const CsrMatrix a = pdd_real_sparse(25, 0.3, 7);
  Xoshiro256 rng = make_stream(2);
  std::vector<real_t> x(25);
  for (real_t& v : x) v = normal01(rng);
  std::vector<real_t> y1, y2;
  a.multiply_transpose(x, y1);
  a.transpose().multiply(x, y2);
  for (index_t i = 0; i < 25; ++i) EXPECT_NEAR(y1[i], y2[i], 1e-12);
}

TEST(Csr, SparseProductMatchesDense) {
  const CsrMatrix a = pdd_real_sparse(20, 0.25, 11);
  const CsrMatrix b = pdd_real_sparse(20, 0.25, 13);
  const CsrMatrix c = a.multiply(b);
  const DenseMatrix cd =
      DenseMatrix::from_csr(a).multiply(DenseMatrix::from_csr(b));
  for (index_t i = 0; i < 20; ++i) {
    for (index_t j = 0; j < 20; ++j) {
      EXPECT_NEAR(c.at(i, j), cd(i, j), 1e-12);
    }
  }
}

TEST(Csr, AddLinearCombination) {
  const CsrMatrix a = small_matrix();
  const CsrMatrix sum = CsrMatrix::add(2.0, a, -1.0, a);
  for (index_t i = 0; i < 3; ++i) {
    for (index_t j = 0; j < 3; ++j) {
      EXPECT_NEAR(sum.at(i, j), a.at(i, j), 1e-14);
    }
  }
}

TEST(Csr, DiagAndAddDiagonal) {
  const CsrMatrix a = small_matrix();
  const std::vector<real_t> d = a.diag();
  EXPECT_DOUBLE_EQ(d[0], 2.0);
  EXPECT_DOUBLE_EQ(d[1], 3.0);
  const CsrMatrix shifted = a.add_diagonal(1.0, {1.0, 1.0, 1.0});
  EXPECT_DOUBLE_EQ(shifted.at(0, 0), 3.0);
  EXPECT_DOUBLE_EQ(shifted.at(1, 1), 4.0);
  EXPECT_DOUBLE_EQ(shifted.at(0, 2), -1.0);
}

TEST(Csr, ScaleRows) {
  CsrMatrix a = small_matrix();
  a.scale_rows({2.0, 1.0, 0.5});
  EXPECT_DOUBLE_EQ(a.at(0, 0), 4.0);
  EXPECT_DOUBLE_EQ(a.at(2, 2), 2.0);
}

TEST(Csr, NormsMatchDenseDefinitions) {
  const CsrMatrix a = pdd_real_sparse(30, 0.3, 17);
  const DenseMatrix ad = DenseMatrix::from_csr(a);
  real_t inf = 0.0, one = 0.0, fro = 0.0;
  for (index_t i = 0; i < 30; ++i) {
    real_t row = 0.0;
    for (index_t j = 0; j < 30; ++j) row += std::abs(ad(i, j));
    inf = std::max(inf, row);
  }
  for (index_t j = 0; j < 30; ++j) {
    real_t col = 0.0;
    for (index_t i = 0; i < 30; ++i) col += std::abs(ad(i, j));
    one = std::max(one, col);
  }
  for (index_t i = 0; i < 30; ++i) {
    for (index_t j = 0; j < 30; ++j) fro += ad(i, j) * ad(i, j);
  }
  EXPECT_NEAR(a.norm_inf(), inf, 1e-12);
  EXPECT_NEAR(a.norm_one(), one, 1e-12);
  EXPECT_NEAR(a.norm_frobenius(), std::sqrt(fro), 1e-12);
}

TEST(Csr, SymmetryDetection) {
  const CsrMatrix lap = laplace_2d(8);
  EXPECT_TRUE(lap.is_symmetric());
  EXPECT_DOUBLE_EQ(lap.symmetry_score(), 1.0);
  const CsrMatrix asym = pdd_real_sparse(30, 0.2, 19);
  EXPECT_FALSE(asym.is_symmetric());
  EXPECT_LT(asym.symmetry_score(), 1.0);
  EXPECT_GE(asym.symmetry_score(), 0.0);
}

TEST(Csr, DroppedKeepsDiagonal) {
  CooMatrix coo(2, 2);
  coo.add(0, 0, 1e-12);
  coo.add(0, 1, 0.5);
  coo.add(1, 1, 2.0);
  const CsrMatrix a = CsrMatrix::from_coo(std::move(coo));
  const CsrMatrix d = a.dropped(1e-6);
  EXPECT_DOUBLE_EQ(d.at(0, 0), 1e-12);  // diagonal survives the threshold
  EXPECT_DOUBLE_EQ(d.at(0, 1), 0.5);
}

TEST(Csr, ValidationRejectsBadStructure) {
  EXPECT_THROW(CsrMatrix(2, 2, {0, 1}, {0}, {1.0}), Error);        // bad row_ptr size
  EXPECT_THROW(CsrMatrix(2, 2, {0, 1, 1}, {5}, {1.0}), Error);     // col out of range
  EXPECT_THROW(CsrMatrix(1, 2, {0, 2}, {1, 0}, {1.0, 2.0}), Error);  // unsorted
}

TEST(Mmio, RoundTripGeneral) {
  const CsrMatrix a = pdd_real_sparse(25, 0.2, 23);
  const std::string path = "/tmp/mcmi_test_roundtrip.mtx";
  write_matrix_market(a, path);
  const CsrMatrix b = read_matrix_market(path);
  ASSERT_EQ(a.rows(), b.rows());
  ASSERT_EQ(a.nnz(), b.nnz());
  for (index_t i = 0; i < a.rows(); ++i) {
    for (index_t j = 0; j < a.cols(); ++j) {
      EXPECT_NEAR(a.at(i, j), b.at(i, j), 1e-15);
    }
  }
}

TEST(Mmio, ReadsSymmetricStorage) {
  const std::string path = "/tmp/mcmi_test_sym.mtx";
  {
    std::ofstream out(path);
    out << "%%MatrixMarket matrix coordinate real symmetric\n";
    out << "% comment line\n";
    out << "3 3 4\n";
    out << "1 1 2.0\n2 1 -1.0\n2 2 2.0\n3 3 1.5\n";
  }
  const CsrMatrix a = read_matrix_market(path);
  EXPECT_EQ(a.nnz(), 5);  // off-diagonal expanded
  EXPECT_DOUBLE_EQ(a.at(0, 1), -1.0);
  EXPECT_DOUBLE_EQ(a.at(1, 0), -1.0);
  EXPECT_TRUE(a.is_symmetric());
}

TEST(Mmio, RejectsGarbage) {
  const std::string path = "/tmp/mcmi_test_bad.mtx";
  {
    std::ofstream out(path);
    out << "not a matrix market file\n";
  }
  EXPECT_THROW(read_matrix_market(path), Error);
  EXPECT_THROW(read_matrix_market("/nonexistent/file.mtx"), Error);
}

/// Write `body` to a temp .mtx file and return what read_matrix_market threw.
std::string mmio_error_for(const std::string& body) {
  const std::string path = "/tmp/mcmi_test_malformed.mtx";
  {
    std::ofstream out(path);
    out << body;
  }
  try {
    (void)read_matrix_market(path);
  } catch (const Error& e) {
    return e.what();
  }
  return {};
}

TEST(Mmio, TruncatedFileNamesExpectedAndActualCounts) {
  const std::string msg = mmio_error_for(
      "%%MatrixMarket matrix coordinate real general\n"
      "3 3 4\n"
      "1 1 2.0\n"
      "2 2 2.0\n");
  EXPECT_NE(msg.find("truncated"), std::string::npos) << msg;
  EXPECT_NE(msg.find("4"), std::string::npos) << msg;
  EXPECT_NE(msg.find("2"), std::string::npos) << msg;
}

TEST(Mmio, OutOfRangeIndexNamesLineAndBounds) {
  const std::string msg = mmio_error_for(
      "%%MatrixMarket matrix coordinate real general\n"
      "3 3 2\n"
      "1 1 2.0\n"
      "4 1 1.0\n");
  EXPECT_NE(msg.find("out of range"), std::string::npos) << msg;
  EXPECT_NE(msg.find(":4"), std::string::npos) << msg;  // line number
  EXPECT_NE(msg.find("(4, 1)"), std::string::npos) << msg;
  EXPECT_NE(msg.find("3 x 3"), std::string::npos) << msg;
}

TEST(Mmio, NonNumericEntryTokensNameTheLine) {
  const std::string msg = mmio_error_for(
      "%%MatrixMarket matrix coordinate real general\n"
      "3 3 2\n"
      "1 1 2.0\n"
      "x y 1.0\n");
  EXPECT_NE(msg.find("bad entry"), std::string::npos) << msg;
  EXPECT_NE(msg.find("x y 1.0"), std::string::npos) << msg;
}

TEST(Mmio, NonNumericValueTokenNamesTheLine) {
  const std::string msg = mmio_error_for(
      "%%MatrixMarket matrix coordinate real general\n"
      "3 3 1\n"
      "1 1 oops\n");
  EXPECT_NE(msg.find("bad value"), std::string::npos) << msg;
  EXPECT_NE(msg.find("oops"), std::string::npos) << msg;
}

TEST(Mmio, BadOrMissingSizeLineRejected) {
  EXPECT_NE(mmio_error_for("%%MatrixMarket matrix coordinate real general\n"
                           "three by three\n")
                .find("bad size line"),
            std::string::npos);
  EXPECT_NE(mmio_error_for("%%MatrixMarket matrix coordinate real general\n"
                           "% only comments, no size\n")
                .find("missing size line"),
            std::string::npos);
  EXPECT_NE(mmio_error_for("%%MatrixMarket matrix coordinate real general\n"
                           "0 3 1\n"
                           "1 1 1.0\n")
                .find("bad size line"),
            std::string::npos);
}

TEST(Mmio, PatternFieldDefaultsValuesToOne) {
  const std::string path = "/tmp/mcmi_test_pattern.mtx";
  {
    std::ofstream out(path);
    out << "%%MatrixMarket matrix coordinate pattern general\n";
    out << "2 2 2\n1 1\n2 2\n";
  }
  const CsrMatrix a = read_matrix_market(path);
  EXPECT_DOUBLE_EQ(a.at(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(a.at(1, 1), 1.0);
}

TEST(VectorOps, DotAxpyNorms) {
  std::vector<real_t> a = {1.0, 2.0, 3.0};
  std::vector<real_t> b = {4.0, -5.0, 6.0};
  EXPECT_DOUBLE_EQ(dot(a, b), 4.0 - 10.0 + 18.0);
  EXPECT_DOUBLE_EQ(norm2({3.0, 4.0}), 5.0);
  EXPECT_DOUBLE_EQ(norm_inf(b), 6.0);
  axpy(2.0, a, b);
  EXPECT_DOUBLE_EQ(b[0], 6.0);
  xpby(a, 0.5, b);
  EXPECT_DOUBLE_EQ(b[0], 4.0);
  scale(2.0, a);
  EXPECT_DOUBLE_EQ(a[2], 6.0);
  EXPECT_DOUBLE_EQ(subtract(a, a)[1], 0.0);
}

/// Property sweep: random matrices of several densities keep algebraic
/// identities (A^T)^T = A and (A+A)^T = 2 A^T.
class SparseProperty : public ::testing::TestWithParam<real_t> {};

TEST_P(SparseProperty, TransposeInvolution) {
  const CsrMatrix a = pdd_real_sparse(35, GetParam(), 29);
  const CsrMatrix att = a.transpose().transpose();
  ASSERT_EQ(att.nnz(), a.nnz());
  for (index_t i = 0; i < a.rows(); ++i) {
    for (index_t j = 0; j < a.cols(); ++j) {
      EXPECT_DOUBLE_EQ(att.at(i, j), a.at(i, j));
    }
  }
}

TEST_P(SparseProperty, AdditionTransposeCommute) {
  const CsrMatrix a = pdd_real_sparse(35, GetParam(), 31);
  const CsrMatrix lhs = CsrMatrix::add(1.0, a, 1.0, a).transpose();
  const CsrMatrix rhs =
      CsrMatrix::add(2.0, a.transpose(), 0.0, a.transpose());
  for (index_t i = 0; i < a.rows(); ++i) {
    for (index_t j = 0; j < a.cols(); ++j) {
      EXPECT_NEAR(lhs.at(i, j), rhs.at(i, j), 1e-13);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Densities, SparseProperty,
                         ::testing::Values(0.05, 0.1, 0.2, 0.4));

}  // namespace
}  // namespace mcmi
