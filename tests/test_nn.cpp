// Tests for src/nn: central-difference gradient checks on every layer,
// optimiser behaviour and numerical stability of the activations.

#include <gtest/gtest.h>

#include <cmath>

#include "nn/activations.hpp"
#include "nn/adam.hpp"
#include "nn/dropout.hpp"
#include "nn/gradient_check.hpp"
#include "nn/layernorm.hpp"
#include "nn/linear.hpp"
#include "nn/mlp.hpp"
#include "nn/tensor.hpp"

namespace mcmi::nn {
namespace {

Tensor random_tensor(index_t rows, index_t cols, u64 seed,
                     real_t scale = 1.0) {
  Tensor t(rows, cols);
  Xoshiro256 rng = make_stream(seed);
  for (real_t& v : t.data()) v = scale * normal01(rng);
  return t;
}

TEST(Tensor, MatmulShapesAndValues) {
  Tensor a(2, 3);
  a(0, 0) = 1; a(0, 1) = 2; a(0, 2) = 3;
  a(1, 0) = 4; a(1, 1) = 5; a(1, 2) = 6;
  Tensor b(3, 1);
  b(0, 0) = 1; b(1, 0) = 0; b(2, 0) = -1;
  const Tensor c = a.matmul(b);
  EXPECT_EQ(c.rows(), 2);
  EXPECT_DOUBLE_EQ(c(0, 0), -2.0);
  EXPECT_DOUBLE_EQ(c(1, 0), -2.0);
}

TEST(Tensor, TransposedProducts) {
  const Tensor a = random_tensor(4, 3, 1);
  const Tensor b = random_tensor(5, 3, 2);
  // a.matmul_transposed(b) == a * b^T.
  const Tensor c = a.matmul_transposed(b);
  EXPECT_EQ(c.rows(), 4);
  EXPECT_EQ(c.cols(), 5);
  real_t manual = 0.0;
  for (index_t k = 0; k < 3; ++k) manual += a(1, k) * b(2, k);
  EXPECT_NEAR(c(1, 2), manual, 1e-12);

  // a.transposed_matmul(d) == a^T * d.
  const Tensor d = random_tensor(4, 2, 3);
  const Tensor e = a.transposed_matmul(d);
  EXPECT_EQ(e.rows(), 3);
  EXPECT_EQ(e.cols(), 2);
  manual = 0.0;
  for (index_t r = 0; r < 4; ++r) manual += a(r, 1) * d(r, 0);
  EXPECT_NEAR(e(1, 0), manual, 1e-12);
}

TEST(Tensor, Hconcat) {
  const Tensor a = random_tensor(2, 2, 4);
  const Tensor b = random_tensor(2, 3, 5);
  const Tensor c = hconcat({&a, &b});
  EXPECT_EQ(c.cols(), 5);
  EXPECT_DOUBLE_EQ(c(1, 0), a(1, 0));
  EXPECT_DOUBLE_EQ(c(1, 4), b(1, 2));
}

TEST(GradCheck, Linear) {
  Linear layer(4, 3, 11);
  const GradCheckResult r = check_gradients(layer, random_tensor(5, 4, 6),
                                            random_tensor(5, 3, 7));
  EXPECT_LT(r.max_input_error, 1e-6);
  EXPECT_LT(r.max_param_error, 1e-6);
}

TEST(GradCheck, ReLU) {
  ReLU layer;
  // Keep inputs away from the kink.
  Tensor x = random_tensor(4, 6, 8);
  for (real_t& v : x.data()) {
    if (std::abs(v) < 0.1) v += 0.2;
  }
  const GradCheckResult r =
      check_gradients(layer, x, random_tensor(4, 6, 9));
  EXPECT_LT(r.max_input_error, 1e-6);
}

TEST(GradCheck, Softplus) {
  Softplus layer;
  const GradCheckResult r = check_gradients(layer, random_tensor(3, 5, 10),
                                            random_tensor(3, 5, 11));
  EXPECT_LT(r.max_input_error, 1e-6);
}

TEST(GradCheck, LayerNorm) {
  LayerNorm layer(6);
  const GradCheckResult r = check_gradients(layer, random_tensor(4, 6, 12),
                                            random_tensor(4, 6, 13));
  EXPECT_LT(r.max_input_error, 1e-5);
  EXPECT_LT(r.max_param_error, 1e-6);
}

TEST(GradCheck, MlpEndToEnd) {
  MlpConfig config;
  config.in_features = 5;
  config.hidden = 8;
  config.hidden_layers = 2;
  config.out_features = 3;
  config.layer_norm = true;
  Mlp mlp(config, 17);
  const GradCheckResult r = check_gradients(mlp, random_tensor(4, 5, 14),
                                            random_tensor(4, 3, 15));
  EXPECT_LT(r.max_input_error, 1e-5);
  EXPECT_LT(r.max_param_error, 1e-5);
}

TEST(Softplus, StableInBothTails) {
  EXPECT_NEAR(Softplus::value(1000.0), 1000.0, 1e-9);
  EXPECT_NEAR(Softplus::value(-1000.0), 0.0, 1e-9);
  EXPECT_NEAR(Softplus::value(0.0), std::log(2.0), 1e-12);
  EXPECT_NEAR(Softplus::derivative(0.0), 0.5, 1e-12);
  EXPECT_NEAR(Softplus::derivative(40.0), 1.0, 1e-12);
  EXPECT_NEAR(Softplus::derivative(-40.0), 0.0, 1e-12);
}

TEST(Dropout, EvalModeIsIdentity) {
  Dropout layer(0.5, 19);
  const Tensor x = random_tensor(3, 4, 16);
  const Tensor y = layer.forward(x, /*train=*/false);
  EXPECT_EQ(y.data(), x.data());
}

TEST(Dropout, TrainModeDropsAtConfiguredRate) {
  Dropout layer(0.3, 23);
  const Tensor x(100, 100, 1.0);
  const Tensor y = layer.forward(x, /*train=*/true);
  index_t zeros = 0;
  for (real_t v : y.data()) {
    if (v == 0.0) ++zeros;
    else EXPECT_NEAR(v, 1.0 / 0.7, 1e-12);  // inverted scaling
  }
  EXPECT_NEAR(static_cast<real_t>(zeros) / 10000.0, 0.3, 0.03);
}

TEST(Dropout, BackwardUsesSameMask) {
  Dropout layer(0.4, 29);
  const Tensor x(10, 10, 1.0);
  const Tensor y = layer.forward(x, /*train=*/true);
  const Tensor g = layer.backward(Tensor(10, 10, 1.0));
  for (std::size_t i = 0; i < y.data().size(); ++i) {
    EXPECT_DOUBLE_EQ(g.data()[i], y.data()[i]);
  }
}

TEST(Adam, MinimisesQuadratic) {
  // One parameter tensor, loss = ||w - target||^2.
  Parameter w("w", Tensor(1, 4, 0.0));
  const std::vector<real_t> target = {1.0, -2.0, 3.0, 0.5};
  AdamConfig config;
  config.learning_rate = 0.05;
  Adam adam({&w}, config);
  for (int step = 0; step < 500; ++step) {
    for (index_t j = 0; j < 4; ++j) {
      w.grad(0, j) = 2.0 * (w.value(0, j) - target[j]);
    }
    adam.step();
  }
  for (index_t j = 0; j < 4; ++j) {
    EXPECT_NEAR(w.value(0, j), target[j], 1e-3);
  }
}

TEST(Adam, WeightDecayShrinksWeights) {
  Parameter w("w", Tensor(1, 1, 5.0));
  AdamConfig config;
  config.learning_rate = 0.1;
  config.weight_decay = 1.0;
  Adam adam({&w}, config);
  for (int step = 0; step < 200; ++step) {
    // Zero data gradient: only weight decay acts.
    adam.step();
  }
  EXPECT_NEAR(w.value(0, 0), 0.0, 0.05);
}

TEST(Mlp, TrainsToFitLinearFunction) {
  // y = 2 x0 - x1 learned by a small MLP under Adam.
  MlpConfig config;
  config.in_features = 2;
  config.hidden = 16;
  config.hidden_layers = 1;
  config.out_features = 1;
  Mlp mlp(config, 31);
  Adam adam(mlp.parameters(), {.learning_rate = 5e-3});
  Xoshiro256 rng = make_stream(33);

  real_t final_loss = 1e9;
  for (int step = 0; step < 800; ++step) {
    Tensor x(16, 2);
    Tensor target(16, 1);
    for (index_t i = 0; i < 16; ++i) {
      x(i, 0) = normal01(rng);
      x(i, 1) = normal01(rng);
      target(i, 0) = 2.0 * x(i, 0) - x(i, 1);
    }
    const Tensor out = mlp.forward(x, /*train=*/true);
    Tensor grad(16, 1);
    final_loss = 0.0;
    for (index_t i = 0; i < 16; ++i) {
      const real_t diff = out(i, 0) - target(i, 0);
      final_loss += diff * diff / 16.0;
      grad(i, 0) = 2.0 * diff / 16.0;
    }
    mlp.backward(grad);
    adam.step();
  }
  EXPECT_LT(final_loss, 0.05);
}

/// Gradient checks across layer widths (property sweep).
class LinearGrad : public ::testing::TestWithParam<index_t> {};

TEST_P(LinearGrad, AllWidths) {
  const index_t width = GetParam();
  Linear layer(width, width + 1, 37 + width);
  const GradCheckResult r =
      check_gradients(layer, random_tensor(3, width, 40 + width),
                      random_tensor(3, width + 1, 41 + width));
  EXPECT_LT(r.max_input_error, 1e-6);
  EXPECT_LT(r.max_param_error, 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Widths, LinearGrad, ::testing::Values(1, 2, 7, 16));

}  // namespace
}  // namespace mcmi::nn
