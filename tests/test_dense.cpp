// Tests for src/dense: LU solves/inverses against hand results and random
// residual checks; Jacobi SVD against matrices with known singular values.

#include <gtest/gtest.h>

#include <cmath>

#include "core/rng.hpp"
#include "dense/lu.hpp"
#include "dense/matrix.hpp"
#include "dense/svd.hpp"
#include "gen/laplace.hpp"
#include "gen/random_sparse.hpp"

namespace mcmi {
namespace {

TEST(DenseMatrix, MultiplyAndTranspose) {
  DenseMatrix a(2, 3);
  a(0, 0) = 1; a(0, 1) = 2; a(0, 2) = 3;
  a(1, 0) = 4; a(1, 1) = 5; a(1, 2) = 6;
  DenseMatrix b(3, 2);
  b(0, 0) = 7; b(1, 0) = 8; b(2, 0) = 9;
  b(0, 1) = 1; b(1, 1) = 2; b(2, 1) = 3;
  const DenseMatrix c = a.multiply(b);
  EXPECT_DOUBLE_EQ(c(0, 0), 7 + 16 + 27);
  EXPECT_DOUBLE_EQ(c(1, 1), 4 + 10 + 18);
  const DenseMatrix at = a.transpose();
  EXPECT_DOUBLE_EQ(at(2, 1), 6);
}

TEST(Lu, SolvesHandCheckedSystem) {
  DenseMatrix a(2, 2);
  a(0, 0) = 2; a(0, 1) = 1;
  a(1, 0) = 1; a(1, 1) = 3;
  const std::vector<real_t> x = dense_solve(a, {5.0, 10.0});
  EXPECT_NEAR(x[0], 1.0, 1e-12);
  EXPECT_NEAR(x[1], 3.0, 1e-12);
}

TEST(Lu, PivotingHandlesZeroLeadingEntry) {
  DenseMatrix a(2, 2);
  a(0, 0) = 0; a(0, 1) = 1;
  a(1, 0) = 1; a(1, 1) = 0;
  const std::vector<real_t> x = dense_solve(a, {2.0, 3.0});
  EXPECT_NEAR(x[0], 3.0, 1e-14);
  EXPECT_NEAR(x[1], 2.0, 1e-14);
}

TEST(Lu, ThrowsOnSingular) {
  DenseMatrix a(2, 2);
  a(0, 0) = 1; a(0, 1) = 2;
  a(1, 0) = 2; a(1, 1) = 4;
  EXPECT_THROW(LuFactorization{a}, Error);
}

TEST(Lu, RandomResidualSmall) {
  const CsrMatrix sp = random_diag_dominant(50, 6, 2.0, 3);
  const DenseMatrix a = DenseMatrix::from_csr(sp);
  Xoshiro256 rng = make_stream(5);
  std::vector<real_t> b(50);
  for (real_t& v : b) v = normal01(rng);
  const std::vector<real_t> x = dense_solve(a, b);
  const std::vector<real_t> ax = a.multiply(x);
  for (index_t i = 0; i < 50; ++i) EXPECT_NEAR(ax[i], b[i], 1e-9);
}

TEST(Lu, InverseTimesMatrixIsIdentity) {
  const CsrMatrix sp = random_diag_dominant(30, 5, 2.0, 7);
  const DenseMatrix a = DenseMatrix::from_csr(sp);
  const DenseMatrix inv = dense_inverse(a);
  const DenseMatrix prod = inv.multiply(a);
  EXPECT_LT(prod.max_abs_diff(DenseMatrix::identity(30)), 1e-9);
}

TEST(Lu, DeterminantOfTriangularProduct) {
  DenseMatrix a(3, 3);
  a(0, 0) = 2; a(1, 1) = 3; a(2, 2) = 4;
  a(0, 1) = 1; a(0, 2) = 5; a(1, 2) = -2;
  EXPECT_NEAR(LuFactorization(a).determinant(), 24.0, 1e-12);
}

TEST(Svd, DiagonalMatrixSingularValues) {
  DenseMatrix a(3, 3);
  a(0, 0) = 3.0;
  a(1, 1) = -2.0;  // singular values are magnitudes
  a(2, 2) = 0.5;
  const std::vector<real_t> s = singular_values(a);
  ASSERT_EQ(s.size(), 3u);
  EXPECT_NEAR(s[0], 3.0, 1e-12);
  EXPECT_NEAR(s[1], 2.0, 1e-12);
  EXPECT_NEAR(s[2], 0.5, 1e-12);
}

TEST(Svd, OrthogonalMatrixHasUnitSpectrum) {
  // 2x2 rotation.
  DenseMatrix q(2, 2);
  const real_t t = 0.7;
  q(0, 0) = std::cos(t); q(0, 1) = -std::sin(t);
  q(1, 0) = std::sin(t); q(1, 1) = std::cos(t);
  const std::vector<real_t> s = singular_values(q);
  EXPECT_NEAR(s[0], 1.0, 1e-12);
  EXPECT_NEAR(s[1], 1.0, 1e-12);
}

TEST(Svd, FrobeniusIdentity) {
  // sum sigma_i^2 == ||A||_F^2.
  const CsrMatrix sp = pdd_real_sparse(20, 0.3, 11);
  const DenseMatrix a = DenseMatrix::from_csr(sp);
  const std::vector<real_t> s = singular_values(a);
  real_t sum2 = 0.0;
  for (real_t v : s) sum2 += v * v;
  EXPECT_NEAR(std::sqrt(sum2), a.norm_frobenius(), 1e-9);
}

TEST(Svd, LaplacianConditionNumberMatchesTheory) {
  // 1D Laplacian eigenvalues: 2 - 2 cos(k pi / (n+1)); kappa = l_max/l_min.
  const index_t n = 12;
  const DenseMatrix a = DenseMatrix::from_csr(laplace_1d(n));
  const real_t lmin = 2.0 - 2.0 * std::cos(M_PI / (n + 1));
  const real_t lmax = 2.0 - 2.0 * std::cos(n * M_PI / (n + 1));
  EXPECT_NEAR(condition_number_exact(a), lmax / lmin, 1e-6 * lmax / lmin);
}

TEST(Svd, SingularMatrixReportsInfiniteKappa) {
  DenseMatrix a(2, 2);
  a(0, 0) = 1; a(0, 1) = 2;
  a(1, 0) = 2; a(1, 1) = 4;
  EXPECT_TRUE(std::isinf(condition_number_exact(a)));
}

/// Property sweep: LU solve residual stays small across sizes.
class LuProperty : public ::testing::TestWithParam<index_t> {};

TEST_P(LuProperty, ResidualBelowTolerance) {
  const index_t n = GetParam();
  const CsrMatrix sp = random_diag_dominant(n, 4, 1.8, 100 + n);
  const DenseMatrix a = DenseMatrix::from_csr(sp);
  std::vector<real_t> b(static_cast<std::size_t>(n), 1.0);
  const std::vector<real_t> x = dense_solve(a, b);
  const std::vector<real_t> ax = a.multiply(x);
  for (index_t i = 0; i < n; ++i) EXPECT_NEAR(ax[i], 1.0, 1e-8);
}

INSTANTIATE_TEST_SUITE_P(Sizes, LuProperty,
                         ::testing::Values(5, 17, 33, 64, 101));

}  // namespace
}  // namespace mcmi
