// Tests for src/precond: Jacobi, ILU(0) and the explicit sparse
// approximate-inverse wrapper.

#include <gtest/gtest.h>

#include <cmath>

#include "core/rng.hpp"
#include "dense/lu.hpp"
#include "dense/matrix.hpp"
#include "gen/laplace.hpp"
#include "gen/random_sparse.hpp"
#include "krylov/solver.hpp"
#include "precond/ilu0.hpp"
#include "precond/jacobi.hpp"
#include "precond/spai.hpp"
#include "precond/sparse_precond.hpp"

namespace mcmi {
namespace {

TEST(Identity, PassesThrough) {
  IdentityPreconditioner id;
  const std::vector<real_t> x = {1.0, -2.0, 3.0};
  EXPECT_EQ(id.apply(x), x);
  EXPECT_EQ(id.name(), "identity");
}

TEST(Jacobi, AppliesInverseDiagonal) {
  const CsrMatrix a = CsrMatrix::diagonal({2.0, 4.0, 0.5});
  JacobiPreconditioner jacobi(a);
  const std::vector<real_t> y = jacobi.apply({2.0, 4.0, 0.5});
  EXPECT_DOUBLE_EQ(y[0], 1.0);
  EXPECT_DOUBLE_EQ(y[1], 1.0);
  EXPECT_DOUBLE_EQ(y[2], 1.0);
}

TEST(Jacobi, ThrowsOnZeroDiagonal) {
  CooMatrix coo(2, 2);
  coo.add(0, 1, 1.0);
  coo.add(1, 0, 1.0);
  coo.add(1, 1, 1.0);
  const CsrMatrix a = CsrMatrix::from_coo(std::move(coo));
  EXPECT_THROW(JacobiPreconditioner{a}, Error);
}

TEST(Ilu0, ExactForTriangularPattern) {
  // For a lower-triangular matrix ILU(0) is an exact factorisation, so
  // P = A^-1 exactly.
  CooMatrix coo(3, 3);
  coo.add(0, 0, 2.0);
  coo.add(1, 0, -1.0);
  coo.add(1, 1, 3.0);
  coo.add(2, 1, 1.0);
  coo.add(2, 2, 4.0);
  const CsrMatrix a = CsrMatrix::from_coo(std::move(coo));
  Ilu0Preconditioner ilu(a);
  const std::vector<real_t> b = {2.0, 2.0, 9.0};
  const std::vector<real_t> x = ilu.apply(b);
  const std::vector<real_t> ref = dense_solve(DenseMatrix::from_csr(a), b);
  for (index_t i = 0; i < 3; ++i) EXPECT_NEAR(x[i], ref[i], 1e-12);
}

TEST(Ilu0, ExactWhenNoFillWouldOccur) {
  // Tridiagonal matrices have no fill-in: ILU(0) == LU, so applying it
  // solves the system exactly.
  const CsrMatrix a = laplace_1d(20);
  Ilu0Preconditioner ilu(a);
  Xoshiro256 rng = make_stream(3);
  std::vector<real_t> b(20);
  for (real_t& v : b) v = normal01(rng);
  const std::vector<real_t> x = ilu.apply(b);
  const std::vector<real_t> ref = dense_solve(DenseMatrix::from_csr(a), b);
  for (index_t i = 0; i < 20; ++i) EXPECT_NEAR(x[i], ref[i], 1e-10);
}

TEST(Ilu0, ReducesGmresIterations) {
  const CsrMatrix a = laplace_2d(20);
  std::vector<real_t> b(a.rows(), 1.0);
  IdentityPreconditioner id;
  Ilu0Preconditioner ilu(a);
  std::vector<real_t> x;
  SolveOptions opt;
  opt.restart = 400;
  const index_t base = solve_gmres(a, b, id, x, opt).iterations;
  const index_t pre = solve_gmres(a, b, ilu, x, opt).iterations;
  EXPECT_LT(pre, base);
}

TEST(Ilu0, ThrowsOnMissingDiagonal) {
  CooMatrix coo(2, 2);
  coo.add(0, 0, 1.0);
  coo.add(1, 0, 1.0);  // no (1,1) entry
  const CsrMatrix a = CsrMatrix::from_coo(std::move(coo));
  EXPECT_THROW(Ilu0Preconditioner{a}, Error);
}

TEST(Ilu0, BreaksDownOnZeroPivot) {
  // a_00 = 0 is an immediate zero pivot — the documented ILU failure mode
  // (§2: "ILU may break down for indefinite matrices").
  CooMatrix coo(2, 2);
  coo.add(0, 0, 0.0);
  coo.add(0, 1, 1.0);
  coo.add(1, 0, 1.0);
  coo.add(1, 1, 1.0);
  CsrMatrix a = CsrMatrix::from_coo(std::move(coo));
  // compress() drops explicit zeros, so rebuild with the zero kept.
  a = CsrMatrix(2, 2, {0, 2, 4}, {0, 1, 0, 1}, {0.0, 1.0, 1.0, 1.0});
  EXPECT_THROW(Ilu0Preconditioner{a}, Error);
}

TEST(SparseApproximateInverse, AppliesMatrix) {
  const CsrMatrix a = laplace_1d(10);
  const DenseMatrix inv = dense_inverse(DenseMatrix::from_csr(a));
  // Build an explicit exact inverse in CSR form.
  CooMatrix coo(10, 10);
  for (index_t i = 0; i < 10; ++i) {
    for (index_t j = 0; j < 10; ++j) {
      if (std::abs(inv(i, j)) > 1e-14) coo.add(i, j, inv(i, j));
    }
  }
  SparseApproximateInverse p(CsrMatrix::from_coo(std::move(coo)), "exact");
  EXPECT_EQ(p.name(), "exact");
  // P A x == x for any x.
  Xoshiro256 rng = make_stream(7);
  std::vector<real_t> x(10);
  for (real_t& v : x) v = normal01(rng);
  const std::vector<real_t> y = p.apply(a.multiply(x));
  for (index_t i = 0; i < 10; ++i) EXPECT_NEAR(y[i], x[i], 1e-10);
}

TEST(Spai, ExactForDiagonalMatrix) {
  const CsrMatrix a = CsrMatrix::diagonal({2.0, -4.0, 0.5});
  SpaiPreconditioner spai(a);
  EXPECT_NEAR(spai.matrix().at(0, 0), 0.5, 1e-10);
  EXPECT_NEAR(spai.matrix().at(1, 1), -0.25, 1e-10);
  EXPECT_NEAR(spai.matrix().at(2, 2), 2.0, 1e-10);
}

TEST(Spai, ReducesGmresIterations) {
  const CsrMatrix a = laplace_2d(16);
  std::vector<real_t> b(a.rows(), 1.0);
  IdentityPreconditioner id;
  SpaiPreconditioner spai(a);
  std::vector<real_t> x;
  SolveOptions opt;
  opt.restart = 400;
  const index_t base = solve_gmres(a, b, id, x, opt).iterations;
  const SolveResult res = solve_gmres(a, b, spai, x, opt);
  EXPECT_TRUE(res.converged());
  EXPECT_LT(res.iterations, base);
}

TEST(Spai, Level2PatternApproximatesBetter) {
  // Residual ||P A - I||_F shrinks when the pattern is enriched.
  const CsrMatrix a = laplace_1d(30);
  SpaiOptions level1;
  level1.pattern_level = 1;
  SpaiOptions level2;
  level2.pattern_level = 2;
  auto residual = [&](const SpaiPreconditioner& p) {
    const CsrMatrix pa = p.matrix().multiply(a);
    return CsrMatrix::add(1.0, pa, -1.0, CsrMatrix::identity(30))
        .norm_frobenius();
  };
  const SpaiPreconditioner p1(a, level1);
  const SpaiPreconditioner p2(a, level2);
  EXPECT_LT(residual(p2), residual(p1));
  EXPECT_GT(p2.matrix().nnz(), p1.matrix().nnz());
}

TEST(Spai, RowCapRespected) {
  const CsrMatrix a = pdd_real_sparse(60, 0.3, 31);
  SpaiOptions opt;
  opt.max_row_nnz = 5;
  const SpaiPreconditioner spai(a, opt);
  for (index_t i = 0; i < 60; ++i) {
    EXPECT_LE(spai.matrix().row_nnz(i), 5);
  }
}

TEST(SparseApproximateInverse, PerfectPreconditionerConvergesInOneStep) {
  const CsrMatrix a = laplace_1d(12);
  const DenseMatrix inv = dense_inverse(DenseMatrix::from_csr(a));
  CooMatrix coo(12, 12);
  for (index_t i = 0; i < 12; ++i) {
    for (index_t j = 0; j < 12; ++j) {
      if (std::abs(inv(i, j)) > 1e-14) coo.add(i, j, inv(i, j));
    }
  }
  SparseApproximateInverse p(CsrMatrix::from_coo(std::move(coo)), "exact");
  std::vector<real_t> b(12, 1.0);
  std::vector<real_t> x;
  const SolveResult res = solve_gmres(a, b, p, x, {});
  EXPECT_TRUE(res.converged());
  EXPECT_LE(res.iterations, 2);
}

}  // namespace
}  // namespace mcmi
