// Tests for the SpmvPlan subsystem: nnz-balanced chunking, bit-equality of
// plan-based SpMV with the naive row loop on structured and adversarially
// skewed matrices, fused-kernel equivalence to unfused compositions,
// thread-count determinism of every fused reduction (including a full CG
// solve), and the cached transpose gather.

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#ifdef _OPENMP
#include <omp.h>
#endif

#include "gen/laplace.hpp"
#include "gen/random_sparse.hpp"
#include "krylov/solver.hpp"
#include "mcmc/inverter.hpp"
#include "precond/jacobi.hpp"
#include "sparse/csr.hpp"
#include "sparse/vector_ops.hpp"

namespace mcmi {
namespace {

/// The seed implementation's SpMV: serial row loop, ascending columns.
std::vector<real_t> naive_multiply(const CsrMatrix& a,
                                   const std::vector<real_t>& x) {
  std::vector<real_t> y(static_cast<std::size_t>(a.rows()), 0.0);
  for (index_t i = 0; i < a.rows(); ++i) {
    real_t sum = 0.0;
    for (index_t k = a.row_ptr()[i]; k < a.row_ptr()[i + 1]; ++k) {
      sum += a.values()[k] * x[a.col_idx()[k]];
    }
    y[i] = sum;
  }
  return y;
}

/// The seed implementation's transpose product: serial column scatter.
std::vector<real_t> naive_multiply_transpose(const CsrMatrix& a,
                                             const std::vector<real_t>& x) {
  std::vector<real_t> y(static_cast<std::size_t>(a.cols()), 0.0);
  for (index_t i = 0; i < a.rows(); ++i) {
    for (index_t k = a.row_ptr()[i]; k < a.row_ptr()[i + 1]; ++k) {
      y[a.col_idx()[k]] += a.values()[k] * x[i];
    }
  }
  return y;
}

std::vector<real_t> test_vector(index_t n, u64 salt) {
  std::vector<real_t> x(static_cast<std::size_t>(n));
  for (index_t i = 0; i < n; ++i) {
    x[i] = std::sin(static_cast<real_t>(i + 1) * 0.7 +
                    static_cast<real_t>(salt));
  }
  return x;
}

/// Arrow matrix: one dense row plus a diagonal — the adversarially skewed
/// nnz distribution (one row holds ~half the nonzeros).
CsrMatrix arrow_matrix(index_t n) {
  CooMatrix coo(n, n);
  for (index_t j = 0; j < n; ++j) coo.add(0, j, 1.0 / static_cast<real_t>(j + 1));
  for (index_t i = 1; i < n; ++i) {
    coo.add(i, i, 4.0);
    coo.add(i, 0, -1.0);
  }
  return CsrMatrix::from_coo(std::move(coo));
}

TEST(SpmvPlan, ChunksPartitionAllRows) {
  const CsrMatrix a = laplace_2d(140);  // ~97k nnz: several chunks
  const SpmvPlan& plan = a.spmv_plan();
  ASSERT_GT(plan.num_chunks(), 1);
  EXPECT_EQ(plan.chunk_begin(0), 0);
  EXPECT_EQ(plan.chunk_begin(plan.num_chunks()), a.rows());
  for (index_t c = 0; c < plan.num_chunks(); ++c) {
    EXPECT_LE(plan.chunk_begin(c), plan.chunk_begin(c + 1));
  }
}

TEST(SpmvPlan, ChunksAreNnzBalanced) {
  const CsrMatrix a = laplace_2d(140);
  const SpmvPlan& plan = a.spmv_plan();
  const index_t target = a.nnz() / plan.num_chunks();
  for (index_t c = 0; c < plan.num_chunks(); ++c) {
    const index_t nnz_c = a.row_ptr()[plan.chunk_begin(c + 1)] -
                          a.row_ptr()[plan.chunk_begin(c)];
    // Balanced up to one row's width (boundaries snap to rows).
    EXPECT_NEAR(static_cast<real_t>(nnz_c), static_cast<real_t>(target),
                static_cast<real_t>(target) * 0.5 + 8.0)
        << "chunk " << c;
  }
}

TEST(SpmvPlan, MatchesNaiveBitExactOnStructuredMatrix) {
  for (index_t m : {index_t{5}, index_t{23}, index_t{64}, index_t{140}}) {
    const CsrMatrix a = laplace_2d(m);
    const std::vector<real_t> x = test_vector(a.cols(), 1);
    EXPECT_EQ(a.multiply(x), naive_multiply(a, x)) << "m=" << m;
  }
}

TEST(SpmvPlan, MatchesNaiveBitExactOnSkewedMatrix) {
  const CsrMatrix a = arrow_matrix(30000);  // dense row spans many chunks
  const std::vector<real_t> x = test_vector(a.cols(), 2);
  EXPECT_EQ(a.multiply(x), naive_multiply(a, x));

  const CsrMatrix r = pdd_real_sparse(300, 0.1, 17);
  const std::vector<real_t> xr = test_vector(r.cols(), 3);
  EXPECT_EQ(r.multiply(xr), naive_multiply(r, xr));
}

TEST(SpmvPlan, UniformWidthRowsMatchNaive) {
  // Diagonal (width 1) and pentadiagonal-free shapes exercise the unrolled
  // fixed-width kernels; they must stay bit-identical to the generic loop.
  std::vector<real_t> d(20000);
  for (std::size_t i = 0; i < d.size(); ++i) {
    d[i] = 1.0 + static_cast<real_t>(i % 7);
  }
  const CsrMatrix diag = CsrMatrix::diagonal(d);
  const std::vector<real_t> x = test_vector(diag.cols(), 4);
  EXPECT_EQ(diag.multiply(x), naive_multiply(diag, x));
}

TEST(SpmvPlan, FusedDotMatchesUnfusedComposition) {
  const CsrMatrix a = laplace_2d(80);
  const std::vector<real_t> x = test_vector(a.cols(), 5);
  const std::vector<real_t> w = test_vector(a.rows(), 6);

  std::vector<real_t> y_ref;
  a.multiply(x, y_ref);
  const real_t xy_ref = dot(x, y_ref);
  const real_t wy_ref = dot(w, y_ref);
  const real_t yy_ref = dot(y_ref, y_ref);

  std::vector<real_t> y;
  const real_t xy = a.multiply_dot(x, y);
  EXPECT_EQ(y, y_ref);  // the product itself is unchanged by fusion
  EXPECT_NEAR(xy, xy_ref, 1e-12 * std::abs(xy_ref) + 1e-14);

  const real_t wy = a.multiply_dot(x, y, w);
  EXPECT_NEAR(wy, wy_ref, 1e-12 * std::abs(wy_ref) + 1e-14);

  real_t wy2, yy;
  a.multiply_dot_norm2(x, y, w, wy2, yy);
  EXPECT_NEAR(wy2, wy_ref, 1e-12 * std::abs(wy_ref) + 1e-14);
  EXPECT_NEAR(yy, yy_ref, 1e-12 * yy_ref + 1e-14);
}

TEST(SpmvPlan, PrecondFusedApplyMatchesDefaultComposition) {
  // SparseApproximateInverse overrides the fused virtuals with plan kernels;
  // Jacobi uses the Preconditioner defaults.  Both must agree with the
  // unfused apply-then-reduce composition.
  const CsrMatrix a = laplace_2d(40);
  const auto sp = McmcInverter::build_preconditioner(a, {1.0, 0.25, 0.125});
  const JacobiPreconditioner jp(a);
  const std::vector<real_t> r = test_vector(a.rows(), 7);
  for (const Preconditioner* p :
       {static_cast<const Preconditioner*>(sp.get()),
        static_cast<const Preconditioner*>(&jp)}) {
    const std::vector<real_t> z_ref = p->apply(r);
    std::vector<real_t> z;
    real_t rz, zz;
    p->apply_dot_norm2(r, z, r, rz, zz);
    EXPECT_EQ(z, z_ref);
    EXPECT_NEAR(rz, dot(r, z_ref), 1e-12 * std::abs(dot(r, z_ref)) + 1e-14);
    EXPECT_NEAR(zz, dot(z_ref, z_ref), 1e-12 * dot(z_ref, z_ref) + 1e-14);
    const real_t rz2 = p->apply_dot(r, z, r);
    EXPECT_NEAR(rz2, dot(r, z_ref), 1e-12 * std::abs(dot(r, z_ref)) + 1e-14);
  }
}

#ifdef _OPENMP
/// Run `body` at several thread counts and require bit-identical results.
template <typename Body>
void expect_thread_invariant(const Body& body) {
  const int saved = omp_get_max_threads();
  const auto reference = body();
  for (int threads : {1, 2, 4}) {
    omp_set_num_threads(threads);
    const auto got = body();
    omp_set_num_threads(saved);
    EXPECT_EQ(got, reference) << "threads=" << threads;
  }
}

TEST(SpmvPlan, DeterministicAcrossThreadCounts) {
  const CsrMatrix a = laplace_2d(140);
  const std::vector<real_t> x = test_vector(a.cols(), 8);
  const std::vector<real_t> w = test_vector(a.rows(), 9);
  expect_thread_invariant([&] { return a.multiply(x); });
  expect_thread_invariant([&] {
    std::vector<real_t> y;
    real_t wy, yy;
    a.multiply_dot_norm2(x, y, w, wy, yy);
    return std::vector<real_t>{wy, yy};
  });
  expect_thread_invariant([&] {
    std::vector<real_t> y;
    return std::vector<real_t>{a.multiply_dot(x, y, w)};
  });
}

TEST(SpmvPlan, CgSolveDeterministicAcrossThreadCounts) {
  // The acceptance contract of the plan rewrite: solver outputs bit-identical
  // at any thread count, through the fused SpMV, preconditioner and MGS
  // reductions (n > the vector-ops parallel threshold so every parallel path
  // actually runs).
  const CsrMatrix a = laplace_2d(140);
  const auto p = McmcInverter::build_preconditioner(a, {1.0, 0.5, 0.25});
  const std::vector<real_t> b(static_cast<std::size_t>(a.rows()), 1.0);
  SolveOptions opt;
  opt.max_iterations = 40;
  opt.tolerance = 0.0;  // run all 40 iterations
  expect_thread_invariant([&] {
    std::vector<real_t> x;
    (void)solve_cg(a, b, *p, x, opt);
    return x;
  });
}

TEST(SpmvPlan, TransposeGatherDeterministicAcrossThreadCounts) {
  const CsrMatrix a = pdd_real_sparse(400, 0.2, 29);
  const std::vector<real_t> x = test_vector(a.rows(), 10);
  expect_thread_invariant([&] {
    std::vector<real_t> y;
    a.multiply_transpose(x, y);
    return y;
  });
}
#endif  // _OPENMP

TEST(TransposeGather, MatchesSerialScatter) {
  const CsrMatrix a = pdd_real_sparse(300, 0.15, 41);
  const std::vector<real_t> x = test_vector(a.rows(), 11);
  std::vector<real_t> y;
  a.multiply_transpose(x, y);
  EXPECT_EQ(y, naive_multiply_transpose(a, x));
  // Repeat through the now-cached gather structure.
  std::vector<real_t> y2;
  a.multiply_transpose(x, y2);
  EXPECT_EQ(y2, y);
}

TEST(TransposeGather, RectangularMatrix) {
  CooMatrix coo(3, 5);
  coo.add(0, 0, 1.0);
  coo.add(0, 4, 2.0);
  coo.add(1, 2, -3.0);
  coo.add(2, 1, 0.5);
  coo.add(2, 4, 1.5);
  const CsrMatrix a = CsrMatrix::from_coo(std::move(coo));
  const std::vector<real_t> x = {1.0, 2.0, 3.0};
  std::vector<real_t> y;
  a.multiply_transpose(x, y);
  EXPECT_EQ(y, naive_multiply_transpose(a, x));
}

TEST(TransposeGather, SeesInPlaceValueEdits) {
  // The gather reads through source positions, so editing values() in place
  // (the documented CsrMatrix contract) must be reflected without a rebuild.
  CsrMatrix a = laplace_2d(6);
  const std::vector<real_t> x = test_vector(a.rows(), 12);
  std::vector<real_t> before;
  a.multiply_transpose(x, before);  // builds and caches the gather
  for (real_t& v : a.values()) v *= 2.0;
  std::vector<real_t> after;
  a.multiply_transpose(x, after);
  ASSERT_EQ(after.size(), before.size());
  for (std::size_t j = 0; j < after.size(); ++j) {
    EXPECT_DOUBLE_EQ(after[j], 2.0 * before[j]);
  }
}

TEST(SpmvPlan, EmptyAndDegenerateShapes) {
  const CsrMatrix empty;
  EXPECT_EQ(empty.rows(), 0);
  std::vector<real_t> y;
  empty.multiply(std::vector<real_t>{}, y);
  EXPECT_TRUE(y.empty());

  // A matrix with empty rows: the plan must still write those y entries.
  CooMatrix coo(4, 4);
  coo.add(1, 2, 3.0);
  const CsrMatrix sparse_rows = CsrMatrix::from_coo(std::move(coo));
  std::vector<real_t> x = {1.0, 1.0, 2.0, 1.0};
  std::vector<real_t> prefilled = {9.0, 9.0, 9.0, 9.0};
  sparse_rows.multiply(x, prefilled);
  EXPECT_EQ(prefilled, (std::vector<real_t>{0.0, 6.0, 0.0, 0.0}));
}

}  // namespace
}  // namespace mcmi
