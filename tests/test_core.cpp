// Tests for src/core: RNG streams, parallel partition, tables, env parsing.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <fstream>
#include <set>
#include <sstream>

#include "core/env.hpp"
#include "core/parallel.hpp"
#include "core/rng.hpp"
#include "core/table.hpp"
#include "core/timer.hpp"

namespace mcmi {
namespace {

TEST(Rng, SameKeySameStream) {
  Xoshiro256 a = make_stream(42, 1, 2, 3);
  Xoshiro256 b = make_stream(42, 1, 2, 3);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentKeysDiffer) {
  Xoshiro256 a = make_stream(42, 1, 2, 3);
  Xoshiro256 b = make_stream(42, 1, 2, 4);
  Xoshiro256 c = make_stream(43, 1, 2, 3);
  int same_ab = 0, same_ac = 0;
  for (int i = 0; i < 64; ++i) {
    const u64 va = a();
    if (va == b()) ++same_ab;
    if (va == c()) ++same_ac;
  }
  EXPECT_LT(same_ab, 2);
  EXPECT_LT(same_ac, 2);
}

TEST(Rng, KeyOrderMatters) {
  Xoshiro256 a = make_stream(7, 1, 2);
  Xoshiro256 b = make_stream(7, 2, 1);
  EXPECT_NE(a(), b());
}

TEST(Rng, Uniform01InRange) {
  Xoshiro256 rng = make_stream(5);
  for (int i = 0; i < 10000; ++i) {
    const real_t u = uniform01(rng);
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, Uniform01MeanIsHalf) {
  Xoshiro256 rng = make_stream(11);
  real_t sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += uniform01(rng);
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, UniformIndexCoversRangeWithoutBias) {
  Xoshiro256 rng = make_stream(13);
  std::vector<int> counts(7, 0);
  const int n = 70000;
  for (int i = 0; i < n; ++i) counts[uniform_index(rng, 7)]++;
  for (int c : counts) EXPECT_NEAR(c, n / 7, n / 7 * 0.1);
}

TEST(Rng, NormalMoments) {
  Xoshiro256 rng = make_stream(17);
  const int n = 200000;
  real_t sum = 0.0, sum2 = 0.0;
  for (int i = 0; i < n; ++i) {
    const real_t x = normal01(rng);
    sum += x;
    sum2 += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum2 / n, 1.0, 0.02);
}

TEST(Rng, NormalScaleShift) {
  Xoshiro256 rng = make_stream(19);
  const int n = 100000;
  real_t sum = 0.0;
  for (int i = 0; i < n; ++i) sum += normal(rng, 3.0, 0.5);
  EXPECT_NEAR(sum / n, 3.0, 0.02);
}

TEST(ChainPartition, CoversRangeExactly) {
  for (index_t total : {0, 1, 7, 100, 101}) {
    for (index_t ranks : {1, 2, 3, 8}) {
      ChainPartition part(total, ranks);
      index_t covered = 0;
      for (index_t r = 0; r < ranks; ++r) {
        EXPECT_EQ(part.begin(r), covered);
        covered += part.size(r);
      }
      EXPECT_EQ(covered, total);
    }
  }
}

TEST(ChainPartition, BalancedWithinOne) {
  ChainPartition part(103, 4);
  index_t lo = 103, hi = 0;
  for (index_t r = 0; r < 4; ++r) {
    lo = std::min(lo, part.size(r));
    hi = std::max(hi, part.size(r));
  }
  EXPECT_LE(hi - lo, 1);
}

TEST(ParallelFor, VisitsEveryIndexOnce) {
  std::vector<int> hits(1000, 0);
  parallel_for(0, 1000, [&](index_t i) { hits[i]++; });
  for (int h : hits) EXPECT_EQ(h, 1);
}

TEST(TextTable, AlignsAndCounts) {
  TextTable t({"name", "value"});
  t.add_row({"a", TextTable::fmt(static_cast<index_t>(3))});
  t.add_row({"bb", TextTable::sci(12345.6, 2)});
  EXPECT_EQ(t.rows(), 2);
  std::ostringstream os;
  t.print(os);
  EXPECT_NE(os.str().find("name"), std::string::npos);
  EXPECT_NE(os.str().find("1.23e+04"), std::string::npos);
}

TEST(TextTable, RejectsRaggedRow) {
  TextTable t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), Error);
}

TEST(TextTable, CsvRoundtripEscaping) {
  TextTable t({"x"});
  t.add_row({"va\"l,ue"});
  const std::string path = "/tmp/mcmi_test_table.csv";
  t.write_csv(path);
  std::ifstream in(path);
  std::string header, row;
  std::getline(in, header);
  std::getline(in, row);
  EXPECT_EQ(header, "x");
  EXPECT_EQ(row, "\"va\"\"l,ue\"");
}

TEST(Env, ParsesIntRealFlag) {
  setenv("MCMI_TEST_INT", "42", 1);
  setenv("MCMI_TEST_REAL", "2.5", 1);
  setenv("MCMI_TEST_FLAG", "yes", 1);
  EXPECT_EQ(env_int("MCMI_TEST_INT", 0), 42);
  EXPECT_DOUBLE_EQ(env_real("MCMI_TEST_REAL", 0.0), 2.5);
  EXPECT_TRUE(env_flag("MCMI_TEST_FLAG", false));
  EXPECT_EQ(env_int("MCMI_TEST_MISSING", 7), 7);
  setenv("MCMI_TEST_INT", "not-a-number", 1);
  EXPECT_EQ(env_int("MCMI_TEST_INT", 7), 7);
}

TEST(Timer, MeasuresElapsed) {
  WallTimer t;
  volatile double x = 0;
  for (int i = 0; i < 100000; ++i) x += std::sqrt(static_cast<double>(i));
  EXPECT_GE(t.seconds(), 0.0);
  EXPECT_GE(t.millis(), t.seconds());
}

}  // namespace
}  // namespace mcmi
