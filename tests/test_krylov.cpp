// Tests for src/krylov: all three solvers against dense LU references,
// preconditioned variants, restart logic and failure handling.

#include <gtest/gtest.h>

#include <cmath>

#include "core/rng.hpp"
#include "dense/lu.hpp"
#include "dense/matrix.hpp"
#include "gen/laplace.hpp"
#include "gen/plasma.hpp"
#include "gen/random_sparse.hpp"
#include "krylov/solver.hpp"
#include "precond/jacobi.hpp"
#include "sparse/vector_ops.hpp"

namespace mcmi {
namespace {

std::vector<real_t> random_rhs(index_t n, u64 seed) {
  Xoshiro256 rng = make_stream(seed);
  std::vector<real_t> b(static_cast<std::size_t>(n));
  for (real_t& v : b) v = normal01(rng);
  return b;
}

real_t true_residual(const CsrMatrix& a, const std::vector<real_t>& x,
                     const std::vector<real_t>& b) {
  return norm2(subtract(b, a.multiply(x))) / norm2(b);
}

TEST(Cg, SolvesLaplacianToTolerance) {
  const CsrMatrix a = laplace_2d(12);
  const std::vector<real_t> b = random_rhs(a.rows(), 1);
  IdentityPreconditioner id;
  std::vector<real_t> x;
  SolveOptions opt;
  opt.tolerance = 1e-10;
  const SolveResult res = solve_cg(a, b, id, x, opt);
  EXPECT_TRUE(res.converged());
  EXPECT_LT(true_residual(a, x, b), 1e-8);
}

TEST(Cg, MatchesDenseSolve) {
  const CsrMatrix a = laplace_2d(8);
  const std::vector<real_t> b = random_rhs(a.rows(), 2);
  IdentityPreconditioner id;
  std::vector<real_t> x;
  SolveOptions opt;
  opt.tolerance = 1e-12;
  solve_cg(a, b, id, x, opt);
  const std::vector<real_t> x_ref =
      dense_solve(DenseMatrix::from_csr(a), b);
  for (index_t i = 0; i < a.rows(); ++i) EXPECT_NEAR(x[i], x_ref[i], 1e-7);
}

TEST(Cg, JacobiPreconditionerKeepsCorrectSolution) {
  const CsrMatrix a = random_spd(60, 4, 1.0, 5);
  const std::vector<real_t> b = random_rhs(60, 3);
  JacobiPreconditioner jacobi(a);
  std::vector<real_t> x;
  SolveOptions opt;
  opt.tolerance = 1e-11;
  const SolveResult res = solve_cg(a, b, jacobi, x, opt);
  EXPECT_TRUE(res.converged());
  EXPECT_LT(true_residual(a, x, b), 1e-8);
}

TEST(Cg, FiniteTerminationInExactArithmetic) {
  // CG converges in at most n steps (plus rounding slack).
  const CsrMatrix a = laplace_1d(30);
  const std::vector<real_t> b = random_rhs(30, 4);
  IdentityPreconditioner id;
  std::vector<real_t> x;
  SolveOptions opt;
  opt.tolerance = 1e-10;
  const SolveResult res = solve_cg(a, b, id, x, opt);
  EXPECT_TRUE(res.converged());
  EXPECT_LE(res.iterations, 35);
}

TEST(Gmres, SolvesNonsymmetricSystem) {
  const CsrMatrix a = plasma_a00512();
  const std::vector<real_t> b = random_rhs(a.rows(), 5);
  IdentityPreconditioner id;
  std::vector<real_t> x;
  SolveOptions opt;
  opt.tolerance = 1e-10;
  opt.max_iterations = 2000;
  opt.restart = 200;
  const SolveResult res = solve_gmres(a, b, id, x, opt);
  EXPECT_TRUE(res.converged());
  EXPECT_LT(true_residual(a, x, b), 1e-7);
}

TEST(Gmres, FullKrylovConvergesWithinN) {
  const CsrMatrix a = pdd_real_sparse(40, 0.2, 7);
  const std::vector<real_t> b = random_rhs(40, 6);
  IdentityPreconditioner id;
  std::vector<real_t> x;
  SolveOptions opt;
  opt.restart = 40;  // full GMRES
  opt.tolerance = 1e-12;
  const SolveResult res = solve_gmres(a, b, id, x, opt);
  EXPECT_TRUE(res.converged());
  EXPECT_LE(res.iterations, 41);
}

TEST(Gmres, RestartedStillConverges) {
  const CsrMatrix a = pdd_real_sparse(60, 0.15, 9);
  const std::vector<real_t> b = random_rhs(60, 7);
  IdentityPreconditioner id;
  std::vector<real_t> x;
  SolveOptions opt;
  opt.restart = 5;  // aggressive restarting
  opt.tolerance = 1e-9;
  opt.max_iterations = 3000;
  const SolveResult res = solve_gmres(a, b, id, x, opt);
  EXPECT_TRUE(res.converged());
  EXPECT_LT(true_residual(a, x, b), 1e-6);
}

TEST(Gmres, HistoryIsMonotoneNonincreasingWithinCycle) {
  const CsrMatrix a = laplace_2d(10);
  const std::vector<real_t> b = random_rhs(a.rows(), 8);
  IdentityPreconditioner id;
  std::vector<real_t> x;
  SolveOptions opt;
  opt.restart = 200;
  opt.record_history = true;
  const SolveResult res = solve_gmres(a, b, id, x, opt);
  ASSERT_TRUE(res.converged());
  for (std::size_t i = 1; i < res.history.size(); ++i) {
    EXPECT_LE(res.history[i], res.history[i - 1] + 1e-14);
  }
}

TEST(Gmres, ZeroRhsConvergesImmediately) {
  const CsrMatrix a = laplace_1d(10);
  IdentityPreconditioner id;
  std::vector<real_t> x;
  const SolveResult res =
      solve_gmres(a, std::vector<real_t>(10, 0.0), id, x, {});
  EXPECT_TRUE(res.converged());
  EXPECT_EQ(res.iterations, 0);
}

TEST(Bicgstab, SolvesNonsymmetricSystem) {
  const CsrMatrix a = pdd_real_sparse(80, 0.15, 11);
  const std::vector<real_t> b = random_rhs(80, 9);
  IdentityPreconditioner id;
  std::vector<real_t> x;
  SolveOptions opt;
  opt.tolerance = 1e-10;
  const SolveResult res = solve_bicgstab(a, b, id, x, opt);
  EXPECT_TRUE(res.converged());
  EXPECT_LT(true_residual(a, x, b), 1e-7);
}

TEST(Bicgstab, JacobiPreconditionedMatchesDense) {
  const CsrMatrix a = random_diag_dominant(50, 5, 2.0, 13);
  const std::vector<real_t> b = random_rhs(50, 10);
  JacobiPreconditioner jacobi(a);
  std::vector<real_t> x;
  SolveOptions opt;
  opt.tolerance = 1e-11;
  const SolveResult res = solve_bicgstab(a, b, jacobi, x, opt);
  EXPECT_TRUE(res.converged());
  const std::vector<real_t> ref = dense_solve(DenseMatrix::from_csr(a), b);
  for (index_t i = 0; i < 50; ++i) EXPECT_NEAR(x[i], ref[i], 1e-6);
}

TEST(Solver, DispatchAndNames) {
  EXPECT_EQ(method_name(KrylovMethod::kCG), "cg");
  EXPECT_EQ(method_name(KrylovMethod::kGMRES), "gmres");
  EXPECT_EQ(method_name(KrylovMethod::kBiCGStab), "bicgstab");
  EXPECT_EQ(parse_method("gmres"), KrylovMethod::kGMRES);
  EXPECT_THROW(parse_method("qmr"), Error);
}

TEST(Solver, MaxIterationsRespected) {
  const CsrMatrix a = laplace_2d(24);  // needs ~90 iterations
  const std::vector<real_t> b = random_rhs(a.rows(), 12);
  IdentityPreconditioner id;
  std::vector<real_t> x;
  SolveOptions opt;
  opt.max_iterations = 5;
  const SolveResult res = solve_cg(a, b, id, x, opt);
  EXPECT_FALSE(res.converged());
  EXPECT_EQ(res.iterations, 5);
}

/// A "preconditioner" that produces non-finite output: the solvers must
/// fail gracefully (no exception, a precise kNonFinite verdict) — this is
/// the divergent-MCMC code path of the training data.
class PoisonPreconditioner final : public Preconditioner {
 public:
  void apply(const std::vector<real_t>& x,
             std::vector<real_t>& y) const override {
    y.assign(x.size(), std::numeric_limits<real_t>::infinity());
  }
  [[nodiscard]] std::string name() const override { return "poison"; }
};

class SolverFailure : public ::testing::TestWithParam<KrylovMethod> {};

TEST_P(SolverFailure, NonFinitePreconditionerFailsGracefully) {
  const CsrMatrix a = laplace_1d(20);
  PoisonPreconditioner poison;
  std::vector<real_t> x;
  SolveOptions opt;
  opt.max_iterations = 50;
  const SolveResult res =
      solve(GetParam(), a, std::vector<real_t>(20, 1.0), poison, x, opt);
  EXPECT_FALSE(res.converged());
  EXPECT_EQ(res.status, SolveStatus::kNonFinite);
}

INSTANTIATE_TEST_SUITE_P(AllMethods, SolverFailure,
                         ::testing::Values(KrylovMethod::kCG,
                                           KrylovMethod::kGMRES,
                                           KrylovMethod::kBiCGStab));

/// All solvers agree with the dense reference on a well-conditioned
/// nonsymmetric (or SPD, for CG) system.
class SolverAgreement : public ::testing::TestWithParam<KrylovMethod> {};

TEST_P(SolverAgreement, MatchesDenseReference) {
  const KrylovMethod method = GetParam();
  const CsrMatrix a = method == KrylovMethod::kCG
                          ? random_spd(40, 4, 1.0, 15)
                          : random_diag_dominant(40, 4, 2.0, 15);
  const std::vector<real_t> b = random_rhs(40, 16);
  IdentityPreconditioner id;
  std::vector<real_t> x;
  SolveOptions opt;
  opt.tolerance = 1e-11;
  opt.restart = 40;
  const SolveResult res = solve(method, a, b, id, x, opt);
  ASSERT_TRUE(res.converged()) << method_name(method);
  const std::vector<real_t> ref = dense_solve(DenseMatrix::from_csr(a), b);
  for (index_t i = 0; i < 40; ++i) {
    EXPECT_NEAR(x[i], ref[i], 1e-6) << method_name(method);
  }
}

INSTANTIATE_TEST_SUITE_P(AllMethods, SolverAgreement,
                         ::testing::Values(KrylovMethod::kCG,
                                           KrylovMethod::kGMRES,
                                           KrylovMethod::kBiCGStab));

}  // namespace
}  // namespace mcmi
