// Tests for src/mcmc/batched_build: every trial of a batched grid build must
// be bit-identical to its standalone McmcInverter::compute() — the CRN
// prefix-sharing invariant — across thread counts, rank partitions, sampling
// methods, and convergent / divergent kernels.

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#ifdef _OPENMP
#include <omp.h>
#endif

#include "gen/laplace.hpp"
#include "gen/random_sparse.hpp"
#include "mcmc/batched_build.hpp"
#include "mcmc/inverter.hpp"
#include "sparse/coo.hpp"

namespace mcmi {
namespace {

/// A matrix whose off-diagonal mass exceeds the diagonal: with near-zero
/// alpha the Neumann series diverges (||B||_inf >= 1) and walks hit the
/// divergence guard / walk cap instead of the delta truncation.
CsrMatrix divergent_matrix() {
  CooMatrix coo(20, 20);
  for (index_t i = 0; i < 20; ++i) {
    coo.add(i, i, 1.0);
    coo.add(i, (i + 1) % 20, 1.0);
    coo.add(i, (i + 7) % 20, -1.0);
  }
  return CsrMatrix::from_coo(std::move(coo));
}

/// The shared 6-point (eps, delta) grid exercised by the equality tests:
/// spans chain counts 2..117 and both loose and tight truncation.
std::vector<GridTrial> test_grid() {
  return {{0.5, 0.5},      {0.5, 0.0625}, {0.25, 0.125},
          {0.125, 0.0625}, {0.0625, 0.5}, {0.0625, 0.03125}};
}

void expect_equal(const CsrMatrix& batched, const CsrMatrix& standalone,
                  const char* label, std::size_t trial) {
  ASSERT_EQ(batched.nnz(), standalone.nnz()) << label << " trial " << trial;
  EXPECT_EQ(batched.row_ptr(), standalone.row_ptr())
      << label << " trial " << trial;
  EXPECT_EQ(batched.col_idx(), standalone.col_idx())
      << label << " trial " << trial;
  EXPECT_EQ(batched.values(), standalone.values())  // bit-identical
      << label << " trial " << trial;
}

/// Batched-vs-standalone bit-equality for every grid point of `trials` on
/// `a`, under `options`.
void check_grid(const CsrMatrix& a, real_t alpha,
                const std::vector<GridTrial>& trials,
                const McmcOptions& options, const char* label) {
  const BatchedGridResult batched =
      batched_grid_build(a, alpha, trials, options);
  ASSERT_EQ(batched.preconditioners.size(), trials.size());
  ASSERT_EQ(batched.info.size(), trials.size());
  for (std::size_t t = 0; t < trials.size(); ++t) {
    McmcInverter standalone(a, {alpha, trials[t].eps, trials[t].delta},
                            options);
    const CsrMatrix reference = standalone.compute();
    expect_equal(batched.preconditioners[t], reference, label, t);
    // The per-trial accounting must match the trial's own truncated work.
    EXPECT_EQ(batched.info[t].total_transitions,
              standalone.info().total_transitions)
        << label << " trial " << t;
    EXPECT_EQ(batched.info[t].chains_per_row,
              standalone.info().chains_per_row);
    EXPECT_EQ(batched.info[t].walk_cutoff, standalone.info().walk_cutoff);
    EXPECT_EQ(batched.info[t].b_norm_inf, standalone.info().b_norm_inf);
    EXPECT_EQ(batched.info[t].neumann_convergent,
              standalone.info().neumann_convergent);
    EXPECT_GE(batched.info[t].build_seconds, 0.0);
  }
}

TEST(BatchedBuild, BitIdenticalOnLaplace) {
  const CsrMatrix a = laplace_2d(10);
  check_grid(a, 1.0, test_grid(), {}, "laplace/alias");
  McmcOptions cdf;
  cdf.sampling = SamplingMethod::kInverseCdf;
  check_grid(a, 1.0, test_grid(), cdf, "laplace/cdf");
}

TEST(BatchedBuild, BitIdenticalOnRandomSparse) {
  const CsrMatrix a = pdd_real_sparse(60, 0.12, 77);
  check_grid(a, 2.0, test_grid(), {}, "random/alias");
  McmcOptions cdf;
  cdf.sampling = SamplingMethod::kInverseCdf;
  check_grid(a, 2.0, test_grid(), cdf, "random/cdf");
}

TEST(BatchedBuild, BitIdenticalOnDivergentKernel) {
  // ||B||_inf >= 1: walks run to the cap or the divergence guard; both the
  // guard step and the cap must freeze each trial exactly as standalone.
  const CsrMatrix a = divergent_matrix();
  McmcOptions opt;
  opt.walk_cap = 64;
  check_grid(a, 0.01, test_grid(), opt, "divergent/alias");
  McmcOptions cdf = opt;
  cdf.sampling = SamplingMethod::kInverseCdf;
  check_grid(a, 0.01, test_grid(), cdf, "divergent/cdf");
}

TEST(BatchedBuild, DeterministicAcrossThreadCountsAndRanks) {
  const CsrMatrix a = pdd_real_sparse(50, 0.15, 51);
  const std::vector<GridTrial> trials = test_grid();

  auto build = [&](int threads, index_t ranks) {
#ifdef _OPENMP
    omp_set_num_threads(threads);
#else
    (void)threads;
#endif
    McmcOptions opt;
    opt.ranks = ranks;
    return batched_grid_build(a, 1.0, trials, opt);
  };

#ifdef _OPENMP
  const int saved = omp_get_max_threads();
#endif
  const BatchedGridResult r1 = build(1, 2);
  const BatchedGridResult r2 = build(2, 2);
  const BatchedGridResult r4 = build(4, 2);
  const BatchedGridResult rank1 = build(4, 1);
#ifdef _OPENMP
  omp_set_num_threads(saved);
#endif

  for (std::size_t t = 0; t < trials.size(); ++t) {
    expect_equal(r2.preconditioners[t], r1.preconditioners[t], "2-thread", t);
    expect_equal(r4.preconditioners[t], r1.preconditioners[t], "4-thread", t);
    expect_equal(rank1.preconditioners[t], r1.preconditioners[t], "1-rank", t);
    EXPECT_EQ(r2.info[t].total_transitions, r1.info[t].total_transitions);
    EXPECT_EQ(r4.info[t].total_transitions, r1.info[t].total_transitions);
  }
}

TEST(BatchedBuild, DuplicateTrialsGetIdenticalOutputs) {
  const CsrMatrix a = laplace_2d(8);
  const std::vector<GridTrial> trials = {{0.25, 0.125}, {0.25, 0.125}};
  const BatchedGridResult r = batched_grid_build(a, 1.0, trials);
  expect_equal(r.preconditioners[1], r.preconditioners[0], "duplicate", 1);
  EXPECT_EQ(r.info[0].total_transitions, r.info[1].total_transitions);
}

TEST(BatchedBuild, KernelCacheIsUsedAndHarmless) {
  const CsrMatrix a = pdd_real_sparse(40, 0.15, 51);
  const std::vector<GridTrial> trials = {{0.5, 0.25}, {0.25, 0.0625}};
  const BatchedGridResult no_cache = batched_grid_build(a, 1.0, trials);
  WalkKernelCache cache;
  const BatchedGridResult first =
      batched_grid_build(a, 1.0, trials, {}, &cache);
  const BatchedGridResult second =
      batched_grid_build(a, 1.0, trials, {}, &cache);
  EXPECT_EQ(cache.misses(), 1);
  EXPECT_EQ(cache.hits(), 1);
  for (std::size_t t = 0; t < trials.size(); ++t) {
    EXPECT_FALSE(first.info[t].kernel_cache_hit);
    EXPECT_TRUE(second.info[t].kernel_cache_hit);
    expect_equal(first.preconditioners[t], no_cache.preconditioners[t],
                 "cache-first", t);
    expect_equal(second.preconditioners[t], no_cache.preconditioners[t],
                 "cache-second", t);
  }
}

/// Replicate-batched builds must equal one batched build per seed — and so,
/// transitively through the PR 3 tests above, the standalone inverter.
void check_replicated(const CsrMatrix& a, real_t alpha,
                      const std::vector<GridTrial>& trials,
                      const std::vector<u64>& seeds,
                      const McmcOptions& options, const char* label) {
  const ReplicatedGridResult batched =
      replicate_batched_grid_build(a, alpha, trials, seeds, options);
  ASSERT_EQ(batched.replicates.size(), seeds.size());
  for (std::size_t r = 0; r < seeds.size(); ++r) {
    McmcOptions serial = options;
    serial.seed = seeds[r];
    ASSERT_EQ(batched.replicates[r].preconditioners.size(), trials.size());
    for (std::size_t t = 0; t < trials.size(); ++t) {
      McmcInverter standalone(a, {alpha, trials[t].eps, trials[t].delta},
                              serial);
      const CsrMatrix reference = standalone.compute();
      expect_equal(batched.replicates[r].preconditioners[t], reference, label,
                   r * 100 + t);
      EXPECT_EQ(batched.replicates[r].info[t].total_transitions,
                standalone.info().total_transitions)
          << label << " replicate " << r << " trial " << t;
      EXPECT_EQ(batched.replicates[r].info[t].chains_per_row,
                standalone.info().chains_per_row);
      EXPECT_EQ(batched.replicates[r].info[t].walk_cutoff,
                standalone.info().walk_cutoff);
      EXPECT_GE(batched.replicates[r].info[t].build_seconds, 0.0);
    }
  }
}

TEST(ReplicateBatchedBuild, BitIdenticalOnLaplace) {
  const CsrMatrix a = laplace_2d(10);
  const std::vector<u64> seeds = {11, 20250922, 77777};
  check_replicated(a, 1.0, test_grid(), seeds, {}, "rep/laplace/alias");
  McmcOptions cdf;
  cdf.sampling = SamplingMethod::kInverseCdf;
  check_replicated(a, 1.0, test_grid(), seeds, cdf, "rep/laplace/cdf");
}

TEST(ReplicateBatchedBuild, BitIdenticalOnRandomSparse) {
  const CsrMatrix a = pdd_real_sparse(60, 0.12, 77);
  const std::vector<u64> seeds = {1, 2, 3, 4};
  check_replicated(a, 2.0, test_grid(), seeds, {}, "rep/random/alias");
  McmcOptions cdf;
  cdf.sampling = SamplingMethod::kInverseCdf;
  check_replicated(a, 2.0, test_grid(), seeds, cdf, "rep/random/cdf");
}

TEST(ReplicateBatchedBuild, BitIdenticalOnDivergentKernel) {
  const CsrMatrix a = divergent_matrix();
  McmcOptions opt;
  opt.walk_cap = 64;
  const std::vector<u64> seeds = {5, 6};
  check_replicated(a, 0.01, test_grid(), seeds, opt, "rep/divergent/alias");
  McmcOptions cdf = opt;
  cdf.sampling = SamplingMethod::kInverseCdf;
  check_replicated(a, 0.01, test_grid(), seeds, cdf, "rep/divergent/cdf");
}

TEST(ReplicateBatchedBuild, DeterministicAcrossThreadCountsAndRanks) {
  const CsrMatrix a = pdd_real_sparse(50, 0.15, 51);
  const std::vector<GridTrial> trials = test_grid();
  const std::vector<u64> seeds = {31, 32, 33};

  auto build = [&](int threads, index_t ranks) {
#ifdef _OPENMP
    omp_set_num_threads(threads);
#else
    (void)threads;
#endif
    McmcOptions opt;
    opt.ranks = ranks;
    return replicate_batched_grid_build(a, 1.0, trials, seeds, opt);
  };

#ifdef _OPENMP
  const int saved = omp_get_max_threads();
#endif
  const ReplicatedGridResult r1 = build(1, 2);
  const ReplicatedGridResult r2 = build(2, 2);
  const ReplicatedGridResult r4 = build(4, 2);
  const ReplicatedGridResult rank1 = build(4, 1);
#ifdef _OPENMP
  omp_set_num_threads(saved);
#endif

  for (std::size_t r = 0; r < seeds.size(); ++r) {
    for (std::size_t t = 0; t < trials.size(); ++t) {
      expect_equal(r2.replicates[r].preconditioners[t],
                   r1.replicates[r].preconditioners[t], "rep-2-thread", t);
      expect_equal(r4.replicates[r].preconditioners[t],
                   r1.replicates[r].preconditioners[t], "rep-4-thread", t);
      expect_equal(rank1.replicates[r].preconditioners[t],
                   r1.replicates[r].preconditioners[t], "rep-1-rank", t);
      EXPECT_EQ(r2.replicates[r].info[t].total_transitions,
                r1.replicates[r].info[t].total_transitions);
    }
  }
}

TEST(ReplicateBatchedBuild, DuplicateSeedsGiveIdenticalReplicates) {
  const CsrMatrix a = laplace_2d(8);
  const std::vector<GridTrial> trials = {{0.25, 0.125}, {0.5, 0.25}};
  const ReplicatedGridResult r =
      replicate_batched_grid_build(a, 1.0, trials, {42, 42});
  for (std::size_t t = 0; t < trials.size(); ++t) {
    expect_equal(r.replicates[1].preconditioners[t],
                 r.replicates[0].preconditioners[t], "dup-seed", t);
    EXPECT_EQ(r.replicates[0].info[t].total_transitions,
              r.replicates[1].info[t].total_transitions);
  }
}

TEST(ReplicateBatchedBuild, RejectsEmptySeeds) {
  const CsrMatrix a = laplace_1d(4);
  EXPECT_THROW(replicate_batched_grid_build(a, 1.0, {{0.5, 0.5}}, {}), Error);
}

/// Multi-alpha builds must equal one replicate-batched build per group,
/// whether or not the shared-successor fast path engaged.
void check_multi_alpha(const CsrMatrix& a,
                       const std::vector<AlphaGroup>& groups,
                       const std::vector<u64>& seeds,
                       const McmcOptions& options, const char* label) {
  const MultiAlphaGridResult multi =
      multi_alpha_grid_build(a, groups, seeds, options);
  ASSERT_EQ(multi.groups.size(), groups.size());
  for (std::size_t g = 0; g < groups.size(); ++g) {
    ASSERT_EQ(multi.groups[g].replicates.size(), seeds.size());
    for (std::size_t r = 0; r < seeds.size(); ++r) {
      McmcOptions serial = options;
      serial.seed = seeds[r];
      for (std::size_t t = 0; t < groups[g].trials.size(); ++t) {
        McmcInverter standalone(
            a,
            {groups[g].alpha, groups[g].trials[t].eps,
             groups[g].trials[t].delta},
            serial);
        const CsrMatrix reference = standalone.compute();
        expect_equal(multi.groups[g].replicates[r].preconditioners[t],
                     reference, label, g * 1000 + r * 100 + t);
        EXPECT_EQ(multi.groups[g].replicates[r].info[t].total_transitions,
                  standalone.info().total_transitions)
            << label << " group " << g << " replicate " << r << " trial " << t;
      }
    }
  }
}

TEST(MultiAlphaBuild, SharesSuccessorDrawsWhenTablesAgree) {
  // The perturbed diagonals d = a_ii (1 + alpha) of alphas 1 and 3 differ
  // by exactly 2x, a power of two, so every kernel quantity scales exactly
  // and the alias tables round bit-identically: the runtime check must
  // enable sharing, and the shared ensemble must still reproduce each
  // alpha's standalone builds bit for bit.
  const CsrMatrix a = pdd_real_sparse(60, 0.12, 77);
  const std::vector<AlphaGroup> groups = {
      {1.0, {}, {{0.5, 0.5}, {0.25, 0.125}}},
      {3.0, {}, {{0.25, 0.125}, {0.125, 0.0625}}}};
  const std::vector<u64> seeds = {7, 8};
  const MultiAlphaGridResult multi =
      multi_alpha_grid_build(a, groups, seeds);
  EXPECT_TRUE(multi.shared_successors);
  check_multi_alpha(a, groups, seeds, {}, "multi/shared");
}

TEST(MultiAlphaBuild, FallsBackWhenTablesDiffer) {
  // Alphas 1 and 2 scale the diagonals by 2 vs 3 — not a power-of-two
  // ratio, so on a non-uniform matrix the per-alpha alias tables round
  // differently and the builder must fall back to per-alpha ensembles.
  const CsrMatrix a = pdd_real_sparse(60, 0.12, 77);
  const std::vector<AlphaGroup> groups = {{1.0, {}, {{0.25, 0.125}}},
                                          {2.0, {}, {{0.25, 0.125}}}};
  const WalkKernel k1 = build_walk_kernel(a, 1.0);
  const WalkKernel k2 = build_walk_kernel(a, 2.0);
  ASSERT_FALSE(can_share_successor_draws(k1, k2));  // the premise
  const std::vector<u64> seeds = {7, 8};
  const MultiAlphaGridResult multi =
      multi_alpha_grid_build(a, groups, seeds);
  EXPECT_FALSE(multi.shared_successors);
  check_multi_alpha(a, groups, seeds, {}, "multi/fallback");
}

TEST(MultiAlphaBuild, InverseCdfSharesWhenScalingExact) {
  // Alphas 1 and 3 scale every row's cumulative weights and row sum by
  // exactly 2x, so the u * S_u binary search picks the same transition slot
  // in both kernels for every RNG word: the inverse-CDF sharing check must
  // pass and the shared ensemble must reproduce each alpha's standalone
  // builds bit for bit — the A/B counterpart of the alias-path sharing test
  // above on the same matrix and grid shape.
  const CsrMatrix a = pdd_real_sparse(40, 0.15, 51);
  const std::vector<AlphaGroup> groups = {
      {1.0, {}, {{0.5, 0.25}, {0.25, 0.125}}},
      {3.0, {}, {{0.5, 0.25}, {0.125, 0.0625}}}};
  const WalkKernel k1 = build_walk_kernel(a, 1.0);
  const WalkKernel k3 = build_walk_kernel(a, 3.0);
  ASSERT_TRUE(can_share_inverse_cdf_draws(k1, k3));  // the premise
  McmcOptions cdf;
  cdf.sampling = SamplingMethod::kInverseCdf;
  const std::vector<u64> seeds = {9, 10};
  const MultiAlphaGridResult multi =
      multi_alpha_grid_build(a, groups, seeds, cdf);
  EXPECT_TRUE(multi.shared_successors);
  check_multi_alpha(a, groups, seeds, cdf, "multi/cdf-shared");
}

TEST(MultiAlphaBuild, InverseCdfFallsBackWhenScalingInexact) {
  // Alphas 1 and 2 scale the diagonals by 2 vs 3 — not a power-of-two
  // ratio — so the rounded cumulative weights are not exact rescalings and
  // the inverse-CDF builder must fall back to per-alpha ensembles.
  const CsrMatrix a = pdd_real_sparse(40, 0.15, 51);
  const std::vector<AlphaGroup> groups = {{1.0, {}, {{0.5, 0.25}}},
                                          {2.0, {}, {{0.5, 0.25}}}};
  const WalkKernel k1 = build_walk_kernel(a, 1.0);
  const WalkKernel k2 = build_walk_kernel(a, 2.0);
  ASSERT_FALSE(can_share_inverse_cdf_draws(k1, k2));  // the premise
  McmcOptions cdf;
  cdf.sampling = SamplingMethod::kInverseCdf;
  const std::vector<u64> seeds = {9, 10};
  const MultiAlphaGridResult multi =
      multi_alpha_grid_build(a, groups, seeds, cdf);
  EXPECT_FALSE(multi.shared_successors);
  check_multi_alpha(a, groups, seeds, cdf, "multi/cdf-fallback");
}

TEST(MultiAlphaBuild, InverseCdfDivergenceRetiresOneAlphaOnly) {
  // The inverse-CDF twin of DivergenceRetiresOneAlphaOnly below: alphas 0
  // and 1 share draws (exact 2x scaling), alpha 0 diverges, alpha 1 keeps
  // accumulating — both must still match their standalone builds.
  CooMatrix coo(16, 16);
  for (index_t i = 0; i < 16; ++i) {
    coo.add(i, i, 1.0);
    coo.add(i, (i + 1) % 16, 1.0);
    coo.add(i, (i + 3) % 16, -1.0);
    coo.add(i, (i + 5) % 16, 1.0);
    coo.add(i, (i + 7) % 16, -1.0);
  }
  const CsrMatrix a = CsrMatrix::from_coo(std::move(coo));
  McmcOptions opt;
  opt.walk_cap = 64;
  opt.sampling = SamplingMethod::kInverseCdf;
  const std::vector<AlphaGroup> groups = {
      {0.0, {}, {{0.25, 0.125}, {0.5, 0.5}}},
      {1.0, {}, {{0.25, 0.125}, {0.5, 0.5}}}};
  const WalkKernel k0 = build_walk_kernel(a, 0.0);
  const WalkKernel k1 = build_walk_kernel(a, 1.0);
  ASSERT_TRUE(can_share_inverse_cdf_draws(k0, k1));
  EXPECT_GE(k0.norm_inf, 1.0);
  const std::vector<u64> seeds = {21, 22};
  const MultiAlphaGridResult multi =
      multi_alpha_grid_build(a, groups, seeds, opt);
  EXPECT_TRUE(multi.shared_successors);
  check_multi_alpha(a, groups, seeds, opt, "multi/cdf-divergent");
}

TEST(MultiAlphaBuild, DivergenceRetiresOneAlphaOnly) {
  // Alphas 0 and 1 share successor draws (d scales by exactly 2x) on a
  // kernel that blows past the divergence guard at alpha 0 (row sums of 4:
  // |W| = 4^s crosses 1e30 near step 50, inside the cap) but not at
  // alpha 1 (row sums of 2: |W| = 2^64 stays under the guard): the shared
  // walk must retire the diverging alpha's groups at the guard step while
  // the other alpha keeps accumulating — and both must still match their
  // standalone builds bit for bit.
  CooMatrix coo(16, 16);
  for (index_t i = 0; i < 16; ++i) {
    coo.add(i, i, 1.0);
    coo.add(i, (i + 1) % 16, 1.0);
    coo.add(i, (i + 3) % 16, -1.0);
    coo.add(i, (i + 5) % 16, 1.0);
    coo.add(i, (i + 7) % 16, -1.0);
  }
  const CsrMatrix a = CsrMatrix::from_coo(std::move(coo));
  McmcOptions opt;
  opt.walk_cap = 64;
  const std::vector<AlphaGroup> groups = {
      {0.0, {}, {{0.25, 0.125}, {0.5, 0.5}}},
      {1.0, {}, {{0.25, 0.125}, {0.5, 0.5}}}};
  const WalkKernel k0 = build_walk_kernel(a, 0.0);
  const WalkKernel k1 = build_walk_kernel(a, 1.0);
  ASSERT_TRUE(can_share_successor_draws(k0, k1));
  EXPECT_GE(k0.norm_inf, 1.0);
  const std::vector<u64> seeds = {21, 22};
  const MultiAlphaGridResult multi =
      multi_alpha_grid_build(a, groups, seeds, opt);
  EXPECT_TRUE(multi.shared_successors);
  check_multi_alpha(a, groups, seeds, opt, "multi/divergent");
}

/// A/B conformance for the compile-time SIMD lane tier: the same replicate
/// build with the spec tier eligible (seed counts 4/8/16 dispatch to
/// run_lockstep_chains_spec<W>) and with force_dynamic_lanes set must be
/// bit-identical, per replicate and per trial, including the walk
/// accounting.  Dynamic-vs-standalone equality is already pinned above, so
/// this transitively pins spec-vs-standalone.
void check_lane_spec(const CsrMatrix& a, real_t alpha,
                     const std::vector<GridTrial>& trials,
                     const std::vector<u64>& seeds,
                     const McmcOptions& options, const char* label) {
  const ReplicatedGridResult spec =
      replicate_batched_grid_build(a, alpha, trials, seeds, options);
  McmcOptions dyn = options;
  dyn.force_dynamic_lanes = true;
  const ReplicatedGridResult dynamic =
      replicate_batched_grid_build(a, alpha, trials, seeds, dyn);
  ASSERT_EQ(spec.replicates.size(), seeds.size());
  ASSERT_EQ(dynamic.replicates.size(), seeds.size());
  for (std::size_t r = 0; r < seeds.size(); ++r) {
    for (std::size_t t = 0; t < trials.size(); ++t) {
      expect_equal(spec.replicates[r].preconditioners[t],
                   dynamic.replicates[r].preconditioners[t], label,
                   r * 100 + t);
      EXPECT_EQ(spec.replicates[r].info[t].total_transitions,
                dynamic.replicates[r].info[t].total_transitions)
          << label << " replicate " << r << " trial " << t;
      EXPECT_EQ(spec.replicates[r].info[t].divergence_retirements,
                dynamic.replicates[r].info[t].divergence_retirements)
          << label << " replicate " << r << " trial " << t;
    }
  }
}

std::vector<u64> lane_seeds(std::size_t count) {
  std::vector<u64> seeds(count);
  for (std::size_t i = 0; i < count; ++i) seeds[i] = 1000 + 37 * i;
  return seeds;
}

TEST(LaneSpecialisation, MatchesDynamicAtEveryWidth) {
  const CsrMatrix a = laplace_2d(8);
  const std::vector<GridTrial> trials = {{0.25, 0.125}, {0.5, 0.5}};
  for (std::size_t width : {4u, 8u, 16u}) {
    check_lane_spec(a, 1.0, trials, lane_seeds(width), {}, "lane/alias");
    McmcOptions cdf;
    cdf.sampling = SamplingMethod::kInverseCdf;
    check_lane_spec(a, 1.0, trials, lane_seeds(width), cdf, "lane/cdf");
  }
}

TEST(LaneSpecialisation, MatchesDynamicOnRandomSparse) {
  const CsrMatrix a = pdd_real_sparse(60, 0.12, 77);
  check_lane_spec(a, 2.0, test_grid(), lane_seeds(8), {}, "lane/random");
}

TEST(LaneSpecialisation, MatchesDynamicOnDivergentKernel) {
  // The divergence guard retires all of a lane's groups at the counted step
  // without marking the state; both tiers must take that path identically.
  const CsrMatrix a = divergent_matrix();
  McmcOptions opt;
  opt.walk_cap = 64;
  check_lane_spec(a, 0.01, test_grid(), lane_seeds(4), opt,
                  "lane/divergent/alias");
  McmcOptions cdf = opt;
  cdf.sampling = SamplingMethod::kInverseCdf;
  check_lane_spec(a, 0.01, test_grid(), lane_seeds(4), cdf,
                  "lane/divergent/cdf");
}

TEST(LaneSpecialisation, MatchesDynamicOnSingleTrial) {
  // A one-trial grid makes the live template one unit wide, which
  // dispatches the register-resident single-unit engine inside the spec
  // tier (the replicate-evaluation shape of the tuning loop).  Pin it
  // against the dynamic tier at every specialised width, under both
  // sampling methods, and across the divergence-retirement path.
  const CsrMatrix a = laplace_2d(8);
  const std::vector<GridTrial> one = {{0.25, 0.125}};
  for (std::size_t width : {4u, 8u, 16u}) {
    check_lane_spec(a, 1.0, one, lane_seeds(width), {}, "lane/single/alias");
    McmcOptions cdf;
    cdf.sampling = SamplingMethod::kInverseCdf;
    check_lane_spec(a, 1.0, one, lane_seeds(width), cdf, "lane/single/cdf");
  }
  McmcOptions div_opt;
  div_opt.walk_cap = 64;
  check_lane_spec(divergent_matrix(), 0.01, one, lane_seeds(8), div_opt,
                  "lane/single/divergent");
}

TEST(LaneSpecialisation, MatchesDynamicWithDuplicateSeeds) {
  // Duplicate seeds give lanes identical streams: retirement happens on the
  // same round in every duplicate lane, the adversarial case for the
  // active-mask bookkeeping.
  const CsrMatrix a = laplace_2d(8);
  const std::vector<GridTrial> trials = {{0.25, 0.125}};
  const std::vector<u64> seeds = {42, 42, 7, 42, 7, 42, 42, 42};
  check_lane_spec(a, 1.0, trials, seeds, {}, "lane/dup-seeds");
}

TEST(LaneSpecialisation, DeterministicAcrossThreadCounts) {
  const CsrMatrix a = pdd_real_sparse(50, 0.15, 51);
  const std::vector<GridTrial> trials = {{0.25, 0.125}, {0.5, 0.25}};
  const std::vector<u64> seeds = lane_seeds(4);

  auto build = [&](int threads) {
#ifdef _OPENMP
    omp_set_num_threads(threads);
#else
    (void)threads;
#endif
    return replicate_batched_grid_build(a, 1.0, trials, seeds);
  };

#ifdef _OPENMP
  const int saved = omp_get_max_threads();
#endif
  const ReplicatedGridResult r1 = build(1);
  const ReplicatedGridResult r2 = build(2);
  const ReplicatedGridResult r4 = build(4);
#ifdef _OPENMP
  omp_set_num_threads(saved);
#endif

  for (std::size_t r = 0; r < seeds.size(); ++r) {
    for (std::size_t t = 0; t < trials.size(); ++t) {
      expect_equal(r2.replicates[r].preconditioners[t],
                   r1.replicates[r].preconditioners[t], "lane-2-thread", t);
      expect_equal(r4.replicates[r].preconditioners[t],
                   r1.replicates[r].preconditioners[t], "lane-4-thread", t);
    }
  }
}

TEST(BatchedBuild, RejectsBadInputs) {
  const CsrMatrix a = laplace_1d(4);
  EXPECT_THROW(batched_grid_build(a, -1.0, {{0.5, 0.5}}), Error);
  EXPECT_THROW(batched_grid_build(a, 1.0, {}), Error);
  EXPECT_THROW(batched_grid_build(a, 1.0, {{0.0, 0.5}}), Error);
  EXPECT_THROW(batched_grid_build(a, 1.0, {{0.5, 2.0}}), Error);
}

}  // namespace
}  // namespace mcmi
