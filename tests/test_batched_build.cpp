// Tests for src/mcmc/batched_build: every trial of a batched grid build must
// be bit-identical to its standalone McmcInverter::compute() — the CRN
// prefix-sharing invariant — across thread counts, rank partitions, sampling
// methods, and convergent / divergent kernels.

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#ifdef _OPENMP
#include <omp.h>
#endif

#include "gen/laplace.hpp"
#include "gen/random_sparse.hpp"
#include "mcmc/batched_build.hpp"
#include "mcmc/inverter.hpp"
#include "sparse/coo.hpp"

namespace mcmi {
namespace {

/// A matrix whose off-diagonal mass exceeds the diagonal: with near-zero
/// alpha the Neumann series diverges (||B||_inf >= 1) and walks hit the
/// divergence guard / walk cap instead of the delta truncation.
CsrMatrix divergent_matrix() {
  CooMatrix coo(20, 20);
  for (index_t i = 0; i < 20; ++i) {
    coo.add(i, i, 1.0);
    coo.add(i, (i + 1) % 20, 1.0);
    coo.add(i, (i + 7) % 20, -1.0);
  }
  return CsrMatrix::from_coo(std::move(coo));
}

/// The shared 6-point (eps, delta) grid exercised by the equality tests:
/// spans chain counts 2..117 and both loose and tight truncation.
std::vector<GridTrial> test_grid() {
  return {{0.5, 0.5},      {0.5, 0.0625}, {0.25, 0.125},
          {0.125, 0.0625}, {0.0625, 0.5}, {0.0625, 0.03125}};
}

void expect_equal(const CsrMatrix& batched, const CsrMatrix& standalone,
                  const char* label, std::size_t trial) {
  ASSERT_EQ(batched.nnz(), standalone.nnz()) << label << " trial " << trial;
  EXPECT_EQ(batched.row_ptr(), standalone.row_ptr())
      << label << " trial " << trial;
  EXPECT_EQ(batched.col_idx(), standalone.col_idx())
      << label << " trial " << trial;
  EXPECT_EQ(batched.values(), standalone.values())  // bit-identical
      << label << " trial " << trial;
}

/// Batched-vs-standalone bit-equality for every grid point of `trials` on
/// `a`, under `options`.
void check_grid(const CsrMatrix& a, real_t alpha,
                const std::vector<GridTrial>& trials,
                const McmcOptions& options, const char* label) {
  const BatchedGridResult batched =
      batched_grid_build(a, alpha, trials, options);
  ASSERT_EQ(batched.preconditioners.size(), trials.size());
  ASSERT_EQ(batched.info.size(), trials.size());
  for (std::size_t t = 0; t < trials.size(); ++t) {
    McmcInverter standalone(a, {alpha, trials[t].eps, trials[t].delta},
                            options);
    const CsrMatrix reference = standalone.compute();
    expect_equal(batched.preconditioners[t], reference, label, t);
    // The per-trial accounting must match the trial's own truncated work.
    EXPECT_EQ(batched.info[t].total_transitions,
              standalone.info().total_transitions)
        << label << " trial " << t;
    EXPECT_EQ(batched.info[t].chains_per_row,
              standalone.info().chains_per_row);
    EXPECT_EQ(batched.info[t].walk_cutoff, standalone.info().walk_cutoff);
    EXPECT_EQ(batched.info[t].b_norm_inf, standalone.info().b_norm_inf);
    EXPECT_EQ(batched.info[t].neumann_convergent,
              standalone.info().neumann_convergent);
    EXPECT_GE(batched.info[t].build_seconds, 0.0);
  }
}

TEST(BatchedBuild, BitIdenticalOnLaplace) {
  const CsrMatrix a = laplace_2d(10);
  check_grid(a, 1.0, test_grid(), {}, "laplace/alias");
  McmcOptions cdf;
  cdf.sampling = SamplingMethod::kInverseCdf;
  check_grid(a, 1.0, test_grid(), cdf, "laplace/cdf");
}

TEST(BatchedBuild, BitIdenticalOnRandomSparse) {
  const CsrMatrix a = pdd_real_sparse(60, 0.12, 77);
  check_grid(a, 2.0, test_grid(), {}, "random/alias");
  McmcOptions cdf;
  cdf.sampling = SamplingMethod::kInverseCdf;
  check_grid(a, 2.0, test_grid(), cdf, "random/cdf");
}

TEST(BatchedBuild, BitIdenticalOnDivergentKernel) {
  // ||B||_inf >= 1: walks run to the cap or the divergence guard; both the
  // guard step and the cap must freeze each trial exactly as standalone.
  const CsrMatrix a = divergent_matrix();
  McmcOptions opt;
  opt.walk_cap = 64;
  check_grid(a, 0.01, test_grid(), opt, "divergent/alias");
  McmcOptions cdf = opt;
  cdf.sampling = SamplingMethod::kInverseCdf;
  check_grid(a, 0.01, test_grid(), cdf, "divergent/cdf");
}

TEST(BatchedBuild, DeterministicAcrossThreadCountsAndRanks) {
  const CsrMatrix a = pdd_real_sparse(50, 0.15, 51);
  const std::vector<GridTrial> trials = test_grid();

  auto build = [&](int threads, index_t ranks) {
#ifdef _OPENMP
    omp_set_num_threads(threads);
#else
    (void)threads;
#endif
    McmcOptions opt;
    opt.ranks = ranks;
    return batched_grid_build(a, 1.0, trials, opt);
  };

#ifdef _OPENMP
  const int saved = omp_get_max_threads();
#endif
  const BatchedGridResult r1 = build(1, 2);
  const BatchedGridResult r2 = build(2, 2);
  const BatchedGridResult r4 = build(4, 2);
  const BatchedGridResult rank1 = build(4, 1);
#ifdef _OPENMP
  omp_set_num_threads(saved);
#endif

  for (std::size_t t = 0; t < trials.size(); ++t) {
    expect_equal(r2.preconditioners[t], r1.preconditioners[t], "2-thread", t);
    expect_equal(r4.preconditioners[t], r1.preconditioners[t], "4-thread", t);
    expect_equal(rank1.preconditioners[t], r1.preconditioners[t], "1-rank", t);
    EXPECT_EQ(r2.info[t].total_transitions, r1.info[t].total_transitions);
    EXPECT_EQ(r4.info[t].total_transitions, r1.info[t].total_transitions);
  }
}

TEST(BatchedBuild, DuplicateTrialsGetIdenticalOutputs) {
  const CsrMatrix a = laplace_2d(8);
  const std::vector<GridTrial> trials = {{0.25, 0.125}, {0.25, 0.125}};
  const BatchedGridResult r = batched_grid_build(a, 1.0, trials);
  expect_equal(r.preconditioners[1], r.preconditioners[0], "duplicate", 1);
  EXPECT_EQ(r.info[0].total_transitions, r.info[1].total_transitions);
}

TEST(BatchedBuild, KernelCacheIsUsedAndHarmless) {
  const CsrMatrix a = pdd_real_sparse(40, 0.15, 51);
  const std::vector<GridTrial> trials = {{0.5, 0.25}, {0.25, 0.0625}};
  const BatchedGridResult no_cache = batched_grid_build(a, 1.0, trials);
  WalkKernelCache cache;
  const BatchedGridResult first =
      batched_grid_build(a, 1.0, trials, {}, &cache);
  const BatchedGridResult second =
      batched_grid_build(a, 1.0, trials, {}, &cache);
  EXPECT_EQ(cache.misses(), 1);
  EXPECT_EQ(cache.hits(), 1);
  for (std::size_t t = 0; t < trials.size(); ++t) {
    EXPECT_FALSE(first.info[t].kernel_cache_hit);
    EXPECT_TRUE(second.info[t].kernel_cache_hit);
    expect_equal(first.preconditioners[t], no_cache.preconditioners[t],
                 "cache-first", t);
    expect_equal(second.preconditioners[t], no_cache.preconditioners[t],
                 "cache-second", t);
  }
}

TEST(BatchedBuild, RejectsBadInputs) {
  const CsrMatrix a = laplace_1d(4);
  EXPECT_THROW(batched_grid_build(a, -1.0, {{0.5, 0.5}}), Error);
  EXPECT_THROW(batched_grid_build(a, 1.0, {}), Error);
  EXPECT_THROW(batched_grid_build(a, 1.0, {{0.0, 0.5}}), Error);
  EXPECT_THROW(batched_grid_build(a, 1.0, {{0.5, 2.0}}), Error);
}

}  // namespace
}  // namespace mcmi
