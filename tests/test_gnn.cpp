// Tests for src/gnn: graph construction, aggregation semantics, gradient
// checks for every (layer kind x aggregation) combination, and stack-level
// invariants such as permutation invariance of the pooled embedding.

#include <gtest/gtest.h>

#include <cmath>

#include "gen/laplace.hpp"
#include "gen/random_sparse.hpp"
#include "gnn/graph.hpp"
#include "gnn/layers.hpp"
#include "gnn/stack.hpp"

namespace mcmi::gnn {
namespace {

nn::Tensor random_features(index_t n, index_t d, u64 seed) {
  nn::Tensor h(n, d);
  Xoshiro256 rng = make_stream(seed);
  for (real_t& v : h.data()) v = normal01(rng);
  return h;
}

Graph test_graph() { return Graph::from_csr(laplace_2d(5)); }

TEST(GraphFromCsr, MatchesMatrixStructure) {
  const CsrMatrix a = laplace_2d(5);
  const Graph g = Graph::from_csr(a);
  EXPECT_EQ(g.num_nodes, a.rows());
  EXPECT_EQ(g.num_edges(), a.nnz());
  // Node feature is the unweighted row degree.
  for (index_t i = 0; i < g.num_nodes; ++i) {
    EXPECT_DOUBLE_EQ(g.node_features(i, 0),
                     static_cast<real_t>(a.row_nnz(i)));
  }
  // Edge weights carry A_ij.
  EXPECT_DOUBLE_EQ(g.weight[g.edge_ptr[0]], a.values()[0]);
}

TEST(Aggregation, MeanSumMaxSemantics) {
  // Two-node graph: node 0 has two edges, node 1 has one.
  Graph g;
  g.num_nodes = 2;
  g.edge_ptr = {0, 2, 3};
  g.dst = {0, 1, 0};
  g.weight = {1.0, 1.0, 1.0};
  nn::Tensor messages(3, 2);
  messages(0, 0) = 1.0; messages(0, 1) = -2.0;
  messages(1, 0) = 3.0; messages(1, 1) = 4.0;
  messages(2, 0) = 5.0; messages(2, 1) = -6.0;

  std::vector<index_t> argmax;
  const nn::Tensor mean_out =
      aggregate_messages(g, messages, Aggregation::kMean, argmax);
  EXPECT_DOUBLE_EQ(mean_out(0, 0), 2.0);
  EXPECT_DOUBLE_EQ(mean_out(0, 1), 1.0);
  EXPECT_DOUBLE_EQ(mean_out(1, 0), 5.0);

  const nn::Tensor sum_out =
      aggregate_messages(g, messages, Aggregation::kSum, argmax);
  EXPECT_DOUBLE_EQ(sum_out(0, 0), 4.0);
  EXPECT_DOUBLE_EQ(sum_out(0, 1), 2.0);

  const nn::Tensor max_out =
      aggregate_messages(g, messages, Aggregation::kMax, argmax);
  EXPECT_DOUBLE_EQ(max_out(0, 0), 3.0);
  EXPECT_DOUBLE_EQ(max_out(0, 1), 4.0);
  EXPECT_EQ(argmax[0 * 2 + 0], 1);  // edge 1 wins channel 0 of node 0

  const nn::Tensor multi_out =
      aggregate_messages(g, messages, Aggregation::kMulti, argmax);
  EXPECT_EQ(multi_out.cols(), 6);
  EXPECT_DOUBLE_EQ(multi_out(0, 0), 2.0);   // mean section
  EXPECT_DOUBLE_EQ(multi_out(0, 2), 3.0);   // max section
  EXPECT_DOUBLE_EQ(multi_out(0, 4), 4.0);   // sum section
}

TEST(Aggregation, ScatterIsAdjointOfAggregate) {
  // <scatter(g_nodes), messages> == <g_nodes, aggregate(messages)> — the
  // defining adjoint identity that makes the backward pass correct.
  const Graph g = test_graph();
  Xoshiro256 rng = make_stream(51);
  const nn::Tensor messages = random_features(g.num_edges(), 3, 52);
  for (Aggregation agg : {Aggregation::kMean, Aggregation::kSum,
                          Aggregation::kMax, Aggregation::kMulti}) {
    std::vector<index_t> argmax;
    const nn::Tensor agg_out = aggregate_messages(g, messages, agg, argmax);
    const nn::Tensor grad_nodes =
        random_features(g.num_nodes, agg_out.cols(), 53);
    const nn::Tensor grad_edges =
        scatter_gradients(g, grad_nodes, agg, 3, argmax);
    real_t lhs = 0.0, rhs = 0.0;
    for (std::size_t i = 0; i < grad_edges.data().size(); ++i) {
      lhs += grad_edges.data()[i] * messages.data()[i];
    }
    for (std::size_t i = 0; i < grad_nodes.data().size(); ++i) {
      rhs += grad_nodes.data()[i] * agg_out.data()[i];
    }
    EXPECT_NEAR(lhs, rhs, 1e-9) << aggregation_name(agg);
  }
}

TEST(Names, ParseRoundTrip) {
  for (Aggregation a : {Aggregation::kMean, Aggregation::kSum,
                        Aggregation::kMax, Aggregation::kMulti}) {
    EXPECT_EQ(parse_aggregation(aggregation_name(a)), a);
  }
  for (LayerKind k : {LayerKind::kEdgeConv, LayerKind::kGine,
                      LayerKind::kGcn, LayerKind::kGatv2}) {
    EXPECT_EQ(parse_layer_kind(layer_kind_name(k)), k);
  }
  EXPECT_THROW(parse_aggregation("median"), Error);
  EXPECT_THROW(parse_layer_kind("gat"), Error);
}

/// Central-difference gradient check for GNN layers: the probe loss is
/// sum(grad_out . forward(h)) whose input gradient is backward(grad_out).
struct GnnGradCheck {
  real_t max_input_error = 0.0;
  real_t max_param_error = 0.0;
};

GnnGradCheck check_gnn_gradients(GnnLayer& layer, const Graph& g,
                                 const nn::Tensor& h,
                                 const nn::Tensor& grad_out,
                                 real_t step = 1e-5) {
  auto probe = [&](const nn::Tensor& input) {
    const nn::Tensor out = layer.forward(g, input, /*train=*/false);
    real_t loss = 0.0;
    for (std::size_t i = 0; i < out.data().size(); ++i) {
      loss += out.data()[i] * grad_out.data()[i];
    }
    return loss;
  };
  for (nn::Parameter* p : layer.parameters()) p->zero_grad();
  layer.forward(g, h, /*train=*/false);
  const nn::Tensor grad_in = layer.backward(g, grad_out);

  GnnGradCheck result;
  auto rel = [](real_t a, real_t b) {
    return std::abs(a - b) / std::max({std::abs(a), std::abs(b), 1e-7});
  };
  nn::Tensor probe_h = h;
  for (std::size_t i = 0; i < probe_h.data().size(); ++i) {
    const real_t orig = probe_h.data()[i];
    probe_h.data()[i] = orig + step;
    const real_t plus = probe(probe_h);
    probe_h.data()[i] = orig - step;
    const real_t minus = probe(probe_h);
    probe_h.data()[i] = orig;
    result.max_input_error =
        std::max(result.max_input_error,
                 rel(grad_in.data()[i], (plus - minus) / (2.0 * step)));
  }
  for (nn::Parameter* p : layer.parameters()) {
    for (std::size_t i = 0; i < p->value.data().size(); ++i) {
      const real_t orig = p->value.data()[i];
      p->value.data()[i] = orig + step;
      const real_t plus = probe(h);
      p->value.data()[i] = orig - step;
      const real_t minus = probe(h);
      p->value.data()[i] = orig;
      result.max_param_error =
          std::max(result.max_param_error,
                   rel(p->grad.data()[i], (plus - minus) / (2.0 * step)));
    }
  }
  return result;
}

using LayerAgg = std::tuple<LayerKind, Aggregation>;

class GnnLayerGrad : public ::testing::TestWithParam<LayerAgg> {};

TEST_P(GnnLayerGrad, BackwardMatchesFiniteDifferences) {
  const auto [kind, agg] = GetParam();
  // Small irregular graph keeps the finite-difference sweep fast; random
  // features stay away from ReLU kinks with high probability, and the
  // tolerance absorbs the rest.
  const Graph g = Graph::from_csr(pdd_real_sparse(8, 0.35, 61));
  const index_t in = 3, out = 4;
  auto layer = make_gnn_layer(kind, agg, in, out, 71);
  const nn::Tensor h = random_features(g.num_nodes, in, 63);
  const nn::Tensor grad_out = random_features(g.num_nodes, out, 65);
  const GnnGradCheck r = check_gnn_gradients(*layer, g, h, grad_out);
  EXPECT_LT(r.max_input_error, 2e-4)
      << layer_kind_name(kind) << "/" << aggregation_name(agg);
  EXPECT_LT(r.max_param_error, 2e-4)
      << layer_kind_name(kind) << "/" << aggregation_name(agg);
}

INSTANTIATE_TEST_SUITE_P(
    AllCombos, GnnLayerGrad,
    ::testing::Combine(::testing::Values(LayerKind::kEdgeConv,
                                         LayerKind::kGine, LayerKind::kGcn),
                       ::testing::Values(Aggregation::kMean, Aggregation::kSum,
                                         Aggregation::kMax,
                                         Aggregation::kMulti)));

TEST(Gatv2Grad, BackwardMatchesFiniteDifferences) {
  // GATv2 ignores the aggregation argument (softmax attention aggregates).
  const Graph g = Graph::from_csr(pdd_real_sparse(8, 0.35, 67));
  auto layer = make_gnn_layer(LayerKind::kGatv2, Aggregation::kMean, 3, 4, 83);
  const nn::Tensor h = random_features(g.num_nodes, 3, 85);
  const nn::Tensor grad_out = random_features(g.num_nodes, 4, 87);
  const GnnGradCheck r = check_gnn_gradients(*layer, g, h, grad_out);
  EXPECT_LT(r.max_input_error, 2e-4);
  EXPECT_LT(r.max_param_error, 2e-4);
}

TEST(Gatv2, AttentionSumsToOnePerNode) {
  const Graph g = test_graph();
  auto layer = make_gnn_layer(LayerKind::kGatv2, Aggregation::kMean, 1, 4, 89);
  const nn::Tensor h = random_features(g.num_nodes, 1, 91);
  const nn::Tensor out = layer->forward(g, h, false);
  for (real_t v : out.data()) EXPECT_TRUE(std::isfinite(v));
}

TEST(GnnStack, ProducesPooledEmbedding) {
  GnnConfig config;
  config.hidden = 8;
  config.layers = 2;
  GnnStack stack(config, 1, 73);
  const Graph g = test_graph();
  const nn::Tensor emb = stack.forward(g, /*train=*/false);
  EXPECT_EQ(emb.rows(), 1);
  EXPECT_EQ(emb.cols(), 8);
  for (real_t v : emb.data()) EXPECT_TRUE(std::isfinite(v));
}

TEST(GnnStack, DeterministicForward) {
  GnnConfig config;
  config.hidden = 8;
  GnnStack s1(config, 1, 75);
  GnnStack s2(config, 1, 75);
  const Graph g = test_graph();
  EXPECT_EQ(s1.forward(g, false).data(), s2.forward(g, false).data());
}

TEST(GnnStack, PermutationInvariantEmbedding) {
  // Relabelling the matrix rows permutes graph nodes; mean pooling over
  // EdgeConv features must give the same embedding.
  const CsrMatrix a = pdd_real_sparse(12, 0.3, 77);
  // Build the permuted matrix PAP^T with a fixed permutation.
  std::vector<index_t> perm(12);
  for (index_t i = 0; i < 12; ++i) perm[i] = (i * 5 + 3) % 12;
  CooMatrix coo(12, 12);
  for (index_t i = 0; i < 12; ++i) {
    for (index_t j = 0; j < 12; ++j) {
      const real_t v = a.at(i, j);
      if (v != 0.0) coo.add(perm[i], perm[j], v);
    }
  }
  const CsrMatrix b = CsrMatrix::from_coo(std::move(coo));

  GnnConfig config;
  config.hidden = 6;
  GnnStack stack(config, 1, 79);
  const nn::Tensor ea = stack.forward(Graph::from_csr(a), false);
  const nn::Tensor eb = stack.forward(Graph::from_csr(b), false);
  for (index_t c = 0; c < 6; ++c) {
    EXPECT_NEAR(ea(0, c), eb(0, c), 1e-9);
  }
}

TEST(GnnStack, BackwardAccumulatesParameterGradients) {
  GnnConfig config;
  config.hidden = 4;
  GnnStack stack(config, 1, 81);
  const Graph g = test_graph();
  for (nn::Parameter* p : stack.parameters()) p->zero_grad();
  stack.forward(g, /*train=*/true);
  nn::Tensor grad(1, 4, 1.0);
  stack.backward(g, grad);
  real_t total = 0.0;
  for (nn::Parameter* p : stack.parameters()) {
    for (real_t v : p->grad.data()) total += std::abs(v);
  }
  EXPECT_GT(total, 0.0);
}

}  // namespace
}  // namespace mcmi::gnn
