// Shard-determinism conformance suite for the sharded execution layer
// (sparse/sharded_plan.hpp): bit-equality of SpMV, the fused dot/norm
// reductions, full Krylov solves, and batched MCMC grid builds across shard
// counts {1, 2, 3, 4, 8} (plus the CI matrix leg's MCMI_TEST_SHARDS), shard
// counts coprime to the thread count, degenerate layouts (empty shard,
// single-row shards, everything-in-one-shard), a seeded 200-layout
// reduction-order fuzz test against ShardReducer::reference, the
// PlanBackend registry's stubbed-accelerator contract, and the regression
// guard that no stale content-keyed single plan is observed after a
// backend switch.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <memory>
#include <random>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#ifdef _OPENMP
#include <omp.h>
#endif

#include "core/env.hpp"
#include "core/error.hpp"
#include "gen/laplace.hpp"
#include "gen/plasma.hpp"
#include "gen/random_sparse.hpp"
#include "krylov/solver.hpp"
#include "mcmc/batched_build.hpp"
#include "precond/jacobi.hpp"
#include "precond/preconditioner.hpp"
#include "sparse/csr.hpp"
#include "sparse/sharded_plan.hpp"
#include "sparse/spmv_plan.hpp"

namespace mcmi {
namespace {

/// The conformance shard counts from the issue, plus the CI matrix leg's
/// MCMI_TEST_SHARDS when it names a count not already covered.
std::vector<index_t> conformance_shard_counts() {
  std::vector<index_t> counts = {1, 2, 3, 4, 8};
  const index_t extra = env_int("MCMI_TEST_SHARDS", 0);
  if (extra > 0 &&
      std::find(counts.begin(), counts.end(), extra) == counts.end()) {
    counts.push_back(extra);
  }
  return counts;
}

/// The three matrix families the suite sweeps: structured SPD (Laplace),
/// the paper's plasma operator, and a random nonsymmetric sparse matrix.
std::vector<std::pair<std::string, CsrMatrix>> conformance_matrices() {
  std::vector<std::pair<std::string, CsrMatrix>> out;
  out.emplace_back("laplace_2d(64)", laplace_2d(64));  // 3969 rows, >1 chunk
  out.emplace_back("plasma_a00512", plasma_a00512());
  out.emplace_back("pdd_real_sparse(300)", pdd_real_sparse(300, 0.1, 77));
  return out;
}

std::vector<real_t> test_vector(index_t n, u64 salt) {
  std::vector<real_t> x(static_cast<std::size_t>(n));
  for (index_t i = 0; i < n; ++i) {
    x[i] = std::sin(static_cast<real_t>(i + 1) * 0.7 +
                    static_cast<real_t>(salt));
  }
  return x;
}

/// A copy of `a` bound to the sharded backend under `layout`.
CsrMatrix sharded_copy(const CsrMatrix& a, ShardLayout layout) {
  CsrMatrix s = a;
  s.set_plan_backend(PlanBackend::kShardedThreads, std::move(layout));
  return s;
}

std::string layout_string(const ShardLayout& layout) {
  std::ostringstream os;
  os << "{";
  for (std::size_t i = 0; i < layout.boundaries.size(); ++i) {
    if (i != 0) os << ", ";
    os << layout.boundaries[i];
  }
  os << "}";
  return os.str();
}

// ---------------------------------------------------------------------------
// ShardLayout construction
// ---------------------------------------------------------------------------

TEST(ShardLayout, NnzBalancedPartitionsAllRows) {
  const CsrMatrix a = laplace_2d(64);
  for (const index_t s : {1, 2, 3, 4, 8, 17}) {
    const ShardLayout layout = ShardLayout::nnz_balanced(s, a.row_ptr());
    ASSERT_EQ(layout.shards(), s);
    EXPECT_EQ(layout.boundaries.front(), 0);
    EXPECT_EQ(layout.boundaries.back(), a.rows());
    for (std::size_t i = 1; i < layout.boundaries.size(); ++i) {
      EXPECT_LE(layout.boundaries[i - 1], layout.boundaries[i]);
    }
    layout.validate(a.rows());
  }
}

TEST(ShardLayout, NnzBalancedBalancesWorkNotRows) {
  // Arrow-like skew: one row holding a large share of the nonzeros should
  // get a shard close to itself, not 1/s of the rows.
  const index_t n = 400;
  CooMatrix coo(n, n);
  for (index_t j = 0; j < n; ++j) coo.add(0, j, 1.0);
  for (index_t i = 1; i < n; ++i) coo.add(i, i, 4.0);
  const CsrMatrix a = CsrMatrix::from_coo(std::move(coo));
  const ShardLayout layout = ShardLayout::nnz_balanced(2, a.row_ptr());
  // Half the work is row 0 (n nonzeros) vs n-1 diagonal rows: the first
  // shard must end long before the halfway row.
  EXPECT_LT(layout.boundaries[1], n / 4);
}

TEST(ShardLayout, FingerprintDistinguishesLayouts) {
  const CsrMatrix a = laplace_2d(32);
  const ShardLayout two = ShardLayout::nnz_balanced(2, a.row_ptr());
  const ShardLayout four = ShardLayout::nnz_balanced(4, a.row_ptr());
  const ShardLayout none{};
  EXPECT_NE(two.fingerprint(), four.fingerprint());
  EXPECT_NE(two.fingerprint(), none.fingerprint());
  EXPECT_EQ(two.fingerprint(),
            ShardLayout::nnz_balanced(2, a.row_ptr()).fingerprint());
}

TEST(ShardLayout, ValidateRejectsBadPartitions) {
  EXPECT_THROW((ShardLayout{{1, 4}}).validate(4), Error);    // first != 0
  EXPECT_THROW((ShardLayout{{0, 3}}).validate(4), Error);    // last != rows
  EXPECT_THROW((ShardLayout{{0, 3, 2, 4}}).validate(4),
               Error);                      // not monotone
  (ShardLayout{{0, 2, 2, 4}}).validate(4);  // empty shard is legal
}

// ---------------------------------------------------------------------------
// SpMV and fused-reduction conformance across shard counts
// ---------------------------------------------------------------------------

TEST(ShardedPlanConformance, SpmvBitIdenticalAcrossShardCounts) {
  for (const auto& [name, a] : conformance_matrices()) {
    SCOPED_TRACE(name);
    const std::vector<real_t> x = test_vector(a.cols(), 3);
    const std::vector<real_t> golden = a.multiply(x);  // single-plan path
    for (const index_t s : conformance_shard_counts()) {
      SCOPED_TRACE("shards=" + std::to_string(s));
      const CsrMatrix sharded =
          sharded_copy(a, ShardLayout::nnz_balanced(s, a.row_ptr()));
      ASSERT_EQ(sharded.plan_backend(), PlanBackend::kShardedThreads);
      EXPECT_EQ(sharded.multiply(x), golden);  // element-exact
    }
  }
}

TEST(ShardedPlanConformance, FusedDotNormBitIdenticalAcrossShardCounts) {
  for (const auto& [name, a] : conformance_matrices()) {
    if (a.rows() != a.cols()) continue;  // fused paths are square-only
    SCOPED_TRACE(name);
    const std::vector<real_t> x = test_vector(a.cols(), 5);
    const std::vector<real_t> w = test_vector(a.rows(), 9);
    std::vector<real_t> y_golden(static_cast<std::size_t>(a.rows()));
    const real_t dot_xy_golden = a.multiply_dot(x, y_golden);
    const real_t dot_wy_golden = a.multiply_dot(x, y_golden, w);
    real_t fused_dot_golden = 0.0, fused_norm_golden = 0.0;
    a.multiply_dot_norm2(x, y_golden, w, fused_dot_golden, fused_norm_golden);
    for (const index_t s : conformance_shard_counts()) {
      SCOPED_TRACE("shards=" + std::to_string(s));
      const CsrMatrix sharded =
          sharded_copy(a, ShardLayout::nnz_balanced(s, a.row_ptr()));
      std::vector<real_t> y(static_cast<std::size_t>(a.rows()));
      EXPECT_EQ(sharded.multiply_dot(x, y), dot_xy_golden);
      EXPECT_EQ(y, y_golden);
      EXPECT_EQ(sharded.multiply_dot(x, y, w), dot_wy_golden);
      real_t dot = 0.0, norm = 0.0;
      sharded.multiply_dot_norm2(x, y, w, dot, norm);
      EXPECT_EQ(dot, fused_dot_golden);
      EXPECT_EQ(norm, fused_norm_golden);
    }
  }
}

TEST(ShardedPlanConformance, DegenerateLayoutsBitIdentical) {
  const CsrMatrix a = laplace_2d(20);  // 361 rows
  const index_t n = a.rows();
  const std::vector<real_t> x = test_vector(n, 1);
  const std::vector<real_t> w = test_vector(n, 2);
  std::vector<real_t> y_golden(static_cast<std::size_t>(n));
  real_t dot_golden = 0.0, norm_golden = 0.0;
  a.multiply_dot_norm2(x, y_golden, w, dot_golden, norm_golden);

  std::vector<std::pair<std::string, ShardLayout>> layouts;
  layouts.emplace_back("all-in-one", ShardLayout{{0, n}});
  layouts.emplace_back("empty-middle-shard", ShardLayout{{0, n / 3, n / 3, n}});
  layouts.emplace_back("empty-edge-shards", ShardLayout{{0, 0, n, n}});
  layouts.emplace_back("single-row-shards", ShardLayout::uniform(n, n));
  for (auto& [name, layout] : layouts) {
    SCOPED_TRACE(name);
    const CsrMatrix sharded = sharded_copy(a, layout);
    std::vector<real_t> y(static_cast<std::size_t>(n));
    real_t dot = 0.0, norm = 0.0;
    sharded.multiply_dot_norm2(x, y, w, dot, norm);
    EXPECT_EQ(y, y_golden);
    EXPECT_EQ(dot, dot_golden);
    EXPECT_EQ(norm, norm_golden);
  }
}

#ifdef _OPENMP
TEST(ShardedPlanConformance, CoprimeShardAndThreadCounts) {
  // Shard counts coprime to every thread count exercised: no accidental
  // shard-per-thread alignment can mask an order dependence.
  const CsrMatrix a = plasma_a00512();
  const std::vector<real_t> x = test_vector(a.cols(), 11);
  const std::vector<real_t> w = test_vector(a.rows(), 13);
  std::vector<real_t> y_golden(static_cast<std::size_t>(a.rows()));
  real_t dot_golden = 0.0, norm_golden = 0.0;
  a.multiply_dot_norm2(x, y_golden, w, dot_golden, norm_golden);

  const int saved_threads = omp_get_max_threads();
  for (const int threads : {1, 2, 4}) {
    omp_set_num_threads(threads);
    for (const index_t s : {3, 5, 7}) {
      SCOPED_TRACE("threads=" + std::to_string(threads) +
                   " shards=" + std::to_string(s));
      const CsrMatrix sharded =
          sharded_copy(a, ShardLayout::nnz_balanced(s, a.row_ptr()));
      std::vector<real_t> y(static_cast<std::size_t>(a.rows()));
      real_t dot = 0.0, norm = 0.0;
      sharded.multiply_dot_norm2(x, y, w, dot, norm);
      EXPECT_EQ(y, y_golden);
      EXPECT_EQ(dot, dot_golden);
      EXPECT_EQ(norm, norm_golden);
    }
  }
  omp_set_num_threads(saved_threads);
}
#endif

// ---------------------------------------------------------------------------
// Full Krylov solves across shard counts
// ---------------------------------------------------------------------------

TEST(ShardedPlanConformance, KrylovSolvesBitIdenticalAcrossShardCounts) {
  // tolerance = 0 can never be met, so every solve runs the same fixed
  // iteration count and the x comparison covers every fused reduction the
  // method performs.
  SolveOptions options;
  options.tolerance = 0.0;
  options.max_iterations = 25;
  options.restart = 10;

  const CsrMatrix spd = laplace_2d(24);
  const CsrMatrix nonsym = pdd_real_sparse(200, 0.1, 31);
  const JacobiPreconditioner jacobi(spd);
  const IdentityPreconditioner identity;

  struct Case {
    std::string name;
    KrylovMethod method;
    const CsrMatrix* a;
    const Preconditioner* p;
  };
  const std::vector<Case> cases = {
      {"cg/laplace", KrylovMethod::kCG, &spd, &jacobi},
      {"gmres/pdd", KrylovMethod::kGMRES, &nonsym, &identity},
      {"bicgstab/pdd", KrylovMethod::kBiCGStab, &nonsym, &identity},
  };
  for (const Case& c : cases) {
    SCOPED_TRACE(c.name);
    const std::vector<real_t> b = test_vector(c.a->rows(), 17);
    std::vector<real_t> x_golden;
    const SolveResult golden =
        solve(c.method, *c.a, b, *c.p, x_golden, options);
    for (const index_t s : conformance_shard_counts()) {
      SCOPED_TRACE("shards=" + std::to_string(s));
      const CsrMatrix sharded =
          sharded_copy(*c.a, ShardLayout::nnz_balanced(s, c.a->row_ptr()));
      std::vector<real_t> x;
      const SolveResult result = solve(c.method, sharded, b, *c.p, x, options);
      EXPECT_EQ(result.iterations, golden.iterations);
      EXPECT_EQ(x, x_golden);  // bit-identical trajectory end to end
    }
  }
}

// ---------------------------------------------------------------------------
// Reduction-order fuzz: ShardReducer::reduce vs the serial reference
// ---------------------------------------------------------------------------

TEST(ShardReducerFuzz, RandomLayoutsMatchReferenceByteForByte) {
  // 200 seeded random layouts per matrix, including empty shards and wildly
  // unbalanced boundaries.  reduce() must reproduce the serial reference
  // exactly; a failure prints the offending boundary list for replay.
  std::mt19937 rng(0x5eed5eedu);
  for (const auto& [name, a] : conformance_matrices()) {
    SCOPED_TRACE(name);
    const index_t n = a.rows();
    const ShardReducer reducer(SpmvPlan::chunk_boundaries(n, a.row_ptr()));
    const std::vector<real_t> w = test_vector(n, 23);
    const std::vector<real_t> y = test_vector(n, 29);
    real_t ref_dot = 0.0, ref_norm = 0.0;
    reducer.reference(w.data(), y.data(), true, ref_dot, ref_norm);

    std::uniform_int_distribution<index_t> shard_count(1, 16);
    std::uniform_int_distribution<index_t> boundary(0, n);
    for (int trial = 0; trial < 200; ++trial) {
      ShardLayout layout;
      const index_t s = shard_count(rng);
      layout.boundaries.resize(static_cast<std::size_t>(s) + 1);
      layout.boundaries.front() = 0;
      layout.boundaries.back() = n;
      for (index_t i = 1; i < s; ++i) {
        layout.boundaries[static_cast<std::size_t>(i)] = boundary(rng);
      }
      std::sort(layout.boundaries.begin(), layout.boundaries.end());
      layout.validate(n);

      real_t dot = 0.0, norm = 0.0;
      reducer.reduce(layout, w.data(), y.data(), true, dot, norm);
      if (dot != ref_dot || norm != ref_norm) {
        ADD_FAILURE() << "reduction order leak on " << name << " trial "
                      << trial << " layout " << layout_string(layout)
                      << ": dot " << dot << " vs " << ref_dot << ", norm "
                      << norm << " vs " << ref_norm;
        break;  // one replayable failure per matrix is enough
      }
    }
  }
}

TEST(ShardReducer, GridMatchesSinglePlanChunks) {
  // The reducer's block grid must BE the single plan's chunk grid — that
  // identity is what makes the sharded fused path bit-equal to the
  // unsharded one.
  const CsrMatrix a = laplace_2d(64);
  const ShardedPlan plan = ShardedPlan::build(
      a.rows(), a.cols(), a.row_ptr(), a.col_idx(),
      ShardLayout::nnz_balanced(3, a.row_ptr()));
  EXPECT_EQ(plan.reducer().block_rows(),
            SpmvPlan::chunk_boundaries(a.rows(), a.row_ptr()));
  ASSERT_GT(plan.reducer().num_blocks(), 1);  // the sweep must multi-block
}

// ---------------------------------------------------------------------------
// Batched MCMC grid builds under shard layouts
// ---------------------------------------------------------------------------

TEST(ShardedMcmcBuild, GridBuildBitIdenticalAcrossLayouts) {
  const CsrMatrix a = laplace_2d(10);
  const std::vector<GridTrial> trials = {{0.5, 0.25}, {0.25, 0.125}};
  const BatchedGridResult golden = batched_grid_build(a, 1.0, trials, {});

  std::vector<std::pair<std::string, ShardLayout>> layouts;
  for (const index_t s : conformance_shard_counts()) {
    layouts.emplace_back("nnz_balanced(" + std::to_string(s) + ")",
                         ShardLayout::nnz_balanced(s, a.row_ptr()));
  }
  layouts.emplace_back("uniform(7)", ShardLayout::uniform(7, a.rows()));
  layouts.emplace_back("empty-shard",
                       ShardLayout{{0, a.rows() / 2, a.rows() / 2, a.rows()}});
  for (auto& [name, layout] : layouts) {
    SCOPED_TRACE(name);
    McmcOptions options;
    options.shards = layout;
    const BatchedGridResult sharded =
        batched_grid_build(a, 1.0, trials, options);
    ASSERT_EQ(sharded.preconditioners.size(), golden.preconditioners.size());
    for (std::size_t t = 0; t < trials.size(); ++t) {
      SCOPED_TRACE("trial=" + std::to_string(t));
      // Full-content CSR hash: structure and value bit patterns.
      EXPECT_EQ(sharded.preconditioners[t].content_fingerprint(),
                golden.preconditioners[t].content_fingerprint());
      EXPECT_EQ(sharded.info[t].total_transitions,
                golden.info[t].total_transitions);
      EXPECT_EQ(sharded.info[t].chains_per_row, golden.info[t].chains_per_row);
    }
  }
}

TEST(ShardedMcmcBuild, StandaloneInverterHonorsShardLayout) {
  const CsrMatrix a = pdd_real_sparse(80, 0.12, 19);
  McmcOptions plain;
  const CsrMatrix golden = McmcInverter(a, {1.0, 0.5, 0.25}, plain).compute();
  McmcOptions sharded_options;
  sharded_options.shards = ShardLayout::nnz_balanced(3, a.row_ptr());
  const CsrMatrix sharded =
      McmcInverter(a, {1.0, 0.5, 0.25}, sharded_options).compute();
  EXPECT_EQ(sharded.content_fingerprint(), golden.content_fingerprint());
}

TEST(ShardRowSpans, CoverEveryRowWithoutCrossingShards) {
  const ShardLayout layout{{0, 5, 5, 17, 40}};
  const auto spans = shard_row_spans(layout, 2, 33, 8);
  index_t covered = 2;
  for (const auto& [begin, end] : spans) {
    EXPECT_EQ(begin, covered);  // contiguous, in order
    EXPECT_LT(begin, end);
    EXPECT_LE(end - begin, 8);
    // A span never crosses a shard boundary.
    for (std::size_t b = 1; b + 1 < layout.boundaries.size(); ++b) {
      const index_t edge = layout.boundaries[b];
      EXPECT_FALSE(begin < edge && edge < end)
          << "span [" << begin << ", " << end << ") crosses shard edge "
          << edge;
    }
    covered = end;
  }
  EXPECT_EQ(covered, 33);
}

// ---------------------------------------------------------------------------
// Backend registry: the stubbed accelerator slot and mock dispatch
// ---------------------------------------------------------------------------

/// Mock device execution: writes a sentinel so any product that still went
/// through a cached host plan is unmistakable.
class SentinelExecution final : public PlanExecution {
 public:
  static constexpr real_t kSentinel = -12345.5;
  static int live_calls;

  [[nodiscard]] PlanBackend backend() const override {
    return PlanBackend::kAccelerator;
  }
  [[nodiscard]] const ShardLayout& layout() const override { return layout_; }
  void multiply(const index_t*, const index_t*, const real_t*, const real_t*,
                real_t* y) const override {
    ++live_calls;
    for (index_t i = 0; i < rows_; ++i) y[i] = kSentinel;
  }
  [[nodiscard]] real_t multiply_dot(const index_t* row_ptr,
                                    const index_t* col_idx,
                                    const real_t* values, const real_t* x,
                                    const real_t*, real_t* y) const override {
    multiply(row_ptr, col_idx, values, x, y);
    return kSentinel;
  }
  void multiply_dot_norm2(const index_t* row_ptr, const index_t* col_idx,
                          const real_t* values, const real_t* x,
                          const real_t*, real_t* y, real_t& dot_wy,
                          real_t& norm_sq_y) const override {
    multiply(row_ptr, col_idx, values, x, y);
    dot_wy = kSentinel;
    norm_sq_y = kSentinel;
  }

  index_t rows_ = 0;

 private:
  ShardLayout layout_;
};

int SentinelExecution::live_calls = 0;

TEST(PlanBackendRegistry, AcceleratorSlotIsStubbed) {
  auto& registry = PlanBackendRegistry::instance();
  EXPECT_TRUE(registry.available(PlanBackend::kSingle));
  EXPECT_TRUE(registry.available(PlanBackend::kShardedThreads));
  EXPECT_FALSE(registry.available(PlanBackend::kAccelerator));

  const CsrMatrix a = laplace_2d(6);
  EXPECT_THROW(registry.create(PlanBackend::kAccelerator, a.rows(), a.cols(),
                               a.row_ptr(), a.col_idx(), ShardLayout{}),
               Error);
  CsrMatrix m = a;
  EXPECT_THROW(m.set_plan_backend(PlanBackend::kAccelerator), Error);
  // Built-in backends may not be unregistered (the stub slot is the only
  // mutable one).
  EXPECT_THROW(registry.unregister_backend(PlanBackend::kSingle), Error);
  EXPECT_THROW(registry.unregister_backend(PlanBackend::kShardedThreads),
               Error);
}

TEST(PlanBackendRegistry, MockAcceleratorDispatchesThroughRegistry) {
  auto& registry = PlanBackendRegistry::instance();
  registry.register_backend(
      PlanBackend::kAccelerator,
      [](index_t rows, index_t, const std::vector<index_t>&,
         const std::vector<index_t>&, const ShardLayout&) {
        auto exec = std::make_unique<SentinelExecution>();
        exec->rows_ = rows;
        return exec;
      });
  EXPECT_TRUE(registry.available(PlanBackend::kAccelerator));

  const CsrMatrix a = laplace_2d(6);
  CsrMatrix m = a;
  m.set_plan_backend(PlanBackend::kAccelerator);
  EXPECT_EQ(m.plan_backend(), PlanBackend::kAccelerator);

  const int calls_before = SentinelExecution::live_calls;
  const std::vector<real_t> x = test_vector(a.cols(), 41);
  const std::vector<real_t> y = m.multiply(x);
  EXPECT_GT(SentinelExecution::live_calls, calls_before);
  for (const real_t v : y) EXPECT_EQ(v, SentinelExecution::kSentinel);

  // Restore the stub and confirm the slot reports unavailable again.
  registry.unregister_backend(PlanBackend::kAccelerator);
  EXPECT_FALSE(registry.available(PlanBackend::kAccelerator));
}

// ---------------------------------------------------------------------------
// Stale-plan regression: backend switches must never serve the old plan
// ---------------------------------------------------------------------------

TEST(PlanBackendSwitch, NoStalePlanAfterBackendSwitch) {
  // The content-keyed lazy SpmvPlan cache knows nothing about backends; a
  // switch must be observed by the very next product.  The sentinel mock
  // makes a stale host plan unmistakable.
  const CsrMatrix golden_matrix = laplace_2d(16);
  const std::vector<real_t> x = test_vector(golden_matrix.cols(), 43);
  const std::vector<real_t> golden = golden_matrix.multiply(x);

  CsrMatrix m = golden_matrix;
  EXPECT_EQ(m.plan_backend(), PlanBackend::kSingle);
  EXPECT_EQ(m.multiply(x), golden);  // populates the lazy single plan

  // kSingle -> kShardedThreads: backend flips, bits do not.
  m.set_plan_backend(PlanBackend::kShardedThreads,
                     ShardLayout::nnz_balanced(3, m.row_ptr()));
  EXPECT_EQ(m.plan_backend(), PlanBackend::kShardedThreads);
  EXPECT_EQ(m.multiply(x), golden);

  // kShardedThreads -> mock kAccelerator: the sentinel proves the product
  // went through the new execution, not any cached plan.
  auto& registry = PlanBackendRegistry::instance();
  registry.register_backend(
      PlanBackend::kAccelerator,
      [](index_t rows, index_t, const std::vector<index_t>&,
         const std::vector<index_t>&, const ShardLayout&) {
        auto exec = std::make_unique<SentinelExecution>();
        exec->rows_ = rows;
        return exec;
      });
  m.set_plan_backend(PlanBackend::kAccelerator);
  const std::vector<real_t> sentinel = m.multiply(x);
  for (const real_t v : sentinel) EXPECT_EQ(v, SentinelExecution::kSentinel);
  registry.unregister_backend(PlanBackend::kAccelerator);

  // Back to kSingle: the original bits return.
  m.set_plan_backend(PlanBackend::kSingle);
  EXPECT_EQ(m.plan_backend(), PlanBackend::kSingle);
  EXPECT_EQ(m.multiply(x), golden);
}

TEST(PlanBackendSwitch, CopiesInheritTheBoundBackend) {
  const CsrMatrix a = laplace_2d(12);
  CsrMatrix m = a;
  m.set_plan_backend(PlanBackend::kShardedThreads,
                     ShardLayout::nnz_balanced(2, m.row_ptr()));
  const CsrMatrix copy = m;
  EXPECT_EQ(copy.plan_backend(), PlanBackend::kShardedThreads);
  CsrMatrix assigned;
  assigned = m;
  EXPECT_EQ(assigned.plan_backend(), PlanBackend::kShardedThreads);

  const std::vector<real_t> x = test_vector(a.cols(), 47);
  EXPECT_EQ(copy.multiply(x), a.multiply(x));
}

}  // namespace
}  // namespace mcmi
