// End-to-end integration test: a miniature version of the full §4.4
// experiment (dataset -> Pre-BO -> grid truth -> BO round -> retrain ->
// calibration/strategies), checking structural invariants and seed
// determinism.

#include <gtest/gtest.h>

#include <cmath>

#include "pipeline/experiment.hpp"
#include "stats/summary.hpp"

namespace mcmi {
namespace {

ExperimentOptions tiny_options() {
  ExperimentOptions opt;
  opt.data.replicates = 2;
  opt.test_replicates = 2;
  opt.pretrain.epochs = 4;
  opt.retrain.epochs = 4;
  opt.bo_batch = 4;
  opt.training_max_dim = 300;
  opt.verbose = false;
  // Shrink the grid to 2x2x2 so the whole experiment runs in seconds.
  opt.data.grid.clear();
  for (real_t alpha : {1.0, 4.0}) {
    for (real_t eps : {0.5, 0.125}) {
      for (real_t delta : {0.5, 0.125}) {
        opt.data.grid.push_back({alpha, eps, delta});
      }
    }
  }
  opt.data.divergence_samples = 1;
  return opt;
}

class IntegrationTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    experiment_ = new TuningExperiment(tiny_options());
    experiment_->run();
  }
  static void TearDownTestSuite() {
    delete experiment_;
    experiment_ = nullptr;
  }
  static TuningExperiment* experiment_;
};

TuningExperiment* IntegrationTest::experiment_ = nullptr;

TEST_F(IntegrationTest, DatasetSplitSizes) {
  const ExperimentResults& r = experiment_->results();
  EXPECT_GT(r.training_samples, 0);
  EXPECT_GT(r.validation_samples, 0);
  EXPECT_NEAR(static_cast<real_t>(r.validation_samples) /
                  static_cast<real_t>(r.training_samples +
                                      r.validation_samples),
              0.2, 0.02);
}

TEST_F(IntegrationTest, GroundTruthGridComplete) {
  const ExperimentResults& r = experiment_->results();
  EXPECT_EQ(r.test_grid.size(), 8u);  // shrunk grid
  for (const GridObservation& g : r.test_grid) {
    EXPECT_EQ(g.ys.size(), 2u);
    for (real_t y : g.ys) {
      EXPECT_TRUE(std::isfinite(y));
      EXPECT_GE(y, 0.0);
    }
  }
  EXPECT_GT(r.baseline_steps, 0);
}

TEST_F(IntegrationTest, CalibrationSampleCounts) {
  const ExperimentResults& r = experiment_->results();
  // One calibration sample per observation: grid points x replicates.
  EXPECT_EQ(r.calibration_pre.size(), 16u);
  EXPECT_EQ(r.calibration_post.size(), 16u);
  for (const CalibrationSample& s : r.calibration_pre) {
    EXPECT_GT(s.sigma, 0.0);
    EXPECT_GE(s.mu, 0.0);
  }
}

TEST_F(IntegrationTest, InclusionCellsCoverGrid) {
  const ExperimentResults& r = experiment_->results();
  EXPECT_EQ(r.inclusion.size(), r.test_grid.size());
  for (const InclusionCell& c : r.inclusion) {
    EXPECT_GE(c.empirical_mean, 0.0);
    EXPECT_GE(c.predicted_pre, 0.0);
    EXPECT_GE(c.predicted_post, 0.0);
  }
}

TEST_F(IntegrationTest, StrategiesEvaluatedAtConfiguredBudgets) {
  const ExperimentResults& r = experiment_->results();
  EXPECT_EQ(r.grid_strategy.evaluated.size(), 8u);
  EXPECT_EQ(r.balanced_strategy.evaluated.size(), 4u);
  EXPECT_EQ(r.explore_strategy.evaluated.size(), 4u);
  // Medians are well defined and the best index points at the minimum.
  const std::vector<real_t> med = r.balanced_strategy.medians();
  const index_t best = r.balanced_strategy.best_index();
  for (real_t m : med) EXPECT_GE(m, med[best]);
}

TEST_F(IntegrationTest, BoFindsCompetitiveParameters) {
  // The BO strategies search a continuous box that includes better regions
  // than the coarse grid; at minimum they must not be catastrophically
  // worse than the grid's best (shape check, loose factor).
  const ExperimentResults& r = experiment_->results();
  const real_t grid_best =
      r.grid_strategy.medians()[r.grid_strategy.best_index()];
  const real_t bo_best = std::min(
      r.balanced_strategy.medians()[r.balanced_strategy.best_index()],
      r.explore_strategy.medians()[r.explore_strategy.best_index()]);
  EXPECT_LT(bo_best, std::max(2.0 * grid_best, grid_best + 0.5));
}

TEST(IntegrationDeterminism, SameSeedSameGroundTruth) {
  ExperimentOptions opt = tiny_options();
  opt.pretrain.epochs = 1;
  opt.retrain.epochs = 1;
  opt.bo_batch = 2;
  TuningExperiment e1(opt);
  e1.run();
  TuningExperiment e2(opt);
  e2.run();
  const auto& g1 = e1.results().test_grid;
  const auto& g2 = e2.results().test_grid;
  ASSERT_EQ(g1.size(), g2.size());
  for (std::size_t i = 0; i < g1.size(); ++i) {
    ASSERT_EQ(g1[i].ys.size(), g2[i].ys.size());
    for (std::size_t k = 0; k < g1[i].ys.size(); ++k) {
      EXPECT_DOUBLE_EQ(g1[i].ys[k], g2[i].ys[k]);
    }
  }
  EXPECT_EQ(e1.results().baseline_steps, e2.results().baseline_steps);
}

}  // namespace
}  // namespace mcmi
