// Tests for src/features: the x_A feature vector and condition-number
// estimation (exact vs iterative paths).

#include <gtest/gtest.h>

#include <cmath>

#include "features/matrix_features.hpp"
#include "gen/laplace.hpp"
#include "gen/plasma.hpp"
#include "gen/random_sparse.hpp"

namespace mcmi {
namespace {

TEST(Features, VectorWidthMatchesNames) {
  const MatrixFeatures f = extract_features(laplace_2d(6));
  EXPECT_EQ(static_cast<index_t>(f.to_vector().size()),
            MatrixFeatures::count());
  EXPECT_EQ(MatrixFeatures::names().size(), f.to_vector().size());
}

TEST(Features, LaplacianValues) {
  const CsrMatrix a = laplace_2d(8);
  const MatrixFeatures f = extract_features(a);
  EXPECT_DOUBLE_EQ(f.dimension, 49.0);
  EXPECT_DOUBLE_EQ(f.symmetry, 1.0);
  EXPECT_DOUBLE_EQ(f.norm_inf, 8.0);
  EXPECT_DOUBLE_EQ(f.norm_one, 8.0);  // symmetric
  EXPECT_NEAR(f.fill, a.fill(), 1e-15);
  EXPECT_NEAR(f.avg_row_nnz,
              static_cast<real_t>(a.nnz()) / static_cast<real_t>(a.rows()),
              1e-12);
  // Laplacian is not diagonally dominant in the strict sense: ratio 1.
  EXPECT_NEAR(f.diag_dominance, 1.0, 1e-12);
}

TEST(Features, ConditionEstimateMatchesExactOnSmallMatrix) {
  const CsrMatrix a = laplace_2d(10);
  const real_t exact = estimate_condition_number(a, /*exact_threshold=*/1000);
  const real_t iterative = estimate_condition_number(a, /*exact_threshold=*/1);
  EXPECT_NEAR(iterative, exact, 0.25 * exact);
}

TEST(Features, ConditionGrowsWithPlasmaResolution) {
  PlasmaOptions coarse;
  coarse.nx = 16;
  coarse.ny = 8;
  coarse.radius = 1;
  PlasmaOptions fine = coarse;
  fine.nx = 48;
  fine.ny = 24;
  const real_t k_coarse =
      estimate_condition_number(plasma_drift_diffusion(coarse));
  const real_t k_fine =
      estimate_condition_number(plasma_drift_diffusion(fine));
  EXPECT_GT(k_fine, k_coarse);
}

TEST(Features, LogConditionSaturatesForSingular) {
  // A matrix with a zero row-sum structure close to singular still yields a
  // finite feature (saturation at 16).
  CooMatrix coo(2, 2);
  coo.add(0, 0, 1.0);
  coo.add(0, 1, -1.0);
  coo.add(1, 0, -1.0);
  coo.add(1, 1, 1.0 + 1e-15);
  const MatrixFeatures f =
      extract_features(CsrMatrix::from_coo(std::move(coo)));
  EXPECT_TRUE(std::isfinite(f.log_condition));
  EXPECT_LE(f.log_condition, 16.0);
}

TEST(Features, AsymmetryReflectedInScore) {
  const MatrixFeatures sym = extract_features(laplace_2d(6));
  const MatrixFeatures asym = extract_features(pdd_real_sparse(36, 0.2, 3));
  EXPECT_GT(sym.symmetry, asym.symmetry);
}

/// Property sweep: features are finite for every Table 1 family member that
/// fits in a quick test budget.
class FeatureFiniteness : public ::testing::TestWithParam<const char*> {};

TEST_P(FeatureFiniteness, AllFinite) {
  CsrMatrix a = [&]() -> CsrMatrix {
    const std::string name = GetParam();
    if (name == "laplace") return laplace_2d(12);
    if (name == "plasma") return plasma_a00512();
    return pdd_real_sparse(128);
  }();
  const MatrixFeatures f = extract_features(a);
  for (real_t v : f.to_vector()) EXPECT_TRUE(std::isfinite(v));
}

INSTANTIATE_TEST_SUITE_P(Families, FeatureFiniteness,
                         ::testing::Values("laplace", "plasma", "pdd"));

}  // namespace
}  // namespace mcmi
