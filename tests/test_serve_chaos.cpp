// Service-level chaos harness: one deterministic storm of mixed
// warm/cold/cancelled/expired/shed traffic against a SolveService whose
// builds hang, fail, and whose store is squeezed by injected byte
// pressure — all scripted through FaultInjector, no randomness.  The
// assertions are timing-independent liveness and accounting invariants:
// every accepted job reaches a terminal state, nothing hangs, and the
// conservation law `submitted == completed + cancelled + shed + expired`
// holds exactly.  Runs under ASan/UBSan/TSan in CI (labels: serve,
// faultinject), so it doubles as the race detector for the service.

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "core/rng.hpp"
#include "gen/laplace.hpp"
#include "serve/solve_service.hpp"
#include "solve/fault_injection.hpp"
#include "sparse/csr.hpp"

namespace mcmi::serve {
namespace {

std::vector<real_t> random_rhs(index_t n, u64 seed) {
  Xoshiro256 rng = make_stream(seed);
  std::vector<real_t> b(static_cast<std::size_t>(n));
  for (real_t& v : b) v = normal01(rng);
  return b;
}

TEST(ServeChaos, StormReachesTerminalStatesAndConservesCounters) {
  FaultInjector faults;
  // Scripted chaos, in builder-arrival order: the first build hangs (the
  // watchdog must reap it), the next two fail transiently (the breaker
  // must cool them down, not retire them), everything after builds clean.
  faults.hang_service_builds(1);
  faults.fail_service_builds(2, BuildStatus::kInjectedFault);

  ServiceOptions opts;
  opts.workers = 3;
  opts.builders = 2;
  opts.queue_capacity = 6;  // small on purpose: the storm must overflow it
  opts.mcmc_params = {1.0, 0.25, 0.125};
  // Generous budget: a *clean* build must never trip it, even slowed 10x
  // by a sanitizer — only the scripted hang (which ignores its deadline)
  // runs into the watchdog.
  opts.build_budget_seconds = 1.0;
  opts.watchdog_period_seconds = 0.005;
  opts.watchdog_grace_seconds = 0.05;
  opts.max_build_attempts = 3;
  opts.build_cooldown_seconds = 0.005;
  opts.faults = &faults;
  SolveService service(opts);

  const std::vector<CsrMatrix> mats = {laplace_2d(6), laplace_2d(8),
                                       laplace_2d(10)};

  // Phase 1 — consume the scripted faults deterministically: one request
  // per matrix, drained between, so builder arrival order is fixed.
  // Matrix 0's build hangs (watchdog reap), matrices 1 and 2 fail with
  // the injected fault; all three land in kRetryWait, none retires, and
  // every request was still served by the fallback rungs.
  for (std::size_t m = 0; m < mats.size(); ++m) {
    const ServeResult r =
        service.submit(mats[m], random_rhs(mats[m].rows(), m)).wait();
    EXPECT_TRUE(r.report.converged()) << r.report.summary();
    service.drain();
  }
  {
    const ServiceStats s = service.stats();
    EXPECT_EQ(s.watchdog_build_kills, 1u);  // the hung build was reaped
    EXPECT_EQ(s.builds_transient, 3u);      // hang kill + the 2 injected
    EXPECT_EQ(s.builds_failed, 0u);         // the breaker retired nothing
    EXPECT_EQ(faults.service_builds_seen(), 3);
    for (const CsrMatrix& m : mats) {
      auto entry = service.store().find(m);
      ASSERT_NE(entry, nullptr);
      EXPECT_EQ(entry->state(), BuildState::kRetryWait);
    }
  }

  // Phase 2 — the storm: 72 mixed-priority submissions in a tight burst
  // against the small queue, with scripted deadlines and cancellations.
  // The faults are exhausted, so cooldown probes fired by these pickups
  // rebuild cleanly while the storm is still running.
  std::vector<ServeHandle> handles;
  u64 refused = 0;
  for (int wave = 0; wave < 3; ++wave) {
    if (wave == 1) {
      // Mid-storm store pressure spike: eviction storms must not corrupt
      // accounting or strand in-flight entries (holders keep them alive).
      faults.set_store_pressure_bytes(1u << 30);
    }
    if (wave == 2) faults.set_store_pressure_bytes(0);

    for (int i = 0; i < 24; ++i) {
      const int k = wave * 24 + i;
      const CsrMatrix& a = mats[static_cast<std::size_t>(k) % mats.size()];
      ServeRequest req;
      req.priority = (k / 3) % 3;  // decorrelated from the matrix index
      if (k % 7 == 0) req.deadline_seconds = 1e-3;  // doomed to expire
      if (k % 11 == 3) req.deadline_seconds = 0.0;  // dead on arrival
      ServeHandle h =
          service.submit(a, random_rhs(a.rows(), static_cast<u64>(k)), req);
      if (!h) {
        ++refused;
        continue;
      }
      handles.push_back(h);
      if (k % 5 == 1) h.cancel();  // scripted cross-thread cancellation
    }
  }

  // Liveness: every accepted job reaches a terminal state in bounded
  // time — no handle hangs, whatever mix of shed/expiry/cancel/build
  // chaos it rode through.
  for (const ServeHandle& h : handles) {
    ASSERT_TRUE(h.wait_for(60.0)) << "a job never reached a terminal state";
    EXPECT_TRUE(h.done());
  }
  service.drain();

  const ServiceStats stats = service.stats();
  // Conservation: every accepted job landed in exactly one terminal
  // bucket, and every refused submit in exactly one rejection bucket.
  // (+3 for the phase-1 requests.)
  EXPECT_EQ(stats.submitted, static_cast<u64>(handles.size()) + 3);
  EXPECT_EQ(stats.submitted,
            stats.completed + stats.cancelled + stats.shed + stats.expired);
  EXPECT_EQ(stats.rejected, refused);
  EXPECT_EQ(stats.rejected, stats.rejected_capacity + stats.rejected_shutdown);
  EXPECT_EQ(stats.rejected_shutdown, 0u);  // never stopped mid-storm
  // The watchdog never had to intervene again and no fingerprint retired:
  // the storm ran on clean builds and probe rebuilds only.
  EXPECT_EQ(stats.watchdog_build_kills, 1u);
  EXPECT_EQ(stats.builds_failed, 0u);

  // Deterministic pressure probe: with a spike bigger than the byte
  // budget, the next insert squeezes the store to its newest entry.
  faults.set_store_pressure_bytes(1u << 30);
  (void)service.store().intern(laplace_2d(14));
  EXPECT_GE(service.stats().store.pressure_evictions, 1u);
  EXPECT_EQ(service.store().size(), 1u);
  faults.set_store_pressure_bytes(0);

  // Aftermath: the service still works — a clean request on a fresh
  // matrix is served and its build completes.
  const CsrMatrix fresh = laplace_2d(12);
  const ServeResult r =
      service.submit(fresh, random_rhs(fresh.rows(), 999)).wait();
  EXPECT_TRUE(r.report.converged()) << r.report.summary();
  service.drain();
  EXPECT_GE(service.stats().builds_completed, 1u);

  // The histograms saw every accepted job (refusals never enter them),
  // and the event log is non-empty and time-ordered.
  const ServiceStats after = service.stats();
  EXPECT_EQ(after.total.total_count, after.submitted);
  EXPECT_EQ(after.queue_wait.total_count, after.submitted);
  const std::vector<ServiceEvent> events = service.recent_events();
  ASSERT_FALSE(events.empty());
  for (std::size_t i = 1; i < events.size(); ++i) {
    EXPECT_LE(events[i - 1].seconds, events[i].seconds);
  }
}

TEST(ServeChaos, RepeatedStormsStayConserved) {
  // Three short storms against one service: counters are monotonic and
  // the conservation law holds at every quiescent point, not just once.
  ServiceOptions opts;
  opts.workers = 2;
  opts.queue_capacity = 4;
  opts.mcmc_params = {1.0, 0.25, 0.125};
  opts.watchdog_period_seconds = 0.005;
  SolveService service(opts);
  const CsrMatrix a = laplace_2d(6);

  u64 last_submitted = 0;
  for (int storm = 0; storm < 3; ++storm) {
    std::vector<ServeHandle> handles;
    for (int i = 0; i < 12; ++i) {
      ServeRequest req;
      req.priority = i % 2;
      if (i % 4 == 2) req.deadline_seconds = 1e-3;
      ServeHandle h = service.submit(
          a, random_rhs(a.rows(), static_cast<u64>(storm * 100 + i)), req);
      if (h && i % 3 == 0) h.cancel();
      if (h) handles.push_back(h);
    }
    for (const ServeHandle& h : handles) ASSERT_TRUE(h.wait_for(60.0));
    service.drain();

    const ServiceStats stats = service.stats();
    EXPECT_EQ(stats.submitted,
              stats.completed + stats.cancelled + stats.shed + stats.expired);
    EXPECT_GE(stats.submitted, last_submitted);
    last_submitted = stats.submitted;
  }
}

}  // namespace
}  // namespace mcmi::serve
