// Robustness tests for the solve orchestrator, the status taxonomy and the
// fault-injection harness: degenerate inputs, scripted build/solve faults,
// deadlines and cooperative cancellation must yield deterministic statuses —
// never a crash, a hang or a silently wrong "converged".

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <thread>

#include "core/error.hpp"
#include "core/rng.hpp"
#include "gen/laplace.hpp"
#include "krylov/solver.hpp"
#include "mcmc/batched_build.hpp"
#include "mcmc/inverter.hpp"
#include "precond/ilu0.hpp"
#include "precond/jacobi.hpp"
#include "solve/orchestrator.hpp"
#include "sparse/coo.hpp"
#include "sparse/vector_ops.hpp"

namespace mcmi {
namespace {

std::vector<real_t> random_rhs(index_t n, u64 seed) {
  Xoshiro256 rng = make_stream(seed);
  std::vector<real_t> b(static_cast<std::size_t>(n));
  for (real_t& v : b) v = normal01(rng);
  return b;
}

/// Diagonally dominant SPD test matrix small enough for fast ladders.
CsrMatrix test_matrix() { return laplace_2d(8); }

/// A matrix with an all-zero row (row 1): singular, breaks every solver.
CsrMatrix zero_row_matrix() {
  CooMatrix coo(4, 4);
  coo.add(0, 0, 2.0);
  coo.add(2, 2, 2.0);
  coo.add(3, 3, 2.0);
  coo.add(0, 2, -1.0);
  coo.add(2, 0, -1.0);
  return CsrMatrix::from_coo(coo);
}

/// Invertible but with a zero diagonal entry: Jacobi and ILU0 must refuse.
CsrMatrix zero_diagonal_matrix() {
  CooMatrix coo(3, 3);
  coo.add(0, 1, 1.0);  // row 0 has no diagonal entry
  coo.add(1, 0, 1.0);
  coo.add(1, 1, 1.0);
  coo.add(2, 2, 1.0);
  return CsrMatrix::from_coo(coo);
}

SolveRequest fast_request() {
  SolveRequest req;
  req.max_iterations = 500;
  req.mcmc_params = {2.0, 0.5, 0.5};  // cheap but convergent MCMC build
  return req;
}

// ---------------------------------------------------------------------------
// Degenerate inputs through the raw solvers: deterministic statuses.

TEST(SolverRobustness, NanRhsReportsNonFiniteForEveryMethod) {
  const CsrMatrix a = test_matrix();
  std::vector<real_t> b = random_rhs(a.rows(), 1);
  b[3] = std::numeric_limits<real_t>::quiet_NaN();
  IdentityPreconditioner id;
  for (KrylovMethod m :
       {KrylovMethod::kCG, KrylovMethod::kGMRES, KrylovMethod::kBiCGStab}) {
    std::vector<real_t> x;
    const SolveResult res = solve(m, a, b, id, x, {});
    EXPECT_EQ(res.status, SolveStatus::kNonFinite) << method_name(m);
    EXPECT_FALSE(res.converged()) << method_name(m);
  }
}

TEST(SolverRobustness, InfRhsReportsNonFiniteForEveryMethod) {
  const CsrMatrix a = test_matrix();
  std::vector<real_t> b = random_rhs(a.rows(), 2);
  b[0] = std::numeric_limits<real_t>::infinity();
  IdentityPreconditioner id;
  for (KrylovMethod m :
       {KrylovMethod::kCG, KrylovMethod::kGMRES, KrylovMethod::kBiCGStab}) {
    std::vector<real_t> x;
    const SolveResult res = solve(m, a, b, id, x, {});
    EXPECT_EQ(res.status, SolveStatus::kNonFinite) << method_name(m);
  }
}

TEST(SolverRobustness, ZeroRowMatrixNeverReportsConverged) {
  const CsrMatrix a = zero_row_matrix();
  std::vector<real_t> b = {1.0, 1.0, 1.0, 1.0};  // inconsistent for row 1
  IdentityPreconditioner id;
  SolveOptions opt;
  opt.max_iterations = 200;
  opt.stagnation_window = 25;
  for (KrylovMethod m :
       {KrylovMethod::kCG, KrylovMethod::kGMRES, KrylovMethod::kBiCGStab}) {
    std::vector<real_t> x;
    const SolveResult res = solve(m, a, b, id, x, opt);
    EXPECT_FALSE(res.converged()) << method_name(m);
    EXPECT_NE(res.status, SolveStatus::kConverged) << method_name(m);
  }
}

TEST(SolverRobustness, CgReportsBreakdownOnIndefiniteDirection) {
  // For a symmetric indefinite matrix CG's q^T A q can hit zero or negative:
  // status must say breakdown/divergence, not pretend convergence.
  CooMatrix coo(2, 2);
  coo.add(0, 0, 1.0);
  coo.add(1, 1, -1.0);
  const CsrMatrix a = CsrMatrix::from_coo(coo);
  const std::vector<real_t> b = {1.0, 1.0};
  IdentityPreconditioner id;
  std::vector<real_t> x;
  const SolveResult res = solve_cg(a, b, id, x, {});
  EXPECT_TRUE(res.status == SolveStatus::kBreakdown ||
              res.status == SolveStatus::kDiverged ||
              res.status == SolveStatus::kNonFinite)
      << to_string(res.status);
}

TEST(SolverRobustness, ZeroDiagonalPreconditionersThrowStructuredError) {
  const CsrMatrix a = zero_diagonal_matrix();
  EXPECT_THROW(JacobiPreconditioner{a}, Error);
  EXPECT_THROW(Ilu0Preconditioner{a}, Error);
}

TEST(SolverRobustness, PreCancelledSolveReportsCancelled) {
  const CsrMatrix a = test_matrix();
  const std::vector<real_t> b = random_rhs(a.rows(), 3);
  IdentityPreconditioner id;
  CancelToken token;
  token.request_cancel();
  SolveOptions opt;
  opt.cancel = &token;
  for (KrylovMethod m :
       {KrylovMethod::kCG, KrylovMethod::kGMRES, KrylovMethod::kBiCGStab}) {
    std::vector<real_t> x;
    const SolveResult res = solve(m, a, b, id, x, opt);
    EXPECT_EQ(res.status, SolveStatus::kCancelled) << method_name(m);
  }
}

TEST(SolverRobustness, ExpiredDeadlineReportsDeadlineExceeded) {
  const CsrMatrix a = test_matrix();
  const std::vector<real_t> b = random_rhs(a.rows(), 4);
  IdentityPreconditioner id;
  CancelToken token(0.0);  // already expired
  SolveOptions opt;
  opt.cancel = &token;
  std::vector<real_t> x;
  const SolveResult res = solve_gmres(a, b, id, x, opt);
  EXPECT_EQ(res.status, SolveStatus::kDeadlineExceeded);
}

// ---------------------------------------------------------------------------
// MCMC build cancellation: standalone and batched builders discard partial
// artifacts and report the stop reason.

TEST(BuildRobustness, StandaloneBuildHonoursPreCancelledToken) {
  const CsrMatrix a = test_matrix();
  CancelToken token;
  token.request_cancel();
  McmcOptions mo;
  mo.cancel = &token;
  McmcInverter inverter(a, {2.0, 0.25, 0.25}, mo);
  const CsrMatrix p = inverter.compute();
  EXPECT_EQ(inverter.info().status, BuildStatus::kCancelled);
  EXPECT_EQ(p.rows(), 0);  // partial artifacts discarded
  EXPECT_EQ(p.nnz(), 0);
}

TEST(BuildRobustness, StandaloneBuildHonoursExpiredDeadline) {
  const CsrMatrix a = test_matrix();
  CancelToken token(0.0);
  McmcOptions mo;
  mo.cancel = &token;
  McmcInverter inverter(a, {2.0, 0.25, 0.25}, mo);
  const CsrMatrix p = inverter.compute();
  EXPECT_EQ(inverter.info().status, BuildStatus::kDeadlineExceeded);
  EXPECT_EQ(p.rows(), 0);
}

TEST(BuildRobustness, BatchedBuildHonoursCancelPerTrial) {
  const CsrMatrix a = test_matrix();
  CancelToken token;
  token.request_cancel();
  McmcOptions mo;
  mo.cancel = &token;
  const std::vector<GridTrial> trials = {{0.25, 0.25}, {0.5, 0.5}};
  const BatchedGridResult res = batched_grid_build(a, 2.0, trials, mo);
  ASSERT_EQ(res.info.size(), trials.size());
  for (std::size_t t = 0; t < trials.size(); ++t) {
    EXPECT_EQ(res.info[t].status, BuildStatus::kCancelled) << t;
    EXPECT_EQ(res.preconditioners[t].rows(), 0) << t;
  }
}

/// Off-diagonally dominant ring: ||B||_inf = 3 at alpha = 0, so every walk's
/// weight grows 3^k and hits the divergence guard well before the step cap.
CsrMatrix divergent_kernel_matrix() {
  const index_t n = 4;
  CooMatrix coo(n, n);
  for (index_t i = 0; i < n; ++i) {
    coo.add(i, i, 1.0);
    coo.add(i, (i + 1) % n, 1.5);
    coo.add(i, (i + 3) % n, 1.5);
  }
  return CsrMatrix::from_coo(coo);
}

TEST(BuildRobustness, DivergenceRetirementsSurfacedAndConsistent) {
  // A non-convergent kernel retires walks at the divergence guard; the
  // standalone and batched builders must report identical counts.
  const CsrMatrix a = divergent_kernel_matrix();
  const McmcParams params{0.0, 0.5, 0.9};
  McmcOptions mo;
  McmcInverter inverter(a, params, mo);
  (void)inverter.compute();
  EXPECT_FALSE(inverter.info().neumann_convergent);
  EXPECT_GT(inverter.info().divergence_retirements, 0);

  const BatchedGridResult batched =
      batched_grid_build(a, params.alpha, {{params.eps, params.delta}}, mo);
  EXPECT_EQ(batched.info[0].divergence_retirements,
            inverter.info().divergence_retirements);
}

TEST(BuildRobustness, HealthyBuildReportsZeroRetirements) {
  const CsrMatrix a = test_matrix();
  McmcInverter inverter(a, {2.0, 0.5, 0.5}, {});
  (void)inverter.compute();
  EXPECT_EQ(inverter.info().status, BuildStatus::kBuilt);
  EXPECT_EQ(inverter.info().divergence_retirements, 0);
}

// ---------------------------------------------------------------------------
// Orchestrator: ladder walk, fallback, deadlines, fault injection.

TEST(Orchestrator, HealthySolveServesFromFirstRung) {
  const CsrMatrix a = test_matrix();
  const std::vector<real_t> b = random_rhs(a.rows(), 10);
  SolveOrchestrator orch(a);
  std::vector<real_t> x;
  const SolveReport report = orch.solve(b, x, fast_request());
  EXPECT_TRUE(report.converged());
  EXPECT_EQ(report.served_by, SolveStage::kMcmc);
  EXPECT_FALSE(report.degraded);
  ASSERT_EQ(report.attempts.size(), 1u);
  EXPECT_EQ(report.attempts[0].build_status, BuildStatus::kBuilt);
  EXPECT_EQ(report.attempts[0].solve_status, SolveStatus::kConverged);
}

TEST(Orchestrator, InjectedMcmcFailureWithDeadlineFallsBackToJacobi) {
  // The acceptance scenario: MCMC build fails (injected), 100 ms deadline,
  // the request must still converge through the Jacobi rung and the history
  // must record the failed stage.
  const CsrMatrix a = test_matrix();
  const std::vector<real_t> b = random_rhs(a.rows(), 11);
  FaultInjector faults;
  faults.fail_builds(SolveStage::kMcmc, 1);
  SolveOrchestrator orch(a, &faults);

  SolveRequest req = fast_request();
  req.deadline_seconds = 0.1;
  req.ladder = {{SolveStage::kMcmc, 0.0, 1, 0.0},
                {SolveStage::kJacobi, 0.0, 1, 0.0}};
  std::vector<real_t> x;
  const SolveReport report = orch.solve(b, x, req);

  EXPECT_TRUE(report.converged());
  EXPECT_EQ(report.served_by, SolveStage::kJacobi);
  EXPECT_TRUE(report.degraded);
  ASSERT_EQ(report.attempts.size(), 2u);
  EXPECT_EQ(report.attempts[0].stage, SolveStage::kMcmc);
  EXPECT_EQ(report.attempts[0].build_status, BuildStatus::kInjectedFault);
  EXPECT_FALSE(report.attempts[0].solve_ran);
  EXPECT_EQ(report.attempts[1].stage, SolveStage::kJacobi);
  EXPECT_EQ(report.attempts[1].solve_status, SolveStatus::kConverged);
  EXPECT_LT(norm2(subtract(b, a.multiply(x))) / norm2(b), 1e-6);
}

TEST(Orchestrator, TransientBuildFaultRetriesWithinStage) {
  const CsrMatrix a = test_matrix();
  const std::vector<real_t> b = random_rhs(a.rows(), 12);
  FaultInjector faults;
  faults.fail_builds(SolveStage::kMcmc, 1, /*transient=*/true);
  SolveOrchestrator orch(a, &faults);

  SolveRequest req = fast_request();
  req.ladder = {{SolveStage::kMcmc, 0.0, /*max_attempts=*/2, 0.0}};
  std::vector<real_t> x;
  const SolveReport report = orch.solve(b, x, req);

  EXPECT_TRUE(report.converged());
  EXPECT_EQ(report.served_by, SolveStage::kMcmc);
  EXPECT_FALSE(report.degraded);  // retried within the first rung
  ASSERT_EQ(report.attempts.size(), 2u);
  EXPECT_EQ(report.attempts[0].build_status, BuildStatus::kInjectedFault);
  EXPECT_EQ(report.attempts[1].build_status, BuildStatus::kBuilt);
  EXPECT_EQ(faults.builds_seen(SolveStage::kMcmc), 2);
}

TEST(Orchestrator, PoisonedSolveRecoversOnRetry) {
  const CsrMatrix a = test_matrix();
  const std::vector<real_t> b = random_rhs(a.rows(), 13);
  FaultInjector faults;
  faults.poison_solves(SolveStage::kJacobi, 1);
  SolveOrchestrator orch(a, &faults);

  SolveRequest req = fast_request();
  req.ladder = {{SolveStage::kJacobi, 0.0, /*max_attempts=*/2, 0.0}};
  std::vector<real_t> x;
  const SolveReport report = orch.solve(b, x, req);

  EXPECT_TRUE(report.converged());
  ASSERT_EQ(report.attempts.size(), 2u);
  EXPECT_EQ(report.attempts[0].solve_status, SolveStatus::kNonFinite);
  EXPECT_EQ(report.attempts[1].solve_status, SolveStatus::kConverged);
}

TEST(Orchestrator, ForcedBreakdownFallsThroughLadder) {
  const CsrMatrix a = test_matrix();
  const std::vector<real_t> b = random_rhs(a.rows(), 14);
  FaultInjector faults;
  faults.break_solves(SolveStage::kIlu0, 1);
  SolveOrchestrator orch(a, &faults);

  SolveRequest req = fast_request();
  req.method = KrylovMethod::kBiCGStab;  // exact breakdown on zero P output
  req.ladder = {{SolveStage::kIlu0, 0.0, 1, 0.0},
                {SolveStage::kJacobi, 0.0, 1, 0.0}};
  std::vector<real_t> x;
  const SolveReport report = orch.solve(b, x, req);

  EXPECT_TRUE(report.converged());
  EXPECT_EQ(report.served_by, SolveStage::kJacobi);
  EXPECT_TRUE(report.degraded);
  ASSERT_EQ(report.attempts.size(), 2u);
  EXPECT_EQ(report.attempts[0].solve_status, SolveStatus::kBreakdown);
}

TEST(Orchestrator, GmresEscalatesRestartOnStagnation) {
  const CsrMatrix a = test_matrix();
  const std::vector<real_t> b = random_rhs(a.rows(), 15);
  FaultInjector faults;
  faults.break_solves(SolveStage::kJacobi, 1);  // breakdown on attempt 0
  SolveOrchestrator orch(a, &faults);

  SolveRequest req = fast_request();
  req.restart = 5;
  req.ladder = {{SolveStage::kJacobi, 0.0, /*max_attempts=*/2, 0.0}};
  std::vector<real_t> x;
  const SolveReport report = orch.solve(b, x, req);

  EXPECT_TRUE(report.converged());
  ASSERT_EQ(report.attempts.size(), 2u);
  EXPECT_EQ(report.attempts[0].restart, 5);
  EXPECT_EQ(report.attempts[1].restart, 10);  // doubled on retry
}

TEST(Orchestrator, ZeroDiagonalLadderSkipsJacobiAndIlu0) {
  // Zero-diagonal matrix: Jacobi and ILU0 must degrade cleanly to the
  // unpreconditioned rung instead of crashing.
  const CsrMatrix a = zero_diagonal_matrix();
  const std::vector<real_t> b = {1.0, 2.0, 3.0};
  SolveOrchestrator orch(a);

  SolveRequest req;
  req.max_iterations = 50;
  req.ladder = {{SolveStage::kIlu0, 0.0, 1, 0.0},
                {SolveStage::kJacobi, 0.0, 1, 0.0},
                {SolveStage::kIdentity, 0.0, 1, 0.0}};
  std::vector<real_t> x;
  const SolveReport report = orch.solve(b, x, req);

  EXPECT_TRUE(report.converged());
  EXPECT_EQ(report.served_by, SolveStage::kIdentity);
  ASSERT_EQ(report.attempts.size(), 3u);
  EXPECT_EQ(report.attempts[0].build_status, BuildStatus::kZeroPivot);
  EXPECT_FALSE(report.attempts[0].solve_ran);
  EXPECT_EQ(report.attempts[1].build_status, BuildStatus::kZeroPivot);
}

TEST(Orchestrator, DivergentMcmcKernelRetiresStage) {
  const CsrMatrix a = test_matrix();
  const std::vector<real_t> b = random_rhs(a.rows(), 16);
  SolveOrchestrator orch(a);

  SolveRequest req = fast_request();
  req.mcmc_params = {0.0, 0.5, 0.9};  // alpha = 0: non-convergent kernel
  req.ladder = {{SolveStage::kMcmc, 0.0, 1, 0.0},
                {SolveStage::kJacobi, 0.0, 1, 0.0}};
  std::vector<real_t> x;
  const SolveReport report = orch.solve(b, x, req);

  EXPECT_TRUE(report.converged());
  EXPECT_EQ(report.served_by, SolveStage::kJacobi);
  EXPECT_EQ(report.attempts[0].build_status, BuildStatus::kDivergentKernel);
}

TEST(Orchestrator, ExpiredDeadlineShortCircuitsEntireLadder) {
  const CsrMatrix a = test_matrix();
  const std::vector<real_t> b = random_rhs(a.rows(), 17);
  SolveOrchestrator orch(a);

  SolveRequest req = fast_request();
  req.deadline_seconds = 0.0;
  std::vector<real_t> x;
  const SolveReport report = orch.solve(b, x, req);

  EXPECT_FALSE(report.converged());
  EXPECT_EQ(report.status, SolveStatus::kDeadlineExceeded);
}

TEST(Orchestrator, BuildDelayBurnsDeadlineDeterministically) {
  // The injected delay exceeds the deadline, so the MCMC stage dies on its
  // budget and the remaining ladder is skipped with kDeadlineExceeded.
  const CsrMatrix a = test_matrix();
  const std::vector<real_t> b = random_rhs(a.rows(), 18);
  FaultInjector faults;
  faults.delay_builds(SolveStage::kMcmc, 0.2);
  SolveOrchestrator orch(a, &faults);

  SolveRequest req = fast_request();
  req.deadline_seconds = 0.05;
  req.ladder = {{SolveStage::kMcmc, 0.0, 1, 0.0},
                {SolveStage::kJacobi, 0.0, 1, 0.0}};
  std::vector<real_t> x;
  const SolveReport report = orch.solve(b, x, req);

  EXPECT_EQ(report.status, SolveStatus::kDeadlineExceeded);
  ASSERT_GE(report.attempts.size(), 1u);
  EXPECT_EQ(report.attempts[0].build_status, BuildStatus::kDeadlineExceeded);
}

TEST(Orchestrator, StageBudgetFallsThroughButRequestContinues) {
  // A tiny stage budget kills the (delayed) MCMC build, but with no request
  // deadline the Jacobi rung still serves the solve.
  const CsrMatrix a = test_matrix();
  const std::vector<real_t> b = random_rhs(a.rows(), 19);
  FaultInjector faults;
  faults.delay_builds(SolveStage::kMcmc, 0.05);
  SolveOrchestrator orch(a, &faults);

  SolveRequest req = fast_request();
  req.ladder = {{SolveStage::kMcmc, /*time_budget=*/0.01, 1, 0.0},
                {SolveStage::kJacobi, 0.0, 1, 0.0}};
  std::vector<real_t> x;
  const SolveReport report = orch.solve(b, x, req);

  EXPECT_TRUE(report.converged());
  EXPECT_EQ(report.served_by, SolveStage::kJacobi);
  EXPECT_EQ(report.attempts[0].build_status, BuildStatus::kDeadlineExceeded);
}

TEST(Orchestrator, CancelFromAnotherThreadStopsTheRequest) {
  const CsrMatrix a = laplace_2d(24);
  const std::vector<real_t> b = random_rhs(a.rows(), 20);
  SolveOrchestrator orch(a);

  SolveRequest req;
  req.tolerance = 1e-14;
  req.max_iterations = 2000000;  // would run long without the cancel
  req.mcmc_params = {2.0, 0.1, 0.1};
  std::vector<real_t> x;

  std::thread canceller([&orch] {
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    orch.cancel();
  });
  const SolveReport report = orch.solve(b, x, req);
  canceller.join();

  // Depending on timing the solve may legitimately finish first; when it
  // does not, the status must be kCancelled and the report well-formed.
  if (!report.converged()) {
    EXPECT_EQ(report.status, SolveStatus::kCancelled);
  }
  EXPECT_GE(report.attempts.size(), 1u);
}

TEST(Orchestrator, ReportSummaryNamesStagesAndStatuses) {
  const CsrMatrix a = test_matrix();
  const std::vector<real_t> b = random_rhs(a.rows(), 21);
  FaultInjector faults;
  faults.fail_builds(SolveStage::kMcmc, 1);
  SolveOrchestrator orch(a, &faults);

  SolveRequest req = fast_request();
  req.ladder = {{SolveStage::kMcmc, 0.0, 1, 0.0},
                {SolveStage::kJacobi, 0.0, 1, 0.0}};
  std::vector<real_t> x;
  const SolveReport report = orch.solve(b, x, req);

  const std::string s = report.summary();
  EXPECT_NE(s.find("jacobi"), std::string::npos) << s;
  EXPECT_NE(s.find("injected_fault"), std::string::npos) << s;
  EXPECT_NE(s.find("converged"), std::string::npos) << s;
}

TEST(Orchestrator, OrchestratorIsReusableAcrossRequests) {
  // A deadline-killed request must not leak its cancelled state into the
  // next one (token reset), and the kernel cache keeps working.
  const CsrMatrix a = test_matrix();
  const std::vector<real_t> b = random_rhs(a.rows(), 22);
  SolveOrchestrator orch(a);

  SolveRequest dead = fast_request();
  dead.deadline_seconds = 0.0;
  std::vector<real_t> x;
  EXPECT_EQ(orch.solve(b, x, dead).status, SolveStatus::kDeadlineExceeded);

  const SolveReport ok = orch.solve(b, x, fast_request());
  EXPECT_TRUE(ok.converged());
  EXPECT_EQ(ok.served_by, SolveStage::kMcmc);
}

}  // namespace
}  // namespace mcmi
