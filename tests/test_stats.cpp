// Tests for src/stats: normal distribution functions, Wilson intervals
// against worked examples, summaries and calibration machinery.

#include <gtest/gtest.h>

#include <cmath>

#include "core/error.hpp"
#include "core/rng.hpp"
#include "stats/calibration.hpp"
#include "stats/normal.hpp"
#include "stats/summary.hpp"
#include "stats/wilson.hpp"

namespace mcmi {
namespace {

TEST(Normal, PdfKnownValues) {
  EXPECT_NEAR(normal_pdf(0.0), 0.3989422804014327, 1e-15);
  EXPECT_NEAR(normal_pdf(1.0), 0.24197072451914337, 1e-15);
  EXPECT_NEAR(normal_pdf(-1.0), normal_pdf(1.0), 1e-16);
}

TEST(Normal, CdfKnownValues) {
  EXPECT_NEAR(normal_cdf(0.0), 0.5, 1e-15);
  EXPECT_NEAR(normal_cdf(1.959963984540054), 0.975, 1e-12);
  EXPECT_NEAR(normal_cdf(-1.959963984540054), 0.025, 1e-12);
  EXPECT_NEAR(normal_cdf(3.0), 0.9986501019683699, 1e-12);
}

TEST(Normal, QuantileInvertsCdf) {
  for (real_t p : {0.001, 0.025, 0.1, 0.5, 0.68, 0.9, 0.975, 0.999}) {
    EXPECT_NEAR(normal_cdf(normal_quantile(p)), p, 1e-12) << "p=" << p;
  }
  EXPECT_NEAR(normal_quantile(0.975), 1.959963984540054, 1e-9);
  EXPECT_THROW(normal_quantile(0.0), Error);
  EXPECT_THROW(normal_quantile(1.0), Error);
}

TEST(Wilson, WorkedExample) {
  // Classic textbook case: 9 successes in 10 trials at 95%:
  // Wilson interval ~ (0.596, 0.982).
  const Interval ci = wilson_interval(0.9, 10, 0.95);
  EXPECT_NEAR(ci.low, 0.596, 0.005);
  EXPECT_NEAR(ci.high, 0.982, 0.005);
}

TEST(Wilson, BoundsStayInUnitInterval) {
  const Interval lo = wilson_interval(0.0, 5, 0.99);
  const Interval hi = wilson_interval(1.0, 5, 0.99);
  EXPECT_GE(lo.low, 0.0);
  EXPECT_GT(lo.high, 0.0);  // nonzero upper bound even at p_hat = 0
  EXPECT_LT(hi.low, 1.0);
  EXPECT_LE(hi.high, 1.0);
}

TEST(Wilson, ShrinksWithMoreTrials) {
  const Interval small = wilson_interval(0.5, 10);
  const Interval large = wilson_interval(0.5, 1000);
  EXPECT_LT(large.high - large.low, small.high - small.low);
}

TEST(Wilson, RejectsBadInput) {
  EXPECT_THROW(wilson_interval(0.5, 0), Error);
  EXPECT_THROW(wilson_interval(1.5, 10), Error);
  EXPECT_THROW(wilson_interval(0.5, 10, 1.0), Error);
}

TEST(Summary, MeanAndStd) {
  const std::vector<real_t> xs = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  EXPECT_DOUBLE_EQ(mean(xs), 5.0);
  EXPECT_NEAR(sample_std(xs), std::sqrt(32.0 / 7.0), 1e-12);
  EXPECT_DOUBLE_EQ(sample_std({3.0}), 0.0);
  EXPECT_THROW(mean({}), Error);
}

TEST(Summary, QuantileInterpolation) {
  const std::vector<real_t> xs = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(quantile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 0.5), 2.5);
  EXPECT_DOUBLE_EQ(median({5.0, 1.0, 3.0}), 3.0);
}

TEST(Summary, BoxStatsFiveNumbers) {
  std::vector<real_t> xs;
  for (int i = 1; i <= 11; ++i) xs.push_back(static_cast<real_t>(i));
  const BoxStats b = box_stats(xs);
  EXPECT_DOUBLE_EQ(b.median, 6.0);
  EXPECT_DOUBLE_EQ(b.q1, 3.5);
  EXPECT_DOUBLE_EQ(b.q3, 8.5);
  EXPECT_DOUBLE_EQ(b.minimum, 1.0);
  EXPECT_DOUBLE_EQ(b.maximum, 11.0);
  EXPECT_TRUE(b.outliers.empty());
  EXPECT_DOUBLE_EQ(b.whisker_low, 1.0);
  EXPECT_DOUBLE_EQ(b.whisker_high, 11.0);
}

TEST(Summary, BoxStatsFlagsOutliers) {
  std::vector<real_t> xs = {1.0, 2.0, 2.5, 3.0, 3.5, 4.0, 100.0};
  const BoxStats b = box_stats(xs);
  ASSERT_EQ(b.outliers.size(), 1u);
  EXPECT_DOUBLE_EQ(b.outliers[0], 100.0);
  EXPECT_LT(b.whisker_high, 100.0);
}

TEST(Calibration, PaperLevels) {
  const auto taus = paper_confidence_levels();
  ASSERT_EQ(taus.size(), 6u);
  EXPECT_DOUBLE_EQ(taus.front(), 0.50);
  EXPECT_DOUBLE_EQ(taus.back(), 0.99);
}

TEST(Calibration, PerfectlyCalibratedGaussianCoversAtNominalRate) {
  // Observations drawn from N(mu_j, sigma_j^2) with the model predicting
  // exactly (mu_j, sigma_j): empirical coverage must track tau.
  Xoshiro256 rng = make_stream(31);
  std::vector<CalibrationSample> samples;
  for (int j = 0; j < 5000; ++j) {
    const real_t mu = uniform(rng, -2.0, 2.0);
    const real_t sigma = uniform(rng, 0.2, 1.5);
    samples.push_back({normal(rng, mu, sigma), mu, sigma});
  }
  const auto curve = calibration_curve(samples);
  for (const CoveragePoint& p : curve) {
    EXPECT_NEAR(p.observed, p.expected, 0.03) << "tau=" << p.expected;
    EXPECT_LE(p.wilson.low, p.observed);
    EXPECT_GE(p.wilson.high, p.observed);
  }
  EXPECT_LT(calibration_error(curve), 0.03);
}

TEST(Calibration, OverconfidentModelUnderCovers) {
  // Model reports sigma 5x too small: observed coverage falls below tau —
  // the Pre-BO signature in Figure 1.
  Xoshiro256 rng = make_stream(37);
  std::vector<CalibrationSample> samples;
  for (int j = 0; j < 3000; ++j) {
    samples.push_back({normal(rng, 0.0, 1.0), 0.0, 0.2});
  }
  const auto curve = calibration_curve(samples);
  for (const CoveragePoint& p : curve) {
    EXPECT_LT(p.observed, p.expected);
  }
}

TEST(Calibration, PredictionWithinEmpiricalCi) {
  const std::vector<real_t> replicates = {1.0, 1.1, 0.9, 1.05, 0.95};
  EXPECT_TRUE(prediction_within_empirical_ci(1.0, replicates, 0.99));
  EXPECT_FALSE(prediction_within_empirical_ci(5.0, replicates, 0.99));
  // Degenerate replicates: only the exact value is inside.
  EXPECT_TRUE(prediction_within_empirical_ci(2.0, {2.0, 2.0}, 0.99));
  EXPECT_FALSE(prediction_within_empirical_ci(2.1, {2.0, 2.0}, 0.99));
}

/// Property sweep: the Wilson interval always contains the point estimate.
class WilsonProperty
    : public ::testing::TestWithParam<std::pair<real_t, index_t>> {};

TEST_P(WilsonProperty, ContainsPointEstimate) {
  const auto [p_hat, n] = GetParam();
  const Interval ci = wilson_interval(p_hat, n);
  EXPECT_LE(ci.low, p_hat + 1e-12);
  EXPECT_GE(ci.high, p_hat - 1e-12);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, WilsonProperty,
    ::testing::Values(std::make_pair(0.0, index_t{3}),
                      std::make_pair(0.1, index_t{10}),
                      std::make_pair(0.5, index_t{640}),
                      std::make_pair(0.93, index_t{640}),
                      std::make_pair(1.0, index_t{25})));

}  // namespace
}  // namespace mcmi
