// Tests for src/hpo: search-space sampling, TPE against random search on a
// synthetic objective, and ASHA promotion/pruning behaviour.

#include <gtest/gtest.h>

#include <cmath>

#include "core/error.hpp"
#include "gen/matrix_set.hpp"
#include "hpo/asha.hpp"
#include "hpo/mcmc_tuner.hpp"
#include "hpo/space.hpp"
#include "hpo/tpe.hpp"
#include "stats/summary.hpp"

namespace mcmi::hpo {
namespace {

TEST(Space, SamplesRespectKinds) {
  SearchSpace space = surrogate_search_space();
  Xoshiro256 rng = make_stream(301);
  for (int i = 0; i < 100; ++i) {
    const Assignment a = space.sample(rng);
    ASSERT_EQ(static_cast<index_t>(a.size()), space.dim());
    for (index_t d = 0; d < space.dim(); ++d) {
      const ParamSpec& spec = space.params[d];
      switch (spec.kind) {
        case ParamKind::kCategorical:
        case ParamKind::kChoice: {
          const index_t idx = static_cast<index_t>(std::llround(a[d]));
          EXPECT_GE(idx, 0);
          EXPECT_LT(idx, spec.cardinality());
          break;
        }
        case ParamKind::kUniform:
        case ParamKind::kLogUniform:
          EXPECT_GE(a[d], spec.low);
          EXPECT_LE(a[d], spec.high);
          break;
      }
    }
  }
}

TEST(Space, PaperSpaceContents) {
  SearchSpace space = surrogate_search_space();
  EXPECT_EQ(space.params[space.index_of("layer")].cardinality(), 4);
  EXPECT_EQ(space.params[space.index_of("aggregation")].cardinality(), 4);
  const ParamSpec& lr = space.params[space.index_of("learning_rate")];
  EXPECT_EQ(lr.kind, ParamKind::kLogUniform);
  EXPECT_DOUBLE_EQ(lr.low, 1e-4);
  EXPECT_DOUBLE_EQ(lr.high, 1e-1);
  EXPECT_THROW(space.index_of("bogus"), Error);
}

TEST(Space, LogUniformSpreadsOverDecades) {
  const ParamSpec lr = ParamSpec::log_uniform("lr", 1e-4, 1e-1);
  Xoshiro256 rng = make_stream(303);
  int low_decade = 0;
  const int n = 4000;
  for (int i = 0; i < n; ++i) {
    if (lr.sample(rng) < 1e-3) ++low_decade;
  }
  // One of three decades: about a third of the samples.
  EXPECT_NEAR(static_cast<real_t>(low_decade) / n, 1.0 / 3.0, 0.05);
}

/// Synthetic HPO objective: quadratic bowl in the continuous parameters
/// plus a categorical bonus, minimised at ("b", x = 0.3).
real_t synthetic_objective(const Assignment& a) {
  const real_t cat_penalty = (std::llround(a[0]) == 1) ? 0.0 : 0.5;
  const real_t x = a[1];
  return cat_penalty + (x - 0.3) * (x - 0.3);
}

SearchSpace synthetic_space() {
  SearchSpace s;
  s.params.push_back(ParamSpec::categorical("cat", {"a", "b", "c"}));
  s.params.push_back(ParamSpec::uniform("x", 0.0, 1.0));
  return s;
}

TEST(Tpe, ImprovesOverRandomSearch) {
  const index_t budget = 60;
  // TPE run.
  TpeOptions topt;
  topt.startup_trials = 10;
  topt.seed = 305;
  TpeSampler tpe(synthetic_space(), topt);
  for (index_t t = 0; t < budget; ++t) {
    const Assignment a = tpe.suggest();
    tpe.record(a, synthetic_objective(a));
  }
  // Random search with the same budget.
  SearchSpace space = synthetic_space();
  Xoshiro256 rng = make_stream(307);
  real_t best_random = 1e9;
  for (index_t t = 0; t < budget; ++t) {
    best_random = std::min(best_random,
                           synthetic_objective(space.sample(rng)));
  }
  EXPECT_LE(tpe.best().objective, best_random + 0.02);
  EXPECT_LT(tpe.best().objective, 0.05);
  // TPE should have concentrated on the right categorical arm.
  EXPECT_EQ(std::llround(tpe.best().assignment[0]), 1);
}

TEST(Tpe, StartupPhaseIsRandom) {
  TpeOptions topt;
  topt.startup_trials = 5;
  topt.seed = 309;
  TpeSampler tpe(synthetic_space(), topt);
  // Suggestions are valid even with an empty history.
  for (int i = 0; i < 5; ++i) {
    const Assignment a = tpe.suggest();
    EXPECT_EQ(a.size(), 2u);
    tpe.record(a, synthetic_objective(a));
  }
}

TEST(Tpe, BestThrowsWithoutHistory) {
  TpeSampler tpe(synthetic_space());
  EXPECT_THROW(tpe.best(), Error);
}

TEST(Tpe, RecordValidatesDimension) {
  TpeSampler tpe(synthetic_space());
  EXPECT_THROW(tpe.record({1.0}, 0.5), Error);
}

TEST(McmcTuner, SearchSpaceShape) {
  McmcTuneOptions options;
  const SearchSpace space = mcmc_search_space(options);
  EXPECT_EQ(space.dim(), 3);
  EXPECT_EQ(space.params[space.index_of("alpha")].kind, ParamKind::kChoice);
  EXPECT_EQ(space.params[space.index_of("alpha")].cardinality(), 4);
  EXPECT_EQ(space.params[space.index_of("eps")].kind, ParamKind::kUniform);
  McmcTuneOptions bad;
  bad.alphas.clear();
  EXPECT_THROW(mcmc_search_space(bad), Error);
}

TEST(McmcTuner, TunesThroughBatchedGridProbes) {
  const NamedMatrix nm = make_matrix("PDD_RealSparse_N64");
  SolveOptions solve;
  solve.restart = 250;
  solve.max_iterations = 1500;
  McmcTuneOptions options;
  options.rounds = 2;
  options.candidates_per_round = 4;
  options.replicates = 2;
  PerformanceMeasurer measurer(nm.matrix, solve);
  const McmcTuneResult result =
      tune_mcmc_params(measurer, KrylovMethod::kGMRES, options);
  ASSERT_EQ(result.history.size(), 8u);
  EXPECT_TRUE(std::isfinite(result.best_median));
  for (const McmcTrialResult& trial : result.history) {
    EXPECT_GE(trial.median_y, result.best_median);
    // Alpha snapped to the categorical grid.
    bool on_grid = false;
    for (real_t alpha : options.alphas) {
      if (trial.params.alpha == alpha) on_grid = true;
    }
    EXPECT_TRUE(on_grid);
    EXPECT_GE(trial.params.eps, options.eps_min);
    EXPECT_LE(trial.params.eps, options.eps_max);
  }
  // Deterministic: same seeds, same history.
  PerformanceMeasurer rerun(nm.matrix, solve);
  const McmcTuneResult again =
      tune_mcmc_params(rerun, KrylovMethod::kGMRES, options);
  ASSERT_EQ(again.history.size(), result.history.size());
  for (std::size_t i = 0; i < result.history.size(); ++i) {
    EXPECT_EQ(again.history[i].median_y, result.history[i].median_y);
    EXPECT_EQ(again.history[i].params.alpha, result.history[i].params.alpha);
  }
  EXPECT_EQ(again.best_median, result.best_median);
}

TEST(McmcTuner, ResultsUnchangedByBatchedSharing) {
  // The tuner evaluates candidates through the multi-alpha replicate-batched
  // path; every history median must equal the median of plain per-point
  // measure_replicates runs — the replicate/multi-alpha sharing layers must
  // not move a single y.
  const NamedMatrix nm = make_matrix("PDD_RealSparse_N64");
  SolveOptions solve;
  solve.restart = 250;
  solve.max_iterations = 1500;
  McmcTuneOptions options;
  options.rounds = 1;
  options.candidates_per_round = 6;
  options.replicates = 3;
  PerformanceMeasurer measurer(nm.matrix, solve);
  const McmcTuneResult result =
      tune_mcmc_params(measurer, KrylovMethod::kGMRES, options);
  ASSERT_EQ(result.history.size(), 6u);
  PerformanceMeasurer reference(nm.matrix, solve);
  for (const McmcTrialResult& trial : result.history) {
    const std::vector<real_t> ys = reference.measure_replicates(
        trial.params, KrylovMethod::kGMRES, options.replicates);
    EXPECT_EQ(trial.median_y, median(ys))
        << trial.params.alpha << " " << trial.params.eps << " "
        << trial.params.delta;
  }
}

TEST(Asha, RungLadderMatchesPaperSettings) {
  // grace 20, eta 3, max 150 -> rungs at 20, 60, 180(>150 excluded).
  AshaScheduler asha({20, 150, 3.0});
  ASSERT_EQ(asha.rungs().size(), 2u);
  EXPECT_EQ(asha.rungs()[0], 20);
  EXPECT_EQ(asha.rungs()[1], 60);
}

TEST(Asha, BelowGraceAlwaysContinues) {
  AshaScheduler asha({20, 150, 3.0});
  EXPECT_TRUE(asha.report(1, 5, 100.0));
  EXPECT_TRUE(asha.report(1, 19, 100.0));
}

TEST(Asha, PrunesBottomOfRung) {
  AshaScheduler asha({10, 100, 2.0});
  // Six trials reach rung 10 with increasing (worse) scores.
  EXPECT_TRUE(asha.report(0, 10, 0.1));   // first arrival always kept
  EXPECT_FALSE(asha.report(1, 10, 0.9));  // bottom half: pruned
  EXPECT_TRUE(asha.report(2, 10, 0.05));  // new best: kept
  EXPECT_FALSE(asha.report(3, 10, 0.5));  // 0.5 not in top 1/2 of {.05,.1,.5,.9}
  EXPECT_EQ(asha.rung_size(0), 4);
}

TEST(Asha, EachRungJudgedOnce) {
  AshaScheduler asha({10, 100, 2.0});
  EXPECT_TRUE(asha.report(7, 10, 0.3));
  const index_t size_before = asha.rung_size(0);
  // Same trial reporting again at the same rung: no double counting.
  EXPECT_TRUE(asha.report(7, 15, 0.3));
  EXPECT_EQ(asha.rung_size(0), size_before);
}

TEST(Asha, GoodTrialSurvivesAllRungs) {
  AshaScheduler asha({10, 100, 2.0});
  // Fill rung 0 with mediocre trials.
  asha.report(0, 10, 0.5);
  asha.report(1, 10, 0.6);
  asha.report(2, 10, 0.7);
  // A strong trial passes rung 0 and rung 1.
  EXPECT_TRUE(asha.report(9, 10, 0.1));
  EXPECT_TRUE(asha.report(9, 20, 0.08));
  EXPECT_TRUE(asha.report(9, 40, 0.07));
}

}  // namespace
}  // namespace mcmi::hpo
