// Property suite for the fused vector kernels of sparse/vector_ops.hpp and
// the fused-recurrence SpmvPlan entries: every fused kernel must be
// *bit-identical* to the composition of the primitives it replaced, at any
// OpenMP thread count and on sizes that are not multiples of the reduction
// block (kBlock = 4096) on both sides of the parallel threshold
// (kParallelThreshold = 16384).  The Krylov solvers rely on this — swapping
// a composed sequence for its fused kernel must never change a solve by a
// single bit.

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <vector>

#ifdef _OPENMP
#include <omp.h>
#endif

#include "gen/laplace.hpp"
#include "sparse/csr.hpp"
#include "sparse/vector_ops.hpp"

namespace mcmi {
namespace {

// Straddles kBlock (4096) and kParallelThreshold (16384) with remainders:
// serial path, one-partial-block parallel edge, and a ragged multi-block
// parallel case.
const std::size_t kSizes[] = {7, 4095, 4097, 16383, 16385, 20001};

std::vector<real_t> test_vec(std::size_t n, u64 salt) {
  std::vector<real_t> x(n);
  for (std::size_t i = 0; i < n; ++i) {
    x[i] = std::sin(static_cast<real_t>(i + 1) * 0.37 +
                    static_cast<real_t>(salt) * 1.61);
  }
  return x;
}

u64 bits_of(real_t v) {
  u64 b;
  std::memcpy(&b, &v, sizeof(b));
  return b;
}

void expect_same_bits(const std::vector<real_t>& a,
                      const std::vector<real_t>& b, const char* what) {
  ASSERT_EQ(a.size(), b.size()) << what;
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(bits_of(a[i]), bits_of(b[i])) << what << " at " << i;
  }
}

/// Run `fn` under 1, 2, and 4 OpenMP threads (once when OpenMP is off).
template <typename Fn>
void for_thread_counts(const Fn& fn) {
#ifdef _OPENMP
  const int saved = omp_get_max_threads();
  for (int t : {1, 2, 4}) {
    omp_set_num_threads(t);
    fn();
  }
  omp_set_num_threads(saved);
#else
  fn();
#endif
}

TEST(VectorOps, Axpy2MatchesComposedAxpys) {
  for (std::size_t n : kSizes) {
    const auto q = test_vec(n, 1);
    const auto aq = test_vec(n, 2);
    for_thread_counts([&] {
      auto x = test_vec(n, 3);
      auto r = test_vec(n, 4);
      auto x_ref = x;
      auto r_ref = r;
      axpy2(0.375, q, aq, x, r);
      axpy(0.375, q, x_ref);
      axpy(-0.375, aq, r_ref);
      expect_same_bits(x, x_ref, "axpy2 x");
      expect_same_bits(r, r_ref, "axpy2 r");
    });
  }
}

TEST(VectorOps, AxpyDotMatchesAxpyThenDot) {
  for (std::size_t n : kSizes) {
    const auto d = test_vec(n, 5);
    const auto w = test_vec(n, 6);
    for_thread_counts([&] {
      auto y = test_vec(n, 7);
      auto y_ref = y;
      const real_t fused = axpy_dot(-0.625, d, y, w);
      axpy(-0.625, d, y_ref);
      const real_t composed = dot(w, y_ref);
      expect_same_bits(y, y_ref, "axpy_dot y");
      EXPECT_EQ(bits_of(fused), bits_of(composed));
    });
  }
}

TEST(VectorOps, AxpyNorm2SqMatchesAxpyThenDot) {
  for (std::size_t n : kSizes) {
    const auto d = test_vec(n, 8);
    for_thread_counts([&] {
      auto y = test_vec(n, 9);
      auto y_ref = y;
      const real_t fused = axpy_norm2_sq(1.25, d, y);
      axpy(1.25, d, y_ref);
      const real_t composed = dot(y_ref, y_ref);
      expect_same_bits(y, y_ref, "axpy_norm2_sq y");
      EXPECT_EQ(bits_of(fused), bits_of(composed));
    });
  }
}

TEST(VectorOps, AxpyPairMatchesElementwiseReference) {
  for (std::size_t n : kSizes) {
    const auto p = test_vec(n, 10);
    const auto s = test_vec(n, 11);
    for_thread_counts([&] {
      auto x = test_vec(n, 12);
      auto x_ref = x;
      axpy_pair(0.5, p, -0.75, s, x);
      for (std::size_t i = 0; i < n; ++i) {
        x_ref[i] += 0.5 * p[i] + -0.75 * s[i];
      }
      expect_same_bits(x, x_ref, "axpy_pair x");
    });
  }
}

TEST(VectorOps, BicgstabPUpdateMatchesElementwiseReference) {
  for (std::size_t n : kSizes) {
    const auto r = test_vec(n, 13);
    const auto v = test_vec(n, 14);
    for_thread_counts([&] {
      auto p = test_vec(n, 15);
      auto p_ref = p;
      bicgstab_p_update(r, 0.875, 0.3125, v, p);
      for (std::size_t i = 0; i < n; ++i) {
        p_ref[i] = r[i] + 0.875 * (p_ref[i] - 0.3125 * v[i]);
      }
      expect_same_bits(p, p_ref, "bicgstab_p_update p");
    });
  }
}

TEST(VectorOps, SubScaledNormMatchesReferenceAndDot) {
  for (std::size_t n : kSizes) {
    const auto x = test_vec(n, 16);
    const auto y = test_vec(n, 17);
    for_thread_counts([&] {
      std::vector<real_t> out;
      const real_t fused = sub_scaled_norm(x, 0.4375, y, out);
      std::vector<real_t> out_ref(n);
      for (std::size_t i = 0; i < n; ++i) out_ref[i] = x[i] - 0.4375 * y[i];
      expect_same_bits(out, out_ref, "sub_scaled_norm out");
      // The fused sum-of-squares shares dot()'s fixed-block reduction.
      EXPECT_EQ(bits_of(fused), bits_of(std::sqrt(dot(out_ref, out_ref))));
    });
  }
}

TEST(VectorOps, AxpyPairSubNormMatchesComposedPair) {
  for (std::size_t n : kSizes) {
    const auto p = test_vec(n, 18);
    const auto s = test_vec(n, 19);
    const auto t = test_vec(n, 20);
    for_thread_counts([&] {
      auto x = test_vec(n, 21);
      std::vector<real_t> r;
      auto x_ref = x;
      std::vector<real_t> r_ref;
      const real_t fused = axpy_pair_sub_norm(0.5625, p, -0.21875, s, t, x, r);
      axpy_pair(0.5625, p, -0.21875, s, x_ref);
      const real_t composed = sub_scaled_norm(s, -0.21875, t, r_ref);
      expect_same_bits(x, x_ref, "axpy_pair_sub_norm x");
      expect_same_bits(r, r_ref, "axpy_pair_sub_norm r");
      EXPECT_EQ(bits_of(fused), bits_of(composed));
    });
  }
}

TEST(VectorOps, FusedKernelsThreadCountInvariant) {
  // Every fused reduction at 2 and 4 threads must reproduce its 1-thread
  // bits exactly (the fixed-block contract the Krylov determinism tests
  // assume).  Large ragged size so the parallel path actually splits.
  const std::size_t n = 20001;
  const auto p = test_vec(n, 22);
  const auto s = test_vec(n, 23);
  const auto t = test_vec(n, 24);
  std::vector<u64> reference;
  for_thread_counts([&] {
    auto x = test_vec(n, 25);
    std::vector<real_t> r;
    const real_t nrm = axpy_pair_sub_norm(0.5, p, 0.25, s, t, x, r);
    auto y = test_vec(n, 26);
    const real_t d = axpy_dot(0.75, p, y, s);
    const real_t q = axpy_norm2_sq(-0.5, t, y);
    std::vector<u64> got = {bits_of(nrm), bits_of(d), bits_of(q),
                            bits_of(x[17]), bits_of(r[n - 1]),
                            bits_of(y[4096])};
    if (reference.empty()) {
      reference = got;
    } else {
      EXPECT_EQ(got, reference);
    }
  });
}

TEST(VectorOps, PlanXpbyFusionMatchesComposition) {
  // multiply_dot_norm2_xpby == multiply_dot_norm2 followed by xpby, bit for
  // bit, at every thread count.  45^2 rows exercise the multi-chunk grid.
  for (index_t m : {9, 45, 150}) {
    const CsrMatrix a = laplace_2d(m);
    const auto n = static_cast<std::size_t>(a.rows());
    const auto x = test_vec(n, 27);
    const auto w = test_vec(n, 28);
    for_thread_counts([&] {
      std::vector<real_t> z, z_ref;
      auto q = test_vec(n, 29);
      auto q_ref = q;
      real_t dwz = 0.0, nsz = 0.0, dwz_ref = 0.0, nsz_ref = 0.0;
      a.multiply_dot_norm2_xpby(x, z, w, 0.8125, q, dwz, nsz);
      a.multiply_dot_norm2(x, z_ref, w, dwz_ref, nsz_ref);
      xpby(z_ref, dwz_ref / 0.8125, q_ref);
      EXPECT_EQ(bits_of(dwz), bits_of(dwz_ref));
      EXPECT_EQ(bits_of(nsz), bits_of(nsz_ref));
      expect_same_bits(z, z_ref, "xpby fusion z");
      expect_same_bits(q, q_ref, "xpby fusion q");
    });
  }
}

TEST(VectorOps, PlanAxpy2FusionMatchesComposition) {
  for (index_t m : {9, 45, 150}) {
    const CsrMatrix a = laplace_2d(m);
    const auto n = static_cast<std::size_t>(a.rows());
    const auto q = test_vec(n, 30);
    for_thread_counts([&] {
      std::vector<real_t> aq, aq_ref;
      auto x = test_vec(n, 31);
      auto r = test_vec(n, 32);
      auto x_ref = x;
      auto r_ref = r;
      const real_t qaq = a.multiply_dot_axpy2(q, 0.6875, aq, x, r);
      const real_t qaq_ref = a.multiply_dot(q, aq_ref);
      if (std::isfinite(qaq_ref) && qaq_ref > 0.0) {
        axpy2(0.6875 / qaq_ref, q, aq_ref, x_ref, r_ref);
      }
      EXPECT_EQ(bits_of(qaq), bits_of(qaq_ref));
      expect_same_bits(aq, aq_ref, "axpy2 fusion aq");
      expect_same_bits(x, x_ref, "axpy2 fusion x");
      expect_same_bits(r, r_ref, "axpy2 fusion r");
    });
  }
}

TEST(VectorOps, PlanAxpy2FusionSkipsUpdateOnInvalidQaq) {
  // -A is negative definite, so qaq < 0: the fused kernel must leave x and
  // r bit-untouched, exactly like the unfused CG loop that returns before
  // its axpy2.
  CsrMatrix a = laplace_2d(20);
  for (real_t& v : a.values()) v = -v;
  const auto n = static_cast<std::size_t>(a.rows());
  const auto q = test_vec(n, 33);
  for_thread_counts([&] {
    std::vector<real_t> aq;
    auto x = test_vec(n, 34);
    auto r = test_vec(n, 35);
    const auto x_before = x;
    const auto r_before = r;
    const real_t qaq = a.multiply_dot_axpy2(q, 1.0, aq, x, r);
    EXPECT_LT(qaq, 0.0);
    expect_same_bits(x, x_before, "invalid qaq x");
    expect_same_bits(r, r_before, "invalid qaq r");
  });
}

}  // namespace
}  // namespace mcmi
