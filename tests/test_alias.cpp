// Tests for the Walker alias tables behind the O(1) MCMC transition sampler:
// exact table invariants, chi-squared agreement with the |B_uv|/S_u kernel,
// degenerate rows, signed values and the per-alpha kernel cache.

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "core/rng.hpp"
#include "gen/laplace.hpp"
#include "gen/random_sparse.hpp"
#include "mcmc/alias_table.hpp"
#include "mcmc/walk_kernel.hpp"

namespace mcmi {
namespace {

/// Exact acceptance probability of slot p implied by the table: the chance
/// of landing on p directly times its threshold, plus the overflow routed to
/// p from every slot aliased to it.  Must reproduce w_p / sum(w) exactly up
/// to rounding — this checks the construction without any sampling noise.
std::vector<real_t> implied_distribution(const AliasTable& t, index_t begin,
                                         index_t end) {
  const index_t width = end - begin;
  std::vector<real_t> p(static_cast<std::size_t>(width), 0.0);
  for (index_t k = 0; k < width; ++k) {
    const index_t slot = begin + k;
    p[k] += t.prob()[slot];
    const index_t target = t.alias()[slot] - begin;
    p[static_cast<std::size_t>(target)] += 1.0 - t.prob()[slot];
  }
  for (real_t& v : p) v /= static_cast<real_t>(width);
  return p;
}

TEST(AliasTable, ImpliedDistributionMatchesWeights) {
  const std::vector<index_t> row_ptr = {0, 4, 5, 8};
  const std::vector<real_t> weights = {0.1, 0.4, 0.2, 0.3,   // row 0
                                       2.0,                   // row 1
                                       1.0, 1.0, 6.0};        // row 2
  const AliasTable t = AliasTable::build(row_ptr, weights);
  for (index_t u = 0; u < 3; ++u) {
    const index_t begin = row_ptr[u];
    const index_t end = row_ptr[u + 1];
    real_t sum = 0.0;
    for (index_t p = begin; p < end; ++p) sum += weights[p];
    const std::vector<real_t> implied = implied_distribution(t, begin, end);
    for (index_t k = 0; k < end - begin; ++k) {
      EXPECT_NEAR(implied[k], weights[begin + k] / sum, 1e-12)
          << "row " << u << " slot " << k;
    }
  }
}

TEST(AliasTable, TableInvariants) {
  const CsrMatrix a = pdd_real_sparse(60, 0.15, 91);
  const WalkKernel k = build_walk_kernel(a, 0.5);
  ASSERT_EQ(k.alias.prob().size(), k.succ.size());
  for (index_t u = 0; u < a.rows(); ++u) {
    for (index_t p = k.row_ptr[u]; p < k.row_ptr[u + 1]; ++p) {
      EXPECT_GE(k.alias.prob()[p], 0.0);
      EXPECT_LE(k.alias.prob()[p], 1.0);
      EXPECT_GE(k.alias.alias()[p], k.row_ptr[u]);   // alias stays in the row
      EXPECT_LT(k.alias.alias()[p], k.row_ptr[u + 1]);
    }
  }
}

TEST(AliasTable, ChiSquaredAgainstKernelDistribution) {
  // Sample transitions for a few rows and compare empirical counts against
  // p_uv = |B_uv| / S_u.  With 100k draws per row and df <= 8, a chi2
  // threshold of 40 is far beyond any plausible false positive (p < 1e-5
  // would already be ~30) while catching an off-by-one-slot or unnormalised
  // table immediately.
  const CsrMatrix a = pdd_real_sparse(40, 0.2, 33);
  const WalkKernel k = build_walk_kernel(a, 0.5);
  const index_t draws = 100000;
  for (index_t u : {index_t{0}, index_t{7}, index_t{23}, index_t{39}}) {
    const index_t begin = k.row_ptr[u];
    const index_t end = k.row_ptr[u + 1];
    const index_t width = end - begin;
    if (width < 2) continue;
    std::vector<index_t> counts(static_cast<std::size_t>(width), 0);
    Xoshiro256 rng = make_stream(123, static_cast<u64>(u));
    for (index_t d = 0; d < draws; ++d) {
      const index_t slot = k.alias.sample(begin, end, rng());
      ++counts[static_cast<std::size_t>(slot - begin)];
    }
    real_t chi2 = 0.0;
    for (index_t p = begin; p < end; ++p) {
      const real_t expected = std::abs(k.value[p]) / k.row_sum[u] *
                              static_cast<real_t>(draws);
      ASSERT_GT(expected, 0.0);
      const real_t observed =
          static_cast<real_t>(counts[static_cast<std::size_t>(p - begin)]);
      chi2 += (observed - expected) * (observed - expected) / expected;
    }
    EXPECT_LT(chi2, 40.0) << "row " << u << " width " << width;
  }
}

TEST(AliasTable, SingleEntryRowAlwaysReturnsThatSlot) {
  const std::vector<index_t> row_ptr = {0, 1, 2};
  const std::vector<real_t> weights = {0.25, 7.0};
  const AliasTable t = AliasTable::build(row_ptr, weights);
  Xoshiro256 rng = make_stream(5, 0);
  for (int d = 0; d < 1000; ++d) {
    EXPECT_EQ(t.sample(0, 1, rng()), 0);
    EXPECT_EQ(t.sample(1, 2, rng()), 1);
  }
}

TEST(AliasTable, ExtremeBitsStayInRange) {
  const std::vector<index_t> row_ptr = {0, 3};
  const std::vector<real_t> weights = {1.0, 2.0, 3.0};
  const AliasTable t = AliasTable::build(row_ptr, weights);
  for (u64 bits : {u64{0}, ~u64{0}, u64{1} << 63, (u64{1} << 53) - 1}) {
    const index_t slot = t.sample(0, 3, bits);
    EXPECT_GE(slot, 0);
    EXPECT_LT(slot, 3);
  }
}

TEST(WalkKernel, SignedValuesKeepSignInStepWeight) {
  // Mixed-sign off-diagonals: the alias table samples over |B_uv| while the
  // precomputed step weight carries sign(B_uv) * S_u.
  CooMatrix coo(3, 3);
  coo.add(0, 0, 4.0);
  coo.add(0, 1, 1.0);    // B_01 = -1/d < 0
  coo.add(0, 2, -2.0);   // B_02 = +2/d > 0
  coo.add(1, 1, 3.0);
  coo.add(2, 2, 5.0);
  const CsrMatrix a = CsrMatrix::from_coo(std::move(coo));
  const WalkKernel k = build_walk_kernel(a, 0.0);
  ASSERT_EQ(k.succ.size(), 2u);
  EXPECT_LT(k.value[0], 0.0);
  EXPECT_GT(k.value[1], 0.0);
  for (std::size_t p = 0; p < k.succ.size(); ++p) {
    EXPECT_DOUBLE_EQ(k.signed_sum[p],
                     std::copysign(k.row_sum[0], k.value[p]));
  }
  // The sampling weights are the magnitudes: 1/4 vs 2/4 of S_0 = 3/4.
  const std::vector<real_t> implied = implied_distribution(k.alias, 0, 2);
  EXPECT_NEAR(implied[0], 1.0 / 3.0, 1e-12);
  EXPECT_NEAR(implied[1], 2.0 / 3.0, 1e-12);
}

TEST(WalkKernelCache, ReusesKernelsPerAlpha) {
  const CsrMatrix a = laplace_2d(8);
  WalkKernelCache cache;
  const auto k1 = cache.get(a, 1.0);
  const auto k2 = cache.get(a, 1.0);
  EXPECT_EQ(k1.get(), k2.get());  // shared, not rebuilt
  EXPECT_EQ(cache.hits(), 1);
  EXPECT_EQ(cache.misses(), 1);
  const auto k3 = cache.get(a, 2.0);
  EXPECT_NE(k1.get(), k3.get());
  EXPECT_EQ(cache.size(), 2u);
}

TEST(WalkKernelCache, DifferentMatrixInvalidates) {
  const CsrMatrix a = laplace_2d(8);
  const CsrMatrix b = laplace_2d(10);
  WalkKernelCache cache;
  (void)cache.get(a, 1.0);
  (void)cache.get(b, 1.0);  // new matrix: cache must not serve a's kernel
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.misses(), 2);
  const auto kb = cache.get(b, 1.0);
  EXPECT_EQ(kb->row_ptr.size(), static_cast<std::size_t>(b.rows()) + 1);
}

TEST(WalkKernelCache, SameShapeDifferentValuesInvalidates) {
  // The identity guard is a content fingerprint, not an address: two
  // matrices with identical dimensions and nnz but different entries (the
  // ABA shape for address reuse) must not share kernels.
  const CsrMatrix a = pdd_real_sparse(64, 0.1, 1);
  const CsrMatrix b = pdd_real_sparse(64, 0.1, 2);
  ASSERT_EQ(a.nnz(), b.nnz());
  WalkKernelCache cache;
  const auto ka = cache.get(a, 1.0);
  bool hit = true;
  const auto kb = cache.get(b, 1.0, &hit);
  EXPECT_FALSE(hit);
  EXPECT_NE(ka.get(), kb.get());
  EXPECT_NE(ka->row_sum, kb->row_sum);
}

}  // namespace
}  // namespace mcmi
