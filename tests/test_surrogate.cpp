// Tests for src/surrogate: standardiser, dataset handling, model forward
// shapes, exact input gradients vs finite differences, training progress and
// serialisation round trips.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>

#include "features/matrix_features.hpp"
#include "gen/laplace.hpp"
#include "gen/random_sparse.hpp"
#include "surrogate/dataset.hpp"
#include "surrogate/model.hpp"
#include "surrogate/trainer.hpp"

namespace mcmi {
namespace {

/// A small synthetic dataset over two matrices whose labels follow a known
/// smooth function of x_M, so the surrogate has something learnable.
SurrogateDataset synthetic_dataset() {
  SurrogateDataset ds;
  const CsrMatrix m1 = laplace_2d(5);
  const CsrMatrix m2 = pdd_real_sparse(30, 0.2, 5);
  ds.add_matrix("lap5", gnn::Graph::from_csr(m1),
                extract_features(m1).to_vector());
  ds.add_matrix("pdd30", gnn::Graph::from_csr(m2),
                extract_features(m2).to_vector());
  Xoshiro256 rng = make_stream(91);
  for (index_t id = 0; id < 2; ++id) {
    for (int k = 0; k < 40; ++k) {
      McmcParams p;
      p.alpha = uniform(rng, 0.5, 5.0);
      p.eps = uniform(rng, 0.1, 1.0);
      p.delta = uniform(rng, 0.1, 1.0);
      LabeledSample s;
      s.matrix_id = id;
      s.xm = encode_xm(p, KrylovMethod::kGMRES);
      // Smooth ground truth: bowl in (eps, delta) shifted per matrix.
      s.y_mean = 0.4 + 0.1 * static_cast<real_t>(id) +
                 0.2 * (p.eps - p.delta) * (p.eps - p.delta) +
                 0.05 * p.alpha;
      s.y_std = 0.05 + 0.02 * p.eps;
      ds.samples.push_back(std::move(s));
    }
  }
  return ds;
}

SurrogateConfig tiny_config() {
  SurrogateConfig c;
  c.gnn.hidden = 8;
  c.gnn.layers = 1;
  c.xa_hidden = 8;
  c.xa_layers = 1;
  c.xm_hidden = 8;
  c.xm_layers = 2;
  c.combined_hidden = 16;
  c.combined_layers = 1;
  c.dropout = 0.0;
  return c;
}

TEST(Standardizer, ZeroMeanUnitVariance) {
  Standardizer s;
  s.fit({{1.0, 10.0}, {3.0, 10.0}, {5.0, 10.0}});
  const std::vector<real_t> t = s.transform({3.0, 10.0});
  EXPECT_NEAR(t[0], 0.0, 1e-12);
  EXPECT_NEAR(t[1], 0.0, 1e-12);  // constant column passes through
  const std::vector<real_t> hi = s.transform({5.0, 10.0});
  EXPECT_GT(hi[0], 0.9);
  const std::vector<real_t> back = s.inverse(hi);
  EXPECT_NEAR(back[0], 5.0, 1e-12);
}

TEST(Standardizer, ScaleIsChainRuleFactor) {
  Standardizer s;
  s.fit({{0.0}, {2.0}, {4.0}});
  // std = sqrt(8/3); transform slope = 1/std.
  EXPECT_NEAR(s.scale(0), 1.0 / std::sqrt(8.0 / 3.0), 1e-12);
}

TEST(EncodeXm, OneHotSolver) {
  const std::vector<real_t> xm =
      encode_xm({2.0, 0.25, 0.125}, KrylovMethod::kBiCGStab);
  ASSERT_EQ(static_cast<index_t>(xm.size()), kXmWidth);
  EXPECT_DOUBLE_EQ(xm[0], 2.0);
  EXPECT_DOUBLE_EQ(xm[3], 0.0);  // cg
  EXPECT_DOUBLE_EQ(xm[4], 0.0);  // gmres
  EXPECT_DOUBLE_EQ(xm[5], 1.0);  // bicgstab
}

TEST(Dataset, SplitIsDeterministicAndDisjoint) {
  const SurrogateDataset ds = synthetic_dataset();
  std::vector<LabeledSample> tr1, va1, tr2, va2;
  ds.split(0.25, 7, tr1, va1);
  ds.split(0.25, 7, tr2, va2);
  EXPECT_EQ(tr1.size(), tr2.size());
  EXPECT_EQ(va1.size(), 20u);  // 25% of 80
  EXPECT_EQ(tr1.size() + va1.size(), ds.samples.size());
  for (std::size_t i = 0; i < va1.size(); ++i) {
    EXPECT_EQ(va1[i].y_mean, va2[i].y_mean);
  }
}

TEST(Model, PredictsFiniteValues) {
  SurrogateModel model(tiny_config());
  const SurrogateDataset ds = synthetic_dataset();
  model.fit_standardizers(ds);
  const Prediction p =
      model.predict(ds.graphs[0], ds.features[0], ds.samples[0].xm);
  EXPECT_TRUE(std::isfinite(p.mu));
  EXPECT_GE(p.mu, 0.0);      // ReLU head
  EXPECT_GT(p.sigma, 0.0);   // softplus head
}

TEST(Model, CachedPredictionMatchesFull) {
  SurrogateModel model(tiny_config());
  const SurrogateDataset ds = synthetic_dataset();
  model.fit_standardizers(ds);
  const Prediction full =
      model.predict(ds.graphs[1], ds.features[1], ds.samples[50].xm);
  model.cache_matrix(ds.graphs[1], ds.features[1]);
  const Prediction cached = model.predict_cached(ds.samples[50].xm);
  EXPECT_DOUBLE_EQ(full.mu, cached.mu);
  EXPECT_DOUBLE_EQ(full.sigma, cached.sigma);
}

TEST(Model, InputGradientsMatchFiniteDifferences) {
  SurrogateModel model(tiny_config());
  const SurrogateDataset ds = synthetic_dataset();
  model.fit_standardizers(ds);
  model.cache_matrix(ds.graphs[0], ds.features[0]);

  const std::vector<real_t> xm = encode_xm({2.0, 0.4, 0.3},
                                           KrylovMethod::kGMRES);
  const PredictionWithGrad pg = model.predict_cached_with_grad(xm);
  EXPECT_DOUBLE_EQ(pg.value.mu, model.predict_cached(xm).mu);

  const real_t h = 1e-5;
  for (index_t j = 0; j < 3; ++j) {  // continuous components only
    std::vector<real_t> plus = xm, minus = xm;
    plus[j] += h;
    minus[j] -= h;
    const real_t dmu = (model.predict_cached(plus).mu -
                        model.predict_cached(minus).mu) /
                       (2.0 * h);
    const real_t dsigma = (model.predict_cached(plus).sigma -
                           model.predict_cached(minus).sigma) /
                          (2.0 * h);
    EXPECT_NEAR(pg.dmu_dxm[j], dmu,
                1e-4 * std::max(1.0, std::abs(dmu)))
        << "component " << j;
    EXPECT_NEAR(pg.dsigma_dxm[j], dsigma,
                1e-4 * std::max(1.0, std::abs(dsigma)))
        << "component " << j;
  }
}

TEST(Trainer, LossDecreasesOnSyntheticData) {
  SurrogateModel model(tiny_config());
  const SurrogateDataset ds = synthetic_dataset();
  model.fit_standardizers(ds);
  std::vector<LabeledSample> train, validation;
  ds.split(0.2, 3, train, validation);

  const real_t initial = evaluate_loss(model, ds, validation);
  TrainOptions opt;
  opt.epochs = 30;
  opt.batch_size = 32;
  opt.learning_rate = 3e-3;
  opt.weight_decay = 0.0;
  const TrainReport report =
      train_surrogate(model, ds, train, validation, opt);
  EXPECT_EQ(report.epochs_run, 30);
  EXPECT_LT(report.final_validation_loss, initial);
  EXPECT_LT(report.best_validation_loss, 0.5 * initial);
}

TEST(Trainer, GaussianNllAlsoLearns) {
  // The §3.1 alternative objective: training under the NLL still drives the
  // mean head toward the labels (validated on the MSE metric).
  SurrogateModel model(tiny_config());
  const SurrogateDataset ds = synthetic_dataset();
  model.fit_standardizers(ds);
  std::vector<LabeledSample> train, validation;
  ds.split(0.2, 3, train, validation);
  const real_t initial_rmse = evaluate_rmse(model, ds, validation);
  TrainOptions opt;
  opt.epochs = 30;
  opt.learning_rate = 3e-3;
  opt.weight_decay = 0.0;
  opt.loss = SurrogateLoss::kGaussianNll;
  train_surrogate(model, ds, train, validation, opt);
  EXPECT_LT(evaluate_rmse(model, ds, validation), initial_rmse);
}

TEST(Trainer, NllGradientsMatchFiniteDifferences) {
  // Check the NLL head gradients through one training batch: nudging a
  // weight changes the reported loss consistently with its gradient.
  SurrogateModel model(tiny_config());
  const SurrogateDataset ds = synthetic_dataset();
  model.fit_standardizers(ds);
  std::vector<const LabeledSample*> batch;
  for (int k = 0; k < 8; ++k) batch.push_back(&ds.samples[k]);

  auto loss_at = [&]() {
    for (nn::Parameter* p : model.parameters()) p->zero_grad();
    return model.train_batch(ds.graphs[0], ds.features[0], batch,
                             SurrogateLoss::kGaussianNll);
  };
  (void)loss_at();
  // Pick one parameter entry with a nonzero gradient.
  nn::Parameter* target = model.parameters().back();  // sigma-head bias
  const real_t analytic = target->grad(0, 0);
  const real_t h = 1e-6;
  target->value(0, 0) += h;
  const real_t plus = loss_at();
  target->value(0, 0) -= 2.0 * h;
  const real_t minus = loss_at();
  target->value(0, 0) += h;
  EXPECT_NEAR(analytic, (plus - minus) / (2.0 * h),
              1e-4 * std::max(1.0, std::abs(analytic)));
}

TEST(Trainer, EarlyStopCallbackHonoured) {
  SurrogateModel model(tiny_config());
  const SurrogateDataset ds = synthetic_dataset();
  model.fit_standardizers(ds);
  std::vector<LabeledSample> train, validation;
  ds.split(0.2, 3, train, validation);
  TrainOptions opt;
  opt.epochs = 50;
  opt.on_epoch = [](index_t epoch, real_t, real_t) { return epoch < 4; };
  const TrainReport report =
      train_surrogate(model, ds, train, validation, opt);
  EXPECT_EQ(report.epochs_run, 5);  // stopped after epoch index 4
}

TEST(Model, SaveLoadRoundTrip) {
  const SurrogateDataset ds = synthetic_dataset();
  SurrogateModel a(tiny_config());
  a.fit_standardizers(ds);
  // Light training so the weights are not at initialisation.
  std::vector<LabeledSample> train, validation;
  ds.split(0.2, 3, train, validation);
  TrainOptions opt;
  opt.epochs = 3;
  train_surrogate(a, ds, train, validation, opt);

  const std::string path = "/tmp/mcmi_test_model.bin";
  a.save(path);
  SurrogateModel b(tiny_config());
  b.load(path);

  a.cache_matrix(ds.graphs[0], ds.features[0]);
  b.cache_matrix(ds.graphs[0], ds.features[0]);
  for (int k = 0; k < 10; ++k) {
    const std::vector<real_t> xm = encode_xm(
        {0.5 + 0.4 * k, 0.1 + 0.08 * k, 0.9 - 0.07 * k},
        KrylovMethod::kGMRES);
    const Prediction pa = a.predict_cached(xm);
    const Prediction pb = b.predict_cached(xm);
    EXPECT_DOUBLE_EQ(pa.mu, pb.mu);
    EXPECT_DOUBLE_EQ(pa.sigma, pb.sigma);
  }
  std::remove(path.c_str());
}

TEST(Model, LoadRejectsWrongArchitecture) {
  const SurrogateDataset ds = synthetic_dataset();
  SurrogateModel a(tiny_config());
  a.fit_standardizers(ds);
  const std::string path = "/tmp/mcmi_test_model2.bin";
  a.save(path);
  SurrogateConfig other = tiny_config();
  other.combined_hidden = 24;
  SurrogateModel b(other);
  EXPECT_THROW(b.load(path), Error);
  std::remove(path.c_str());
}

TEST(Model, PaperConfigMatchesSection44) {
  const SurrogateConfig c = paper_config();
  EXPECT_EQ(c.gnn.kind, gnn::LayerKind::kEdgeConv);
  EXPECT_EQ(c.gnn.aggregation, gnn::Aggregation::kMean);
  EXPECT_EQ(c.gnn.hidden, 256);
  EXPECT_EQ(c.gnn.layers, 1);
  EXPECT_EQ(c.xa_hidden, 64);
  EXPECT_EQ(c.xa_layers, 1);
  EXPECT_EQ(c.xm_hidden, 16);
  EXPECT_EQ(c.xm_layers, 3);
  EXPECT_EQ(c.combined_hidden, 128);
  EXPECT_EQ(c.combined_layers, 2);
}

}  // namespace
}  // namespace mcmi
