// Property tests for src/mcmc/emission: RowEmitter must be bit-identical to
// a naive full-sort reference emitter (and to emit_row_reference, the
// pre-engine nth_element path) across random row contents, budgets,
// duplicate magnitudes (tie stress), threshold filtering, and the
// touched-count < / = / > budget boundaries — the emission invariant every
// builder's bit-identity contract rides on.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "core/rng.hpp"
#include "mcmc/csr_arena.hpp"
#include "mcmc/emission.hpp"

namespace mcmi {
namespace {

struct OracleEntry {
  index_t col = 0;
  real_t val = 0.0;
};

/// The emission spec, written the obvious O(k log k) way: threshold-filter
/// the candidates, then a full sort by (|value| descending, column
/// ascending) keeps the first `budget` — entries above the cut magnitude
/// always survive and ties at the cut keep the lowest columns — and the
/// kept set is re-sorted into ascending column order.
std::vector<OracleEntry> oracle_emit(const std::vector<index_t>& touched,
                                     const std::vector<real_t>& accum,
                                     index_t row, real_t inv_chains,
                                     const std::vector<real_t>& inv_diag,
                                     real_t threshold, index_t budget) {
  std::vector<OracleEntry> cand;
  for (index_t j : touched) {
    const real_t pij = accum[static_cast<std::size_t>(j)] * inv_chains *
                       inv_diag[static_cast<std::size_t>(j)];
    if (j != row && std::abs(pij) <= threshold) continue;
    cand.push_back({j, pij});
  }
  if (static_cast<index_t>(cand.size()) > budget) {
    std::sort(cand.begin(), cand.end(),
              [](const OracleEntry& x, const OracleEntry& y) {
                const real_t ax = std::abs(x.val);
                const real_t ay = std::abs(y.val);
                if (ax != ay) return ax > ay;
                return x.col < y.col;
              });
    cand.resize(static_cast<std::size_t>(budget));
    std::sort(cand.begin(), cand.end(),
              [](const OracleEntry& x, const OracleEntry& y) {
                return x.col < y.col;
              });
  }
  return cand;
}

/// One randomized emission case: builds a touched set of `touched_count`
/// states over `n` (a superset is simulated by zero-accumulator slots),
/// emits it through RowEmitter, emit_row_reference, and the oracle, and
/// expects all three bit-identical.  The engines and arenas are the
/// caller's, reused across cases — the scratch-reuse contract says reuse
/// must never leak state between rows.
void check_case(Xoshiro256& rng, RowEmitter& emitter, RowArena& engine_arena,
                RowArena& ref_arena, std::vector<real_t>& ref_scratch,
                index_t n, index_t touched_count, index_t budget,
                real_t threshold, bool tie_stress, const char* label) {
  std::vector<index_t> touched;
  {
    // touched_count distinct ascending states out of [0, n).
    std::vector<index_t> pool(static_cast<std::size_t>(n));
    for (index_t j = 0; j < n; ++j) pool[static_cast<std::size_t>(j)] = j;
    for (index_t t = 0; t < touched_count; ++t) {
      const auto pick =
          t + static_cast<index_t>(rng() % static_cast<u64>(n - t));
      std::swap(pool[static_cast<std::size_t>(t)],
                pool[static_cast<std::size_t>(pick)]);
    }
    touched.assign(pool.begin(), pool.begin() + touched_count);
    std::sort(touched.begin(), touched.end());
  }
  const index_t row = touched[static_cast<std::size_t>(
      rng() % static_cast<u64>(touched.size()))];

  std::vector<real_t> inv_diag(static_cast<std::size_t>(n));
  for (index_t j = 0; j < n; ++j) {
    inv_diag[static_cast<std::size_t>(j)] = 0.125 + uniform01(rng);
  }
  const real_t inv_chains = 1.0 / (1.0 + std::floor(uniform01(rng) * 100.0));

  // Walk-sum-like accumulator contents.  Tie stress draws magnitudes from a
  // pool of four values so duplicates collide at the cut; zero slots model
  // a touched superset (states whose weights cancelled exactly).
  std::vector<real_t> accum(static_cast<std::size_t>(n), 0.0);
  for (index_t j : touched) {
    const u64 kind = rng() % 8;
    real_t mag;
    if (kind == 0) {
      mag = 0.0;
    } else if (tie_stress) {
      const real_t pool[4] = {0.5, 0.25, 0.125, 1e-12};
      mag = pool[rng() % 4];
    } else {
      mag = std::pow(0.5, uniform01(rng) * 30.0);
    }
    const real_t sign = (rng() & 1u) != 0 ? 1.0 : -1.0;
    accum[static_cast<std::size_t>(j)] = sign * mag;
  }

  const std::vector<OracleEntry> expected = oracle_emit(
      touched, accum, row, inv_chains, inv_diag, threshold, budget);

  std::vector<real_t> engine_accum = accum;
  std::vector<real_t> ref_accum = accum;
  const RowSlice es = emitter.emit(engine_arena, 0, engine_accum.data(),
                                   touched, row, inv_chains, inv_diag,
                                   threshold, budget);
  const RowSlice rs = emit_row_reference(ref_arena, 0, ref_accum.data(),
                                         touched, row, inv_chains, inv_diag,
                                         threshold, budget, ref_scratch);

  ASSERT_EQ(es.count, static_cast<index_t>(expected.size())) << label;
  ASSERT_EQ(rs.count, es.count) << label;
  for (index_t q = 0; q < es.count; ++q) {
    const auto eq = static_cast<std::size_t>(es.offset + q);
    const auto rq = static_cast<std::size_t>(rs.offset + q);
    const auto oq = static_cast<std::size_t>(q);
    EXPECT_EQ(engine_arena.cols[eq], expected[oq].col) << label << " q=" << q;
    EXPECT_EQ(engine_arena.vals[eq], expected[oq].val) << label << " q=" << q;
    EXPECT_EQ(ref_arena.cols[rq], expected[oq].col) << label << " q=" << q;
    EXPECT_EQ(ref_arena.vals[rq], expected[oq].val) << label << " q=" << q;
  }
  // Both emitters must reset every consumed accumulator slot to exactly 0.
  for (index_t j : touched) {
    EXPECT_EQ(engine_accum[static_cast<std::size_t>(j)], 0.0) << label;
    EXPECT_EQ(ref_accum[static_cast<std::size_t>(j)], 0.0) << label;
  }
}

TEST(Emission, BitIdenticalToFullSortOracleRandomized) {
  Xoshiro256 rng = make_stream(987654321, 1);
  RowEmitter emitter;
  RowArena engine_arena;
  RowArena ref_arena;
  std::vector<real_t> ref_scratch;
  for (int iter = 0; iter < 400; ++iter) {
    const auto budget = static_cast<index_t>(1 + rng() % 12);
    const index_t n = budget + 2 + static_cast<index_t>(rng() % 200);
    // Sweep the touched-count boundary: below, at, just above, and far
    // above the budget (the fast path, both degenerate cuts, and the
    // threshold-tracked path).
    const index_t counts[4] = {
        std::max<index_t>(1, budget - 1), budget,
        std::min<index_t>(n, budget + 1),
        std::min<index_t>(n, budget + 1 + static_cast<index_t>(rng() % 64))};
    const index_t touched_count = counts[rng() % 4];
    const real_t threshold = (rng() % 4 == 0) ? 1e-3 : 1e-9;
    const bool tie_stress = (rng() % 2) == 0;
    check_case(rng, emitter, engine_arena, ref_arena, ref_scratch, n,
               touched_count, budget, threshold, tie_stress, "randomized");
  }
}

TEST(Emission, AllMagnitudesEqualKeepsLowestColumns) {
  // Total tie stress: every candidate has the same |value|, so the cut
  // equals that magnitude and the budget must be filled by the lowest
  // columns in order.
  const index_t n = 64;
  std::vector<index_t> touched;
  std::vector<real_t> accum(static_cast<std::size_t>(n), 0.0);
  std::vector<real_t> inv_diag(static_cast<std::size_t>(n), 1.0);
  for (index_t j = 1; j < n; j += 2) {
    touched.push_back(j);
    accum[static_cast<std::size_t>(j)] = (j % 4 == 1) ? 0.5 : -0.5;
  }
  RowEmitter emitter;
  RowArena arena;
  const index_t budget = 5;
  const RowSlice s = emitter.emit(arena, 0, accum.data(), touched, 1, 1.0,
                                  inv_diag, 1e-9, budget);
  ASSERT_EQ(s.count, budget);
  for (index_t q = 0; q < budget; ++q) {
    EXPECT_EQ(arena.cols[static_cast<std::size_t>(s.offset + q)], 2 * q + 1);
  }
}

TEST(Emission, DiagonalBypassesThresholdButNotBudget) {
  // The diagonal is always a candidate even below the threshold, yet it
  // competes by magnitude in the budget cut like any entry.
  const index_t n = 8;
  std::vector<index_t> touched = {0, 1, 2, 3, 4};
  std::vector<real_t> inv_diag(static_cast<std::size_t>(n), 1.0);
  std::vector<real_t> accum(static_cast<std::size_t>(n), 0.0);
  accum[0] = 1e-12;  // the diagonal: below threshold, kept as candidate
  accum[1] = 0.5;
  accum[2] = -0.25;
  accum[3] = 0.125;
  accum[4] = 1e-12;  // off-diagonal at the same magnitude: dropped
  RowEmitter emitter;
  RowArena arena;
  std::vector<real_t> accum2 = accum;

  // Budget 4 keeps every candidate, including the tiny diagonal.
  const RowSlice keep = emitter.emit(arena, 0, accum.data(), touched, 0, 1.0,
                                     inv_diag, 1e-9, 4);
  ASSERT_EQ(keep.count, 4);
  EXPECT_EQ(arena.cols[static_cast<std::size_t>(keep.offset)], 0);

  // Budget 3 cuts by magnitude: the diagonal is the smallest and loses.
  const RowSlice cut = emitter.emit(arena, 0, accum2.data(), touched, 0, 1.0,
                                    inv_diag, 1e-9, 3);
  ASSERT_EQ(cut.count, 3);
  EXPECT_EQ(arena.cols[static_cast<std::size_t>(cut.offset)], 1);
  EXPECT_EQ(arena.cols[static_cast<std::size_t>(cut.offset + 1)], 2);
  EXPECT_EQ(arena.cols[static_cast<std::size_t>(cut.offset + 2)], 3);
}

TEST(Emission, TouchedSupersetWithZeroSlotsMatchesExactSet) {
  // Batched builders stream a shared touched union through per-trial
  // accumulators; never-touched slots carry an exact 0.0 and must fall to
  // the threshold filter, leaving the emitted row identical to an emission
  // over the exact touched set.
  const index_t n = 32;
  std::vector<real_t> inv_diag(static_cast<std::size_t>(n), 0.5);
  std::vector<index_t> exact = {3, 7, 11, 19};
  std::vector<index_t> superset = {1, 3, 5, 7, 9, 11, 15, 19, 23, 29};
  std::vector<real_t> accum(static_cast<std::size_t>(n), 0.0);
  accum[3] = 0.75;
  accum[7] = -0.5;
  accum[11] = 0.25;
  accum[19] = -0.125;
  std::vector<real_t> accum2 = accum;
  RowEmitter emitter;
  RowArena arena;
  const RowSlice a = emitter.emit(arena, 0, accum.data(), exact, 3, 1.0,
                                  inv_diag, 1e-9, 3);
  const RowSlice b = emitter.emit(arena, 0, accum2.data(), superset, 3, 1.0,
                                  inv_diag, 1e-9, 3);
  ASSERT_EQ(a.count, b.count);
  for (index_t q = 0; q < a.count; ++q) {
    EXPECT_EQ(arena.cols[static_cast<std::size_t>(a.offset + q)],
              arena.cols[static_cast<std::size_t>(b.offset + q)]);
    EXPECT_EQ(arena.vals[static_cast<std::size_t>(a.offset + q)],
              arena.vals[static_cast<std::size_t>(b.offset + q)]);
  }
}

/// One randomized group-emission case: `n_units` units share a touched set
/// but own adversarially independent accumulators (the hot set donated by
/// unit 0 predicts nothing about the others), per-unit averaging factors,
/// and per-unit column scalings.  Every unit's emit_group() output must be
/// bit-identical to the full-sort oracle *and* to an independent emit() of
/// the same content — no matter how badly the group correlates.
void check_group_case(Xoshiro256& rng, RowEmitter& emitter, index_t n,
                      index_t touched_count, index_t n_units, index_t budget,
                      real_t threshold, bool tie_stress, const char* label) {
  std::vector<index_t> touched;
  {
    std::vector<index_t> pool(static_cast<std::size_t>(n));
    for (index_t j = 0; j < n; ++j) pool[static_cast<std::size_t>(j)] = j;
    for (index_t t = 0; t < touched_count; ++t) {
      const auto pick =
          t + static_cast<index_t>(rng() % static_cast<u64>(n - t));
      std::swap(pool[static_cast<std::size_t>(t)],
                pool[static_cast<std::size_t>(pick)]);
    }
    touched.assign(pool.begin(), pool.begin() + touched_count);
    std::sort(touched.begin(), touched.end());
  }
  const index_t row = touched[static_cast<std::size_t>(
      rng() % static_cast<u64>(touched.size()))];

  std::vector<std::vector<real_t>> accums(static_cast<std::size_t>(n_units));
  std::vector<std::vector<real_t>> inv_diags(
      static_cast<std::size_t>(n_units));
  std::vector<real_t> inv_chains(static_cast<std::size_t>(n_units));
  for (index_t u = 0; u < n_units; ++u) {
    auto& accum = accums[static_cast<std::size_t>(u)];
    accum.assign(static_cast<std::size_t>(n), 0.0);
    for (index_t j : touched) {
      const u64 kind = rng() % 8;
      real_t mag;
      if (kind == 0) {
        mag = 0.0;
      } else if (tie_stress) {
        const real_t pool[4] = {0.5, 0.25, 0.125, 1e-12};
        mag = pool[rng() % 4];
      } else {
        mag = std::pow(0.5, uniform01(rng) * 30.0);
      }
      const real_t sign = (rng() & 1u) != 0 ? 1.0 : -1.0;
      accum[static_cast<std::size_t>(j)] = sign * mag;
    }
    auto& inv_diag = inv_diags[static_cast<std::size_t>(u)];
    inv_diag.assign(static_cast<std::size_t>(n), 0.0);
    for (index_t j = 0; j < n; ++j) {
      inv_diag[static_cast<std::size_t>(j)] = 0.125 + uniform01(rng);
    }
    inv_chains[static_cast<std::size_t>(u)] =
        1.0 / (1.0 + std::floor(uniform01(rng) * 100.0));
  }

  std::vector<RowArena> arenas(static_cast<std::size_t>(n_units));
  std::vector<RowSlice> slices(static_cast<std::size_t>(n_units));
  std::vector<EmissionUnit> group(static_cast<std::size_t>(n_units));
  std::vector<std::vector<real_t>> group_accums = accums;
  for (index_t u = 0; u < n_units; ++u) {
    const auto s = static_cast<std::size_t>(u);
    group[s] = {&arenas[s], group_accums[s].data(), inv_chains[s],
                &inv_diags[s], &slices[s]};
  }
  emitter.emit_group(group.data(), n_units, 0, touched, row, threshold,
                     budget);

  RowArena solo_arena;
  for (index_t u = 0; u < n_units; ++u) {
    const auto s = static_cast<std::size_t>(u);
    const std::vector<OracleEntry> expected =
        oracle_emit(touched, accums[s], row, inv_chains[s], inv_diags[s],
                    threshold, budget);
    std::vector<real_t> solo_accum = accums[s];
    const RowSlice solo =
        emitter.emit(solo_arena, 0, solo_accum.data(), touched, row,
                     inv_chains[s], inv_diags[s], threshold, budget);
    ASSERT_EQ(slices[s].count, static_cast<index_t>(expected.size()))
        << label << " unit " << u;
    ASSERT_EQ(solo.count, slices[s].count) << label << " unit " << u;
    for (index_t q = 0; q < slices[s].count; ++q) {
      const auto gq = static_cast<std::size_t>(slices[s].offset + q);
      const auto sq = static_cast<std::size_t>(solo.offset + q);
      const auto oq = static_cast<std::size_t>(q);
      EXPECT_EQ(arenas[s].cols[gq], expected[oq].col)
          << label << " unit " << u << " q=" << q;
      EXPECT_EQ(arenas[s].vals[gq], expected[oq].val)
          << label << " unit " << u << " q=" << q;
      EXPECT_EQ(solo_arena.cols[sq], expected[oq].col)
          << label << " unit " << u << " q=" << q;
      EXPECT_EQ(solo_arena.vals[sq], expected[oq].val)
          << label << " unit " << u << " q=" << q;
    }
    // The group path must reset consumed slots exactly like emit().
    for (index_t j : touched) {
      EXPECT_EQ(group_accums[s][static_cast<std::size_t>(j)], 0.0)
          << label << " unit " << u;
    }
  }
}

TEST(EmissionGroup, BitIdenticalToOracleAndSoloEmitRandomized) {
  Xoshiro256 rng = make_stream(192837465, 3);
  RowEmitter emitter;
  for (int iter = 0; iter < 200; ++iter) {
    const auto budget = static_cast<index_t>(1 + rng() % 12);
    const index_t n = budget + 2 + static_cast<index_t>(rng() % 200);
    const index_t counts[4] = {
        std::max<index_t>(1, budget - 1), budget,
        std::min<index_t>(n, budget + 1),
        std::min<index_t>(n, budget + 1 + static_cast<index_t>(rng() % 64))};
    const index_t touched_count = counts[rng() % 4];
    const auto n_units = static_cast<index_t>(1 + rng() % 6);
    const real_t threshold = (rng() % 4 == 0) ? 1e-3 : 1e-9;
    const bool tie_stress = (rng() % 2) == 0;
    check_group_case(rng, emitter, n, touched_count, n_units, budget,
                     threshold, tie_stress, "group-randomized");
  }
}

TEST(EmissionGroup, AntiCorrelatedUnitsDefeatTheHotSet) {
  // Unit 1's largest magnitudes sit exactly on the columns unit 0 rejects:
  // the shared hot set predicts nothing, the derived bound must still be a
  // valid lower bound, and unit 1's row must come out exact.
  const index_t n = 64;
  std::vector<index_t> touched;
  for (index_t j = 0; j < n; ++j) touched.push_back(j);
  std::vector<real_t> inv_diag(static_cast<std::size_t>(n), 1.0);
  std::vector<real_t> accum0(static_cast<std::size_t>(n), 0.0);
  std::vector<real_t> accum1(static_cast<std::size_t>(n), 0.0);
  for (index_t j = 0; j < n; ++j) {
    const bool low_half = j < n / 2;
    accum0[static_cast<std::size_t>(j)] = low_half ? 1.0 : 0.25;
    accum1[static_cast<std::size_t>(j)] = low_half ? 0.25 : 1.0;
  }
  const index_t budget = n / 4;  // hot set = unit 0's low-half columns

  RowEmitter emitter;
  RowArena a0, a1;
  RowSlice s0, s1;
  std::vector<real_t> g0 = accum0;
  std::vector<real_t> g1 = accum1;
  EmissionUnit group[2] = {{&a0, g0.data(), 1.0, &inv_diag, &s0},
                           {&a1, g1.data(), 1.0, &inv_diag, &s1}};
  emitter.emit_group(group, 2, 0, touched, 0, 1e-9, budget);

  const std::vector<OracleEntry> e1 =
      oracle_emit(touched, accum1, 0, 1.0, inv_diag, 1e-9, budget);
  ASSERT_EQ(s1.count, static_cast<index_t>(e1.size()));
  for (index_t q = 0; q < s1.count; ++q) {
    EXPECT_EQ(a1.cols[static_cast<std::size_t>(s1.offset + q)],
              e1[static_cast<std::size_t>(q)].col);
    EXPECT_EQ(a1.vals[static_cast<std::size_t>(s1.offset + q)],
              e1[static_cast<std::size_t>(q)].val);
  }
  // Every kept column of unit 1 lives in the half its hot set missed.
  for (index_t q = 0; q < s1.count; ++q) {
    EXPECT_GE(a1.cols[static_cast<std::size_t>(s1.offset + q)], n / 2);
  }
}

}  // namespace
}  // namespace mcmi
