// Tests for src/pipeline: the eq. (4) metric, dataset building shapes and
// measurement bookkeeping.

#include <gtest/gtest.h>

#include <cmath>

#include "core/rng.hpp"
#include "gen/matrix_set.hpp"
#include "pipeline/dataset_builder.hpp"
#include "pipeline/metric.hpp"
#include "stats/summary.hpp"

namespace mcmi {
namespace {

SolveOptions quick_solve() {
  SolveOptions opt;
  opt.restart = 250;
  opt.max_iterations = 1500;
  return opt;
}

TEST(Metric, RatioBelowOneOnPreconditionableMatrix) {
  const NamedMatrix nm = make_matrix("a00512");
  PerformanceMeasurer measurer(nm.matrix, quick_solve());
  const MetricResult r =
      measurer.measure({1.0, 0.0625, 0.0625}, KrylovMethod::kGMRES, 0);
  EXPECT_TRUE(r.preconditioned_converged);
  EXPECT_LT(r.y, 1.0);
  EXPECT_EQ(r.steps_without, measurer.baseline_steps(KrylovMethod::kGMRES));
  EXPECT_NEAR(r.y,
              static_cast<real_t>(r.steps_with) /
                  static_cast<real_t>(r.steps_without),
              1e-12);
}

TEST(Metric, BaselineIsCachedAndDeterministic) {
  const NamedMatrix nm = make_matrix("PDD_RealSparse_N64");
  PerformanceMeasurer measurer(nm.matrix, quick_solve());
  const index_t b1 = measurer.baseline_steps(KrylovMethod::kGMRES);
  const index_t b2 = measurer.baseline_steps(KrylovMethod::kGMRES);
  EXPECT_EQ(b1, b2);
  EXPECT_GT(b1, 0);
}

TEST(Metric, ReplicatesVaryButAreSeedStable) {
  const NamedMatrix nm = make_matrix("PDD_RealSparse_N128");
  PerformanceMeasurer m1(nm.matrix, quick_solve());
  PerformanceMeasurer m2(nm.matrix, quick_solve());
  const std::vector<real_t> ys1 =
      m1.measure_replicates({1.0, 0.5, 0.0625}, KrylovMethod::kGMRES, 4);
  const std::vector<real_t> ys2 =
      m2.measure_replicates({1.0, 0.5, 0.0625}, KrylovMethod::kGMRES, 4);
  ASSERT_EQ(ys1.size(), 4u);
  EXPECT_EQ(ys1, ys2);  // identical seeds -> identical replicates
  // Replicates use different sampler seeds, so they are not all equal
  // (statistically certain at eps = 0.5 where N = 2 chains).
  bool any_different = false;
  for (std::size_t i = 1; i < ys1.size(); ++i) {
    if (ys1[i] != ys1[0]) any_different = true;
  }
  EXPECT_TRUE(any_different);
}

TEST(Metric, DivergentAlphaIsCappedFailureSignal) {
  const NamedMatrix nm = make_matrix("2DFDLaplace_16");
  McmcOptions mcmc;
  mcmc.walk_cap = 64;
  PerformanceMeasurer measurer(nm.matrix, quick_solve(), mcmc, 4.0);
  const MetricResult r =
      measurer.measure({0.01, 0.5, 0.5}, KrylovMethod::kGMRES, 0);
  EXPECT_GE(r.y, 1.0);
  EXPECT_LE(r.y, 4.0);  // the cap
}

TEST(Metric, MeasureGridMatchesPerTrialMeasure) {
  // The batched probe must reproduce measure() exactly: same replicate
  // seeds, bit-identical preconditioner, so identical step counts and y.
  const NamedMatrix nm = make_matrix("PDD_RealSparse_N64");
  PerformanceMeasurer batched(nm.matrix, quick_solve());
  PerformanceMeasurer serial(nm.matrix, quick_solve());
  const real_t alpha = 1.0;
  const std::vector<GridTrial> trials = {
      {0.5, 0.5}, {0.25, 0.125}, {0.125, 0.0625}, {0.5, 0.0625}};
  for (index_t replicate = 0; replicate < 2; ++replicate) {
    const std::vector<MetricResult> grid =
        batched.measure_grid(alpha, trials, KrylovMethod::kGMRES, replicate);
    ASSERT_EQ(grid.size(), trials.size());
    for (std::size_t t = 0; t < trials.size(); ++t) {
      const MetricResult single = serial.measure(
          {alpha, trials[t].eps, trials[t].delta}, KrylovMethod::kGMRES,
          replicate);
      EXPECT_EQ(grid[t].steps_with, single.steps_with) << "trial " << t;
      EXPECT_EQ(grid[t].steps_without, single.steps_without);
      EXPECT_EQ(grid[t].y, single.y) << "trial " << t;  // bit-identical
      EXPECT_EQ(grid[t].build.total_transitions,
                single.build.total_transitions)
          << "trial " << t;
      EXPECT_EQ(grid[t].build.chains_per_row, single.build.chains_per_row);
      EXPECT_EQ(grid[t].build.walk_cutoff, single.build.walk_cutoff);
    }
  }
}

TEST(Metric, MeasureGridReplicatesShape) {
  const NamedMatrix nm = make_matrix("PDD_RealSparse_N64");
  PerformanceMeasurer measurer(nm.matrix, quick_solve());
  const std::vector<GridTrial> trials = {{0.5, 0.5}, {0.25, 0.25}};
  const auto ys =
      measurer.measure_grid_replicates(1.0, trials, KrylovMethod::kGMRES, 3);
  ASSERT_EQ(ys.size(), 2u);
  for (const auto& column : ys) {
    ASSERT_EQ(column.size(), 3u);
    for (real_t y : column) EXPECT_GT(y, 0.0);
  }
  const auto per_trial =
      measurer.measure_replicates({1.0, 0.5, 0.5}, KrylovMethod::kGMRES, 3);
  EXPECT_EQ(ys[0], per_trial);  // identical replicate seeding
}

TEST(Metric, MeasureGridReplicatesMatchesPerReplicateMeasure) {
  // The interleaved replicate-batched path must reproduce measure() for
  // EVERY (trial, replicate) cell — bit-identical preconditioners, so
  // bit-identical y's.
  const NamedMatrix nm = make_matrix("PDD_RealSparse_N64");
  PerformanceMeasurer batched(nm.matrix, quick_solve());
  PerformanceMeasurer serial(nm.matrix, quick_solve());
  const std::vector<GridTrial> trials = {
      {0.5, 0.5}, {0.25, 0.125}, {0.125, 0.0625}};
  const index_t replicates = 3;
  const auto ys = batched.measure_grid_replicates(
      2.0, trials, KrylovMethod::kBiCGStab, replicates);
  ASSERT_EQ(ys.size(), trials.size());
  for (std::size_t t = 0; t < trials.size(); ++t) {
    ASSERT_EQ(ys[t].size(), static_cast<std::size_t>(replicates));
    for (index_t r = 0; r < replicates; ++r) {
      const MetricResult single =
          serial.measure({2.0, trials[t].eps, trials[t].delta},
                         KrylovMethod::kBiCGStab, r);
      EXPECT_EQ(ys[t][static_cast<std::size_t>(r)], single.y)
          << "trial " << t << " replicate " << r;
    }
  }
}

TEST(Metric, MultiMethodGridMatchesPerMethodGrids) {
  // One ensemble serving both Krylov methods must score exactly like two
  // per-method probes: P is method-independent, so only the solves differ.
  const NamedMatrix nm = make_matrix("PDD_RealSparse_N64");
  PerformanceMeasurer multi(nm.matrix, quick_solve());
  PerformanceMeasurer gmres_only(nm.matrix, quick_solve());
  PerformanceMeasurer bicg_only(nm.matrix, quick_solve());
  const std::vector<GridTrial> trials = {{0.5, 0.5}, {0.25, 0.125}};
  const auto ys = multi.measure_grid_replicates_methods(
      1.0, trials, {KrylovMethod::kGMRES, KrylovMethod::kBiCGStab}, 2);
  ASSERT_EQ(ys.size(), 2u);
  EXPECT_EQ(ys[0], gmres_only.measure_grid_replicates(
                       1.0, trials, KrylovMethod::kGMRES, 2));
  EXPECT_EQ(ys[1], bicg_only.measure_grid_replicates(
                       1.0, trials, KrylovMethod::kBiCGStab, 2));
}

TEST(Metric, GroupedMediansMatchPerPointMedians) {
  // measure_grouped_medians routes through the multi-alpha builder; the
  // alpha pair (1, 3) engages shared successor draws while 2.0 in the mix
  // forms its own group — medians must match plain per-point replicate
  // loops either way.
  const NamedMatrix nm = make_matrix("PDD_RealSparse_N64");
  PerformanceMeasurer grouped(nm.matrix, quick_solve());
  PerformanceMeasurer serial(nm.matrix, quick_solve());
  const std::vector<McmcParams> grid = {{1.0, 0.5, 0.25},
                                        {3.0, 0.25, 0.125},
                                        {1.0, 0.25, 0.25},
                                        {2.0, 0.5, 0.125}};
  const index_t replicates = 3;
  const std::vector<real_t> medians =
      grouped.measure_grouped_medians(grid, KrylovMethod::kGMRES, replicates);
  ASSERT_EQ(medians.size(), grid.size());
  for (std::size_t i = 0; i < grid.size(); ++i) {
    const std::vector<real_t> ys =
        serial.measure_replicates(grid[i], KrylovMethod::kGMRES, replicates);
    EXPECT_EQ(medians[i], median(ys)) << "grid point " << i;
  }
}

TEST(DatasetBuilder, SampleCountFormula) {
  // One SPD matrix: 64 grid x 2 solvers + 16 CG + 2 divergence x 2 solvers.
  DatasetBuildOptions opt;
  opt.replicates = 2;
  const std::vector<NamedMatrix> mats = {make_matrix("2DFDLaplace_16")};
  const SurrogateDataset ds = build_dataset(mats, opt);
  EXPECT_EQ(ds.num_matrices(), 1);
  EXPECT_EQ(ds.size(), 64 * 2 + 16 + 4);
  // One non-SPD matrix: no CG block.
  const std::vector<NamedMatrix> mats2 = {make_matrix("PDD_RealSparse_N64")};
  const SurrogateDataset ds2 = build_dataset(mats2, opt);
  EXPECT_EQ(ds2.size(), 64 * 2 + 4);
}

TEST(DatasetBuilder, SamplesCarryEncodedSolver) {
  DatasetBuildOptions opt;
  opt.replicates = 2;
  opt.grid = {{1.0, 0.5, 0.5}};  // single grid point for speed
  opt.divergence_samples = 0;
  const std::vector<NamedMatrix> mats = {make_matrix("PDD_RealSparse_N64")};
  const SurrogateDataset ds = build_dataset(mats, opt);
  ASSERT_EQ(ds.size(), 2);
  EXPECT_DOUBLE_EQ(ds.samples[0].xm[4], 1.0);  // gmres one-hot
  EXPECT_DOUBLE_EQ(ds.samples[1].xm[5], 1.0);  // bicgstab one-hot
  for (const LabeledSample& s : ds.samples) {
    EXPECT_GE(s.y_mean, 0.0);
    EXPECT_GE(s.y_std, 0.0);
  }
}

TEST(DatasetBuilder, AppendReusesMatrixEntry) {
  DatasetBuildOptions opt;
  opt.replicates = 2;
  opt.grid = {{1.0, 0.5, 0.5}};
  opt.divergence_samples = 0;
  const NamedMatrix m = make_matrix("PDD_RealSparse_N64");
  SurrogateDataset ds = build_dataset({m}, opt);
  const index_t id1 = append_matrix_measurements(
      ds, m, {{2.0, 0.5, 0.5}}, {KrylovMethod::kGMRES}, opt);
  EXPECT_EQ(id1, 0);  // reused, not duplicated
  EXPECT_EQ(ds.num_matrices(), 1);
  EXPECT_EQ(ds.size(), 3);
  const NamedMatrix other = make_matrix("PDD_RealSparse_N128");
  const index_t id2 = append_matrix_measurements(
      ds, other, {{2.0, 0.5, 0.5}}, {KrylovMethod::kGMRES}, opt);
  EXPECT_EQ(id2, 1);
  EXPECT_EQ(ds.num_matrices(), 2);
}

TEST(DatasetBuilder, BatchedGridLabelsMatchPerTrialLabels) {
  // The alpha-grouped batched path must label exactly like the per-trial
  // loop it replaced: same sample order (grid-major, method-minor), same
  // means and deviations.  The grid interleaves two alphas to exercise the
  // group-and-scatter logic.
  DatasetBuildOptions opt;
  opt.replicates = 2;
  opt.divergence_samples = 0;
  opt.grid = {{1.0, 0.5, 0.5},
              {2.0, 0.5, 0.25},
              {1.0, 0.25, 0.5},
              {2.0, 0.25, 0.25}};
  const NamedMatrix m = make_matrix("PDD_RealSparse_N64");
  const SurrogateDataset ds = build_dataset({m}, opt);
  ASSERT_EQ(ds.size(), static_cast<index_t>(opt.grid.size() * 2));

  McmcOptions mcmc = opt.mcmc;
  mcmc.seed = mix64(opt.seed ^ 1u);  // matrix_id 0
  PerformanceMeasurer measurer(m.matrix, opt.solve, mcmc);
  std::size_t s = 0;
  for (const McmcParams& params : opt.grid) {
    for (KrylovMethod method :
         {KrylovMethod::kGMRES, KrylovMethod::kBiCGStab}) {
      const std::vector<real_t> ys =
          measurer.measure_replicates(params, method, opt.replicates);
      EXPECT_EQ(ds.samples[s].y_mean, mean(ys)) << "sample " << s;
      EXPECT_EQ(ds.samples[s].y_std, sample_std(ys)) << "sample " << s;
      ++s;
    }
  }
}

TEST(DatasetBuilder, GraphAndFeaturesMatchMatrix) {
  DatasetBuildOptions opt;
  opt.replicates = 2;
  opt.grid = {{1.0, 0.5, 0.5}};
  opt.divergence_samples = 0;
  const NamedMatrix m = make_matrix("PDD_RealSparse_N64");
  const SurrogateDataset ds = build_dataset({m}, opt);
  EXPECT_EQ(ds.graphs[0].num_nodes, m.matrix.rows());
  EXPECT_EQ(ds.graphs[0].num_edges(), m.matrix.nnz());
  EXPECT_FALSE(ds.features[0].empty());
  EXPECT_EQ(ds.matrix_names[0], "PDD_RealSparse_N64");
}

}  // namespace
}  // namespace mcmi
