// Tests for src/bo: closed-form EI properties and gradients, the projected
// L-BFGS-B optimiser on bound-constrained references, and batch
// recommendation diversity.

#include <gtest/gtest.h>

#include <cmath>

#include "bo/expected_improvement.hpp"
#include "bo/lbfgsb.hpp"
#include "bo/recommender.hpp"
#include "features/matrix_features.hpp"
#include "gen/laplace.hpp"
#include "stats/normal.hpp"

namespace mcmi {
namespace {

TEST(Ei, NonNegativeEverywhere) {
  const EiContext ctx{1.0, 0.0};
  for (real_t mu : {0.0, 0.5, 1.0, 2.0, 10.0}) {
    for (real_t sigma : {0.0, 0.01, 0.5, 3.0}) {
      EXPECT_GE(expected_improvement(mu, sigma, ctx), 0.0)
          << "mu=" << mu << " sigma=" << sigma;
    }
  }
}

TEST(Ei, DegenerateSigmaIsDeterministicImprovement) {
  const EiContext ctx{1.0, 0.0};
  EXPECT_DOUBLE_EQ(expected_improvement(0.3, 0.0, ctx), 0.7);
  EXPECT_DOUBLE_EQ(expected_improvement(1.5, 0.0, ctx), 0.0);
}

TEST(Ei, MonotoneIncreasingInSigma) {
  const EiContext ctx{1.0, 0.0};
  real_t prev = expected_improvement(1.2, 0.01, ctx);
  for (real_t sigma : {0.1, 0.3, 1.0, 3.0}) {
    const real_t ei = expected_improvement(1.2, sigma, ctx);
    EXPECT_GT(ei, prev);
    prev = ei;
  }
}

TEST(Ei, XiShiftsTowardExploration) {
  // Larger xi reduces EI of a known-good mean more than of an uncertain one.
  const real_t good = expected_improvement(0.5, 0.01, {1.0, 0.0}) -
                      expected_improvement(0.5, 0.01, {1.0, 0.3});
  const real_t uncertain = expected_improvement(0.5, 1.0, {1.0, 0.0}) -
                           expected_improvement(0.5, 1.0, {1.0, 0.3});
  EXPECT_GT(good, uncertain);
}

TEST(Ei, ClosedFormMatchesMonteCarlo) {
  // EI = E[max(0, y_min - xi - Y)], Y ~ N(mu, sigma^2).
  const EiContext ctx{0.8, 0.05};
  const real_t mu = 0.7, sigma = 0.4;
  Xoshiro256 rng = make_stream(201);
  real_t sum = 0.0;
  const int n = 400000;
  for (int i = 0; i < n; ++i) {
    sum += std::max(0.0, ctx.y_min - ctx.xi - normal(rng, mu, sigma));
  }
  EXPECT_NEAR(expected_improvement(mu, sigma, ctx), sum / n, 2e-3);
}

TEST(Ei, GradientMatchesFiniteDifferences) {
  const EiContext ctx{1.0, 0.05};
  // mu(x), sigma(x) linear in a 2-vector x for the check.
  auto mu_of = [](const std::vector<real_t>& x) {
    return 0.5 + 0.3 * x[0] - 0.2 * x[1];
  };
  auto sigma_of = [](const std::vector<real_t>& x) {
    return 0.4 + 0.1 * x[0] + 0.25 * x[1];
  };
  const std::vector<real_t> x = {0.3, 0.7};
  const std::vector<real_t> dmu = {0.3, -0.2};
  const std::vector<real_t> dsigma = {0.1, 0.25};
  std::vector<real_t> grad;
  const real_t ei = expected_improvement_grad(mu_of(x), sigma_of(x), dmu,
                                              dsigma, ctx, grad);
  const real_t h = 1e-6;
  for (int j = 0; j < 2; ++j) {
    std::vector<real_t> xp = x, xm = x;
    xp[j] += h;
    xm[j] -= h;
    const real_t fd = (expected_improvement(mu_of(xp), sigma_of(xp), ctx) -
                       expected_improvement(mu_of(xm), sigma_of(xm), ctx)) /
                      (2.0 * h);
    EXPECT_NEAR(grad[j], fd, 1e-6);
  }
  EXPECT_NEAR(ei, expected_improvement(mu_of(x), sigma_of(x), ctx), 1e-14);
}

TEST(Lbfgsb, UnconstrainedQuadratic) {
  Bounds bounds{{-10.0, -10.0}, {10.0, 10.0}};
  auto f = [](const std::vector<real_t>& x, std::vector<real_t>& g) {
    g = {2.0 * (x[0] - 1.0), 2.0 * (x[1] + 2.0)};
    return (x[0] - 1.0) * (x[0] - 1.0) + (x[1] + 2.0) * (x[1] + 2.0);
  };
  const LbfgsbResult res = minimize_lbfgsb(f, {5.0, 5.0}, bounds);
  EXPECT_TRUE(res.converged);
  EXPECT_NEAR(res.x[0], 1.0, 1e-6);
  EXPECT_NEAR(res.x[1], -2.0, 1e-6);
}

TEST(Lbfgsb, ActiveBoundIsRespected) {
  // Unconstrained optimum at (1, -2); box forces x1 >= 0.
  Bounds bounds{{-10.0, 0.0}, {10.0, 10.0}};
  auto f = [](const std::vector<real_t>& x, std::vector<real_t>& g) {
    g = {2.0 * (x[0] - 1.0), 2.0 * (x[1] + 2.0)};
    return (x[0] - 1.0) * (x[0] - 1.0) + (x[1] + 2.0) * (x[1] + 2.0);
  };
  const LbfgsbResult res = minimize_lbfgsb(f, {5.0, 5.0}, bounds);
  EXPECT_NEAR(res.x[0], 1.0, 1e-6);
  EXPECT_NEAR(res.x[1], 0.0, 1e-9);  // pinned at the lower bound
}

TEST(Lbfgsb, RosenbrockInBox) {
  Bounds bounds{{-2.0, -2.0}, {2.0, 2.0}};
  auto f = [](const std::vector<real_t>& x, std::vector<real_t>& g) {
    const real_t a = 1.0 - x[0];
    const real_t b = x[1] - x[0] * x[0];
    g = {-2.0 * a - 400.0 * x[0] * b, 200.0 * b};
    return a * a + 100.0 * b * b;
  };
  LbfgsbOptions opt;
  opt.max_iterations = 500;
  const LbfgsbResult res = minimize_lbfgsb(f, {-1.2, 1.0}, bounds, opt);
  EXPECT_NEAR(res.x[0], 1.0, 1e-4);
  EXPECT_NEAR(res.x[1], 1.0, 1e-4);
  EXPECT_LT(res.value, 1e-8);
}

TEST(Lbfgsb, RosenbrockWithActiveBound) {
  // Constrain x0 <= 0.5: the constrained optimum sits on that face at
  // (0.5, 0.25).
  Bounds bounds{{-2.0, -2.0}, {0.5, 2.0}};
  auto f = [](const std::vector<real_t>& x, std::vector<real_t>& g) {
    const real_t a = 1.0 - x[0];
    const real_t b = x[1] - x[0] * x[0];
    g = {-2.0 * a - 400.0 * x[0] * b, 200.0 * b};
    return a * a + 100.0 * b * b;
  };
  LbfgsbOptions opt;
  opt.max_iterations = 500;
  const LbfgsbResult res = minimize_lbfgsb(f, {-1.0, 1.5}, bounds, opt);
  EXPECT_NEAR(res.x[0], 0.5, 1e-5);
  EXPECT_NEAR(res.x[1], 0.25, 1e-4);
}

TEST(Lbfgsb, StartOutsideBoxIsProjected) {
  Bounds bounds{{0.0}, {1.0}};
  auto f = [](const std::vector<real_t>& x, std::vector<real_t>& g) {
    g = {2.0 * x[0]};
    return x[0] * x[0];
  };
  const LbfgsbResult res = minimize_lbfgsb(f, {25.0}, bounds);
  EXPECT_NEAR(res.x[0], 0.0, 1e-8);
}

TEST(Lbfgsb, DimensionMismatchThrows) {
  Bounds bounds{{0.0, 0.0}, {1.0, 1.0}};
  auto f = [](const std::vector<real_t>&, std::vector<real_t>& g) {
    g = {0.0, 0.0};
    return 0.0;
  };
  EXPECT_THROW(minimize_lbfgsb(f, {0.5}, bounds), Error);
}

TEST(SearchSpace, SampleStaysInBox) {
  McmcSearchSpace space;
  Xoshiro256 rng = make_stream(211);
  for (int i = 0; i < 200; ++i) {
    const McmcParams p = space.sample(rng);
    EXPECT_GE(p.alpha, space.alpha_min);
    EXPECT_LE(p.alpha, space.alpha_max);
    EXPECT_GE(p.eps, space.eps_min);
    EXPECT_LE(p.eps, space.eps_max);
    EXPECT_GE(p.delta, space.delta_min);
    EXPECT_LE(p.delta, space.delta_max);
  }
}

TEST(Recommender, ProducesDiverseInBoundsBatch) {
  // Tiny trained-free surrogate: predictions are whatever the random
  // initialisation gives; the recommender must still return a full batch of
  // distinct in-bounds candidates.
  SurrogateConfig config;
  config.gnn.hidden = 8;
  config.xa_hidden = 8;
  config.xm_hidden = 8;
  config.combined_hidden = 16;
  config.combined_layers = 1;
  config.dropout = 0.0;
  SurrogateModel model(config);

  SurrogateDataset ds;
  const CsrMatrix a = laplace_2d(5);
  ds.add_matrix("lap", gnn::Graph::from_csr(a),
                extract_features(a).to_vector());
  Xoshiro256 rng = make_stream(213);
  McmcSearchSpace space;
  for (int k = 0; k < 30; ++k) {
    LabeledSample s;
    s.matrix_id = 0;
    s.xm = encode_xm(space.sample(rng), KrylovMethod::kGMRES);
    s.y_mean = uniform(rng, 0.3, 1.2);
    s.y_std = 0.05;
    ds.samples.push_back(std::move(s));
  }
  model.fit_standardizers(ds);
  model.cache_matrix(ds.graphs[0], ds.features[0]);

  RecommendOptions options;
  options.batch_size = 8;
  options.xi = 0.05;
  const std::vector<Recommendation> recs =
      recommend_batch(model, KrylovMethod::kGMRES, space, options);
  ASSERT_EQ(recs.size(), 8u);
  for (std::size_t i = 0; i < recs.size(); ++i) {
    const McmcParams& p = recs[i].params;
    EXPECT_GE(p.alpha, space.alpha_min);
    EXPECT_LE(p.alpha, space.alpha_max);
    EXPECT_GE(p.eps, space.eps_min);
    EXPECT_LE(p.delta, space.delta_max);
    EXPECT_GE(recs[i].ei, 0.0);
    for (std::size_t j = i + 1; j < recs.size(); ++j) {
      const real_t d = std::abs(p.alpha - recs[j].params.alpha) +
                       std::abs(p.eps - recs[j].params.eps) +
                       std::abs(p.delta - recs[j].params.delta);
      EXPECT_GT(d, 1e-4) << "duplicate recommendations " << i << "," << j;
    }
  }
  // Batch is sorted by EI, best first.
  for (std::size_t i = 1; i < recs.size(); ++i) {
    EXPECT_GE(recs[i - 1].ei, recs[i].ei);
  }
}

}  // namespace
}  // namespace mcmi
